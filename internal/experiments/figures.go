package experiments

import (
	"math"

	"repro/internal/analytic"
	"repro/internal/cbr"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/numerics"
	"repro/internal/rng"
	"repro/internal/tfrc"
)

// Sizing bundles the Monte Carlo and simulation effort knobs so tests
// and benches can run scaled-down versions of every figure.
type Sizing struct {
	// Events is the Monte Carlo loss-event budget per point.
	Events int
	// SimFactor scales packet-level run durations (1 = full).
	SimFactor float64
	// Pairs is the connection sweep for the ns-2-style experiments.
	Pairs []int
	// PairsCap truncates profile sweeps (0 = all).
	PairsCap int
}

// Full is the publication-grade sizing.
var Full = Sizing{Events: 200000, SimFactor: 1, Pairs: []int{1, 2, 4, 8, 16, 32, 64}}

// Quick is a fast sizing for tests and benches.
var Quick = Sizing{Events: 20000, SimFactor: 0.15, Pairs: []int{1, 4, 8}, PairsCap: 3}

// NS2Profile mirrors the paper's ns-2 setup: 15 Mb/s RED bottleneck,
// RTT about 50 ms, paper RED thresholds over the bandwidth-delay
// product.
func NS2Profile() Profile {
	return Profile{
		Name: "ns2", Capacity: 1.875e6, Queue: RED,
		BDPPackets: 1.875e6 / 1000 * 0.05,
		BaseDelay:  0.01, RevDelay: 0.03,
		Comprehensive: true,
		Duration:      400, Warmup: 60,
	}
}

// Fig1 tabulates the functions of Figure 1: x, f(1/x) and 1/f(1/x) for
// SQRT, PFTK-standard and PFTK-simplified with r = 1, q = 4r.
func Fig1() *Table {
	t := &Table{
		Name:    "fig1",
		Note:    "x, f(1/x) and 1/f(1/x) for SQRT / PFTK-standard / PFTK-simplified (r=1, q=4r)",
		Columns: []string{"x", "sqrt_f", "pftkstd_f", "pftksimp_f", "sqrt_g", "pftkstd_g", "pftksimp_g"},
	}
	fs := formula.All(formula.DefaultParams())
	for _, x := range numerics.Grid(1.0, 50, 99) {
		row := []float64{x}
		for _, f := range fs {
			row = append(row, formula.F1x(f)(x))
		}
		for _, f := range fs {
			row = append(row, formula.G(f)(x))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig2 tabulates Figure 2: g(x) = 1/f(1/x) for PFTK-standard with b = 1
// (the paper's Figure 2 setting, see DESIGN.md errata), its convex
// closure, and the ratio; the last row's ratio column attains the
// deviation bound r ≈ 1.0026 near x = 3.375.
func Fig2() *Table {
	t := &Table{
		Name:    "fig2",
		Note:    "PFTK-standard g, convex closure g**, and g/g** around the kink (b=1)",
		Columns: []string{"x", "g", "gstar", "ratio"},
	}
	f := formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: 1})
	g := formula.G(f)
	grid := numerics.Grid(1.01, 50, 20000)
	closure := numerics.ConvexClosure(g, grid)
	for _, x := range numerics.Grid(3.25, 3.5, 26) {
		gx, cx := g(x), closure.Eval(x)
		t.AddRow(x, gx, cx, gx/cx)
	}
	return t
}

// Fig2Summary returns the deviation ratio and its argmax for both b = 1
// (the paper's plot) and b = 2 (the text's stated default).
func Fig2Summary() *Table {
	t := &Table{
		Name:    "fig2-summary",
		Note:    "deviation-from-convexity ratio r = sup g/g** for PFTK-standard",
		Columns: []string{"b", "ratio", "argmax_x"},
	}
	for _, b := range []float64{1, 2} {
		f := formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: b})
		ratio, arg := formula.DeviationFromConvexity(f, 1.01, 50, 40000)
		t.AddRow(b, ratio, arg)
	}
	return t
}

// Fig3 reproduces Figure 3: normalized throughput x̄/f(p) of the basic
// control versus p with cv[θ] = 1 - 1/1000, for L in {1, 2, 4, 8, 16}.
// kind selects SQRT (left panel) or PFTK-simplified (right panel).
func Fig3(kind tfrc.FormulaKind, sz Sizing) *Table {
	var f formula.Formula
	name := "fig3-sqrt"
	switch kind {
	case tfrc.SQRT:
		f = formula.NewSQRT(formula.DefaultParams())
	case tfrc.PFTKSimplified:
		f = formula.NewPFTKSimplified(formula.DefaultParams())
		name = "fig3-pftksimp"
	default:
		panic("experiments: Fig3 takes SQRT or PFTKSimplified")
	}
	t := &Table{
		Name:    name,
		Note:    "basic control normalized throughput vs p, cv=1-1/1000",
		Columns: []string{"p", "L1", "L2", "L4", "L8", "L16"},
	}
	cv := 1 - 1.0/1000
	seed := uint64(40)
	for _, p := range []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4} {
		row := []float64{p}
		for _, L := range []int{1, 2, 4, 8, 16} {
			seed++
			res := core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			})
			row = append(row, res.Normalized)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3Comprehensive runs the same sweep with the comprehensive control
// (the paper reports the same shape with less pronounced effects).
func Fig3Comprehensive(sz Sizing) *Table {
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	t := &Table{
		Name:    "fig3-comprehensive",
		Note:    "comprehensive control normalized throughput vs p (PFTK-simplified)",
		Columns: []string{"p", "L1", "L2", "L4", "L8", "L16"},
	}
	cv := 1 - 1.0/1000
	seed := uint64(140)
	for _, p := range []float64{0.01, 0.1, 0.2, 0.3, 0.4} {
		row := []float64{p}
		for _, L := range []int{1, 2, 4, 8, 16} {
			seed++
			res := core.RunComprehensive(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			})
			row = append(row, res.Normalized)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4 reproduces Figure 4: normalized throughput of the basic control
// versus cv[θ] at fixed p (the paper shows p = 1/100 and p = 1/10),
// PFTK-simplified, L in {1, 2, 4, 8, 16}.
func Fig4(p float64, sz Sizing) *Table {
	if p <= 0 || p > 1 {
		panic("experiments: Fig4 needs p in (0,1]")
	}
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	t := &Table{
		Name:    "fig4",
		Note:    "basic control normalized throughput vs cv[θ] (PFTK-simplified)",
		Columns: []string{"cv", "L1", "L2", "L4", "L8", "L16"},
	}
	seed := uint64(240)
	for _, cv := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999} {
		row := []float64{cv}
		for _, L := range []int{1, 2, 4, 8, 16} {
			seed++
			res := core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			})
			row = append(row, res.Normalized)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5 reproduces Figure 5: TFRC over the ns-2-style RED bottleneck,
// sweeping the number of connections to sweep p. For each L it reports
// the loss-event rate, the normalized throughput x̄/f(p, r) with
// PFTK-standard, and the normalized covariance cov[θ0,θ̂0]·p².
func Fig5(sz Sizing) *Table {
	t := &Table{
		Name:    "fig5",
		Note:    "TFRC normalized throughput and cov[θ,θ̂]p² vs p (ns-2-style RED)",
		Columns: []string{"L", "pairs", "p", "normalized", "covnorm"},
	}
	pr := NS2Profile()
	pr = pr.Scale(sz.SimFactor, 0)
	seed := uint64(340)
	for _, L := range []int{2, 4, 8, 16} {
		for _, pairs := range sz.Pairs {
			seed++
			res := RunSim(pr.Config(pairs, L, seed))
			cls := res.TFRC
			if cls.Events == 0 || cls.MeanRTT <= 0 {
				continue
			}
			f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
			norm := cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
			t.AddRow(float64(L), float64(pairs), cls.LossEventRate, norm, cls.CovNorm)
		}
	}
	return t
}

// Fig6 reproduces Figure 6: the audio sender (fixed 20 ms packet
// spacing, equation-modulated packet length) through a Bernoulli
// dropper, L = 4: normalized throughput and squared CV of θ̂ versus p
// for the three formulae.
func Fig6(sz Sizing) *Table {
	t := &Table{
		Name:    "fig6",
		Note:    "audio sender through Bernoulli dropper: normalized throughput and cv²[θ̂] vs p (L=4)",
		Columns: []string{"p", "sqrt_norm", "pftkstd_norm", "pftksimp_norm", "cv2"},
	}
	params := formula.ParamsForRTT(0.2)
	seed := uint64(440)
	for _, p := range []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25} {
		row := []float64{p}
		var cv2 float64
		for _, f := range formula.All(params) {
			seed++
			res := cbr.NewAudio(f, 4, 0.02, p, seed).Run(sz.Events, sz.Events/10)
			row = append(row, res.Normalized)
			cv2 = res.CVEstimatorSq
		}
		row = append(row, cv2)
		t.AddRow(row...)
	}
	return t
}

// Fig7 reproduces Figure 7: loss-event rates of TFRC (p), TCP (p') and
// a Poisson probe (p”) versus the number of connections, for each L.
// Claim 3 predicts p' <= p <= p” with p increasing in L.
func Fig7(sz Sizing) *Table {
	t := &Table{
		Name:    "fig7",
		Note:    "loss-event rates of TFRC/TCP/Poisson vs number of connections",
		Columns: []string{"L", "pairs", "p_tfrc", "p_tcp", "p_poisson"},
	}
	pr := NS2Profile()
	pr = pr.Scale(sz.SimFactor, 0)
	seed := uint64(540)
	for _, L := range []int{2, 4, 8, 16} {
		for _, pairs := range sz.Pairs {
			seed++
			cfg := pr.Config(pairs, L, seed)
			cfg.ProbeRate = 10 // light Poisson probe
			res := RunSim(cfg)
			t.AddRow(float64(L), float64(pairs),
				res.TFRC.LossEventRate, res.TCP.LossEventRate, res.Poisson.LossEventRate)
		}
	}
	return t
}

// Fig8 reproduces Figure 8: the ratio of TFRC to TCP throughput versus
// the number of connections, per L.
func Fig8(sz Sizing) *Table {
	t := &Table{
		Name:    "fig8",
		Note:    "TFRC/TCP throughput ratio vs number of connections",
		Columns: []string{"L", "pairs", "ratio"},
	}
	pr := NS2Profile()
	pr = pr.Scale(sz.SimFactor, 0)
	seed := uint64(640)
	for _, L := range []int{2, 4, 8, 16} {
		for _, pairs := range sz.Pairs {
			seed++
			res := RunSim(pr.Config(pairs, L, seed))
			if res.TCP.Throughput <= 0 {
				continue
			}
			t.AddRow(float64(L), float64(pairs), res.TFRC.Throughput/res.TCP.Throughput)
		}
	}
	return t
}

// Fig9 reproduces Figure 9: per-TCP-flow throughput against the
// PFTK-standard prediction f(p', r') — the "obedience of TCP to its
// formula" scatter. TCP falls below the formula except at large
// throughputs (few connections).
func Fig9(sz Sizing) *Table {
	t := &Table{
		Name:    "fig9",
		Note:    "TCP throughput vs PFTK-standard prediction, per flow",
		Columns: []string{"pairs", "predicted", "measured"},
	}
	pr := NS2Profile()
	pr = pr.Scale(sz.SimFactor, 0)
	seed := uint64(740)
	for _, pairs := range sz.Pairs {
		seed++
		res := RunSim(pr.Config(pairs, 8, seed))
		for _, st := range res.TCPPerFlow {
			if st.LossEventRate <= 0 || st.MeanRTT <= 0 {
				continue
			}
			f := formula.NewPFTKStandard(formula.ParamsForRTT(st.MeanRTT))
			t.AddRow(float64(pairs), f.Rate(st.LossEventRate), st.Throughput)
		}
	}
	return t
}

// Fig10 reproduces Figure 10: the normalized covariance cov[θ0,θ̂0]·p²
// per testbed/WAN profile (the paper's box plots; we report the pooled
// value per pair count and profile). Values near zero confirm condition
// (C1) of Claim 1.
func Fig10(sz Sizing) *Table {
	t := &Table{
		Name:    "fig10",
		Note:    "normalized covariance cov[θ,θ̂]p² per profile (C1 check)",
		Columns: []string{"profile", "pairs", "covnorm"},
	}
	profiles := append(LabProfiles(), WANProfiles()...)
	seed := uint64(840)
	for pi, pr := range profiles {
		pr = pr.Scale(sz.SimFactor, sz.PairsCap)
		for _, pairs := range pr.Pairs {
			seed++
			res := RunSim(pr.Config(pairs, 8, seed))
			if res.TFRC.Events < 10 {
				continue
			}
			t.AddRow(float64(pi), float64(pairs), res.TFRC.CovNorm)
		}
	}
	return t
}

// Fig11 reproduces Figure 11: the TFRC/TCP throughput ratio versus p on
// the WAN profiles; values above 1 at small p show the
// non-TCP-friendliness the paper reports for INRIA/KTH/UMASS.
func Fig11(sz Sizing) *Table {
	return friendlinessRatio("fig11", WANProfiles(), sz)
}

// Fig16 reproduces Figure 16: the same ratio on the lab profiles
// (DropTail 100 and RED).
func Fig16(sz Sizing) *Table {
	return friendlinessRatio("fig16", []Profile{LabDT100, LabRED}, sz)
}

func friendlinessRatio(name string, profiles []Profile, sz Sizing) *Table {
	t := &Table{
		Name:    name,
		Note:    "TFRC/TCP throughput ratio vs p per profile",
		Columns: []string{"profile", "pairs", "p", "ratio"},
	}
	seed := uint64(940)
	for pi, pr := range profiles {
		pr = pr.Scale(sz.SimFactor, sz.PairsCap)
		for _, pairs := range pr.Pairs {
			seed++
			res := RunSim(pr.Config(pairs, 8, seed))
			if res.TCP.Throughput <= 0 {
				continue
			}
			t.AddRow(float64(pi), float64(pairs), res.TFRC.LossEventRate,
				res.TFRC.Throughput/res.TCP.Throughput)
		}
	}
	return t
}

// Breakdown reproduces Figures 12-15 (WAN) and 18-19 (lab): for each
// profile and pair count, the four sub-condition ratios of the
// TCP-friendliness breakdown:
//
//	norm_tfrc = x̄/f(p, r)    (conservativeness)
//	p_ratio   = p'/p          (loss-event rate comparison)
//	rtt_ratio = r'/r          (round-trip time comparison)
//	norm_tcp  = x̄'/f(p', r') (TCP's obedience to the formula)
func Breakdown(name string, profiles []Profile, sz Sizing) *Table {
	t := &Table{
		Name:    name,
		Note:    "TCP-friendliness breakdown: x/f(p,r), p'/p, r'/r, x'/f(p',r')",
		Columns: []string{"profile", "pairs", "p", "norm_tfrc", "p_ratio", "rtt_ratio", "norm_tcp"},
	}
	seed := uint64(1040)
	for pi, pr := range profiles {
		pr = pr.Scale(sz.SimFactor, sz.PairsCap)
		for _, pairs := range pr.Pairs {
			seed++
			res := RunSim(pr.Config(pairs, 8, seed))
			tf, tc := res.TFRC, res.TCP
			if tf.Events == 0 || tc.Events == 0 || tf.MeanRTT <= 0 || tc.MeanRTT <= 0 {
				continue
			}
			ftf := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
			ftc := formula.NewPFTKStandard(formula.ParamsForRTT(tc.MeanRTT))
			t.AddRow(float64(pi), float64(pairs), tf.LossEventRate,
				tf.Throughput/ftf.Rate(math.Max(tf.LossEventRate, 1e-9)),
				tc.LossEventRate/tf.LossEventRate,
				tc.MeanRTT/tf.MeanRTT,
				tc.Throughput/ftc.Rate(math.Max(tc.LossEventRate, 1e-9)))
		}
	}
	return t
}

// Fig12to15 is the WAN breakdown (Figures 12, 13, 14, 15).
func Fig12to15(sz Sizing) *Table { return Breakdown("fig12-15", WANProfiles(), sz) }

// Fig18to19 is the lab breakdown (Figures 18 and 19: DropTail 100, RED).
func Fig18to19(sz Sizing) *Table {
	return Breakdown("fig18-19", []Profile{LabDT100, LabRED}, sz)
}

// Fig17 reproduces Figure 17: the ratio p'/p of TCP's to TFRC's
// loss-event rate over a DropTail bottleneck with buffer b — each flow
// in isolation (left) and one TCP competing with one TFRC (right).
func Fig17(sz Sizing) *Table {
	t := &Table{
		Name:    "fig17",
		Note:    "p'(TCP)/p(TFRC) over DropTail buffer b: isolation and competing",
		Columns: []string{"buffer", "isolation_ratio", "competing_ratio"},
	}
	base := Profile{
		Name: "fig17", Capacity: 1.25e6, Queue: DropTail,
		BaseDelay: 0.01, RevDelay: 0.03, Comprehensive: true,
		Duration: 600, Warmup: 60,
	}
	base = base.Scale(sz.SimFactor, 0)
	seed := uint64(1140)
	for _, buf := range []int{20, 40, 80, 160, 300} {
		seed += 10
		cfgT := base.Config(1, 8, seed)
		cfgT.Buffer = buf
		cfgT.NTCP = 0
		tfrcAlone := RunSim(cfgT)

		cfgC := base.Config(1, 8, seed+1)
		cfgC.Buffer = buf
		cfgC.NTFRC = 0
		tcpAlone := RunSim(cfgC)

		cfgBoth := base.Config(1, 8, seed+2)
		cfgBoth.Buffer = buf
		both := RunSim(cfgBoth)

		iso, comp := 0.0, 0.0
		if tfrcAlone.TFRC.LossEventRate > 0 {
			iso = tcpAlone.TCP.LossEventRate / tfrcAlone.TFRC.LossEventRate
		}
		if both.TFRC.LossEventRate > 0 {
			comp = both.TCP.LossEventRate / both.TFRC.LossEventRate
		}
		t.AddRow(float64(buf), iso, comp)
	}
	return t
}

// TableI tabulates the WAN profile stand-ins for the paper's Table I:
// capacity (packets/second), base RTT in milliseconds, queue kind
// (0 = DropTail) and buffer.
func TableI() *Table {
	t := &Table{
		Name:    "tableI",
		Note:    "WAN profile stand-ins (see Table I of the paper and DESIGN.md substitutions)",
		Columns: []string{"profile", "capacity_pps", "rtt_ms", "queue", "buffer"},
	}
	for i, pr := range WANProfiles() {
		t.AddRow(float64(i), pr.Capacity/1000, (2*pr.BaseDelay+pr.RevDelay)*1000,
			float64(pr.Queue), float64(pr.Buffer))
	}
	return t
}

// Claim3 evaluates the many-sources Markov congestion model: the
// loss-event rate seen by TCP (fully responsive), EBRC for several
// windows, and a Poisson source. Claim 3 predicts the p' <= p <= p”
// ordering with p increasing in L.
func Claim3() *Table {
	t := &Table{
		Name:    "claim3",
		Note:    "many-sources limit: p seen by TCP / EBRC(L) / Poisson",
		Columns: []string{"source", "L", "p_seen"},
	}
	m := analytic.TwoStateCongestion(0.001, 0.08, 0.3)
	f := formula.NewPFTKStandard(formula.ParamsForRTT(0.05))
	tcpP, ebrc, poisson := m.Claim3Ordering(f, []int{2, 4, 8, 16})
	t.AddRow(0, 1, tcpP)
	for i, L := range []int{2, 4, 8, 16} {
		t.AddRow(1, float64(L), ebrc[i])
	}
	t.AddRow(2, 0, poisson)
	return t
}

// Claim4 evaluates the fixed-capacity competing-senders model: the
// analytic ratio 4/(1+β)² per β, and the fluid simulation's measured
// ratio for the TCP-like β = 1/2 (expected above 1 but less pronounced
// than the analytic value).
func Claim4() *Table {
	t := &Table{
		Name:    "claim4",
		Note:    "AIMD vs EBRC loss-event rate ratio: analytic and shared-link fluid sim",
		Columns: []string{"beta", "analytic_ratio", "fluid_ratio"},
	}
	for _, beta := range []float64{0.25, 0.5, 0.75} {
		a := analytic.AIMDParams{Alpha: 1, Beta: beta}
		fluid := analytic.SimulateFluidShared(a, 200, 8, 40000, 7)
		t.AddRow(beta, analytic.Claim4Ratio(a), fluid.Ratio)
	}
	return t
}
