package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/cbr"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/numerics"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/tfrc"
)

// Sizing bundles the Monte Carlo and simulation effort knobs so tests
// and benches can run scaled-down versions of every figure.
type Sizing struct {
	// Events is the Monte Carlo loss-event budget per point.
	Events int
	// SimFactor scales packet-level run durations (1 = full).
	SimFactor float64
	// Pairs is the connection sweep for the ns-2-style experiments.
	Pairs []int
	// PairsCap truncates profile sweeps (0 = all).
	PairsCap int
	// Shards, when above 1, runs the scenarios that support it (the
	// multi-hop, routed-reverse and scale-out families — Sharded in the
	// registry) on the space-parallel sharded engine with at most that
	// many domains per simulation. Output is byte-identical at any
	// value; scenarios without sharded support ignore it.
	Shards int
}

// Full is the publication-grade sizing.
var Full = Sizing{Events: 200000, SimFactor: 1, Pairs: []int{1, 2, 4, 8, 16, 32, 64}}

// Quick is a fast sizing for tests and benches.
var Quick = Sizing{Events: 20000, SimFactor: 0.15, Pairs: []int{1, 4, 8}, PairsCap: 3}

// NS2Profile mirrors the paper's ns-2 setup: 15 Mb/s RED bottleneck,
// RTT about 50 ms, paper RED thresholds over the bandwidth-delay
// product.
func NS2Profile() Profile {
	return Profile{
		Name: "ns2", Capacity: 1.875e6, Queue: RED,
		BDPPackets: 1.875e6 / 1000 * 0.05,
		BaseDelay:  0.01, RevDelay: 0.03,
		Comprehensive: true,
		Duration:      400, Warmup: 60,
	}
}

func init() {
	register(&Scenario{Name: "fig1",
		Note: "formula landscape: f(1/x) and g = 1/f(1/x) for the three formulae",
		Plan: tablePlan("fig1", func(Sizing) *Table { return Fig1() })})
	register(&Scenario{Name: "fig2",
		Note: "deviation from convexity of PFTK-standard g, plus the summary ratios",
		Plan: combinePlans(
			tablePlan("fig2", func(Sizing) *Table { return Fig2() }),
			planFig2Summary)})
	register(&Scenario{Name: "fig3",
		Note: "basic control normalized throughput vs p (SQRT and PFTK-simplified panels)",
		Plan: combinePlans(planFig3(tfrc.SQRT), planFig3(tfrc.PFTKSimplified))})
	register(&Scenario{Name: "fig3c",
		Note: "comprehensive control normalized throughput vs p",
		Plan: planFig3Comprehensive})
	register(&Scenario{Name: "fig4",
		Note: "basic control normalized throughput vs cv[θ] at p = 0.01 and 0.1",
		Plan: combinePlans(planFig4(0.01, "fig4-p001"), planFig4(0.1, "fig4-p01"))})
	register(&Scenario{Name: "fig5",
		Note: "TFRC normalized throughput and cov[θ,θ̂]p² vs p (ns-2-style RED)",
		Plan: planFig5})
	register(&Scenario{Name: "fig6",
		Note: "audio sender through Bernoulli dropper vs p",
		Plan: planFig6})
	register(&Scenario{Name: "fig7",
		Note: "loss-event rates of TFRC/TCP/Poisson vs number of connections",
		Plan: planFig7})
	register(&Scenario{Name: "fig8",
		Note: "TFRC/TCP throughput ratio vs number of connections",
		Plan: planFig8})
	register(&Scenario{Name: "fig9",
		Note: "TCP throughput vs PFTK-standard prediction, per flow",
		Plan: planFig9})
	register(&Scenario{Name: "fig10",
		Note: "normalized covariance per profile (C1 check)",
		Plan: planFig10})
	register(&Scenario{Name: "fig11",
		Note: "TFRC/TCP throughput ratio vs p on the WAN profiles",
		Plan: planFriendliness("fig11", WANProfiles)})
	register(&Scenario{Name: "fig12-15",
		Note: "TCP-friendliness breakdown on the WAN profiles",
		Plan: planBreakdown("fig12-15", WANProfiles)})
	register(&Scenario{Name: "fig16",
		Note: "TFRC/TCP throughput ratio vs p on the lab profiles",
		Plan: planFriendliness("fig16", func() []Profile { return []Profile{LabDT100, LabRED} })})
	register(&Scenario{Name: "fig17",
		Note: "p'(TCP)/p(TFRC) over DropTail buffer b: isolation and competing",
		Plan: planFig17})
	register(&Scenario{Name: "fig18-19",
		Note: "TCP-friendliness breakdown on the lab profiles",
		Plan: planBreakdown("fig18-19", func() []Profile { return []Profile{LabDT100, LabRED} })})
	register(&Scenario{Name: "tableI",
		Note: "WAN profile stand-ins for the paper's Table I",
		Plan: tablePlan("tableI", func(Sizing) *Table { return TableI() })})
	register(&Scenario{Name: "claim3",
		Note: "many-sources limit: p seen by TCP / EBRC(L) / Poisson",
		Plan: tablePlan("claim3", func(Sizing) *Table { return Claim3() })})
	register(&Scenario{Name: "claim4",
		Note: "AIMD vs EBRC loss-event rate ratio: analytic and fluid sim",
		Plan: planClaim4})
}

// Fig1 tabulates the functions of Figure 1: x, f(1/x) and 1/f(1/x) for
// SQRT, PFTK-standard and PFTK-simplified with r = 1, q = 4r.
func Fig1() *Table {
	t := &Table{
		Name:    "fig1",
		Note:    "x, f(1/x) and 1/f(1/x) for SQRT / PFTK-standard / PFTK-simplified (r=1, q=4r)",
		Columns: []string{"x", "sqrt_f", "pftkstd_f", "pftksimp_f", "sqrt_g", "pftkstd_g", "pftksimp_g"},
	}
	fs := formula.All(formula.DefaultParams())
	for _, x := range numerics.Grid(1.0, 50, 99) {
		row := []float64{x}
		for _, f := range fs {
			row = append(row, formula.F1x(f)(x))
		}
		for _, f := range fs {
			row = append(row, formula.G(f)(x))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig2 tabulates Figure 2: g(x) = 1/f(1/x) for PFTK-standard with b = 1
// (the paper's Figure 2 setting, see DESIGN.md errata), its convex
// closure, and the ratio; the last row's ratio column attains the
// deviation bound r ≈ 1.0026 near x = 3.375.
func Fig2() *Table {
	t := &Table{
		Name:    "fig2",
		Note:    "PFTK-standard g, convex closure g**, and g/g** around the kink (b=1)",
		Columns: []string{"x", "g", "gstar", "ratio"},
	}
	f := formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: 1})
	g := formula.G(f)
	grid := numerics.Grid(1.01, 50, 20000)
	closure := numerics.ConvexClosure(g, grid)
	for _, x := range numerics.Grid(3.25, 3.5, 26) {
		gx, cx := g(x), closure.Eval(x)
		t.AddRow(x, gx, cx, gx/cx)
	}
	return t
}

// planFig2Summary computes the deviation ratio per b as one job each.
func planFig2Summary(Sizing) ([]runner.Job, FoldFunc) {
	bs := []float64{1, 2}
	jobs := make([]runner.Job, len(bs))
	for i, b := range bs {
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("fig2-summary b=%g", b),
			Run: func(context.Context) any {
				f := formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: b})
				ratio, arg := formula.DeviationFromConvexity(f, 1.01, 50, 40000)
				return [2]float64{ratio, arg}
			},
		}
	}
	fold := func(results []any) []*Table {
		t := &Table{
			Name:    "fig2-summary",
			Note:    "deviation-from-convexity ratio r = sup g/g** for PFTK-standard",
			Columns: []string{"b", "ratio", "argmax_x"},
		}
		for i, b := range bs {
			ra, ok := results[i].([2]float64)
			if !ok {
				continue // job lost under a hardened executor
			}
			t.AddRow(b, ra[0], ra[1])
		}
		return []*Table{t}
	}
	return jobs, fold
}

// Fig2Summary returns the deviation ratio and its argmax for both b = 1
// (the paper's plot) and b = 2 (the text's stated default).
func Fig2Summary() *Table {
	return runPlan(planFig2Summary, Sizing{})[0]
}

// mcGridPlan is the shared shape of Figures 3, 3-comprehensive and 4: a
// Monte Carlo sweep over an x-axis and the window L, one job per cell,
// seeds assigned in row-major order from seed0+1.
func mcGridPlan(name, note, xcol string, xs []float64, seed0 uint64,
	run func(x float64, L int, seed uint64, sz Sizing) float64) PlanFunc {
	Ls := []int{1, 2, 4, 8, 16}
	return func(sz Sizing) ([]runner.Job, FoldFunc) {
		var jobs []runner.Job
		seed := seed0
		for _, x := range xs {
			for _, L := range Ls {
				seed++
				x, L, seed := x, L, seed
				jobs = append(jobs, runner.Job{
					Name: fmt.Sprintf("%s %s=%g L=%d", name, xcol, x, L),
					Seed: seed,
					Run:  func(context.Context) any { return run(x, L, seed, sz) },
				})
			}
		}
		fold := func(results []any) []*Table {
			t := &Table{Name: name, Note: note,
				Columns: []string{xcol, "L1", "L2", "L4", "L8", "L16"}}
			i := 0
			for _, x := range xs {
				row := []float64{x}
				for range Ls {
					v, _ := results[i].(float64) // 0 for a lost job
					row = append(row, v)
					i++
				}
				t.AddRow(row...)
			}
			return []*Table{t}
		}
		return jobs, fold
	}
}

// planFig3 is one panel of Figure 3: normalized throughput of the basic
// control versus p with cv[θ] = 1 - 1/1000, for L in {1, 2, 4, 8, 16}.
func planFig3(kind tfrc.FormulaKind) PlanFunc {
	var f formula.Formula
	name := "fig3-sqrt"
	switch kind {
	case tfrc.SQRT:
		f = formula.NewSQRT(formula.DefaultParams())
	case tfrc.PFTKSimplified:
		f = formula.NewPFTKSimplified(formula.DefaultParams())
		name = "fig3-pftksimp"
	default:
		panic("experiments: Fig3 takes SQRT or PFTKSimplified")
	}
	cv := 1 - 1.0/1000
	return mcGridPlan(name, "basic control normalized throughput vs p, cv=1-1/1000", "p",
		[]float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}, 40,
		func(p float64, L int, seed uint64, sz Sizing) float64 {
			return core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			}).Normalized
		})
}

// Fig3 reproduces Figure 3; kind selects SQRT (left panel) or
// PFTK-simplified (right panel).
func Fig3(kind tfrc.FormulaKind, sz Sizing) *Table {
	return runPlan(planFig3(kind), sz)[0]
}

// planFig3Comprehensive runs the same sweep with the comprehensive
// control (the paper reports the same shape with less pronounced
// effects).
var planFig3Comprehensive = func() PlanFunc {
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	cv := 1 - 1.0/1000
	return mcGridPlan("fig3-comprehensive",
		"comprehensive control normalized throughput vs p (PFTK-simplified)", "p",
		[]float64{0.01, 0.1, 0.2, 0.3, 0.4}, 140,
		func(p float64, L int, seed uint64, sz Sizing) float64 {
			return core.RunComprehensive(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			}).Normalized
		})
}()

// Fig3Comprehensive reproduces the comprehensive-control panel.
func Fig3Comprehensive(sz Sizing) *Table {
	return runPlan(planFig3Comprehensive, sz)[0]
}

// planFig4 is Figure 4 at one p: normalized throughput of the basic
// control versus cv[θ], PFTK-simplified, L in {1, 2, 4, 8, 16}.
func planFig4(p float64, name string) PlanFunc {
	if p <= 0 || p > 1 {
		panic("experiments: Fig4 needs p in (0,1]")
	}
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	return mcGridPlan(name,
		"basic control normalized throughput vs cv[θ] (PFTK-simplified)", "cv",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999}, 240,
		func(cv float64, L int, seed uint64, sz Sizing) float64 {
			return core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  sz.Events,
			}).Normalized
		})
}

// Fig4 reproduces Figure 4 at one p (the paper shows p = 1/100 and
// p = 1/10).
func Fig4(p float64, sz Sizing) *Table {
	return runPlan(planFig4(p, "fig4"), sz)[0]
}

// lpCells expands the ns-2-style L × pairs sweep shared by Figures 5,
// 7 and 8, assigning seeds in row-major order from seed0+1.
func lpCells(figure string, sz Sizing, seed0 uint64, mut func(*SimConfig)) []simCell {
	pr := NS2Profile().Scale(sz.SimFactor, 0)
	var cells []simCell
	seed := seed0
	for _, L := range []int{2, 4, 8, 16} {
		for _, pairs := range sz.Pairs {
			seed++
			cfg := pr.Config(pairs, L, seed)
			if mut != nil {
				mut(&cfg)
			}
			cells = append(cells, simCell{
				name: fmt.Sprintf("%s L=%d pairs=%d", figure, L, pairs),
				cfg:  cfg, L: L, pairs: pairs,
			})
		}
	}
	return cells
}

// profileCells expands the per-profile pair sweep shared by Figures
// 10, 11, 16 and the breakdowns (window L = 8 throughout).
func profileCells(figure string, profiles []Profile, sz Sizing, seed0 uint64) []simCell {
	var cells []simCell
	seed := seed0
	for pi, pr := range profiles {
		pr = pr.Scale(sz.SimFactor, sz.PairsCap)
		for _, pairs := range pr.Pairs {
			seed++
			cells = append(cells, simCell{
				name: fmt.Sprintf("%s %s pairs=%d", figure, pr.Name, pairs),
				cfg:  pr.Config(pairs, 8, seed), profile: pi, pairs: pairs,
			})
		}
	}
	return cells
}

// planFig5 reproduces Figure 5: TFRC over the ns-2-style RED bottleneck,
// sweeping the number of connections to sweep p. For each L it reports
// the loss-event rate, the normalized throughput x̄/f(p, r) with
// PFTK-standard, and the normalized covariance cov[θ0,θ̂0]·p².
func planFig5(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "fig5",
		Note:    "TFRC normalized throughput and cov[θ,θ̂]p² vs p (ns-2-style RED)",
		Columns: []string{"L", "pairs", "p", "normalized", "covnorm"},
	}
	return simGridPlan(t, lpCells("fig5", sz, 340, nil),
		func(c simCell, res SimResult) [][]float64 {
			cls := res.TFRC
			if cls.Events == 0 || cls.MeanRTT <= 0 {
				return nil
			}
			f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
			norm := cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
			return [][]float64{{float64(c.L), float64(c.pairs),
				cls.LossEventRate, norm, cls.CovNorm}}
		})
}

// Fig5 reproduces Figure 5.
func Fig5(sz Sizing) *Table { return runPlan(planFig5, sz)[0] }

// planFig6 reproduces Figure 6: the audio sender (fixed 20 ms packet
// spacing, equation-modulated packet length) through a Bernoulli
// dropper, L = 4: normalized throughput and squared CV of θ̂ versus p
// for the three formulae.
func planFig6(sz Sizing) ([]runner.Job, FoldFunc) {
	params := formula.ParamsForRTT(0.2)
	ps := []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25}
	fs := formula.All(params)
	var jobs []runner.Job
	seed := uint64(440)
	for _, p := range ps {
		for _, f := range fs {
			seed++
			p, f, seed := p, f, seed
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("fig6 %s p=%g", f.Name(), p),
				Seed: seed,
				Run: func(context.Context) any {
					return cbr.NewAudio(f, 4, 0.02, p, seed).Run(sz.Events, sz.Events/10)
				},
			})
		}
	}
	fold := func(results []any) []*Table {
		t := &Table{
			Name:    "fig6",
			Note:    "audio sender through Bernoulli dropper: normalized throughput and cv²[θ̂] vs p (L=4)",
			Columns: []string{"p", "sqrt_norm", "pftkstd_norm", "pftksimp_norm", "cv2"},
		}
		i := 0
		for _, p := range ps {
			row := []float64{p}
			var cv2 float64
			for range fs {
				res, _ := results[i].(cbr.AudioResult) // zero for a lost job
				row = append(row, res.Normalized)
				cv2 = res.CVEstimatorSq
				i++
			}
			row = append(row, cv2)
			t.AddRow(row...)
		}
		return []*Table{t}
	}
	return jobs, fold
}

// Fig6 reproduces Figure 6.
func Fig6(sz Sizing) *Table { return runPlan(planFig6, sz)[0] }

// planFig7 reproduces Figure 7: loss-event rates of TFRC (p), TCP (p')
// and a Poisson probe (p”) versus the number of connections, for each
// L. Claim 3 predicts p' <= p <= p” with p increasing in L.
func planFig7(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "fig7",
		Note:    "loss-event rates of TFRC/TCP/Poisson vs number of connections",
		Columns: []string{"L", "pairs", "p_tfrc", "p_tcp", "p_poisson"},
	}
	probe := func(cfg *SimConfig) { cfg.ProbeRate = 10 } // light Poisson probe
	return simGridPlan(t, lpCells("fig7", sz, 540, probe),
		func(c simCell, res SimResult) [][]float64 {
			return [][]float64{{float64(c.L), float64(c.pairs),
				res.TFRC.LossEventRate, res.TCP.LossEventRate, res.Poisson.LossEventRate}}
		})
}

// Fig7 reproduces Figure 7.
func Fig7(sz Sizing) *Table { return runPlan(planFig7, sz)[0] }

// planFig8 reproduces Figure 8: the ratio of TFRC to TCP throughput
// versus the number of connections, per L.
func planFig8(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "fig8",
		Note:    "TFRC/TCP throughput ratio vs number of connections",
		Columns: []string{"L", "pairs", "ratio"},
	}
	return simGridPlan(t, lpCells("fig8", sz, 640, nil),
		func(c simCell, res SimResult) [][]float64 {
			if res.TCP.Throughput <= 0 {
				return nil
			}
			return [][]float64{{float64(c.L), float64(c.pairs),
				res.TFRC.Throughput / res.TCP.Throughput}}
		})
}

// Fig8 reproduces Figure 8.
func Fig8(sz Sizing) *Table { return runPlan(planFig8, sz)[0] }

// planFig9 reproduces Figure 9: per-TCP-flow throughput against the
// PFTK-standard prediction f(p', r') — the "obedience of TCP to its
// formula" scatter. TCP falls below the formula except at large
// throughputs (few connections).
func planFig9(sz Sizing) ([]runner.Job, FoldFunc) {
	pr := NS2Profile().Scale(sz.SimFactor, 0)
	var cells []simCell
	seed := uint64(740)
	for _, pairs := range sz.Pairs {
		seed++
		cells = append(cells, simCell{
			name: fmt.Sprintf("fig9 pairs=%d", pairs),
			cfg:  pr.Config(pairs, 8, seed), pairs: pairs,
		})
	}
	t := &Table{
		Name:    "fig9",
		Note:    "TCP throughput vs PFTK-standard prediction, per flow",
		Columns: []string{"pairs", "predicted", "measured"},
	}
	return simGridPlan(t, cells, func(c simCell, res SimResult) [][]float64 {
		var rows [][]float64
		for _, st := range res.TCPPerFlow {
			if st.LossEventRate <= 0 || st.MeanRTT <= 0 {
				continue
			}
			f := formula.NewPFTKStandard(formula.ParamsForRTT(st.MeanRTT))
			rows = append(rows, []float64{float64(c.pairs), f.Rate(st.LossEventRate), st.Throughput})
		}
		return rows
	})
}

// Fig9 reproduces Figure 9.
func Fig9(sz Sizing) *Table { return runPlan(planFig9, sz)[0] }

// planFig10 reproduces Figure 10: the normalized covariance
// cov[θ0,θ̂0]·p² per testbed/WAN profile (the paper's box plots; we
// report the pooled value per pair count and profile). Values near zero
// confirm condition (C1) of Claim 1.
func planFig10(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "fig10",
		Note:    "normalized covariance cov[θ,θ̂]p² per profile (C1 check)",
		Columns: []string{"profile", "pairs", "covnorm"},
	}
	cells := profileCells("fig10", append(LabProfiles(), WANProfiles()...), sz, 840)
	return simGridPlan(t, cells, func(c simCell, res SimResult) [][]float64 {
		if res.TFRC.Events < 10 {
			return nil
		}
		return [][]float64{{float64(c.profile), float64(c.pairs), res.TFRC.CovNorm}}
	})
}

// Fig10 reproduces Figure 10.
func Fig10(sz Sizing) *Table { return runPlan(planFig10, sz)[0] }

// planFriendliness is the shared plan of Figures 11 and 16: the
// TFRC/TCP throughput ratio versus p per profile.
func planFriendliness(name string, profiles func() []Profile) PlanFunc {
	return func(sz Sizing) ([]runner.Job, FoldFunc) {
		t := &Table{
			Name:    name,
			Note:    "TFRC/TCP throughput ratio vs p per profile",
			Columns: []string{"profile", "pairs", "p", "ratio"},
		}
		cells := profileCells(name, profiles(), sz, 940)
		return simGridPlan(t, cells, func(c simCell, res SimResult) [][]float64 {
			if res.TCP.Throughput <= 0 {
				return nil
			}
			return [][]float64{{float64(c.profile), float64(c.pairs),
				res.TFRC.LossEventRate, res.TFRC.Throughput / res.TCP.Throughput}}
		})
	}
}

// Fig11 reproduces Figure 11: the TFRC/TCP throughput ratio versus p on
// the WAN profiles; values above 1 at small p show the
// non-TCP-friendliness the paper reports for INRIA/KTH/UMASS.
func Fig11(sz Sizing) *Table {
	return runPlan(planFriendliness("fig11", WANProfiles), sz)[0]
}

// Fig16 reproduces Figure 16: the same ratio on the lab profiles
// (DropTail 100 and RED).
func Fig16(sz Sizing) *Table {
	return runPlan(planFriendliness("fig16",
		func() []Profile { return []Profile{LabDT100, LabRED} }), sz)[0]
}

// planBreakdown reproduces Figures 12-15 (WAN) and 18-19 (lab): for
// each profile and pair count, the four sub-condition ratios of the
// TCP-friendliness breakdown:
//
//	norm_tfrc = x̄/f(p, r)    (conservativeness)
//	p_ratio   = p'/p          (loss-event rate comparison)
//	rtt_ratio = r'/r          (round-trip time comparison)
//	norm_tcp  = x̄'/f(p', r') (TCP's obedience to the formula)
func planBreakdown(name string, profiles func() []Profile) PlanFunc {
	return func(sz Sizing) ([]runner.Job, FoldFunc) {
		t := &Table{
			Name:    name,
			Note:    "TCP-friendliness breakdown: x/f(p,r), p'/p, r'/r, x'/f(p',r')",
			Columns: []string{"profile", "pairs", "p", "norm_tfrc", "p_ratio", "rtt_ratio", "norm_tcp"},
		}
		cells := profileCells(name, profiles(), sz, 1040)
		return simGridPlan(t, cells, func(c simCell, res SimResult) [][]float64 {
			tf, tc := res.TFRC, res.TCP
			if tf.Events == 0 || tc.Events == 0 || tf.MeanRTT <= 0 || tc.MeanRTT <= 0 {
				return nil
			}
			ftf := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
			ftc := formula.NewPFTKStandard(formula.ParamsForRTT(tc.MeanRTT))
			return [][]float64{{float64(c.profile), float64(c.pairs), tf.LossEventRate,
				tf.Throughput / ftf.Rate(math.Max(tf.LossEventRate, 1e-9)),
				tc.LossEventRate / tf.LossEventRate,
				tc.MeanRTT / tf.MeanRTT,
				tc.Throughput / ftc.Rate(math.Max(tc.LossEventRate, 1e-9))}}
		})
	}
}

// Breakdown runs the TCP-friendliness breakdown over the given
// profiles.
func Breakdown(name string, profiles []Profile, sz Sizing) *Table {
	return runPlan(planBreakdown(name, func() []Profile { return profiles }), sz)[0]
}

// Fig12to15 is the WAN breakdown (Figures 12, 13, 14, 15).
func Fig12to15(sz Sizing) *Table {
	return runPlan(planBreakdown("fig12-15", WANProfiles), sz)[0]
}

// Fig18to19 is the lab breakdown (Figures 18 and 19: DropTail 100, RED).
func Fig18to19(sz Sizing) *Table {
	return runPlan(planBreakdown("fig18-19",
		func() []Profile { return []Profile{LabDT100, LabRED} }), sz)[0]
}

// planFig17 reproduces Figure 17: the ratio p'/p of TCP's to TFRC's
// loss-event rate over a DropTail bottleneck with buffer b — each flow
// in isolation (left) and one TCP competing with one TFRC (right).
// Each buffer point expands into three independent sims (TFRC alone,
// TCP alone, both).
func planFig17(sz Sizing) ([]runner.Job, FoldFunc) {
	base := Profile{
		Name: "fig17", Capacity: 1.25e6, Queue: DropTail,
		BaseDelay: 0.01, RevDelay: 0.03, Comprehensive: true,
		Duration: 600, Warmup: 60,
	}
	base = base.Scale(sz.SimFactor, 0)
	bufs := []int{20, 40, 80, 160, 300}
	var jobs []runner.Job
	seed := uint64(1140)
	for _, buf := range bufs {
		seed += 10
		cfgT := base.Config(1, 8, seed)
		cfgT.Buffer = buf
		cfgT.NTCP = 0
		jobs = append(jobs, simJob(fmt.Sprintf("fig17 buf=%d tfrc-alone", buf), cfgT))

		cfgC := base.Config(1, 8, seed+1)
		cfgC.Buffer = buf
		cfgC.NTFRC = 0
		jobs = append(jobs, simJob(fmt.Sprintf("fig17 buf=%d tcp-alone", buf), cfgC))

		cfgBoth := base.Config(1, 8, seed+2)
		cfgBoth.Buffer = buf
		jobs = append(jobs, simJob(fmt.Sprintf("fig17 buf=%d competing", buf), cfgBoth))
	}
	fold := func(results []any) []*Table {
		t := &Table{
			Name:    "fig17",
			Note:    "p'(TCP)/p(TFRC) over DropTail buffer b: isolation and competing",
			Columns: []string{"buffer", "isolation_ratio", "competing_ratio"},
		}
		for i, buf := range bufs {
			tfrcAlone, okA := results[3*i].(SimResult)
			tcpAlone, okB := results[3*i+1].(SimResult)
			both, okC := results[3*i+2].(SimResult)
			if !okA || !okB || !okC {
				continue // a leg of the triple was lost under a hardened executor
			}
			iso, comp := 0.0, 0.0
			if tfrcAlone.TFRC.LossEventRate > 0 {
				iso = tcpAlone.TCP.LossEventRate / tfrcAlone.TFRC.LossEventRate
			}
			if both.TFRC.LossEventRate > 0 {
				comp = both.TCP.LossEventRate / both.TFRC.LossEventRate
			}
			t.AddRow(float64(buf), iso, comp)
		}
		return []*Table{t}
	}
	return jobs, fold
}

// Fig17 reproduces Figure 17.
func Fig17(sz Sizing) *Table { return runPlan(planFig17, sz)[0] }

// TableI tabulates the WAN profile stand-ins for the paper's Table I:
// capacity (packets/second), base RTT in milliseconds, queue kind
// (0 = DropTail) and buffer.
func TableI() *Table {
	t := &Table{
		Name:    "tableI",
		Note:    "WAN profile stand-ins (see Table I of the paper and DESIGN.md substitutions)",
		Columns: []string{"profile", "capacity_pps", "rtt_ms", "queue", "buffer"},
	}
	for i, pr := range WANProfiles() {
		t.AddRow(float64(i), pr.Capacity/1000, (2*pr.BaseDelay+pr.RevDelay)*1000,
			float64(pr.Queue), float64(pr.Buffer))
	}
	return t
}

// Claim3 evaluates the many-sources Markov congestion model: the
// loss-event rate seen by TCP (fully responsive), EBRC for several
// windows, and a Poisson source. Claim 3 predicts the p' <= p <= p”
// ordering with p increasing in L.
func Claim3() *Table {
	t := &Table{
		Name:    "claim3",
		Note:    "many-sources limit: p seen by TCP / EBRC(L) / Poisson",
		Columns: []string{"source", "L", "p_seen"},
	}
	m := analytic.TwoStateCongestion(0.001, 0.08, 0.3)
	f := formula.NewPFTKStandard(formula.ParamsForRTT(0.05))
	tcpP, ebrc, poisson := m.Claim3Ordering(f, []int{2, 4, 8, 16})
	t.AddRow(0, 1, tcpP)
	for i, L := range []int{2, 4, 8, 16} {
		t.AddRow(1, float64(L), ebrc[i])
	}
	t.AddRow(2, 0, poisson)
	return t
}

// planClaim4 evaluates the fixed-capacity competing-senders model: the
// analytic ratio 4/(1+β)² per β, and the fluid simulation's measured
// ratio for the TCP-like β = 1/2 (expected above 1 but less pronounced
// than the analytic value). One fluid sim per β.
func planClaim4(Sizing) ([]runner.Job, FoldFunc) {
	betas := []float64{0.25, 0.5, 0.75}
	jobs := make([]runner.Job, len(betas))
	for i, beta := range betas {
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("claim4 beta=%g", beta),
			Seed: 7,
			Run: func(context.Context) any {
				a := analytic.AIMDParams{Alpha: 1, Beta: beta}
				return analytic.SimulateFluidShared(a, 200, 8, 40000, 7).Ratio
			},
		}
	}
	fold := func(results []any) []*Table {
		t := &Table{
			Name:    "claim4",
			Note:    "AIMD vs EBRC loss-event rate ratio: analytic and shared-link fluid sim",
			Columns: []string{"beta", "analytic_ratio", "fluid_ratio"},
		}
		for i, beta := range betas {
			v, ok := results[i].(float64)
			if !ok {
				continue // job lost under a hardened executor
			}
			a := analytic.AIMDParams{Alpha: 1, Beta: beta}
			t.AddRow(beta, analytic.Claim4Ratio(a), v)
		}
		return []*Table{t}
	}
	return jobs, fold
}

// Claim4 evaluates Claim 4.
func Claim4() *Table { return runPlan(planClaim4, Sizing{})[0] }
