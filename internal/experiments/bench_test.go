package experiments_test

import (
	"testing"

	"repro/internal/perfbench"
)

// The benchmark body lives in internal/perfbench so that this wrapper
// and `ebrc -bench` (BENCH_<n>.json) measure identical workloads. This
// file is an external test package because perfbench imports
// experiments.

func BenchmarkDumbbellSteadyState(b *testing.B) { perfbench.DumbbellSteadyState(b) }

func BenchmarkParkingLotSteadyState(b *testing.B) { perfbench.ParkingLotSteadyState(b) }

func BenchmarkDeepChainSteadyState(b *testing.B) { perfbench.DeepChainSteadyState(b) }

func BenchmarkReversePathSteadyState(b *testing.B) { perfbench.ReversePathSteadyState(b) }

func BenchmarkShardedChainBaseline(b *testing.B) { perfbench.ShardedChainBaseline(b) }

func BenchmarkShardedChainSteadyState(b *testing.B) { perfbench.ShardedChainSteadyState(b) }

func BenchmarkCheckpointedChainSteadyState(b *testing.B) { perfbench.CheckpointedChainSteadyState(b) }
