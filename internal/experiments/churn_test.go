package experiments

import (
	"bytes"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/runner"
)

// churnTestConfig is a small dumbbell with forward and reverse churn:
// every protocol arrives, the run is short, and LeakCheck (armed by
// TestMain) audits the freelist invariant after the mid-run departures.
func churnTestConfig(shards int) TopoSimConfig {
	cfg := parkingLotBase(Sizing{SimFactor: 0.04, Shards: shards})
	cfg.MirrorRev = true
	cfg.Seed = 9400
	cfg.ForceEpochs = churnEpochs
	end := cfg.Warmup + cfg.Duration
	cfg.Churn = []arrivals.Spec{
		{
			Name: "tfrc", Proto: arrivals.TFRC,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 10},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 30},
			Stop: end, MaxArrivals: 400, Seed: 9401,
		},
		{
			Name: "mice", Proto: arrivals.TCP,
			Gap:  arrivals.Gap{Kind: arrivals.Weibull, Shape: 0.6, Scale: 0.03},
			Size: arrivals.Size{Kind: arrivals.Pareto, Shape: 1.3, MinPackets: 4, CapPackets: 80},
			Stop: end, MaxArrivals: 800, Seed: 9402,
		},
		{
			Name: "rev", Proto: arrivals.TCP, Reverse: true,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 8},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 6},
			Stop: end, MaxArrivals: 300, Seed: 9403,
		},
		{
			Name: "cbr", Proto: arrivals.CBR, CBRRate: 100,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 5},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 4},
			Stop: end, MaxArrivals: 200, Seed: 9404,
		},
	}
	return cfg
}

// The serial engine must reclaim departed churn flows (the leak
// invariant after mid-run detach is asserted inside the run by
// LeakCheck) and still force the epoch log for the folds.
func TestChurnServesAndReclaims(t *testing.T) {
	t.Parallel()
	res := RunTopoSim(churnTestConfig(0))
	if len(res.Churn) != 4 {
		t.Fatalf("%d churn classes reported, want 4", len(res.Churn))
	}
	for _, c := range res.Churn {
		if c.Arrivals == 0 {
			t.Fatalf("class %s: no arrivals", c.Name)
		}
		if c.Completions == 0 {
			t.Fatalf("class %s: no completions", c.Name)
		}
		if c.Reclaimed == 0 {
			t.Fatalf("class %s: serial run reclaimed nothing", c.Name)
		}
		if c.Constructions >= c.Arrivals {
			t.Fatalf("class %s: endpoint pool never reused (%d constructions, %d arrivals)",
				c.Name, c.Constructions, c.Arrivals)
		}
	}
	if res.Obs == nil || res.Obs.Epochs == nil {
		t.Fatal("ForceEpochs did not produce an epoch log")
	}
	if got := len(res.Obs.Epochs.Epochs); got != churnEpochs {
		t.Fatalf("%d epochs recorded, want %d", got, churnEpochs)
	}
}

// churnSignature collapses the executor-invariant part of a run for
// byte comparison: class results minus the reclamation counters (the
// sharded engine never detaches, so Constructions/Reclaimed are the one
// sanctioned difference), plus the epoch deltas.
func churnSignature(res TopoSimResult) []arrivals.ClassResult {
	sig := make([]arrivals.ClassResult, len(res.Churn))
	for i, c := range res.Churn {
		c.Constructions = 0
		c.Reclaimed = 0
		c.Log = nil
		sig[i] = c
	}
	return sig
}

// The churn engine must not disturb the determinism contract: the same
// arrivals, completions, populations and Palm statistics — and the same
// engine event count — on the serial engine and at every shard count,
// with the goroutine-per-shard driver included.
func TestChurnShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	serial := RunTopoSim(churnTestConfig(0))
	want := churnSignature(serial)
	for _, k := range []int{1, 2, 4} {
		got := RunTopoSim(churnTestConfig(k))
		if got.EventsFired != serial.EventsFired {
			t.Fatalf("shards=%d fired %d events, serial %d", k, got.EventsFired, serial.EventsFired)
		}
		for i, g := range churnSignature(got) {
			if g != want[i] {
				t.Fatalf("shards=%d class %s differs:\nserial  %+v\nsharded %+v",
					k, g.Name, want[i], g)
			}
		}
		if k < 2 {
			continue // shards=1 runs on the serial engine and reclaims
		}
		for _, c := range got.Churn {
			if c.Reclaimed != 0 || c.Constructions != c.Arrivals {
				t.Fatalf("shards=%d class %s: cluster must never reclaim (%+v)", k, c.Name, c)
			}
		}
	}
	shardForceParallel = true
	got := RunTopoSim(churnTestConfig(3))
	shardForceParallel = false
	if got.EventsFired != serial.EventsFired {
		t.Fatalf("forced-parallel fired %d events, serial %d", got.EventsFired, serial.EventsFired)
	}
	for i, g := range churnSignature(got) {
		if g != want[i] {
			t.Fatalf("forced-parallel class %s differs:\nserial  %+v\nsharded %+v", g.Name, want[i], g)
		}
	}
}

// The churn scenario family must fold byte-identically from a worker
// pool and at every shard count — the property the CI determinism
// sweep gates (with and without the observability flags).
func TestChurnScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	t.Parallel()
	sz := Sizing{Events: 2000, SimFactor: 0.03, Pairs: []int{1}, PairsCap: 1}
	for _, name := range []string{"flashcrowd", "webmice", "surge"} {
		s, ok := Lookup(name)
		if !ok || !s.Sharded {
			t.Fatalf("%s: not registered as sharded", name)
		}
		serial := renderAll(t, name, sz, runner.Serial{})
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial output", name)
		}
		par := renderAll(t, name, sz, runner.NewPool(8))
		if !bytes.Equal(serial, par) {
			t.Fatalf("%s: parallel TSV differs from serial", name)
		}
		for _, k := range []int{2, 4} {
			szk := sz
			szk.Shards = k
			got := renderAll(t, name, szk, runner.Serial{})
			if !bytes.Equal(serial, got) {
				t.Fatalf("%s: %d-shard TSV differs from serial\nserial:\n%s\nsharded:\n%s",
					name, k, serial, got)
			}
		}
	}
}

// A reverse churn class on a chain without a mirrored reverse path is a
// configuration error, not silent misrouting.
func TestChurnReverseNeedsMirrorRev(t *testing.T) {
	t.Parallel()
	cfg := churnTestConfig(0)
	cfg.MirrorRev = false
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for reverse churn without MirrorRev")
		}
	}()
	RunTopoSim(cfg)
}
