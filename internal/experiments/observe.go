package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// ObserveOptions selects what the packet-level runs capture beyond
// their result aggregates. The zero value — everything off — is the
// default and keeps every run on the exact pre-observability
// instruction path: no registry is allocated, no tracer is attached
// (every Emit hook is a nil-sink branch), and time advances in the same
// two RunUntil calls it always did.
type ObserveOptions struct {
	// Metrics enables the per-run metrics registry: engine, per-link and
	// per-protocol-class aggregates sampled from counters the hot structs
	// already maintain, at the end of the measured window. Every metric
	// in the registry is executor-invariant, so the rendered table joins
	// the byte-identity gate across serial, -parallel and -shards K.
	Metrics bool
	// Epochs, when above 1, splits the measured window into this many
	// equal epochs and records per-epoch flow deltas and end-of-epoch
	// state. Sampling steps the run to each boundary with the engine's
	// ordinary RunUntil — no events scheduled, no randomness drawn — so
	// the simulation trajectory is bit-identical to an unsampled run.
	Epochs int
	// TraceCap, when positive, attaches a bounded event tracer of this
	// capacity to every scheduling domain, recording rare sim events
	// (loss events, no-feedback expiries, TCP timeouts, fault
	// transitions, shard handoffs) for Chrome trace_event output.
	TraceCap int
	// Live publishes each active sharded cluster's per-shard snapshots
	// (clock, window, barrier waits, handoffs) on the process-wide
	// live-introspection surface (obs.PublishLive) while runs execute —
	// the expvar endpoint the CLI serves with -expvar. Snapshots are
	// wall-clock flavored and never reach the deterministic output path.
	Live bool
}

// Observe is the process-wide observability selection, set by the CLI
// before scenarios run (the same pattern as LeakCheck). Runs read it at
// their start; changing it mid-batch is a race, so set it once.
var Observe ObserveOptions

func (o ObserveOptions) enabled() bool {
	return o.Metrics || o.Epochs > 1 || o.TraceCap > 0
}

// RunObs is one run's observability capture, carried on the run's
// result struct. All fields are freshly allocated — nothing aliases the
// pooled arena or cluster the run executed in.
type RunObs struct {
	// Metrics is the run's registry (nil unless Observe.Metrics).
	Metrics *obs.Registry
	// Epochs is the run's epoch log (nil unless Observe.Epochs > 1).
	Epochs *obs.EpochLog
	// Events is the run's merged, time-ordered trace (nil unless
	// Observe.TraceCap > 0); Dropped counts ring-overwritten events.
	Events  []obs.Event
	Dropped int64
}

// obsCarrier is how result structs surface their capture to the
// scenario layer without the fold signatures changing.
type obsCarrier interface{ runObs() *RunObs }

func (r SimResult) runObs() *RunObs     { return r.Obs }
func (r TopoSimResult) runObs() *RunObs { return r.Obs }
func (r RevSimResult) runObs() *RunObs  { return r.Obs }

// obsEngine is the sampling surface shared by both engines and the
// dumbbell: link enumeration plus the executor-invariant population
// counters. serialExec, shardExec and topology.Dumbbell all satisfy it.
type obsEngine interface {
	Links() int
	Link(id topology.LinkID) *netsim.Link
	Fired() uint64
	Pending() int
	Outstanding() int64
}

// obsRun drives one run's capture. A nil *obsRun (observability off) is
// a valid receiver for every method, so call sites stay branch-free.
type obsRun struct {
	eng     obsEngine
	tracers func() []*obs.Tracer
	epochs  int

	log  *obs.EpochLog
	prev obs.Epoch
	// uhw and headroom are the boundary-aligned Unbounded queue samples
	// (satellite of the checkpoint work): at each epoch boundary, the
	// deepest high-water mark over the run's Unbounded queues and the
	// tightest remaining headroom to the hard occupancy cap. Empty when
	// the run has no Unbounded queues or metrics are off.
	uhw      []float64
	headroom []float64
}

// newObsRun returns the collector for one run, or nil when Observe is
// entirely off. tracers must return the per-domain tracers at
// collection time. forceEpochs is the run's own epoch-log floor: churn
// scenarios set it so their folds get per-epoch deltas even on a plain
// CLI run (the forced log rides the result struct only — TSV epoch
// blocks stay gated on the user's Observe selection).
func newObsRun(eng obsEngine, tracers func() []*obs.Tracer, forceEpochs int) *obsRun {
	epochs := Observe.Epochs
	if forceEpochs > epochs {
		epochs = forceEpochs
	}
	if !Observe.enabled() && epochs <= 1 {
		return nil
	}
	o := &obsRun{eng: eng, tracers: tracers, epochs: epochs}
	if o.epochs > 1 {
		o.log = &obs.EpochLog{}
	}
	return o
}

// totals samples the engine's cumulative counters into an Epoch-shaped
// accumulator: flow counters summed over links, populations at the
// instant of the call.
func (o *obsRun) totals() obs.Epoch {
	var cum obs.Epoch
	cum.Fired = o.eng.Fired()
	for id := 0; id < o.eng.Links(); id++ {
		l := o.eng.Link(topology.LinkID(id))
		drops, early, _ := netsim.QueueStats(l.Queue())
		cum.Enqueued += l.Accepted()
		cum.Forwarded += l.Forwarded
		cum.Bytes += l.BytesForwarded
		cum.QueueDrops += drops
		cum.EarlyDrops += early
		cum.FaultDrops += l.FaultDrops
		cum.QueueLen += l.Queue().Len()
	}
	cum.Pending = o.eng.Pending()
	cum.Outstanding = o.eng.Outstanding()
	return cum
}

// begin fixes the epoch baseline at the end of warmup. Call it once,
// after the stats reset, before the first measured step.
func (o *obsRun) begin() {
	if o == nil || o.epochs <= 1 {
		return
	}
	o.prev = o.totals()
}

// boundary closes epoch i, spanning [start, end], at the current
// (phase-aligned) instant: the window's flow deltas against the
// previous boundary's totals plus end-of-window state, and the
// boundary-aligned Unbounded queue samples.
func (o *obsRun) boundary(i int, start, end float64) {
	if o == nil || o.epochs <= 1 {
		return
	}
	cur := o.totals()
	o.log.Add(obs.Epoch{
		Index: i, Start: start, End: end,
		Fired:       cur.Fired - o.prev.Fired,
		Enqueued:    cur.Enqueued - o.prev.Enqueued,
		Forwarded:   cur.Forwarded - o.prev.Forwarded,
		Bytes:       cur.Bytes - o.prev.Bytes,
		QueueDrops:  cur.QueueDrops - o.prev.QueueDrops,
		EarlyDrops:  cur.EarlyDrops - o.prev.EarlyDrops,
		FaultDrops:  cur.FaultDrops - o.prev.FaultDrops,
		QueueLen:    cur.QueueLen,
		Pending:     cur.Pending,
		Outstanding: cur.Outstanding,
	})
	o.prev = cur
	if Observe.Metrics {
		o.sampleUnbounded()
	}
}

// sampleUnbounded records the deepest Unbounded high-water mark and the
// tightest hard-cap headroom over the run's links, one sample per call.
// Runs without Unbounded queues record nothing.
func (o *obsRun) sampleUnbounded() {
	hw, head, any := unboundedDepth(o.eng)
	if !any {
		return
	}
	o.uhw = append(o.uhw, float64(hw))
	o.headroom = append(o.headroom, float64(head))
}

// unboundedDepth scans the engine's links for Unbounded queues: the
// maximum high-water mark, the minimum remaining headroom against each
// queue's effective hard cap, and whether any such queue exists.
func unboundedDepth(eng obsEngine) (hw, head int, any bool) {
	for id := 0; id < eng.Links(); id++ {
		u, ok := eng.Link(topology.LinkID(id)).Queue().(*netsim.Unbounded)
		if !ok {
			continue
		}
		cap := u.Cap
		if cap <= 0 {
			cap = netsim.DefaultUnboundedCap
		}
		if !any || u.HighWater > hw {
			hw = u.HighWater
		}
		if h := cap - u.HighWater; !any || h < head {
			head = h
		}
		any = true
	}
	return hw, head, any
}

// runMeasured advances the engine from the end of warmup (time from) to
// the end of the run (time to) via run (the engine's RunUntil),
// sampling epoch boundaries when epoch logging is on. With
// observability off (nil receiver) or no epochs it is exactly run(to) —
// one call, identical trajectory. The boundary times are pure float
// arithmetic from (from, to, n), so every executor steps through the
// same instants.
func (o *obsRun) runMeasured(run func(t float64), from, to float64) {
	if o == nil || o.epochs <= 1 {
		run(to)
		return
	}
	o.begin()
	n := o.epochs
	w := (to - from) / float64(n)
	start := from
	for i := 0; i < n; i++ {
		end := from + w*float64(i+1)
		if i == n-1 {
			end = to
		}
		run(end)
		o.boundary(i, start, end)
		start = end
	}
}

// lossIntervalBounds buckets the loss-interval histograms in packet
// counts, one bucket per doubling — the scale the TFRC estimator's
// window arithmetic lives on.
var lossIntervalBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// collect builds the run's capture: the metrics registry from the
// engine totals and the protocol classes' measurement windows, the
// epoch log accumulated by runMeasured, and the merged trace. Safe on a
// nil receiver (returns nil — observability off).
func (o *obsRun) collect(tf []tfrc.Stats, tc []tcp.Stats) *RunObs {
	if o == nil {
		return nil
	}
	res := &RunObs{Epochs: o.log}
	if Observe.Metrics {
		reg := obs.NewRegistry()
		cum := o.totals()
		reg.Counter("des.events_fired").Add(int64(cum.Fired))
		reg.Counter("des.pending_end").Add(int64(cum.Pending))
		reg.Counter("net.enqueued").Add(cum.Enqueued)
		reg.Counter("net.forwarded").Add(cum.Forwarded)
		reg.Counter("net.bytes_forwarded").Add(cum.Bytes)
		reg.Counter("net.queue_drops").Add(cum.QueueDrops)
		reg.Counter("net.early_drops").Add(cum.EarlyDrops)
		reg.Counter("net.fault_drops").Add(cum.FaultDrops)
		reg.Counter("net.outstanding_end").Add(cum.Outstanding)
		for id := 0; id < o.eng.Links(); id++ {
			l := o.eng.Link(topology.LinkID(id))
			drops, early, _ := netsim.QueueStats(l.Queue())
			pre := fmt.Sprintf("link%d.", id)
			reg.Counter(pre + "forwarded").Add(l.Forwarded)
			reg.Counter(pre + "queue_drops").Add(drops + early)
			reg.Counter(pre + "fault_drops").Add(l.FaultDrops)
		}
		// Unbounded depth gauges: the boundary-aligned samples when epoch
		// stepping collected them, else one end-of-run sample. Runs with
		// no Unbounded queues register neither gauge.
		if hw, head, any := unboundedDepth(o.eng); any {
			g := reg.Gauge("net.unbounded_highwater")
			h := reg.Gauge("net.unbounded_headroom")
			if len(o.uhw) > 0 {
				for i := range o.uhw {
					g.Observe(o.uhw[i])
					h.Observe(o.headroom[i])
				}
			} else {
				g.Observe(float64(hw))
				h.Observe(float64(head))
			}
		}
		obsClass(reg, "tfrc", len(tf), func(add func(string, int64), g func(string, float64), h *obs.Histogram) {
			for _, st := range tf {
				add("packets_sent", st.PacketsSent)
				add("loss_events", st.LossEvents)
				add("feedback_received", st.FeedbackReceived)
				add("nofeedback_halvings", st.NoFeedbackHalvings)
				g("throughput", st.Throughput)
				g("rtt", st.MeanRTT)
				for _, th := range st.LossIntervals {
					h.Observe(th)
				}
			}
		})
		obsClass(reg, "tcp", len(tc), func(add func(string, int64), g func(string, float64), h *obs.Histogram) {
			for _, st := range tc {
				add("packets_sent", st.PacketsSent)
				add("loss_events", st.LossEvents)
				add("acks_received", st.AcksReceived)
				g("throughput", st.Throughput)
				g("rtt", st.MeanRTT)
				for _, th := range st.LossIntervals {
					h.Observe(th)
				}
			}
		})
		res.Metrics = reg
	}
	if Observe.TraceCap > 0 && o.tracers != nil {
		ts := o.tracers()
		res.Events = obs.MergeEvents(ts)
		for _, t := range ts {
			res.Dropped += t.Dropped()
		}
	}
	return res
}

// obsClass registers one protocol class's block of metrics under the
// given prefix, skipping empty classes so registries stay minimal and
// scenario-shaped.
func obsClass(reg *obs.Registry, prefix string, flows int,
	fill func(add func(string, int64), gauge func(string, float64), hist *obs.Histogram)) {
	if flows == 0 {
		return
	}
	reg.Counter(prefix + ".flows").Add(int64(flows))
	fill(
		func(name string, v int64) { reg.Counter(prefix + "." + name).Add(v) },
		func(name string, v float64) { reg.Gauge(prefix + "." + name).Observe(v) },
		reg.Histogram(prefix+".loss_interval", lossIntervalBounds),
	)
}

// ScenarioObs aggregates the per-job captures of one scenario run, in
// job order — the same order the fold consumes results — so the merged
// registry and the trace are deterministic under any executor schedule.
type ScenarioObs struct {
	// Metrics is the job registries folded in job order (nil when no job
	// carried one).
	Metrics *obs.Registry
	// Epochs concatenates the jobs' epoch logs in job order (nil when no
	// job carried one). Index restarts at 0 at each job boundary.
	Epochs *obs.EpochLog
	// Jobs holds each observed job's trace stream, labeled with the job
	// name and indexed by batch position for Chrome trace output.
	Jobs []obs.JobTrace
	// Dropped totals ring-overwritten trace events across jobs.
	Dropped int64
}

// collectScenarioObs folds the results' captures. Results that carry no
// capture (Monte Carlo tables, analytic figures, failed hardened-mode
// slots) are skipped.
func collectScenarioObs(jobs []runner.Job, results []any) *ScenarioObs {
	if !Observe.enabled() {
		return nil
	}
	so := &ScenarioObs{}
	for i, r := range results {
		c, ok := r.(obsCarrier)
		if !ok {
			continue
		}
		ro := c.runObs()
		if ro == nil {
			continue
		}
		if ro.Metrics != nil {
			if so.Metrics == nil {
				so.Metrics = obs.NewRegistry()
			}
			so.Metrics.Merge(ro.Metrics)
		}
		if ro.Epochs != nil {
			if so.Epochs == nil {
				so.Epochs = &obs.EpochLog{}
			}
			so.Epochs.Merge(ro.Epochs)
		}
		if len(ro.Events) > 0 || ro.Dropped > 0 {
			name := ""
			if i < len(jobs) {
				name = jobs[i].Name
			}
			so.Jobs = append(so.Jobs, obs.JobTrace{
				Name: name, Pid: i, Events: ro.Events, Dropped: ro.Dropped,
			})
			so.Dropped += ro.Dropped
		}
	}
	return so
}

// RunObserved is Run plus the scenario's observability capture, merged
// in job order. With Observe entirely off it returns a nil capture and
// behaves exactly like Run.
func (s *Scenario) RunObserved(ctx context.Context, sz Sizing, ex runner.Executor) ([]*Table, *ScenarioObs, error) {
	jobs, fold := s.Plan(sz)
	results, err := ex.Execute(ctx, jobs)
	if err != nil {
		var m *runner.Manifest
		if errors.As(err, &m) && results != nil {
			return fold(results), collectScenarioObs(jobs, results), fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return fold(results), collectScenarioObs(jobs, results), nil
}
