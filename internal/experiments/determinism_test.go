package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/runner"
)

// renderAll writes every table of a scenario run to one buffer.
func renderAll(t *testing.T, name string, sz Sizing, ex runner.Executor) []byte {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	tables, err := s.Run(context.Background(), sz, ex)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// Regression: a registry scenario must emit byte-identical TSV whether
// its jobs run serially or on an 8-worker pool — the property the
// -parallel CLI mode relies on.
func TestScenarioParallelDeterminism(t *testing.T) {
	t.Parallel()
	sz := Sizing{Events: 2000, SimFactor: 0.08, Pairs: []int{1, 4}, PairsCap: 2}
	serial := renderAll(t, "fig3", sz, runner.Serial{})
	if len(serial) == 0 {
		t.Fatal("empty serial output")
	}
	for run := 0; run < 2; run++ {
		par := renderAll(t, "fig3", sz, runner.NewPool(8))
		if !bytes.Equal(serial, par) {
			t.Fatalf("run %d: parallel TSV differs from serial\nserial:\n%s\nparallel:\n%s",
				run, serial, par)
		}
	}
}

// The same property for a packet-level scenario, where the jobs are
// full dumbbell simulations.
func TestSimScenarioParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	t.Parallel()
	sz := Sizing{Events: 2000, SimFactor: 0.04, Pairs: []int{1, 2}, PairsCap: 2}
	serial := renderAll(t, "fig8", sz, runner.Serial{})
	par := renderAll(t, "fig8", sz, runner.NewPool(8))
	if !bytes.Equal(serial, par) {
		t.Fatalf("parallel sim TSV differs from serial\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

// The same property for the multi-hop topology, routed-reverse and
// scale-out scenarios: the parking-lot, multi-bottleneck, reverse-path
// and scale-chain sweeps must fold byte-identically from a worker pool.
// The scale-out runs also exercise the run-arena reuse hardest — many
// replications recycling schedulers and packet pools across workers —
// and the TestMain leak check is armed for every one of them.
func TestTopoScenarioParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	t.Parallel()
	sz := Sizing{Events: 2000, SimFactor: 0.04, Pairs: []int{1}, PairsCap: 1}
	for _, name := range []string{"multibneck", "parkinglot", "hetrtt", "revcross", "ackshare", "asymrev", "scalechain",
		"linkflap", "burstloss", "capdrop"} {
		serial := renderAll(t, name, sz, runner.Serial{})
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial output", name)
		}
		par := renderAll(t, name, sz, runner.NewPool(8))
		if !bytes.Equal(serial, par) {
			t.Fatalf("%s: parallel TSV differs from serial\nserial:\n%s\nparallel:\n%s",
				name, serial, par)
		}
	}
}

// Every registered scenario must expand to at least one job and fold
// without error under a tiny sizing... cheap structural checks only:
// expansion must be deterministic and job names unique enough to audit.
func TestRegistryExpansion(t *testing.T) {
	t.Parallel()
	sz := Sizing{Events: 100, SimFactor: 0.01, Pairs: []int{1}, PairsCap: 1}
	for _, s := range Scenarios() {
		jobs, fold := s.Plan(sz)
		if len(jobs) == 0 {
			t.Errorf("%s: no jobs", s.Name)
		}
		if fold == nil {
			t.Errorf("%s: nil fold", s.Name)
		}
		jobs2, _ := s.Plan(sz)
		if len(jobs2) != len(jobs) {
			t.Errorf("%s: expansion not deterministic (%d vs %d jobs)",
				s.Name, len(jobs), len(jobs2))
		}
		for i := range jobs {
			if jobs[i].Name != jobs2[i].Name || jobs[i].Seed != jobs2[i].Seed {
				t.Errorf("%s: job %d differs across expansions", s.Name, i)
			}
		}
	}
	if len(Scenarios()) < 25 {
		t.Fatalf("registry has %d scenarios, want >= 25", len(Scenarios()))
	}
}

// The tentpole determinism contract of the sharded executor: the
// multi-hop, routed-reverse and scale-out scenarios must emit
// byte-identical TSV when every simulation is split across 2 or 4
// shards — events column included — versus the serial engine. The
// TestMain leak check is armed, so every sharded run also audits the
// cross-shard freelist protocol (per-shard and global Outstanding ==
// InNetwork, all bundles drained) at the end of the run, drops on cut
// links included.
func TestShardedScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	t.Parallel()
	sz := Sizing{Events: 2000, SimFactor: 0.04, Pairs: []int{1}, PairsCap: 1}
	for _, name := range []string{"multibneck", "parkinglot", "hetrtt", "revcross", "ackshare", "asymrev", "scalechain",
		"linkflap", "burstloss", "capdrop"} {
		s, ok := Lookup(name)
		if !ok || !s.Sharded {
			t.Fatalf("%s: not registered as sharded", name)
		}
		serial := renderAll(t, name, sz, runner.Serial{})
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial output", name)
		}
		for _, k := range []int{2, 4} {
			szk := sz
			szk.Shards = k
			got := renderAll(t, name, szk, runner.Serial{})
			if !bytes.Equal(serial, got) {
				t.Fatalf("%s: %d-shard TSV differs from serial\nserial:\n%s\nsharded:\n%s",
					name, k, serial, got)
			}
		}
	}
}

// The same bytes must come out of the goroutine-per-shard barrier
// driver (the single-CPU default is the sequential window loop, so CI's
// -race run would otherwise never cross the barrier path from the
// experiments layer).
func TestShardedParallelDriverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level determinism check skipped in -short mode")
	}
	sz := Sizing{Events: 2000, SimFactor: 0.04, Pairs: []int{1}, PairsCap: 1}
	for _, name := range []string{"scalechain", "linkflap"} {
		serial := renderAll(t, name, sz, runner.Serial{})
		szk := sz
		szk.Shards = 3
		shardForceParallel = true
		got := renderAll(t, name, szk, runner.Serial{})
		shardForceParallel = false
		if !bytes.Equal(serial, got) {
			t.Fatalf("%s: forced-parallel 3-shard TSV differs from serial\nserial:\n%s\nsharded:\n%s",
				name, serial, got)
		}
	}
}
