package experiments

import (
	"math"

	"repro/internal/des"
	"repro/internal/estimator"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// QueueKind selects the bottleneck queue discipline.
type QueueKind int

// Queue disciplines.
const (
	// DropTail is a plain FIFO tail-drop queue.
	DropTail QueueKind = iota
	// RED is random early detection with the paper's parameters.
	RED
)

// SimConfig describes one dumbbell simulation: the bottleneck, the flow
// mix (N TFRC + N TCP pairs, optionally a Poisson probe), and the
// measurement window.
type SimConfig struct {
	// Capacity is the bottleneck rate in bytes/second.
	Capacity float64
	// Queue selects the bottleneck discipline.
	Queue QueueKind
	// Buffer is the DropTail capacity in packets (ignored for RED).
	Buffer int
	// BDPPackets sizes the RED thresholds (ignored for DropTail).
	BDPPackets float64
	// BaseDelay is the bottleneck one-way propagation delay in seconds.
	BaseDelay float64
	// RevDelay is the uncongested reverse-path delay in seconds.
	RevDelay float64
	// NTFRC and NTCP are the numbers of TFRC and TCP flows.
	NTFRC, NTCP int
	// ProbeRate, when positive, adds one Poisson probe at this rate in
	// packets/second.
	ProbeRate float64
	// L is the TFRC loss-interval window.
	L int
	// Comprehensive toggles TFRC's comprehensive-control element.
	Comprehensive bool
	// TFRCFormula selects the TFRC throughput formula.
	TFRCFormula tfrc.FormulaKind
	// Duration and Warmup are the measured and discarded sim seconds.
	Duration, Warmup float64
	// Seed drives all randomness in the run.
	Seed uint64
	// RevJitter randomizes reverse-path delays (fraction, see netsim).
	RevJitter float64
	// CrossLoad, when positive, adds heavy-tailed on/off background
	// traffic offering this fraction of the bottleneck capacity.
	CrossLoad float64
	// HistoryDiscounting enables RFC 3448 §5.5 discounting in TFRC.
	HistoryDiscounting bool
}

// ClassStats aggregates one protocol class over all its flows.
type ClassStats struct {
	// Throughput is the mean per-flow send rate in packets/second.
	Throughput float64
	// LossEventRate is total loss events over total packets sent.
	LossEventRate float64
	// MeanRTT is the event-count-weighted mean RTT in seconds.
	MeanRTT float64
	// CovNorm is cov[θ0, θ̂0]·p², pooled over flows (TFRC only).
	CovNorm float64
	// Events is the total loss events across flows.
	Events int64
	// Flows is the number of flows in the class.
	Flows int
}

// SimResult holds per-class aggregates of one run.
type SimResult struct {
	TFRC, TCP, Poisson ClassStats
	// TCPPerFlow keeps each TCP flow's stats for scatter plots (Fig 9).
	TCPPerFlow []tcp.Stats
	// TFRCPerFlow keeps each TFRC flow's stats.
	TFRCPerFlow []tfrc.Stats
	// EventsFired is the number of discrete events the scheduler executed
	// over the whole run (warmup included) — the denominator for
	// events/second throughput measurements of the simulator itself.
	EventsFired uint64
	// Obs is the run's observability capture (nil unless the process-
	// wide Observe options enable one).
	Obs *RunObs
}

// serialEng adapts the dumbbell runs' raw network + scheduler pair to
// the obsEngine sampling surface the multi-hop executors satisfy
// directly.
type serialEng struct {
	*topology.Network
	sched *des.Scheduler
}

func (e serialEng) Fired() uint64 { return e.sched.Fired() }
func (e serialEng) Pending() int  { return e.sched.Pending() }

// staggeredStart schedules a sender's Start at a seed-drawn offset
// inside the first half of the warmup (capped at 5 s), breaking phase
// locking between flows that would otherwise start simultaneously.
func staggeredStart(sched *des.Scheduler, seedRNG *rng.RNG, warmup float64, start des.Event) {
	sched.At(seedRNG.Float64()*math.Min(warmup/2, 5), start)
}

// resetStats restarts every sender's measurement window (warmup ends).
func resetStats[S interface{ ResetStats() }](senders []S) {
	for _, s := range senders {
		s.ResetStats()
	}
}

// collectStats gathers each sender's measurement-window summary in
// attachment order.
func collectStats[S any, St any](senders []S, stats func(S) St) []St {
	out := make([]St, 0, len(senders))
	for _, s := range senders {
		out = append(out, stats(s))
	}
	return out
}

func tfrcStats(senders []*tfrc.Sender) []tfrc.Stats {
	return collectStats(senders, (*tfrc.Sender).Stats)
}

func tcpStats(senders []*tcp.Sender) []tcp.Stats {
	return collectStats(senders, (*tcp.Sender).Stats)
}

// RunSim executes the configured dumbbell simulation and returns the
// per-class aggregates. It is fully deterministic in cfg.Seed.
func RunSim(cfg SimConfig) SimResult {
	if cfg.Capacity <= 0 || cfg.Duration <= 0 || cfg.Warmup < 0 || cfg.L < 1 {
		panic("experiments: invalid sim config")
	}
	if cfg.NTFRC < 0 || cfg.NTCP < 0 || cfg.NTFRC+cfg.NTCP == 0 {
		panic("experiments: need at least one flow")
	}
	// The run rebuilds its simulation state inside a pooled arena: the
	// scheduler's wheels and the network's packet/flow pools carry their
	// capacity across replications instead of being reallocated.
	a := getArena()
	defer putArena(a)
	sched := &a.sched
	seedRNG := rng.New(cfg.Seed)

	var queue netsim.Queue
	switch cfg.Queue {
	case DropTail:
		if cfg.Buffer < 1 {
			panic("experiments: DropTail needs a buffer size")
		}
		queue = netsim.NewDropTail(cfg.Buffer)
	case RED:
		queue = netsim.NewRED(netsim.PaperRED(cfg.BDPPackets), cfg.Capacity, seedRNG.Split())
	default:
		panic("experiments: unknown queue kind")
	}
	link := netsim.NewLink(sched, cfg.Capacity, cfg.BaseDelay, queue)
	net := topology.BuildDumbbell(a.net, link)
	if cfg.RevJitter > 0 {
		net.SetReverseJitter(cfg.RevJitter, seedRNG.Uint64())
	}
	// Tracer attach precedes endpoint construction: senders and
	// receivers resolve their domain's tracer once, when built. With
	// tracing off the tracer stays nil and every hook is a nil-sink.
	net.Trace = obs.NewTracer(Observe.TraceCap, 0)
	ob := newObsRun(serialEng{net.Network, sched},
		func() []*obs.Tracer { return []*obs.Tracer{net.Trace} }, 0)

	tfrcCfg := tfrc.DefaultConfig()
	tfrcCfg.Window = cfg.L
	tfrcCfg.Comprehensive = cfg.Comprehensive
	tfrcCfg.HistoryDiscounting = cfg.HistoryDiscounting
	tfrcCfg.Formula = cfg.TFRCFormula

	flowID := 0
	tfrcSenders := make([]*tfrc.Sender, 0, cfg.NTFRC)
	for i := 0; i < cfg.NTFRC; i++ {
		c := tfrcCfg
		c.Seed = seedRNG.Uint64()
		snd, _ := tfrc.NewFlow(sched, net, flowID, c, 0, cfg.RevDelay)
		tfrcSenders = append(tfrcSenders, snd)
		staggeredStart(sched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	tcpSenders := make([]*tcp.Sender, 0, cfg.NTCP)
	for i := 0; i < cfg.NTCP; i++ {
		snd, _ := tcp.NewFlow(sched, net, flowID, tcp.DefaultConfig(), 0, cfg.RevDelay)
		tcpSenders = append(tcpSenders, snd)
		staggeredStart(sched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	var probe *probeHandle
	if cfg.ProbeRate > 0 {
		rttGuess := 2*cfg.BaseDelay + cfg.RevDelay
		p := newProbe(sched, net, flowID, cfg.ProbeRate, rttGuess, seedRNG.Uint64(), cfg.RevDelay)
		probe = p
		sched.At(seedRNG.Float64(), p.start)
		flowID++
	}
	if cfg.CrossLoad > 0 {
		// Size the on/off source so its mean rate offers CrossLoad of
		// the capacity: bursts at half the link rate, mean 20 packets,
		// off time solved from the load.
		const meanBurst, pktSize = 20.0, 1000.0
		peak := cfg.Capacity / 2
		burstBytes := meanBurst * pktSize
		burstTime := burstBytes / peak
		target := cfg.CrossLoad * cfg.Capacity
		meanOff := burstBytes/target - burstTime
		if meanOff <= 0 {
			meanOff = 1e-3
		}
		ct := netsim.NewCrossTraffic(sched, net, flowID, peak, meanBurst, 1.5,
			meanOff, int(pktSize), seedRNG.Uint64())
		sched.At(seedRNG.Float64(), ct.Start)
	}

	sched.RunUntil(cfg.Warmup)
	resetStats(tfrcSenders)
	resetStats(tcpSenders)
	if probe != nil {
		probe.resetStats()
	}
	ob.runMeasured(sched.RunUntil, cfg.Warmup, cfg.Warmup+cfg.Duration)

	var res SimResult
	res.TFRCPerFlow = tfrcStats(tfrcSenders)
	res.TCPPerFlow = tcpStats(tcpSenders)
	res.TFRC = aggregateTFRC(res.TFRCPerFlow, cfg.L)
	res.TCP = aggregateTCP(res.TCPPerFlow)
	if probe != nil {
		res.Poisson = probe.stats()
	}
	res.EventsFired = sched.Fired()
	res.Obs = ob.collect(res.TFRCPerFlow, res.TCPPerFlow)
	if LeakCheck {
		if err := net.CheckLeaks(); err != nil {
			panic(err)
		}
	}
	return res
}

func aggregateTFRC(perFlow []tfrc.Stats, L int) ClassStats {
	var cs ClassStats
	cs.Flows = len(perFlow)
	if len(perFlow) == 0 {
		return cs
	}
	var pkts, events int64
	var xSum, rttSum float64
	var covAcc stats.Cov
	total := 0
	for _, st := range perFlow {
		total += len(st.LossIntervals)
	}
	pAll := make([]float64, 0, total)
	for _, st := range perFlow {
		pkts += st.PacketsSent
		events += st.LossEvents
		xSum += st.Throughput
		rttSum += st.MeanRTT
		// Reconstruct the estimator trajectory from the interval series
		// to measure cov[θ0, θ̂0].
		feedCov(&covAcc, st.LossIntervals, L)
		pAll = append(pAll, st.LossIntervals...)
	}
	cs.Throughput = xSum / float64(len(perFlow))
	cs.MeanRTT = rttSum / float64(len(perFlow))
	cs.Events = events
	if pkts > 0 {
		cs.LossEventRate = float64(events) / float64(pkts)
	}
	if len(pAll) > 0 && covAcc.N() > 1 {
		meanTheta := stats.Mean(pAll)
		p := 1 / meanTheta
		cs.CovNorm = covAcc.Covariance() * p * p
	}
	return cs
}

// feedCov replays the TFRC weight average over an interval series and
// accumulates (θ_n, θ̂_n) pairs.
func feedCov(acc *stats.Cov, intervals []float64, L int) {
	if len(intervals) <= L {
		return
	}
	est := estimator.NewLossIntervalEstimator(estimator.TFRCWeights(L))
	for i, th := range intervals {
		if i >= L {
			acc.Add(th, est.Estimate())
		}
		est.Observe(th)
	}
}

func aggregateTCP(perFlow []tcp.Stats) ClassStats {
	var cs ClassStats
	cs.Flows = len(perFlow)
	if len(perFlow) == 0 {
		return cs
	}
	var pkts, events int64
	var xSum, rttSum float64
	for _, st := range perFlow {
		pkts += st.PacketsSent
		events += st.LossEvents
		xSum += st.Throughput
		rttSum += st.MeanRTT
	}
	cs.Throughput = xSum / float64(len(perFlow))
	cs.MeanRTT = rttSum / float64(len(perFlow))
	cs.Events = events
	if pkts > 0 {
		cs.LossEventRate = float64(events) / float64(pkts)
	}
	return cs
}

// probeHandle wraps the cbr probe without importing it (the probe here
// is a minimal Poisson source; keeping it local avoids an import cycle
// risk and keeps the class-stats shape uniform).
type probeHandle struct {
	sched    *des.Scheduler
	net      netsim.Network
	flow     int
	rate     float64
	random   *rng.RNG
	rttGuess float64

	nextSeq    int64
	expected   int64
	events     *netsim.LossEventCounter
	pktsSent   int64
	eventsBase int64
	pktsBase   int64
	measStart  float64
	sendNextFn des.Event
}

func newProbe(sched *des.Scheduler, net netsim.Network, flow int, rate, rttGuess float64, seed uint64, revDelay float64) *probeHandle {
	p := &probeHandle{
		sched: sched, net: net, flow: flow, rate: rate,
		random: rng.New(seed), rttGuess: rttGuess,
	}
	p.events = netsim.NewLossEventCounter(func() float64 { return p.rttGuess })
	p.sendNextFn = p.sendNext
	net.AttachFlow(flow, netsim.EndpointFunc(func(*netsim.Packet) {}),
		netsim.EndpointFunc(p.receive), 0, revDelay)
	return p
}

func (p *probeHandle) start() { p.sendNext() }

func (p *probeHandle) sendNext() {
	p.pktsSent++
	pkt := p.net.GetPacket()
	pkt.Flow = p.flow
	pkt.Seq = p.nextSeq
	pkt.Size = 1000
	pkt.SentAt = p.sched.Now()
	pkt.Kind = netsim.Data
	p.net.SendForward(pkt)
	p.nextSeq++
	p.sched.After(p.random.Exp(p.rate), p.sendNextFn)
}

func (p *probeHandle) receive(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	if pkt.Seq > p.expected {
		for lost := p.expected; lost < pkt.Seq; lost++ {
			p.events.OnLoss(p.sched.Now(), lost)
		}
	}
	if pkt.Seq >= p.expected {
		p.expected = pkt.Seq + 1
	}
}

func (p *probeHandle) resetStats() {
	p.measStart = p.sched.Now()
	p.pktsBase = p.pktsSent
	p.eventsBase = p.events.Events
}

func (p *probeHandle) stats() ClassStats {
	cs := ClassStats{Flows: 1}
	pkts := p.pktsSent - p.pktsBase
	cs.Events = p.events.Events - p.eventsBase
	dur := p.sched.Now() - p.measStart
	if dur > 0 {
		cs.Throughput = float64(pkts) / dur
	}
	if pkts > 0 {
		cs.LossEventRate = float64(cs.Events) / float64(pkts)
	}
	return cs
}
