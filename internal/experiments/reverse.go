package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// RevSimConfig describes one bidirectional simulation whose reverse
// path is routed through real queues: primary TFRC and TCP flows send
// data over a forward bottleneck while their feedback and ACKs traverse
// a chain of reverse bottleneck links — where they can be queued behind
// competing traffic, delayed, and dropped. The reverse chain can be
// congested by unresponsive cross traffic (RevCrossLoad), by
// opposing-direction TCP data (BackTCP), or starved by asymmetric
// capacities (RevCapacities), probing the regimes where the paper's
// conservativeness results rest on feedback actually arriving.
type RevSimConfig struct {
	// Capacity is the forward bottleneck rate in bytes/second.
	Capacity float64
	// Buffer is the forward DropTail capacity in packets.
	Buffer int
	// FwdDelay is the forward bottleneck's one-way propagation delay.
	FwdDelay float64
	// AccessDelay is the extra one-way delay from the forward
	// bottleneck's egress to each primary receiver.
	AccessDelay float64
	// RevExtra is the remaining reverse delay after the last reverse
	// hop back to each primary sender.
	RevExtra float64
	// RevCapacities lists the reverse chain's link rates in
	// bytes/second, traversed receiver → sender. Must be non-empty.
	RevCapacities []float64
	// RevBuffer is the per-reverse-hop DropTail capacity in packets.
	RevBuffer int
	// RevHopDelay is the per-reverse-hop one-way propagation delay.
	RevHopDelay float64
	// NTFRC and NTCP are the numbers of primary (forward-direction)
	// flows.
	NTFRC, NTCP int
	// BackTCP adds opposing-direction TCP flows: their data traverses
	// the reverse chain and their ACKs ride the forward bottleneck, so
	// acknowledgments compete with data in both directions.
	BackTCP int
	// RevCrossLoad, when positive, offers this fraction of the tightest
	// reverse hop's capacity as unresponsive on/off cross traffic over
	// the whole reverse chain.
	RevCrossLoad float64
	// L is the TFRC loss-interval window.
	L int
	// Comprehensive toggles TFRC's comprehensive-control element.
	Comprehensive bool
	// Duration and Warmup are the measured and discarded sim seconds.
	Duration, Warmup float64
	// Seed drives all randomness in the run.
	Seed uint64
	// RevJitter randomizes the terminal reverse delays (fraction, see
	// topology).
	RevJitter float64
	// Shards, when above 1, executes the run on the space-parallel
	// sharded engine (internal/shard) with at most that many domains.
	// The results are byte-identical to a serial run at any value.
	Shards int
}

// RevSimResult holds per-class aggregates of one routed-reverse run
// plus the reverse path's own telemetry.
type RevSimResult struct {
	// TFRC and TCP aggregate the primary forward-direction flows; Back
	// aggregates the opposing-direction TCP flows.
	TFRC, TCP, Back ClassStats
	// TFRCPerFlow and TCPPerFlow keep the primary flows' stats in
	// attachment order.
	TFRCPerFlow []tfrc.Stats
	TCPPerFlow  []tcp.Stats
	// BaseRTT is the primary flows' no-queueing round-trip time.
	BaseRTT float64
	// RevDrops counts packets dropped anywhere on the reverse chain over
	// the whole run (feedback, ACKs, back-traffic data and cross traffic
	// pooled); RevDropRate normalizes by the packets that entered the
	// chain, so it is the per-packet probability of not surviving the
	// whole chain and stays comparable across chain lengths.
	RevDrops    int64
	RevDropRate float64
	// NoFeedbackHalvings totals the primary TFRC senders' no-feedback
	// timer expirations in the measurement window.
	NoFeedbackHalvings int64
	// AcksPerPacket is the primary TCP classes' received-ACKs per data
	// packet sent in the window (nominally 1/b = 0.5; lower means ACK
	// loss on the reverse path).
	AcksPerPacket float64
	// EventsFired counts the scheduler events of the whole run.
	EventsFired uint64
	// Obs is the run's observability capture (nil unless the process-
	// wide Observe options enable one).
	Obs *RunObs
}

// RunRevSim executes the configured routed-reverse simulation and
// returns the per-class aggregates. It is fully deterministic in
// cfg.Seed.
func RunRevSim(cfg RevSimConfig) RevSimResult {
	if cfg.Capacity <= 0 || cfg.Buffer < 1 || cfg.RevBuffer < 1 ||
		cfg.Duration <= 0 || cfg.Warmup < 0 || cfg.L < 1 {
		panic("experiments: invalid reverse sim config")
	}
	if len(cfg.RevCapacities) == 0 {
		panic("experiments: reverse sim needs at least one reverse hop")
	}
	for _, c := range cfg.RevCapacities {
		if c <= 0 {
			panic("experiments: non-positive reverse capacity")
		}
	}
	if cfg.NTFRC < 0 || cfg.NTCP < 0 || cfg.NTFRC+cfg.NTCP == 0 {
		panic("experiments: need at least one primary flow")
	}
	if cfg.BackTCP < 0 || cfg.RevCrossLoad < 0 {
		panic("experiments: invalid reverse load")
	}
	// Build the bidirectional graph inside a pooled executor (see
	// exec.go / arena.go): serial for Shards <= 1, space-parallel
	// sharded otherwise. Either way wheels, packet pools and flow-state
	// records are reused across replications.
	env := newExec(cfg.Shards)
	defer env.Close()
	seedRNG := rng.New(cfg.Seed)

	src := env.AddNode("src")
	dst := env.AddNode("dst")
	fwd := env.AddLink(src, dst, cfg.Capacity, cfg.FwdDelay, netsim.NewDropTail(cfg.Buffer))
	// Reverse chain dst → … → src, one link per configured capacity.
	revNodes := make([]topology.NodeID, 0, len(cfg.RevCapacities)+1)
	revNodes = append(revNodes, dst)
	for i := 1; i < len(cfg.RevCapacities); i++ {
		revNodes = append(revNodes, env.AddNode(fmt.Sprintf("rev%d", i)))
	}
	revNodes = append(revNodes, src)
	rev := make([]topology.LinkID, len(cfg.RevCapacities))
	for i, c := range cfg.RevCapacities {
		rev[i] = env.AddLink(revNodes[i], revNodes[i+1], c, cfg.RevHopDelay,
			netsim.NewDropTail(cfg.RevBuffer))
	}
	env.SetDefaultRoute(fwd)
	env.SetDefaultReverseRoute(rev...)
	if cfg.RevJitter > 0 {
		env.SetReverseJitter(cfg.RevJitter, seedRNG.Uint64())
	}
	env.Freeze()
	// Tracer attach precedes endpoint construction (see RunTopoSim).
	env.AttachTracers(Observe.TraceCap)
	ob := newObsRun(env, env.Tracers, 0)

	tfrcCfg := tfrc.DefaultConfig()
	tfrcCfg.Window = cfg.L
	tfrcCfg.Comprehensive = cfg.Comprehensive

	flowID := 0
	tfrcSenders := make([]*tfrc.Sender, 0, cfg.NTFRC)
	for i := 0; i < cfg.NTFRC; i++ {
		c := tfrcCfg
		c.Seed = seedRNG.Uint64()
		sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
		snd, _ := tfrc.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, c,
			cfg.AccessDelay, cfg.RevExtra)
		tfrcSenders = append(tfrcSenders, snd)
		staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	tcpSenders := make([]*tcp.Sender, 0, cfg.NTCP)
	for i := 0; i < cfg.NTCP; i++ {
		sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
		snd, _ := tcp.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, tcp.DefaultConfig(),
			cfg.AccessDelay, cfg.RevExtra)
		tcpSenders = append(tcpSenders, snd)
		staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	// Opposing-direction flows: data over the reverse chain, ACKs over
	// the forward bottleneck.
	backSenders := make([]*tcp.Sender, 0, cfg.BackTCP)
	for i := 0; i < cfg.BackTCP; i++ {
		env.SetRoute(flowID, rev...)
		env.SetReverseRoute(flowID, fwd)
		sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
		snd, _ := tcp.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, tcp.DefaultConfig(),
			cfg.AccessDelay, cfg.RevExtra)
		backSenders = append(backSenders, snd)
		staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	if cfg.RevCrossLoad > 0 {
		minCap := cfg.RevCapacities[0]
		for _, c := range cfg.RevCapacities[1:] {
			minCap = math.Min(minCap, c)
		}
		// Size the on/off source so its mean rate offers RevCrossLoad of
		// the tightest reverse hop: bursts at that hop's full rate, mean
		// 20 packets, off time solved from the load.
		const meanBurst, pktSize = 20.0, 1000.0
		burstBytes := meanBurst * pktSize
		burstTime := burstBytes / minCap
		target := cfg.RevCrossLoad * minCap
		meanOff := burstBytes/target - burstTime
		if meanOff <= 0 {
			meanOff = 1e-3
		}
		env.AttachSink(flowID, rev...)
		ctSched, ctNet := env.SinkEnv(rev...)
		ct := netsim.NewCrossTraffic(ctSched, ctNet, flowID, minCap, meanBurst, 1.5,
			meanOff, int(pktSize), seedRNG.Uint64())
		ctSched.At(seedRNG.Float64(), ct.Start)
		flowID++
	}

	env.RunUntil(cfg.Warmup)
	resetStats(tfrcSenders)
	resetStats(tcpSenders)
	resetStats(backSenders)
	ob.runMeasured(env.RunUntil, cfg.Warmup, cfg.Warmup+cfg.Duration)

	var res RevSimResult
	res.TFRCPerFlow = tfrcStats(tfrcSenders)
	res.TCPPerFlow = tcpStats(tcpSenders)
	res.TFRC = aggregateTFRC(res.TFRCPerFlow, cfg.L)
	res.TCP = aggregateTCP(res.TCPPerFlow)
	res.Back = aggregateTCP(tcpStats(backSenders))
	// Flow 0 is always a primary flow and all primaries share terminal
	// delays, so its base RTT represents the class.
	res.BaseRTT = env.BaseRTT(0)
	for _, id := range rev {
		res.RevDrops += env.Link(id).Queue().(*netsim.DropTail).Drops
	}
	// All reverse-chain traffic enters at the first hop, so the packets
	// offered to the chain are that hop's forwards plus its own drops;
	// drops at later hops already count among the first hop's forwards.
	first := env.Link(rev[0])
	if offered := first.Forwarded + first.Queue().(*netsim.DropTail).Drops; offered > 0 {
		res.RevDropRate = float64(res.RevDrops) / float64(offered)
	}
	for _, st := range res.TFRCPerFlow {
		res.NoFeedbackHalvings += st.NoFeedbackHalvings
	}
	var acks, pkts int64
	for _, st := range res.TCPPerFlow {
		acks += st.AcksReceived
		pkts += st.PacketsSent
	}
	if pkts > 0 {
		res.AcksPerPacket = float64(acks) / float64(pkts)
	}
	res.EventsFired = env.Fired()
	res.Obs = ob.collect(res.TFRCPerFlow, res.TCPPerFlow)
	if LeakCheck {
		if err := env.CheckLeaks(); err != nil {
			panic(err)
		}
	}
	return res
}

// reverseBase is the shared sizing of the routed-reverse scenarios: the
// single-hop parking-lot forward path (10 Mb/s DropTail-64, 10 ms) with
// a routed one-hop reverse path completing a 40 ms base RTT
// (10 + 5 + 5 + 20 ms, queueing and transmission excluded).
func reverseBase(sz Sizing) RevSimConfig {
	cfg := RevSimConfig{
		Capacity:      1.25e6,
		Buffer:        64,
		FwdDelay:      0.01,
		AccessDelay:   0.005,
		RevExtra:      0.02,
		RevCapacities: []float64{1.25e6},
		RevBuffer:     64,
		RevHopDelay:   0.005,
		NTFRC:         2,
		NTCP:          2,
		L:             8,
		Comprehensive: true,
		Duration:      300,
		Warmup:        50,
		RevJitter:     0.2,
	}
	if sz.SimFactor > 0 && sz.SimFactor < 1 {
		cfg.Duration *= sz.SimFactor
		cfg.Warmup *= sz.SimFactor
	}
	cfg.Shards = sz.Shards
	return cfg
}

// revCell pairs one routed-reverse run with the sweep metadata its
// table rows need.
type revCell struct {
	name string
	cfg  RevSimConfig
	x    float64 // the swept parameter (load, back flows, or ratio)
}

// revJob wraps one routed-reverse run as a runner job.
func revJob(name string, cfg RevSimConfig) runner.Job {
	return runner.Job{
		Name: name,
		Seed: cfg.Seed,
		Run:  func(context.Context) any { return RunRevSim(cfg) },
	}
}

// revGridPlan instantiates gridPlan for routed-reverse sweeps.
func revGridPlan(t *Table, cells []revCell,
	rows func(c revCell, res RevSimResult) [][]float64) ([]runner.Job, FoldFunc) {
	return gridPlan(t, cells, func(c revCell) runner.Job { return revJob(c.name, c.cfg) }, rows)
}

// planRevCross sweeps unresponsive cross-traffic load on a tight
// reverse bottleneck (1/20 of the forward capacity): as the reverse
// link saturates, feedback reports and ACKs are queued and dropped, the
// TFRC senders fall back to no-feedback halving, and the ratio column
// tracks whether TFRC's conservativeness survives a degraded control
// loop — the regime the paper's long-run claims assume away.
func planRevCross(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "revcross",
		Note: "reverse-bottleneck cross traffic: TFRC/TCP under swept feedback-path load",
		Columns: []string{"rev_load", "fb_drop", "nf_halvings", "p_tfrc",
			"x_tfrc", "x_tcp", "ratio", "acks_per_pkt"},
	}
	var cells []revCell
	seed := uint64(3040)
	for _, load := range []float64{0, 0.5, 0.9, 1.2} {
		seed++
		cfg := reverseBase(sz)
		cfg.RevCapacities = []float64{cfg.Capacity / 20}
		cfg.RevCrossLoad = load
		cfg.Seed = seed
		cells = append(cells, revCell{
			name: fmt.Sprintf("revcross load=%.1f", load),
			cfg:  cfg, x: load,
		})
	}
	return revGridPlan(t, cells, func(c revCell, res RevSimResult) [][]float64 {
		if res.TCP.Throughput <= 0 {
			return nil
		}
		return [][]float64{{c.x, res.RevDropRate, float64(res.NoFeedbackHalvings),
			res.TFRC.LossEventRate, res.TFRC.Throughput, res.TCP.Throughput,
			res.TFRC.Throughput / res.TCP.Throughput, res.AcksPerPacket}}
	})
}

// planAckShare puts data and acknowledgments in the same queues: the
// reverse path has the forward capacity, and a swept number of
// opposing-direction TCP flows fill it with data that the primary
// flows' feedback and ACKs must compete with (while the back flows'
// own ACKs ride the forward bottleneck) — the classic two-way-traffic
// ack-compression experiment.
func planAckShare(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "ackshare",
		Note: "shared forward/reverse bottlenecks: acks competing with opposing data",
		Columns: []string{"back_flows", "x_tfrc", "x_tcp", "x_back",
			"rev_drop", "acks_per_pkt", "ratio"},
	}
	var cells []revCell
	seed := uint64(3140)
	for _, back := range []int{0, 1, 2, 4} {
		seed++
		cfg := reverseBase(sz)
		cfg.BackTCP = back
		cfg.Seed = seed
		cells = append(cells, revCell{
			name: fmt.Sprintf("ackshare back=%d", back),
			cfg:  cfg, x: float64(back),
		})
	}
	return revGridPlan(t, cells, func(c revCell, res RevSimResult) [][]float64 {
		if res.TCP.Throughput <= 0 {
			return nil
		}
		return [][]float64{{c.x, res.TFRC.Throughput, res.TCP.Throughput,
			res.Back.Throughput, res.RevDropRate, res.AcksPerPacket,
			res.TFRC.Throughput / res.TCP.Throughput}}
	})
}

// planAsymRev probes asymmetric-capacity reverse chains (Table I's
// access links are far from symmetric): the reverse path narrows to a
// swept fraction of the forward capacity across one or two hops, and
// the TFRC class's normalized throughput x̄/f(p, r) is evaluated at its
// own measured loss-event rate and RTT — checking whether feedback
// starvation pushes the protocol off the formula.
func planAsymRev(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "asymrev",
		Note: "asymmetric-capacity reverse chains: x̄/f(p,r) under narrowing feedback paths",
		Columns: []string{"rev_hops", "rev_ratio", "fb_drop", "p_tfrc",
			"x_tfrc", "normalized"},
	}
	var cells []revCell
	seed := uint64(3240)
	for _, hops := range []int{1, 2} {
		for _, ratio := range []float64{0.5, 0.1, 0.02} {
			seed++
			cfg := reverseBase(sz)
			// Capacities descend geometrically to ratio·Capacity at the
			// last reverse hop.
			caps := make([]float64, hops)
			for i := range caps {
				caps[i] = cfg.Capacity * math.Pow(ratio, float64(i+1)/float64(hops))
			}
			cfg.RevCapacities = caps
			cfg.Seed = seed
			cells = append(cells, revCell{
				name: fmt.Sprintf("asymrev hops=%d ratio=%.2f", hops, ratio),
				cfg:  cfg, x: ratio,
			})
		}
	}
	return revGridPlan(t, cells, func(c revCell, res RevSimResult) [][]float64 {
		cls := res.TFRC
		if cls.Events == 0 || cls.MeanRTT <= 0 {
			return nil
		}
		f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
		norm := cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
		return [][]float64{{float64(len(c.cfg.RevCapacities)), c.x,
			res.RevDropRate, cls.LossEventRate, cls.Throughput, norm}}
	})
}

func init() {
	register(&Scenario{Name: "revcross",
		Note:    "reverse-bottleneck cross traffic: feedback loss at swept reverse loads",
		Plan:    planRevCross,
		Sharded: true})
	register(&Scenario{Name: "ackshare",
		Note:    "shared forward/reverse bottlenecks: acks competing with opposing data",
		Plan:    planAckShare,
		Sharded: true})
	register(&Scenario{Name: "asymrev",
		Note:    "asymmetric-capacity reverse chains: conservativeness under feedback starvation",
		Plan:    planAsymRev,
		Sharded: true})
}

// RevCross, AckShare and AsymRev are the serial convenience wrappers of
// the routed-reverse scenario family.
func RevCross(sz Sizing) *Table { return runPlan(planRevCross, sz)[0] }

// AckShare reproduces the shared forward/reverse bottleneck sweep.
func AckShare(sz Sizing) *Table { return runPlan(planAckShare, sz)[0] }

// AsymRev reproduces the asymmetric-capacity reverse chain sweep.
func AsymRev(sz Sizing) *Table { return runPlan(planAsymRev, sz)[0] }
