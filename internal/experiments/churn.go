package experiments

import (
	"math"

	"repro/internal/arrivals"
	"repro/internal/formula"
	"repro/internal/runner"
)

// The churn scenario family exercises the run-time flow lifecycle
// engine (internal/arrivals): session arrival processes that attach
// finite TFRC/TCP/CBR transfers while the simulation runs and — on the
// serial executor — detach and recycle them once quiet. Each fold
// reports, per class, the Palm view of the population process (the mean
// population an arrival finds, E0[N]) next to the time-average
// population: PASTA makes the two agree for Poisson session arrivals
// and not for the bursty Weibull ones, the same inspection-paradox
// arithmetic the paper's Palm analysis builds on. Alongside, the
// persistent TFRC flows' normalized throughput x̄/f(p, r) tracks
// whether equation-based control stays conservative while the flow
// population churns, and the run's forced epoch log contributes the
// peak per-epoch drop rate — where in time the surge actually bit.

// churnEpochs is the epoch-log floor the churn folds consume: every
// churn run records at least this many per-epoch delta windows even on
// a plain CLI run.
const churnEpochs = 4

// peakEpochDropRate scans a run's epoch log for the worst per-epoch
// drop rate (queue + early + fault drops per second). Returns 0 when
// the run carried no epochs.
func peakEpochDropRate(res TopoSimResult) float64 {
	if res.Obs == nil || res.Obs.Epochs == nil {
		return 0
	}
	peak := 0.0
	for _, e := range res.Obs.Epochs.Epochs {
		if w := e.End - e.Start; w > 0 {
			if r := float64(e.QueueDrops+e.EarlyDrops+e.FaultDrops) / w; r > peak {
				peak = r
			}
		}
	}
	return peak
}

// tfrcNormalized evaluates the persistent TFRC class's x̄/f(p, r) at
// its own measured loss-event rate and RTT (the multibneck arithmetic).
// Returns 0 when the class saw no loss events.
func tfrcNormalized(res TopoSimResult) float64 {
	cls := res.TFRC
	if cls.Events == 0 || cls.MeanRTT <= 0 {
		return 0
	}
	f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
	return cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
}

// churnRows renders one run's per-class rows: the shared run-level
// columns (normalized TFRC throughput, peak epoch drop rate) repeat on
// each class row so every row is self-contained.
func churnRows(res TopoSimResult) [][]float64 {
	norm := tfrcNormalized(res)
	peakDrop := peakEpochDropRate(res)
	var rows [][]float64
	for i, c := range res.Churn {
		palmPop, timePop := c.PalmPop, c.TimePop
		ratio := 0.0
		if timePop > 0 {
			ratio = palmPop / timePop
		}
		rows = append(rows, []float64{
			float64(i), float64(c.Proto),
			float64(c.Arrivals), float64(c.Completions),
			float64(c.Peak), float64(c.ActiveAtEnd),
			c.MeanDuration, palmPop, timePop, ratio,
			norm, peakDrop,
		})
	}
	return rows
}

// churnColumns is the shared fold header of the family.
var churnColumns = []string{"class", "proto", "arrivals", "completions",
	"peak_pop", "active_end", "mean_dur", "palm_pop", "time_pop",
	"palm_over_time", "x_tfrc_norm", "peak_drop_rate"}

// planFlashcrowd models a flash crowd on the dumbbell: persistent TFRC
// and TCP flows hold the bottleneck while bursty Weibull-interarrival
// TCP mice surge over the forward path and a second mice class loads
// the mirrored reverse chain (ACK-path churn). The Weibull gaps
// (shape < 1) cluster arrivals, so the Palm population exceeds the
// time average — the conservativeness-relevant inspection bias.
func planFlashcrowd(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "flashcrowd",
		Note:    "flash crowd on the dumbbell: bursty TCP mice vs persistent TFRC/TCP",
		Columns: churnColumns,
	}
	cfg := parkingLotBase(sz)
	cfg.MirrorRev = true
	cfg.Seed = 2340
	cfg.ForceEpochs = churnEpochs
	end := cfg.Warmup + cfg.Duration
	cfg.Churn = []arrivals.Spec{
		{
			Name: "mice-fwd", Proto: arrivals.TCP,
			Gap:  arrivals.Gap{Kind: arrivals.Weibull, Shape: 0.55, Scale: 0.02},
			Size: arrivals.Size{Kind: arrivals.Pareto, Shape: 1.3, MinPackets: 4, CapPackets: 200},
			Stop: end, MaxArrivals: 16000, Seed: 7101,
		},
		{
			Name: "mice-rev", Proto: arrivals.TCP, Reverse: true,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 20},
			Size: arrivals.Size{Kind: arrivals.Pareto, Shape: 1.3, MinPackets: 4, CapPackets: 100},
			Stop: end, MaxArrivals: 12000, Seed: 7102,
		},
	}
	cells := []topoCell{{name: "flashcrowd", cfg: cfg, hops: cfg.Hops, L: cfg.L}}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		return churnRows(res)
	})
}

// planWebmice is the PASTA check on the 8-hop chain: two TCP-mice
// classes with identical Pareto size laws and matched mean arrival
// rates, one Poisson and one heavy-tailed Weibull, churn under a
// persistent TFRC flow. The Poisson class's palm_over_time column
// should sit near 1; the Weibull class's above it.
func planWebmice(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "webmice",
		Note:    "web mice over 8 hops: Poisson vs Weibull session arrivals (PASTA check)",
		Columns: churnColumns,
	}
	cfg := parkingLotBase(sz)
	cfg.Hops = 8
	cfg.NTFRC = 1
	cfg.NTCP = 0
	cfg.Seed = 2440
	cfg.ForceEpochs = churnEpochs
	end := cfg.Warmup + cfg.Duration
	size := arrivals.Size{Kind: arrivals.Pareto, Shape: 1.5, MinPackets: 4, CapPackets: 100}
	// Matched mean interarrival: Weibull(0.6, scale) has mean
	// scale·Γ(1+1/0.6) ≈ 1.505·scale; 1/25 s mean gap needs scale ≈ 0.0266.
	cfg.Churn = []arrivals.Spec{
		{
			Name: "poisson", Proto: arrivals.TCP,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 25},
			Size: size, Stop: end, MaxArrivals: 16000, Seed: 7201,
		},
		{
			Name: "weibull", Proto: arrivals.TCP,
			Gap:  arrivals.Gap{Kind: arrivals.Weibull, Shape: 0.6, Scale: 0.0266},
			Size: size, Stop: end, MaxArrivals: 16000, Seed: 7202,
		},
	}
	cells := []topoCell{{name: "webmice", cfg: cfg, hops: cfg.Hops, L: cfg.L}}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		return churnRows(res)
	})
}

// planSurge is the scale run: a steady CBR session base load plus a
// mid-run TCP arrival surge on the forward path and a reverse-chain
// surge, together approaching 10^5 arrivals per run at full sizing. The
// surge window deliberately overloads the bottleneck; the peak epoch
// drop rate and the population drain after Stop are the observables.
func planSurge(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "surge",
		Note:    "arrival surge at scale: CBR session base + mid-run TCP surge, fwd and rev",
		Columns: churnColumns,
	}
	cfg := parkingLotBase(sz)
	cfg.MirrorRev = true
	cfg.NTFRC = 1
	cfg.NTCP = 1
	cfg.Seed = 2540
	cfg.ForceEpochs = churnEpochs
	end := cfg.Warmup + cfg.Duration
	surgeStart := cfg.Warmup + 0.25*cfg.Duration
	surgeStop := cfg.Warmup + 0.75*cfg.Duration
	cfg.Churn = []arrivals.Spec{
		{
			Name: "base-cbr", Proto: arrivals.CBR, CBRRate: 100,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 100},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 3},
			Stop: end, MaxArrivals: 40000, Seed: 7301,
		},
		{
			Name: "surge-fwd", Proto: arrivals.TCP,
			Gap:   arrivals.Gap{Kind: arrivals.Poisson, Rate: 300},
			Size:  arrivals.Size{Kind: arrivals.Fixed, Packets: 4},
			Start: surgeStart, Stop: surgeStop, MaxArrivals: 50000, Seed: 7302,
		},
		{
			Name: "surge-rev", Proto: arrivals.TCP, Reverse: true,
			Gap:   arrivals.Gap{Kind: arrivals.Poisson, Rate: 60},
			Size:  arrivals.Size{Kind: arrivals.Fixed, Packets: 4},
			Start: surgeStart, Stop: surgeStop, MaxArrivals: 12000, Seed: 7303,
		},
	}
	cells := []topoCell{{name: "surge", cfg: cfg, hops: cfg.Hops, L: cfg.L}}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		return churnRows(res)
	})
}

func init() {
	register(&Scenario{Name: "flashcrowd",
		Note:    "flash-crowd churn on the dumbbell: bursty mice vs persistent flows",
		Plan:    planFlashcrowd,
		Sharded: true})
	register(&Scenario{Name: "webmice",
		Note:    "Poisson vs Weibull web-mice churn over 8 hops (PASTA check)",
		Plan:    planWebmice,
		Sharded: true})
	register(&Scenario{Name: "surge",
		Note:    "arrival surge at 100K-flow scale with reverse-path churn",
		Plan:    planSurge,
		Sharded: true})
}

// Flashcrowd, Webmice and Surge are the serial convenience wrappers of
// the churn scenario family.
func Flashcrowd(sz Sizing) *Table { return runPlan(planFlashcrowd, sz)[0] }

// Webmice reproduces the PASTA web-mice comparison.
func Webmice(sz Sizing) *Table { return runPlan(planWebmice, sz)[0] }

// Surge reproduces the arrival-surge scale run.
func Surge(sz Sizing) *Table { return runPlan(planSurge, sz)[0] }
