package experiments

import "repro/internal/tfrc"

// Profile describes a testbed or wide-area path as a SimConfig template,
// standing in for the paper's lab configurations (Linux routers, 10 Mb/s
// hub, NIST Net 25 ms delay) and the EPFL→{INRIA, UMASS, KTH, UMELB}
// Internet paths of Table I. Loss arises endogenously from the competing
// flows themselves, as in the paper's experiments.
type Profile struct {
	// Name identifies the profile ("lab-dt100", "inria", ...).
	Name string
	// Capacity is the bottleneck rate in bytes/second. Wide-area
	// profiles are scaled down from the physical access rates so that
	// packet-level simulation of the full sweep stays tractable; the
	// loss-event-rate ranges remain in the paper's small-p regime.
	Capacity float64
	// Queue and Buffer/BDPPackets configure the bottleneck queue.
	Queue      QueueKind
	Buffer     int
	BDPPackets float64
	// BaseDelay and RevDelay set the path RTT (2·BaseDelay + RevDelay
	// queueing excluded).
	BaseDelay, RevDelay float64
	// Comprehensive reflects whether the TFRC comprehensive element was
	// enabled in the corresponding experiment set (the paper disables
	// it in the lab, enables it on the Internet).
	Comprehensive bool
	// Pairs is the sweep of connection counts (N TFRC + N TCP).
	Pairs []int
	// Duration and Warmup size each run in simulated seconds.
	Duration, Warmup float64
	// CrossLoad adds heavy-tailed background traffic at this fraction
	// of the capacity (wide-area paths carry cross traffic; the lab
	// bottleneck does not).
	CrossLoad float64
}

// Config instantiates the profile for a given pair count, TFRC window
// and seed.
func (pr Profile) Config(pairs, L int, seed uint64) SimConfig {
	return SimConfig{
		Capacity:      pr.Capacity,
		Queue:         pr.Queue,
		Buffer:        pr.Buffer,
		BDPPackets:    pr.BDPPackets,
		BaseDelay:     pr.BaseDelay,
		RevDelay:      pr.RevDelay,
		NTFRC:         pairs,
		NTCP:          pairs,
		L:             L,
		Comprehensive: pr.Comprehensive,
		TFRCFormula:   tfrc.PFTKStandard,
		Duration:      pr.Duration,
		Warmup:        pr.Warmup,
		Seed:          seed,
		RevJitter:     0.2,
		CrossLoad:     pr.CrossLoad,
	}
}

// LabDT64, LabDT100 and LabRED mirror the paper's lab testbed: 10 Mb/s
// bottleneck, 25 ms added delay each way, DropTail with 64 or 100
// packets or RED with the paper's thresholds (U = 62500 B ≈ 62 packets
// of 1000 B: buffer 5/2·U, min 3/20·U, max 5/4·U).
var (
	LabDT64 = Profile{
		Name: "lab-dt64", Capacity: 1.25e6, Queue: DropTail, Buffer: 64,
		BaseDelay: 0.025, RevDelay: 0.025, Comprehensive: false,
		Pairs: []int{1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36}, Duration: 300, Warmup: 50,
	}
	LabDT100 = Profile{
		Name: "lab-dt100", Capacity: 1.25e6, Queue: DropTail, Buffer: 100,
		BaseDelay: 0.025, RevDelay: 0.025, Comprehensive: false,
		Pairs: []int{1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36}, Duration: 300, Warmup: 50,
	}
	LabRED = Profile{
		Name: "lab-red", Capacity: 1.25e6, Queue: RED, BDPPackets: 62,
		BaseDelay: 0.025, RevDelay: 0.025, Comprehensive: false,
		Pairs: []int{1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36}, Duration: 300, Warmup: 50,
	}
)

// WAN profiles stand in for Table I's Internet paths. Rates are scaled
// (divided by ~8-20) from the physical access rates for tractability;
// RTTs match Table I; queueing is DropTail as in campus access routers.
var (
	INRIA = Profile{
		Name: "inria", Capacity: 2.5e6, Queue: DropTail, Buffer: 120,
		BaseDelay: 0.010, RevDelay: 0.020, Comprehensive: true,
		Pairs: []int{1, 2, 4, 6, 8, 10}, Duration: 300, Warmup: 60,
		CrossLoad: 0.1,
	}
	UMASS = Profile{
		Name: "umass", Capacity: 2.5e6, Queue: DropTail, Buffer: 200,
		BaseDelay: 0.035, RevDelay: 0.062, Comprehensive: true,
		Pairs: []int{1, 2, 4, 6, 8, 10}, Duration: 300, Warmup: 60,
		CrossLoad: 0.1,
	}
	KTH = Profile{
		Name: "kth", Capacity: 1.25e6, Queue: DropTail, Buffer: 100,
		BaseDelay: 0.016, RevDelay: 0.030, Comprehensive: true,
		Pairs: []int{1, 2, 4, 6, 8, 10}, Duration: 300, Warmup: 60,
		CrossLoad: 0.1,
	}
	UMELB = Profile{
		Name: "umelb", Capacity: 1.25e6, Queue: DropTail, Buffer: 250,
		BaseDelay: 0.125, RevDelay: 0.225, Comprehensive: true,
		Pairs: []int{1, 2, 4, 6, 8, 10}, Duration: 300, Warmup: 60,
		CrossLoad: 0.1,
	}
)

// WANProfiles lists the Table I stand-ins in the paper's order.
func WANProfiles() []Profile { return []Profile{INRIA, UMASS, KTH, UMELB} }

// LabProfiles lists the testbed configurations.
func LabProfiles() []Profile { return []Profile{LabDT64, LabDT100, LabRED} }

// Scale shrinks profile run lengths for tests and benches. factor <= 1
// scales Duration and Warmup; pairsCap truncates the sweep.
func (pr Profile) Scale(factor float64, pairsCap int) Profile {
	out := pr
	if factor > 0 && factor < 1 {
		out.Duration = pr.Duration * factor
		out.Warmup = pr.Warmup * factor
	}
	if pairsCap > 0 && pairsCap < len(pr.Pairs) {
		out.Pairs = pr.Pairs[:pairsCap]
	}
	return out
}
