package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
)

// runSims executes independent sims through the runner pool, the same
// path the scenario registry uses.
func runSims(t *testing.T, cfgs ...SimConfig) []SimResult {
	t.Helper()
	jobs := make([]runner.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = simJob("integration", cfg)
	}
	results, err := runner.NewPool(0).Execute(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]SimResult, len(results))
	for i, r := range results {
		out[i] = r.(SimResult)
	}
	return out
}

// Integration: the packet-level TFRC's loss-interval statistics fed back
// through the analytical core must predict a throughput close to the
// protocol's measured one. This closes the loop between the simulator
// substrate (netsim/tfrc) and the paper's theory (core).
func TestIntegrationSimulatorMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("long packet-level integration run skipped in -short mode")
	}
	t.Parallel()
	pr := NS2Profile().Scale(0.4, 0)
	res := RunSim(pr.Config(4, 8, 7777))
	cls := res.TFRC
	if cls.Events < 100 {
		t.Skipf("too few events (%d) for a stable comparison", cls.Events)
	}
	// Theory: with (C1) holding (covnorm ~ 0), the comprehensive control
	// is conservative but within Claim 1's regime; its normalized
	// throughput should land in (0.6, 1.05].
	f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
	norm := cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
	if norm < 0.6 || norm > 1.1 {
		t.Fatalf("protocol normalized throughput = %v, theory expects (0.6, 1.1)", norm)
	}
	if math.Abs(cls.CovNorm) > 0.15 {
		t.Fatalf("covnorm = %v, want near zero (C1)", cls.CovNorm)
	}
}

// Integration: feeding the simulator's measured per-flow loss intervals
// into the basic-control Monte Carlo (a replay process) reproduces a
// normalized throughput below the comprehensive protocol's, per
// Proposition 2's direction.
func TestIntegrationReplayIntervalsThroughCore(t *testing.T) {
	if testing.Short() {
		t.Skip("long packet-level integration run skipped in -short mode")
	}
	t.Parallel()
	pr := NS2Profile().Scale(0.6, 0)
	res := RunSim(pr.Config(6, 8, 4242))
	var intervals []float64
	for _, st := range res.TFRCPerFlow {
		intervals = append(intervals, st.LossIntervals...)
	}
	if len(intervals) < 200 {
		t.Skipf("too few intervals: %d", len(intervals))
	}
	f := formula.NewPFTKStandard(formula.ParamsForRTT(res.TFRC.MeanRTT))
	replay := &sliceProcess{xs: intervals}
	basic := core.RunBasic(core.Config{
		Formula: f,
		Weights: estimator.TFRCWeights(8),
		Process: replay,
		Events:  len(intervals) - 16,
		Warmup:  8,
	})
	if !basic.Conservative(0.05) {
		t.Fatalf("replayed basic control non-conservative: %v", basic.Normalized)
	}
	// The protocol (comprehensive + feedback dynamics) attains at least
	// the replayed basic control's normalized throughput within noise.
	protoNorm := res.TFRC.Throughput / f.Rate(math.Max(res.TFRC.LossEventRate, 1e-9))
	if protoNorm < basic.Normalized*0.7 {
		t.Fatalf("protocol normalized %v far below basic replay %v",
			protoNorm, basic.Normalized)
	}
}

// sliceProcess replays a recorded loss-interval sequence cyclically.
type sliceProcess struct {
	xs []float64
	i  int
}

func (s *sliceProcess) Next() float64 {
	v := s.xs[s.i%len(s.xs)]
	s.i++
	if v <= 0 {
		v = 1
	}
	return v
}

func (s *sliceProcess) MeanInterval() float64 { return stats.Mean(s.xs) }
func (s *sliceProcess) Name() string          { return "replay" }

// Integration: the analytic Claim 4 mechanism and the packet-level
// Figure 17 competing run point the same way (TCP sees more loss
// events per packet than TFRC when competing over DropTail).
func TestIntegrationClaim4Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("long packet-level integration run skipped in -short mode")
	}
	t.Parallel()
	analyticRatio := 16.0 / 9
	s, ok := Lookup("fig17")
	if !ok {
		t.Fatal("fig17 not registered")
	}
	tables, err := s.Run(context.Background(),
		Sizing{Events: 5000, SimFactor: 0.35, Pairs: []int{1}}, runner.NewPool(0))
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var competing float64
	n := 0
	for _, row := range tb.Rows {
		if row[2] > 0 {
			competing += row[2]
			n++
		}
	}
	if n == 0 {
		t.Skip("no competing data")
	}
	competing /= float64(n)
	if competing <= 1 {
		t.Fatalf("packet-level competing ratio %v contradicts analytic %v",
			competing, analyticRatio)
	}
}

// Integration: cross traffic raises the loss-event rate seen by the
// foreground flows without starving them.
func TestIntegrationCrossTrafficRaisesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long packet-level integration run skipped in -short mode")
	}
	t.Parallel()
	pr := INRIA.Scale(0.3, 0)
	base := pr.Config(2, 8, 31)
	base.CrossLoad = 0
	loaded := pr.Config(2, 8, 31)
	loaded.CrossLoad = 0.3
	res := runSims(t, base, loaded)
	clean, dirty := res[0], res[1]
	if dirty.TFRC.Throughput <= 0 || dirty.TCP.Throughput <= 0 {
		t.Fatal("cross traffic starved the foreground")
	}
	if dirty.TFRC.LossEventRate+dirty.TCP.LossEventRate <=
		clean.TFRC.LossEventRate+clean.TCP.LossEventRate {
		t.Fatalf("cross traffic did not raise loss: %v vs %v",
			dirty.TFRC.LossEventRate+dirty.TCP.LossEventRate,
			clean.TFRC.LossEventRate+clean.TCP.LossEventRate)
	}
}

// Integration: history discounting must not change long-run behavior
// qualitatively — TFRC stays within the conservative band — while
// raising the rate during long loss-free periods (weakly larger
// throughput under light load).
func TestIntegrationHistoryDiscounting(t *testing.T) {
	if testing.Short() {
		t.Skip("long packet-level integration run skipped in -short mode")
	}
	t.Parallel()
	pr := NS2Profile().Scale(0.3, 0)
	plain := pr.Config(1, 8, 63)
	disc := pr.Config(1, 8, 63)
	disc.HistoryDiscounting = true
	res := runSims(t, plain, disc)
	plainRes, discRes := res[0], res[1]
	if discRes.TFRC.Throughput < plainRes.TFRC.Throughput*0.8 {
		t.Fatalf("discounting collapsed throughput: %v vs %v",
			discRes.TFRC.Throughput, plainRes.TFRC.Throughput)
	}
	f := formula.NewPFTKStandard(formula.ParamsForRTT(discRes.TFRC.MeanRTT))
	norm := discRes.TFRC.Throughput / f.Rate(math.Max(discRes.TFRC.LossEventRate, 1e-9))
	if norm > 1.3 {
		t.Fatalf("discounting made TFRC wildly non-conservative: %v", norm)
	}
}

// Integration: the full core pipeline on a designed process agrees with
// direct statistics computed from the same stream (Proposition 1 is a
// plain identity of the simulated quantities).
func TestIntegrationProp1Identity(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	proc := lossmodel.DesignShiftedExp(0.1, 0.8, rng.New(555))
	res := core.RunBasic(core.Config{
		Formula: f,
		Weights: estimator.TFRCWeights(8),
		Process: proc,
		Events:  40000,
	})
	// Throughput must equal E[θ]/E[S] of the same run:
	// x̄·E[S] = E[θ] ⇒ x̄·MeanInterLossTime·p ≈ 1.
	lhs := res.Throughput * res.MeanInterLossTime * res.LossEventRate
	if math.Abs(lhs-1) > 0.01 {
		t.Fatalf("Prop 1 identity violated: x̄·E[S]·p = %v, want 1", lhs)
	}
}
