package experiments

import (
	"sync"

	"repro/internal/arrivals"
	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/topology"
)

// simExec is the executor seam between the multi-hop experiment
// builders and the two engines that can host them: the serial
// topology.Network on one scheduler, and the space-parallel
// shard.Cluster with one scheduler per shard. The build surface (nodes,
// links, routes, jitter, sinks) is declared identically against either;
// the executor-specific part is where a flow's endpoints live
// (FlowEnv/SinkEnv), how time advances (RunUntil), and how the freelist
// invariant is audited (CheckLeaks). RunTopoSim and RunRevSim are
// written once against this seam, so the sharded and serial runs are
// the same build code by construction — the determinism contract then
// only depends on the engines, which the shard package pins.
type simExec interface {
	AddNode(name string) topology.NodeID
	AddLink(from, to topology.NodeID, rate, delay float64, queue netsim.Queue) topology.LinkID
	SetRoute(flow int, hops ...topology.LinkID)
	SetDefaultRoute(hops ...topology.LinkID)
	SetReverseRoute(flow int, hops ...topology.LinkID)
	SetDefaultReverseRoute(hops ...topology.LinkID)
	SetReverseJitter(j float64, seed uint64)
	AttachSink(flow int, hops ...topology.LinkID)
	Link(id topology.LinkID) *netsim.Link
	// Links returns the number of declared links; together with Link and
	// LinkSched it satisfies fault.Host, so a fault.Plan arms identically
	// against either engine.
	Links() int
	// LinkSched returns the scheduler that owns the link — the engine's
	// only scheduler on the serial executor, the owning shard's on the
	// sharded one. Fault events for a link must fire there.
	LinkSched(id topology.LinkID) *des.Scheduler
	BaseRTT(flow int) float64

	// arrivals.Host is the run-time churn seam: RouteEnv resolves
	// endpoint environments from explicit hops, AttachLive registers a
	// flow while the simulation runs, and Lifecycle exposes detach (nil
	// on the sharded executor, which never reclaims).
	arrivals.Host
	// ReserveFlows sizes the flow table for live attachment: ids
	// [0, max) become attachable mid-run. On the sharded executor the
	// table's slice header must not move while shard goroutines read it,
	// so reservation is mandatory before the first Run that attaches.
	ReserveFlows(max int)
	// DeclareReverseChannel pre-declares a pure-delay reverse channel
	// for flows that will attach live over the given forward route, so
	// the sharded executor can fold the reverse latency into its
	// conservative horizon before sealing. The serial executor ignores
	// it.
	DeclareReverseChannel(hops []topology.LinkID, revDelay float64)

	// Freeze ends graph declaration: the sharded executor partitions
	// here (links materialize on their owning shards), the serial one
	// has nothing to do. Call it after every AddLink and before the
	// first FlowEnv.
	Freeze()
	// FlowEnv resolves the scheduler/network pair each of a flow's
	// endpoints must be built on (tfrc.NewFlowOn / tcp.NewFlowOn). The
	// flow's route must be resolvable (SetRoute or SetDefaultRoute).
	FlowEnv(flow int) (sndSched *des.Scheduler, sndNet netsim.Network, rcvSched *des.Scheduler, rcvNet netsim.Network)
	// SinkEnv resolves the pair a sink flow's source must run on.
	SinkEnv(hops ...topology.LinkID) (*des.Scheduler, netsim.Network)
	// AttachTracers installs bounded event tracers (one per scheduling
	// domain) of the given capacity; cap <= 0 keeps tracing off (every
	// tracer nil, every hook a nil-sink). Call it between Freeze and the
	// first endpoint construction — senders and receivers resolve their
	// domain's tracer once, when built.
	AttachTracers(cap int)
	// Tracers returns the per-domain tracers in domain order (a single
	// element on the serial engine), nil entries when tracing is off.
	Tracers() []*obs.Tracer
	// RunUntil advances simulated time, firing every event with
	// timestamp <= t. Between calls the engine is phase-aligned: stats
	// may be read and reset, and CheckLeaks holds.
	RunUntil(t float64)
	// Fired returns total events executed (summed over shards).
	Fired() uint64
	// Pending returns the live scheduled-event population (summed over
	// shards) — executor-invariant at phase-aligned instants.
	Pending() int
	// Outstanding returns the freelist's in-flight packet population.
	Outstanding() int64
	CheckLeaks() error
	// Close recycles the executor's arena. The executor must not be
	// used afterwards, and nothing returned by the run may alias it.
	Close()
}

// shardForceParallel routes sharded runs through the goroutine-per-
// shard barrier driver even on a single-CPU host. Tests set it (under
// -race) to prove the parallel driver produces the same bytes the
// sequential window loop does.
var shardForceParallel bool

// newExec returns the executor for the requested shard count: the
// serial engine for shards <= 1, the partitioned cluster otherwise.
// Close must be called when the run's results have been copied out.
func newExec(shards int) simExec {
	if shards > 1 {
		c := clusterPool.Get().(*shard.Cluster)
		c.Reset()
		c.ForceParallel = shardForceParallel
		e := &shardExec{Cluster: c, k: shards}
		if Observe.Live {
			// Shard snapshots are atomics-backed, so the expvar goroutine
			// may sample them mid-run without perturbing the simulation.
			e.liveKey = obs.PublishLive("cluster", func() any { return c.Snapshots() })
		}
		return e
	}
	a := getArena()
	return &serialExec{Network: a.net, a: a}
}

// serialExec adapts the pooled serial arena: one scheduler, one
// network, both endpoints of every flow in the same place.
type serialExec struct {
	*topology.Network
	a *simArena
}

func (e *serialExec) Freeze() {}

func (e *serialExec) FlowEnv(int) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network) {
	return &e.a.sched, e.a.net, &e.a.sched, e.a.net
}

func (e *serialExec) SinkEnv(...topology.LinkID) (*des.Scheduler, netsim.Network) {
	return &e.a.sched, e.a.net
}

func (e *serialExec) AttachTracers(cap int) { e.Network.Trace = obs.NewTracer(cap, 0) }

func (e *serialExec) Tracers() []*obs.Tracer { return []*obs.Tracer{e.Network.Trace} }

// RouteEnv ignores the hops: both endpoints of every flow live on the
// serial engine's one scheduler.
func (e *serialExec) RouteEnv([]topology.LinkID) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network) {
	return &e.a.sched, e.a.net, &e.a.sched, e.a.net
}

func (e *serialExec) AttachLive(flow int, sender, receiver netsim.Endpoint, fwdHops, revHops []topology.LinkID, fwdExtra, revDelay float64) {
	e.Network.AttachFlowOn(flow, sender, receiver, fwdHops, revHops, fwdExtra, revDelay)
}

// Lifecycle exposes the serial network's detach surface: churn flows
// are reclaimed and their endpoints recycled.
func (e *serialExec) Lifecycle() arrivals.Lifecycle { return e.Network }

// DeclareReverseChannel is a no-op: the serial engine has no horizon.
func (e *serialExec) DeclareReverseChannel([]topology.LinkID, float64) {}

func (e *serialExec) RunUntil(t float64) { e.a.sched.RunUntil(t) }
func (e *serialExec) Fired() uint64      { return e.a.sched.Fired() }
func (e *serialExec) Pending() int       { return e.a.sched.Pending() }
func (e *serialExec) Close()             { putArena(e.a) }

// shardExec adapts a pooled shard.Cluster. The embedded cluster
// provides the declaration surface, Link/BaseRTT/Fired/CheckLeaks;
// the methods below bridge the signature differences.
type shardExec struct {
	*shard.Cluster
	k int
	// liveKey is the cluster's registration on the live-introspection
	// surface (empty when Observe.Live is off); Close retires it.
	liveKey string
}

func (e *shardExec) Freeze() { e.Partition(e.k) }

func (e *shardExec) FlowEnv(flow int) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network) {
	snd, rcv := e.Cluster.FlowEnv(flow)
	return snd.Sched(), snd, rcv.Sched(), rcv
}

func (e *shardExec) SinkEnv(hops ...topology.LinkID) (*des.Scheduler, netsim.Network) {
	s := e.Cluster.SinkEnv(hops...)
	return s.Sched(), s
}

// RouteEnv shadows the cluster's shard-typed variant with the
// scheduler/network 4-tuple the flow builders want.
func (e *shardExec) RouteEnv(fwdHops []topology.LinkID) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network) {
	snd, rcv := e.Cluster.RouteEnv(fwdHops)
	return snd.Sched(), snd, rcv.Sched(), rcv
}

// Lifecycle returns nil: detaching a flow mid-run would be a
// cross-shard write, so on the cluster churn flows stay attached and
// every arrival builds fresh endpoints.
func (e *shardExec) Lifecycle() arrivals.Lifecycle { return nil }

func (e *shardExec) RunUntil(t float64) { e.Run(t) }

// Close recycles the cluster — unless a stall detector tripped on it: a
// poisoned cluster may still be referenced by an abandoned shard driver,
// so it is leaked rather than pooled (Reset would panic on it anyway).
func (e *shardExec) Close() {
	if e.liveKey != "" {
		obs.UnpublishLive(e.liveKey)
	}
	if e.Poisoned() {
		return
	}
	clusterPool.Put(e.Cluster)
}

// clusterPool recycles clusters like arenaPool recycles serial arenas:
// the shards' schedulers, freelists and bundle buffers survive Reset,
// so a sharded replication rebuilds in place.
var clusterPool = sync.Pool{New: func() any { return shard.New() }}
