package experiments

import "testing"

// quickScale is one scaled-down scale-out cell; the TestMain-armed
// LeakCheck verifies the freelist invariant at the end of every run.
func quickScale(hops, flows int, seed uint64) TopoSimResult {
	cfg := scaleChainBase(Sizing{SimFactor: 0.05})
	cfg.Hops = hops
	cfg.NTFRC = flows / 2
	cfg.NTCP = flows - flows/2
	cfg.Capacity *= float64(flows) / 64
	cfg.Seed = seed
	return RunTopoSim(cfg)
}

// TestScaleChainDeterministicAndLeakFree replays a many-hop, many-flow
// cell: same seed must give identical results — through the pooled
// arena, so the second run reuses the first run's scheduler wheels and
// packet pool — and every run must satisfy the leak invariant (armed in
// TestMain, enforced inside RunTopoSim).
func TestScaleChainDeterministicAndLeakFree(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out packet-level run skipped in -short mode")
	}
	t.Parallel()
	a := quickScale(12, 128, 51)
	b := quickScale(12, 128, 51)
	if a.TFRC != b.TFRC || a.TCP != b.TCP || a.Cross != b.Cross ||
		a.EventsFired != b.EventsFired {
		t.Fatalf("same seed, different scale-out results:\n%+v\n%+v", a.TFRC, b.TFRC)
	}
	if a.TFRC.Flows != 64 || a.TCP.Flows != 64 || a.Cross.Flows != 24 {
		t.Fatalf("flow counts: tfrc=%d tcp=%d cross=%d", a.TFRC.Flows, a.TCP.Flows, a.Cross.Flows)
	}
}

// TestScaleChainEventLoadGrows pins the point of the family: the
// discrete-event load must grow with both the chain length and the
// population, so the sweep genuinely pushes the scheduler's deep-queue
// regime.
func TestScaleChainEventLoadGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out packet-level sweep skipped in -short mode")
	}
	t.Parallel()
	small := quickScale(8, 64, 52)
	longer := quickScale(16, 64, 52)
	wider := quickScale(8, 256, 52)
	if longer.EventsFired <= small.EventsFired {
		t.Fatalf("events did not grow with hops: 8-hop %d vs 16-hop %d",
			small.EventsFired, longer.EventsFired)
	}
	if wider.EventsFired <= small.EventsFired {
		t.Fatalf("events did not grow with flows: 64-flow %d vs 256-flow %d",
			small.EventsFired, wider.EventsFired)
	}
}
