package experiments

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/formula"
	"repro/internal/runner"
	"repro/internal/topology"
)

// The fault scenario family probes TFRC's behavior under deterministic
// adversity — the regimes the paper's steady-state analysis assumes
// away: a bottleneck that goes dark mid-run (linkflap), a link whose
// loss arrives in bursts instead of Bernoulli singles (burstloss), and
// a reverse path renegotiated to a trickle so feedback starves
// (capdrop). Each variant runs on the dumbbell (hops=1) and on the
// scale-out chain (hops=8), and each is registered Sharded: the fault
// plans arm identically on the serial and space-parallel engines, so
// the tables are byte-identical at any shard count.

// faultBase is the shared chain sizing of the fault family: the
// parking-lot hop parameters with a larger flow population, scaled up
// when the chain is long enough to shard meaningfully.
func faultBase(sz Sizing, hops int) TopoSimConfig {
	cfg := TopoSimConfig{
		Hops:          hops,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         4,
		NTCP:          4,
		CrossPerHop:   0,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      60,
		Warmup:        10,
		RevJitter:     0.2,
	}
	if hops > 1 {
		cfg.Capacity = 2.5e6
		cfg.NTFRC, cfg.NTCP = 8, 8
		cfg.CrossPerHop = 1
	}
	if sz.SimFactor > 0 && sz.SimFactor < 1 {
		cfg.Duration *= sz.SimFactor
		cfg.Warmup *= sz.SimFactor
	}
	cfg.Shards = sz.Shards
	return cfg
}

// faultCell pairs one faulted run with the metadata columns of its row.
type faultCell struct {
	name string
	cfg  TopoSimConfig
	meta []float64
}

// faultGridPlan instantiates gridPlan for the fault family.
func faultGridPlan(t *Table, cells []faultCell,
	rows func(c faultCell, res TopoSimResult) [][]float64) ([]runner.Job, FoldFunc) {
	return gridPlan(t, cells, func(c faultCell) runner.Job { return topoJob(c.name, c.cfg) }, rows)
}

// tfrcNorm is the conservativeness figure of merit: class throughput
// over the PFTK rate at the class's own measured loss and RTT (the
// multibneck normalization), 0 when the run produced no basis.
func tfrcNorm(cls ClassStats) float64 {
	if cls.MeanRTT <= 0 {
		return 0
	}
	f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
	return cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
}

// tfrcHalvings totals the no-feedback halvings over the long TFRC flows.
func tfrcHalvings(res TopoSimResult) float64 {
	var n int64
	for _, st := range res.TFRCPerFlow {
		n += st.NoFeedbackHalvings
	}
	return float64(n)
}

// tfrcMinRate is the deepest backoff over the long TFRC flows, bytes/s.
func tfrcMinRate(res TopoSimResult) float64 {
	min := math.Inf(1)
	for _, st := range res.TFRCPerFlow {
		if st.MinRate < min {
			min = st.MinRate
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// worstRecovery is the population recovery time: the slowest flow's
// seconds from the Up edge back to its pre-outage rate threshold, or -1
// when any flow never recovered before the run ended.
func worstRecovery(res TopoSimResult) float64 {
	worst := 0.0
	for _, r := range res.Recovery {
		if r < 0 {
			return -1
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// planLinkFlap takes the mid-chain bottleneck down for a tenth of the
// run and back up, under both down-queue policies: conservativeness
// through the outage, the depth of the no-feedback backoff, and how
// long the population needs to regain its rate after the link returns.
func planLinkFlap(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "linkflap",
		Note: "mid-run bottleneck outage/recovery: TFRC backoff depth and recovery time",
		Columns: []string{"hops", "flush", "outage_s", "x_tfrc", "norm",
			"halvings", "min_rate", "recovery_s"},
	}
	var cells []faultCell
	seed := uint64(7040)
	for _, hops := range []int{1, 8} {
		for _, pol := range []fault.Policy{fault.Drain, fault.Flush} {
			seed++
			cfg := faultBase(sz, hops)
			cfg.Seed = seed
			down := cfg.Warmup + 0.35*cfg.Duration
			up := down + 0.10*cfg.Duration
			link := topology.LinkID(hops / 2)
			cfg.Faults = (&fault.Plan{Seed: seed}).Flap(link, down, up, pol)
			cfg.Watch = &RecoveryWatch{Down: down, Up: up, Frac: 0.5,
				Interval: cfg.Duration / 400}
			flush := 0.0
			if pol == fault.Flush {
				flush = 1
			}
			cells = append(cells, faultCell{
				name: fmt.Sprintf("linkflap hops=%d policy=%s", hops, pol),
				cfg:  cfg,
				meta: []float64{float64(hops), flush, up - down},
			})
		}
	}
	return faultGridPlan(t, cells, func(c faultCell, res TopoSimResult) [][]float64 {
		return [][]float64{append(c.meta,
			res.TFRC.Throughput, tfrcNorm(res.TFRC), tfrcHalvings(res),
			tfrcMinRate(res), worstRecovery(res))}
	})
}

// planBurstLoss puts a Gilbert–Elliott loss process on the first
// bottleneck: the observed fault-loss rate against the process's
// analytic stationary loss (the in-sim check of the fault package's
// property tests), and TFRC's throughput and conservativeness under
// correlated loss the loss-interval estimator was designed around.
func planBurstLoss(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "burstloss",
		Note: "Gilbert–Elliott bursty loss on the bottleneck: observed vs stationary loss, TFRC response",
		Columns: []string{"hops", "pi_loss", "obs_loss", "p_tfrc",
			"x_tfrc", "norm", "halvings"},
	}
	type geParams struct{ meanGood, meanBad, lossBad float64 }
	var cells []faultCell
	seed := uint64(7140)
	for _, hops := range []int{1, 8} {
		for _, g := range []geParams{
			{meanGood: 400, meanBad: 25, lossBad: 0.6},
			{meanGood: 150, meanBad: 50, lossBad: 0.9},
		} {
			seed++
			cfg := faultBase(sz, hops)
			cfg.Seed = seed
			cfg.Faults = (&fault.Plan{Seed: seed}).Burst(0, g.meanGood, g.meanBad, g.lossBad)
			pi := cfg.Faults.Losses[0].StationaryLoss()
			cells = append(cells, faultCell{
				name: fmt.Sprintf("burstloss hops=%d pi=%.4f", hops, pi),
				cfg:  cfg,
				meta: []float64{float64(hops), pi},
			})
		}
	}
	return faultGridPlan(t, cells, func(c faultCell, res TopoSimResult) [][]float64 {
		obs := 0.0
		if res.FaultOffered > 0 {
			obs = float64(res.FaultDrops) / float64(res.FaultOffered)
		}
		return [][]float64{append(c.meta, obs,
			res.TFRC.LossEventRate, res.TFRC.Throughput,
			tfrcNorm(res.TFRC), tfrcHalvings(res))}
	})
}

// planCapDrop renegotiates the first mirrored reverse link down to a
// trickle mid-run and back: feedback and ACKs starve behind an
// Unbounded queue (its high-water mark is the backlog depth), the TFRC
// senders halve through their no-feedback timers, and the recovery
// column measures the restart once capacity returns.
func planCapDrop(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "capdrop",
		Note: "reverse-capacity renegotiation: feedback starvation depth and recovery",
		Columns: []string{"hops", "factor", "x_tfrc", "halvings",
			"min_rate", "recovery_s", "rev_highwater"},
	}
	var cells []faultCell
	seed := uint64(7240)
	for _, hops := range []int{1, 8} {
		for _, factor := range []float64{0.02, 0.005} {
			seed++
			cfg := faultBase(sz, hops)
			cfg.Seed = seed
			cfg.MirrorRev = true
			from := cfg.Warmup + 0.30*cfg.Duration
			until := cfg.Warmup + 0.55*cfg.Duration
			rev := topology.LinkID(hops) // first link of the mirrored chain
			cfg.Faults = (&fault.Plan{Seed: seed}).Squeeze(rev, from, until,
				factor*cfg.Capacity, cfg.Capacity)
			cfg.Watch = &RecoveryWatch{Down: from, Up: until, Frac: 0.5,
				Interval: cfg.Duration / 400}
			cells = append(cells, faultCell{
				name: fmt.Sprintf("capdrop hops=%d factor=%g", hops, factor),
				cfg:  cfg,
				meta: []float64{float64(hops), factor},
			})
		}
	}
	return faultGridPlan(t, cells, func(c faultCell, res TopoSimResult) [][]float64 {
		return [][]float64{append(c.meta,
			res.TFRC.Throughput, tfrcHalvings(res), tfrcMinRate(res),
			worstRecovery(res), float64(res.UnboundedHighWater))}
	})
}

func init() {
	register(&Scenario{Name: "linkflap",
		Note:    "fault injection: mid-run bottleneck outage under drain/flush policies",
		Plan:    planLinkFlap,
		Sharded: true})
	register(&Scenario{Name: "burstloss",
		Note:    "fault injection: Gilbert–Elliott bursty loss on the bottleneck",
		Plan:    planBurstLoss,
		Sharded: true})
	register(&Scenario{Name: "capdrop",
		Note:    "fault injection: reverse-capacity renegotiation starving feedback",
		Plan:    planCapDrop,
		Sharded: true})
}

// LinkFlap, BurstLoss and CapDrop are the serial convenience wrappers
// of the fault-injection scenario family.
func LinkFlap(sz Sizing) *Table { return runPlan(planLinkFlap, sz)[0] }

// BurstLoss reproduces the bursty-loss table.
func BurstLoss(sz Sizing) *Table { return runPlan(planBurstLoss, sz)[0] }

// CapDrop reproduces the reverse-capacity renegotiation table.
func CapDrop(sz Sizing) *Table { return runPlan(planCapDrop, sz)[0] }
