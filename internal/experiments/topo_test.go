package experiments

import (
	"os"
	"testing"
)

// TestMain arms the packet-freelist leak invariant for every
// packet-level run the experiments tests perform: RunSim and RunTopoSim
// panic if a packet issued by the network's freelist is neither
// returned nor demonstrably inside the network at the end of a run.
func TestMain(m *testing.M) {
	LeakCheck = true
	os.Exit(m.Run())
}

func quickTopo(mut func(*TopoSimConfig)) TopoSimResult {
	cfg := parkingLotBase(Sizing{SimFactor: 0.2})
	cfg.Seed = 99
	if mut != nil {
		mut(&cfg)
	}
	return RunTopoSim(cfg)
}

func TestTopoSimDegeneratesToDumbbell(t *testing.T) {
	t.Parallel()
	// One hop, no cross traffic: the long flows share a single
	// bottleneck and must fill most of it (1250 pkt/s capacity).
	res := quickTopo(nil)
	total := res.TFRC.Throughput*float64(res.TFRC.Flows) +
		res.TCP.Throughput*float64(res.TCP.Flows)
	if total < 900 || total > 1400 {
		t.Fatalf("aggregate long-flow throughput = %v pkts/s, want near 1250", total)
	}
	if res.TFRC.Events == 0 || res.TCP.Events == 0 {
		t.Fatal("no loss events on a saturated bottleneck")
	}
}

func TestTopoSimMoreHopsMoreLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hop packet-level sweep skipped in -short mode")
	}
	t.Parallel()
	// A long flow crossing three congested hops must see a loss-event
	// rate at least as large as across one congested hop, and less
	// throughput: each extra bottleneck adds an independent drop point.
	one := quickTopo(func(c *TopoSimConfig) { c.Hops = 1; c.CrossPerHop = 2; c.Seed = 7 })
	three := quickTopo(func(c *TopoSimConfig) { c.Hops = 3; c.CrossPerHop = 2; c.Seed = 7 })
	if three.TFRC.Throughput >= one.TFRC.Throughput {
		t.Fatalf("long-flow throughput did not degrade with hops: 1-hop %v vs 3-hop %v",
			one.TFRC.Throughput, three.TFRC.Throughput)
	}
	if three.Cross.Flows != 6 || one.Cross.Flows != 2 {
		t.Fatalf("cross flow counts: %d and %d", one.Cross.Flows, three.Cross.Flows)
	}
}

func TestTopoSimHeterogeneousRTTOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneous-RTT packet-level run skipped in -short mode")
	}
	t.Parallel()
	res := quickTopo(func(c *TopoSimConfig) {
		c.NTFRC = 3
		c.NTCP = 3
		c.RTTSpread = 3
		c.Duration *= 3
	})
	if len(res.BaseRTT) != 3 {
		t.Fatalf("base RTTs = %v", res.BaseRTT)
	}
	if !(res.BaseRTT[0] < res.BaseRTT[1] && res.BaseRTT[1] < res.BaseRTT[2]) {
		t.Fatalf("base RTTs not spread: %v", res.BaseRTT)
	}
	// The shortest-RTT TFRC flow should out-throughput the longest-RTT
	// one (both protocols are RTT-biased).
	if res.TFRCPerFlow[0].Throughput <= res.TFRCPerFlow[2].Throughput {
		t.Fatalf("short-RTT TFRC flow (%v) below long-RTT flow (%v)",
			res.TFRCPerFlow[0].Throughput, res.TFRCPerFlow[2].Throughput)
	}
}

func TestTopoSimDeterministicInSeed(t *testing.T) {
	t.Parallel()
	a := quickTopo(func(c *TopoSimConfig) { c.Hops = 2; c.CrossPerHop = 1 })
	b := quickTopo(func(c *TopoSimConfig) { c.Hops = 2; c.CrossPerHop = 1 })
	if a.TFRC != b.TFRC || a.TCP != b.TCP || a.Cross != b.Cross ||
		a.EventsFired != b.EventsFired {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a.TFRC, b.TFRC)
	}
}

func TestTopoSimPanics(t *testing.T) {
	t.Parallel()
	cases := []func(*TopoSimConfig){
		func(c *TopoSimConfig) { c.Hops = 0 },
		func(c *TopoSimConfig) { c.Capacity = 0 },
		func(c *TopoSimConfig) { c.Buffer = 0 },
		func(c *TopoSimConfig) { c.Duration = 0 },
		func(c *TopoSimConfig) { c.L = 0 },
		func(c *TopoSimConfig) { c.NTFRC, c.NTCP = 0, 0 },
	}
	for i, mut := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			quickTopo(mut)
		}()
	}
}
