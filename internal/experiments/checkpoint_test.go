package experiments

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/topology"
)

// withCheckpoint runs fn with the process-wide checkpoint and observe
// options swapped in, restoring both afterwards. The checkpoint tests
// are deliberately NOT parallel: they mutate package globals, and the
// testing package guarantees sequential tests never overlap paused
// parallel ones.
func withCheckpoint(t *testing.T, ck CheckpointOptions, obs ObserveOptions, fn func()) {
	t.Helper()
	oldCk, oldObs := Checkpoint, Observe
	Checkpoint, Observe = ck, obs
	defer func() { Checkpoint, Observe = oldCk, oldObs }()
	fn()
}

// The tentpole contract: a run that snapshots along the way emits the
// same bytes as one that never does, and a run resumed from any of
// those snapshots finishes on the identical trajectory — across the
// serial arena, the sharded executor, and with metrics plus epoch
// logging on. The TestMain leak check is armed, so every resumed run
// also proves the freelist ledger survives the restore boundary.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level checkpoint runs skipped in -short mode")
	}
	sz := Sizing{Events: 2000, SimFactor: 0.04, Pairs: []int{1}, PairsCap: 1}
	cases := []struct {
		name     string
		scenario string
		shards   int
		obs      ObserveOptions
	}{
		{"serial", "parkinglot", 0, ObserveOptions{}},
		{"shards2", "parkinglot", 2, ObserveOptions{}},
		{"shards4", "parkinglot", 4, ObserveOptions{}},
		{"metrics-epochs", "parkinglot", 0, ObserveOptions{Metrics: true, Epochs: 4}},
		{"shards2-metrics-epochs", "parkinglot", 2, ObserveOptions{Metrics: true, Epochs: 4}},
		{"faults-watch", "linkflap", 0, ObserveOptions{}},
		{"churn", "surge", 0, ObserveOptions{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			szk := sz
			szk.Shards = tc.shards
			dir := t.TempDir()
			var base, snap, res []byte
			withCheckpoint(t, CheckpointOptions{}, tc.obs, func() {
				base = renderAll(t, tc.scenario, szk, runner.Serial{})
			})
			withCheckpoint(t, CheckpointOptions{Every: 2, Dir: dir}, tc.obs, func() {
				snap = renderAll(t, tc.scenario, szk, runner.Serial{})
			})
			withCheckpoint(t, CheckpointOptions{Resume: dir}, tc.obs, func() {
				res = renderAll(t, tc.scenario, szk, runner.Serial{})
			})
			if len(base) == 0 {
				t.Fatal("empty baseline output")
			}
			if !bytes.Equal(base, snap) {
				t.Fatalf("snapshotting changed the trajectory\nbase:\n%s\nckpt:\n%s", base, snap)
			}
			if !bytes.Equal(base, res) {
				t.Fatalf("resumed run differs from uninterrupted\nbase:\n%s\nresume:\n%s", base, res)
			}
		})
	}
}

// A resume pointed at a directory with no snapshot for the job degrades
// to a from-scratch run with identical output — the self-healing pool
// relies on this when a job dies before its first save.
func TestCheckpointResumeMissingSnapshotRunsScratch(t *testing.T) {
	cfg := parkingLotBase(Sizing{SimFactor: 0.02})
	cfg.Seed = 31
	cfg.Label = "scratch"
	base := RunTopoSim(cfg)
	cfg.Resume = t.TempDir()
	res := RunTopoSim(cfg)
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("scratch-degraded resume differs:\n%+v\n%+v", base.TFRC, res.TFRC)
	}
}

// Resuming under any config that disagrees with the snapshot's must
// fail loudly, naming both digests, before any simulation runs.
func TestCheckpointDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := parkingLotBase(Sizing{SimFactor: 0.02})
	cfg.Seed = 17
	cfg.Label = "digest"
	withCheckpoint(t, CheckpointOptions{Every: 1, Dir: dir}, ObserveOptions{}, func() {
		RunTopoSim(cfg)
	})
	snapDigest := configDigest(&cfg, 1, 0)

	cases := []struct {
		name string
		mut  func(*TopoSimConfig)
	}{
		{"seed", func(c *TopoSimConfig) { c.Seed++ }},
		{"hops", func(c *TopoSimConfig) { c.Hops++ }},
		{"duration", func(c *TopoSimConfig) { c.Duration *= 2 }},
		{"flows", func(c *TopoSimConfig) { c.NTFRC++ }},
		{"capacity", func(c *TopoSimConfig) { c.Capacity *= 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := cfg
			tc.mut(&bad)
			bad.Resume = dir
			runDigest := configDigest(&bad, 1, 0)
			if runDigest == snapDigest {
				t.Fatal("mutation did not change the config digest")
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("mismatched resume did not panic")
				}
				msg := fmt.Sprint(r)
				for _, want := range []string{
					"config digest mismatch",
					fmt.Sprintf("%016x", snapDigest),
					fmt.Sprintf("%016x", runDigest),
				} {
					if !strings.Contains(msg, want) {
						t.Fatalf("diagnostic %q missing %q", msg, want)
					}
				}
			}()
			RunTopoSim(bad)
		})
	}
}

// The self-healing loop end to end: a job that crashes after its
// checkpoints are written is retried by the hardened pool, resumes from
// its own snapshot, and delivers the same result as a run that never
// failed — with the retry visible in the pool snapshot.
func TestRetriedJobResumesToSameResult(t *testing.T) {
	cfg := parkingLotBase(Sizing{SimFactor: 0.02})
	cfg.Seed = 23

	plain := cfg
	plain.Label = "retry"
	want := RunTopoSim(plain)

	withCheckpoint(t, CheckpointOptions{Every: 2, Dir: t.TempDir()}, ObserveOptions{}, func() {
		job := topoJob("retry", cfg)
		inner := job.Run
		job.Run = func(ctx context.Context) any {
			v := inner(ctx)
			if runner.Attempt(ctx) == 1 {
				panic("injected crash after checkpointing")
			}
			return v
		}
		p := &runner.Pool{Workers: 1, Retries: 1, RetryBase: time.Millisecond}
		results, err := p.Execute(context.Background(), []runner.Job{job})
		if err != nil {
			t.Fatalf("retried job still failed: %v", err)
		}
		got, ok := results[0].(TopoSimResult)
		if !ok {
			t.Fatalf("result = %T", results[0])
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("retried result differs from never-failed run:\n%+v\n%+v", want.TFRC, got.TFRC)
		}
		if snap := p.Snapshot(); snap.Retries != 1 {
			t.Fatalf("pool snapshot retries = %d, want 1", snap.Retries)
		}
	})
}

// fakeObsEngine exposes a hand-built link set to the observability
// sampler.
type fakeObsEngine struct{ links []*netsim.Link }

func (f fakeObsEngine) Links() int                           { return len(f.links) }
func (f fakeObsEngine) Link(id topology.LinkID) *netsim.Link { return f.links[id] }
func (f fakeObsEngine) Fired() uint64                        { return 0 }
func (f fakeObsEngine) Pending() int                         { return 0 }
func (f fakeObsEngine) Outstanding() int64                   { return 0 }

// The barrier-aligned Unbounded depth samples must be monotone: the
// high-water series never decreases (it is a cumulative maximum) and
// the headroom series never increases, with each pair summing to the
// effective hard cap.
func TestUnboundedSamplesMonotone(t *testing.T) {
	var sched des.Scheduler
	u := netsim.NewUnbounded()
	l := netsim.NewLink(&sched, 1e6, 0.01, u)
	o := &obsRun{eng: fakeObsEngine{links: []*netsim.Link{l}}, epochs: 4}
	for _, hw := range []int{0, 3, 7, 7, 12} {
		u.HighWater = hw
		o.sampleUnbounded()
	}
	if len(o.uhw) != 5 || len(o.headroom) != 5 {
		t.Fatalf("sample counts = %d, %d, want 5 each", len(o.uhw), len(o.headroom))
	}
	for i := range o.uhw {
		if i > 0 && o.uhw[i] < o.uhw[i-1] {
			t.Fatalf("high-water samples decreased: %v", o.uhw)
		}
		if i > 0 && o.headroom[i] > o.headroom[i-1] {
			t.Fatalf("headroom samples increased: %v", o.headroom)
		}
		if o.uhw[i]+o.headroom[i] != netsim.DefaultUnboundedCap {
			t.Fatalf("sample %d: hw %v + headroom %v != cap %d",
				i, o.uhw[i], o.headroom[i], netsim.DefaultUnboundedCap)
		}
	}
}
