package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// A hardened pool (JobDeadline set) must degrade, not crash: with an
// impossible deadline every job is abandoned, yet Scenario.Run still
// folds the (empty) tables and surfaces the failures as a
// *runner.Manifest naming each job's index and seed.
func TestHardenedPoolPartialFold(t *testing.T) {
	sz := Sizing{Events: 500, SimFactor: 0.02, Pairs: []int{1}, PairsCap: 1}
	s, ok := Lookup("multibneck")
	if !ok {
		t.Fatal("multibneck not registered")
	}
	pool := &runner.Pool{Workers: 2, JobDeadline: time.Nanosecond}
	tables, err := s.Run(context.Background(), sz, pool)
	if err == nil {
		t.Fatal("1ns deadline should fail every job")
	}
	var m *runner.Manifest
	if !errors.As(err, &m) {
		t.Fatalf("error is not a manifest: %v", err)
	}
	jobs, _ := s.Plan(sz)
	if m.Total != len(jobs) || len(m.Failed) != len(jobs) {
		t.Fatalf("manifest %d/%d failed, want %d/%d", len(m.Failed), m.Total, len(jobs), len(jobs))
	}
	if m.Failed[0].Seed == 0 || !strings.Contains(m.Failed[0].Err.Error(), "watchdog") {
		t.Fatalf("manifest entry lacks seed or watchdog cause: %+v", m.Failed[0])
	}
	if len(tables) != 1 || len(tables[0].Rows) != 0 {
		t.Fatalf("partial fold should yield the empty table, got %+v", tables)
	}
	// Give the abandoned job goroutines (tiny sims) time to drain before
	// the test binary exits.
	time.Sleep(200 * time.Millisecond)
}

// With a generous deadline the hardened pool is invisible: byte-
// identical tables, no error.
func TestHardenedPoolQuietOnHealthyRun(t *testing.T) {
	sz := Sizing{Events: 500, SimFactor: 0.02, Pairs: []int{1}, PairsCap: 1}
	serial := renderAll(t, "multibneck", sz, runner.Serial{})
	hardened := renderAll(t, "multibneck", sz, &runner.Pool{Workers: 2, JobDeadline: 10 * time.Minute})
	if !bytes.Equal(serial, hardened) {
		t.Fatalf("hardened pool output differs from serial\nserial:\n%s\nhardened:\n%s", serial, hardened)
	}
}
