package experiments

import (
	"context"
	"sort"

	"repro/internal/runner"
)

// FoldFunc assembles a scenario's output tables from its job results.
// Results arrive in the same order the jobs were expanded, regardless
// of the execution schedule, so folding is deterministic.
type FoldFunc func(results []any) []*Table

// PlanFunc expands a scenario under a sizing into independent runner
// jobs plus the fold that assembles the tables.
type PlanFunc func(sz Sizing) ([]runner.Job, FoldFunc)

// Scenario declaratively describes one experiment of the paper's
// evaluation section: a name (the CLI handle), a note, and a plan that
// expands into jobs. Every job is self-contained — it captures its own
// SimConfig (or Monte Carlo config) and deterministic seed — so a
// scenario produces byte-identical tables whether its jobs run
// serially or on a worker pool.
type Scenario struct {
	// Name is the registry key ("fig5", "claim4", ...).
	Name string
	// Note is a one-line description for listings.
	Note string
	// Plan expands the scenario into jobs and a fold.
	Plan PlanFunc
	// Sharded marks scenarios whose simulations honor Sizing.Shards by
	// running on the space-parallel sharded engine (the multi-hop,
	// routed-reverse and scale-out families). Listings report it as an
	// available executor mode.
	Sharded bool
}

// Modes returns the executor modes the scenario supports, for listings:
// every scenario runs serially and on the job-level worker pool; the
// Sharded ones additionally split each simulation across shards.
func (s *Scenario) Modes() string {
	if s.Sharded {
		return "serial,parallel,sharded"
	}
	return "serial,parallel"
}

// Run expands the scenario under sz and executes its jobs on ex,
// returning the assembled tables. Under a hardened executor (a
// runner.Pool with a JobDeadline) a partial failure still folds: the
// surviving results become tables — every fold skips nil slots — and
// the *runner.Manifest comes back alongside them, so callers can render
// what completed and report exactly which (index, seed) jobs died.
func (s *Scenario) Run(ctx context.Context, sz Sizing, ex runner.Executor) ([]*Table, error) {
	tables, _, err := s.RunObserved(ctx, sz, ex)
	return tables, err
}

// registry maps scenario names to their definitions. It is populated
// at init time by figures.go and immutable afterwards.
var registry = map[string]*Scenario{}

func register(s *Scenario) {
	if _, dup := registry[s.Name]; dup {
		panic("experiments: duplicate scenario " + s.Name)
	}
	registry[s.Name] = s
}

// Lookup returns the named scenario.
func Lookup(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Scenarios returns every registered scenario sorted by name.
func Scenarios() []*Scenario {
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the sorted registry keys.
func ScenarioNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runPlan executes a plan serially; the compatibility wrappers
// (Fig1 ... Claim4) are built on it. Serial execution of deterministic
// jobs can only fail through a job panic, which is re-raised.
func runPlan(p PlanFunc, sz Sizing) []*Table {
	jobs, fold := p(sz)
	results, err := runner.Serial{}.Execute(context.Background(), jobs)
	if err != nil {
		panic(err)
	}
	return fold(results)
}

// combinePlans concatenates several plans into one: the jobs run as a
// single batch and each sub-plan folds its own slice of the results.
func combinePlans(plans ...PlanFunc) PlanFunc {
	return func(sz Sizing) ([]runner.Job, FoldFunc) {
		var jobs []runner.Job
		folds := make([]FoldFunc, len(plans))
		lens := make([]int, len(plans))
		for i, p := range plans {
			j, f := p(sz)
			jobs = append(jobs, j...)
			folds[i] = f
			lens[i] = len(j)
		}
		fold := func(results []any) []*Table {
			var out []*Table
			off := 0
			for i, f := range folds {
				out = append(out, f(results[off:off+lens[i]])...)
				off += lens[i]
			}
			return out
		}
		return jobs, fold
	}
}

// tablePlan wraps a whole-table builder as a single-job plan, for the
// cheap analytic figures that do not benefit from splitting.
func tablePlan(name string, build func(sz Sizing) *Table) PlanFunc {
	return func(sz Sizing) ([]runner.Job, FoldFunc) {
		jobs := []runner.Job{{
			Name: name,
			Run:  func(context.Context) any { return build(sz) },
		}}
		fold := func(results []any) []*Table {
			tb, _ := results[0].(*Table)
			if tb == nil {
				// The single job died under a hardened executor: no table.
				return nil
			}
			return []*Table{tb}
		}
		return jobs, fold
	}
}

// simJob wraps one packet-level dumbbell run as a runner job.
func simJob(name string, cfg SimConfig) runner.Job {
	return runner.Job{
		Name: name,
		Seed: cfg.Seed,
		Run:  func(context.Context) any { return RunSim(cfg) },
	}
}

// simCell pairs one dumbbell run with the sweep metadata its table
// rows need.
type simCell struct {
	name       string
	cfg        SimConfig
	profile, L int
	pairs      int
}

// gridPlan is the shared shape of the packet-level figures: one job per
// sweep cell, each completed run folded into zero or more rows of t.
func gridPlan[C, R any](t *Table, cells []C, job func(c C) runner.Job,
	rows func(c C, res R) [][]float64) ([]runner.Job, FoldFunc) {
	jobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		jobs[i] = job(c)
	}
	fold := func(results []any) []*Table {
		for i, r := range results {
			if r == nil {
				// The cell's job died under a hardened executor (see
				// runner.Manifest): its rows are absent, the rest fold.
				continue
			}
			for _, row := range rows(cells[i], r.(R)) {
				t.AddRow(row...)
			}
		}
		return []*Table{t}
	}
	return jobs, fold
}

// simGridPlan instantiates gridPlan for dumbbell sweeps.
func simGridPlan(t *Table, cells []simCell,
	rows func(c simCell, res SimResult) [][]float64) ([]runner.Job, FoldFunc) {
	return gridPlan(t, cells, func(c simCell) runner.Job { return simJob(c.name, c.cfg) }, rows)
}
