package experiments

import "testing"

func quickRev(mut func(*RevSimConfig)) RevSimResult {
	cfg := reverseBase(Sizing{SimFactor: 0.2})
	cfg.Seed = 77
	if mut != nil {
		mut(&cfg)
	}
	return RunRevSim(cfg)
}

// With an uncongested routed reverse path the bidirectional dumbbell
// behaves like the plain one: the primary flows fill the forward
// bottleneck and no reverse packet is ever dropped.
func TestRevSimUncongestedReverseMatchesDumbbell(t *testing.T) {
	t.Parallel()
	res := quickRev(nil)
	total := res.TFRC.Throughput*float64(res.TFRC.Flows) +
		res.TCP.Throughput*float64(res.TCP.Flows)
	if total < 900 || total > 1400 {
		t.Fatalf("aggregate primary throughput = %v pkts/s, want near 1250", total)
	}
	if res.RevDrops != 0 {
		t.Fatalf("uncongested reverse path dropped %d packets", res.RevDrops)
	}
	if res.AcksPerPacket < 0.4 || res.AcksPerPacket > 0.6 {
		t.Fatalf("acks per packet = %v, want near 1/b = 0.5", res.AcksPerPacket)
	}
	// Base RTT: 10 (fwd) + 5 (access) + 5 (rev hop) + 20 (rev extra) ms.
	if res.BaseRTT < 0.0399 || res.BaseRTT > 0.0401 {
		t.Fatalf("base rtt = %v, want 0.040", res.BaseRTT)
	}
}

// Saturating a tight reverse bottleneck with cross traffic must drop
// feedback and ACKs; TCP's ack clock degrades with them.
func TestRevSimReverseCongestionDropsFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level reverse congestion run skipped in -short mode")
	}
	t.Parallel()
	narrow := func(c *RevSimConfig) { c.RevCapacities = []float64{c.Capacity / 20} }
	clean := quickRev(narrow)
	loaded := quickRev(func(c *RevSimConfig) {
		narrow(c)
		c.RevCrossLoad = 1.2
	})
	if loaded.RevDrops == 0 {
		t.Fatal("saturated reverse bottleneck dropped nothing")
	}
	if loaded.RevDropRate <= clean.RevDropRate {
		t.Fatalf("reverse drop rate did not rise: %v vs %v",
			loaded.RevDropRate, clean.RevDropRate)
	}
	if loaded.AcksPerPacket >= clean.AcksPerPacket {
		t.Fatalf("ack loss not visible: %v acks/pkt loaded vs %v clean",
			loaded.AcksPerPacket, clean.AcksPerPacket)
	}
}

// Opposing-direction data must congest the shared reverse queue: the
// reverse path starts dropping and the back class carries real load.
func TestRevSimBackTrafficCongestsAckPath(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level two-way traffic run skipped in -short mode")
	}
	t.Parallel()
	res := quickRev(func(c *RevSimConfig) { c.BackTCP = 4 })
	if res.Back.Flows != 4 || res.Back.Throughput <= 0 {
		t.Fatalf("back class missing: %+v", res.Back)
	}
	if res.RevDrops == 0 {
		t.Fatal("4 back TCP flows left the reverse queue uncongested")
	}
}

func TestRevSimDeterministicInSeed(t *testing.T) {
	t.Parallel()
	mut := func(c *RevSimConfig) {
		c.BackTCP = 1
		c.RevCrossLoad = 0.5
		c.RevCapacities = []float64{c.Capacity / 10, c.Capacity / 4}
	}
	a := quickRev(mut)
	b := quickRev(mut)
	if a.TFRC != b.TFRC || a.TCP != b.TCP || a.Back != b.Back ||
		a.RevDrops != b.RevDrops || a.EventsFired != b.EventsFired {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestRevSimPanics(t *testing.T) {
	t.Parallel()
	cases := []func(*RevSimConfig){
		func(c *RevSimConfig) { c.Capacity = 0 },
		func(c *RevSimConfig) { c.Buffer = 0 },
		func(c *RevSimConfig) { c.RevBuffer = 0 },
		func(c *RevSimConfig) { c.RevCapacities = nil },
		func(c *RevSimConfig) { c.RevCapacities = []float64{0} },
		func(c *RevSimConfig) { c.Duration = 0 },
		func(c *RevSimConfig) { c.L = 0 },
		func(c *RevSimConfig) { c.NTFRC, c.NTCP = 0, 0 },
		func(c *RevSimConfig) { c.BackTCP = -1 },
		func(c *RevSimConfig) { c.RevCrossLoad = -0.1 },
	}
	for i, mut := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			quickRev(mut)
		}()
	}
}
