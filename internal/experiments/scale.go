package experiments

import (
	"fmt"

	"repro/internal/runner"
)

// scaleChainBase is the shared sizing of the scale-out scenario family:
// a many-hop chain of 5 ms bottleneck hops whose per-hop capacity grows
// with the flow population (19.5 kB/s per long flow, the share a
// 64-flow population has of a 10 Mb/s hop), so adding flows scales the
// event rate instead of starving every flow. Runs are shorter than the
// dumbbell sweeps — the population, not the horizon, is the point.
func scaleChainBase(sz Sizing) TopoSimConfig {
	cfg := TopoSimConfig{
		Hops:          8,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.005,
		AccessDelay:   0.005,
		RevDelay:      0.03,
		NTFRC:         32,
		NTCP:          32,
		CrossPerHop:   2,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      60,
		Warmup:        10,
		RevJitter:     0.2,
	}
	if sz.SimFactor > 0 && sz.SimFactor < 1 {
		cfg.Duration *= sz.SimFactor
		cfg.Warmup *= sz.SimFactor
	}
	cfg.Shards = sz.Shards
	return cfg
}

// planScaleChain is the scale-out sweep the ROADMAP's many-hop item
// calls for: 8/12/16-hop chains under 64-512 long TFRC+TCP flows with
// crossing TCP per hop — the regime where the pending-event set grows
// into the thousands and event scheduling, not protocol logic, decides
// simulated scale. The physical columns check that TFRC stays
// TCP-friendly as hops and population grow; the events column records
// the discrete-event load the run put on the scheduler (deterministic,
// like everything else in the row).
func planScaleChain(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "scalechain",
		Note: "scale-out chains: 64-512 long TFRC/TCP flows over 8-16 bottleneck hops",
		Columns: []string{"hops", "flows", "p_tfrc", "p_tcp",
			"x_tfrc", "x_tcp", "ratio", "x_cross", "events"},
	}
	var cells []topoCell
	seed := uint64(4040)
	for _, hops := range []int{8, 12, 16} {
		for _, flows := range []int{64, 256, 512} {
			seed++
			cfg := scaleChainBase(sz)
			cfg.Hops = hops
			cfg.NTFRC = flows / 2
			cfg.NTCP = flows - flows/2
			// Per-hop capacity tracks the population so each long flow
			// keeps the same nominal share at every sweep point.
			cfg.Capacity *= float64(flows) / 64
			cfg.Seed = seed
			cells = append(cells, topoCell{
				name: fmt.Sprintf("scalechain hops=%d flows=%d", hops, flows),
				cfg:  cfg, hops: hops, L: cfg.L,
			})
		}
	}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		if res.TCP.Throughput <= 0 {
			return nil
		}
		return [][]float64{{float64(c.hops), float64(c.cfg.NTFRC + c.cfg.NTCP),
			res.TFRC.LossEventRate, res.TCP.LossEventRate,
			res.TFRC.Throughput, res.TCP.Throughput,
			res.TFRC.Throughput / res.TCP.Throughput,
			res.Cross.Throughput, float64(res.EventsFired)}}
	})
}

func init() {
	register(&Scenario{Name: "scalechain",
		Note:    "scale-out chains: 8-16 hops under 64-512 long flows plus per-hop cross traffic",
		Plan:    planScaleChain,
		Sharded: true})
}

// ScaleChain is the serial convenience wrapper of the scale-out sweep.
func ScaleChain(sz Sizing) *Table { return runPlan(planScaleChain, sz)[0] }
