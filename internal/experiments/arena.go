package experiments

import (
	"sync"

	"repro/internal/des"
	"repro/internal/topology"
)

// simArena bundles the per-run simulation state that is expensive to
// rebuild from scratch: the scheduler (wheel buckets, slot table,
// freelist) and the network shell (packet pool, delivery pool,
// flow-state pool). RunSim, RunTopoSim and RunRevSim draw an arena,
// Reset it, build the run's topology in place, and return it — so a
// replication pays for its protocol state only, not for the simulator
// substrate. Under the runner's worker pool the arenas are recycled
// per worker (sync.Pool is per-P), which is exactly the "rebuild in
// place across replications" pattern the scale-out sweeps need.
//
// Reuse is invisible to results: the scheduler and network Resets
// restore the exact zero-value semantics (clock 0, empty graph, fresh
// counters), every packet is zeroed on Get, and event order depends
// only on (time, seq) — so a run on a tenth-hand arena is byte-for-byte
// the run it would be on a fresh one. The determinism regression tests
// pin this.
type simArena struct {
	sched des.Scheduler
	net   *topology.Network
}

var arenaPool = sync.Pool{New: func() any {
	a := &simArena{}
	a.net = topology.New(&a.sched)
	return a
}}

// getArena returns a reset arena ready to host one run.
func getArena() *simArena {
	a := arenaPool.Get().(*simArena)
	a.sched.Reset()
	a.net.Reset()
	return a
}

// putArena recycles the arena once the run's results have been copied
// out. Nothing returned by a Run* function may alias arena memory.
func putArena(a *simArena) { arenaPool.Put(a) }
