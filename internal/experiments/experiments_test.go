package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/tfrc"
)

// tiny is an even smaller sizing than Quick, for unit tests.
var tiny = Sizing{Events: 6000, SimFactor: 0.08, Pairs: []int{1, 4}, PairsCap: 2}

func TestTableBasics(t *testing.T) {
	t.Parallel()
	tb := &Table{Name: "t", Note: "n", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2)
	tb.AddRow(3, 4)
	var buf bytes.Buffer
	if err := tb.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# t: n") || !strings.Contains(out, "a\tb") ||
		!strings.Contains(out, "3\t4") {
		t.Fatalf("tsv output:\n%s", out)
	}
	col := tb.Column("b")
	if len(col) != 2 || col[0] != 2 || col[1] != 4 {
		t.Fatalf("column = %v", col)
	}
}

func TestTablePanics(t *testing.T) {
	t.Parallel()
	tb := &Table{Name: "t", Columns: []string{"a"}}
	for i, fn := range []func(){
		func() { tb.AddRow(1, 2) },
		func() { tb.Column("zzz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFig1ShapesMatchPaper(t *testing.T) {
	t.Parallel()
	tb := Fig1()
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	// f(1/x) increases with x (rarer loss, higher rate); g decreases.
	fcol := tb.Column("sqrt_f")
	gcol := tb.Column("sqrt_g")
	for i := 1; i < len(fcol); i++ {
		if fcol[i] <= fcol[i-1] {
			t.Fatal("f(1/x) should increase with x")
		}
		if gcol[i] >= gcol[i-1] {
			t.Fatal("g should decrease with x")
		}
	}
	// PFTK curves lie below SQRT (extra timeout term).
	pf := tb.Column("pftkstd_f")
	for i := range pf {
		if pf[i] > fcol[i]+1e-12 {
			t.Fatal("PFTK rate should not exceed SQRT")
		}
	}
}

func TestFig2ReproducesDeviationBound(t *testing.T) {
	t.Parallel()
	tb := Fig2()
	ratios := tb.Column("ratio")
	maxRatio := 0.0
	for _, r := range ratios {
		// The closure is sampled on a 20000-point grid; interpolation at
		// off-grid x carries ~1e-6 relative error.
		if r < 1-1e-5 {
			t.Fatalf("g below its convex closure: %v", r)
		}
		if r > maxRatio {
			maxRatio = r
		}
	}
	if maxRatio < 1.002 || maxRatio > 1.003 {
		t.Fatalf("peak ratio = %v, want ~1.0026", maxRatio)
	}
	sum := Fig2Summary()
	if len(sum.Rows) != 2 {
		t.Fatal("summary should cover b=1 and b=2")
	}
	if r := sum.Rows[0][1]; r < 1.002 || r > 1.003 {
		t.Fatalf("b=1 ratio = %v", r)
	}
	if x := sum.Rows[0][2]; math.Abs(x-3.375) > 0.05 {
		t.Fatalf("b=1 argmax = %v", x)
	}
}

func TestFig3PFTKShape(t *testing.T) {
	t.Parallel()
	tb := Fig3(tfrc.PFTKSimplified, tiny)
	ps := tb.Column("p")
	l8 := tb.Column("L8")
	l1 := tb.Column("L1")
	// Normalized throughput decreases with p for PFTK (throughput drop).
	first, last := l8[0], l8[len(l8)-1]
	if last >= first {
		t.Fatalf("L8 normalized did not drop with p: %v -> %v", first, last)
	}
	// L1 is more conservative than L8 at high p.
	if l1[len(l1)-1] >= l8[len(l8)-1] {
		t.Fatalf("L1 (%v) should be below L8 (%v) at p=%v",
			l1[len(l1)-1], l8[len(l8)-1], ps[len(ps)-1])
	}
	// All conservative.
	for i := range ps {
		if l8[i] > 1.02 {
			t.Fatalf("non-conservative at p=%v: %v", ps[i], l8[i])
		}
	}
}

func TestFig3SQRTFlat(t *testing.T) {
	t.Parallel()
	tb := Fig3(tfrc.SQRT, tiny)
	l4 := tb.Column("L4")
	lo, hi := l4[0], l4[0]
	for _, v := range l4 {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 0.05 {
		t.Fatalf("SQRT normalized should be ~invariant in p: spread %v", hi-lo)
	}
}

func TestFig3ComprehensiveLessPronounced(t *testing.T) {
	if testing.Short() {
		t.Skip("slow comprehensive Monte Carlo sweep skipped in -short mode")
	}
	t.Parallel()
	basic := Fig3(tfrc.PFTKSimplified, tiny)
	comp := Fig3Comprehensive(tiny)
	// Compare at the shared highest p (0.4): comprehensive is less
	// conservative.
	b := basic.Rows[len(basic.Rows)-1]
	c := comp.Rows[len(comp.Rows)-1]
	if b[0] != c[0] {
		t.Fatalf("p mismatch: %v vs %v", b[0], c[0])
	}
	// Column order: p, L1..L16; compare L8 (index 4).
	if c[4] < b[4] {
		t.Fatalf("comprehensive (%v) below basic (%v)", c[4], b[4])
	}
}

func TestFig4CVShape(t *testing.T) {
	t.Parallel()
	tb := Fig4(0.1, tiny)
	l8 := tb.Column("L8")
	if l8[len(l8)-1] >= l8[0] {
		t.Fatalf("normalized should drop with cv: %v -> %v", l8[0], l8[len(l8)-1])
	}
	if l8[0] < 0.95 {
		t.Fatalf("low-cv normalized = %v, want near 1", l8[0])
	}
}

func TestFig4Panics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad p")
		}
	}()
	Fig4(0, tiny)
}

func TestFig6Claim2(t *testing.T) {
	t.Parallel()
	tb := Fig6(tiny)
	ps := tb.Column("p")
	sqrtN := tb.Column("sqrt_norm")
	pftkN := tb.Column("pftksimp_norm")
	for i, p := range ps {
		if sqrtN[i] > 1.01 {
			t.Fatalf("SQRT audio non-conservative at p=%v: %v", p, sqrtN[i])
		}
	}
	// PFTK at the heaviest loss is non-conservative.
	if pftkN[len(pftkN)-1] <= 1 {
		t.Fatalf("PFTK audio at p=%v should exceed 1: %v",
			ps[len(ps)-1], pftkN[len(pftkN)-1])
	}
	// And conservative at the lightest.
	if pftkN[0] > 1.01 {
		t.Fatalf("PFTK audio at p=%v should be <= 1: %v", ps[0], pftkN[0])
	}
}

func TestRunSimBasics(t *testing.T) {
	t.Parallel()
	pr := NS2Profile().Scale(0.08, 0)
	res := RunSim(pr.Config(2, 8, 99))
	if res.TFRC.Throughput <= 0 || res.TCP.Throughput <= 0 {
		t.Fatalf("starved classes: %+v", res)
	}
	if res.TFRC.Flows != 2 || res.TCP.Flows != 2 {
		t.Fatalf("flow counts: %+v", res)
	}
	if len(res.TCPPerFlow) != 2 || len(res.TFRCPerFlow) != 2 {
		t.Fatal("per-flow stats missing")
	}
	// Aggregate utilization below capacity.
	total := (res.TFRC.Throughput + res.TCP.Throughput) * 2
	if total > pr.Capacity/1000*1.05 {
		t.Fatalf("throughput above capacity: %v", total)
	}
}

func TestRunSimDeterminism(t *testing.T) {
	t.Parallel()
	pr := NS2Profile().Scale(0.05, 0)
	a := RunSim(pr.Config(1, 8, 123))
	b := RunSim(pr.Config(1, 8, 123))
	if a.TFRC.Throughput != b.TFRC.Throughput || a.TCP.LossEventRate != b.TCP.LossEventRate {
		t.Fatal("same seed produced different results")
	}
	c := RunSim(pr.Config(1, 8, 124))
	if a.TFRC.Throughput == c.TFRC.Throughput {
		t.Fatal("different seeds produced identical throughput")
	}
}

func TestRunSimPanics(t *testing.T) {
	t.Parallel()
	pr := NS2Profile()
	cases := []func(){
		func() { RunSim(SimConfig{}) },
		func() {
			cfg := pr.Config(0, 8, 1)
			cfg.NTFRC, cfg.NTCP = 0, 0
			RunSim(cfg)
		},
		func() {
			cfg := pr.Config(1, 8, 1)
			cfg.Queue = DropTail
			cfg.Buffer = 0
			RunSim(cfg)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFig7Claim3Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow probe sweep skipped in -short mode")
	}
	t.Parallel()
	tb := Fig7(tiny)
	if len(tb.Rows) == 0 {
		t.Fatal("empty fig7")
	}
	// Pool over rows: on average, p_tcp <= p_tfrc <= p_poisson.
	var sumT, sumC, sumP float64
	var n int
	for _, row := range tb.Rows {
		if row[4] <= 0 {
			continue // probe saw no events in a short run
		}
		sumT += row[2]
		sumC += row[3]
		sumP += row[4]
		n++
	}
	if n == 0 {
		t.Skip("no probe events in tiny sizing")
	}
	if !(sumC <= sumT) {
		t.Fatalf("mean p_tcp %v should be <= p_tfrc %v", sumC/float64(n), sumT/float64(n))
	}
}

func TestFig8TFRCNotStarved(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sim sweep skipped in -short mode")
	}
	t.Parallel()
	tb := Fig8(tiny)
	for _, row := range tb.Rows {
		if row[2] < 0.2 || row[2] > 5 {
			t.Fatalf("ratio %v out of plausible band (L=%v pairs=%v)", row[2], row[0], row[1])
		}
	}
}

func TestFig9TCPBelowFormulaOnAverage(t *testing.T) {
	t.Parallel()
	tb := Fig9(tiny)
	if len(tb.Rows) == 0 {
		t.Fatal("empty fig9")
	}
	below := 0
	for _, row := range tb.Rows {
		if row[2] <= row[1]*1.05 {
			below++
		}
	}
	// The paper: TCP is below the formula except at large throughputs.
	if below < len(tb.Rows)/2 {
		t.Fatalf("only %d of %d TCP flows at/below the formula", below, len(tb.Rows))
	}
}

func TestFig10CovNearZero(t *testing.T) {
	if testing.Short() {
		t.Skip("slow profile sweep skipped in -short mode")
	}
	t.Parallel()
	tb := Fig10(tiny)
	if len(tb.Rows) == 0 {
		t.Fatal("empty fig10")
	}
	for _, row := range tb.Rows {
		if math.Abs(row[2]) > 0.25 {
			t.Fatalf("covnorm %v far from zero (profile %v pairs %v)", row[2], row[0], row[1])
		}
	}
}

func TestFig17CompetingRatioAboveOne(t *testing.T) {
	if testing.Short() {
		t.Skip("long DropTail buffer sweep skipped in -short mode")
	}
	t.Parallel()
	// Fig 17 needs enough loss events per point to stabilize the
	// ratio; use a third of the full duration rather than the tiny
	// sizing.
	tb := Fig17(Sizing{Events: tiny.Events, SimFactor: 0.35, Pairs: tiny.Pairs})
	if len(tb.Rows) == 0 {
		t.Fatal("empty fig17")
	}
	above := 0
	for _, row := range tb.Rows {
		if row[2] > 1 {
			above++
		}
	}
	if above < len(tb.Rows)-1 {
		t.Fatalf("competing p'/p above 1 in only %d of %d rows", above, len(tb.Rows))
	}
}

func TestBreakdownColumnsSane(t *testing.T) {
	t.Parallel()
	tb := Breakdown("test", []Profile{LabDT100.Scale(0.3, 2)}, tiny)
	if len(tb.Rows) == 0 {
		t.Fatal("empty breakdown")
	}
	for _, row := range tb.Rows {
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("bad value %v in column %s", v, tb.Columns[i])
			}
		}
	}
}

func TestTableI(t *testing.T) {
	t.Parallel()
	tb := TableI()
	if len(tb.Rows) != 4 {
		t.Fatalf("tableI rows = %d, want 4 WAN profiles", len(tb.Rows))
	}
}

func TestClaim3Table(t *testing.T) {
	t.Parallel()
	tb := Claim3()
	// Row 0 is TCP, rows 1-4 EBRC with growing L, last is Poisson.
	tcpP := tb.Rows[0][2]
	poisson := tb.Rows[len(tb.Rows)-1][2]
	prev := tcpP
	for _, row := range tb.Rows[1 : len(tb.Rows)-1] {
		p := row[2]
		if p < tcpP-1e-12 || p > poisson+1e-12 {
			t.Fatalf("EBRC p=%v outside [%v, %v]", p, tcpP, poisson)
		}
		if p < prev-1e-12 {
			t.Fatal("EBRC p not increasing in L")
		}
		prev = p
	}
}

func TestClaim4Table(t *testing.T) {
	t.Parallel()
	tb := Claim4()
	for _, row := range tb.Rows {
		beta, analyticR, fluidR := row[0], row[1], row[2]
		if analyticR <= 1 {
			t.Fatalf("analytic ratio at beta=%v is %v", beta, analyticR)
		}
		// The fluid effect (peak/mean rate share at overflow) shrinks as
		// 2/(1+β); for gentle back-off (β = 0.75) it is within noise of
		// 1, so only assert the clear cases.
		if beta <= 0.5 && fluidR <= 1 {
			t.Fatalf("fluid ratio at beta=%v is %v", beta, fluidR)
		}
		if beta > 0.5 && fluidR <= 0.9 {
			t.Fatalf("fluid ratio at beta=%v is %v, want near or above 1", beta, fluidR)
		}
		if beta == 0.5 && math.Abs(analyticR-16.0/9) > 1e-9 {
			t.Fatalf("beta=0.5 analytic = %v, want 16/9", analyticR)
		}
	}
}

func TestProfileScale(t *testing.T) {
	t.Parallel()
	pr := LabDT100.Scale(0.5, 3)
	if pr.Duration != 150 || pr.Warmup != 25 {
		t.Fatalf("scaled durations: %v %v", pr.Duration, pr.Warmup)
	}
	if len(pr.Pairs) != 3 {
		t.Fatalf("scaled pairs: %v", pr.Pairs)
	}
	// No-op scale keeps everything.
	same := LabDT100.Scale(1, 0)
	if same.Duration != LabDT100.Duration || len(same.Pairs) != len(LabDT100.Pairs) {
		t.Fatal("no-op scale changed the profile")
	}
}
