// Package experiments contains one runner per figure of the paper's
// evaluation section (Figures 1-19, Table I, and the analytic Claims 3
// and 4). Each runner assembles the workload, sweeps the figure's
// parameter, and returns a Table whose rows are the series the paper
// plots. The cmd/ebrc binary prints these tables as TSV.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a named result grid: one column per plotted quantity, one row
// per parameter point.
type Table struct {
	// Name identifies the experiment (e.g. "fig3-pftk").
	Name string
	// Note carries a one-line description of what the rows show.
	Note string
	// Columns are the column headers.
	Columns []string
	// Rows hold the values; each row must match len(Columns).
	Rows [][]float64
}

// AddRow appends a row, validating its width.
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row width %d != %d columns in %s",
			len(vals), len(t.Columns), t.Name))
	}
	t.Rows = append(t.Rows, vals)
}

// WriteTSV renders the table as tab-separated values with a header.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s", t.Name); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, ": %s", t.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%.6g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Column returns the values of the named column. It panics if the column
// does not exist.
func (t *Table) Column(name string) []float64 {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for j, row := range t.Rows {
				out[j] = row[i]
			}
			return out
		}
	}
	panic(fmt.Sprintf("experiments: no column %q in %s", name, t.Name))
}
