package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arrivals"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// LeakCheck, when set (the experiments test harness turns it on),
// verifies the packet-freelist leak invariant at the end of every
// packet-level run and panics on a violation. It stays off in
// production runs to keep the hot path assertion-free.
var LeakCheck bool

// TopoSimConfig describes one multi-hop simulation on a chain of
// bottleneck links (the "parking lot" of the multi-bottleneck
// literature): long TFRC and TCP flows traverse every hop end to end,
// while short TCP flows cross a single hop each. Hops = 1 degenerates
// to the dumbbell.
type TopoSimConfig struct {
	// Hops is the number of bottleneck links in series (>= 1).
	Hops int
	// Capacity is the per-hop link rate in bytes/second.
	Capacity float64
	// Buffer is the per-hop DropTail capacity in packets.
	Buffer int
	// HopDelay is the per-hop one-way propagation delay in seconds.
	HopDelay float64
	// AccessDelay is the extra one-way delay from the last hop's egress
	// to each long flow's receiver.
	AccessDelay float64
	// RevDelay is the uncongested reverse-path delay of the long flows.
	RevDelay float64
	// NTFRC and NTCP are the numbers of long (end-to-end) flows.
	NTFRC, NTCP int
	// CrossPerHop adds this many short TCP flows crossing each hop.
	CrossPerHop int
	// CrossRevDelay is the reverse-path delay of the crossing flows
	// (their forward path is just the one hop).
	CrossRevDelay float64
	// RTTSpread, when positive, scales long flow i's terminal delays by
	// 1 + RTTSpread·i/(n-1), giving a heterogeneous-RTT population
	// (flow 0 keeps the base RTT, the last flow gets 1+RTTSpread times
	// the terminal delays).
	RTTSpread float64
	// L is the TFRC loss-interval window.
	L int
	// Comprehensive toggles TFRC's comprehensive-control element.
	Comprehensive bool
	// Duration and Warmup are the measured and discarded sim seconds.
	Duration, Warmup float64
	// Seed drives all randomness in the run.
	Seed uint64
	// RevJitter randomizes reverse-path delays (fraction, see topology).
	RevJitter float64
	// Shards, when above 1, executes the run on the space-parallel
	// sharded engine (internal/shard) with at most that many domains.
	// The results are byte-identical to a serial run — the scheduler
	// event count included — at any value.
	Shards int
	// Faults, when non-nil, is the deterministic fault-injection plan
	// armed against the chain right after the graph freezes (see
	// internal/fault): timed link Down/Up transitions, runtime capacity
	// renegotiation, and per-link Gilbert–Elliott bursty loss. Link IDs
	// index the forward chain (0..Hops-1) and, under MirrorRev, the
	// mirrored reverse chain (Hops..2·Hops-1). Propagation delays are
	// immutable — fault.Plan has no delay operation — so the sharded
	// engine's lookahead horizon stays valid through any plan, and the
	// results remain byte-identical at every shard count.
	Faults *fault.Plan
	// Watch, when non-nil, samples every long TFRC flow's send rate
	// around one outage window and reports per-flow recovery times in
	// TopoSimResult.Recovery.
	Watch *RecoveryWatch
	// MirrorRev routes the long flows' feedback over a mirrored reverse
	// chain (Unbounded queues, link IDs Hops..2·Hops-1) instead of the
	// pure-delay reverse path, giving reverse-direction faults (ACK and
	// feedback starvation) real queues to act on. RevDelay becomes the
	// residual delay after the last reverse hop; crossing flows keep
	// pure-delay reverse paths.
	MirrorRev bool
	// Churn declares run-time session arrival classes (see
	// internal/arrivals): finite transfers that attach while the
	// simulation runs, drawn from the class's interarrival and size
	// laws. Forward classes ride the full forward chain; classes with
	// Reverse set ride the mirrored reverse chain and require MirrorRev.
	// Churn flows' feedback always takes the pure-delay reverse path.
	// Churn flow ids start after the last configured static flow.
	Churn []arrivals.Spec
	// ForceEpochs, when above 1, forces this run's epoch log (that many
	// epochs) even when the process-wide Observe options are off, so
	// churn folds can consume per-epoch deltas on a plain CLI run. It
	// never changes the simulation trajectory, and TSV epoch blocks stay
	// gated on the user's Observe selection.
	ForceEpochs int
	// Label names the run for checkpointing: the snapshot file is
	// Checkpoint.Dir/<sanitized label>.ckpt, and the label is folded
	// into the config digest. The scenario layer sets it to the job
	// name; an empty label opts the run out of checkpoint/resume.
	Label string
	// Resume, when set, asks this run to continue from the snapshot for
	// its label found in the named directory (a missing snapshot
	// degrades to a from-scratch run, a mismatched one fails loudly).
	// The run layer sets it from Checkpoint.Resume and from the
	// self-healing retry path; it is not part of the config digest.
	Resume string
}

// RecoveryWatch configures post-outage recovery measurement: each long
// TFRC flow's send rate is sampled every Interval; the last sample at
// or before Down fixes the flow's pre-outage rate, and the flow counts
// as recovered at the first sample at or after Up whose rate reaches
// Frac times that.
type RecoveryWatch struct {
	// Down and Up bound the outage in absolute simulation time.
	Down, Up float64
	// Frac is the recovery threshold as a fraction of the pre-outage
	// rate; <= 0 means 0.5.
	Frac float64
	// Interval is the sampling period in seconds; <= 0 means 0.05.
	Interval float64
}

// rateWatch samples one sender's rate on its own scheduler. The sample
// cadence is fixed (every Interval until the run ends, recovered or
// not), so the watcher contributes the same event count to every
// executor mode.
type rateWatch struct {
	sched *des.Scheduler
	rate  func() float64
	w     RecoveryWatch
	end   float64
	fn    des.Event

	preRate     float64
	recoveredAt float64
	// tm is the pending sample timer, retained so a snapshot can save
	// and re-arm it with its original identity.
	tm des.Timer
}

func newRateWatch(sched *des.Scheduler, rate func() float64, w RecoveryWatch, end float64) *rateWatch {
	if w.Frac <= 0 {
		w.Frac = 0.5
	}
	if w.Interval <= 0 {
		w.Interval = 0.05
	}
	rw := &rateWatch{sched: sched, rate: rate, w: w, end: end, recoveredAt: -1}
	rw.fn = rw.sample
	rw.tm = sched.At(sched.Now(), rw.fn)
	return rw
}

func (rw *rateWatch) sample() {
	now := rw.sched.Now()
	r := rw.rate()
	switch {
	case now <= rw.w.Down:
		rw.preRate = r
	case now >= rw.w.Up && rw.recoveredAt < 0 && rw.preRate > 0 && r >= rw.w.Frac*rw.preRate:
		rw.recoveredAt = now
	}
	if next := now + rw.w.Interval; next <= rw.end {
		rw.tm = rw.sched.At(next, rw.fn)
	}
}

// recovery returns seconds from the Up edge to the recovering sample,
// or -1 if the flow never regained the threshold before the run ended.
func (rw *rateWatch) recovery() float64 {
	if rw.recoveredAt < 0 {
		return -1
	}
	return rw.recoveredAt - rw.w.Up
}

// TopoSimResult holds per-class aggregates of one multi-hop run: the
// long flows by protocol, and the crossing flows pooled.
type TopoSimResult struct {
	// TFRC and TCP aggregate the long end-to-end flows.
	TFRC, TCP ClassStats
	// Cross aggregates the short crossing TCP flows over all hops.
	Cross ClassStats
	// TFRCPerFlow and TCPPerFlow keep the long flows' stats in
	// attachment order (flow i has the i-th smallest RTT under
	// RTTSpread).
	TFRCPerFlow []tfrc.Stats
	TCPPerFlow  []tcp.Stats
	// BaseRTT is the long flows' no-queueing RTT per TFRC flow index.
	BaseRTT []float64
	// EventsFired counts the scheduler events of the whole run.
	EventsFired uint64
	// FaultDrops totals packets dropped by fault hooks (outages, bursty
	// loss, flushes) over all links; FaultOffered additionally counts
	// what the faulted links forwarded, still held, or tail-dropped, so
	// FaultDrops/FaultOffered is the observed per-packet fault-loss
	// probability on those links (whole run, warmup included).
	FaultDrops, FaultOffered int64
	// UnboundedHighWater is the deepest any Unbounded queue of the run
	// got, in packets (0 when the chain has none).
	UnboundedHighWater int
	// Recovery, when cfg.Watch was set, holds per long TFRC flow the
	// seconds after the outage's Up edge until the flow's send rate
	// regained Watch.Frac of its pre-outage rate; -1 if it never did.
	Recovery []float64
	// Obs is the run's observability capture (nil unless the process-
	// wide Observe options or cfg.ForceEpochs enable one).
	Obs *RunObs
	// Churn summarizes each arrival class of cfg.Churn, in declaration
	// order (nil when the run had none).
	Churn []arrivals.ClassResult
}

// queueDrops reads a queue discipline's drop counter, when it has one.
func queueDrops(q netsim.Queue) int64 {
	switch d := q.(type) {
	case *netsim.DropTail:
		return d.Drops
	case *netsim.RED:
		return d.Drops
	}
	return 0
}

// RunTopoSim executes the configured multi-hop simulation and returns
// the per-class aggregates. It is fully deterministic in cfg.Seed.
func RunTopoSim(cfg TopoSimConfig) TopoSimResult {
	if cfg.Hops < 1 || cfg.Capacity <= 0 || cfg.Buffer < 1 || cfg.Duration <= 0 ||
		cfg.Warmup < 0 || cfg.L < 1 {
		panic("experiments: invalid topo sim config")
	}
	if cfg.NTFRC < 0 || cfg.NTCP < 0 || cfg.NTFRC+cfg.NTCP == 0 {
		panic("experiments: need at least one long flow")
	}
	// Build the chain inside a pooled executor (see exec.go / arena.go):
	// serial for Shards <= 1, space-parallel sharded otherwise. Either
	// way wheels, packet pools and flow-state records are reused across
	// replications.
	env := newExec(cfg.Shards)
	defer env.Close()
	seedRNG := rng.New(cfg.Seed)

	nodes := make([]topology.NodeID, cfg.Hops+1)
	for i := range nodes {
		nodes[i] = env.AddNode(fmt.Sprintf("n%d", i))
	}
	route := make([]topology.LinkID, cfg.Hops)
	for i := 0; i < cfg.Hops; i++ {
		route[i] = env.AddLink(nodes[i], nodes[i+1], cfg.Capacity, cfg.HopDelay,
			netsim.NewDropTail(cfg.Buffer))
	}
	env.SetDefaultRoute(route...)
	// The mirrored reverse chain must be declared before Freeze (links
	// cannot materialize after the sharded executor partitions). Its
	// links get IDs Hops..2·Hops-1, last forward node back to the first.
	var revRoute []topology.LinkID
	if cfg.MirrorRev {
		revRoute = make([]topology.LinkID, cfg.Hops)
		for i := 0; i < cfg.Hops; i++ {
			revRoute[i] = env.AddLink(nodes[cfg.Hops-i], nodes[cfg.Hops-i-1],
				cfg.Capacity, cfg.HopDelay, netsim.NewUnbounded())
		}
	}
	if cfg.RevJitter > 0 {
		env.SetReverseJitter(cfg.RevJitter, seedRNG.Uint64())
	}
	env.Freeze()
	// Tracer attach sits between the freeze (shards exist, links are
	// owned) and both the fault arming and endpoint construction, which
	// each resolve their domain's tracer once. Cap <= 0 (tracing off)
	// leaves every tracer nil.
	env.AttachTracers(Observe.TraceCap)
	ob := newObsRun(env, env.Tracers, cfg.ForceEpochs)
	// Arm the fault plan right after the freeze: every timed transition
	// is scheduled at declaration time, in plan order, on the scheduler
	// that owns its link — the same (time, arming-key, seq) order on the
	// serial and sharded engines. A nil plan arms nothing and consumes
	// no randomness, so fault-free runs are byte-identical to builds
	// that predate the fault layer.
	armed, err := fault.Arm(env, cfg.Faults)
	if err != nil {
		panic(fmt.Sprintf("experiments: invalid fault plan: %v", err))
	}

	spread := func(i, n int) float64 {
		if cfg.RTTSpread <= 0 || n <= 1 {
			return 1
		}
		return 1 + cfg.RTTSpread*float64(i)/float64(n-1)
	}

	tfrcCfg := tfrc.DefaultConfig()
	tfrcCfg.Window = cfg.L
	tfrcCfg.Comprehensive = cfg.Comprehensive

	end := cfg.Warmup + cfg.Duration
	flowID := 0
	tfrcSenders := make([]*tfrc.Sender, 0, cfg.NTFRC)
	tfrcReceivers := make([]*tfrc.Receiver, 0, cfg.NTFRC)
	watchers := make([]*rateWatch, 0, cfg.NTFRC)
	baseRTTs := make([]float64, 0, cfg.NTFRC)
	for i := 0; i < cfg.NTFRC; i++ {
		c := tfrcCfg
		c.Seed = seedRNG.Uint64()
		k := spread(i, cfg.NTFRC)
		if cfg.MirrorRev {
			env.SetReverseRoute(flowID, revRoute...)
		}
		sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
		snd, rcv := tfrc.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, c,
			cfg.AccessDelay*k, cfg.RevDelay*k)
		tfrcSenders = append(tfrcSenders, snd)
		tfrcReceivers = append(tfrcReceivers, rcv)
		baseRTTs = append(baseRTTs, env.BaseRTT(flowID))
		staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
		if cfg.Watch != nil {
			watchers = append(watchers, newRateWatch(sndSched, snd.Rate, *cfg.Watch, end))
		}
		flowID++
	}
	tcpSenders := make([]*tcp.Sender, 0, cfg.NTCP)
	tcpReceivers := make([]*tcp.Receiver, 0, cfg.NTCP)
	for i := 0; i < cfg.NTCP; i++ {
		k := spread(i, cfg.NTCP)
		if cfg.MirrorRev {
			env.SetReverseRoute(flowID, revRoute...)
		}
		sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
		snd, rcv := tcp.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, tcp.DefaultConfig(),
			cfg.AccessDelay*k, cfg.RevDelay*k)
		tcpSenders = append(tcpSenders, snd)
		tcpReceivers = append(tcpReceivers, rcv)
		staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
		flowID++
	}
	crossSenders := make([]*tcp.Sender, 0, cfg.Hops*cfg.CrossPerHop)
	crossReceivers := make([]*tcp.Receiver, 0, cfg.Hops*cfg.CrossPerHop)
	for h := 0; h < cfg.Hops; h++ {
		for i := 0; i < cfg.CrossPerHop; i++ {
			env.SetRoute(flowID, route[h])
			sndSched, sndNet, rcvSched, rcvNet := env.FlowEnv(flowID)
			snd, rcv := tcp.NewFlowOn(sndSched, sndNet, rcvSched, rcvNet, flowID, tcp.DefaultConfig(),
				0, cfg.CrossRevDelay)
			crossSenders = append(crossSenders, snd)
			crossReceivers = append(crossReceivers, rcv)
			staggeredStart(sndSched, seedRNG, cfg.Warmup, snd.Start)
			flowID++
		}
	}

	// Churn classes arm after every static flow (their id block starts at
	// flowID) and before the first Run: the sharded executor's flow table
	// must be sized and its cross-shard pure-delay reverse channels
	// declared while the cluster is still unsealed.
	var churn *arrivals.Engine
	if len(cfg.Churn) > 0 {
		baseRTT := 2*(float64(cfg.Hops)*cfg.HopDelay+cfg.AccessDelay) + cfg.RevDelay
		classes := make([]arrivals.Class, len(cfg.Churn))
		for i, sp := range cfg.Churn {
			cl := arrivals.Class{Spec: sp}
			if sp.Reverse {
				if !cfg.MirrorRev {
					panic("experiments: reverse churn class needs MirrorRev")
				}
				cl.FwdHops = revRoute
			} else {
				cl.FwdHops = route
			}
			cl.FwdExtra = cfg.AccessDelay
			cl.RevDelay = cfg.RevDelay
			switch sp.Proto {
			case arrivals.TFRC:
				c := tfrcCfg
				// Two silent feedback intervals retire a departed
				// receiver's clock; fresh data re-arms it.
				c.IdleStop = 2
				cl.TFRC = c
			case arrivals.TCP:
				cl.TCP = tcp.DefaultConfig()
			case arrivals.CBR:
				cl.CBRSize = 1000
				cl.CBRRTT = baseRTT
			}
			classes[i] = cl
		}
		churn = arrivals.NewEngine(env, flowID, classes)
		lo, count := churn.FlowRange()
		env.ReserveFlows(lo + count)
		for _, cl := range classes {
			env.DeclareReverseChannel(cl.FwdHops, cl.RevDelay)
		}
		churn.Arm()
	}

	// Checkpoint-off runs take the exact pre-checkpoint path: two RunUntil
	// calls (plus epoch boundaries), no capture, no extra branches. With
	// snapshotting or resuming requested the driver below sequences the
	// same warmup/reset/measure steps around the save and restore hooks.
	ckptOn := Checkpoint.Every > 0 && Checkpoint.Dir != "" && cfg.Label != ""
	resuming := cfg.Resume != "" && cfg.Label != ""
	if ckptOn || resuming {
		if Observe.TraceCap > 0 {
			panic("experiments: checkpoint/resume is incompatible with event tracing (-trace): the bounded trace rings are not part of a snapshot")
		}
		ce, ok := env.(ckptExec)
		if !ok {
			panic("experiments: executor does not support checkpointing")
		}
		shards := 1
		if cfg.Shards > 1 {
			shards = cfg.Shards
		}
		obEpochs := 0
		if ob != nil {
			obEpochs = ob.epochs
		}
		d := &topoCkpt{
			cfg: &cfg, env: ce, ob: ob, armed: armed, watchers: watchers,
			end: end, saving: ckptOn, resume: cfg.Resume,
			digest: configDigest(&cfg, shards, obEpochs),
		}
		if churn != nil {
			d.churn = churn
		}
		for i := range tfrcSenders {
			d.tfrcSnd = append(d.tfrcSnd, tfrcSenders[i])
			d.tfrcRcv = append(d.tfrcRcv, tfrcReceivers[i])
		}
		for i := range tcpSenders {
			d.tcpSnd = append(d.tcpSnd, tcpSenders[i])
			d.tcpRcv = append(d.tcpRcv, tcpReceivers[i])
		}
		for i := range crossSenders {
			d.crossSnd = append(d.crossSnd, crossSenders[i])
			d.crossRcv = append(d.crossRcv, crossReceivers[i])
		}
		d.statResetters = []func(){
			func() { resetStats(tfrcSenders) },
			func() { resetStats(tcpSenders) },
			func() { resetStats(crossSenders) },
		}
		d.run()
	} else {
		env.RunUntil(cfg.Warmup)
		resetStats(tfrcSenders)
		resetStats(tcpSenders)
		resetStats(crossSenders)
		ob.runMeasured(env.RunUntil, cfg.Warmup, end)
	}

	var res TopoSimResult
	res.TFRCPerFlow = tfrcStats(tfrcSenders)
	res.TCPPerFlow = tcpStats(tcpSenders)
	res.TFRC = aggregateTFRC(res.TFRCPerFlow, cfg.L)
	res.TCP = aggregateTCP(res.TCPPerFlow)
	res.Cross = aggregateTCP(tcpStats(crossSenders))
	res.BaseRTT = baseRTTs
	res.EventsFired = env.Fired()
	for id := 0; id < env.Links(); id++ {
		l := env.Link(topology.LinkID(id))
		if l.Fault != nil || l.FaultDrops > 0 {
			res.FaultDrops += l.FaultDrops
			// Accepted, not InFlight: the propagation stage's accounting
			// moves across the cut under sharding, so only the
			// executor-invariant part of the pipeline may enter the ratio.
			res.FaultOffered += l.FaultDrops + l.Accepted() + queueDrops(l.Queue())
		}
		if u, ok := l.Queue().(*netsim.Unbounded); ok && u.HighWater > res.UnboundedHighWater {
			res.UnboundedHighWater = u.HighWater
		}
	}
	if cfg.Watch != nil {
		res.Recovery = make([]float64, len(watchers))
		for i, rw := range watchers {
			res.Recovery[i] = rw.recovery()
		}
	}
	if churn != nil {
		res.Churn = churn.Results(end)
	}
	res.Obs = ob.collect(res.TFRCPerFlow, res.TCPPerFlow)
	if LeakCheck {
		if err := env.CheckLeaks(); err != nil {
			panic(err)
		}
	}
	return res
}

// parkingLotBase is the shared sizing of the multi-hop scenarios: per
// hop a 10 Mb/s DropTail bottleneck (the lab testbed rate), 10 ms per
// hop, with the long flows' terminal delays completing a 40 ms
// single-hop base RTT (10 + 5 + 25 ms, queueing and transmission
// excluded); each extra hop adds its 10 ms.
func parkingLotBase(sz Sizing) TopoSimConfig {
	cfg := TopoSimConfig{
		Hops:          1,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         2,
		NTCP:          2,
		CrossPerHop:   0,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      300,
		Warmup:        50,
		RevJitter:     0.2,
	}
	if sz.SimFactor > 0 && sz.SimFactor < 1 {
		cfg.Duration *= sz.SimFactor
		cfg.Warmup *= sz.SimFactor
	}
	cfg.Shards = sz.Shards
	return cfg
}

// topoCell pairs one multi-hop run with the sweep metadata its table
// rows need.
type topoCell struct {
	name    string
	cfg     TopoSimConfig
	hops, L int
}

// topoJob wraps one multi-hop run as a runner job. The job name becomes
// the run's checkpoint label; a retry attempt (the self-healing pool
// re-dispatching a deadline-abandoned or panicked job) resumes from the
// job's own last snapshot when checkpointing is on, and an explicit
// Checkpoint.Resume directory applies to first attempts too.
func topoJob(name string, cfg TopoSimConfig) runner.Job {
	return runner.Job{
		Name: name,
		Seed: cfg.Seed,
		Run: func(ctx context.Context) any {
			c := cfg
			c.Label = name
			c.Resume = Checkpoint.Resume
			if c.Resume == "" && runner.Attempt(ctx) > 1 &&
				Checkpoint.Every > 0 && Checkpoint.Dir != "" {
				c.Resume = Checkpoint.Dir
			}
			return RunTopoSim(c)
		},
	}
}

// topoGridPlan instantiates gridPlan for multi-hop sweeps.
func topoGridPlan(t *Table, cells []topoCell,
	rows func(c topoCell, res TopoSimResult) [][]float64) ([]runner.Job, FoldFunc) {
	return gridPlan(t, cells, func(c topoCell) runner.Job { return topoJob(c.name, c.cfg) }, rows)
}

// planParkingLot sweeps the number of bottlenecks and the crossing load
// on a parking-lot chain: long TFRC and TCP flows over every hop
// against short TCP flows crossing one hop each. The long flows' loss
// and throughput degrade with each added congested hop; the ratio
// column tracks whether TFRC stays TCP-friendly while it happens.
func planParkingLot(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name: "parkinglot",
		Note: "parking lot: long TFRC/TCP over k bottlenecks vs short crossing TCP",
		Columns: []string{"hops", "cross_per_hop", "p_tfrc", "p_tcp",
			"x_tfrc", "x_tcp", "ratio", "x_cross"},
	}
	var cells []topoCell
	seed := uint64(2040)
	for _, hops := range []int{1, 2, 3} {
		for _, cross := range []int{1, 2} {
			seed++
			cfg := parkingLotBase(sz)
			cfg.Hops = hops
			cfg.CrossPerHop = cross
			cfg.Seed = seed
			cells = append(cells, topoCell{
				name: fmt.Sprintf("parkinglot hops=%d cross=%d", hops, cross),
				cfg:  cfg, hops: hops, L: cfg.L,
			})
		}
	}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		if res.TCP.Throughput <= 0 {
			return nil
		}
		return [][]float64{{float64(c.hops), float64(c.cfg.CrossPerHop),
			res.TFRC.LossEventRate, res.TCP.LossEventRate,
			res.TFRC.Throughput, res.TCP.Throughput,
			res.TFRC.Throughput / res.TCP.Throughput,
			res.Cross.Throughput}}
	})
}

// planHetRTT runs matched TFRC/TCP populations whose terminal delays
// spread the base RTT by up to 4x on a shared bottleneck: per flow
// index, the throughputs and their ratio — the heterogeneous-RTT
// competition the dumbbell sweeps never exercised.
func planHetRTT(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "hetrtt",
		Note:    "heterogeneous-RTT competition: matched TFRC/TCP per RTT class",
		Columns: []string{"flow", "base_rtt_ms", "x_tfrc", "x_tcp", "ratio"},
	}
	cfg := parkingLotBase(sz)
	cfg.NTFRC = 4
	cfg.NTCP = 4
	cfg.CrossPerHop = 0
	cfg.RTTSpread = 3 // flow 3 gets 4x the terminal delays of flow 0
	cfg.Seed = 2140
	cells := []topoCell{{name: "hetrtt", cfg: cfg, hops: 1, L: cfg.L}}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		var rows [][]float64
		for i, st := range res.TFRCPerFlow {
			if i >= len(res.TCPPerFlow) {
				break
			}
			ct := res.TCPPerFlow[i]
			ratio := 0.0
			if ct.Throughput > 0 {
				ratio = st.Throughput / ct.Throughput
			}
			rows = append(rows, []float64{float64(i), res.BaseRTT[i] * 1000,
				st.Throughput, ct.Throughput, ratio})
		}
		return rows
	})
}

// planMultiBneck is the multi-bottleneck conservativeness sweep: a lone
// long TFRC flow crosses k hops, each congested by short TCP flows, and
// its normalized throughput x̄/f(p, r) is evaluated at its own measured
// loss-event rate and RTT — Claim 1's check in the setting the paper
// never simulated.
func planMultiBneck(sz Sizing) ([]runner.Job, FoldFunc) {
	t := &Table{
		Name:    "multibneck",
		Note:    "conservativeness over k congested hops: x̄/f(p,r) of a long TFRC flow",
		Columns: []string{"hops", "L", "p", "normalized", "covnorm"},
	}
	var cells []topoCell
	seed := uint64(2240)
	for _, hops := range []int{1, 2, 3} {
		for _, L := range []int{2, 8} {
			seed++
			cfg := parkingLotBase(sz)
			cfg.Hops = hops
			cfg.NTFRC = 1
			cfg.NTCP = 0
			cfg.CrossPerHop = 2
			cfg.L = L
			cfg.Seed = seed
			cells = append(cells, topoCell{
				name: fmt.Sprintf("multibneck hops=%d L=%d", hops, L),
				cfg:  cfg, hops: hops, L: L,
			})
		}
	}
	return topoGridPlan(t, cells, func(c topoCell, res TopoSimResult) [][]float64 {
		cls := res.TFRC
		if cls.Events == 0 || cls.MeanRTT <= 0 {
			return nil
		}
		f := formula.NewPFTKStandard(formula.ParamsForRTT(cls.MeanRTT))
		norm := cls.Throughput / f.Rate(math.Max(cls.LossEventRate, 1e-9))
		return [][]float64{{float64(c.hops), float64(c.L),
			cls.LossEventRate, norm, cls.CovNorm}}
	})
}

func init() {
	register(&Scenario{Name: "parkinglot",
		Note:    "parking-lot chain: long flows over 1-3 bottlenecks vs crossing TCP",
		Plan:    planParkingLot,
		Sharded: true})
	register(&Scenario{Name: "hetrtt",
		Note:    "heterogeneous-RTT competition on a shared bottleneck (1x-4x RTT spread)",
		Plan:    planHetRTT,
		Sharded: true})
	register(&Scenario{Name: "multibneck",
		Note:    "multi-bottleneck conservativeness sweep: x̄/f(p,r) over k congested hops",
		Plan:    planMultiBneck,
		Sharded: true})
}

// ParkingLot, HetRTT and MultiBneck are the serial convenience wrappers
// of the multi-hop scenario family.
func ParkingLot(sz Sizing) *Table { return runPlan(planParkingLot, sz)[0] }

// HetRTT reproduces the heterogeneous-RTT competition table.
func HetRTT(sz Sizing) *Table { return runPlan(planHetRTT, sz)[0] }

// MultiBneck reproduces the multi-bottleneck conservativeness sweep.
func MultiBneck(sz Sizing) *Table { return runPlan(planMultiBneck, sz)[0] }
