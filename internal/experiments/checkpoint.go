package experiments

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/obs"
)

// CheckpointOptions is the process-wide checkpoint selection, set by
// the CLI before scenarios run (the same pattern as Observe). Every
// field off keeps runs on the exact pre-checkpoint instruction path:
// no capture, no extra RunUntil stepping beyond the epoch boundaries
// the run already had.
type CheckpointOptions struct {
	// Every is the snapshot cadence in simulated seconds: a snapshot is
	// written at the end of warmup and then every Every seconds of the
	// measured window. <= 0 disables snapshotting.
	Every float64
	// Dir is the directory snapshots are written into (one file per
	// labeled job, atomically replaced at each instant).
	Dir string
	// Resume, when set, asks every labeled run to continue from the
	// snapshot found in this directory. A missing snapshot degrades to a
	// from-scratch run; a snapshot whose config digest does not match
	// the run fails loudly rather than corrupting output.
	Resume string
}

// Checkpoint is the process-wide checkpoint configuration.
var Checkpoint CheckpointOptions

// capFn resolves the scheduler that owns a timer to the point-in-time
// capture of that scheduler's pending set. Captures are built lazily —
// one O(pending) scan per scheduler per snapshot — and shared by every
// component saving against the same scheduler.
type capFn = func(*des.Scheduler) *des.TimerCapture

func captureAll() capFn {
	caps := make(map[*des.Scheduler]*des.TimerCapture, 4)
	return func(s *des.Scheduler) *des.TimerCapture {
		c := caps[s]
		if c == nil {
			c = s.CaptureTimers()
			caps[s] = c
		}
		return c
	}
}

// ckptExec is the executor checkpoint seam: the granular state sections
// both engines expose, sequenced explicitly by the driver below so the
// restore-order invariants (protocols before the flow overlay, ledgers
// last) hold on either engine.
type ckptExec interface {
	simExec
	// schedulers returns every scheduling domain in domain order.
	schedulers() []*des.Scheduler
	ckptLinks(w *checkpoint.Writer, capOf capFn)
	unckptLinks(r *checkpoint.Reader)
	ckptFlows(w *checkpoint.Writer)
	unckptFlows(r *checkpoint.Reader)
	// ckptTransit covers the engine's in-flight hand-offs: pure-delay
	// deliveries on both engines, plus the scheduled-but-unfired
	// cross-shard injections on the cluster.
	ckptTransit(w *checkpoint.Writer, capOf capFn)
	unckptTransit(r *checkpoint.Reader)
	ckptLedger(w *checkpoint.Writer)
	unckptLedger(r *checkpoint.Reader)
}

func (e *serialExec) schedulers() []*des.Scheduler { return []*des.Scheduler{&e.a.sched} }

func (e *serialExec) ckptLinks(w *checkpoint.Writer, capOf capFn) {
	e.Network.SaveLinks(w, capOf(&e.a.sched))
}
func (e *serialExec) unckptLinks(r *checkpoint.Reader) { e.Network.RestoreLinks(r) }
func (e *serialExec) ckptFlows(w *checkpoint.Writer)   { e.Network.SaveFlows(w) }
func (e *serialExec) unckptFlows(r *checkpoint.Reader) { e.Network.RestoreFlows(r) }
func (e *serialExec) ckptTransit(w *checkpoint.Writer, capOf capFn) {
	e.Network.SaveDeliveries(w, capOf(&e.a.sched))
}
func (e *serialExec) unckptTransit(r *checkpoint.Reader) { e.Network.RestoreDeliveries(r) }
func (e *serialExec) ckptLedger(w *checkpoint.Writer)    { e.Network.SaveLedger(w) }
func (e *serialExec) unckptLedger(r *checkpoint.Reader)  { e.Network.RestoreLedger(r) }

func (e *shardExec) schedulers() []*des.Scheduler {
	scheds := make([]*des.Scheduler, e.Cluster.Shards())
	for i := range scheds {
		scheds[i] = e.Cluster.Shard(i).Sched()
	}
	return scheds
}

func (e *shardExec) ckptLinks(w *checkpoint.Writer, capOf capFn) { e.Cluster.SaveLinks(w, capOf) }
func (e *shardExec) unckptLinks(r *checkpoint.Reader)            { e.Cluster.RestoreLinks(r) }
func (e *shardExec) ckptFlows(w *checkpoint.Writer)              { e.Cluster.SaveFlows(w) }
func (e *shardExec) unckptFlows(r *checkpoint.Reader)            { e.Cluster.RestoreFlows(r) }
func (e *shardExec) ckptTransit(w *checkpoint.Writer, capOf capFn) {
	e.Cluster.SaveDeliveries(w, capOf)
	e.Cluster.SaveInjections(w, capOf)
}
func (e *shardExec) unckptTransit(r *checkpoint.Reader) {
	e.Cluster.RestoreDeliveries(r)
	e.Cluster.RestoreInjections(r)
}
func (e *shardExec) ckptLedger(w *checkpoint.Writer)   { e.Cluster.SaveLedger(w) }
func (e *shardExec) unckptLedger(r *checkpoint.Reader) { e.Cluster.RestoreLedger(r) }

// configDigest folds every field of the run's configuration that shapes
// its trajectory — scenario label, seed, topology, flow population,
// fault plan, churn classes, executor shape and epoch structure — into
// one 64-bit value. A snapshot restores only into a run whose digest
// matches exactly; anything else is a different simulation and resuming
// into it would silently corrupt output.
func configDigest(cfg *TopoSimConfig, shards, epochs int) uint64 {
	var d checkpoint.Digest
	d.Str("toposim")
	d.Str(cfg.Label)
	d.Int(cfg.Hops)
	d.F64(cfg.Capacity)
	d.Int(cfg.Buffer)
	d.F64(cfg.HopDelay)
	d.F64(cfg.AccessDelay)
	d.F64(cfg.RevDelay)
	d.Int(cfg.NTFRC)
	d.Int(cfg.NTCP)
	d.Int(cfg.CrossPerHop)
	d.F64(cfg.CrossRevDelay)
	d.F64(cfg.RTTSpread)
	d.Int(cfg.L)
	d.Bool(cfg.Comprehensive)
	d.F64(cfg.Duration)
	d.F64(cfg.Warmup)
	d.U64(cfg.Seed)
	d.F64(cfg.RevJitter)
	d.Bool(cfg.MirrorRev)
	d.Int(shards)
	d.Int(epochs)
	d.Bool(cfg.Faults != nil)
	if p := cfg.Faults; p != nil {
		d.U64(p.Seed)
		d.Int(len(p.Events))
		for _, ev := range p.Events {
			d.F64(ev.At)
			d.Int(int(ev.Link))
			d.Int(int(ev.Op))
			d.F64(ev.Rate)
			d.Int(int(ev.Policy))
		}
		d.Int(len(p.Losses))
		for _, ge := range p.Losses {
			d.Int(int(ge.Link))
			d.F64(ge.MeanGood)
			d.F64(ge.MeanBad)
			d.F64(ge.LossGood)
			d.F64(ge.LossBad)
		}
	}
	d.Bool(cfg.Watch != nil)
	if wt := cfg.Watch; wt != nil {
		d.F64(wt.Down)
		d.F64(wt.Up)
		d.F64(wt.Frac)
		d.F64(wt.Interval)
	}
	d.Int(len(cfg.Churn))
	for _, sp := range cfg.Churn {
		d.Str(sp.Name)
		d.Int(int(sp.Proto))
		d.Int(int(sp.Gap.Kind))
		d.F64(sp.Gap.Rate)
		d.F64(sp.Gap.Shape)
		d.F64(sp.Gap.Scale)
		d.Int(int(sp.Size.Kind))
		d.I64(sp.Size.Packets)
		d.F64(sp.Size.Shape)
		d.F64(sp.Size.MinPackets)
		d.I64(sp.Size.CapPackets)
		d.F64(sp.Start)
		d.F64(sp.Stop)
		d.Int(sp.MaxArrivals)
		d.U64(sp.Seed)
		d.Bool(sp.Reverse)
		d.F64(sp.CBRRate)
	}
	return d.Sum()
}

// instant is one stop of the measured window's stepping sequence: an
// epoch boundary, a checkpoint time, or both when they coincide. The
// sequence is pure float arithmetic from the config, so an interrupted
// run and its resumed continuation step through identical instants.
type instant struct {
	t     float64
	epoch int     // epoch index ending at t, -1 when not a boundary
	start float64 // the ending epoch's window start (epoch >= 0 only)
	save  bool    // write a snapshot at t
}

// topoCkpt drives one checkpoint-aware (or resuming) multi-hop run: it
// owns references to every stateful component the rebuild produced, in
// a fixed order, and sequences their Save/Restore hooks around the
// engine's RunUntil stepping.
type topoCkpt struct {
	cfg      *TopoSimConfig
	env      ckptExec
	ob       *obsRun
	armed    armedFault
	churn    churnEngine
	watchers []*rateWatch
	tfrcSnd  []tfrcSenderCkpt
	tfrcRcv  []tfrcReceiverCkpt
	tcpSnd   []tcpSenderCkpt
	tcpRcv   []tcpReceiverCkpt
	crossSnd []tcpSenderCkpt
	crossRcv []tcpReceiverCkpt

	// statResetters holds the builder's per-class resetStats closures,
	// run once when warmup ends (never on a resumed run, whose snapshot
	// postdates the reset).
	statResetters []func()

	end    float64
	digest uint64
	saving bool
	resume string // resume directory, "" when not resuming
}

// The protocol endpoints and engines are referenced through minimal
// interfaces so this file states exactly which hooks the driver uses.
type tfrcSenderCkpt interface {
	Save(w *checkpoint.Writer, cap *des.TimerCapture)
	Restore(r *checkpoint.Reader)
	Scheduler() *des.Scheduler
}
type tfrcReceiverCkpt = tfrcSenderCkpt
type tcpSenderCkpt = tfrcSenderCkpt
type tcpReceiverCkpt interface {
	Save(w *checkpoint.Writer)
	Restore(r *checkpoint.Reader)
}
type armedFault interface {
	Save(w *checkpoint.Writer, capOf capFn)
	Restore(r *checkpoint.Reader)
}
type churnEngine interface {
	Save(w *checkpoint.Writer, capOf capFn)
	Restore(r *checkpoint.Reader)
}

// run executes the measured portion of the simulation: warmup, stats
// reset, then the merged instant sequence, resuming from a snapshot
// when one is available. It replaces the plain warmup/runMeasured tail
// of RunTopoSim only when checkpointing or resuming is requested.
func (d *topoCkpt) run() {
	from := -1.0
	if d.resume != "" {
		if t, ok := d.tryResume(); ok {
			from = t
		}
	}
	if from < 0 {
		d.env.RunUntil(d.cfg.Warmup)
		d.resetAll()
		d.ob.begin()
		d.saveAt(d.cfg.Warmup)
		from = d.cfg.Warmup
	}
	for _, in := range d.instants() {
		if in.t <= from {
			continue
		}
		d.env.RunUntil(in.t)
		if in.epoch >= 0 {
			d.ob.boundary(in.epoch, in.start, in.t)
		}
		if in.save {
			d.saveAt(in.t)
		}
	}
}

// resetAll restarts every static sender's measurement window; churn
// flows attach after warmup and measure from their own start.
func (d *topoCkpt) resetAll() {
	for _, s := range d.statResetters {
		s()
	}
}

// instants returns the merged, sorted stepping sequence of the measured
// window: every epoch boundary and every checkpoint time, coinciding
// stops folded into one.
func (d *topoCkpt) instants() []instant {
	var list []instant
	from, to := d.cfg.Warmup, d.end
	if d.ob != nil && d.ob.epochs > 1 {
		n := d.ob.epochs
		w := (to - from) / float64(n)
		start := from
		for i := 0; i < n; i++ {
			end := from + w*float64(i+1)
			if i == n-1 {
				end = to
			}
			list = append(list, instant{t: end, epoch: i, start: start})
			start = end
		}
	}
	if d.saving {
		for k := 1; ; k++ {
			t := from + float64(k)*Checkpoint.Every
			if t >= to {
				break
			}
			list = append(list, instant{t: t, epoch: -1, save: true})
		}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].t < list[j].t })
	out := list[:0]
	for _, in := range list {
		if n := len(out); n > 0 && out[n-1].t == in.t {
			if in.epoch >= 0 {
				out[n-1].epoch = in.epoch
				out[n-1].start = in.start
			}
			out[n-1].save = out[n-1].save || in.save
			continue
		}
		out = append(out, in)
	}
	if n := len(out); n == 0 || out[n-1].t < to {
		out = append(out, instant{t: to, epoch: -1})
	}
	return out
}

// saveAt snapshots the full simulation state at the current (phase-
// aligned) instant and atomically replaces the job's snapshot file.
func (d *topoCkpt) saveAt(t float64) {
	if !d.saving {
		return
	}
	var w checkpoint.Writer
	d.save(&w)
	path := checkpoint.PathFor(Checkpoint.Dir, d.cfg.Label)
	if err := checkpoint.WriteFile(path, d.digest, w.Bytes()); err != nil {
		panic(fmt.Sprintf("experiments: writing checkpoint %s at t=%g: %v", path, t, err))
	}
}

// tryResume loads the job's snapshot from the resume directory. A
// missing file degrades to a from-scratch run (false); a present but
// corrupt or mismatched file is fatal — resuming it would corrupt
// output.
func (d *topoCkpt) tryResume() (float64, bool) {
	path := checkpoint.PathFor(d.resume, d.cfg.Label)
	digest, payload, err := checkpoint.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: resume: %v", err))
	}
	if digest != d.digest {
		panic(fmt.Sprintf(
			"experiments: resume %s: config digest mismatch: snapshot was written under config %016x, this run is config %016x; refusing to resume a different simulation",
			path, digest, d.digest))
	}
	r := checkpoint.NewReader(payload)
	now := d.restore(r)
	if err := r.Err(); err != nil {
		panic(fmt.Sprintf("experiments: resume %s: %v", path, err))
	}
	return now, true
}

// save writes the full simulation state in the fixed section order the
// restore path consumes: scheduler clocks, link contents, static
// protocol endpoints, recovery watchers, the armed fault plan, the
// churn engine, the per-flow overlay, in-flight hand-offs, the epoch
// log, and — last — the freelist ledgers.
func (d *topoCkpt) save(w *checkpoint.Writer) {
	capOf := captureAll()
	scheds := d.env.schedulers()
	w.Int(len(scheds))
	for _, s := range scheds {
		w.F64(s.Now())
		w.U64(s.Seq())
		w.U64(s.Fired())
		w.U64(s.Cascaded())
		w.Int(s.Pending())
	}
	d.env.ckptLinks(w, capOf)
	for i, snd := range d.tfrcSnd {
		snd.Save(w, capOf(snd.Scheduler()))
		d.tfrcRcv[i].Save(w, capOf(d.tfrcRcv[i].Scheduler()))
	}
	for i, snd := range d.tcpSnd {
		snd.Save(w, capOf(snd.Scheduler()))
		d.tcpRcv[i].Save(w)
	}
	for i, snd := range d.crossSnd {
		snd.Save(w, capOf(snd.Scheduler()))
		d.crossRcv[i].Save(w)
	}
	w.Int(len(d.watchers))
	for _, rw := range d.watchers {
		rw.save(w, capOf(rw.sched))
	}
	d.armed.Save(w, capOf)
	w.Bool(d.churn != nil)
	if d.churn != nil {
		d.churn.Save(w, capOf)
	}
	d.env.ckptFlows(w)
	d.env.ckptTransit(w, capOf)
	w.Bool(d.ob != nil)
	if d.ob != nil {
		d.ob.save(w)
	}
	d.env.ckptLedger(w)
}

// restore overlays a snapshot onto the freshly rebuilt simulation and
// returns the restored simulation time. The section order matches save;
// the sequencing constraints are structural: schedulers reset first (so
// every stale rebuild-time timer dies), protocol and churn restores
// re-arm their timers and re-attach churn flows before the flow overlay
// validates the attached population, and the ledgers restore last so
// the leak invariant holds the moment restore returns.
func (d *topoCkpt) restore(r *checkpoint.Reader) float64 {
	scheds := d.env.schedulers()
	if n := r.Count(); n != len(scheds) {
		r.Fail("snapshot has %d schedulers, this executor has %d", n, len(scheds))
		return 0
	}
	now := 0.0
	pending := make([]int, len(scheds))
	for i, s := range scheds {
		t := r.F64()
		seq := r.U64()
		fired := r.U64()
		cascaded := r.U64()
		pending[i] = r.Int()
		if r.Err() != nil {
			return 0
		}
		if t < d.cfg.Warmup || t > d.end {
			r.Fail("snapshot clock %g outside this run's measured window [%g, %g]",
				t, d.cfg.Warmup, d.end)
			return 0
		}
		s.Reset()
		s.RestoreClock(t, seq, fired, cascaded)
		now = t
	}
	d.env.unckptLinks(r)
	for i, snd := range d.tfrcSnd {
		if r.Err() != nil {
			return 0
		}
		snd.Restore(r)
		d.tfrcRcv[i].Restore(r)
	}
	for i, snd := range d.tcpSnd {
		if r.Err() != nil {
			return 0
		}
		snd.Restore(r)
		d.tcpRcv[i].Restore(r)
	}
	for i, snd := range d.crossSnd {
		if r.Err() != nil {
			return 0
		}
		snd.Restore(r)
		d.crossRcv[i].Restore(r)
	}
	if n := r.Count(); n != len(d.watchers) {
		r.Fail("snapshot has %d recovery watchers, rebuilt run has %d", n, len(d.watchers))
		return 0
	}
	for _, rw := range d.watchers {
		rw.restore(r)
	}
	d.armed.Restore(r)
	hadChurn := r.Bool()
	if hadChurn != (d.churn != nil) {
		r.Fail("snapshot and rebuilt run disagree on churn presence")
		return 0
	}
	if d.churn != nil {
		d.churn.Restore(r)
	}
	d.env.unckptFlows(r)
	d.env.unckptTransit(r)
	hadObs := r.Bool()
	if hadObs != (d.ob != nil) {
		r.Fail("snapshot and rebuilt run disagree on observability capture")
		return 0
	}
	if d.ob != nil {
		d.ob.restore(r)
	}
	d.env.unckptLedger(r)
	if r.Err() != nil {
		return 0
	}
	for i, s := range scheds {
		if got := s.Pending(); got != pending[i] {
			r.Fail("scheduler %d restored %d pending events, snapshot recorded %d",
				i, got, pending[i])
			return 0
		}
	}
	return now
}

// --- rateWatch checkpoint hooks ---

func (rw *rateWatch) save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.F64(rw.preRate)
	w.F64(rw.recoveredAt)
	w.Timer(cap.StateOf(rw.tm))
}

func (rw *rateWatch) restore(r *checkpoint.Reader) {
	rw.preRate = r.F64()
	rw.recoveredAt = r.F64()
	rw.tm = rw.sched.RestoreTimer(r.Timer(), rw.fn)
}

// --- obsRun checkpoint hooks ---

func saveEpoch(w *checkpoint.Writer, e obs.Epoch) {
	w.Int(e.Index)
	w.F64(e.Start)
	w.F64(e.End)
	w.U64(e.Fired)
	w.I64(e.Enqueued)
	w.I64(e.Forwarded)
	w.I64(e.Bytes)
	w.I64(e.QueueDrops)
	w.I64(e.EarlyDrops)
	w.I64(e.FaultDrops)
	w.Int(e.QueueLen)
	w.Int(e.Pending)
	w.I64(e.Outstanding)
}

func restoreEpoch(r *checkpoint.Reader) obs.Epoch {
	var e obs.Epoch
	e.Index = r.Int()
	e.Start = r.F64()
	e.End = r.F64()
	e.Fired = r.U64()
	e.Enqueued = r.I64()
	e.Forwarded = r.I64()
	e.Bytes = r.I64()
	e.QueueDrops = r.I64()
	e.EarlyDrops = r.I64()
	e.FaultDrops = r.I64()
	e.QueueLen = r.Int()
	e.Pending = r.Int()
	e.Outstanding = r.I64()
	return e
}

// save writes the capture's accumulated state: the previous-boundary
// totals, the epochs logged so far, and the boundary-aligned Unbounded
// queue samples.
func (o *obsRun) save(w *checkpoint.Writer) {
	saveEpoch(w, o.prev)
	n := 0
	if o.log != nil {
		n = len(o.log.Epochs)
	}
	w.Int(n)
	for i := 0; i < n; i++ {
		saveEpoch(w, o.log.Epochs[i])
	}
	w.Int(len(o.uhw))
	for i := range o.uhw {
		w.F64(o.uhw[i])
		w.F64(o.headroom[i])
	}
}

// restore overlays the capture state saved by save.
func (o *obsRun) restore(r *checkpoint.Reader) {
	o.prev = restoreEpoch(r)
	n := r.Count()
	if o.epochs > 1 && n > o.epochs {
		r.Fail("snapshot logged %d epochs, this run has %d", n, o.epochs)
		return
	}
	if o.log != nil {
		o.log.Epochs = o.log.Epochs[:0]
	}
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		e := restoreEpoch(r)
		if o.log != nil {
			o.log.Epochs = append(o.log.Epochs, e)
		}
	}
	m := r.Count()
	o.uhw, o.headroom = o.uhw[:0], o.headroom[:0]
	for i := 0; i < m; i++ {
		o.uhw = append(o.uhw, r.F64())
		o.headroom = append(o.headroom, r.F64())
	}
}
