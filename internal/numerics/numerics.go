// Package numerics provides the small numerical toolbox the reproduction
// needs and that the Go standard library lacks: convex closures of
// sampled functions (for Proposition 4 and Figure 2 of the paper), grid
// convexity checks, Brent root finding (for inverting throughput
// formulae), and trapezoid quadrature.
package numerics

import (
	"errors"
	"math"
	"sort"
)

// Func is a real function of one real variable.
type Func func(float64) float64

// Grid returns n points evenly spaced on [lo, hi] inclusive.
// It panics if n < 2 or hi <= lo.
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numerics: grid needs at least 2 points")
	}
	if hi <= lo {
		panic("numerics: empty grid interval")
	}
	xs := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	xs[n-1] = hi // avoid accumulation error at the right edge
	return xs
}

// LogGrid returns n points geometrically spaced on [lo, hi] inclusive,
// with lo > 0. Useful for loss-event-rate sweeps spanning decades.
func LogGrid(lo, hi float64, n int) []float64 {
	if lo <= 0 {
		panic("numerics: log grid needs positive lower bound")
	}
	if n < 2 || hi <= lo {
		panic("numerics: bad log grid")
	}
	xs := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range xs {
		xs[i] = x
		x *= ratio
	}
	xs[n-1] = hi
	return xs
}

// PiecewiseLinear is a piecewise-linear function through sorted sample
// points. It is the representation of a convex closure g** computed from
// a sampled g.
type PiecewiseLinear struct {
	xs, ys []float64
}

// NewPiecewiseLinear builds an interpolant from points that must be
// strictly increasing in x. It panics on fewer than 2 points or
// non-increasing x.
func NewPiecewiseLinear(xs, ys []float64) *PiecewiseLinear {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("numerics: piecewise-linear needs >= 2 matched points")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic("numerics: piecewise-linear x not strictly increasing")
		}
	}
	return &PiecewiseLinear{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
}

// Eval evaluates the interpolant, clamping outside the domain to the
// boundary segments extended linearly.
func (p *PiecewiseLinear) Eval(x float64) float64 {
	i := sort.SearchFloat64s(p.xs, x)
	switch {
	case i == 0:
		i = 1
	case i >= len(p.xs):
		i = len(p.xs) - 1
	}
	x0, x1 := p.xs[i-1], p.xs[i]
	y0, y1 := p.ys[i-1], p.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Domain returns the x-range spanned by the interpolant's knots.
func (p *PiecewiseLinear) Domain() (lo, hi float64) {
	return p.xs[0], p.xs[len(p.xs)-1]
}

// ConvexClosure samples f on the given grid and returns the largest
// convex function lying below the samples — the convex closure g** of the
// paper's Proposition 4 — as a piecewise-linear function through the
// lower convex hull of the sampled points (Andrew's monotone chain).
//
// The grid must be strictly increasing with at least 2 points.
func ConvexClosure(f Func, grid []float64) *PiecewiseLinear {
	if len(grid) < 2 {
		panic("numerics: convex closure needs >= 2 grid points")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(grid))
	for i, x := range grid {
		if i > 0 && x <= grid[i-1] {
			panic("numerics: convex closure grid not increasing")
		}
		pts[i] = pt{x, f(x)}
	}
	// Lower hull: keep only right turns (cross product <= 0 removes
	// points above the hull).
	hull := make([]pt, 0, len(pts))
	for _, p := range pts {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// If b is above segment a-p, drop b.
			cross := (b.x-a.x)*(p.y-a.y) - (b.y-a.y)*(p.x-a.x)
			if cross < 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	xs := make([]float64, len(hull))
	ys := make([]float64, len(hull))
	for i, p := range hull {
		xs[i], ys[i] = p.x, p.y
	}
	return NewPiecewiseLinear(xs, ys)
}

// DeviationFromConvexity returns r = sup_x g(x)/g**(x) over the grid,
// together with the x attaining the sup. This is the paper's measure of
// how far g deviates from convexity (r = 1.0026 for PFTK-standard with
// r=1, q=4r, b=2). g must be positive on the grid.
func DeviationFromConvexity(g Func, grid []float64) (ratio, argmax float64) {
	closure := ConvexClosure(g, grid)
	ratio = 1
	argmax = grid[0]
	for _, x := range grid {
		gx := g(x)
		cx := closure.Eval(x)
		if cx <= 0 {
			panic("numerics: convex closure non-positive; g must be positive")
		}
		if rr := gx / cx; rr > ratio {
			ratio = rr
			argmax = x
		}
	}
	return ratio, argmax
}

// IsConvexOnGrid reports whether f has non-negative discrete second
// differences at every interior grid point, within tolerance tol scaled
// by the local magnitude. A true result on a fine grid is strong evidence
// of convexity on the interval.
func IsConvexOnGrid(f Func, grid []float64, tol float64) bool {
	return secondDifferencesHaveSign(f, grid, tol, +1)
}

// IsConcaveOnGrid reports whether f has non-positive discrete second
// differences at every interior grid point, within tolerance.
func IsConcaveOnGrid(f Func, grid []float64, tol float64) bool {
	return secondDifferencesHaveSign(f, grid, tol, -1)
}

func secondDifferencesHaveSign(f Func, grid []float64, tol float64, sign int) bool {
	if len(grid) < 3 {
		panic("numerics: convexity check needs >= 3 grid points")
	}
	ys := make([]float64, len(grid))
	for i, x := range grid {
		ys[i] = f(x)
	}
	for i := 1; i+1 < len(grid); i++ {
		h1 := grid[i] - grid[i-1]
		h2 := grid[i+1] - grid[i]
		// Divided-difference second derivative estimate.
		d2 := 2 * (ys[i-1]/(h1*(h1+h2)) - ys[i]/(h1*h2) + ys[i+1]/(h2*(h1+h2)))
		scale := math.Max(1, math.Abs(ys[i]))
		switch sign {
		case +1:
			if d2 < -tol*scale {
				return false
			}
		case -1:
			if d2 > tol*scale {
				return false
			}
		}
	}
	return true
}

// ErrNoBracket is returned by Brent when f(a) and f(b) have the same sign.
var ErrNoBracket = errors.New("numerics: root not bracketed")

// ErrMaxIter is returned by Brent when the iteration budget is exhausted.
var ErrMaxIter = errors.New("numerics: brent did not converge")

// Brent finds a root of f in [a, b] using Brent's method. f(a) and f(b)
// must have opposite signs. tol is the absolute x tolerance.
func Brent(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for iter := 0; iter < 200; iter++ {
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		bisect := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if bisect {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
	}
	return 0, ErrMaxIter
}

// Trapezoid integrates f over [a, b] with n panels.
func Trapezoid(f Func, a, b float64, n int) float64 {
	if n < 1 {
		panic("numerics: trapezoid needs >= 1 panel")
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// MinOnGrid returns the grid point minimizing f and the minimum value.
func MinOnGrid(f Func, grid []float64) (argmin, min float64) {
	if len(grid) == 0 {
		panic("numerics: empty grid")
	}
	argmin, min = grid[0], f(grid[0])
	for _, x := range grid[1:] {
		if y := f(x); y < min {
			argmin, min = x, y
		}
	}
	return argmin, min
}

// MaxOnGrid returns the grid point maximizing f and the maximum value.
func MaxOnGrid(f Func, grid []float64) (argmax, max float64) {
	if len(grid) == 0 {
		panic("numerics: empty grid")
	}
	argmax, max = grid[0], f(grid[0])
	for _, x := range grid[1:] {
		if y := f(x); y > max {
			argmax, max = x, y
		}
	}
	return argmax, max
}
