package numerics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrid(t *testing.T) {
	g := Grid(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid = %v", g)
		}
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(0.001, 1, 4)
	if g[0] != 0.001 || g[3] != 1 {
		t.Fatalf("log grid endpoints = %v", g)
	}
	// Equal ratios between successive points.
	r1, r2 := g[1]/g[0], g[2]/g[1]
	if math.Abs(r1-r2) > 1e-9 {
		t.Fatalf("log grid not geometric: %v", g)
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	p := NewPiecewiseLinear([]float64{0, 1, 2}, []float64{0, 2, 2})
	if y := p.Eval(0.5); math.Abs(y-1) > 1e-12 {
		t.Fatalf("eval(0.5) = %v", y)
	}
	if y := p.Eval(1.5); math.Abs(y-2) > 1e-12 {
		t.Fatalf("eval(1.5) = %v", y)
	}
	// Extrapolation uses the boundary segments.
	if y := p.Eval(-1); math.Abs(y-(-2)) > 1e-12 {
		t.Fatalf("eval(-1) = %v", y)
	}
	lo, hi := p.Domain()
	if lo != 0 || hi != 2 {
		t.Fatalf("domain = %v..%v", lo, hi)
	}
}

func TestConvexClosureOfConvexIsIdentity(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	grid := Grid(-2, 2, 101)
	cc := ConvexClosure(f, grid)
	for _, x := range grid {
		if diff := math.Abs(cc.Eval(x) - f(x)); diff > 1e-9 {
			t.Fatalf("closure of convex deviates at %v by %v", x, diff)
		}
	}
}

func TestConvexClosureBridgesConcaveBump(t *testing.T) {
	// f has a concave bump on [0,1]; its closure must be the chord there.
	f := func(x float64) float64 {
		if x >= 0 && x <= 1 {
			return math.Sin(math.Pi * x) // bump above 0
		}
		return 0
	}
	grid := Grid(-1, 2, 301)
	cc := ConvexClosure(f, grid)
	// The closure should be ~0 across the bump (chord from (0,0) to (1,0)
	// extended by the flat wings).
	if v := cc.Eval(0.5); v > 1e-6 {
		t.Fatalf("closure over bump = %v, want ~0", v)
	}
	// And it is always <= f.
	for _, x := range grid {
		if cc.Eval(x) > f(x)+1e-9 {
			t.Fatalf("closure above function at %v", x)
		}
	}
}

func TestDeviationFromConvexity(t *testing.T) {
	// A convex function deviates by exactly 1.
	ratio, _ := DeviationFromConvexity(func(x float64) float64 { return math.Exp(x) }, Grid(0, 2, 200))
	if math.Abs(ratio-1) > 1e-9 {
		t.Fatalf("convex deviation = %v", ratio)
	}
	// A function with a bump deviates by more than 1 at the bump.
	g := func(x float64) float64 { return 1 + 0.1*math.Exp(-(x-1)*(x-1)*50) }
	ratio, arg := DeviationFromConvexity(g, Grid(0, 2, 2001))
	if ratio <= 1.05 {
		t.Fatalf("bump deviation = %v, want > 1.05", ratio)
	}
	if math.Abs(arg-1) > 0.05 {
		t.Fatalf("bump argmax = %v, want ~1", arg)
	}
}

func TestConvexityChecks(t *testing.T) {
	grid := Grid(0.1, 5, 200)
	if !IsConvexOnGrid(func(x float64) float64 { return 1 / x }, grid, 1e-9) {
		t.Fatal("1/x should be convex on (0,inf)")
	}
	if !IsConcaveOnGrid(math.Sqrt, grid, 1e-9) {
		t.Fatal("sqrt should be concave")
	}
	if IsConvexOnGrid(math.Sqrt, grid, 1e-9) {
		t.Fatal("sqrt is not convex")
	}
	if IsConcaveOnGrid(func(x float64) float64 { return x * x }, grid, 1e-9) {
		t.Fatal("x^2 is not concave")
	}
	// Linear functions are both convex and concave.
	lin := func(x float64) float64 { return 3*x + 1 }
	if !IsConvexOnGrid(lin, grid, 1e-9) || !IsConcaveOnGrid(lin, grid, 1e-9) {
		t.Fatal("linear should be both convex and concave")
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("sqrt2 root = %v", root)
	}
	root, err = Brent(math.Cos, 1, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Pi/2) > 1e-9 {
		t.Fatalf("cos root = %v", root)
	}
}

func TestBrentEndpointRoot(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || root != 0 {
		t.Fatalf("endpoint root = %v, %v", root, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestTrapezoid(t *testing.T) {
	got := Trapezoid(func(x float64) float64 { return x * x }, 0, 1, 10000)
	if math.Abs(got-1.0/3) > 1e-6 {
		t.Fatalf("integral of x^2 = %v", got)
	}
	got = Trapezoid(math.Sin, 0, math.Pi, 10000)
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("integral of sin = %v", got)
	}
}

func TestMinMaxOnGrid(t *testing.T) {
	grid := Grid(-2, 2, 401)
	arg, v := MinOnGrid(func(x float64) float64 { return (x - 1) * (x - 1) }, grid)
	if math.Abs(arg-1) > 0.02 || v > 1e-3 {
		t.Fatalf("min at %v = %v", arg, v)
	}
	arg, v = MaxOnGrid(func(x float64) float64 { return -(x + 1) * (x + 1) }, grid)
	if math.Abs(arg+1) > 0.02 || v < -1e-3 {
		t.Fatalf("max at %v = %v", arg, v)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { Grid(0, 1, 1) },
		func() { Grid(1, 0, 5) },
		func() { LogGrid(0, 1, 5) },
		func() { NewPiecewiseLinear([]float64{1}, []float64{1}) },
		func() { NewPiecewiseLinear([]float64{1, 1}, []float64{1, 2}) },
		func() { ConvexClosure(math.Sqrt, []float64{1}) },
		func() { Trapezoid(math.Sin, 0, 1, 0) },
		func() { MinOnGrid(math.Sin, nil) },
		func() { IsConvexOnGrid(math.Sin, []float64{0, 1}, 1e-9) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the convex closure never exceeds the function on the grid,
// and its deviation ratio is >= 1.
func TestQuickClosureBelowFunction(t *testing.T) {
	f := func(a, b, c uint8) bool {
		// Random cubic-ish positive function.
		ca := 0.5 + float64(a)/64
		cb := float64(b)/128 - 1
		cc := float64(c) / 255
		g := func(x float64) float64 { return 2 + ca*x*x + cb*x + cc*math.Sin(3*x) }
		grid := Grid(0.1, 4, 101)
		// Ensure positivity so DeviationFromConvexity is defined.
		for _, x := range grid {
			if g(x) <= 0 {
				return true
			}
		}
		closure := ConvexClosure(g, grid)
		for _, x := range grid {
			if closure.Eval(x) > g(x)+1e-7 {
				return false
			}
		}
		ratio, _ := DeviationFromConvexity(g, grid)
		return ratio >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Brent finds a root of monotone-increasing cubics bracketed
// around their sign change.
func TestQuickBrentCubic(t *testing.T) {
	f := func(shift uint8) bool {
		s := float64(shift)/32 - 4 // root location in [-4, 4)
		fn := func(x float64) float64 { return (x - s) * ((x-s)*(x-s) + 1) }
		root, err := Brent(fn, -10, 10, 1e-10)
		if err != nil {
			return false
		}
		return math.Abs(root-s) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
