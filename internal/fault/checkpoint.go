package fault

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
)

// Save writes the armed plan's run-time phase: per-event timer state
// (fired events save as dead timers) and per-link control state. capOf
// maps a scheduler to the capture of its timer population, so a plan
// spanning several shards saves against the right capture per event.
// Saving a nil Armed writes an empty section that restores against nil.
func (a *Armed) Save(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	if a == nil {
		w.Int(0)
		w.Int(0)
		return
	}
	w.Int(len(a.events))
	for _, e := range a.events {
		w.Timer(capOf(e.sched).StateOf(e.tm))
	}
	w.Int(len(a.ctls))
	for _, c := range a.ctls {
		w.Int(int(c.id))
		w.Bool(c.down)
		w.Bool(c.inBad)
		if c.ge {
			for _, word := range c.rnd.State() {
				w.U64(word)
			}
		}
	}
}

// Restore overlays state saved by Save onto a freshly re-armed plan:
// events the snapshot saw fire stay fired (the scheduler reset already
// discarded their rebuild arming), pending ones are re-armed with their
// original identity, and the link controls pick up their outage and
// loss-chain phase. Run it after the schedulers have been reset and
// their clocks restored.
func (a *Armed) Restore(r *checkpoint.Reader) {
	n := r.Count()
	if a == nil {
		if n != 0 || r.Count() != 0 {
			r.Fail("fault snapshot is non-empty but the rebuilt run armed no plan")
		}
		return
	}
	if n != len(a.events) {
		r.Fail("fault snapshot has %d events, rebuilt plan armed %d", n, len(a.events))
		return
	}
	for i := range a.events {
		e := &a.events[i]
		e.tm = e.sched.RestoreTimer(r.Timer(), e.fn)
	}
	c := r.Count()
	if c != len(a.ctls) {
		r.Fail("fault snapshot has %d link controls, rebuilt plan has %d", c, len(a.ctls))
		return
	}
	for _, ctl := range a.ctls {
		if r.Err() != nil {
			return
		}
		if id := r.Int(); id != int(ctl.id) {
			r.Fail("fault snapshot control is for link %d, rebuilt control is for link %d", id, ctl.id)
			return
		}
		ctl.down = r.Bool()
		ctl.inBad = r.Bool()
		if ctl.ge {
			var st [4]uint64
			for i := range st {
				st[i] = r.U64()
			}
			if r.Err() == nil {
				ctl.rnd.SetState(st)
			}
		}
	}
}
