package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// oneLinkHost is a minimal Host: one link on one scheduler.
type oneLinkHost struct {
	sched *des.Scheduler
	link  *netsim.Link
}

func (h *oneLinkHost) Links() int                               { return 1 }
func (h *oneLinkHost) Link(topology.LinkID) *netsim.Link        { return h.link }
func (h *oneLinkHost) LinkSched(topology.LinkID) *des.Scheduler { return h.sched }

func newOneLinkHost(rate, delay float64, queue netsim.Queue) *oneLinkHost {
	sched := &des.Scheduler{}
	return &oneLinkHost{sched: sched, link: netsim.NewLink(sched, rate, delay, queue)}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"link out of range", Plan{Events: []Event{{At: 1, Link: 9, Op: Down}}}, "out of range"},
		{"negative time", Plan{Events: []Event{{At: -1, Link: 0, Op: Down}}}, "negative time"},
		{"non-positive rate", Plan{Events: []Event{{At: 1, Link: 0, Op: SetRate, Rate: 0}}}, "must be positive"},
		{"double down", Plan{Events: []Event{
			{At: 1, Link: 0, Op: Down}, {At: 2, Link: 0, Op: Down}}}, "already down"},
		{"up while up", Plan{Events: []Event{{At: 1, Link: 0, Op: Up}}}, "already up"},
		{"loss link out of range", Plan{Losses: []GE{{Link: 3, MeanGood: 10, MeanBad: 10, LossBad: 0.5}}}, "out of range"},
		{"duplicate loss process", Plan{Losses: []GE{
			{Link: 0, MeanGood: 10, MeanBad: 10, LossBad: 0.5},
			{Link: 0, MeanGood: 20, MeanBad: 10, LossBad: 0.5}}}, "already has a loss process"},
		{"sub-packet sojourn", Plan{Losses: []GE{{Link: 0, MeanGood: 0.5, MeanBad: 10, LossBad: 0.5}}}, ">= 1 packet"},
		{"loss probability out of range", Plan{Losses: []GE{{Link: 0, MeanGood: 10, MeanBad: 10, LossBad: 1.5}}}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Plan{
		Events: []Event{
			{At: 2, Link: 0, Op: Down, Policy: Flush},
			{At: 4, Link: 0, Op: Up},
			{At: 5, Link: 0, Op: Down},
			{At: 6, Link: 0, Op: Up},
			{At: 1, Link: 1, Op: SetRate, Rate: 1e5},
		},
		Losses: []GE{{Link: 1, MeanGood: 100, MeanBad: 10, LossBad: 0.5}},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// The long-run loss rate of an armed Gilbert–Elliott process must
// converge to the analytic stationary probability: the occupancy-
// weighted drop rate (1-p_bad)·loss_good + p_bad·loss_bad.
func TestGEStationaryLossConvergence(t *testing.T) {
	grid := []GE{
		{MeanGood: 100, MeanBad: 10, LossBad: 0.5},
		{MeanGood: 50, MeanBad: 50, LossBad: 0.2},
		{MeanGood: 500, MeanBad: 20, LossBad: 1.0},
		{MeanGood: 200, MeanBad: 40, LossGood: 0.01, LossBad: 0.6},
		{MeanGood: 1000, MeanBad: 5, LossBad: 0.9},
		{MeanGood: 1, MeanBad: 1, LossBad: 0.3},
	}
	const n = 400000
	for gi, g := range grid {
		h := newOneLinkHost(1e6, 0.01, netsim.NewUnbounded())
		h.link.Deliver = func(p *netsim.Packet) {}
		plan := &Plan{Seed: 0xfa0 + uint64(gi), Losses: []GE{g}}
		if _, err := Arm(h, plan); err != nil {
			t.Fatalf("grid %d: %v", gi, err)
		}
		dropped := 0
		var p netsim.Packet
		for i := 0; i < n; i++ {
			if h.link.Fault(&p) {
				dropped++
			}
		}
		got := float64(dropped) / n
		want := g.StationaryLoss()
		if math.Abs(got-want) > 0.10*want+0.002 {
			t.Errorf("grid %d (%+v): observed loss %.5f, analytic %.5f", gi, g, got, want)
		}
	}
}

// A flapped link drops arrivals only while down, counts them in
// FaultDrops, and the Drain policy lets queued packets complete.
func TestFlapDrainSemantics(t *testing.T) {
	h := newOneLinkHost(1000, 0.05, netsim.NewDropTail(32)) // 1 pkt of 1000B per second
	delivered, released := 0, 0
	h.link.Deliver = func(p *netsim.Packet) { delivered++ }
	h.link.Release = func(p *netsim.Packet) { released++ }

	plan := (&Plan{}).Flap(0, 10, 20, Drain)
	if _, err := Arm(h, plan); err != nil {
		t.Fatal(err)
	}
	// Four packets at t=0: 4 s of backlog, all drain before the outage.
	for i := 0; i < 4; i++ {
		h.sched.At(0, func() { h.link.Send(&netsim.Packet{Size: 1000}) })
	}
	// Two packets during the outage: dropped on arrival.
	h.sched.At(12, func() { h.link.Send(&netsim.Packet{Size: 1000}) })
	h.sched.At(15, func() { h.link.Send(&netsim.Packet{Size: 1000}) })
	// One after restoration: delivered.
	h.sched.At(25, func() { h.link.Send(&netsim.Packet{Size: 1000}) })
	h.sched.RunUntil(40)

	if delivered != 5 || released != 2 || h.link.FaultDrops != 2 {
		t.Fatalf("delivered=%d released=%d faultDrops=%d, want 5/2/2",
			delivered, released, h.link.FaultDrops)
	}
	if h.link.InFlight() != 0 {
		t.Fatalf("in flight = %d after drain", h.link.InFlight())
	}
}

// The Flush policy discards the backlog at Down time; only the packet
// already serializing survives.
func TestFlapFlushSemantics(t *testing.T) {
	h := newOneLinkHost(1000, 0.05, netsim.NewDropTail(32))
	delivered, released := 0, 0
	h.link.Deliver = func(p *netsim.Packet) { delivered++ }
	h.link.Release = func(p *netsim.Packet) { released++ }

	plan := (&Plan{}).Flap(0, 0.5, 20, Flush)
	if _, err := Arm(h, plan); err != nil {
		t.Fatal(err)
	}
	// Four packets at t=0: the first serializes until t=1, the other
	// three are queued when the link goes down at t=0.5 and are flushed.
	for i := 0; i < 4; i++ {
		h.sched.At(0, func() { h.link.Send(&netsim.Packet{Size: 1000}) })
	}
	h.sched.RunUntil(40)

	if delivered != 1 || released != 3 || h.link.FaultDrops != 3 {
		t.Fatalf("delivered=%d released=%d faultDrops=%d, want 1/3/3",
			delivered, released, h.link.FaultDrops)
	}
	if h.link.InFlight() != 0 {
		t.Fatalf("in flight = %d after drain", h.link.InFlight())
	}
}

// SetRate stretches or shrinks serialization from the next packet on;
// the packet in service keeps its old departure time.
func TestSetRateRenegotiation(t *testing.T) {
	h := newOneLinkHost(1000, 0, netsim.NewDropTail(32))
	var arrivals []float64
	h.link.Deliver = func(p *netsim.Packet) { arrivals = append(arrivals, h.sched.Now()) }

	// Halve the rate at t=0.5, mid-service of the first packet.
	plan := &Plan{Events: []Event{{At: 0.5, Link: 0, Op: SetRate, Rate: 500}}}
	if _, err := Arm(h, plan); err != nil {
		t.Fatal(err)
	}
	h.sched.At(0, func() {
		h.link.Send(&netsim.Packet{Size: 1000})
		h.link.Send(&netsim.Packet{Size: 1000})
	})
	h.sched.RunUntil(10)

	// First packet: 1 s at the old rate. Second: 2 s at the new rate.
	want := []float64{1, 3}
	if len(arrivals) != 2 || math.Abs(arrivals[0]-want[0]) > 1e-9 || math.Abs(arrivals[1]-want[1]) > 1e-9 {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
}

// Arm on a nil plan is a no-op; a rate-only plan installs no Fault hook
// on the link (the hot path keeps its nil check).
func TestArmMinimality(t *testing.T) {
	h := newOneLinkHost(1000, 0, netsim.NewDropTail(32))
	h.link.Deliver = func(p *netsim.Packet) {}
	if _, err := Arm(h, nil); err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Events: []Event{{At: 1, Link: 0, Op: SetRate, Rate: 2000}}}
	if _, err := Arm(h, plan); err != nil {
		t.Fatal(err)
	}
	if h.link.Fault != nil {
		t.Fatal("rate-only plan installed a Fault hook")
	}
	h.sched.RunUntil(2)
	if h.link.Rate != 2000 {
		t.Fatalf("rate = %v after renegotiation, want 2000", h.link.Rate)
	}
}

// Per-link streams must differ: two links with the same GE parameters
// draw different lotteries from the same plan seed.
func TestPerLinkStreamsIndependent(t *testing.T) {
	mk := func(link topology.LinkID) []bool {
		h := newOneLinkHost(1e6, 0.01, netsim.NewUnbounded())
		h.link.Deliver = func(p *netsim.Packet) {}
		g := GE{Link: 0, MeanGood: 20, MeanBad: 5, LossBad: 0.8}
		// Arm against link id 0 but seed the stream as the given id.
		plan := &Plan{Seed: LinkSeed(42, link), Losses: []GE{g}}
		if _, err := Arm(h, plan); err != nil {
			t.Fatal(err)
		}
		var p netsim.Packet
		out := make([]bool, 2000)
		for i := range out {
			out[i] = h.link.Fault(&p)
		}
		return out
	}
	a, b := mk(0), mk(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two links drew identical loss lotteries from one plan seed")
	}
}
