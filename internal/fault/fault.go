// Package fault injects deterministic failures into a running
// simulation: scheduled link outages, runtime capacity renegotiation
// and Gilbert–Elliott bursty loss processes, all expressed as a
// declarative Plan of timed events armed before the run starts.
//
// # Determinism
//
// Every fault is an ordinary DES event on the scheduler that owns the
// affected link (Host.LinkSched), armed in plan order before simulated
// time advances. On the sharded engine each event therefore fires on
// the shard that serializes the link's packets — fault state is only
// ever touched from the link's own scheduler, no cross-shard writes —
// and the bursty-loss lottery draws from a dedicated per-link RNG
// stream (LinkSeed) advanced once per packet offered to the link.
// Packet arrival order at a link is part of the executor determinism
// contract, so the same plan produces byte-identical trajectories on
// the serial engine and at any shard or worker count.
//
// # Delay immutability
//
// The Plan grammar has no operation that changes a link's propagation
// delay, by design rather than omission: the sharded executor computes
// its conservative lookahead horizon from the cut links' delays once,
// at seal time. A delay that shrank mid-run would silently invalidate
// the horizon and with it the whole conservative synchronization
// argument. Rates, by contrast, only stretch serialization times on the
// owning shard and are freely renegotiable.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Policy selects what happens to packets already inside a link at the
// moment it goes down. Packets in serialization or propagation complete
// under either policy: their bits are on the wire.
type Policy int

const (
	// Drain keeps the queued packets: they transmit and arrive normally,
	// only new arrivals are dropped while the link is down. Models an
	// interface that stops accepting but finishes its backlog.
	Drain Policy = iota
	// Flush discards the queued packets immediately through the link's
	// Release sink. Models a line card losing its buffer at failure.
	Flush
)

func (p Policy) String() string {
	if p == Flush {
		return "flush"
	}
	return "drain"
}

// Op is the kind of a timed fault action.
type Op int

const (
	// Down takes the link out of service: every packet offered while
	// down is dropped through the Release sink (and counted in the
	// link's FaultDrops).
	Down Op = iota
	// Up restores a downed link.
	Up
	// SetRate renegotiates the link's transmission rate to Event.Rate.
	// Packets already serializing keep their old departure time.
	SetRate
)

// Event is one timed fault action against one link.
type Event struct {
	// At is the simulated time the action fires, in seconds.
	At float64
	// Link identifies the affected link.
	Link topology.LinkID
	// Op is the action kind.
	Op Op
	// Rate is the renegotiated rate in bytes/second (SetRate only).
	Rate float64
	// Policy picks the fate of queued packets (Down only).
	Policy Policy
}

// GE is a per-link Gilbert–Elliott bursty loss process: a two-state
// Markov chain advanced once per packet offered to the link, dropping
// with LossGood probability in the good state and LossBad in the bad
// state. The chain starts good.
type GE struct {
	// Link identifies the affected link.
	Link topology.LinkID
	// MeanGood and MeanBad are the mean state sojourn times in packets
	// (>= 1); the per-packet transition probabilities are their
	// reciprocals.
	MeanGood, MeanBad float64
	// LossGood and LossBad are the per-packet drop probabilities in each
	// state, in [0, 1]. LossGood is usually 0.
	LossGood, LossBad float64
}

// StationaryBad returns the stationary probability of the bad state:
// with transition probabilities 1/MeanGood and 1/MeanBad, a fraction
// MeanBad/(MeanGood+MeanBad) of packets see the chain in the bad state.
func (g GE) StationaryBad() float64 { return g.MeanBad / (g.MeanGood + g.MeanBad) }

// StationaryLoss returns the analytic long-run packet loss rate of the
// process: the state-occupancy-weighted drop probability.
func (g GE) StationaryLoss() float64 {
	pb := g.StationaryBad()
	return (1-pb)*g.LossGood + pb*g.LossBad
}

// Plan is a declarative fault schedule: timed events plus per-link loss
// processes. A zero Plan is valid and does nothing. Plans are pure data
// — reusable across runs and executors — and are bound to a simulation
// by Arm.
type Plan struct {
	// Seed derives the per-link RNG streams of the loss processes (see
	// LinkSeed). Two runs arming the same plan draw identical lotteries.
	Seed uint64
	// Events are the timed actions, applied in (At, declaration) order.
	Events []Event
	// Losses are the per-link Gilbert–Elliott processes, at most one per
	// link, active for the whole run.
	Losses []GE
}

// Flap appends a Down at downAt and the matching Up at upAt.
func (p *Plan) Flap(link topology.LinkID, downAt, upAt float64, policy Policy) *Plan {
	p.Events = append(p.Events,
		Event{At: downAt, Link: link, Op: Down, Policy: policy},
		Event{At: upAt, Link: link, Op: Up})
	return p
}

// Squeeze appends a SetRate to rate at from and the restoring SetRate
// back to restore at until.
func (p *Plan) Squeeze(link topology.LinkID, from, until, rate, restore float64) *Plan {
	p.Events = append(p.Events,
		Event{At: from, Link: link, Op: SetRate, Rate: rate},
		Event{At: until, Link: link, Op: SetRate, Rate: restore})
	return p
}

// Burst appends a Gilbert–Elliott loss process on the link.
func (p *Plan) Burst(link topology.LinkID, meanGood, meanBad, lossBad float64) *Plan {
	p.Losses = append(p.Losses, GE{Link: link, MeanGood: meanGood, MeanBad: meanBad, LossBad: lossBad})
	return p
}

// Validate checks the plan against a topology with the given number of
// links: ids in range, non-negative times, positive renegotiated rates,
// well-formed loss processes, and strict Down/Up alternation per link.
// Note what is absent: no event kind can change a propagation delay —
// delays are immutable by design (see the package comment), so a valid
// plan can never invalidate the sharded executor's lookahead horizon.
func (p *Plan) Validate(links int) error {
	byLink := map[topology.LinkID][]Event{}
	for i, ev := range p.Events {
		if int(ev.Link) >= links || ev.Link < 0 {
			return fmt.Errorf("fault: event %d: link %d out of range (topology has %d)", i, ev.Link, links)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative time %v", i, ev.At)
		}
		switch ev.Op {
		case Down, Up:
			byLink[ev.Link] = append(byLink[ev.Link], ev)
		case SetRate:
			if ev.Rate <= 0 {
				return fmt.Errorf("fault: event %d: renegotiated rate %v must be positive", i, ev.Rate)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown op %d", i, ev.Op)
		}
	}
	for link, evs := range byLink {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		down := false
		for _, ev := range evs {
			if (ev.Op == Down) == down {
				state := "up"
				if down {
					state = "down"
				}
				return fmt.Errorf("fault: link %d: %v at t=%v while already %s (Down/Up must alternate)", link, ev.Op, ev.At, state)
			}
			down = ev.Op == Down
		}
	}
	seen := map[topology.LinkID]bool{}
	for i, g := range p.Losses {
		if int(g.Link) >= links || g.Link < 0 {
			return fmt.Errorf("fault: loss %d: link %d out of range (topology has %d)", i, g.Link, links)
		}
		if seen[g.Link] {
			return fmt.Errorf("fault: loss %d: link %d already has a loss process", i, g.Link)
		}
		seen[g.Link] = true
		if g.MeanGood < 1 || g.MeanBad < 1 {
			return fmt.Errorf("fault: loss %d: mean sojourns (%v, %v) must be >= 1 packet", i, g.MeanGood, g.MeanBad)
		}
		if g.LossGood < 0 || g.LossGood > 1 || g.LossBad < 0 || g.LossBad > 1 {
			return fmt.Errorf("fault: loss %d: drop probabilities (%v, %v) outside [0, 1]", i, g.LossGood, g.LossBad)
		}
	}
	return nil
}

// Host is the simulation surface a plan arms against. Both engines
// satisfy it: *topology.Network directly, *shard.Cluster after
// Partition (and the experiments executor seam by embedding either).
type Host interface {
	// Links returns the number of links in the topology.
	Links() int
	// Link returns the materialized link behind an id.
	Link(id topology.LinkID) *netsim.Link
	// LinkSched returns the scheduler that owns the link — where its
	// Send path executes and where fault events against it must fire.
	LinkSched(id topology.LinkID) *des.Scheduler
}

// TracedHost is the optional observability extension of Host: a host
// that can name the event tracer of the domain owning a link. Arm uses
// it (when implemented and the tracer is non-nil) to emit fault
// transitions — EvFaultDown, EvFaultUp, EvFaultRate — into the owning
// shard's ring, keeping emission single-threaded on the sharded engine.
// Both engines implement it; with tracing off the tracer is nil and
// every emission is a nil-sink no-op.
type TracedHost interface {
	LinkTracer(id topology.LinkID) *obs.Tracer
}

// LinkSeed derives the dedicated RNG stream seed of one link's loss
// process from the plan seed, with the same avalanche mixing the
// topology layer uses for per-flow jitter streams: links with adjacent
// ids get statistically independent streams.
func LinkSeed(seed uint64, link topology.LinkID) uint64 {
	return seed ^ (uint64(link)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
}

// linkCtl is the armed per-link fault state: the Fault hook installed
// on the link closes over it. It is only ever touched from the link's
// owning scheduler.
type linkCtl struct {
	link  *netsim.Link
	id    topology.LinkID
	trace *obs.Tracer
	down  bool

	ge    bool
	inBad bool
	pGB   float64 // good -> bad per-packet transition probability
	pBG   float64 // bad -> good
	lossG float64
	lossB float64
	rnd   rng.RNG
}

// fault is the netsim.Link Fault hook: drop everything while down, then
// run the Gilbert–Elliott lottery. The chain advances once per offered
// packet (state first, then the drop draw), so the stationary packet
// loss rate is exactly the state-weighted drop probability.
func (c *linkCtl) fault(*netsim.Packet) bool {
	if c.down {
		return true
	}
	if !c.ge {
		return false
	}
	if c.inBad {
		if c.rnd.Float64() < c.pBG {
			c.inBad = false
		}
	} else {
		if c.rnd.Float64() < c.pGB {
			c.inBad = true
		}
	}
	loss := c.lossG
	if c.inBad {
		loss = c.lossB
	}
	return loss > 0 && c.rnd.Float64() < loss
}

func (c *linkCtl) apply(ev Event) {
	switch ev.Op {
	case Down:
		c.down = true
		if ev.Policy == Flush {
			c.link.FlushQueue()
		}
		c.trace.Emit(ev.At, obs.EvFaultDown, -1, int32(c.id), float64(ev.Policy))
	case Up:
		c.down = false
		c.trace.Emit(ev.At, obs.EvFaultUp, -1, int32(c.id), 0)
	case SetRate:
		c.link.Rate = ev.Rate
		c.trace.Emit(ev.At, obs.EvFaultRate, -1, int32(c.id), ev.Rate)
	}
}

// armedEvent is one scheduled plan event held for checkpointing: the
// scheduler it fired on, the bound closure, and the live timer.
type armedEvent struct {
	sched *des.Scheduler
	fn    des.Event
	tm    des.Timer
}

// Armed is the run-time handle Arm returns: the scheduled events in
// plan order and the per-link fault controls in link-id order. A nil
// Armed (from arming a nil plan) is valid and saves as empty.
type Armed struct {
	events []armedEvent
	ctls   []*linkCtl
}

// Arm validates the plan against the host and schedules every event on
// the scheduler owning its link, installing Fault hooks on the links
// that need one (outages and loss processes; pure rate renegotiation
// does not inspect packets). Call it after the topology is frozen —
// links materialized — and before simulated time advances, in a fixed
// position of the setup sequence: armed events carry the arming-time
// scheduling key, which is how they keep a stable order against
// same-instant runtime events on every executor. The returned handle
// exposes the armed state to the checkpoint layer; callers that never
// snapshot may discard it.
func Arm(h Host, p *Plan) (*Armed, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(h.Links()); err != nil {
		return nil, err
	}
	th, _ := h.(TracedHost)
	a := &Armed{}
	ctls := map[topology.LinkID]*linkCtl{}
	hook := func(id topology.LinkID) *linkCtl {
		c := ctls[id]
		if c == nil {
			c = &linkCtl{link: h.Link(id), id: id}
			if th != nil {
				c.trace = th.LinkTracer(id)
			}
			c.link.Fault = c.fault
			ctls[id] = c
			a.ctls = append(a.ctls, c)
		}
		return c
	}
	for _, g := range p.Losses {
		c := hook(g.Link)
		c.ge = true
		c.pGB = 1 / g.MeanGood
		c.pBG = 1 / g.MeanBad
		c.lossG = g.LossGood
		c.lossB = g.LossBad
		c.rnd = *rng.New(LinkSeed(p.Seed, g.Link))
	}
	for _, ev := range p.Events {
		var fn des.Event
		if ev.Op == SetRate && ctls[ev.Link] == nil {
			// Rate renegotiation needs no packet inspection: apply
			// straight to the link, no hook installed.
			l := h.Link(ev.Link)
			var tr *obs.Tracer
			if th != nil {
				tr = th.LinkTracer(ev.Link)
			}
			ev := ev
			fn = func() {
				l.Rate = ev.Rate
				tr.Emit(ev.At, obs.EvFaultRate, -1, int32(ev.Link), ev.Rate)
			}
		} else {
			c := hook(ev.Link)
			ev := ev
			fn = func() { c.apply(ev) }
		}
		sched := h.LinkSched(ev.Link)
		a.events = append(a.events, armedEvent{sched: sched, fn: fn, tm: sched.At(ev.At, fn)})
	}
	sort.Slice(a.ctls, func(i, j int) bool { return a.ctls[i].id < a.ctls[j].id })
	return a, nil
}
