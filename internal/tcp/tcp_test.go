package tcp

import (
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
)

// buildDumbbell returns a dumbbell with a DropTail bottleneck of the
// given rate (bytes/s), one-way propagation delay, and buffer packets.
func buildDumbbell(s *des.Scheduler, rate, delay float64, buffer int) *topology.Dumbbell {
	link := netsim.NewLink(s, rate, delay, netsim.NewDropTail(buffer))
	return topology.NewDumbbell(s, link)
}

func TestSingleFlowFillsLink(t *testing.T) {
	var s des.Scheduler
	// 10 Mb/s = 1.25e6 B/s, 10 ms one way, buffer 64.
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, rcv := NewFlow(&s, net, 1, DefaultConfig(), 0.0, 0.015)
	snd.Start()
	s.RunUntil(20)
	snd.ResetStats()
	s.RunUntil(120)
	st := snd.Stats()
	// Link capacity is 1250 pkts/s; a single long-lived TCP should fill
	// most of it.
	if st.Throughput < 1000 {
		t.Fatalf("throughput = %v pkts/s, want > 1000 (cap 1250)", st.Throughput)
	}
	if st.Throughput > 1300 {
		t.Fatalf("throughput = %v pkts/s above capacity", st.Throughput)
	}
	if st.LossEvents == 0 {
		t.Fatal("no loss events: the sawtooth should hit the buffer")
	}
	if rcv.PacketsReceived == 0 {
		t.Fatal("receiver got nothing")
	}
	// RTT estimate includes queueing: at least the base RTT.
	if st.MeanRTT < net.BaseRTT(1) {
		t.Fatalf("mean RTT %v below base %v", st.MeanRTT, net.BaseRTT(1))
	}
}

func TestSawtoothLossEventRate(t *testing.T) {
	// For a lone AIMD flow on a DropTail link, the loss-event rate
	// should scale like 1/throughput² (the AIMD relation behind
	// Claim 4). Doubling the capacity should cut p by roughly 4.
	measure := func(rate float64) (p, x float64) {
		var s des.Scheduler
		// Scale the buffer with the bandwidth-delay product so the whole
		// window (BDP + buffer) scales with capacity, as the law assumes.
		rtt := 0.04 + 0.045
		bdp := int(rate / 1000 * rtt)
		net := buildDumbbell(&s, rate, 0.04, bdp)
		snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.045)
		snd.Start()
		s.RunUntil(30)
		snd.ResetStats()
		s.RunUntil(630)
		st := snd.Stats()
		return st.LossEventRate, st.Throughput
	}
	p1, x1 := measure(0.625e6)
	p2, x2 := measure(1.25e6)
	if x2 < x1*1.5 {
		t.Fatalf("throughput did not scale with capacity: %v -> %v", x1, x2)
	}
	ratio := p1 / p2
	if ratio < 2 || ratio > 8 {
		t.Fatalf("loss-rate ratio %v, want ~4 (AIMD 1/x² law)", ratio)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd1, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd2, _ := NewFlow(&s, net, 2, DefaultConfig(), 0, 0.015)
	snd1.Start()
	// Stagger the second start to break phase effects.
	s.At(0.37, snd2.Start)
	s.RunUntil(30)
	snd1.ResetStats()
	snd2.ResetStats()
	s.RunUntil(330)
	x1 := snd1.Stats().Throughput
	x2 := snd2.Stats().Throughput
	if x1 <= 0 || x2 <= 0 {
		t.Fatalf("starved flow: %v, %v", x1, x2)
	}
	ratio := x1 / x2
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("unfair share: %v vs %v pkts/s", x1, x2)
	}
	// Combined they still fill the link.
	if x1+x2 < 1000 {
		t.Fatalf("combined throughput = %v, want > 1000", x1+x2)
	}
}

func TestFastRetransmitRecoversWithoutTimeout(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, rcv := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(60)
	st := snd.Stats()
	// With a healthy buffer, most loss events should be handled by fast
	// retransmit; the received stream advances past every loss.
	if st.LossEvents == 0 {
		t.Fatal("expected loss events")
	}
	if rcv.PacketsReceived < int64(0.9*float64(st.PacketsSent)) {
		t.Fatalf("received %d of %d sent", rcv.PacketsReceived, st.PacketsSent)
	}
}

func TestRTTEstimate(t *testing.T) {
	var s des.Scheduler
	// Large buffer and modest rate: queueing small early on.
	net := buildDumbbell(&s, 1.25e6, 0.02, 200)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0.005, 0.025)
	snd.Start()
	s.RunUntil(2)
	base := net.BaseRTT(1) // 0.02+0.005+0.025 = 0.05
	if snd.SRTT() < base || snd.SRTT() > base+0.3 {
		t.Fatalf("srtt = %v, base = %v", snd.SRTT(), base)
	}
}

func TestCwndGrowsInSlowStartThenCA(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e7, 0.02, 1000)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.02)
	snd.Start()
	s.RunUntil(0.5)
	if snd.Cwnd() <= DefaultConfig().InitialCwnd {
		t.Fatalf("cwnd did not grow: %v", snd.Cwnd())
	}
}

func TestTimeoutPathOnDeadLink(t *testing.T) {
	var s des.Scheduler
	// Tiny buffer and tiny rate: heavy losses force timeouts.
	net := buildDumbbell(&s, 5e3, 0.01, 2)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(120)
	st := snd.Stats()
	if st.LossEvents == 0 {
		t.Fatal("expected loss events under heavy congestion")
	}
	// The connection must keep making progress.
	if st.Throughput <= 0 {
		t.Fatal("connection starved")
	}
}

func TestStatsWindowing(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(10)
	before := snd.Stats()
	snd.ResetStats()
	zero := snd.Stats()
	if zero.PacketsSent != 0 || zero.LossEvents != 0 || zero.Duration != 0 {
		t.Fatalf("stats not reset: %+v", zero)
	}
	s.RunUntil(20)
	after := snd.Stats()
	if after.PacketsSent == 0 || after.Duration != 10 {
		t.Fatalf("windowed stats wrong: %+v", after)
	}
	if before.PacketsSent == 0 {
		t.Fatal("warmup stats empty")
	}
	// Loss intervals in the window match the event count minus the
	// opening interval.
	if int64(len(after.LossIntervals)) > after.LossEvents {
		t.Fatalf("%d intervals for %d events", len(after.LossIntervals), after.LossEvents)
	}
}

func TestReceiverDelayedAcks(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e9, 0.0, netsim.NewDropTail(100))
	net := topology.NewDumbbell(&s, link)
	acks := 0
	snd := netsim.EndpointFunc(func(p *netsim.Packet) { acks++ })
	rcv := NewReceiver(&s, net, 1, DefaultConfig())
	net.AttachFlow(1, snd, rcv, 0, 0)
	// Four in-order segments with b=2: exactly 2 ACKs.
	for i := 0; i < 4; i++ {
		rcv.Receive(&netsim.Packet{Flow: 1, Kind: netsim.Data, Seq: int64(i), SentAt: 1})
	}
	s.Run()
	if acks != 2 {
		t.Fatalf("acks = %d, want 2", acks)
	}
	// An out-of-order segment triggers an immediate duplicate ACK.
	rcv.Receive(&netsim.Packet{Flow: 1, Kind: netsim.Data, Seq: 10, SentAt: 1})
	s.Run()
	if acks != 3 {
		t.Fatalf("acks after ooo = %d, want 3", acks)
	}
}

func TestReceiverIgnoresNonData(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1e6, 0, 10)
	rcv := NewReceiver(&s, net, 1, DefaultConfig())
	rcv.Receive(&netsim.Packet{Kind: netsim.Ack})
	if rcv.PacketsReceived != 0 {
		t.Fatal("non-data counted")
	}
}

func TestSenderIgnoresNonAck(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1e6, 0, 10)
	snd := NewSender(&s, net, 1, DefaultConfig())
	snd.Receive(&netsim.Packet{Kind: netsim.Data})
	if snd.Stats().PacketsSent != 0 {
		t.Fatal("non-ack processed")
	}
}

func TestHeterogeneousRTTs(t *testing.T) {
	// A shorter-RTT flow should get at least as much throughput.
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.005, 64)
	short, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.005)
	long, _ := NewFlow(&s, net, 2, DefaultConfig(), 0.04, 0.045)
	short.Start()
	s.At(0.13, long.Start)
	s.RunUntil(30)
	short.ResetStats()
	long.ResetStats()
	s.RunUntil(230)
	xs, xl := short.Stats().Throughput, long.Stats().Throughput
	if xs < xl {
		t.Fatalf("short-RTT flow (%v) below long-RTT flow (%v)", xs, xl)
	}
}

func TestPanics(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1e6, 0, 10)
	cases := []func(){
		func() { NewSender(nil, net, 1, DefaultConfig()) },
		func() { NewSender(&s, nil, 1, DefaultConfig()) },
		func() { NewSender(&s, net, 1, Config{}) },
		func() { NewReceiver(&s, net, 1, Config{SegSize: -1}) },
		func() {
			snd := NewSender(&s, net, 5, DefaultConfig())
			rcv := NewReceiver(&s, net, 5, DefaultConfig())
			net.AttachFlow(5, snd, rcv, 0, 0)
			snd.Start()
			snd.Start()
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestManyFlowsStable(t *testing.T) {
	// Smoke test at N = 8 pairs: everyone gets some share; no panics.
	var s des.Scheduler
	r := rng.New(17)
	net := buildDumbbell(&s, 1.25e6, 0.01, 100)
	senders := make([]*Sender, 8)
	for i := range senders {
		snd, _ := NewFlow(&s, net, i, DefaultConfig(), 0, 0.015)
		senders[i] = snd
		start := r.Float64()
		s.At(start, snd.Start)
	}
	s.RunUntil(30)
	total := 0.0
	for _, snd := range senders {
		snd.ResetStats()
	}
	s.RunUntil(130)
	starved := 0
	for _, snd := range senders {
		x := snd.Stats().Throughput
		total += x
		if x < 10 {
			starved++
		}
	}
	if total < 1000 {
		t.Fatalf("aggregate throughput = %v", total)
	}
	if starved > 1 {
		t.Fatalf("%d of 8 flows starved", starved)
	}
}

func TestThroughputScalesInverseRTT(t *testing.T) {
	// The SQRT/PFTK models predict x ~ 1/RTT at a fixed loss rate. With
	// a fixed random-loss link (huge buffer, Bernoulli drops emulated by
	// a tiny RED band this model lacks), we instead verify the weaker
	// sim-level property: doubling all path delays reduces a lone flow's
	// throughput when the buffer is small relative to the BDP.
	measure := func(delay float64) float64 {
		var s des.Scheduler
		net := buildDumbbell(&s, 2.5e6, delay, 32)
		snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, delay)
		snd.Start()
		s.RunUntil(20)
		snd.ResetStats()
		s.RunUntil(120)
		return snd.Stats().Throughput
	}
	fast := measure(0.01)
	slow := measure(0.08)
	if slow >= fast {
		t.Fatalf("longer RTT should lower throughput: %v vs %v", slow, fast)
	}
}
