// Package tcp implements a NewReno-style TCP sender and receiver over
// any netsim.Network (the topology dumbbell or a multi-hop graph):
// slow start, AIMD congestion avoidance with
// delayed ACKs (b = 2), fast retransmit/recovery with NewReno partial
// acks, and a retransmission timer with Jacobson/Karels estimation and
// exponential backoff.
//
// The model is packet-based (congestion window counted in segments), the
// standard abstraction for long-lived bulk transfers in simulation — it
// reproduces the window dynamics that the PFTK throughput formula
// models, which is what the paper's experiments exercise.
package tcp

import (
	"math"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config holds the tunable constants of the TCP model.
type Config struct {
	// SegSize is the segment size in bytes (data packets).
	SegSize int
	// AckSize is the ACK size in bytes.
	AckSize int
	// AckEvery is the delayed-ACK factor b (2 acknowledges every other
	// segment, the practical default the formulas assume).
	AckEvery int
	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd float64
	// InitialSsthresh is the initial slow-start threshold in segments.
	InitialSsthresh float64
	// MinRTO is the lower bound on the retransmission timeout, seconds.
	MinRTO float64
	// MaxBackoff bounds the RTO exponential backoff doublings.
	MaxBackoff int
	// TotalSegments, when positive, bounds the transfer: the sender goes
	// done once every segment below this count is cumulatively
	// acknowledged, cancelling its retransmission timer and ignoring
	// late ACKs. Zero (the default) keeps the persistent bulk sender.
	TotalSegments int64
}

// DefaultConfig returns the configuration used across the experiments:
// 1000-byte segments, 40-byte ACKs, b = 2, RFC-like timer floors.
func DefaultConfig() Config {
	return Config{
		SegSize:         1000,
		AckSize:         40,
		AckEvery:        2,
		InitialCwnd:     2,
		InitialSsthresh: 64,
		MinRTO:          0.2,
		MaxBackoff:      6,
	}
}

func (c Config) validate() {
	if c.SegSize <= 0 || c.AckSize <= 0 || c.AckEvery < 1 ||
		c.InitialCwnd < 1 || c.InitialSsthresh < 2 ||
		c.MinRTO <= 0 || c.MaxBackoff < 0 || c.TotalSegments < 0 {
		panic("tcp: invalid config")
	}
}

// Stats summarizes a measurement window of a sender.
type Stats struct {
	// Duration is the measurement window in seconds.
	Duration float64
	// PacketsSent counts data segments sent (including retransmits).
	PacketsSent int64
	// LossEvents counts loss events (losses within one RTT grouped).
	LossEvents int64
	// LossEventRate is LossEvents/PacketsSent (the per-packet event
	// rate p' of the paper's comparisons), 0 if nothing was sent.
	LossEventRate float64
	// LossIntervals are the closed loss-event intervals in packets.
	LossIntervals []float64
	// MeanRTT is the average of the RTT samples in the window, seconds.
	MeanRTT float64
	// Throughput is the send rate in packets/second.
	Throughput float64
	// AcksReceived counts acknowledgment packets that reached the
	// sender in the window. Over a routed congested reverse path this
	// falls short of the ACKs the receiver issued (ack loss), and the
	// survivors arrive compressed behind the reverse bottleneck's
	// queue.
	AcksReceived int64
}

// Sender is a long-lived bulk-transfer TCP source. Create with
// NewSender, attach to a dumbbell flow, then Start.
type Sender struct {
	cfg   Config
	sched *des.Scheduler
	net   netsim.Network
	flow  int

	cwnd     float64
	ssthresh float64
	nextSeq  int64
	highAck  int64 // next expected byte^H^Hsegment (cumulative ack)
	dupacks  int
	recover  int64
	inRec    bool
	inflate  float64

	srtt, rttvar, rto float64
	backoff           int
	rtoTimer          des.Timer
	onTimeoutFn       des.Event // bound once: the RTO re-arm path is per-ACK

	lossEvents *netsim.LossEventCounter
	trace      *obs.Tracer

	started bool
	done    bool

	// onDone, when set (OnDone), fires once, from inside the ACK event
	// that completes a finite transfer (cfg.TotalSegments > 0).
	onDone func()

	// measurement window
	measStart  float64
	pktsSent   int64
	acksSeen   int64
	acksBase   int64
	eventsBase int64
	rttAcc     stats.Welford
	intervals0 int
}

// NewSender builds a TCP sender for the given dumbbell flow id.
func NewSender(sched *des.Scheduler, net netsim.Network, flow int, cfg Config) *Sender {
	cfg.validate()
	if sched == nil || net == nil {
		panic("tcp: nil scheduler or network")
	}
	s := &Sender{
		cfg:      cfg,
		sched:    sched,
		net:      net,
		flow:     flow,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSsthresh,
		rto:      1.0,
		trace:    netsim.TracerOf(net),
	}
	s.lossEvents = netsim.NewLossEventCounter(func() float64 {
		if s.srtt > 0 {
			return s.srtt
		}
		return 0.1
	})
	s.onTimeoutFn = s.onTimeout
	return s
}

// Start begins transmission (call after the flow is attached).
func (s *Sender) Start() {
	if s.started {
		panic("tcp: sender already started")
	}
	s.started = true
	s.measStart = s.sched.Now()
	s.maybeSend()
	s.armRTO()
}

// SRTT returns the smoothed round-trip-time estimate in seconds
// (0 before the first sample).
func (s *Sender) SRTT() float64 { return s.srtt }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Flow returns the sender's current flow id.
func (s *Sender) Flow() int { return s.flow }

// ResetStats restarts the measurement window at the current time,
// discarding warmup statistics.
func (s *Sender) ResetStats() {
	s.measStart = s.sched.Now()
	s.pktsSent = 0
	s.acksBase = s.acksSeen
	s.eventsBase = s.lossEvents.Events
	s.rttAcc = stats.Welford{}
	s.intervals0 = len(s.lossEvents.Intervals)
}

// Stats returns the measurement-window summary at the current time.
func (s *Sender) Stats() Stats {
	dur := s.sched.Now() - s.measStart
	st := Stats{
		Duration:     dur,
		PacketsSent:  s.pktsSent,
		LossEvents:   s.lossEvents.Events - s.eventsBase,
		MeanRTT:      s.rttAcc.Mean(),
		AcksReceived: s.acksSeen - s.acksBase,
	}
	st.LossIntervals = append(st.LossIntervals, s.lossEvents.Intervals[s.intervals0:]...)
	if s.pktsSent > 0 {
		st.LossEventRate = float64(st.LossEvents) / float64(s.pktsSent)
	}
	if dur > 0 {
		st.Throughput = float64(s.pktsSent) / dur
	}
	return st
}

func (s *Sender) inflight() float64 { return float64(s.nextSeq - s.highAck) }

func (s *Sender) window() float64 { return s.cwnd + s.inflate }

func (s *Sender) maybeSend() {
	for s.inflight() < s.window() {
		if s.cfg.TotalSegments > 0 && s.nextSeq >= s.cfg.TotalSegments {
			return // finite transfer: nothing new left to send
		}
		s.sendSeq(s.nextSeq)
		s.nextSeq++
	}
}

// OnDone registers a callback fired once, when a finite transfer
// (cfg.TotalSegments > 0) is fully acknowledged. Set before Start.
func (s *Sender) OnDone(fn func()) { s.onDone = fn }

// Done reports whether a finite transfer is fully acknowledged.
func (s *Sender) Done() bool { return s.done }

// Quiesced reports whether the sender is done and holds no live timer,
// i.e. it will never schedule another event. The churn engine requires
// this before recycling the endpoint pair.
func (s *Sender) Quiesced() bool { return s.done && !s.rtoTimer.Active() }

func (s *Sender) sendSeq(seq int64) {
	s.pktsSent++
	p := s.net.GetPacket()
	p.Flow = s.flow
	p.Seq = seq
	p.Size = s.cfg.SegSize
	p.SentAt = s.sched.Now()
	p.Kind = netsim.Data
	s.net.SendForward(p)
}

// Receive implements netsim.Endpoint for the returning ACK stream.
// Lost ACKs need no special handling: a later cumulative ACK covers
// them, and a fully severed reverse path surfaces as an RTO. Ack
// compression — back-to-back ACK arrivals released by a congested
// reverse queue — makes cwnd growth and send bursts lumpy, which is
// exactly the behavior the routed reverse path experiments measure.
func (s *Sender) Receive(p *netsim.Packet) {
	if p.Kind != netsim.Ack {
		return
	}
	s.acksSeen++
	if s.done {
		// Late or duplicate ACK for a completed transfer: count it but
		// change nothing, so stray reverse-path stragglers can't trigger
		// a spurious fast retransmit on a finished flow.
		return
	}
	now := s.sched.Now()
	switch {
	case p.AckSeq > s.highAck:
		acked := float64(p.AckSeq - s.highAck)
		s.highAck = p.AckSeq
		s.dupacks = 0
		s.backoff = 0
		if p.Echo > 0 {
			s.sampleRTT(now - p.Echo)
		}
		if s.inRec {
			if p.AckSeq >= s.recover {
				// Full recovery: deflate to ssthresh.
				s.inRec = false
				s.inflate = 0
				s.cwnd = s.ssthresh
			} else {
				// NewReno partial ack: retransmit the next hole and
				// stay in recovery.
				s.sendSeq(s.highAck)
				s.inflate = math.Max(0, s.inflate-acked)
			}
		} else if s.cwnd < s.ssthresh {
			s.cwnd += acked // slow start
		} else {
			// Congestion avoidance: 1/cwnd per ACK received. With
			// delayed ACKs (b = 2) this yields the 1/b segments per RTT
			// growth the PFTK formula models.
			s.cwnd += 1 / s.cwnd
		}
		if s.cfg.TotalSegments > 0 && s.highAck >= s.cfg.TotalSegments {
			// Every segment is cumulatively acknowledged: the transfer
			// is complete and no timer needs to stay armed.
			s.done = true
			s.rtoTimer.Cancel()
			if s.onDone != nil {
				s.onDone()
			}
			return
		}
		s.armRTO()
		s.maybeSend()
	case p.AckSeq == s.highAck:
		s.dupacks++
		if !s.inRec && s.dupacks == 3 {
			// Fast retransmit: one loss event.
			s.lossEvents.OnLoss(now, s.highAck)
			s.ssthresh = math.Max(s.cwnd/2, 2)
			s.cwnd = s.ssthresh
			s.inflate = 3
			s.recover = s.nextSeq
			s.inRec = true
			s.sendSeq(s.highAck)
			s.armRTO()
		} else if s.inRec {
			// Window inflation keeps the ACK clock running.
			s.inflate++
			s.maybeSend()
		}
	}
}

func (s *Sender) sampleRTT(rtt float64) {
	if rtt <= 0 {
		return
	}
	s.rttAcc.Add(rtt)
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		s.rttvar = 0.75*s.rttvar + 0.25*math.Abs(s.srtt-rtt)
		s.srtt = 0.875*s.srtt + 0.125*rtt
	}
	s.rto = math.Max(s.cfg.MinRTO, s.srtt+4*s.rttvar)
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	d := s.rto * math.Pow(2, float64(s.backoff))
	s.rtoTimer = s.sched.After(d, s.onTimeoutFn)
}

func (s *Sender) onTimeout() {
	now := s.sched.Now()
	s.trace.Emit(now, obs.EvTCPTimeout, int32(s.flow), -1, s.rto*math.Pow(2, float64(s.backoff)))
	s.lossEvents.OnLoss(now, s.highAck)
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = 1
	s.inRec = false
	s.inflate = 0
	s.dupacks = 0
	if s.backoff < s.cfg.MaxBackoff {
		s.backoff++
	}
	// Go-back-N: resume from the first unacknowledged segment.
	s.nextSeq = s.highAck
	s.maybeSend()
	s.armRTO()
}

// Receiver is the delayed-ACK TCP receiver: it acknowledges every
// AckEvery-th in-order segment immediately on out-of-order arrivals
// (duplicate ACKs), echoing the arriving segment's timestamp.
type Receiver struct {
	cfg      Config
	sched    *des.Scheduler
	net      netsim.Network
	flow     int
	expected int64
	ooo      map[int64]bool
	unacked  int
	// PacketsReceived counts data segments delivered (with duplicates).
	PacketsReceived int64
}

// NewReceiver builds the receiving endpoint for a flow.
func NewReceiver(sched *des.Scheduler, net netsim.Network, flow int, cfg Config) *Receiver {
	cfg.validate()
	if sched == nil || net == nil {
		panic("tcp: nil scheduler or network")
	}
	return &Receiver{cfg: cfg, sched: sched, net: net, flow: flow, ooo: map[int64]bool{}}
}

// Receive implements netsim.Endpoint for the forward data stream.
func (r *Receiver) Receive(p *netsim.Packet) {
	if p.Kind != netsim.Data {
		return
	}
	r.PacketsReceived++
	dup := false
	switch {
	case p.Seq == r.expected:
		r.expected++
		for r.ooo[r.expected] {
			delete(r.ooo, r.expected)
			r.expected++
		}
	case p.Seq > r.expected:
		r.ooo[p.Seq] = true
		dup = true // out-of-order: immediate duplicate ACK
	default:
		dup = true // already-received segment (retransmit overlap)
	}
	r.unacked++
	if dup || r.unacked >= r.cfg.AckEvery {
		r.unacked = 0
		ack := r.net.GetPacket()
		ack.Flow = r.flow
		ack.Kind = netsim.Ack
		ack.Size = r.cfg.AckSize
		ack.AckSeq = r.expected
		ack.Echo = p.SentAt
		r.net.SendReverse(ack)
	}
}

// NewFlow wires a TCP sender/receiver pair onto the dumbbell with the
// given one-way extra forward delay and reverse-path delay, and returns
// both endpoints. Call sender.Start to begin.
func NewFlow(sched *des.Scheduler, net netsim.Network, flow int, cfg Config, fwdExtra, revDelay float64) (*Sender, *Receiver) {
	return NewFlowOn(sched, net, sched, net, flow, cfg, fwdExtra, revDelay)
}

// NewFlowOn is NewFlow with the two endpoints placed on separate
// scheduler/network pairs, for executors that split one simulation
// across several event loops (internal/shard): the sender runs its
// timers on sndSched and sends through sndNet, the receiver on rcvSched
// through rcvNet. The flow is attached via the sender's network. With
// both pairs identical it is exactly NewFlow.
func NewFlowOn(sndSched *des.Scheduler, sndNet netsim.Network, rcvSched *des.Scheduler, rcvNet netsim.Network, flow int, cfg Config, fwdExtra, revDelay float64) (*Sender, *Receiver) {
	snd := NewSender(sndSched, sndNet, flow, cfg)
	rcv := NewReceiver(rcvSched, rcvNet, flow, cfg)
	sndNet.AttachFlow(flow, snd, rcv, fwdExtra, revDelay)
	return snd, rcv
}

// Renew reinitializes an existing sender/receiver pair in place for a
// new flow, reusing the loss-counter buffers and out-of-order map so
// churn workloads recycle endpoints without allocating. The sender must
// be Quiesced (the receiver is passive and holds no timers); the flow
// is re-attached via the sender's network exactly as NewFlowOn does.
func Renew(snd *Sender, rcv *Receiver, flow int, cfg Config, fwdExtra, revDelay float64) {
	RenewRaw(snd, rcv, flow, cfg)
	snd.net.AttachFlow(flow, snd, rcv, fwdExtra, revDelay)
}

// RenewRaw is Renew without the attach step, for callers that attach
// with explicit hop slices through their executor.
func RenewRaw(snd *Sender, rcv *Receiver, flow int, cfg Config) {
	cfg.validate()
	if !snd.Quiesced() {
		panic("tcp: Renew on a non-quiescent sender")
	}

	rcv.cfg = cfg
	rcv.flow = flow
	rcv.expected = 0
	clear(rcv.ooo)
	rcv.unacked = 0
	rcv.PacketsReceived = 0

	snd.cfg = cfg
	snd.flow = flow
	snd.cwnd = cfg.InitialCwnd
	snd.ssthresh = cfg.InitialSsthresh
	snd.nextSeq = 0
	snd.highAck = 0
	snd.dupacks = 0
	snd.recover = 0
	snd.inRec = false
	snd.inflate = 0
	snd.srtt = 0
	snd.rttvar = 0
	snd.rto = 1.0
	snd.backoff = 0
	snd.rtoTimer = des.Timer{}
	snd.lossEvents.Reset()
	snd.started = false
	snd.done = false
	snd.measStart = 0
	snd.pktsSent = 0
	snd.acksSeen = 0
	snd.acksBase = 0
	snd.eventsBase = 0
	snd.rttAcc = stats.Welford{}
	snd.intervals0 = 0
}
