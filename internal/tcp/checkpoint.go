package tcp

import (
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/des"
)

// Save writes the sender's run-time state. Configuration comes from the
// rebuild, except the transfer volume: churn flows draw TotalSegments
// per arrival, so it rides in the snapshot.
func (s *Sender) Save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(s.flow)
	w.I64(s.cfg.TotalSegments)
	w.F64(s.cwnd)
	w.F64(s.ssthresh)
	w.I64(s.nextSeq)
	w.I64(s.highAck)
	w.Int(s.dupacks)
	w.I64(s.recover)
	w.Bool(s.inRec)
	w.F64(s.inflate)
	w.F64(s.srtt)
	w.F64(s.rttvar)
	w.F64(s.rto)
	w.Int(s.backoff)
	w.Timer(cap.StateOf(s.rtoTimer))
	s.lossEvents.Save(w)
	w.Bool(s.started)
	w.Bool(s.done)
	w.F64(s.measStart)
	w.I64(s.pktsSent)
	w.I64(s.acksSeen)
	w.I64(s.acksBase)
	w.I64(s.eventsBase)
	s.rttAcc.Save(w)
	w.Int(s.intervals0)
}

// Restore overlays state saved by Save onto a freshly built sender for
// the same flow and re-arms its retransmission timer.
func (s *Sender) Restore(r *checkpoint.Reader) {
	if flow := r.Int(); flow != s.flow {
		r.Fail("tcp sender snapshot is for flow %d, rebuilt flow %d", flow, s.flow)
		return
	}
	s.cfg.TotalSegments = r.I64()
	s.cwnd = r.F64()
	s.ssthresh = r.F64()
	s.nextSeq = r.I64()
	s.highAck = r.I64()
	s.dupacks = r.Int()
	s.recover = r.I64()
	s.inRec = r.Bool()
	s.inflate = r.F64()
	s.srtt = r.F64()
	s.rttvar = r.F64()
	s.rto = r.F64()
	s.backoff = r.Int()
	s.rtoTimer = s.sched.RestoreTimer(r.Timer(), s.onTimeoutFn)
	s.lossEvents.Restore(r)
	s.started = r.Bool()
	s.done = r.Bool()
	s.measStart = r.F64()
	s.pktsSent = r.I64()
	s.acksSeen = r.I64()
	s.acksBase = r.I64()
	s.eventsBase = r.I64()
	s.rttAcc.Restore(r)
	s.intervals0 = r.Int()
}

// Save writes the receiver's run-time state. The out-of-order set is
// serialized in ascending sequence order so the encoding is canonical
// regardless of map iteration order.
func (rc *Receiver) Save(w *checkpoint.Writer) {
	w.Int(rc.flow)
	w.I64(rc.expected)
	keys := make([]int64, 0, len(rc.ooo))
	for k := range rc.ooo {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.I64(k)
	}
	w.Int(rc.unacked)
	w.I64(rc.PacketsReceived)
}

// Restore overlays state saved by Save onto a freshly built receiver
// for the same flow.
func (rc *Receiver) Restore(r *checkpoint.Reader) {
	if flow := r.Int(); flow != rc.flow {
		r.Fail("tcp receiver snapshot is for flow %d, rebuilt flow %d", flow, rc.flow)
		return
	}
	rc.expected = r.I64()
	n := r.Count()
	clear(rc.ooo)
	for i := 0; i < n; i++ {
		rc.ooo[r.I64()] = true
	}
	rc.unacked = r.Int()
	rc.PacketsReceived = r.I64()
}

// Scheduler returns the scheduler the sender's RTO timer lives on, so a
// snapshot orchestrator can resolve it against the right capture.
func (s *Sender) Scheduler() *des.Scheduler { return s.sched }

// Retire marks a never-started sender as completed so it can sit in a
// recycling pool: Renew demands a Quiesced (done) sender, a state a
// running flow only reaches by finishing its transfer. A snapshot
// restore uses it to refill churn pools with freshly built pairs.
func (s *Sender) Retire() {
	if s.started || s.done {
		panic("tcp: Retire on a started sender")
	}
	s.done = true
}
