// Package lossmodel provides the loss-event interval processes that
// drive the paper's numerical experiments: IID sequences from designed
// distributions (the shifted-exponential family of §V-A.1 that fixes the
// loss-event rate p and the coefficient of variation independently),
// geometric intervals (the Bernoulli packet dropper of Figure 6),
// Markov-modulated (phase) processes used to break the covariance
// condition (C1), and batch-loss processes that produce the negative
// covariance observed at UMELB in Figure 10.
package lossmodel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Process generates successive loss-event intervals θ_n, measured in
// packets sent between two consecutive loss events.
type Process interface {
	// Next returns the next loss-event interval (> 0).
	Next() float64
	// MeanInterval returns E[θ] = 1/p when known analytically, else 0.
	MeanInterval() float64
	// Name identifies the process in experiment output.
	Name() string
}

// ShiftedExp is the paper's designed IID process: θ equals in
// distribution x0 + Exp(a), so E[θ] = x0 + 1/a and cv = (1/a)/(x0+1/a).
// Skewness (2) and kurtosis (6) are invariant to (x0, a), which isolates
// the effect of p and cv — the property §V-A.1 highlights.
type ShiftedExp struct {
	X0, A float64
	r     *rng.RNG
}

// NewShiftedExp builds the process directly from (x0, a).
func NewShiftedExp(x0, a float64, r *rng.RNG) *ShiftedExp {
	if x0 < 0 || a <= 0 {
		panic("lossmodel: invalid shifted-exponential parameters")
	}
	return &ShiftedExp{X0: x0, A: a, r: r}
}

// DesignShiftedExp solves for (x0, a) so that the process has loss-event
// rate p (mean interval 1/p) and coefficient of variation cv in (0, 1]:
// a = 1/(cv/p), x0 = (1-cv)/p. cv = 1 recovers the plain exponential.
func DesignShiftedExp(p, cv float64, r *rng.RNG) *ShiftedExp {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("lossmodel: loss-event rate %v outside (0,1]", p))
	}
	if cv <= 0 || cv > 1 {
		panic(fmt.Sprintf("lossmodel: cv %v outside (0,1] for shifted exponential", cv))
	}
	mean := 1 / p
	std := cv * mean
	return NewShiftedExp(mean-std, 1/std, r)
}

// Next implements Process.
func (s *ShiftedExp) Next() float64 { return s.r.ShiftedExp(s.X0, s.A) }

// MeanInterval implements Process.
func (s *ShiftedExp) MeanInterval() float64 { return s.X0 + 1/s.A }

// CV returns the process's coefficient of variation.
func (s *ShiftedExp) CV() float64 { return (1 / s.A) / s.MeanInterval() }

// Name implements Process.
func (s *ShiftedExp) Name() string { return "shifted-exp" }

// Geometric models the Bernoulli packet dropper of Figure 6: every packet
// is lost independently with probability p, so loss-event intervals are
// Geometric(p) on {1, 2, ...} with mean 1/p.
type Geometric struct {
	P float64
	r *rng.RNG
}

// NewGeometric returns a geometric interval process with per-packet loss
// probability p.
func NewGeometric(p float64, r *rng.RNG) *Geometric {
	if p <= 0 || p > 1 {
		panic("lossmodel: geometric p outside (0,1]")
	}
	return &Geometric{P: p, r: r}
}

// Next implements Process.
func (g *Geometric) Next() float64 { return float64(g.r.Geometric(g.P)) }

// MeanInterval implements Process.
func (g *Geometric) MeanInterval() float64 { return 1 / g.P }

// Name implements Process.
func (g *Geometric) Name() string { return "geometric" }

// Phase is a Markov-modulated interval process: a hidden k-state Markov
// chain (one step per loss event) selects the mean of an exponential
// interval. Slow transitions make θ̂ a good predictor of θ, creating the
// positive cov[θ0, θ̂0] that invalidates condition (C1) of Theorem 1 —
// the "loss process goes into phases" scenario of §III-B.2.
type Phase struct {
	// Trans[i][j] is the per-event transition probability i -> j.
	Trans [][]float64
	// Means[i] is the mean interval while in state i.
	Means []float64
	state int
	r     *rng.RNG
}

// NewPhase builds a phase process. The transition matrix must be square,
// stochastic (rows sum to 1) and match len(means).
func NewPhase(trans [][]float64, means []float64, r *rng.RNG) *Phase {
	k := len(means)
	if k == 0 || len(trans) != k {
		panic("lossmodel: phase dimensions mismatch")
	}
	for i, row := range trans {
		if len(row) != k {
			panic("lossmodel: transition matrix not square")
		}
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				panic("lossmodel: negative transition probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			panic(fmt.Sprintf("lossmodel: row %d sums to %v", i, sum))
		}
		if means[i] <= 0 {
			panic("lossmodel: non-positive phase mean")
		}
	}
	return &Phase{Trans: trans, Means: means, r: r}
}

// NewTwoPhase builds the classic Gilbert-style two-state process: a
// "good" phase with mean interval meanGood and a "bad" (congested) phase
// with mean interval meanBad, with per-event switching probability
// switchProb out of either state. Small switchProb = slow phases =
// highly predictable intervals.
func NewTwoPhase(meanGood, meanBad, switchProb float64, r *rng.RNG) *Phase {
	if switchProb <= 0 || switchProb >= 1 {
		panic("lossmodel: switch probability outside (0,1)")
	}
	return NewPhase(
		[][]float64{
			{1 - switchProb, switchProb},
			{switchProb, 1 - switchProb},
		},
		[]float64{meanGood, meanBad}, r)
}

// Next implements Process: draw an interval from the current phase, then
// step the chain.
func (ph *Phase) Next() float64 {
	interval := ph.r.Exp(1 / ph.Means[ph.state])
	u := ph.r.Float64()
	acc := 0.0
	row := ph.Trans[ph.state]
	for j, v := range row {
		acc += v
		if u < acc {
			ph.state = j
			break
		}
	}
	if interval <= 0 {
		interval = math.SmallestNonzeroFloat64
	}
	return interval
}

// State returns the current hidden phase index.
func (ph *Phase) State() int { return ph.state }

// MeanInterval implements Process: the stationary mean for the symmetric
// two-state case; 0 (unknown) otherwise.
func (ph *Phase) MeanInterval() float64 {
	if len(ph.Means) == 2 &&
		ph.Trans[0][1] == ph.Trans[1][0] {
		return (ph.Means[0] + ph.Means[1]) / 2
	}
	return 0
}

// Name implements Process.
func (ph *Phase) Name() string { return "phase" }

// Batch wraps a Process and emits, after every emitted interval, a run of
// Extra near-zero intervals with probability BatchProb — modeling loss
// events arriving in batches, which produces the negative covariance
// cov[θ0, θ̂0] the paper observed on the UMELB path (Figure 10).
type Batch struct {
	Inner     Process
	BatchProb float64
	Extra     int
	Eps       float64
	pending   int
	r         *rng.RNG
}

// NewBatch builds a batch process: with probability batchProb a loss
// event is followed by extra intervals of length eps (in packets).
func NewBatch(inner Process, batchProb float64, extra int, eps float64, r *rng.RNG) *Batch {
	if batchProb < 0 || batchProb > 1 || extra < 0 || eps <= 0 {
		panic("lossmodel: invalid batch parameters")
	}
	return &Batch{Inner: inner, BatchProb: batchProb, Extra: extra, Eps: eps, r: r}
}

// Next implements Process.
func (b *Batch) Next() float64 {
	if b.pending > 0 {
		b.pending--
		return b.Eps
	}
	v := b.Inner.Next()
	if b.Extra > 0 && b.r.Bernoulli(b.BatchProb) {
		b.pending = b.Extra
	}
	return v
}

// MeanInterval implements Process (unknown in general).
func (b *Batch) MeanInterval() float64 { return 0 }

// Name implements Process.
func (b *Batch) Name() string { return "batch(" + b.Inner.Name() + ")" }

// Collect draws n intervals from the process into a slice.
func Collect(p Process, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}
