package lossmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestDesignShiftedExpMoments(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct{ p, cv float64 }{
		{0.01, 1 - 1.0/1000},
		{0.1, 0.5},
		{0.4, 0.2},
		{0.05, 1.0},
	} {
		proc := DesignShiftedExp(tc.p, tc.cv, r)
		if got := proc.MeanInterval(); math.Abs(got-1/tc.p)/(1/tc.p) > 1e-12 {
			t.Fatalf("p=%v: mean = %v, want %v", tc.p, got, 1/tc.p)
		}
		if got := proc.CV(); math.Abs(got-tc.cv) > 1e-12 {
			t.Fatalf("p=%v: cv = %v, want %v", tc.p, got, tc.cv)
		}
		xs := Collect(proc, 100000)
		if got := stats.Mean(xs); math.Abs(got-1/tc.p)/(1/tc.p) > 0.03 {
			t.Fatalf("p=%v: empirical mean = %v, want %v", tc.p, got, 1/tc.p)
		}
		if got := stats.CV(xs); math.Abs(got-tc.cv) > 0.03 {
			t.Fatalf("p=%v: empirical cv = %v, want %v", tc.p, got, tc.cv)
		}
	}
}

func TestShiftedExpSupport(t *testing.T) {
	r := rng.New(2)
	proc := DesignShiftedExp(0.1, 0.5, r)
	// Support is [x0, inf) with x0 = (1-cv)/p = 5.
	for i := 0; i < 10000; i++ {
		if v := proc.Next(); v < 5 {
			t.Fatalf("sample %v below shift", v)
		}
	}
}

func TestShiftedExpSkewnessInvariance(t *testing.T) {
	// Designed property from §V-A.1: skewness of the exponential part is
	// 2 regardless of (x0, a). Verify on two very different settings.
	skew := func(p, cv float64, seed uint64) float64 {
		xs := Collect(DesignShiftedExp(p, cv, rng.New(seed)), 400000)
		m, s := stats.Mean(xs), stats.StdDev(xs)
		acc := 0.0
		for _, x := range xs {
			d := (x - m) / s
			acc += d * d * d
		}
		return acc / float64(len(xs))
	}
	s1 := skew(0.01, 0.9, 3)
	s2 := skew(0.3, 0.3, 4)
	if math.Abs(s1-2) > 0.1 || math.Abs(s2-2) > 0.1 {
		t.Fatalf("skewness = %v, %v, want ~2", s1, s2)
	}
}

func TestGeometricMeanInterval(t *testing.T) {
	r := rng.New(5)
	g := NewGeometric(0.05, r)
	xs := Collect(g, 200000)
	if got := stats.Mean(xs); math.Abs(got-20)/20 > 0.02 {
		t.Fatalf("geometric mean = %v, want 20", got)
	}
	for _, x := range xs[:1000] {
		if x < 1 || x != math.Trunc(x) {
			t.Fatalf("geometric interval %v not a positive integer", x)
		}
	}
}

func TestIIDProcessesUncorrelated(t *testing.T) {
	// Condition (C1) holds with equality for IID processes: lag-1
	// autocovariance ~ 0.
	r := rng.New(6)
	for _, proc := range []Process{
		DesignShiftedExp(0.1, 0.8, r),
		NewGeometric(0.1, r),
	} {
		xs := Collect(proc, 100000)
		ac := stats.Autocovariance(xs, 1)
		norm := ac / stats.Variance(xs)
		if math.Abs(norm) > 0.02 {
			t.Fatalf("%s: normalized lag-1 autocov = %v", proc.Name(), norm)
		}
	}
}

func TestPhasePositiveAutocovariance(t *testing.T) {
	// Slow phases make successive intervals positively correlated —
	// the scenario that breaks (C1).
	r := rng.New(7)
	ph := NewTwoPhase(100, 2, 0.02, r)
	xs := Collect(ph, 200000)
	norm := stats.Autocovariance(xs, 1) / stats.Variance(xs)
	if norm < 0.3 {
		t.Fatalf("slow-phase lag-1 autocorrelation = %v, want strongly positive", norm)
	}
	// Fast switching should wash the correlation out.
	fast := NewTwoPhase(100, 2, 0.5, rng.New(8))
	ys := Collect(fast, 200000)
	normFast := stats.Autocovariance(ys, 1) / stats.Variance(ys)
	if normFast > norm/2 {
		t.Fatalf("fast-phase correlation %v not much below slow %v", normFast, norm)
	}
}

func TestPhaseStationaryMean(t *testing.T) {
	r := rng.New(9)
	ph := NewTwoPhase(40, 10, 0.1, r)
	if got := ph.MeanInterval(); got != 25 {
		t.Fatalf("symmetric two-phase mean = %v, want 25", got)
	}
	xs := Collect(ph, 300000)
	if got := stats.Mean(xs); math.Abs(got-25)/25 > 0.05 {
		t.Fatalf("empirical phase mean = %v, want 25", got)
	}
}

func TestPhaseStateEvolves(t *testing.T) {
	r := rng.New(10)
	ph := NewTwoPhase(10, 10, 0.5, r)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		ph.Next()
		seen[ph.State()] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("chain did not visit both states: %v", seen)
	}
}

func TestBatchNegativeAutocovariance(t *testing.T) {
	// Batches of near-zero intervals after a normal one create negative
	// lag-1 covariance (a large interval is followed by tiny ones).
	r := rng.New(11)
	b := NewBatch(NewGeometric(0.01, r.Split()), 1.0, 2, 1, r)
	xs := Collect(b, 200000)
	norm := stats.Autocovariance(xs, 1) / stats.Variance(xs)
	if norm >= 0 {
		t.Fatalf("batch lag-1 autocorrelation = %v, want negative", norm)
	}
}

func TestBatchEmitsRuns(t *testing.T) {
	r := rng.New(12)
	b := NewBatch(NewGeometric(0.5, r.Split()), 1.0, 3, 0.25, r)
	xs := Collect(b, 40)
	// Every non-eps interval must be followed by exactly 3 eps values.
	for i := 0; i < len(xs)-4; i++ {
		if xs[i] != 0.25 {
			for j := 1; j <= 3; j++ {
				if xs[i+j] != 0.25 {
					t.Fatalf("batch run broken at %d: %v", i, xs[i:i+4])
				}
			}
			i += 3
		}
	}
}

func TestNames(t *testing.T) {
	r := rng.New(13)
	if n := DesignShiftedExp(0.1, 0.5, r).Name(); n != "shifted-exp" {
		t.Fatal(n)
	}
	if n := NewGeometric(0.1, r).Name(); n != "geometric" {
		t.Fatal(n)
	}
	if n := NewTwoPhase(1, 2, 0.1, r).Name(); n != "phase" {
		t.Fatal(n)
	}
	if n := NewBatch(NewGeometric(0.1, r), 0.1, 1, 1, r).Name(); n != "batch(geometric)" {
		t.Fatal(n)
	}
}

func TestPanics(t *testing.T) {
	r := rng.New(14)
	cases := []func(){
		func() { DesignShiftedExp(0, 0.5, r) },
		func() { DesignShiftedExp(0.1, 0, r) },
		func() { DesignShiftedExp(0.1, 1.5, r) },
		func() { NewShiftedExp(-1, 1, r) },
		func() { NewGeometric(0, r) },
		func() { NewTwoPhase(1, 2, 0, r) },
		func() { NewTwoPhase(1, 2, 1, r) },
		func() { NewPhase([][]float64{{0.5, 0.4}}, []float64{1, 2}, r) },
		func() { NewPhase([][]float64{{0.5, 0.5}, {2, -1}}, []float64{1, 2}, r) },
		func() { NewBatch(NewGeometric(0.5, r), -0.1, 1, 1, r) },
		func() { NewBatch(NewGeometric(0.5, r), 0.1, 1, 0, r) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: all processes emit strictly positive intervals, and the
// designed shifted exponential hits the requested mean for any (p, cv).
func TestQuickPositiveIntervals(t *testing.T) {
	r := rng.New(15)
	f := func(a, b uint8) bool {
		p := 0.01 + float64(a)/255*0.9
		cv := 0.05 + float64(b)/255*0.95
		proc := DesignShiftedExp(p, cv, r)
		if math.Abs(proc.MeanInterval()-1/p) > 1e-9 {
			return false
		}
		for i := 0; i < 50; i++ {
			if proc.Next() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
