// Package tfrc implements a TFRC (TCP-Friendly Rate Control, RFC 3448
// style) sender and receiver over any netsim.Network — the topology
// dumbbell or a multi-hop graph — the protocol whose long-run behavior
// the paper analyzes as the "comprehensive control".
//
// The receiver detects losses from sequence gaps (the simulator's FIFO
// paths never reorder), groups losses within one round-trip time into
// loss events, maintains the loss-interval history with the TFRC
// weights, and reports the loss-event rate p and the receive rate once
// per round-trip time. The sender smooths the RTT with an EWMA
// (q = 0.9), evaluates the configured throughput formula at (p, rtt) and
// paces packets at X = min(f(p, rtt), 2·X_recv), with slow start before
// the first loss event and a no-feedback fallback timer.
//
// The comprehensive-control element — including the still-open loss
// interval in the estimate when that raises it (eq. 4 of the paper) —
// can be disabled, as the paper does in its lab experiments.
package tfrc

import (
	"math"

	"repro/internal/des"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// FormulaKind selects the loss-throughput formula the sender uses.
type FormulaKind int

// Formula choices (paper §II-C).
const (
	// PFTKStandard is eq. 6 — the paper's lab/Internet setting.
	PFTKStandard FormulaKind = iota
	// PFTKSimplified is eq. 7 — the RFC 3448 recommendation.
	PFTKSimplified
	// SQRT is eq. 5.
	SQRT
)

// rateOf evaluates the selected formula at loss probability lossP
// without boxing the concrete formula value into the Formula
// interface. updateRate runs on every feedback packet, so the
// conversion build performs would be a per-event heap allocation;
// build stays for the cold paths that genuinely need the interface
// (formula inversion at receiver priming).
func (k FormulaKind) rateOf(p formula.Params, lossP float64) float64 {
	switch k {
	case PFTKStandard:
		return formula.NewPFTKStandard(p).Rate(lossP)
	case PFTKSimplified:
		return formula.NewPFTKSimplified(p).Rate(lossP)
	case SQRT:
		return formula.NewSQRT(p).Rate(lossP)
	default:
		panic("tfrc: unknown formula kind")
	}
}

func (k FormulaKind) build(p formula.Params) formula.Formula {
	switch k {
	case PFTKStandard:
		return formula.NewPFTKStandard(p)
	case PFTKSimplified:
		return formula.NewPFTKSimplified(p)
	case SQRT:
		return formula.NewSQRT(p)
	default:
		panic("tfrc: unknown formula kind")
	}
}

// Config holds the protocol constants.
type Config struct {
	// SegSize is the data packet size in bytes.
	SegSize int
	// FeedbackSize is the feedback packet size in bytes.
	FeedbackSize int
	// Window is the loss-interval estimator window L (TFRC default 8).
	Window int
	// Formula selects the loss-throughput function.
	Formula FormulaKind
	// Comprehensive enables the in-interval estimator increase (the
	// comprehensive control); the paper disables it in lab runs.
	Comprehensive bool
	// HistoryDiscounting additionally enables RFC 3448 §5.5 history
	// discounting of the closed intervals once the open interval grows
	// past twice the average. It only takes effect with Comprehensive.
	// The paper's analysis does not model discounting, so it defaults
	// to off; enable it to study the full RFC behavior.
	HistoryDiscounting bool
	// RTTq is the RTT EWMA constant (RFC 3448 q = 0.9).
	RTTq float64
	// InitialRate is the pre-feedback send rate in bytes/second.
	InitialRate float64
	// MinInterval floors the feedback interval in seconds.
	MinInterval float64
	// SendJitter randomizes each inter-packet gap uniformly in
	// [1-SendJitter, 1+SendJitter] times the nominal spacing. A small
	// value (ns-2 uses a comparable "overhead" randomization) breaks the
	// deterministic phase-locking between a paced source and a DropTail
	// queue, which otherwise skews the drop lottery. 0 disables.
	SendJitter float64
	// Seed drives the pacing jitter.
	Seed uint64
	// TotalPackets, when positive, bounds the transfer: after sending
	// this many data packets the sender goes done — it stops pacing,
	// cancels its no-feedback timer and ignores late feedback. Zero (the
	// default) keeps the persistent, unbounded sender. Session-churn
	// workloads (internal/arrivals) give each flow a finite volume.
	TotalPackets int64
	// IdleStop, when positive, lets the receiver's feedback clock die
	// out: after this many consecutive feedback intervals with no data
	// received the timer stops rescheduling (a fresh data packet re-arms
	// it). Zero (the default) keeps the RFC behavior of a feedback timer
	// that cycles forever — fine for persistent flows, but a departed
	// session would leak an immortal timer per flow. Purely local
	// receiver logic, so every executor reaches the stop identically.
	IdleStop int
}

// DefaultConfig returns the paper's protocol settings: 1000-byte
// packets, L = 8, PFTK-standard, comprehensive control on.
func DefaultConfig() Config {
	return Config{
		SegSize:       1000,
		FeedbackSize:  40,
		Window:        8,
		Formula:       PFTKStandard,
		Comprehensive: true,
		RTTq:          0.9,
		InitialRate:   2000,
		MinInterval:   0.01,
		SendJitter:    0.1,
		Seed:          1,
	}
}

func (c Config) validate() {
	if c.SegSize <= 0 || c.FeedbackSize <= 0 || c.Window < 1 ||
		c.RTTq < 0 || c.RTTq >= 1 || c.InitialRate <= 0 || c.MinInterval <= 0 ||
		c.SendJitter < 0 || c.SendJitter >= 1 ||
		c.TotalPackets < 0 || c.IdleStop < 0 {
		panic("tfrc: invalid config")
	}
}

// Stats summarizes a sender measurement window.
type Stats struct {
	// Duration is the window length in seconds.
	Duration float64
	// PacketsSent counts data packets sent in the window.
	PacketsSent int64
	// Throughput is the send rate in packets/second.
	Throughput float64
	// MeanRTT averages the sender's RTT samples in the window.
	MeanRTT float64
	// LossEvents counts receiver-detected loss events in the window.
	LossEvents int64
	// LossEventRate is LossEvents/PacketsSent (0 if nothing sent).
	LossEventRate float64
	// LossIntervals are the closed loss-event intervals (packets).
	LossIntervals []float64
	// PEstimate is the receiver's current loss-event rate estimate.
	PEstimate float64
	// FeedbackReceived counts receiver reports that reached the sender
	// in the window. Over a routed congested reverse path this falls
	// short of the reports the receiver issued — the rest were dropped.
	FeedbackReceived int64
	// NoFeedbackHalvings counts no-feedback timer expirations in the
	// window: each one halved the send rate because a full no-feedback
	// interval passed without a report (RFC 3448 §4.4).
	NoFeedbackHalvings int64
	// MinRate is the lowest allowed send rate (bytes/second) the control
	// loop reached in the window — the depth of the backoff under an
	// outage or feedback starvation, invisible in window-mean throughput.
	MinRate float64
}

// Sender is the TFRC data source.
type Sender struct {
	cfg   Config
	sched *des.Scheduler
	net   netsim.Network
	flow  int

	rate      float64 // bytes/second
	rtt       *estimator.RTT
	nextSeq   int64
	slowStart bool
	random    *rng.RNG

	sendTimer  des.Timer
	nfTimer    des.Timer
	receiver   *Receiver
	started    bool
	done       bool
	lastRecvRt float64
	lastP      float64
	trace      *obs.Tracer

	// onDone, when set (OnDone), fires once, from inside the event that
	// sends the transfer's last packet. The churn engine hooks its
	// per-class completion accounting here.
	onDone func()

	// Bound callbacks, allocated once so the per-packet and per-timer
	// scheduling path stays allocation-free.
	sendNextFn     des.Event
	onNoFeedbackFn des.Event

	measStart float64
	pktsSent  int64
	minRate   float64
	rttAcc    stats.Welford

	fbSeen     int64
	nfHalvings int64
	fbBase     int64
	nfBase     int64
}

// Receiver is the TFRC feedback source.
type Receiver struct {
	cfg   Config
	sched *des.Scheduler
	net   netsim.Network
	flow  int

	expected   int64
	highest    int64
	events     *netsim.LossEventCounter
	est        *estimator.LossIntervalEstimator
	sawLoss    bool
	senderRTT  float64
	lastSentAt float64
	lastRecvAt float64

	bytesSinceFB float64
	lastFBAt     float64
	fbTimer      des.Timer
	sendFBFn     des.Event

	// silentFB counts consecutive feedback intervals without data; at
	// cfg.IdleStop the feedback clock stops rescheduling and onIdle
	// (when set) fires.
	silentFB int
	onIdle   func()

	// PacketsReceived counts data packets delivered.
	PacketsReceived int64

	eventsBase int64
	intervals0 int
	trace      *obs.Tracer
}

// NewFlow wires a TFRC sender/receiver pair onto the dumbbell flow and
// returns both. Call sender.Start to begin.
func NewFlow(sched *des.Scheduler, net netsim.Network, flow int, cfg Config, fwdExtra, revDelay float64) (*Sender, *Receiver) {
	return NewFlowOn(sched, net, sched, net, flow, cfg, fwdExtra, revDelay)
}

// NewFlowOn is NewFlow with the two endpoints placed on separate
// scheduler/network pairs, for executors that split one simulation
// across several event loops (internal/shard): the sender runs its
// timers on sndSched and sends through sndNet, the receiver on rcvSched
// through rcvNet. The flow is attached via the sender's network. With
// both pairs identical it is exactly NewFlow.
func NewFlowOn(sndSched *des.Scheduler, sndNet netsim.Network, rcvSched *des.Scheduler, rcvNet netsim.Network, flow int, cfg Config, fwdExtra, revDelay float64) (*Sender, *Receiver) {
	snd, rcv := NewFlowRaw(sndSched, sndNet, rcvSched, rcvNet, flow, cfg)
	sndNet.AttachFlow(flow, snd, rcv, fwdExtra, revDelay)
	return snd, rcv
}

// NewFlowRaw builds the endpoint pair without attaching the flow to the
// network. Callers that resolve routes themselves — the churn engine
// attaches with explicit hop slices through its executor — attach
// separately; everything else wants NewFlowOn.
func NewFlowRaw(sndSched *des.Scheduler, sndNet netsim.Network, rcvSched *des.Scheduler, rcvNet netsim.Network, flow int, cfg Config) (*Sender, *Receiver) {
	cfg.validate()
	if sndSched == nil || sndNet == nil || rcvSched == nil || rcvNet == nil {
		panic("tfrc: nil scheduler or network")
	}
	rcv := &Receiver{
		cfg:   cfg,
		sched: rcvSched,
		net:   rcvNet,
		flow:  flow,
		est:   estimator.NewLossIntervalEstimator(estimator.TFRCWeights(cfg.Window)),
		trace: netsim.TracerOf(rcvNet),
	}
	rcv.events = netsim.NewLossEventCounter(func() float64 {
		if rcv.senderRTT > 0 {
			return rcv.senderRTT
		}
		return 0.1
	})
	rcv.sendFBFn = rcv.sendFeedback
	snd := &Sender{
		cfg:       cfg,
		sched:     sndSched,
		net:       sndNet,
		flow:      flow,
		rate:      cfg.InitialRate,
		rtt:       estimator.NewRTT(cfg.RTTq),
		slowStart: true,
		receiver:  rcv,
		random:    rng.New(cfg.Seed ^ uint64(flow)*0x9e3779b97f4a7c15),
		trace:     netsim.TracerOf(sndNet),
	}
	snd.sendNextFn = snd.sendNext
	snd.onNoFeedbackFn = snd.onNoFeedback
	return snd, rcv
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.started {
		panic("tfrc: sender already started")
	}
	s.started = true
	s.measStart = s.sched.Now()
	s.minRate = s.rate
	s.sendNext()
	s.armNoFeedback()
}

// Rate returns the current send rate in bytes/second.
func (s *Sender) Rate() float64 { return s.rate }

// Flow returns the sender's current flow id.
func (s *Sender) Flow() int { return s.flow }

// SRTT returns the smoothed RTT estimate (0 before the first feedback).
func (s *Sender) SRTT() float64 { return s.rtt.Value() }

// ResetStats restarts the sender and receiver measurement windows.
func (s *Sender) ResetStats() {
	s.measStart = s.sched.Now()
	s.pktsSent = 0
	s.minRate = s.rate
	s.rttAcc = stats.Welford{}
	s.fbBase = s.fbSeen
	s.nfBase = s.nfHalvings
	s.receiver.eventsBase = s.receiver.events.Events
	s.receiver.intervals0 = len(s.receiver.events.Intervals)
}

// Stats returns the measurement-window summary.
func (s *Sender) Stats() Stats {
	dur := s.sched.Now() - s.measStart
	r := s.receiver
	st := Stats{
		Duration:           dur,
		PacketsSent:        s.pktsSent,
		MeanRTT:            s.rttAcc.Mean(),
		LossEvents:         r.events.Events - r.eventsBase,
		PEstimate:          r.LossEventRateEstimate(),
		FeedbackReceived:   s.fbSeen - s.fbBase,
		NoFeedbackHalvings: s.nfHalvings - s.nfBase,
		MinRate:            s.minRate,
	}
	st.LossIntervals = append(st.LossIntervals, r.events.Intervals[r.intervals0:]...)
	if s.pktsSent > 0 {
		st.LossEventRate = float64(st.LossEvents) / float64(s.pktsSent)
	}
	if dur > 0 {
		st.Throughput = float64(s.pktsSent) / dur
	}
	return st
}

func (s *Sender) sendNext() {
	now := s.sched.Now()
	s.pktsSent++
	p := s.net.GetPacket()
	p.Flow = s.flow
	p.Seq = s.nextSeq
	p.Size = s.cfg.SegSize
	p.SentAt = now
	p.Kind = netsim.Data
	p.RTTEst = s.rtt.Value()
	s.net.SendForward(p)
	s.nextSeq++
	if s.cfg.TotalPackets > 0 && s.nextSeq >= s.cfg.TotalPackets {
		// Transfer complete: stop pacing and let the control loop die.
		// sendTimer was the event that got us here, so neither timer is
		// live past this point.
		s.done = true
		s.nfTimer.Cancel()
		if s.onDone != nil {
			s.onDone()
		}
		return
	}
	gap := float64(s.cfg.SegSize) / s.rate
	if s.cfg.SendJitter > 0 {
		gap *= 1 + s.cfg.SendJitter*(2*s.random.Float64()-1)
	}
	s.sendTimer = s.sched.After(gap, s.sendNextFn)
}

// OnDone registers a callback fired once, when the sender finishes a
// finite transfer (cfg.TotalPackets > 0). It must be set before Start.
func (s *Sender) OnDone(fn func()) { s.onDone = fn }

// Done reports whether a finite transfer has sent its full volume.
func (s *Sender) Done() bool { return s.done }

// Quiesced reports whether the sender is done and holds no live timers,
// i.e. it will never schedule another event. The churn engine requires
// this before recycling the endpoint pair.
func (s *Sender) Quiesced() bool {
	return s.done && !s.sendTimer.Active() && !s.nfTimer.Active()
}

// Receive implements netsim.Endpoint for the feedback stream.
func (s *Sender) Receive(p *netsim.Packet) {
	if p.Kind != netsim.Feedback {
		return
	}
	s.fbSeen++
	if s.done {
		// Late report for a finished transfer: count it, but leave the
		// rate and timers alone so the flow stays quiescent.
		return
	}
	now := s.sched.Now()
	if p.Echo > 0 && now > p.Echo {
		sample := now - p.Echo
		s.rtt.Sample(sample)
		s.rttAcc.Add(sample)
	}
	s.lastRecvRt = p.RecvRate
	s.updateRate(p.LossRate, p.RecvRate)
	s.noteMinRate()
	s.armNoFeedback()
}

func (s *Sender) updateRate(p, recvRate float64) {
	if p <= 0 {
		// Slow-start phase: double up to twice the received rate.
		if recvRate > 0 {
			s.rate = math.Max(s.cfg.InitialRate, 2*recvRate)
		} else {
			s.rate *= 2
		}
		return
	}
	s.slowStart = false
	rtt := s.rtt.Value()
	if rtt <= 0 {
		rtt = 0.1
	}
	calc := s.cfg.Formula.rateOf(formula.ParamsForRTT(rtt), math.Min(p, 1)) *
		float64(s.cfg.SegSize) // bytes/s
	// RFC 5348 §4.3: while the loss estimate is rising the rate is
	// capped at the receive rate; otherwise at twice the receive rate.
	limit := 2 * recvRate
	if p > s.lastP {
		limit = recvRate
	}
	s.lastP = p
	if limit <= 0 {
		limit = calc
	}
	s.rate = math.Min(calc, limit)
	// Floor at one packet per two round-trip times (ns-2 TFRC enforces
	// a comparable minimum) so the estimator's open interval can always
	// decay a pessimistic loss estimate within a reasonable horizon.
	s.rate = math.Max(s.rate, float64(s.cfg.SegSize)/(2*rtt))
}

func (s *Sender) armNoFeedback() {
	s.nfTimer.Cancel()
	// RFC 3448 §4.4: the no-feedback interval is max(4R, 2s/X) — the
	// 2s/X term keeps slow senders from spiraling down when packets
	// (and hence feedback) are spaced wider than four round-trip times.
	d := 2.0
	if rtt := s.rtt.Value(); rtt > 0 {
		d = math.Max(4*rtt, 2*float64(s.cfg.SegSize)/s.rate)
	}
	s.nfTimer = s.sched.After(d, s.onNoFeedbackFn)
}

// onNoFeedback fires when no feedback arrived for a full no-feedback
// interval — the report was lost on the reverse path, or the receiver
// went silent: halve the rate and keep waiting. The floor of one packet
// per 8 seconds keeps the sender probing so a recovered reverse path
// can restart the control loop.
func (s *Sender) onNoFeedback() {
	s.nfHalvings++
	s.rate = math.Max(s.rate/2, float64(s.cfg.SegSize)/8)
	s.trace.Emit(s.sched.Now(), obs.EvNoFeedback, int32(s.flow), -1, s.rate)
	s.noteMinRate()
	s.armNoFeedback()
}

// noteMinRate records the window's rate floor after any rate change.
func (s *Sender) noteMinRate() {
	if s.rate < s.minRate {
		s.minRate = s.rate
	}
}

// LossEventRateEstimate returns the receiver's current p estimate: the
// reciprocal of the weighted average loss interval (including the open
// interval when the comprehensive element is enabled), or 0 before the
// first loss event.
func (r *Receiver) LossEventRateEstimate() float64 {
	if !r.sawLoss {
		return 0
	}
	var avg float64
	switch {
	case r.cfg.Comprehensive && r.cfg.HistoryDiscounting:
		avg = r.est.EstimateWithOpenDiscounted(r.events.OpenInterval(r.highest))
	case r.cfg.Comprehensive:
		avg = r.est.EstimateWithOpen(r.events.OpenInterval(r.highest))
	default:
		avg = r.est.Estimate()
	}
	if avg <= 0 {
		return 0
	}
	return math.Min(1, 1/avg)
}

// LossEvents exposes the receiver's loss-event counter (read-only use).
func (r *Receiver) LossEvents() *netsim.LossEventCounter { return r.events }

// Flow returns the receiver's current flow id.
func (r *Receiver) Flow() int { return r.flow }

// Receive implements netsim.Endpoint for the forward data stream.
func (r *Receiver) Receive(p *netsim.Packet) {
	if p.Kind != netsim.Data {
		return
	}
	now := r.sched.Now()
	r.PacketsReceived++
	r.bytesSinceFB += float64(p.Size)
	r.senderRTT = p.RTTEst
	r.lastSentAt = p.SentAt
	r.lastRecvAt = now

	if p.Seq > r.expected {
		// FIFO path: the gap [expected, seq) was lost.
		for lost := r.expected; lost < p.Seq; lost++ {
			if r.events.OnLoss(now, lost) {
				r.onNewEvent(lost)
			}
		}
	}
	if p.Seq >= r.expected {
		r.expected = p.Seq + 1
	}
	if p.Seq > r.highest {
		r.highest = p.Seq
	}
	if !r.fbTimer.Active() {
		r.scheduleFeedback()
	}
}

func (r *Receiver) onNewEvent(seq int64) {
	r.trace.Emit(r.sched.Now(), obs.EvLoss, int32(r.flow), -1, float64(seq))
	if !r.sawLoss {
		r.sawLoss = true
		// RFC 3448 §6.3.1: synthesize the first loss interval so that
		// the initial p matches the receive rate seen so far, keeping
		// the rate continuous across the first loss.
		r.primeFirstInterval()
		return
	}
	// Feed newly closed intervals into the estimator.
	n := len(r.events.Intervals)
	if n > 0 {
		r.est.Observe(r.events.Intervals[n-1])
	}
}

func (r *Receiver) primeFirstInterval() {
	rtt := r.senderRTT
	if rtt <= 0 {
		rtt = 0.1
	}
	recvRate := r.bytesSinceFB / math.Max(r.sched.Now()-r.lastFBAt, r.cfg.MinInterval)
	pktRate := recvRate / float64(r.cfg.SegSize)
	f := r.cfg.Formula.build(formula.ParamsForRTT(rtt))
	if p0, err := formula.Invert(f, pktRate, 1e-7, 0.999); err == nil && p0 > 0 {
		r.est.Prime(1 / p0)
		return
	}
	// Fallback: prime with the packets seen so far.
	r.est.Prime(math.Max(float64(r.highest), 1))
}

func (r *Receiver) scheduleFeedback() {
	rtt := r.senderRTT
	if rtt <= 0 {
		rtt = 0.1
	}
	interval := math.Max(rtt, r.cfg.MinInterval)
	r.fbTimer = r.sched.After(interval, r.sendFBFn)
}

func (r *Receiver) sendFeedback() {
	now := r.sched.Now()
	if r.bytesSinceFB == 0 {
		// No data since the last report: stay silent (RFC 3448 §6.2),
		// letting the sender's no-feedback timer take over. With IdleStop
		// configured, enough consecutive silent intervals stop the clock
		// entirely (a fresh data packet re-arms it via Receive).
		if r.cfg.IdleStop > 0 {
			r.silentFB++
			if r.silentFB >= r.cfg.IdleStop {
				if r.onIdle != nil {
					r.onIdle()
				}
				return
			}
		}
		r.scheduleFeedback()
		return
	}
	r.silentFB = 0
	elapsed := now - r.lastFBAt
	if elapsed <= 0 {
		elapsed = r.cfg.MinInterval
	}
	recvRate := r.bytesSinceFB / elapsed
	r.bytesSinceFB = 0
	r.lastFBAt = now
	// Echo is adjusted for the hold time between the last data arrival
	// and this feedback so the sender measures the true RTT.
	echo := 0.0
	if r.lastSentAt > 0 {
		echo = r.lastSentAt + (now - r.lastRecvAt)
	}
	p := r.net.GetPacket()
	p.Flow = r.flow
	p.Kind = netsim.Feedback
	p.Size = r.cfg.FeedbackSize
	p.Echo = echo
	p.LossRate = r.LossEventRateEstimate()
	p.RecvRate = recvRate
	r.net.SendReverse(p)
	r.scheduleFeedback()
}

// OnIdle registers a callback fired when the feedback clock stops after
// cfg.IdleStop consecutive silent intervals. It must be set before the
// sender starts.
func (r *Receiver) OnIdle(fn func()) { r.onIdle = fn }

// Idle reports whether the receiver holds no live feedback timer, i.e.
// it will never schedule another event until new data arrives.
func (r *Receiver) Idle() bool { return !r.fbTimer.Active() }

// Renew reinitializes an existing sender/receiver pair in place for a
// new flow, reusing every internal buffer (estimator history, loss
// intervals, RNG state) so churn workloads recycle endpoints without
// allocating. The pair must be quiescent (sender Quiesced, receiver
// Idle) and the new config must keep the estimator window; the flow is
// re-attached via the sender's network exactly as NewFlowOn does.
func Renew(snd *Sender, rcv *Receiver, flow int, cfg Config, fwdExtra, revDelay float64) {
	RenewRaw(snd, rcv, flow, cfg)
	snd.net.AttachFlow(flow, snd, rcv, fwdExtra, revDelay)
}

// RenewRaw is Renew without the attach step, for callers that attach
// with explicit hop slices through their executor.
func RenewRaw(snd *Sender, rcv *Receiver, flow int, cfg Config) {
	cfg.validate()
	if cfg.Window != rcv.cfg.Window {
		panic("tfrc: Renew cannot change the estimator window")
	}
	if !snd.Quiesced() || !rcv.Idle() {
		panic("tfrc: Renew on a non-quiescent flow")
	}

	rcv.cfg = cfg
	rcv.flow = flow
	rcv.expected = 0
	rcv.highest = 0
	rcv.events.Reset()
	rcv.est.Reset()
	rcv.sawLoss = false
	rcv.senderRTT = 0
	rcv.lastSentAt = 0
	rcv.lastRecvAt = 0
	rcv.bytesSinceFB = 0
	rcv.lastFBAt = 0
	rcv.fbTimer = des.Timer{}
	rcv.silentFB = 0
	rcv.PacketsReceived = 0
	rcv.eventsBase = 0
	rcv.intervals0 = 0

	snd.cfg = cfg
	snd.flow = flow
	snd.rate = cfg.InitialRate
	snd.rtt.Reset()
	snd.nextSeq = 0
	snd.slowStart = true
	snd.random.Reseed(cfg.Seed ^ uint64(flow)*0x9e3779b97f4a7c15)
	snd.sendTimer = des.Timer{}
	snd.nfTimer = des.Timer{}
	snd.started = false
	snd.done = false
	snd.lastRecvRt = 0
	snd.lastP = 0
	snd.measStart = 0
	snd.pktsSent = 0
	snd.minRate = 0
	snd.rttAcc = stats.Welford{}
	snd.fbSeen = 0
	snd.nfHalvings = 0
	snd.fbBase = 0
	snd.nfBase = 0
}
