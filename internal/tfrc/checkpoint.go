package tfrc

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
)

// Save writes the sender's run-time state. Configuration comes from the
// rebuild, except the transfer volume: churn flows draw TotalPackets per
// arrival, so it rides in the snapshot. Timers resolve through cap (the
// capture of the sender's scheduler).
func (s *Sender) Save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(s.flow)
	w.I64(s.cfg.TotalPackets)
	w.F64(s.rate)
	s.rtt.Save(w)
	w.I64(s.nextSeq)
	w.Bool(s.slowStart)
	for _, word := range s.random.State() {
		w.U64(word)
	}
	w.Timer(cap.StateOf(s.sendTimer))
	w.Timer(cap.StateOf(s.nfTimer))
	w.Bool(s.started)
	w.Bool(s.done)
	w.F64(s.lastRecvRt)
	w.F64(s.lastP)
	w.F64(s.measStart)
	w.I64(s.pktsSent)
	w.F64(s.minRate)
	s.rttAcc.Save(w)
	w.I64(s.fbSeen)
	w.I64(s.nfHalvings)
	w.I64(s.fbBase)
	w.I64(s.nfBase)
}

// Restore overlays state saved by Save onto a freshly built sender for
// the same flow and re-arms its pacing and no-feedback timers.
func (s *Sender) Restore(r *checkpoint.Reader) {
	if flow := r.Int(); flow != s.flow {
		r.Fail("tfrc sender snapshot is for flow %d, rebuilt flow %d", flow, s.flow)
		return
	}
	s.cfg.TotalPackets = r.I64()
	s.rate = r.F64()
	s.rtt.Restore(r)
	s.nextSeq = r.I64()
	s.slowStart = r.Bool()
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	s.sendTimer = s.sched.RestoreTimer(r.Timer(), s.sendNextFn)
	s.nfTimer = s.sched.RestoreTimer(r.Timer(), s.onNoFeedbackFn)
	s.started = r.Bool()
	s.done = r.Bool()
	s.lastRecvRt = r.F64()
	s.lastP = r.F64()
	s.measStart = r.F64()
	s.pktsSent = r.I64()
	s.minRate = r.F64()
	s.rttAcc.Restore(r)
	s.fbSeen = r.I64()
	s.nfHalvings = r.I64()
	s.fbBase = r.I64()
	s.nfBase = r.I64()
	if r.Err() == nil {
		s.random.SetState(st)
	}
}

// Save writes the receiver's run-time state. Timers resolve through cap
// (the capture of the receiver's scheduler, which differs from the
// sender's on a sharded executor).
func (rc *Receiver) Save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(rc.flow)
	w.I64(rc.expected)
	w.I64(rc.highest)
	rc.events.Save(w)
	rc.est.Save(w)
	w.Bool(rc.sawLoss)
	w.F64(rc.senderRTT)
	w.F64(rc.lastSentAt)
	w.F64(rc.lastRecvAt)
	w.F64(rc.bytesSinceFB)
	w.F64(rc.lastFBAt)
	w.Timer(cap.StateOf(rc.fbTimer))
	w.Int(rc.silentFB)
	w.I64(rc.PacketsReceived)
	w.I64(rc.eventsBase)
	w.Int(rc.intervals0)
}

// Restore overlays state saved by Save onto a freshly built receiver
// for the same flow and re-arms its feedback timer.
func (rc *Receiver) Restore(r *checkpoint.Reader) {
	if flow := r.Int(); flow != rc.flow {
		r.Fail("tfrc receiver snapshot is for flow %d, rebuilt flow %d", flow, rc.flow)
		return
	}
	rc.expected = r.I64()
	rc.highest = r.I64()
	rc.events.Restore(r)
	rc.est.Restore(r)
	rc.sawLoss = r.Bool()
	rc.senderRTT = r.F64()
	rc.lastSentAt = r.F64()
	rc.lastRecvAt = r.F64()
	rc.bytesSinceFB = r.F64()
	rc.lastFBAt = r.F64()
	rc.fbTimer = rc.sched.RestoreTimer(r.Timer(), rc.sendFBFn)
	rc.silentFB = r.Int()
	rc.PacketsReceived = r.I64()
	rc.eventsBase = r.I64()
	rc.intervals0 = r.Int()
}

// Scheduler returns the scheduler the sender's timers live on, so a
// snapshot orchestrator can resolve them against the right capture.
func (s *Sender) Scheduler() *des.Scheduler { return s.sched }

// Scheduler returns the scheduler the receiver's feedback timer lives
// on.
func (rc *Receiver) Scheduler() *des.Scheduler { return rc.sched }

// Retire marks a never-started sender as completed so it can sit in a
// recycling pool: Renew demands a Quiesced (done) sender, a state a
// running flow only reaches by finishing its transfer. A snapshot
// restore uses it to refill churn pools with freshly built pairs.
func (s *Sender) Retire() {
	if s.started || s.done {
		panic("tfrc: Retire on a started sender")
	}
	s.done = true
}
