package tfrc

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tcp"
	"repro/internal/topology"
)

func paramsForRTT(rtt float64) formula.Params { return formula.ParamsForRTT(rtt) }

func buildDumbbell(s *des.Scheduler, rate, delay float64, buffer int) *topology.Dumbbell {
	link := netsim.NewLink(s, rate, delay, netsim.NewDropTail(buffer))
	return topology.NewDumbbell(s, link)
}

func buildREDDumbbell(s *des.Scheduler, rate, delay float64, bdpPkts float64, seed uint64) *topology.Dumbbell {
	q := netsim.NewRED(netsim.PaperRED(bdpPkts), rate, rng.New(seed))
	link := netsim.NewLink(s, rate, delay, q)
	return topology.NewDumbbell(s, link)
}

func TestSingleFlowFillsLink(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, rcv := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(30)
	snd.ResetStats()
	s.RunUntil(230)
	st := snd.Stats()
	if st.Throughput < 800 {
		t.Fatalf("throughput = %v pkts/s, want near capacity 1250", st.Throughput)
	}
	if st.Throughput > 1400 {
		t.Fatalf("throughput = %v pkts/s above capacity", st.Throughput)
	}
	if st.LossEvents == 0 {
		t.Fatal("no loss events")
	}
	if rcv.PacketsReceived == 0 {
		t.Fatal("receiver starved")
	}
}

func TestSlowStartRampsUp(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 500)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	initial := snd.Rate()
	s.RunUntil(3)
	if snd.Rate() < 4*initial {
		t.Fatalf("rate %v did not ramp from %v", snd.Rate(), initial)
	}
}

func TestRTTEstimate(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.02, 400)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0.005, 0.025)
	snd.Start()
	s.RunUntil(5)
	base := net.BaseRTT(1)
	if snd.SRTT() < base*0.9 || snd.SRTT() > base+0.4 {
		t.Fatalf("srtt = %v, base = %v", snd.SRTT(), base)
	}
}

func TestPEstimateTracksBernoulliLoss(t *testing.T) {
	// Behind a RED-free DropTail there is no easy fixed p; instead use a
	// lossy middlebox: wrap the deliver hook to drop ~2% of data packets.
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e7, 0.02, 10000) // no congestion loss
	cfg := DefaultConfig()
	snd, rcv := NewFlow(&s, net, 1, cfg, 0, 0.025)
	// Interpose a Bernoulli dropper on the bottleneck's deliver path.
	inner := net.Bottleneck.Deliver
	r := rng.New(5)
	const dropP = 0.02
	net.Bottleneck.Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.Data && r.Bernoulli(dropP) {
			return
		}
		inner(p)
	}
	snd.Start()
	s.RunUntil(60)
	snd.ResetStats()
	s.RunUntil(360)
	st := snd.Stats()
	if st.LossEvents < 50 {
		t.Fatalf("loss events = %d, want many", st.LossEvents)
	}
	// With random loss, the loss-EVENT rate is below the packet loss
	// probability (several drops can share an RTT) but same order.
	if st.LossEventRate <= dropP/10 || st.LossEventRate > dropP*1.5 {
		t.Fatalf("loss-event rate = %v for drop prob %v", st.LossEventRate, dropP)
	}
	if st.PEstimate <= 0 {
		t.Fatal("p estimate = 0 after losses")
	}
	// The estimate and the measured event rate agree to a factor ~2.
	ratio := st.PEstimate / st.LossEventRate
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("p estimate %v vs measured %v (ratio %v)", st.PEstimate, st.LossEventRate, ratio)
	}
	if rcv.LossEventRateEstimate() != st.PEstimate {
		t.Fatal("stats PEstimate diverges from receiver")
	}
}

func TestThroughputMatchesFormulaUnderRandomLoss(t *testing.T) {
	// With a fixed Bernoulli drop probability and no queueing, TFRC's
	// long-run rate should be near f(p, rtt) evaluated at its own
	// measured p — i.e. roughly conservative (Claim 1 regime).
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e8, 0.04, 100000)
	cfg := DefaultConfig()
	snd, _ := NewFlow(&s, net, 1, cfg, 0, 0.045)
	inner := net.Bottleneck.Deliver
	r := rng.New(9)
	net.Bottleneck.Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.Data && r.Bernoulli(0.01) {
			return
		}
		inner(p)
	}
	snd.Start()
	s.RunUntil(100)
	snd.ResetStats()
	s.RunUntil(700)
	st := snd.Stats()
	if st.LossEvents < 100 {
		t.Fatalf("too few loss events: %d", st.LossEvents)
	}
	// Evaluate PFTK-standard at the measured (p, rtt).
	f := PFTKStandard.build(paramsForRTT(st.MeanRTT))
	p := 1 / meanOf(st.LossIntervals)
	predicted := f.Rate(p)
	normalized := st.Throughput / predicted
	if normalized < 0.5 || normalized > 1.2 {
		t.Fatalf("normalized throughput = %v (x=%v, f=%v, p=%v)",
			normalized, st.Throughput, predicted, p)
	}
}

func TestTFRCSharesWithTCP(t *testing.T) {
	// One TFRC and one TCP on a RED bottleneck: neither starves, and
	// their throughput ratio is within the broad band the paper reports.
	var s des.Scheduler
	rate := 1.25e6
	rtt := 0.05
	bdp := rate / 1000 * rtt
	net := buildREDDumbbell(&s, rate, 0.01, bdp, 77)
	net.SetReverseJitter(0.2, 13)
	tsnd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	csnd, _ := tcp.NewFlow(&s, net, 2, tcp.DefaultConfig(), 0, 0.015)
	tsnd.Start()
	s.At(0.21, csnd.Start)
	s.RunUntil(50)
	tsnd.ResetStats()
	csnd.ResetStats()
	s.RunUntil(550)
	xt := tsnd.Stats().Throughput
	xc := csnd.Stats().Throughput
	if xt <= 50 || xc <= 50 {
		t.Fatalf("starvation: tfrc %v, tcp %v", xt, xc)
	}
	ratio := xt / xc
	if ratio < 0.3 || ratio > 3.5 {
		t.Fatalf("tfrc/tcp ratio = %v, want within [0.3, 3.5]", ratio)
	}
}

func TestClaim4LossEventRateOrdering(t *testing.T) {
	// Figure 17 (right): competing over DropTail, TCP sees a larger
	// loss-event rate than TFRC. Reverse-path jitter models real ACK
	// timing noise; without it the deterministic ack clock slots TCP
	// arrivals into queue vacancies with unphysical precision (see
	// DESIGN.md).
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 80)
	net.SetReverseJitter(0.2, 7)
	tsnd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	csnd, _ := tcp.NewFlow(&s, net, 2, tcp.DefaultConfig(), 0, 0.015)
	tsnd.Start()
	s.At(0.33, csnd.Start)
	s.RunUntil(50)
	tsnd.ResetStats()
	csnd.ResetStats()
	s.RunUntil(650)
	pt := tsnd.Stats().LossEventRate
	pc := csnd.Stats().LossEventRate
	if pt <= 0 || pc <= 0 {
		t.Fatalf("degenerate loss rates: tfrc %v, tcp %v", pt, pc)
	}
	if pc <= pt {
		t.Fatalf("TCP loss-event rate %v should exceed TFRC's %v", pc, pt)
	}
}

func TestComprehensiveToggle(t *testing.T) {
	// The comprehensive element raises the p estimate's responsiveness
	// to long loss-free periods: with it on, the estimate decays during
	// the open interval; with it off, it is frozen between events.
	run := func(comprehensive bool) float64 {
		var s des.Scheduler
		net := buildDumbbell(&s, 1.25e7, 0.02, 10000)
		cfg := DefaultConfig()
		cfg.Comprehensive = comprehensive
		snd, _ := NewFlow(&s, net, 1, cfg, 0, 0.025)
		inner := net.Bottleneck.Deliver
		r := rng.New(31)
		net.Bottleneck.Deliver = func(p *netsim.Packet) {
			if p.Kind == netsim.Data && r.Bernoulli(0.005) {
				return
			}
			inner(p)
		}
		snd.Start()
		s.RunUntil(60)
		snd.ResetStats()
		s.RunUntil(360)
		return snd.Stats().Throughput
	}
	on := run(true)
	off := run(false)
	// Proposition 2 at the protocol level: comprehensive >= basic
	// (within simulation noise).
	if on < off*0.9 {
		t.Fatalf("comprehensive %v well below basic %v", on, off)
	}
}

func TestNoFeedbackTimerHalvesRate(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(5)
	rateBefore := snd.Rate()
	// Sever the reverse path: feedback stops arriving.
	net.Bottleneck.Deliver = func(p *netsim.Packet) {}
	s.RunUntil(30)
	if snd.Rate() >= rateBefore/2 {
		t.Fatalf("rate %v did not halve from %v without feedback", snd.Rate(), rateBefore)
	}
}

// blackholeNet drops every reverse-path packet: the severed-feedback
// extreme of a routed congested reverse path.
type blackholeNet struct{ *topology.Dumbbell }

func (b blackholeNet) SendReverse(p *netsim.Packet) { b.PutPacket(p) }

// Table-driven check of the no-feedback halving schedule (RFC 3448
// §4.4): with every receiver report lost, the rate halves once per
// no-feedback interval — 2 s while no RTT sample exists — down to the
// floor of one segment per 8 seconds, and the sender counts each
// expiration.
func TestNoFeedbackHalvingSchedule(t *testing.T) {
	cfg := DefaultConfig() // InitialRate 2000 B/s, SegSize 1000
	floor := float64(cfg.SegSize) / 8
	cases := []struct {
		intervals int
		wantRate  float64
	}{
		{1, 1000},
		{2, 500},
		{3, 250},
		{4, floor}, // 125 = the floor exactly
		{6, floor}, // pinned at the floor, halvings keep counting
	}
	for _, tc := range cases {
		var s des.Scheduler
		net := blackholeNet{buildDumbbell(&s, 1.25e6, 0.01, 64)}
		snd, _ := NewFlow(&s, net, 1, cfg, 0, 0.015)
		snd.Start()
		// Expirations land at exactly 2, 4, 6, ... seconds; sample just
		// after the tc.intervals-th one.
		s.RunUntil(2*float64(tc.intervals) + 0.5)
		if got := snd.Rate(); math.Abs(got-tc.wantRate) > 1e-9 {
			t.Errorf("after %d lost intervals: rate = %v, want %v",
				tc.intervals, got, tc.wantRate)
		}
		st := snd.Stats()
		if st.NoFeedbackHalvings != int64(tc.intervals) {
			t.Errorf("after %d lost intervals: halvings = %d", tc.intervals, st.NoFeedbackHalvings)
		}
		if st.FeedbackReceived != 0 {
			t.Errorf("blackholed reverse path delivered %d reports", st.FeedbackReceived)
		}
	}
}

// Feedback that resumes after a silent stretch restarts the control
// loop: the sender leaves the floor and the stats count the report.
func TestNoFeedbackRecovery(t *testing.T) {
	var s des.Scheduler
	d := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, _ := NewFlow(&s, blackholeNet{d}, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(9)
	if snd.Stats().NoFeedbackHalvings < 4 {
		t.Fatalf("halvings = %d before recovery", snd.Stats().NoFeedbackHalvings)
	}
	starved := snd.Rate()
	// Hand-deliver one report, as if the reverse path healed.
	snd.Receive(&netsim.Packet{Kind: netsim.Feedback, RecvRate: 5e4, Echo: 8.9})
	if snd.Rate() <= starved {
		t.Fatalf("rate %v did not recover from %v after feedback resumed", snd.Rate(), starved)
	}
	if snd.Stats().FeedbackReceived != 1 {
		t.Fatalf("feedback count = %d", snd.Stats().FeedbackReceived)
	}
}

func TestStatsWindowing(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1.25e6, 0.01, 64)
	snd, _ := NewFlow(&s, net, 1, DefaultConfig(), 0, 0.015)
	snd.Start()
	s.RunUntil(20)
	snd.ResetStats()
	st := snd.Stats()
	if st.PacketsSent != 0 || st.LossEvents != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	s.RunUntil(40)
	st = snd.Stats()
	if st.PacketsSent == 0 || math.Abs(st.Duration-20) > 1e-9 {
		t.Fatalf("window stats: %+v", st)
	}
}

func TestSenderIgnoresNonFeedback(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1e6, 0, 10)
	snd, rcv := NewFlow(&s, net, 1, DefaultConfig(), 0, 0)
	before := snd.Rate()
	snd.Receive(&netsim.Packet{Kind: netsim.Data})
	if snd.Rate() != before {
		t.Fatal("sender processed a data packet")
	}
	rcv.Receive(&netsim.Packet{Kind: netsim.Ack})
	if rcv.PacketsReceived != 0 {
		t.Fatal("receiver counted a non-data packet")
	}
}

func TestPanics(t *testing.T) {
	var s des.Scheduler
	net := buildDumbbell(&s, 1e6, 0, 10)
	cases := []func(){
		func() { NewFlow(nil, net, 1, DefaultConfig(), 0, 0) },
		func() { NewFlow(&s, nil, 1, DefaultConfig(), 0, 0) },
		func() { NewFlow(&s, net, 1, Config{}, 0, 0) },
		func() {
			snd, _ := NewFlow(&s, net, 2, DefaultConfig(), 0, 0)
			snd.Start()
			snd.Start()
		},
		func() { FormulaKind(99).build(paramsForRTT(0.1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
