package topology

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/netsim"
)

// The network's snapshot surface is split into sections the restore
// orchestrator (internal/experiments) sequences explicitly, because
// their restore points differ: links restore right after the rebuild,
// flow overlays only after every flow — including churn arrivals — has
// been re-attached, deliveries after the endpoints they target exist,
// and the freelist ledger last of all so the leak invariant holds the
// moment the restore completes.

// SaveLinks writes every link's state in link-id order.
func (n *Network) SaveLinks(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(len(n.links))
	for _, l := range n.links {
		l.Save(w, cap)
	}
}

// RestoreLinks overlays saved state onto the rebuilt links.
func (n *Network) RestoreLinks(r *checkpoint.Reader) {
	if c := r.Count(); c != len(n.links) {
		r.Fail("snapshot has %d links, rebuilt graph has %d", c, len(n.links))
		return
	}
	for _, l := range n.links {
		if r.Err() != nil {
			return
		}
		l.Restore(r, n.GetPacket)
	}
}

// SaveFlows writes the per-flow mutable overlay — delivery counter and,
// when reverse jitter is on, the flow's private jitter stream — for
// every attached flow in id order.
func (n *Network) SaveFlows(w *checkpoint.Writer) {
	w.Int(n.flowCount)
	for id, fs := range n.flows {
		if fs == nil {
			continue
		}
		w.Int(id)
		w.I64(fs.delivered)
		if n.ReverseJitter > 0 {
			for _, word := range fs.jitter.State() {
				w.U64(word)
			}
		}
	}
}

// RestoreFlows overlays per-flow state saved by SaveFlows. Every saved
// flow must already be re-attached (static flows by the rebuild, churn
// flows by the arrivals restore) with the same id.
func (n *Network) RestoreFlows(r *checkpoint.Reader) {
	c := r.Count()
	if c != n.flowCount {
		r.Fail("snapshot has %d attached flows, rebuilt network has %d", c, n.flowCount)
		return
	}
	for i := 0; i < c; i++ {
		if r.Err() != nil {
			return
		}
		id := r.Int()
		fs := n.flowAt(id)
		if fs == nil {
			r.Fail("saved flow %d is not attached in the rebuilt network", id)
			return
		}
		fs.delivered = r.I64()
		if n.ReverseJitter > 0 {
			var st [4]uint64
			for j := range st {
				st[j] = r.U64()
			}
			if r.Err() == nil {
				fs.jitter.SetState(st)
			}
		}
	}
}

// SaveDeliveries writes the pending pure-delay hand-offs: the packet,
// which endpoint of its flow it targets, and the hand-off timer.
func (n *Network) SaveDeliveries(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(len(n.liveDel))
	for _, dv := range n.liveDel {
		w.Bool(dv.toSender)
		netsim.SavePacket(w, dv.p)
		w.Timer(cap.StateOf(dv.tm))
	}
}

// RestoreDeliveries re-creates the pending hand-offs against the
// re-attached flows, re-arming each with its original timer identity.
func (n *Network) RestoreDeliveries(r *checkpoint.Reader) {
	c := r.Count()
	for i := 0; i < c; i++ {
		if r.Err() != nil {
			return
		}
		toSender := r.Bool()
		p := n.GetPacket()
		netsim.RestorePacket(r, p)
		st := r.Timer()
		if !st.OK {
			r.Fail("pending delivery saved without a live timer")
			return
		}
		fs := n.flowAt(p.Flow)
		if fs == nil {
			r.Fail("pending delivery for unattached flow %d", p.Flow)
			return
		}
		to := fs.receiver
		if toSender {
			to = fs.sender
		}
		if to == nil {
			r.Fail("pending delivery for flow %d targets a nil endpoint", p.Flow)
			return
		}
		dv := n.getDelivery(to, p, toSender)
		dv.tm = n.Sched.RestoreTimer(st, dv.run)
	}
}

// SaveLedger writes the freelist issue/return counters and the watched
// per-flow in-network accounts.
func (n *Network) SaveLedger(w *checkpoint.Writer) {
	w.I64(n.issued)
	w.I64(n.returned)
	w.Int(len(n.lcCount))
	for _, v := range n.lcCount {
		w.I64(int64(v))
	}
}

// RestoreLedger overlays the counters saved by SaveLedger. It runs last
// in the restore sequence: every restore step before it drew its
// packets through GetPacket (inflating issued), and this overlay
// settles the ledger back to the snapshot's truth so CheckLeaks holds
// immediately.
func (n *Network) RestoreLedger(r *checkpoint.Reader) {
	n.issued = r.I64()
	n.returned = r.I64()
	c := r.Count()
	if c != len(n.lcCount) {
		r.Fail("snapshot watches %d flows, rebuilt network watches %d", c, len(n.lcCount))
		return
	}
	for i := 0; i < c; i++ {
		n.lcCount[i] = int32(r.I64())
	}
}
