package topology

import (
	"repro/internal/des"
	"repro/internal/netsim"
)

// Dumbbell is the canonical topology of the paper's experiments,
// expressed as a two-node, one-link instance of the general network
// graph: every forward-path packet traverses the shared bottleneck link
// and is then demultiplexed by flow id to its receiver after a per-flow
// extra one-way delay; the reverse path defaults to an uncongested pure
// per-flow delay (equivalently: a single delay link with an infinite
// queue). Flows attach with the plain netsim.Network AttachFlow — the
// bottleneck is the default route. A congested return path is one
// MirrorReverse + SetDefaultReverseRoute away, with feedback and acks
// then crossing a real queue.
type Dumbbell struct {
	*Network
	Bottleneck *netsim.Link
}

// NewDumbbell wires a dumbbell around the given bottleneck link.
func NewDumbbell(sched *des.Scheduler, bottleneck *netsim.Link) *Dumbbell {
	if sched == nil {
		panic("topology: dumbbell needs a scheduler")
	}
	return BuildDumbbell(New(sched), bottleneck)
}

// BuildDumbbell declares the dumbbell inside an existing (typically
// just-Reset, pooled) network graph: two nodes, the bottleneck as the
// default route. The graph must be empty.
func BuildDumbbell(n *Network, bottleneck *netsim.Link) *Dumbbell {
	if n == nil || bottleneck == nil {
		panic("topology: dumbbell needs a network and a bottleneck")
	}
	if n.Nodes() != 0 || n.Links() != 0 {
		panic("topology: dumbbell needs an empty network graph")
	}
	ingress := n.AddNode("ingress")
	egress := n.AddNode("egress")
	id := n.AdoptLink(bottleneck, ingress, egress)
	n.SetDefaultRoute(id)
	return &Dumbbell{Network: n, Bottleneck: bottleneck}
}
