// Package topology assembles the netsim primitives (links, queues,
// endpoints) into packet-level network graphs: nodes connected by
// directed links, per-flow static source routes across any number of
// congested hops, a shared packet freelist, and per-flow round-trip
// accounting. The paper's dumbbell is the two-node special case
// (NewDumbbell); parking-lot chains, multi-bottleneck paths and
// heterogeneous-RTT meshes are built from the same pieces.
//
// Forwarding model: a flow's forward route is an ordered chain of link
// IDs. SendForward injects the packet at the first hop; each link egress
// hands the packet to the network, which either forwards it into the
// next link's queue or — past the last hop — delivers it to the flow's
// receiver after the flow's extra forward delay. Flows without a
// receiver sink their packets at route end (cross traffic).
//
// Reverse model: by default the reverse path is uncongested and modeled
// as a pure per-flow delay (with optional jitter), as in the paper's
// experiments. A flow may instead carry a routed reverse path
// (SetReverseRoute, or SetDefaultReverseRoute for every flow at once):
// feedback and acknowledgment packets are then forwarded hop by hop
// through real links and queues — they can be queued behind competing
// traffic, delayed by serialization, and dropped — before the flow's
// remaining reverse delay returns them to the sender. MirrorReverse
// builds the routed counterpart of a forward route (one reverse link
// per forward hop, same rate and delay) so the mirrored-reverse default
// is one declaration.
//
// The network owns the packet freelist and tracks issue/return counts,
// so tests can assert the leak invariant: every packet the freelist
// issued is either back in the pool or demonstrably inside the network
// (queued, serializing, propagating, or pending delivery).
package topology

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
)

// NodeID identifies a node in the graph.
type NodeID int

// LinkID identifies a directed link in the graph.
type LinkID int

// flowState is the per-flow routing entry: the forward route, the
// optional routed reverse path, the terminal delays, and the endpoints.
type flowState struct {
	route []*netsim.Link
	// revRoute, when non-empty, carries the flow's reverse packets hop
	// by hop through real queues; revDelay then becomes the remaining
	// pure delay after the last reverse hop. Empty keeps the pure-delay
	// reverse path (length, not nil-ness, is the discriminator: pooled
	// records recycle their slices at zero length).
	revRoute  []*netsim.Link
	fwdExtra  float64
	revDelay  float64
	sender    netsim.Endpoint
	receiver  netsim.Endpoint
	delivered int64
	// jitter is the flow's private reverse-jitter stream, seeded from
	// (network jitter seed, flow id) at attach time. Per-flow streams —
	// rather than one network-wide RNG consumed in global event order —
	// make each flow's jitter sequence independent of event interleaving
	// across flows, which is what lets a space-parallel execution of the
	// same graph (internal/shard) reproduce the serial run bit for bit.
	jitter rng.RNG
}

// delivery is one pending hand-off of a packet to an endpoint after a
// pure delay (per-flow forward extra or reverse path). Deliveries are
// recycled through the network's pool; the bound run callback is
// allocated once per delivery object, not per packet. Live deliveries
// are indexed in the network's registry (idx is the registry position,
// maintained by swap-remove) so a checkpoint can enumerate them;
// toSender records which of the flow's endpoints the hand-off targets,
// and tm is the pending hand-off timer, both needed to re-create the
// delivery on restore.
type delivery struct {
	n        *Network
	to       netsim.Endpoint
	p        *netsim.Packet
	run      des.Event
	tm       des.Timer
	idx      int32
	toSender bool
}

func (dv *delivery) deliver() {
	n := dv.n
	last := len(n.liveDel) - 1
	n.liveDel[dv.idx] = n.liveDel[last]
	n.liveDel[dv.idx].idx = dv.idx
	n.liveDel[last] = nil
	n.liveDel = n.liveDel[:last]
	to, p := dv.to, dv.p
	dv.to, dv.p = nil, nil
	n.dpool = append(n.dpool, dv)
	n.pendingDeliveries--
	to.Receive(p)
	n.PutPacket(p)
}

// Network is a packet-level network graph implementing netsim.Network.
// Build it with New, AddNode and AddLink (or AdoptLink for an
// externally constructed link), declare per-flow routes with SetRoute
// or a default route with SetDefaultRoute, then attach protocol
// endpoints with AttachFlow.
type Network struct {
	Sched *des.Scheduler

	// Trace, when set, is the event tracer of this network's scheduling
	// domain. Protocol endpoints and the fault layer discover it through
	// netsim.Traced; nil (the default) keeps every tracing hook a
	// nil-sink. Cleared by Reset.
	Trace *obs.Tracer

	nodes    []string
	links    []*netsim.Link
	linkFrom []NodeID
	linkTo   []NodeID

	// flows is indexed by flow id (nil = unattached). A dense slice
	// instead of a map for two reasons: lookups sit on the per-packet hot
	// path, and the churn engine (internal/arrivals) attaches and
	// detaches flows at simulation time — after ReserveFlows, an attach
	// stores a pointer into a preallocated slot instead of growing a map.
	flows     []*flowState
	flowCount int

	routes       map[int][]LinkID
	defaultRoute []LinkID
	// defaultLink receives forward packets of flows with no attached
	// route (a dumbbell's cross traffic terminating at the bottleneck).
	defaultLink *netsim.Link

	// revRoutes and defaultRevRoute are the routed reverse counterparts
	// of routes and defaultRoute. A flow with neither keeps the
	// pure-delay reverse path. revRoutes is allocated lazily on the
	// first SetReverseRoute so purely-forward networks pay nothing for
	// the reverse subsystem (nil map reads are legal).
	revRoutes       map[int][]LinkID
	defaultRevRoute []LinkID

	// ReverseJitter, when positive, scales each reverse-path delivery
	// delay by a uniform factor in [1-ReverseJitter, 1+ReverseJitter].
	// Real acknowledgment streams jitter at least this much; a perfectly
	// periodic ack clock in a deterministic simulator otherwise slots
	// arrivals into queue vacancies with unrealistic precision. Each flow
	// draws from its own stream seeded by FlowJitterSeed(jitterSeed,
	// flow), created when the flow attaches.
	ReverseJitter float64
	jitterSeed    uint64

	pool   []*netsim.Packet
	dpool  []*delivery
	fsPool []*flowState
	// liveDel indexes the in-flight deliveries (swap-removed as they
	// fire) so a checkpoint can enumerate them without walking the
	// scheduler.
	liveDel []*delivery

	issued            int64
	returned          int64
	pendingDeliveries int

	// Per-flow in-network packet accounting for the churn engine's
	// reclamation decisions (WatchFlows): lcCount[flow-lcLo] is the
	// number of freelist packets the flow currently has inside the
	// simulator, and lcQuiet fires whenever a discharge empties a watched
	// flow's account. All three stay zero-cost nil/empty when unused.
	lcLo    int
	lcCount []int32
	lcQuiet func(flow int)

	arriveFn func(*netsim.Packet)
}

var _ netsim.Network = (*Network)(nil)

// New returns an empty network graph on the scheduler.
func New(sched *des.Scheduler) *Network {
	if sched == nil {
		panic("topology: nil scheduler")
	}
	n := &Network{
		Sched:  sched,
		routes: map[int][]LinkID{},
	}
	n.arriveFn = n.arrive
	return n
}

// Reset empties the graph — nodes, links, routes, flows, jitter and
// freelist accounting — while keeping the packet pool, the delivery
// pool and the flow-state freelist, so a pooled network rebuilds its
// next topology in place instead of reallocating (see the run arena in
// internal/experiments). Packets still referenced by a previous run's
// pending events are abandoned to the garbage collector; reset the
// scheduler alongside the network.
func (n *Network) Reset() {
	n.nodes = n.nodes[:0]
	n.links = n.links[:0]
	n.linkFrom = n.linkFrom[:0]
	n.linkTo = n.linkTo[:0]
	for id, fs := range n.flows {
		if fs == nil {
			continue
		}
		fs.route = fs.route[:0]
		fs.revRoute = fs.revRoute[:0]
		fs.sender, fs.receiver = nil, nil
		fs.delivered = 0
		n.fsPool = append(n.fsPool, fs)
		n.flows[id] = nil
	}
	n.flows = n.flows[:0]
	n.flowCount = 0
	n.lcLo = 0
	n.lcCount = n.lcCount[:0]
	n.lcQuiet = nil
	for id := range n.routes {
		delete(n.routes, id)
	}
	for id := range n.revRoutes {
		delete(n.revRoutes, id)
	}
	n.defaultRoute = nil
	n.defaultLink = nil
	n.defaultRevRoute = nil
	n.ReverseJitter = 0
	n.jitterSeed = 0
	n.issued, n.returned = 0, 0
	n.pendingDeliveries = 0
	for i := range n.liveDel {
		n.liveDel[i] = nil
	}
	n.liveDel = n.liveDel[:0]
	n.Trace = nil
}

// Tracer implements netsim.Traced: it returns the domain's event
// tracer, nil when tracing is off.
func (n *Network) Tracer() *obs.Tracer { return n.Trace }

// LinkTracer returns the tracer of the domain owning the link — on the
// serial engine, the network's one tracer. It is the seam the fault
// layer uses to emit link transitions into the right domain's stream
// (fault.TracedHost).
func (n *Network) LinkTracer(LinkID) *obs.Tracer { return n.Trace }

// AddNode adds a named node and returns its id. Nodes only anchor link
// endpoints (for route validation and diagnostics); they hold no state.
func (n *Network) AddNode(name string) NodeID {
	n.nodes = append(n.nodes, name)
	return NodeID(len(n.nodes) - 1)
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// NodeName returns the name given to AddNode.
func (n *Network) NodeName(id NodeID) string { return n.nodes[id] }

// AddLink creates a directed link from one node to another with the
// given rate (bytes/second), propagation delay and queue, and wires its
// delivery and drop sinks into the network.
func (n *Network) AddLink(from, to NodeID, rate, delay float64, queue netsim.Queue) LinkID {
	return n.AdoptLink(netsim.NewLink(n.Sched, rate, delay, queue), from, to)
}

// AdoptLink wires an externally constructed link into the graph as a
// directed edge. The network takes over the link's Deliver and Release
// sinks.
func (n *Network) AdoptLink(l *netsim.Link, from, to NodeID) LinkID {
	if l == nil {
		panic("topology: nil link")
	}
	if int(from) >= len(n.nodes) || int(to) >= len(n.nodes) || from < 0 || to < 0 {
		panic("topology: link endpoint node out of range")
	}
	l.Deliver = n.arriveFn
	l.Release = n.PutPacket
	n.links = append(n.links, l)
	n.linkFrom = append(n.linkFrom, from)
	n.linkTo = append(n.linkTo, to)
	return LinkID(len(n.links) - 1)
}

// Link returns the link behind an id (for inspection in tests and
// experiments).
func (n *Network) Link(id LinkID) *netsim.Link { return n.links[id] }

// Links returns the number of links.
func (n *Network) Links() int { return len(n.links) }

// LinkSched returns the scheduler that drives the link's events — the
// network's single scheduler on this serial engine. The sharded engine
// answers with the owning shard's scheduler instead; fault plans
// (internal/fault) arm their timed events through this seam so each
// event fires on the scheduler that owns the link it manipulates.
func (n *Network) LinkSched(LinkID) *des.Scheduler { return n.Sched }

// checkRoute validates that hops form a contiguous directed path.
func (n *Network) checkRoute(hops []LinkID) {
	if len(hops) == 0 {
		panic("topology: empty route")
	}
	for i, h := range hops {
		if int(h) >= len(n.links) || h < 0 {
			panic(fmt.Sprintf("topology: route hop %d: unknown link %d", i, h))
		}
		if i > 0 && n.linkFrom[h] != n.linkTo[hops[i-1]] {
			panic(fmt.Sprintf("topology: route hop %d: link %d does not start where link %d ends",
				i, h, hops[i-1]))
		}
	}
}

// SetRoute declares the static source route for a flow id, to be used
// by a later AttachFlow for the same id.
func (n *Network) SetRoute(flow int, hops ...LinkID) {
	n.checkRoute(hops)
	n.routes[flow] = append([]LinkID(nil), hops...)
}

// SetDefaultRoute declares the route used by AttachFlow for flows with
// no per-flow SetRoute entry, and makes the route's first link the sink
// for forward packets of entirely unattached flows (cross traffic).
func (n *Network) SetDefaultRoute(hops ...LinkID) {
	n.checkRoute(hops)
	n.defaultRoute = append([]LinkID(nil), hops...)
	n.defaultLink = n.links[hops[0]]
}

// SetReverseRoute declares the routed reverse path for a flow id, to be
// used by a later AttachFlow for the same id: the flow's reverse
// packets traverse these links hop by hop — queued, delayed, and
// possibly dropped — before the flow's remaining reverse delay returns
// them to the sender. The route must run from the forward route's last
// node back to its first (checked at attach time).
func (n *Network) SetReverseRoute(flow int, hops ...LinkID) {
	n.checkRoute(hops)
	if n.revRoutes == nil {
		n.revRoutes = map[int][]LinkID{}
	}
	n.revRoutes[flow] = append([]LinkID(nil), hops...)
}

// SetDefaultReverseRoute declares the routed reverse path used by
// AttachFlow for flows with no per-flow SetReverseRoute entry. Without
// it (the default), such flows keep the uncongested pure-delay reverse
// path.
func (n *Network) SetDefaultReverseRoute(hops ...LinkID) {
	n.checkRoute(hops)
	n.defaultRevRoute = append([]LinkID(nil), hops...)
}

// MirrorReverse builds the routed reverse counterpart of a forward
// route: for each forward hop, in reverse order, a new link from the
// hop's head node back to its tail, copying the forward twin's rate and
// propagation delay. queue selects the queue of reverse hop i (counting
// from the receiver side); a nil queue func — or a nil result — gives
// that hop an unbounded lossless FIFO, i.e. the pure-delay reverse path
// plus serialization. The returned hops are ready for SetReverseRoute
// or SetDefaultReverseRoute.
func (n *Network) MirrorReverse(fwd []LinkID, queue func(hop int) netsim.Queue) []LinkID {
	n.checkRoute(fwd)
	rev := make([]LinkID, 0, len(fwd))
	for i := len(fwd) - 1; i >= 0; i-- {
		h := fwd[i]
		var q netsim.Queue
		if queue != nil {
			q = queue(len(rev))
		}
		if q == nil {
			q = netsim.NewUnbounded()
		}
		l := n.links[h]
		rev = append(rev, n.AddLink(n.linkTo[h], n.linkFrom[h], l.Rate, l.Delay, q))
	}
	return rev
}

// checkReverse validates that a reverse route connects the forward
// route's end node back to its start node.
func (n *Network) checkReverse(fwd, rev []LinkID) {
	n.checkRoute(rev)
	if n.linkFrom[rev[0]] != n.linkTo[fwd[len(fwd)-1]] {
		panic(fmt.Sprintf("topology: reverse route starts at node %d, want the forward route's last node %d",
			n.linkFrom[rev[0]], n.linkTo[fwd[len(fwd)-1]]))
	}
	if n.linkTo[rev[len(rev)-1]] != n.linkFrom[fwd[0]] {
		panic(fmt.Sprintf("topology: reverse route ends at node %d, want the forward route's first node %d",
			n.linkTo[rev[len(rev)-1]], n.linkFrom[fwd[0]]))
	}
}

// SetReverseJitter enables reverse-path delay jitter with the given
// fraction (0 <= j < 1) and seed. Each flow attached afterwards draws
// from its own stream seeded by FlowJitterSeed(seed, flow), so a flow's
// jitter sequence depends only on its own reverse traffic — not on how
// its packets interleave with other flows'. Call it before attaching
// flows.
func (n *Network) SetReverseJitter(j float64, seed uint64) {
	if j < 0 || j >= 1 {
		panic("topology: reverse jitter outside [0,1)")
	}
	if n.flowCount > 0 {
		panic("topology: SetReverseJitter after flows attached")
	}
	n.ReverseJitter = j
	n.jitterSeed = seed
}

// FlowJitterSeed derives the seed of a flow's private reverse-jitter
// stream from the network-wide jitter seed. It is exported so that any
// alternative executor of the same graph (internal/shard) derives
// bit-identical streams.
func FlowJitterSeed(seed uint64, flow int) uint64 {
	return seed ^ (uint64(flow)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
}

// AttachFlow implements netsim.Network: it registers a flow's endpoints
// and path delays on the flow's declared route (SetRoute), falling back
// to the default route. fwdExtra is the one-way delay from the last
// routed link's egress to the receiver. revDelay is the full uncongested
// return delay from receiver to sender — unless the flow has a routed
// reverse path (SetReverseRoute or SetDefaultReverseRoute), in which
// case revDelay is the remaining delay after the last reverse hop.
func (n *Network) AttachFlow(flow int, sender, receiver netsim.Endpoint, fwdExtra, revDelay float64) {
	hops, ok := n.routes[flow]
	if !ok {
		hops = n.defaultRoute
	}
	if len(hops) == 0 {
		panic(fmt.Sprintf("topology: no route for flow %d (SetRoute or SetDefaultRoute first)", flow))
	}
	if sender == nil || receiver == nil {
		panic("topology: nil endpoint")
	}
	n.attach(flow, sender, receiver, hops, fwdExtra, revDelay)
}

// AttachSink registers a receiver-less flow over a route: its packets
// are recycled at route end. This is how cross traffic is carried over
// a chosen sub-path of a multi-hop graph. A sink flow has no sender to
// return packets to, so declaring a reverse route for it is rejected.
func (n *Network) AttachSink(flow int, hops ...LinkID) {
	n.attach(flow, nil, nil, hops, 0, 0)
}

func (n *Network) attach(flow int, sender, receiver netsim.Endpoint, hops []LinkID, fwdExtra, revDelay float64) {
	revHops, explicit := n.revRoutes[flow]
	if explicit && sender == nil {
		panic(fmt.Sprintf("topology: reverse route for sink flow %d (no sender to return packets to)", flow))
	}
	if !explicit && sender != nil {
		// The default reverse route covers endpoint flows only: sink
		// flows terminate at route end and never send reverse packets.
		revHops = n.defaultRevRoute
	}
	n.attachOn(flow, sender, receiver, hops, revHops, fwdExtra, revDelay)
}

// AttachFlowOn is AttachFlow with the forward and (possibly empty)
// reverse routes passed explicitly instead of resolved from the
// per-flow route maps. Run-time attaches — the churn engine's arrival
// events — use it so registering a route per arrival (a map insert per
// flow) never happens: every flow of an arrival class shares the
// class's hop slices, and steady-state attach stays allocation-free.
func (n *Network) AttachFlowOn(flow int, sender, receiver netsim.Endpoint, fwdHops, revHops []LinkID, fwdExtra, revDelay float64) {
	if sender == nil || receiver == nil {
		panic("topology: nil endpoint")
	}
	n.attachOn(flow, sender, receiver, fwdHops, revHops, fwdExtra, revDelay)
}

func (n *Network) attachOn(flow int, sender, receiver netsim.Endpoint, hops, revHops []LinkID, fwdExtra, revDelay float64) {
	if fwdExtra < 0 || revDelay < 0 {
		panic("topology: negative delay")
	}
	if flow < 0 {
		panic(fmt.Sprintf("topology: negative flow id %d", flow))
	}
	if n.flowAt(flow) != nil {
		panic(fmt.Sprintf("topology: duplicate flow id %d", flow))
	}
	n.checkRoute(hops)
	if len(revHops) > 0 {
		n.checkReverse(hops, revHops)
	}
	fs := n.getFlowState()
	for _, h := range hops {
		fs.route = append(fs.route, n.links[h])
	}
	for _, h := range revHops {
		fs.revRoute = append(fs.revRoute, n.links[h])
	}
	fs.fwdExtra = fwdExtra
	fs.revDelay = revDelay
	fs.sender = sender
	fs.receiver = receiver
	if n.ReverseJitter > 0 {
		fs.jitter.Reseed(FlowJitterSeed(n.jitterSeed, flow))
	}
	for len(n.flows) <= flow {
		n.flows = append(n.flows, nil)
	}
	n.flows[flow] = fs
	n.flowCount++
}

// flowAt returns the flow's routing entry, nil when the id is out of
// range or currently unattached.
func (n *Network) flowAt(flow int) *flowState {
	if flow >= 0 && flow < len(n.flows) {
		return n.flows[flow]
	}
	return nil
}

// ReserveFlows pre-sizes the flow table for ids [0, max): run-time
// attaches (the churn engine's arrival events) then store into an
// existing slot instead of growing the table mid-run. Idempotent;
// shrinking is not supported.
func (n *Network) ReserveFlows(max int) {
	for len(n.flows) < max {
		n.flows = append(n.flows, nil)
	}
}

// DetachFlow removes a flow at simulation time and recycles its routing
// record into the flow-state pool, so a departed session costs nothing
// once its last packet is back in the freelist. The caller must only
// detach a quiet flow — endpoints done, their timers expired or
// cancelled, and no packets of the flow left inside the simulator;
// with WatchFlows accounting enabled the last condition is asserted.
// Detaching mutates no scheduler or ledger state, so a detach on one
// executor and none on another cannot diverge their event trajectories.
func (n *Network) DetachFlow(flow int) {
	fs := n.flowAt(flow)
	if fs == nil {
		panic(fmt.Sprintf("topology: DetachFlow on unattached flow %d", flow))
	}
	if i := flow - n.lcLo; n.lcQuiet != nil && i >= 0 && i < len(n.lcCount) && n.lcCount[i] != 0 {
		panic(fmt.Sprintf("topology: DetachFlow(%d) with %d packets still in the network", flow, n.lcCount[i]))
	}
	fs.route = fs.route[:0]
	fs.revRoute = fs.revRoute[:0]
	fs.sender, fs.receiver = nil, nil
	fs.delivered = 0
	n.fsPool = append(n.fsPool, fs)
	n.flows[flow] = nil
	n.flowCount--
}

// WatchFlows enables per-flow in-network packet accounting for flow ids
// in [lo, lo+count): every SendForward/SendReverse charges the packet to
// its flow, every PutPacket discharges it, and a discharge that empties
// the flow's account invokes onQuiet(flow) — the churn engine's cue to
// reclaim a finished flow the moment its last packet leaves the
// simulator. The accounting costs two bounds checks per packet on
// watched ranges and a nil check otherwise.
func (n *Network) WatchFlows(lo, count int, onQuiet func(flow int)) {
	if onQuiet == nil || count <= 0 {
		panic("topology: WatchFlows needs a callback and a positive range")
	}
	if n.lcQuiet != nil {
		panic("topology: WatchFlows called twice")
	}
	n.lcLo = lo
	if cap(n.lcCount) < count {
		n.lcCount = make([]int32, count)
	} else {
		n.lcCount = n.lcCount[:count]
		for i := range n.lcCount {
			n.lcCount[i] = 0
		}
	}
	n.lcQuiet = onQuiet
}

// InFlight returns the watched flow's current in-network packet count
// (0 for flows outside the watched range or without accounting).
func (n *Network) InFlight(flow int) int {
	if i := flow - n.lcLo; n.lcQuiet != nil && i >= 0 && i < len(n.lcCount) {
		return int(n.lcCount[i])
	}
	return 0
}

func (n *Network) lcCharge(flow int) {
	if i := flow - n.lcLo; n.lcQuiet != nil && i >= 0 && i < len(n.lcCount) {
		n.lcCount[i]++
	}
}

func (n *Network) lcDischarge(flow int) {
	if i := flow - n.lcLo; n.lcQuiet != nil && i >= 0 && i < len(n.lcCount) {
		n.lcCount[i]--
		if n.lcCount[i] == 0 {
			n.lcQuiet(flow)
		} else if n.lcCount[i] < 0 {
			panic(fmt.Sprintf("topology: flow %d discharged below zero (PutPacket without a matching send)", flow))
		}
	}
}

// getFlowState recycles a flow-state record (route slices keep their
// capacity across Reset) or allocates a fresh one.
func (n *Network) getFlowState() *flowState {
	if m := len(n.fsPool); m > 0 {
		fs := n.fsPool[m-1]
		n.fsPool = n.fsPool[:m-1]
		return fs
	}
	return &flowState{}
}

// GetPacket returns a zeroed packet from the freelist (allocating only
// when the pool is empty). The simulator reclaims it after delivery.
func (n *Network) GetPacket() *netsim.Packet {
	n.issued++
	if m := len(n.pool); m > 0 {
		p := n.pool[m-1]
		n.pool = n.pool[:m-1]
		*p = netsim.Packet{}
		return p
	}
	return &netsim.Packet{}
}

// PutPacket returns a packet to the freelist. Callers normally never
// need this — the network releases packets itself after delivery and on
// drops — but sources that abandon a packet before sending may.
func (n *Network) PutPacket(p *netsim.Packet) {
	if p == nil {
		return
	}
	n.returned++
	n.pool = append(n.pool, p)
	if n.lcQuiet != nil {
		n.lcDischarge(int(p.Flow))
	}
}

func (n *Network) getDelivery(to netsim.Endpoint, p *netsim.Packet, toSender bool) *delivery {
	var dv *delivery
	if m := len(n.dpool); m > 0 {
		dv = n.dpool[m-1]
		n.dpool = n.dpool[:m-1]
	} else {
		dv = &delivery{n: n}
		dv.run = dv.deliver
	}
	dv.to = to
	dv.p = p
	dv.toSender = toSender
	dv.idx = int32(len(n.liveDel))
	n.liveDel = append(n.liveDel, dv)
	n.pendingDeliveries++
	return dv
}

// SendForward implements netsim.Network: the packet enters the first
// link of its flow's route. Packets of unattached flows go to the
// default route's first link (and are recycled at its egress).
func (n *Network) SendForward(p *netsim.Packet) {
	if n.lcQuiet != nil {
		n.lcCharge(int(p.Flow))
	}
	if fs := n.flowAt(int(p.Flow)); fs != nil {
		p.Hop = 0
		fs.route[0].Send(p)
		return
	}
	if n.defaultLink == nil {
		panic(fmt.Sprintf("topology: forward packet for unrouted flow %d and no default route", p.Flow))
	}
	p.Hop = 0
	n.defaultLink.Send(p)
}

// SendReverse implements netsim.Network: the packet enters the first
// link of the flow's routed reverse path when one is declared (it may
// be queued, delayed, and dropped on the way), otherwise it reaches the
// flow's sender after the flow's reverse delay (jittered when enabled).
func (n *Network) SendReverse(p *netsim.Packet) {
	fs := n.flowAt(int(p.Flow))
	if fs == nil || fs.sender == nil {
		panic(fmt.Sprintf("topology: reverse packet for unknown flow %d", p.Flow))
	}
	if n.lcQuiet != nil {
		n.lcCharge(int(p.Flow))
	}
	if len(fs.revRoute) > 0 {
		p.Rev = true
		p.Hop = 0
		fs.revRoute[0].Send(p)
		return
	}
	n.returnToSender(fs, p)
}

// returnToSender schedules the packet's final hand-off to the flow's
// sender after the flow's remaining reverse delay (jittered when
// enabled) — the shared tail of the pure-delay and routed reverse
// paths.
func (n *Network) returnToSender(fs *flowState, p *netsim.Packet) {
	delay := fs.revDelay
	if n.ReverseJitter > 0 {
		delay *= 1 + n.ReverseJitter*(2*fs.jitter.Float64()-1)
	}
	dv := n.getDelivery(fs.sender, p, true)
	dv.tm = n.Sched.After(delay, dv.run)
}

// arriveReverse handles a reverse-path packet exiting a link: forward
// it into the next hop of the flow's reverse route, or return it to the
// sender past the last hop after the flow's remaining reverse delay.
func (n *Network) arriveReverse(fs *flowState, p *netsim.Packet) {
	if next := int(p.Hop) + 1; next < len(fs.revRoute) {
		p.Hop = int32(next)
		fs.revRoute[next].Send(p)
		return
	}
	n.returnToSender(fs, p)
}

// arrive handles a packet exiting a link: forward it into the next hop
// of its route, or deliver it past the last hop.
func (n *Network) arrive(p *netsim.Packet) {
	fs := n.flowAt(int(p.Flow))
	if fs == nil {
		// Unattached flow (e.g. background traffic that terminates at
		// the default link): recycle silently.
		n.PutPacket(p)
		return
	}
	if p.Rev {
		n.arriveReverse(fs, p)
		return
	}
	if next := int(p.Hop) + 1; next < len(fs.route) {
		p.Hop = int32(next)
		fs.route[next].Send(p)
		return
	}
	fs.delivered++
	if fs.receiver == nil {
		// Sink flow: the route end is the destination.
		n.PutPacket(p)
		return
	}
	if fs.fwdExtra == 0 {
		fs.receiver.Receive(p)
		n.PutPacket(p)
		return
	}
	dv := n.getDelivery(fs.receiver, p, false)
	dv.tm = n.Sched.After(fs.fwdExtra, dv.run)
}

// BaseRTT returns the no-queueing round-trip time for the flow: the sum
// of its routed links' propagation delays — forward and, when the
// reverse path is routed, reverse — the extra forward delay and the
// return delay (transmission times excluded).
func (n *Network) BaseRTT(flow int) float64 {
	fs := n.flowAt(flow)
	if fs == nil {
		return 0
	}
	rtt := fs.fwdExtra + fs.revDelay
	for _, l := range fs.route {
		rtt += l.Delay
	}
	for _, l := range fs.revRoute {
		rtt += l.Delay
	}
	return rtt
}

// Delivered returns the number of packets a flow's route has carried to
// its end (whether consumed by a receiver or sunk).
func (n *Network) Delivered(flow int) int64 {
	if fs := n.flowAt(flow); fs != nil {
		return fs.delivered
	}
	return 0
}

// Outstanding returns issued-minus-returned freelist packets: the
// number the pool believes are alive inside the network.
func (n *Network) Outstanding() int64 { return n.issued - n.returned }

// InNetwork counts the packets demonstrably inside the simulator:
// queued, serializing or propagating on some link — forward and routed
// reverse alike, since reverse links are ordinary graph links — or
// waiting in a pending delivery.
func (n *Network) InNetwork() int {
	total := n.pendingDeliveries
	for _, l := range n.links {
		total += l.InFlight()
	}
	return total
}

// CheckLeaks verifies the freelist leak invariant: every packet the
// pool issued is either returned or physically inside the network. It
// holds at any inter-event instant provided all sources draw from
// GetPacket and no endpoint retains or double-returns a packet.
func (n *Network) CheckLeaks() error {
	if out, in := n.Outstanding(), int64(n.InNetwork()); out != in {
		return fmt.Errorf("topology: packet leak: %d outstanding from the freelist but %d in the network", out, in)
	}
	return nil
}
