package topology

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
)

func TestCrossTrafficMeanRate(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e9, 0, netsim.NewDropTail(1<<20))
	net := NewDumbbell(&s, link)
	ct := netsim.NewCrossTraffic(&s, net, 99, 1.25e6, 20, 1.5, 0.05, 1000, 7)
	ct.Start()
	s.RunUntil(2000)
	offered := float64(ct.PacketsSent) * 1000 / 2000
	want := ct.MeanRate()
	// Pareto bursts converge slowly; accept 25%.
	if math.Abs(offered-want)/want > 0.25 {
		t.Fatalf("offered %v B/s, analytic mean %v", offered, want)
	}
	if ct.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestCrossTrafficUnattachedFlowHarmless(t *testing.T) {
	// Cross-traffic packets terminate at the bottleneck without a
	// receiver and must not panic or leak into other flows.
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e6, 0.001, netsim.NewDropTail(50))
	net := NewDumbbell(&s, link)
	got := 0
	net.AttachFlow(1, netsim.EndpointFunc(func(*netsim.Packet) {}),
		netsim.EndpointFunc(func(p *netsim.Packet) {
			if p.Flow != 1 {
				t.Errorf("foreign packet leaked: flow %d", p.Flow)
			}
			got++
		}), 0, 0)
	ct := netsim.NewCrossTraffic(&s, net, 99, 5e5, 10, 1.5, 0.02, 1000, 8)
	ct.Start()
	probe := net.GetPacket()
	probe.Flow = 1
	probe.Size = 100
	net.SendForward(probe)
	s.RunUntil(5)
	if got != 1 {
		t.Fatalf("flow 1 deliveries = %d, want 1", got)
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossTrafficBursty(t *testing.T) {
	// The on/off structure must produce idle gaps much longer than the
	// in-burst gaps.
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e9, 0, netsim.NewDropTail(1<<20))
	net := NewDumbbell(&s, link)
	ct := netsim.NewCrossTraffic(&s, net, 99, 1.25e6, 50, 1.5, 0.1, 1000, 9)
	var times []float64
	inner := link.Deliver
	link.Deliver = func(p *netsim.Packet) {
		times = append(times, s.Now())
		inner(p)
	}
	ct.Start()
	s.RunUntil(100)
	if len(times) < 100 {
		t.Fatalf("too few packets: %d", len(times))
	}
	inBurst := 1000.0 / 1.25e6
	long := 0
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] > 10*inBurst {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no off periods observed")
	}
	if long > len(times)/2 {
		t.Fatalf("no bursts: %d of %d gaps are long", long, len(times))
	}
}

func TestCrossTrafficOverRoutedSink(t *testing.T) {
	// A cross flow attached as a sink over a chosen sub-path is carried
	// to the route's end and recycled there, congesting only its hops.
	var s des.Scheduler
	net := New(&s)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	l0 := net.AddLink(a, b, 1e9, 0.001, netsim.NewDropTail(1000))
	net.AddLink(b, c, 1e9, 0.001, netsim.NewDropTail(1000))
	net.AttachSink(99, l0) // first hop only
	ct := netsim.NewCrossTraffic(&s, net, 99, 1e6, 10, 1.5, 0.05, 1000, 11)
	ct.Start()
	s.RunUntil(20)
	if ct.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
	if net.Delivered(99) == 0 {
		t.Fatal("sink flow delivered nothing")
	}
	if fwd := net.Link(1).Forwarded; fwd != 0 {
		t.Fatalf("second hop forwarded %d packets of a first-hop sink flow", fwd)
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossTrafficPanics(t *testing.T) {
	var s des.Scheduler
	net := NewDumbbell(&s, netsim.NewLink(&s, 1e6, 0, netsim.NewDropTail(10)))
	cases := []func(){
		func() { netsim.NewCrossTraffic(nil, net, 1, 1e6, 10, 1.5, 0.1, 1000, 1) },
		func() { netsim.NewCrossTraffic(&s, net, 1, 0, 10, 1.5, 0.1, 1000, 1) },
		func() { netsim.NewCrossTraffic(&s, net, 1, 1e6, 0, 1.5, 0.1, 1000, 1) },
		func() { netsim.NewCrossTraffic(&s, net, 1, 1e6, 10, 1, 0.1, 1000, 1) },
		func() { netsim.NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0, 1000, 1) },
		func() { netsim.NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0.1, 0, 1) },
		func() {
			ct := netsim.NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0.1, 1000, 1)
			ct.Start()
			ct.Start()
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
