package topology

import (
	"math"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
)

// chain builds a linear graph of hops links at the given rate/delay and
// returns the network and the forward route.
func chain(s *des.Scheduler, hops int, rate, delay float64, buffer int) (*Network, []LinkID) {
	net := New(s)
	nodes := make([]NodeID, hops+1)
	for i := range nodes {
		nodes[i] = net.AddNode("n")
	}
	route := make([]LinkID, hops)
	for i := 0; i < hops; i++ {
		route[i] = net.AddLink(nodes[i], nodes[i+1], rate, delay, netsim.NewDropTail(buffer))
	}
	return net, route
}

// Table-driven coverage for reverse-route construction: the mirrored
// default, an explicit asymmetric route, and the rejection cases.
func TestReverseRouteConstruction(t *testing.T) {
	e := netsim.EndpointFunc(func(*netsim.Packet) {})
	cases := []struct {
		name      string
		build     func(t *testing.T)
		wantPanic string // empty = must not panic
	}{
		{name: "mirrored default", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 2, 1e5, 0.01, 16)
			rev := net.MirrorReverse(fwd, nil)
			if len(rev) != 2 || net.Links() != 4 {
				t.Fatalf("mirror created %d links (total %d), want 2 (4)", len(rev), net.Links())
			}
			// Reverse order, mirrored endpoints, copied rate and delay.
			for i, id := range rev {
				twin := fwd[len(fwd)-1-i]
				l, fl := net.Link(id), net.Link(twin)
				if l.Rate != fl.Rate || l.Delay != fl.Delay {
					t.Fatalf("reverse hop %d: rate/delay %v/%v, want %v/%v",
						i, l.Rate, l.Delay, fl.Rate, fl.Delay)
				}
			}
			net.SetRoute(1, fwd...)
			net.SetReverseRoute(1, rev...)
			net.AttachFlow(1, e, e, 0.005, 0.002)
			// Base RTT: 2×10 ms fwd + 2×10 ms rev + 5 ms + 2 ms.
			if math.Abs(net.BaseRTT(1)-0.047) > 1e-12 {
				t.Fatalf("base rtt = %v, want 0.047", net.BaseRTT(1))
			}
		}},
		{name: "explicit asymmetric route", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 1, 1e6, 0.01, 16)
			// Reverse path through its own intermediate node at a tenth
			// of the forward capacity — two hops back for one hop out.
			mid := net.AddNode("mid")
			r0 := net.AddLink(1, mid, 1e5, 0.004, netsim.NewDropTail(8))
			r1 := net.AddLink(mid, 0, 1e5, 0.004, netsim.NewDropTail(8))
			net.SetRoute(1, fwd...)
			net.SetReverseRoute(1, r0, r1)
			net.AttachFlow(1, e, e, 0, 0)
			if math.Abs(net.BaseRTT(1)-(0.01+0.004+0.004)) > 1e-12 {
				t.Fatalf("base rtt = %v, want 0.018", net.BaseRTT(1))
			}
		}},
		{name: "sink flow rejection", wantPanic: "sink flow", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 1, 1e5, 0.01, 16)
			rev := net.MirrorReverse(fwd, nil)
			net.SetReverseRoute(7, rev...)
			net.AttachSink(7, fwd...)
		}},
		{name: "default reverse skips sinks", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 1, 1e5, 0.01, 16)
			net.SetDefaultRoute(fwd...)
			net.SetDefaultReverseRoute(net.MirrorReverse(fwd, nil)...)
			net.AttachSink(7, fwd...) // must not inherit the reverse route
		}},
		{name: "reverse starts at wrong node", wantPanic: "reverse route starts", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 2, 1e5, 0.01, 16)
			rev := net.MirrorReverse(fwd, nil)
			net.SetRoute(1, fwd[0]) // forward stops a hop short
			net.SetReverseRoute(1, rev...)
			net.AttachFlow(1, e, e, 0, 0)
		}},
		{name: "reverse ends at wrong node", wantPanic: "reverse route ends", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 2, 1e5, 0.01, 16)
			rev := net.MirrorReverse(fwd, nil)
			net.SetRoute(1, fwd...)
			net.SetReverseRoute(1, rev[0]) // reverse stops a hop short
			net.AttachFlow(1, e, e, 0, 0)
		}},
		{name: "discontiguous reverse route", wantPanic: "does not start where", build: func(t *testing.T) {
			var s des.Scheduler
			net, fwd := chain(&s, 2, 1e5, 0.01, 16)
			rev := net.MirrorReverse(fwd, nil)
			net.SetReverseRoute(1, rev[1], rev[0]) // out of order
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				switch {
				case tc.wantPanic == "" && r != nil:
					t.Fatalf("unexpected panic: %v", r)
				case tc.wantPanic != "" && r == nil:
					t.Fatalf("expected panic containing %q", tc.wantPanic)
				case tc.wantPanic != "":
					if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.wantPanic) {
						t.Fatalf("panic %v, want substring %q", r, tc.wantPanic)
					}
				}
			}()
			tc.build(t)
		})
	}
}

// A routed reverse path must impose real serialization and propagation:
// a data packet out and an ack back over mirrored 10 ms links arrive at
// the sum of both directions' transmission and propagation times.
func TestRoutedReverseTiming(t *testing.T) {
	var s des.Scheduler
	net, fwd := chain(&s, 1, 1e5, 0.01, 16)
	net.SetRoute(1, fwd...)
	net.SetReverseRoute(1, net.MirrorReverse(fwd, nil)...)
	var ackAt float64
	recv := netsim.EndpointFunc(func(p *netsim.Packet) {
		ack := net.GetPacket()
		ack.Flow = p.Flow
		ack.Kind = netsim.Ack
		ack.Size = 500
		net.SendReverse(ack)
	})
	snd := netsim.EndpointFunc(func(p *netsim.Packet) { ackAt = s.Now() })
	net.AttachFlow(1, snd, recv, 0, 0)
	p := net.GetPacket()
	p.Flow = 1
	p.Size = 1000
	net.SendForward(p)
	s.Run()
	// Out: 10 ms serialization + 10 ms propagation. Back: 5 ms + 10 ms.
	if math.Abs(ackAt-0.035) > 1e-9 {
		t.Fatalf("ack at %v, want 0.035", ackAt)
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// Reverse packets crossing a congested reverse queue are dropped like
// any other traffic, and the freelist leak invariant accounts for
// reverse-path packets in flight — mid-run and after a full drain.
func TestRoutedReverseDropsAndLeakInvariant(t *testing.T) {
	var s des.Scheduler
	net, fwd := chain(&s, 1, 1e6, 0.005, 64)
	// A tight reverse bottleneck: 2-packet queue at a hundredth of the
	// forward rate.
	rev := net.MirrorReverse(fwd, func(int) netsim.Queue { return netsim.NewDropTail(2) })
	net.Link(rev[0]).Rate = 1e4
	net.SetRoute(1, fwd...)
	net.SetReverseRoute(1, rev...)
	acked := 0
	recv := netsim.EndpointFunc(func(p *netsim.Packet) {
		ack := net.GetPacket()
		ack.Flow = p.Flow
		ack.Kind = netsim.Ack
		ack.Size = 1000
		net.SendReverse(ack)
	})
	snd := netsim.EndpointFunc(func(*netsim.Packet) { acked++ })
	net.AttachFlow(1, snd, recv, 0, 0.002)
	for i := 0; i < 50; i++ {
		p := net.GetPacket()
		p.Flow = 1
		p.Seq = int64(i)
		p.Size = 1000
		net.SendForward(p)
	}
	// Mid-flight: acks sit in the reverse queue, on the reverse wire,
	// and in pending terminal deliveries; nothing may be unaccounted.
	s.RunUntil(0.05)
	if err := net.CheckLeaks(); err != nil {
		t.Fatalf("mid-flight: %v", err)
	}
	s.Run()
	drops := net.Link(rev[0]).Queue().(*netsim.DropTail).Drops
	if drops == 0 {
		t.Fatal("expected drops on the tight reverse bottleneck")
	}
	if acked == 0 {
		t.Fatal("no ack survived")
	}
	if int64(acked)+drops != 50 {
		t.Fatalf("acked %d + dropped %d != 50", acked, drops)
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	if net.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after full drain", net.Outstanding())
	}
}

// The terminal reverse delay of a routed reverse path is jittered the
// same way as the pure-delay path.
func TestRoutedReverseTerminalJitter(t *testing.T) {
	var s des.Scheduler
	net, fwd := chain(&s, 1, 1e9, 0, 64)
	net.SetRoute(1, fwd...)
	net.SetReverseRoute(1, net.MirrorReverse(fwd, nil)...)
	net.SetReverseJitter(0.2, 42)
	var arrivals []float64
	net.AttachFlow(1, netsim.EndpointFunc(func(*netsim.Packet) { arrivals = append(arrivals, s.Now()) }),
		netsim.EndpointFunc(func(*netsim.Packet) {}), 0, 0.1)
	for i := 0; i < 100; i++ {
		p := net.GetPacket()
		p.Flow = 1
		p.Kind = netsim.Ack
		net.SendReverse(p)
	}
	s.Run()
	if len(arrivals) != 100 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	lo, hi := arrivals[0], arrivals[0]
	for _, a := range arrivals {
		lo, hi = math.Min(lo, a), math.Max(hi, a)
	}
	if lo < 0.08-1e-12 || hi > 0.12+1e-12 {
		t.Fatalf("jittered terminal delays outside [0.08, 0.12]: [%v, %v]", lo, hi)
	}
	if hi-lo < 0.005 {
		t.Fatalf("jitter did not spread delays: [%v, %v]", lo, hi)
	}
}
