package topology

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
)

func send(net *Network, flow int, size int) {
	p := net.GetPacket()
	p.Flow = flow
	p.Size = size
	net.SendForward(p)
}

func TestDumbbellForwardAndReverse(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e6, 0.02, netsim.NewDropTail(100))
	d := NewDumbbell(&s, link)
	var got []string
	recv := netsim.EndpointFunc(func(p *netsim.Packet) {
		got = append(got, "recv")
		ack := d.GetPacket()
		ack.Flow = p.Flow
		ack.Kind = netsim.Ack
		d.SendReverse(ack)
	})
	snd := netsim.EndpointFunc(func(p *netsim.Packet) { got = append(got, "ack") })
	d.AttachFlow(1, snd, recv, 0.005, 0.025)
	send(d.Network, 1, 1000)
	s.Run()
	if len(got) != 2 || got[0] != "recv" || got[1] != "ack" {
		t.Fatalf("sequence = %v", got)
	}
	// Base RTT: 0.02 + 0.005 + 0.025 = 0.05.
	if math.Abs(d.BaseRTT(1)-0.05) > 1e-12 {
		t.Fatalf("base rtt = %v", d.BaseRTT(1))
	}
	if err := d.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestDumbbellUnknownFlowDropped(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e6, 0.001, netsim.NewDropTail(10))
	d := NewDumbbell(&s, link)
	send(d.Network, 42, 100)
	s.Run() // must not panic
	if err := d.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestDumbbellDuplicateFlowPanics(t *testing.T) {
	var s des.Scheduler
	d := NewDumbbell(&s, netsim.NewLink(&s, 1e6, 0.001, netsim.NewDropTail(10)))
	e := netsim.EndpointFunc(func(*netsim.Packet) {})
	d.AttachFlow(1, e, e, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate flow")
		}
	}()
	d.AttachFlow(1, e, e, 0, 0)
}

// A three-hop route must deliver in order, after the sum of the hop
// serialization and propagation delays, and touch every link.
func TestMultiHopRouteTiming(t *testing.T) {
	var s des.Scheduler
	net := New(&s)
	n := []NodeID{net.AddNode("s"), net.AddNode("r1"), net.AddNode("r2"), net.AddNode("d")}
	var hops []LinkID
	for i := 0; i < 3; i++ {
		hops = append(hops, net.AddLink(n[i], n[i+1], 1e5, 0.01, netsim.NewDropTail(10)))
	}
	var arrivals []float64
	var seqs []int64
	net.SetRoute(1, hops...)
	net.AttachFlow(1, netsim.EndpointFunc(func(*netsim.Packet) {}),
		netsim.EndpointFunc(func(p *netsim.Packet) {
			arrivals = append(arrivals, s.Now())
			seqs = append(seqs, p.Seq)
		}), 0.005, 0.02)
	for i := 0; i < 3; i++ {
		p := net.GetPacket()
		p.Flow = 1
		p.Seq = int64(i)
		p.Size = 1000
		net.SendForward(p)
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// First packet: 3 hops × (10 ms serialization + 10 ms propagation)
	// + 5 ms terminal delay = 65 ms; later packets pipeline 10 ms apart.
	want := []float64{0.065, 0.075, 0.085}
	for i := range want {
		if math.Abs(arrivals[i]-want[i]) > 1e-9 {
			t.Fatalf("arrival %d at %v, want %v (all: %v)", i, arrivals[i], want[i], arrivals)
		}
		if seqs[i] != int64(i) {
			t.Fatalf("reordered: %v", seqs)
		}
	}
	for _, h := range hops {
		if net.Link(h).Forwarded != 3 {
			t.Fatalf("link %d forwarded %d", h, net.Link(h).Forwarded)
		}
	}
	if net.Delivered(1) != 3 {
		t.Fatalf("delivered = %d", net.Delivered(1))
	}
	if math.Abs(net.BaseRTT(1)-(0.01*3+0.005+0.02)) > 1e-12 {
		t.Fatalf("base rtt = %v", net.BaseRTT(1))
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// Flows with disjoint routes only congest their own hops, and packets
// dropped at an inner hop are recycled (the leak invariant holds with
// drops and with packets cut off mid-flight).
func TestLeakInvariantWithDropsAndCutoff(t *testing.T) {
	var s des.Scheduler
	net := New(&s)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	l0 := net.AddLink(a, b, 1e5, 0.005, netsim.NewDropTail(4))
	l1 := net.AddLink(b, c, 5e4, 0.005, netsim.NewDropTail(2)) // tighter: drops here
	net.SetRoute(1, l0, l1)
	delivered := 0
	net.AttachFlow(1, netsim.EndpointFunc(func(*netsim.Packet) {}),
		netsim.EndpointFunc(func(*netsim.Packet) { delivered++ }), 0, 0.01)
	for i := 0; i < 50; i++ {
		send(net, 1, 1000)
	}
	// Mid-flight check: packets sit in queues, serialization and
	// propagation; nothing may be unaccounted for.
	s.RunUntil(0.05)
	if err := net.CheckLeaks(); err != nil {
		t.Fatalf("mid-flight: %v", err)
	}
	s.Run()
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	drops := net.Link(l0).Queue().(*netsim.DropTail).Drops +
		net.Link(l1).Queue().(*netsim.DropTail).Drops
	if drops == 0 {
		t.Fatal("expected drops on the tight inner hop")
	}
	if int64(delivered)+drops != 50 {
		t.Fatalf("delivered %d + dropped %d != 50", delivered, drops)
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	if net.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after full drain", net.Outstanding())
	}
}

func TestReverseJitterBounds(t *testing.T) {
	var s des.Scheduler
	d := NewDumbbell(&s, netsim.NewLink(&s, 1e9, 0, netsim.NewDropTail(10)))
	d.SetReverseJitter(0.2, 42)
	var arrivals []float64
	d.AttachFlow(1, netsim.EndpointFunc(func(*netsim.Packet) { arrivals = append(arrivals, s.Now()) }),
		netsim.EndpointFunc(func(*netsim.Packet) {}), 0, 0.1)
	for i := 0; i < 200; i++ {
		p := d.GetPacket()
		p.Flow = 1
		p.Kind = netsim.Ack
		d.SendReverse(p)
	}
	s.Run()
	if len(arrivals) != 200 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	lo, hi := arrivals[0], arrivals[0]
	for _, a := range arrivals {
		lo, hi = math.Min(lo, a), math.Max(hi, a)
	}
	if lo < 0.08-1e-12 || hi > 0.12+1e-12 {
		t.Fatalf("jittered delays outside [0.08, 0.12]: [%v, %v]", lo, hi)
	}
	if hi-lo < 0.01 {
		t.Fatalf("jitter did not spread delays: [%v, %v]", lo, hi)
	}
}

func TestTopologyPanics(t *testing.T) {
	var s des.Scheduler
	fresh := func() (*Network, LinkID) {
		n := New(&s)
		a, b := n.AddNode("a"), n.AddNode("b")
		id := n.AddLink(a, b, 1e6, 0, netsim.NewDropTail(1))
		return n, id
	}
	e := netsim.EndpointFunc(func(*netsim.Packet) {})
	cases := []func(){
		func() { New(nil) },
		func() { NewDumbbell(nil, nil) },
		func() {
			n, _ := fresh()
			n.AdoptLink(nil, 0, 1)
		},
		func() {
			n, _ := fresh()
			n.AddLink(0, 7, 1e6, 0, netsim.NewDropTail(1)) // node out of range
		},
		func() {
			n, _ := fresh()
			n.SetRoute(1) // empty route
		},
		func() {
			n, id := fresh()
			n.SetRoute(1, id, id) // discontiguous: link ends at b, restarts at a
		},
		func() {
			n, _ := fresh()
			n.SetRoute(1, 9) // unknown link
		},
		func() {
			n, id := fresh()
			n.SetRoute(1, id)
			n.AttachFlow(1, nil, e, 0, 0) // nil endpoint
		},
		func() {
			n, id := fresh()
			n.SetRoute(1, id)
			n.AttachFlow(1, e, e, -1, 0) // negative delay
		},
		func() {
			n, _ := fresh()
			n.AttachFlow(1, e, e, 0, 0) // no route, no default
		},
		func() {
			n, _ := fresh()
			p := n.GetPacket()
			p.Flow = 3
			n.SendForward(p) // unrouted flow, no default link
		},
		func() {
			n, _ := fresh()
			p := n.GetPacket()
			p.Flow = 9
			n.SendReverse(p) // unknown flow
		},
		func() {
			n, _ := fresh()
			n.SetReverseJitter(1.5, 1)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestNetworkResetReuse checks the arena property: a network Reset and
// rebuilt in place must behave identically to a fresh one — same
// deliveries, same leak accounting — with the packet and flow-state
// pools carried across the reset.
func TestNetworkResetReuse(t *testing.T) {
	run := func(s *des.Scheduler, n *Network) (delivered int64, pooled int) {
		a := n.AddNode("a")
		b := n.AddNode("b")
		c := n.AddNode("c")
		l1 := n.AddLink(a, b, 1e6, 0.01, netsim.NewDropTail(4))
		l2 := n.AddLink(b, c, 1e6, 0.01, netsim.NewDropTail(4))
		n.SetDefaultRoute(l1, l2)
		recv := netsim.EndpointFunc(func(*netsim.Packet) {})
		n.AttachFlow(1, recv, recv, 0.002, 0.005)
		for i := 0; i < 20; i++ {
			send(n, 1, 1000)
		}
		s.Run()
		if err := n.CheckLeaks(); err != nil {
			t.Fatal(err)
		}
		return n.Delivered(1), len(n.pool)
	}

	var s1 des.Scheduler
	fresh := New(&s1)
	wantDelivered, _ := run(&s1, fresh)

	var s2 des.Scheduler
	reused := New(&s2)
	run(&s2, reused)
	s2.Reset()
	reused.Reset()
	if reused.Nodes() != 0 || reused.Links() != 0 || len(reused.flows) != 0 {
		t.Fatalf("Reset left graph state: %d nodes, %d links, %d flows",
			reused.Nodes(), reused.Links(), len(reused.flows))
	}
	if reused.Outstanding() != 0 || reused.InNetwork() != 0 {
		t.Fatalf("Reset left freelist accounting: outstanding=%d in-network=%d",
			reused.Outstanding(), reused.InNetwork())
	}
	if len(reused.pool) == 0 || len(reused.fsPool) == 0 {
		t.Fatal("Reset discarded the packet or flow-state pool")
	}
	gotDelivered, pooled := run(&s2, reused)
	if gotDelivered != wantDelivered {
		t.Fatalf("reused network delivered %d packets, fresh delivered %d",
			gotDelivered, wantDelivered)
	}
	if pooled == 0 {
		t.Fatal("second run did not recycle packets through the carried-over pool")
	}
}
