package core

import (
	"fmt"
	"strings"

	"repro/internal/formula"
	"repro/internal/numerics"
)

// FormulaReport is a designer-facing analysis of a loss-throughput
// function, automating the checks the paper's conclusion recommends
// before adopting a formula: where the convexity conditions of
// Theorems 1 and 2 hold, and how large the worst-case overshoot under
// condition (C1) can be (Proposition 4).
type FormulaReport struct {
	// Name is the formula's name.
	Name string
	// GConvexEverywhere reports condition (F1) on the whole range.
	GConvexEverywhere bool
	// Prop4Ratio is the deviation-from-convexity ratio r = sup g/g**;
	// under (C1) the control cannot overshoot f(p) by more than this.
	Prop4Ratio float64
	// Prop4ArgMax is the loss interval at which the ratio is attained.
	Prop4ArgMax float64
	// ConcaveAbove is the smallest grid x above which f(1/x) is concave
	// (condition (F2): the "safe" rare-loss region of Theorem 2);
	// +Inf if nowhere on the range.
	ConcaveAbove float64
	// ConvexBelow is the largest grid x below which f(1/x) is strictly
	// convex (condition (F2c): the non-conservative heavy-loss region);
	// 0 if nowhere on the range.
	ConvexBelow float64
	// RangeLo and RangeHi are the analyzed loss-interval bounds.
	RangeLo, RangeHi float64
}

// AnalyzeFormula inspects f over the loss-interval range [xlo, xhi]
// (x = 1/p, so small x is heavy loss) on an n-point grid.
func AnalyzeFormula(f formula.Formula, xlo, xhi float64, n int) FormulaReport {
	if xlo <= 0 || xhi <= xlo || n < 16 {
		panic("core: invalid formula analysis range")
	}
	grid := numerics.Grid(xlo, xhi, n)
	rep := FormulaReport{
		Name:    f.Name(),
		RangeLo: xlo,
		RangeHi: xhi,
	}
	rep.GConvexEverywhere = numerics.IsConvexOnGrid(formula.G(f), grid, 1e-9)
	rep.Prop4Ratio, rep.Prop4ArgMax = formula.DeviationFromConvexity(f, xlo, xhi, n)

	// Find the concave-above threshold: the smallest x such that f(1/x)
	// is concave on [x, xhi]. Bisection over grid indices using the
	// monotone structure of the PFTK-family inflection (a single sign
	// change); for general f this is a conservative scan.
	fx := formula.F1x(f)
	rep.ConcaveAbove = rep.RangeHi
	for i := 0; i+16 < len(grid); i++ {
		if numerics.IsConcaveOnGrid(fx, grid[i:], 1e-9) {
			rep.ConcaveAbove = grid[i]
			break
		}
	}
	rep.ConvexBelow = 0
	for i := len(grid) - 1; i >= 16; i-- {
		if numerics.IsConvexOnGrid(fx, grid[:i+1], 1e-9) {
			rep.ConvexBelow = grid[i]
			break
		}
	}
	return rep
}

// String renders the report as a short designer-readable summary.
func (r FormulaReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on loss intervals [%.3g, %.3g]:\n", r.Name, r.RangeLo, r.RangeHi)
	fmt.Fprintf(&b, "  (F1) 1/f(1/x) convex everywhere: %v\n", r.GConvexEverywhere)
	fmt.Fprintf(&b, "  Prop 4 overshoot bound under (C1): %.5f (at x = %.4g)\n",
		r.Prop4Ratio, r.Prop4ArgMax)
	fmt.Fprintf(&b, "  (F2) f(1/x) concave for x >= %.4g (rare-loss safe region)\n", r.ConcaveAbove)
	if r.ConvexBelow > 0 {
		fmt.Fprintf(&b, "  (F2c) f(1/x) strictly convex for x <= %.4g — non-conservative\n", r.ConvexBelow)
		fmt.Fprintf(&b, "        under (C2c)+(V) for loss-event rates above %.4g\n", 1/r.ConvexBelow)
	} else {
		fmt.Fprintf(&b, "  (F2c) no strictly convex heavy-loss region found\n")
	}
	return b.String()
}
