package core

import (
	"repro/internal/estimator"
	"repro/internal/stats"
)

// Prop1Decomposition evaluates the two factors of the paper's comment to
// Proposition 1, which rewrites the basic control's throughput as
//
//	E[X(0)] = (1 / E[g(θ̂0)]) · 1/(1 + cov[θ0, g-term])
//
// i.e. a Jensen (convexity) factor and a covariance factor:
//
//	JensenFactor     = f-side harmonic mean term: 1/E[1/f(1/θ̂0)],
//	CovarianceFactor = 1/(1 + cov[θ0, 1/f(1/θ̂0)]/(E[θ0]·E[1/f(1/θ̂0)])).
//
// When the loss-interval estimator and the next interval are
// independent, the covariance factor is 1 and convexity alone decides
// conservativeness — the decomposition quantifies each effect.
type Prop1Decomposition struct {
	// Throughput is E[X(0)] reconstructed from the two factors.
	Throughput float64
	// JensenFactor is 1/E[1/f(1/θ̂0)] (packets/second).
	JensenFactor float64
	// CovarianceFactor is the dimensionless second factor.
	CovarianceFactor float64
	// Events is the number of loss events used.
	Events int
}

// DecomposeProp1 runs the basic control's estimator over cfg's loss
// process and computes the decomposition by Monte Carlo.
func DecomposeProp1(cfg Config) Prop1Decomposition {
	cfg.validate()
	est := estimator.NewLossIntervalEstimator(cfg.Weights)
	for i := 0; i < len(cfg.Weights); i++ {
		est.Observe(cfg.Process.Next())
	}
	thetas := make([]float64, 0, cfg.Events)
	gvals := make([]float64, 0, cfg.Events) // 1/f(1/θ̂)
	total := cfg.Warmup + cfg.Events
	for n := 0; n < total; n++ {
		hat := est.Estimate()
		g := 1 / cfg.Formula.Rate(1/hat)
		theta := cfg.Process.Next()
		if n >= cfg.Warmup {
			thetas = append(thetas, theta)
			gvals = append(gvals, g)
		}
		est.Observe(theta)
	}
	meanTheta := stats.Mean(thetas)
	meanG := stats.Mean(gvals)
	cov := stats.Covariance(thetas, gvals)
	d := Prop1Decomposition{
		JensenFactor:     1 / meanG,
		CovarianceFactor: 1 / (1 + cov/(meanTheta*meanG)),
		Events:           len(thetas),
	}
	d.Throughput = d.JensenFactor * d.CovarianceFactor
	return d
}
