package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
)

func basicCfg(f formula.Formula, L int, proc lossmodel.Process, events int) Config {
	return Config{
		Formula: f,
		Weights: estimator.TFRCWeights(L),
		Process: proc,
		Events:  events,
	}
}

// Theorem 1 / Corollary 1: IID loss intervals + convex g imply the basic
// control is conservative.
func TestCorollary1Conservative(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	for _, f := range []formula.Formula{
		formula.NewSQRT(params),
		formula.NewPFTKSimplified(params),
	} {
		for _, p := range []float64{0.02, 0.1, 0.3} {
			proc := lossmodel.DesignShiftedExp(p, 0.9, rng.New(100))
			res := RunBasic(basicCfg(f, 8, proc, 100000))
			if !res.Conservative(0.01) {
				t.Errorf("%s p=%v: normalized = %v, want <= 1",
					f.Name(), p, res.Normalized)
			}
			// IID intervals: (C1) holds with near-zero covariance.
			if math.Abs(res.CovThetaHatNorm) > 0.02 {
				t.Errorf("%s p=%v: cov·p² = %v, want ~0",
					f.Name(), p, res.CovThetaHatNorm)
			}
		}
	}
}

// Exact check: SQRT, L=1, exponential intervals (cv=1). Then θ̂ is the
// previous interval, E[θ̂^{-1/2}] = sqrt(pi/m), and the normalized
// throughput is exactly 1/sqrt(pi) ≈ 0.5642.
func TestSQRTL1ExactValue(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	proc := lossmodel.DesignShiftedExp(0.05, 1.0, rng.New(7))
	res := RunBasic(basicCfg(f, 1, proc, 400000))
	want := 1 / math.Sqrt(math.Pi)
	if math.Abs(res.Normalized-want) > 0.01 {
		t.Fatalf("normalized = %v, want %v", res.Normalized, want)
	}
}

// Figure 3 shape, PFTK-simplified: conservativeness strengthens with p
// (throughput drop under heavy loss), and weakens with larger L.
func TestFig3ShapePFTK(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	cv := 1 - 1.0/1000
	norm := func(p float64, L int, seed uint64) float64 {
		proc := lossmodel.DesignShiftedExp(p, cv, rng.New(seed))
		return RunBasic(basicCfg(f, L, proc, 60000)).Normalized
	}
	// Monotone drop with p at L=8.
	n005, n02, n04 := norm(0.05, 8, 1), norm(0.2, 8, 2), norm(0.4, 8, 3)
	if !(n005 > n02 && n02 > n04) {
		t.Fatalf("normalized not decreasing in p: %v %v %v", n005, n02, n04)
	}
	if n04 > 0.7 {
		t.Fatalf("heavy-loss PFTK normalized = %v, want strong conservativeness", n04)
	}
	// Larger L is less conservative at fixed p.
	l1, l16 := norm(0.2, 1, 4), norm(0.2, 16, 5)
	if l1 >= l16 {
		t.Fatalf("L=1 (%v) should be more conservative than L=16 (%v)", l1, l16)
	}
}

// Figure 3 shape, SQRT: with the shifted-exponential design the law of
// p·θ0 does not depend on p, so the normalized throughput is invariant
// to p.
func TestFig3SQRTInvariantInP(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	cv := 1 - 1.0/1000
	norm := func(p float64) float64 {
		proc := lossmodel.DesignShiftedExp(p, cv, rng.New(11))
		return RunBasic(basicCfg(f, 4, proc, 150000)).Normalized
	}
	a, b, c := norm(0.02), norm(0.1), norm(0.4)
	if math.Abs(a-b) > 0.02 || math.Abs(b-c) > 0.02 {
		t.Fatalf("SQRT normalized varies with p: %v %v %v", a, b, c)
	}
}

// Figure 4 shape: conservativeness strengthens with the coefficient of
// variation of the loss intervals.
func TestFig4ShapeCV(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	norm := func(cv float64, seed uint64) float64 {
		proc := lossmodel.DesignShiftedExp(0.1, cv, rng.New(seed))
		return RunBasic(basicCfg(f, 8, proc, 60000)).Normalized
	}
	n02, n05, n09 := norm(0.2, 21), norm(0.5, 22), norm(0.9, 23)
	if !(n02 > n05 && n05 > n09) {
		t.Fatalf("normalized not decreasing in cv: %v %v %v", n02, n05, n09)
	}
	// Low variability: close to the deterministic fixed point (≈ 1).
	if n02 < 0.95 {
		t.Fatalf("cv=0.2 normalized = %v, want near 1", n02)
	}
}

// Proposition 2: the comprehensive control attains at least the basic
// control's throughput under the same loss process.
func TestProp2ComprehensiveAtLeastBasic(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	for _, f := range []formula.Formula{
		formula.NewSQRT(params),
		formula.NewPFTKSimplified(params),
		formula.NewPFTKStandard(params),
	} {
		for _, p := range []float64{0.05, 0.25} {
			b := RunBasic(basicCfg(f, 8, lossmodel.DesignShiftedExp(p, 0.9, rng.New(31)), 60000))
			c := RunComprehensive(basicCfg(f, 8, lossmodel.DesignShiftedExp(p, 0.9, rng.New(31)), 60000))
			if c.Throughput < b.Throughput*(1-1e-9) {
				t.Errorf("%s p=%v: comprehensive %v < basic %v",
					f.Name(), p, c.Throughput, b.Throughput)
			}
		}
	}
}

// The comprehensive control's conservativeness is less pronounced than
// the basic control's (paper §V-B.1).
func TestComprehensiveLessPronounced(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	b := RunBasic(basicCfg(f, 8, lossmodel.DesignShiftedExp(0.3, 0.95, rng.New(41)), 80000))
	c := RunComprehensive(basicCfg(f, 8, lossmodel.DesignShiftedExp(0.3, 0.95, rng.New(41)), 80000))
	if !(b.Normalized < c.Normalized) {
		t.Fatalf("basic %v should be more conservative than comprehensive %v",
			b.Normalized, c.Normalized)
	}
}

// Proposition 3: the closed-form interval duration matches the numeric
// quadrature used by RunComprehensive, for SQRT and PFTK-simplified.
func TestProp3MatchesQuadrature(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	r := rng.New(51)
	for _, f := range []formula.Formula{
		formula.NewSQRT(params),
		formula.NewPFTKSimplified(params),
	} {
		est := estimator.NewLossIntervalEstimator(estimator.TFRCWeights(8))
		for i := 0; i < 20; i++ {
			est.Observe(r.ShiftedExp(1, 0.2))
		}
		cd := comprehensiveDuration{panels: 4096}
		for i := 0; i < 200; i++ {
			theta := r.ShiftedExp(1, 0.2)
			hatN := est.Estimate()
			rate := f.Rate(1 / hatN)
			numeric, _ := cd.interval(est, f, theta, rate)
			w1 := est.Weights()[0]
			thetaStar := est.OpenThreshold()
			hatNext := hatN
			if theta > thetaStar {
				hatNext = hatN + w1*(theta-thetaStar)
			}
			closed, err := IntervalDurationProp3(f, w1, hatN, hatNext, theta)
			if err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			if math.Abs(numeric-closed)/closed > 1e-5 {
				t.Fatalf("%s: numeric %v vs closed form %v (theta=%v)",
					f.Name(), numeric, closed, theta)
			}
			est.Observe(theta)
		}
	}
}

func TestProp3RejectsPFTKStandard(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKStandard(formula.DefaultParams())
	if _, err := IntervalDurationProp3(f, 0.2, 10, 12, 15); err == nil {
		t.Fatal("expected error for PFTK-standard")
	}
}

func TestProp3NoIncreaseBranch(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	// hatNext <= hatN: duration is the plain basic-control value.
	got, err := IntervalDurationProp3(f, 0.2, 10, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 / f.Rate(1.0/10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

// Theorem 2 part 2 / Claim 2 / Figure 6: the audio sender (fixed packet
// rate, variable packet length) through a Bernoulli dropper is
// non-conservative for PFTK under heavy loss and conservative for SQRT.
func TestClaim2Audio(t *testing.T) {
	t.Parallel()
	params := formula.ParamsForRTT(0.2)
	const spacing = 0.02 // one packet per 20 ms, as in the paper
	heavy := 0.2         // heavy loss: PFTK's f(1/x) is convex there
	runAudio := func(f formula.Formula, p float64, seed uint64) Result {
		proc := lossmodel.NewGeometric(p, rng.New(seed))
		return RunFixedPacketRate(basicCfg(f, 4, proc, 150000), spacing)
	}
	sqrtRes := runAudio(formula.NewSQRT(params), heavy, 61)
	if sqrtRes.Normalized > 1.005 {
		t.Fatalf("SQRT audio normalized = %v, want <= 1", sqrtRes.Normalized)
	}
	pftkRes := runAudio(formula.NewPFTKSimplified(params), heavy, 62)
	if pftkRes.Normalized < 1.01 {
		t.Fatalf("PFTK audio heavy-loss normalized = %v, want > 1 (non-conservative)",
			pftkRes.Normalized)
	}
	stdRes := runAudio(formula.NewPFTKStandard(params), heavy, 63)
	if stdRes.Normalized < 1.01 {
		t.Fatalf("PFTK-standard audio heavy-loss normalized = %v, want > 1",
			stdRes.Normalized)
	}
	// Light loss: PFTK is concave there, so conservative again.
	light := runAudio(formula.NewPFTKSimplified(params), 0.005, 64)
	if light.Normalized > 1.005 {
		t.Fatalf("PFTK audio light-loss normalized = %v, want <= 1", light.Normalized)
	}
	// The audio scenario decouples X and S: cov[X0,S0] ~ 0.
	norm := pftkRes.CovXS / (pftkRes.Throughput * pftkRes.MeanInterLossTime)
	if math.Abs(norm) > 0.05 {
		t.Fatalf("audio cov[X,S] normalized = %v, want ~0", norm)
	}
}

// Eq. (10): the bound holds against measured throughput when (C1) holds.
func TestTheorem1BoundHolds(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	proc := lossmodel.DesignShiftedExp(0.1, 0.9, rng.New(71))
	res := RunBasic(basicCfg(f, 8, proc, 100000))
	bound, valid := Theorem1Bound(f, res.LossEventRate, res.CovThetaHat)
	if !valid {
		t.Fatal("bound should be valid for near-zero covariance")
	}
	if res.Throughput > bound*1.01 {
		t.Fatalf("throughput %v exceeds eq.(10) bound %v", res.Throughput, bound)
	}
	// Zero covariance: the bound reduces to f(p).
	b0, _ := Theorem1Bound(f, 0.1, 0)
	if math.Abs(b0-f.Rate(0.1)) > 1e-9 {
		t.Fatalf("zero-cov bound = %v, want f(p) = %v", b0, f.Rate(0.1))
	}
}

func TestTheorem1BoundInvalidDenominator(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	// Large positive covariance drives the denominator negative
	// (elasticity is -1/2 for SQRT, so need cov·p² > 2).
	_, valid := Theorem1Bound(f, 0.5, 100)
	if valid {
		t.Fatal("expected invalid bound for huge positive covariance")
	}
}

// Proposition 4: under (C1) the overshoot never exceeds the deviation
// ratio. For PFTK-standard the bound is ~1.003.
func TestProp4BoundObserved(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKStandard(formula.DefaultParams())
	bound := Prop4Bound(f, 1.01, 100, 5000)
	if bound < 1 || bound > 1.01 {
		t.Fatalf("Prop4 bound = %v, want just above 1", bound)
	}
	proc := lossmodel.DesignShiftedExp(0.15, 0.9, rng.New(81))
	res := RunBasic(basicCfg(f, 8, proc, 100000))
	if res.Normalized > bound*1.01 {
		t.Fatalf("normalized %v exceeds Prop4 bound %v", res.Normalized, bound)
	}
}

func TestClassifyVerdicts(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	// IID + PFTK-simplified: Theorem 1 path, conservative.
	cfg := basicCfg(formula.NewPFTKSimplified(params), 8,
		lossmodel.DesignShiftedExp(0.1, 0.9, rng.New(91)), 50000)
	res := RunBasic(cfg)
	lo, hi := EstimatorRange(basicCfg(formula.NewPFTKSimplified(params), 8,
		lossmodel.DesignShiftedExp(0.1, 0.9, rng.New(91)), 50000), 20000, 0.01, 0.99)
	rep := Classify(formula.NewPFTKSimplified(params), res, lo, hi, 0.05)
	if !rep.F1 || !rep.C1 {
		t.Fatalf("expected F1 and C1 to hold: %+v", rep)
	}
	if rep.Verdict != PredictConservative {
		t.Fatalf("verdict = %v, want conservative", rep.Verdict)
	}
	if !res.Conservative(0.01) {
		t.Fatalf("prediction conservative but measured %v", res.Normalized)
	}

	// Audio + PFTK + heavy loss: Theorem 2 part 2, non-conservative.
	audioCfg := basicCfg(formula.NewPFTKSimplified(params), 4,
		lossmodel.NewGeometric(0.25, rng.New(92)), 100000)
	audioRes := RunFixedPacketRate(audioCfg, 0.02)
	lo2, hi2 := EstimatorRange(basicCfg(formula.NewPFTKSimplified(params), 4,
		lossmodel.NewGeometric(0.25, rng.New(92)), 100000), 20000, 0.1, 0.9)
	rep2 := Classify(formula.NewPFTKSimplified(params), audioRes, lo2, hi2, 0.05)
	if !rep2.F2c {
		t.Fatalf("expected F2c (convex f(1/x)) on range [%v,%v]", lo2, hi2)
	}
	if rep2.Verdict != PredictNonConservative {
		t.Fatalf("verdict = %v, want non-conservative (%+v)", rep2.Verdict, rep2)
	}
	if audioRes.Normalized <= 1 {
		t.Fatalf("prediction non-conservative but measured %v", audioRes.Normalized)
	}
}

func TestVerdictString(t *testing.T) {
	t.Parallel()
	if PredictConservative.String() != "conservative" ||
		PredictNonConservative.String() != "non-conservative" ||
		Inconclusive.String() != "inconclusive" {
		t.Fatal("verdict strings wrong")
	}
}

// Phase (slow-transition) losses create a positive covariance, taking the
// run outside Theorem 1's hypotheses — the §III-B.2 scenario.
func TestPhaseProcessBreaksC1(t *testing.T) {
	t.Parallel()
	proc := lossmodel.NewTwoPhase(200, 4, 0.02, rng.New(93))
	f := formula.NewSQRT(formula.DefaultParams())
	res := RunBasic(basicCfg(f, 8, proc, 150000))
	if res.CovThetaHatNorm <= 0.01 {
		t.Fatalf("phase cov·p² = %v, want clearly positive", res.CovThetaHatNorm)
	}
}

func TestResultFields(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	proc := lossmodel.DesignShiftedExp(0.1, 0.5, rng.New(94))
	res := RunBasic(basicCfg(f, 8, proc, 20000))
	if res.Events != 20000 {
		t.Fatalf("events = %d", res.Events)
	}
	if math.Abs(res.LossEventRate-0.1)/0.1 > 0.05 {
		t.Fatalf("loss-event rate = %v, want ~0.1", res.LossEventRate)
	}
	if res.FormulaRate != f.Rate(res.LossEventRate) {
		t.Fatal("formula rate inconsistent")
	}
	if math.Abs(res.Normalized-res.Throughput/res.FormulaRate) > 1e-12 {
		t.Fatal("normalized inconsistent")
	}
	if res.CVEstimatorSq != res.CVEstimator*res.CVEstimator {
		t.Fatal("cv² inconsistent")
	}
	if res.MeanInterLossTime <= 0 {
		t.Fatal("non-positive mean inter-loss time")
	}
}

func TestConfigPanics(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	proc := lossmodel.NewGeometric(0.1, rng.New(1))
	cases := []func(){
		func() { RunBasic(Config{Weights: estimator.TFRCWeights(2), Process: proc, Events: 10}) },
		func() { RunBasic(Config{Formula: f, Process: proc, Events: 10}) },
		func() { RunBasic(Config{Formula: f, Weights: estimator.TFRCWeights(2), Events: 10}) },
		func() { RunBasic(Config{Formula: f, Weights: estimator.TFRCWeights(2), Process: proc}) },
		func() { RunFixedPacketRate(basicCfg(f, 2, proc, 10), 0) },
		func() { Theorem1Bound(f, 0, 0) },
		func() { Classify(f, Result{}, 5, 5, 0.1) },
		func() { EstimatorRange(basicCfg(f, 2, proc, 10), 0, 0.1, 0.9) },
		func() { EstimatorRange(basicCfg(f, 2, proc, 10), 10, 0.9, 0.1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: for random IID processes and any of the three formulae with
// convex g, the basic control never overshoots materially (Theorem 1 with
// C1 ≈ 0). Uses short runs, so allow generous Monte Carlo slack.
func TestQuickTheorem1(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	fs := []formula.Formula{formula.NewSQRT(params), formula.NewPFTKSimplified(params)}
	seed := uint64(1000)
	check := func(a, b, c uint8) bool {
		seed++
		p := 0.02 + float64(a)/255*0.35
		cv := 0.3 + float64(b)/255*0.69
		f := fs[int(c)%len(fs)]
		proc := lossmodel.DesignShiftedExp(p, cv, rng.New(seed))
		res := RunBasic(basicCfg(f, 4, proc, 8000))
		return res.Normalized <= 1.05
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: comprehensive throughput >= basic throughput for the same
// seed and parameters (Proposition 2), across random settings.
func TestQuickProp2(t *testing.T) {
	t.Parallel()
	params := formula.DefaultParams()
	seed := uint64(5000)
	check := func(a, b uint8) bool {
		seed++
		p := 0.05 + float64(a)/255*0.3
		cv := 0.4 + float64(b)/255*0.55
		f := formula.NewPFTKSimplified(params)
		basic := RunBasic(basicCfg(f, 8, lossmodel.DesignShiftedExp(p, cv, rng.New(seed)), 6000))
		comp := RunComprehensive(basicCfg(f, 8, lossmodel.DesignShiftedExp(p, cv, rng.New(seed)), 6000))
		return comp.Throughput >= basic.Throughput*(1-1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
