package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/formula"
)

func TestAnalyzeSQRT(t *testing.T) {
	t.Parallel()
	rep := AnalyzeFormula(formula.NewSQRT(formula.DefaultParams()), 1.01, 100, 2000)
	if !rep.GConvexEverywhere {
		t.Fatal("SQRT: g should be convex everywhere")
	}
	if rep.Prop4Ratio > 1+1e-9 {
		t.Fatalf("SQRT Prop4 ratio = %v, want 1", rep.Prop4Ratio)
	}
	// f(1/x) = sqrt(x)/c1r is concave from the left edge on.
	if rep.ConcaveAbove > 1.2 {
		t.Fatalf("SQRT concave-above = %v, want near range start", rep.ConcaveAbove)
	}
	if rep.ConvexBelow != 0 {
		t.Fatalf("SQRT should have no convex region, got %v", rep.ConvexBelow)
	}
}

func TestAnalyzePFTKSimplified(t *testing.T) {
	if testing.Short() {
		t.Skip("4000-point formula analysis skipped in -short mode")
	}
	t.Parallel()
	rep := AnalyzeFormula(formula.NewPFTKSimplified(formula.DefaultParams()), 1.01, 100, 4000)
	if !rep.GConvexEverywhere {
		t.Fatal("PFTK-simplified: g should be convex")
	}
	// Heavy-loss convex region exists and sits below the concave region.
	if rep.ConvexBelow <= 1.01 {
		t.Fatalf("PFTK-simplified should have a convex heavy-loss region, got %v", rep.ConvexBelow)
	}
	// Both thresholds bracket the single inflection of f(1/x); with the
	// grid tolerance they may overlap slightly, but must agree to ~1%.
	if math.Abs(rep.ConcaveAbove-rep.ConvexBelow)/rep.ConvexBelow > 0.02 {
		t.Fatalf("inflection estimates disagree: concave above %v, convex below %v",
			rep.ConcaveAbove, rep.ConvexBelow)
	}
	// The Claim 2 non-conservative regime is heavy loss: p above
	// 1/ConvexBelow should include p = 0.25 (Figure 6's regime).
	if 1/rep.ConvexBelow > 0.25 {
		t.Fatalf("convex region should cover p=0.25: threshold %v", 1/rep.ConvexBelow)
	}
}

func TestAnalyzePFTKStandardProp4(t *testing.T) {
	if testing.Short() {
		t.Skip("40000-point formula analysis skipped in -short mode")
	}
	t.Parallel()
	rep := AnalyzeFormula(formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: 1}), 1.01, 50, 40000)
	if rep.GConvexEverywhere {
		t.Fatal("PFTK-standard has a kink; strict convexity must fail")
	}
	if rep.Prop4Ratio < 1.002 || rep.Prop4Ratio > 1.003 {
		t.Fatalf("Prop4 ratio = %v, want ~1.0026", rep.Prop4Ratio)
	}
	if math.Abs(rep.Prop4ArgMax-3.375) > 0.05 {
		t.Fatalf("Prop4 argmax = %v, want ~3.375", rep.Prop4ArgMax)
	}
}

func TestReportString(t *testing.T) {
	t.Parallel()
	rep := AnalyzeFormula(formula.NewPFTKSimplified(formula.DefaultParams()), 1.01, 100, 2000)
	s := rep.String()
	for _, want := range []string{"PFTK-simplified", "(F1)", "Prop 4", "(F2c)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzePanics(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	for i, fn := range []func(){
		func() { AnalyzeFormula(f, 0, 10, 100) },
		func() { AnalyzeFormula(f, 10, 5, 100) },
		func() { AnalyzeFormula(f, 1, 10, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
