// Package core implements the paper's primary contribution: the
// equation-based rate control models (basic control, eq. 3, and
// comprehensive control, eq. 4), their long-run throughput (Propositions
// 1-3), and the conservativeness analysis (Theorems 1-2, the explicit
// bound eq. 10, and Proposition 4's deviation-from-convexity bound).
//
// The controls are driven by an abstract loss-event interval process
// (package lossmodel); this is exactly the paper's setting for the
// conservativeness question, which studies the source in isolation under
// a given loss process.
package core

import (
	"fmt"
	"math"

	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/numerics"
	"repro/internal/stats"
)

// Result summarizes a long-run simulation of a control.
type Result struct {
	// Throughput is the long-run time-average send rate x̄ in
	// packets/second (Σθ_n / ΣS_n: packets sent over elapsed time).
	Throughput float64
	// LossEventRate is p = 1/E[θ0], the loss-event rate seen by the
	// source (eq. 1).
	LossEventRate float64
	// FormulaRate is f(p) evaluated at the observed loss-event rate.
	FormulaRate float64
	// Normalized is Throughput/FormulaRate: the paper's x̄/f(p).
	// Values below 1 mean the control is conservative.
	Normalized float64
	// CovThetaHat is cov[θ0, θ̂0] — condition (C1) of Theorem 1 asks
	// whether this is <= 0.
	CovThetaHat float64
	// CovThetaHatNorm is cov[θ0, θ̂0]·p², the normalized covariance the
	// paper plots in Figures 5 and 10.
	CovThetaHatNorm float64
	// CovXS is cov[X0, S0] — conditions (C2)/(C2c) of Theorem 2.
	CovXS float64
	// CVEstimator is the coefficient of variation of θ̂0 (the estimator
	// variability of Claims 1-2); CVEstimatorSq is its square, plotted
	// in Figure 6 (bottom).
	CVEstimator, CVEstimatorSq float64
	// MeanInterLossTime is E[S0], the mean inter loss-event time in
	// seconds.
	MeanInterLossTime float64
	// Events is the number of loss events measured (after warmup).
	Events int
	// RateCoupled reports whether the interval durations were coupled
	// to the send rate as S_n = θ_n/X_n (basic and comprehensive
	// controls). Theorem 1 presumes this coupling; the fixed-packet-rate
	// (audio) scenario breaks it, leaving only Theorem 2 applicable.
	RateCoupled bool
}

// Conservative reports whether the run came out conservative
// (throughput at most f(p), within slack eps to absorb Monte Carlo
// noise).
func (r Result) Conservative(eps float64) bool { return r.Normalized <= 1+eps }

// Config describes a control simulation run.
type Config struct {
	// Formula is the loss-throughput function f.
	Formula formula.Formula
	// Weights are the estimator weights (most-recent-first); they are
	// normalized internally. Use estimator.TFRCWeights(L) for TFRC.
	Weights []float64
	// Process generates the loss-event intervals θ_n.
	Process lossmodel.Process
	// Events is the number of measured loss events.
	Events int
	// Warmup is the number of initial events discarded (estimator
	// fill plus transient). Defaults to 10·L if zero.
	Warmup int
	// IntegrationPanels sets the quadrature resolution for the
	// comprehensive control's in-interval rate integral. Defaults to 64.
	IntegrationPanels int
}

func (c *Config) validate() {
	if c.Formula == nil || c.Process == nil {
		panic("core: config needs a formula and a process")
	}
	if len(c.Weights) == 0 {
		panic("core: config needs estimator weights")
	}
	if c.Events <= 0 {
		panic("core: config needs a positive event count")
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * len(c.Weights)
	}
	if c.IntegrationPanels == 0 {
		c.IntegrationPanels = 64
	}
}

// RunBasic simulates the basic control (eq. 3): the rate is held at
// f(1/θ̂_n) for the whole inter loss-event interval, so the interval
// duration is S_n = θ_n / f(1/θ̂_n). It returns the long-run statistics.
// This is a Monte Carlo evaluation of Proposition 1.
func RunBasic(cfg Config) Result {
	cfg.validate()
	res := run(cfg, basicDuration{})
	res.RateCoupled = true
	return res
}

// RunComprehensive simulates the comprehensive control (eq. 4): within an
// interval the rate rises once the open interval θ(t) lifts the
// estimator. The interval duration is
//
//	S_n = min(θ*, θ_n)/f(1/θ̂_n) + (1/w1)·∫_{θ̂_n}^{θ̂_{n+1}} g(y) dy
//
// with g(y) = 1/f(1/y) and θ* the threshold of condition A_t. The
// integral is evaluated by quadrature for arbitrary f; for SQRT and
// PFTK-simplified the closed form of Proposition 3 is available via
// IntervalDurationProp3 and is tested to agree.
func RunComprehensive(cfg Config) Result {
	cfg.validate()
	res := run(cfg, comprehensiveDuration{panels: cfg.IntegrationPanels})
	res.RateCoupled = true
	return res
}

// RunFixedPacketRate simulates the paper's "audio" scenario of Claim 2
// and Figure 6: the sender emits packets at a fixed rate (one packet per
// packetSpacing seconds) and modulates the packet length — and thus the
// bit rate X — by the equation. The inter loss-event time is then
// S_n = θ_n·packetSpacing, independent of X, so cov[X0, S0] = 0 and
// Theorem 2 governs the outcome.
func RunFixedPacketRate(cfg Config, packetSpacing float64) Result {
	cfg.validate()
	if packetSpacing <= 0 {
		panic("core: non-positive packet spacing")
	}
	return run(cfg, audioDuration{spacing: packetSpacing})
}

// durationModel computes, for one loss interval, the interval duration
// S_n in seconds and the volume ∫X dt sent over it in the units of X,
// given the estimator state before the interval, the interval length θ_n
// in packets and the rate X_n at the interval start.
//
// For the basic and comprehensive controls X is a packet rate, so the
// volume equals θ_n exactly. For the audio scenario X is a byte rate
// decoupled from the fixed packet rate, so the volume is X_n·S_n.
type durationModel interface {
	interval(est *estimator.LossIntervalEstimator, f formula.Formula, theta, rate float64) (duration, volume float64)
}

type basicDuration struct{}

func (basicDuration) interval(_ *estimator.LossIntervalEstimator, _ formula.Formula, theta, rate float64) (float64, float64) {
	return theta / rate, theta
}

type audioDuration struct{ spacing float64 }

func (a audioDuration) interval(_ *estimator.LossIntervalEstimator, _ formula.Formula, theta, rate float64) (float64, float64) {
	d := theta * a.spacing
	return d, rate * d
}

type comprehensiveDuration struct{ panels int }

func (c comprehensiveDuration) interval(est *estimator.LossIntervalEstimator, f formula.Formula, theta, rate float64) (float64, float64) {
	thetaStar := est.OpenThreshold()
	if theta <= thetaStar {
		return theta / rate, theta
	}
	// Constant-rate phase up to the threshold, then the rate follows
	// f(1/θ̂(t)) with θ̂(t) = w1·θ(t) + W_n. Substituting
	// y = w1·θ + W_n turns the time integral into (1/w1)∫ g(y) dy from
	// θ̂_n to θ̂_{n+1}.
	w1 := est.Weights()[0]
	hatN := est.Estimate()
	hatNext := hatN + w1*(theta-thetaStar)
	g := formula.G(f)
	tail := numerics.Trapezoid(g, hatN, hatNext, c.panels) / w1
	return thetaStar/rate + tail, theta
}

// IntervalDurationProp3 returns S_n by the closed form of Proposition 3,
// valid when f is SQRT or PFTK-simplified:
//
//	S_n = θ_n/f(1/θ̂_n) − V_n·1{θ̂_{n+1} > θ̂_n}
//
// where hatN = θ̂_n and hatNext = θ̂_{n+1} and w1 is the first estimator
// weight. It returns an error for formulae the closed form does not
// cover (PFTK-standard's min term has no elementary antiderivative split
// in the paper).
func IntervalDurationProp3(f formula.Formula, w1, hatN, hatNext, theta float64) (float64, error) {
	if w1 <= 0 || hatN <= 0 || theta <= 0 {
		return 0, fmt.Errorf("core: invalid Proposition 3 arguments")
	}
	base := theta / f.Rate(1/hatN)
	if hatNext <= hatN {
		return base, nil
	}
	p := f.Params()
	c1 := p.C1()
	var qc2 float64
	switch f.(type) {
	case formula.SQRT:
		qc2 = 0
	case formula.PFTKSimplified:
		qc2 = p.Q * p.C2()
	default:
		return 0, fmt.Errorf("core: Proposition 3 closed form undefined for %s", f.Name())
	}
	// B_n = S_n − U_n from the appendix: the antiderivative of g
	// evaluated between θ̂_n and θ̂_{n+1}, divided by w1.
	bn := (2*c1*p.R*(math.Sqrt(hatNext)-math.Sqrt(hatN)) -
		2*qc2*(1/math.Sqrt(hatNext)-1/math.Sqrt(hatN)) -
		(64.0/5)*qc2*(math.Pow(hatNext, -2.5)-math.Pow(hatN, -2.5))) / w1
	vn := -bn + (hatNext-hatN)/(w1*f.Rate(1/hatN))
	return base - vn, nil
}

func run(cfg Config, dm durationModel) Result {
	est := estimator.NewLossIntervalEstimator(cfg.Weights)
	// Fill the estimator window before measuring.
	for i := 0; i < len(cfg.Weights); i++ {
		est.Observe(cfg.Process.Next())
	}
	var (
		sumVolume, sumS float64
		thetas          = make([]float64, 0, cfg.Events)
		hats            = make([]float64, 0, cfg.Events)
		rates           = make([]float64, 0, cfg.Events)
		durations       = make([]float64, 0, cfg.Events)
	)
	total := cfg.Warmup + cfg.Events
	for n := 0; n < total; n++ {
		hat := est.Estimate()
		rate := cfg.Formula.Rate(1 / hat)
		theta := cfg.Process.Next()
		s, vol := dm.interval(est, cfg.Formula, theta, rate)
		if n >= cfg.Warmup {
			sumVolume += vol
			sumS += s
			thetas = append(thetas, theta)
			hats = append(hats, hat)
			rates = append(rates, rate)
			durations = append(durations, s)
		}
		est.Observe(theta)
	}
	meanTheta := stats.Mean(thetas)
	p := 1 / meanTheta
	fp := cfg.Formula.Rate(p)
	cov := stats.Covariance(thetas, hats)
	res := Result{
		Throughput:        sumVolume / sumS,
		LossEventRate:     p,
		FormulaRate:       fp,
		CovThetaHat:       cov,
		CovThetaHatNorm:   cov * p * p,
		CovXS:             stats.Covariance(rates, durations),
		CVEstimator:       stats.CV(hats),
		MeanInterLossTime: stats.Mean(durations),
		Events:            len(thetas),
	}
	res.Normalized = res.Throughput / fp
	res.CVEstimatorSq = res.CVEstimator * res.CVEstimator
	return res
}

// Theorem1Bound evaluates the explicit bound of eq. (10):
//
//	E[X(0)] <= f(p) / (1 + (f'(p)·p/f(p))·cov[θ0,θ̂0]·p²)
//
// valid when cov·p² < −f(p)/(f'(p)·p). The derivative is computed by a
// central difference. The second return reports whether the bound's
// validity condition holds (the denominator is positive).
func Theorem1Bound(f formula.Formula, p, covThetaHat float64) (bound float64, valid bool) {
	if p <= 0 || p >= 1 {
		panic("core: loss-event rate outside (0,1)")
	}
	h := p * 1e-6
	fp := f.Rate(p)
	fprime := (f.Rate(p+h) - f.Rate(p-h)) / (2 * h)
	elasticity := fprime * p / fp // negative, since f is decreasing
	denom := 1 + elasticity*covThetaHat*p*p
	if denom <= 0 {
		return math.Inf(1), false
	}
	return fp / denom, true
}

// Prop4Bound returns Proposition 4's overshoot bound: under (C1) the
// basic control cannot exceed f(p) by more than the
// deviation-from-convexity ratio of g = 1/f(1/x) over the loss-interval
// range [xlo, xhi] sampled at n points.
func Prop4Bound(f formula.Formula, xlo, xhi float64, n int) float64 {
	ratio, _ := formula.DeviationFromConvexity(f, xlo, xhi, n)
	return ratio
}

// Verdict classifies what the paper's theory predicts for a control run.
type Verdict int

// Verdict values.
const (
	// Inconclusive means no theorem hypothesis is satisfied.
	Inconclusive Verdict = iota
	// PredictConservative means Theorem 1 or the first part of
	// Theorem 2 applies.
	PredictConservative
	// PredictNonConservative means the second part of Theorem 2
	// ((F2c)+(C2c)+(V)) applies.
	PredictNonConservative
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case PredictConservative:
		return "conservative"
	case PredictNonConservative:
		return "non-conservative"
	default:
		return "inconclusive"
	}
}

// ConditionReport captures which hypotheses of Theorems 1 and 2 hold for
// a given run, evaluated on the region where the estimator took values.
type ConditionReport struct {
	// F1 is the convexity of g(x) = 1/f(1/x) on the estimator range.
	F1 bool
	// F2 is the concavity of f(1/x) on the range; F2c its strict
	// convexity there.
	F2, F2c bool
	// C1 is cov[θ0, θ̂0] <= 0 (within tolerance); C2 is
	// cov[X0, S0] <= 0; C2c is cov[X0, S0] >= 0.
	C1, C2, C2c bool
	// V is the non-degeneracy of the estimator (non-zero variance).
	V bool
	// EstimatorLo and EstimatorHi bound the observed θ̂ range used for
	// the shape checks.
	EstimatorLo, EstimatorHi float64
	// Verdict is the theory's prediction.
	Verdict Verdict
}

// Classify evaluates the hypotheses of Theorems 1 and 2 against a
// measured Result, checking the function-shape conditions on the
// estimator's observed range [lo, hi]. tol is the tolerance on the
// normalized covariances (use a few percent for Monte Carlo data).
func Classify(f formula.Formula, r Result, lo, hi, tol float64) ConditionReport {
	if hi <= lo || lo <= 0 {
		panic("core: invalid estimator range")
	}
	grid := numerics.Grid(lo, hi, 257)
	rep := ConditionReport{
		F1:          numerics.IsConvexOnGrid(formula.G(f), grid, 1e-9),
		F2:          numerics.IsConcaveOnGrid(formula.F1x(f), grid, 1e-9),
		F2c:         numerics.IsConvexOnGrid(formula.F1x(f), grid, 1e-9),
		V:           r.CVEstimator > 1e-9,
		EstimatorLo: lo,
		EstimatorHi: hi,
	}
	rep.C1 = r.CovThetaHatNorm <= tol
	xsScale := r.CovXS / (r.Throughput * r.MeanInterLossTime * r.MeanInterLossTime)
	rep.C2 = xsScale <= tol
	rep.C2c = xsScale >= -tol
	// Theorem 1 presumes the basic control's S_n = θ_n/X_n coupling; for
	// decoupled durations (the audio scenario) only Theorem 2 applies.
	switch {
	case r.RateCoupled && rep.F1 && rep.C1:
		rep.Verdict = PredictConservative
	case rep.F2 && rep.C2:
		rep.Verdict = PredictConservative
	case rep.F2c && rep.C2c && rep.V:
		rep.Verdict = PredictNonConservative
	default:
		rep.Verdict = Inconclusive
	}
	return rep
}

// EstimatorRange runs a short pilot of the configured process through the
// estimator and returns the [qlo, qhi] quantile range of observed θ̂
// values, for use with Classify. The paper's shape conditions are about
// "the region where the loss-event interval estimator takes its values";
// the bulk range (e.g. quantiles 0.1-0.9) captures that region while
// excluding rare excursions across an inflection point.
func EstimatorRange(cfg Config, pilotEvents int, qlo, qhi float64) (lo, hi float64) {
	if pilotEvents <= 0 {
		panic("core: non-positive pilot length")
	}
	if qlo < 0 || qhi > 1 || qlo >= qhi {
		panic("core: invalid quantile range")
	}
	est := estimator.NewLossIntervalEstimator(cfg.Weights)
	for i := 0; i < len(cfg.Weights); i++ {
		est.Observe(cfg.Process.Next())
	}
	hats := make([]float64, pilotEvents)
	for i := range hats {
		hats[i] = est.Estimate()
		est.Observe(cfg.Process.Next())
	}
	lo = stats.Quantile(hats, qlo)
	hi = stats.Quantile(hats, qhi)
	if hi <= lo {
		hi = lo * (1 + 1e-6)
	}
	return lo, hi
}
