package core

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
)

// The decomposition's product must equal the direct Monte Carlo
// throughput (Proposition 1 is an identity, both evaluate the same
// expectations).
func TestDecompositionMatchesDirect(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	mk := func() Config {
		return Config{
			Formula: f,
			Weights: estimator.TFRCWeights(8),
			Process: lossmodel.DesignShiftedExp(0.1, 0.8, rng.New(777)),
			Events:  60000,
		}
	}
	direct := RunBasic(mk())
	dec := DecomposeProp1(mk())
	if math.Abs(dec.Throughput-direct.Throughput)/direct.Throughput > 0.02 {
		t.Fatalf("decomposition %v vs direct %v", dec.Throughput, direct.Throughput)
	}
	if dec.Events != direct.Events {
		t.Fatalf("event counts differ: %d vs %d", dec.Events, direct.Events)
	}
}

// For IID intervals the covariance factor is ~1: convexity alone drives
// conservativeness (the comment's special case).
func TestDecompositionIIDCovFactorNearOne(t *testing.T) {
	t.Parallel()
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	dec := DecomposeProp1(Config{
		Formula: f,
		Weights: estimator.TFRCWeights(8),
		Process: lossmodel.DesignShiftedExp(0.1, 0.8, rng.New(101)),
		Events:  100000,
	})
	if math.Abs(dec.CovarianceFactor-1) > 0.03 {
		t.Fatalf("IID covariance factor = %v, want ~1", dec.CovarianceFactor)
	}
	// The Jensen factor alone must already be below f(p) (convex g).
	if dec.JensenFactor > f.Rate(0.1)*1.02 {
		t.Fatalf("Jensen factor %v above f(p) %v", dec.JensenFactor, f.Rate(0.1))
	}
}

// Phase losses introduce a covariance factor clearly different from 1.
func TestDecompositionPhaseCovFactor(t *testing.T) {
	t.Parallel()
	f := formula.NewSQRT(formula.DefaultParams())
	dec := DecomposeProp1(Config{
		Formula: f,
		Weights: estimator.TFRCWeights(8),
		Process: lossmodel.NewTwoPhase(200, 4, 0.02, rng.New(103)),
		Events:  100000,
	})
	if math.Abs(dec.CovarianceFactor-1) < 0.02 {
		t.Fatalf("phase covariance factor = %v, want away from 1", dec.CovarianceFactor)
	}
}
