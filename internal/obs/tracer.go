package obs

import (
	"fmt"
	"io"
	"sort"
)

// EventKind is the type of a traced simulation event.
type EventKind uint8

// Traced event kinds. These are all *rare* events — per loss event, per
// fault transition, per cross-shard handoff message — never per packet
// or per timer, so an enabled tracer stays off the hot path too.
const (
	// EvLoss marks a receiver-side loss event (the paper's unit of
	// congestion signal); Value carries the triggering sequence number.
	EvLoss EventKind = iota
	// EvNoFeedback marks a TFRC no-feedback timer expiry; Value carries
	// the halved allowed rate in bytes/s.
	EvNoFeedback
	// EvTCPTimeout marks a TCP retransmission timeout; Value carries
	// the post-backoff RTO in seconds.
	EvTCPTimeout
	// EvFaultDown / EvFaultUp mark link outage transitions.
	EvFaultDown
	EvFaultUp
	// EvFaultRate marks a link capacity renegotiation; Value carries
	// the new rate in bytes/s.
	EvFaultRate
	// EvHandoff marks a packet handed to another shard at a window
	// boundary; Value carries the destination shard.
	EvHandoff
)

var kindNames = [...]string{
	EvLoss:       "loss",
	EvNoFeedback: "no_feedback",
	EvTCPTimeout: "tcp_timeout",
	EvFaultDown:  "fault_down",
	EvFaultUp:    "fault_up",
	EvFaultRate:  "fault_rate",
	EvHandoff:    "handoff",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one traced simulation event.
type Event struct {
	// T is the simulation time of the event, seconds.
	T float64
	// Kind is the event type.
	Kind EventKind
	// Flow is the flow id, or -1 when not flow-scoped.
	Flow int32
	// Link is the link id, or -1 when not link-scoped.
	Link int32
	// Shard is the domain that emitted the event (0 on the serial
	// engine).
	Shard int16
	// Value is a kind-specific payload (rate, seq, shard, RTO).
	Value float64
}

// Tracer is a bounded ring buffer of events. One Tracer is owned by one
// scheduling domain (the whole run on the serial engine, one shard on
// the sharded engine), so Emit needs no synchronization. When the ring
// is full the oldest events are overwritten and counted as dropped:
// debugging wants the end of the run, and the bound keeps a pathological
// run from eating the heap.
type Tracer struct {
	shard   int16
	events  []Event
	start   int
	n       int
	dropped int64
}

// NewTracer returns a tracer retaining at most cap events for the given
// domain. cap <= 0 returns nil — the disabled (zero-cost) tracer.
func NewTracer(cap int, shard int) *Tracer {
	if cap <= 0 {
		return nil
	}
	return &Tracer{shard: int16(shard), events: make([]Event, 0, cap)}
}

// Emit records an event. Nil-safe: a nil tracer is a sink, so call
// sites pay one predictable branch when tracing is off.
func (t *Tracer) Emit(ts float64, kind EventKind, flow, link int32, value float64) {
	if t == nil {
		return
	}
	e := Event{T: ts, Kind: kind, Flow: flow, Link: link, Shard: t.shard, Value: value}
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		t.n++
		return
	}
	// Ring full: overwrite the oldest.
	t.events[t.start] = e
	t.start++
	if t.start == len(t.events) {
		t.start = 0
	}
	t.dropped++
}

// Events returns the retained events in emission order. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Dropped returns the number of events overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Reset empties the tracer for arena-style reuse.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
	t.start, t.n, t.dropped = 0, 0, 0
}

// MergeEvents folds per-domain event streams into one slice ordered by
// (time, shard, emission order). Each domain's stream is already
// time-ordered, and the tie-break is deterministic, so the merged
// stream is reproducible run to run.
func MergeEvents(tracers []*Tracer) []Event {
	var out []Event
	for _, t := range tracers {
		out = append(out, t.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// JobTrace is one job's merged event stream, labeled for trace output.
type JobTrace struct {
	// Name labels the job (scenario/job name).
	Name string
	// Pid is the trace-viewer process id to file the events under.
	Pid int
	// Events is the job's merged, time-ordered event stream.
	Events []Event
	// Dropped counts ring-overwritten events across the job's tracers.
	Dropped int64
}

// WriteChromeTrace renders jobs in the Chrome trace_event JSON array
// format (load in chrome://tracing or https://ui.perfetto.dev). Each
// job is a process, each shard a thread, each sim event an instant
// event with the sim time mapped microsecond-for-microsecond.
func WriteChromeTrace(w io.Writer, jobs []JobTrace) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	for _, j := range jobs {
		// Process-name metadata row so the viewer shows the job name.
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		if _, err := fmt.Fprintf(w,
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
			j.Pid, j.Name); err != nil {
			return err
		}
		for _, e := range j.Events {
			if _, err := fmt.Fprintf(w,
				",\n{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"+
					"\"args\":{\"flow\":%d,\"link\":%d,\"value\":%.6g}}",
				e.Kind.String(), e.T*1e6, j.Pid, e.Shard, e.Flow, e.Link, e.Value); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
