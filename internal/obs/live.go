package obs

import (
	"expvar"
	"net"
	"net/http"
	"sync"
)

// The live-introspection surface: components publish snapshot functions
// (the runner pool's job progress, a sharded cluster's per-shard
// clocks/windows/barrier waits), and ServeLive exposes them all as one
// expvar map over HTTP for long runs. Everything here is wall-clock
// flavored and intentionally firewalled from the deterministic output
// path — snapshots never reach gated TSV.

var (
	liveMu   sync.Mutex
	liveVars = map[string]func() any{}
	liveSeq  int
)

// PublishLive registers a snapshot function under name, returning the
// unique key it was stored under (name, or name#k on collision — pools
// and clusters come and go, and a stale unregister must not clobber a
// live publisher). The function is called on every snapshot request and
// must be safe to call from any goroutine.
func PublishLive(name string, fn func() any) string {
	liveMu.Lock()
	defer liveMu.Unlock()
	key := name
	if _, taken := liveVars[key]; taken {
		liveSeq++
		key = name + "#" + itoa(liveSeq)
	}
	liveVars[key] = fn
	return key
}

// UnpublishLive removes a previously published snapshot function.
func UnpublishLive(key string) {
	liveMu.Lock()
	defer liveMu.Unlock()
	delete(liveVars, key)
}

// LiveSnapshot evaluates every published snapshot function.
func LiveSnapshot() map[string]any {
	liveMu.Lock()
	fns := make(map[string]func() any, len(liveVars))
	for k, fn := range liveVars {
		fns[k] = fn
	}
	liveMu.Unlock()
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

var expvarOnce sync.Once

// ServeLive publishes the snapshot surface as the expvar var "sim" and
// serves the standard /debug/vars endpoint on addr (e.g. ":8125" or
// "127.0.0.1:0") in a background goroutine. It returns the bound
// address. The listener lives for the remainder of the process — this
// is an opt-in debugging endpoint for long runs, not a managed server.
func ServeLive(addr string) (string, error) {
	expvarOnce.Do(func() {
		expvar.Publish("sim", expvar.Func(func() any { return LiveSnapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// expvar registers itself on http.DefaultServeMux.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}

// itoa avoids strconv for this one tiny use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
