package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestNilSinks(t *testing.T) {
	// Every hot-path-adjacent method must be a no-op on nil receivers:
	// this is the zero-cost-when-off contract.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Add(5)
	c.Inc()
	g.Observe(1)
	h.Observe(1)
	tr.Emit(0, EvLoss, 1, 2, 3)
	tr.Reset()
	if c.Value() != 0 || g.Count() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	if NewTracer(0, 0) != nil {
		t.Fatal("cap<=0 must return the nil (disabled) tracer")
	}
}

func TestRegistryMergeDeterministic(t *testing.T) {
	build := func(seed int64) *Registry {
		r := NewRegistry()
		r.Counter("net.drops").Add(3 + seed)
		r.Gauge("queue.high").Observe(float64(10 * seed))
		r.Histogram("loss.intervals", []float64{1, 10, 100}).Observe(float64(seed))
		return r
	}
	a, b := build(1), build(2)

	merged := NewRegistry()
	merged.Merge(a)
	merged.Merge(b)
	if got := merged.Counter("net.drops").Value(); got != 9 {
		t.Fatalf("merged counter = %d, want 9", got)
	}
	g := merged.Gauge("queue.high")
	if g.Min() != 10 || g.Max() != 20 || g.Count() != 2 {
		t.Fatalf("merged gauge = min %v max %v n %d", g.Min(), g.Max(), g.Count())
	}
	if merged.Histogram("loss.intervals", []float64{1, 10, 100}).Count() != 2 {
		t.Fatal("merged histogram count")
	}

	// Same fold order must render the same bytes.
	var buf1, buf2 bytes.Buffer
	m2 := NewRegistry()
	m2.Merge(build(1))
	m2.Merge(build(2))
	if err := merged.WriteTSV(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteTSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("merge not reproducible:\n%q\n%q", buf1.String(), buf2.String())
	}
	// Output is sorted by name regardless of registration order.
	lines := strings.Split(strings.TrimSpace(buf1.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "loss.intervals\t") ||
		!strings.HasPrefix(lines[1], "net.drops\tcounter\t9") {
		t.Fatalf("tsv = %q", buf1.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// 0.5,1 -> le1; 1.5 -> le2; 3 -> le4; 100 -> +inf.
	want := []int64{2, 1, 1, 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], h.counts)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3, 2)
	for i := 0; i < 5; i++ {
		tr.Emit(float64(i), EvLoss, int32(i), -1, 0)
	}
	ev := tr.Events()
	if len(ev) != 3 || tr.Dropped() != 2 {
		t.Fatalf("retained %d dropped %d", len(ev), tr.Dropped())
	}
	// Most recent three, in emission order, stamped with the domain.
	for i, e := range ev {
		if e.T != float64(i+2) || e.Shard != 2 {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not empty the ring")
	}
}

func TestMergeEventsOrder(t *testing.T) {
	a := NewTracer(10, 0)
	b := NewTracer(10, 1)
	a.Emit(2, EvLoss, 1, -1, 0)
	a.Emit(5, EvNoFeedback, 1, -1, 0)
	b.Emit(2, EvHandoff, -1, 3, 1)
	b.Emit(1, EvFaultDown, -1, 2, 0)
	got := MergeEvents([]*Tracer{a, b})
	var order []string
	for _, e := range got {
		order = append(order, fmt.Sprintf("%.0f/%d", e.T, e.Shard))
	}
	want := "1/1 2/0 2/1 5/0"
	if strings.Join(order, " ") != want {
		t.Fatalf("merge order = %v, want %s", order, want)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(10, 0)
	tr.Emit(1.5, EvLoss, 7, 2, 42)
	tr.Emit(2.25, EvFaultDown, -1, 3, 0)
	var buf bytes.Buffer
	jobs := []JobTrace{{Name: "fig5/p=0.01", Pid: 1, Events: MergeEvents([]*Tracer{tr})}}
	if err := WriteChromeTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// Metadata row + two events.
	if len(parsed) != 3 {
		t.Fatalf("rows = %d", len(parsed))
	}
	if parsed[1]["name"] != "loss" || parsed[1]["ts"] != 1.5e6 {
		t.Fatalf("event row = %v", parsed[1])
	}
}

func TestEpochLogTSV(t *testing.T) {
	var l EpochLog
	l.Add(Epoch{Index: 0, Start: 0, End: 5, Fired: 100, Forwarded: 40, QueueLen: 3})
	l.Add(Epoch{Index: 1, Start: 5, End: 10, Fired: 90, Forwarded: 41, Pending: 7})
	var buf bytes.Buffer
	if err := l.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "epoch\tstart\tend\tfired") {
		t.Fatalf("tsv = %q", buf.String())
	}
	if !strings.HasPrefix(lines[2], "1\t5\t10\t90\t") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestLivePublishAndServe(t *testing.T) {
	key := PublishLive("test_component", func() any { return map[string]int{"done": 3} })
	defer UnpublishLive(key)
	// A second publisher under the same name must not clobber the first.
	key2 := PublishLive("test_component", func() any { return "other" })
	if key2 == key {
		t.Fatalf("collision not resolved: %q", key2)
	}
	UnpublishLive(key2)

	snap := LiveSnapshot()
	if _, ok := snap[key]; !ok {
		t.Fatalf("snapshot missing %q: %v", key, snap)
	}

	addr, err := ServeLive("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	sim, ok := vars["sim"].(map[string]any)
	if !ok {
		t.Fatalf("no sim var in %v", vars)
	}
	if _, ok := sim[key]; !ok {
		t.Fatalf("sim var missing %q: %v", key, sim)
	}
}
