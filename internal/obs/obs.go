// Package obs is the simulator's observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), a bounded event
// tracer with Chrome trace_event output, per-epoch aggregate logs, and
// a live-introspection surface for long runs.
//
// The package's contract mirrors the engine's:
//
//   - Zero cost when off. Nothing in this package is touched by the
//     per-packet or per-event hot paths. Metrics are *sampled* from
//     counters the hot structs already maintain (link forwarded/drop
//     counts, scheduler fired counts, protocol stats) at barrier-aligned
//     instants — run end and epoch boundaries — so a disabled run
//     executes exactly the instructions it executed before this package
//     existed. The only inline hooks are Tracer emissions on *rare*
//     events (loss events, fault transitions, no-feedback expiries,
//     shard handoffs), and every Tracer method is nil-safe: a disabled
//     tracer is a nil pointer and the hook is one predictable branch.
//   - Deterministic and executor-invariant when on. Per-shard and
//     per-job instances merge in a fixed order (shard id, then job
//     order), metric values exposed through the deterministic output
//     path are simulation quantities that the sharded engine's
//     determinism contract already makes executor-invariant, and
//     wall-clock-dependent quantities (barrier waits, events/sec) are
//     confined to the live-introspection surface, which never reaches
//     gated output.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing integer metric. Each instance
// is owned by one goroutine (one shard, one job); cross-instance
// aggregation happens in Registry.Merge at fold time, never with
// atomics on the hot path.
type Counter struct {
	v int64
}

// Add increments the counter by n. Nil-safe: a nil counter is a sink.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (a nil counter reads 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks the min, max, sum and count of an observed quantity.
// Merging gauges combines those aggregates, so the merged result is
// independent of interleaving (commutative and associative up to
// float-sum ordering, which Merge fixes by folding in registry order).
type Gauge struct {
	set      bool
	min, max float64
	sum      float64
	n        int64
}

// Observe records one observation. Nil-safe.
func (g *Gauge) Observe(v float64) {
	if g == nil {
		return
	}
	if !g.set || v < g.min {
		g.min = v
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.sum += v
	g.n++
}

// Min returns the smallest observation (0 when empty).
func (g *Gauge) Min() float64 {
	if g == nil || !g.set {
		return 0
	}
	return g.min
}

// Max returns the largest observation (0 when empty).
func (g *Gauge) Max() float64 {
	if g == nil || !g.set {
		return 0
	}
	return g.max
}

// Mean returns the mean observation (0 when empty).
func (g *Gauge) Mean() float64 {
	if g == nil || g.n == 0 {
		return 0
	}
	return g.sum / float64(g.n)
}

// Count returns the number of observations.
func (g *Gauge) Count() int64 {
	if g == nil {
		return 0
	}
	return g.n
}

// Histogram counts observations into fixed buckets. Bounds are the
// ascending upper edges; an implicit +Inf bucket catches the rest.
// Observe is allocation-free.
type Histogram struct {
	bounds []float64
	counts []int64
	n      int64
	sum    float64
}

// Observe records one observation into its bucket. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Kind discriminates registry entries.
type Kind uint8

// Registry entry kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

type entry struct {
	kind Kind
	c    Counter
	g    Gauge
	h    Histogram
}

// Registry holds named metrics in creation order. Registration happens
// once per run (or per shard) at setup or collection time; the returned
// metric pointers are then incremented without lookups or allocation.
type Registry struct {
	names []string
	by    map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: map[string]*entry{}}
}

func (r *Registry) get(name string, kind Kind) *entry {
	if e, ok := r.by[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{kind: kind}
	r.by[name] = e
	r.names = append(r.names, name)
	return e
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter { return &r.get(name, KindCounter).c }

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return &r.get(name, KindGauge).g }

// Histogram returns (creating if needed) the named histogram with the
// given ascending bucket upper bounds. Bounds are fixed at first
// registration; later calls must pass a compatible length.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	e := r.get(name, KindHistogram)
	if e.h.counts == nil {
		e.h.bounds = append([]float64(nil), bounds...)
		e.h.counts = make([]int64, len(bounds)+1)
	} else if len(e.h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return &e.h
}

// Merge folds o into r: counters add, gauges combine their aggregates,
// histograms add bucket-wise. Names new to r are appended in o's
// creation order, so merging per-job registries in job order yields the
// same registry on every executor.
func (r *Registry) Merge(o *Registry) {
	if o == nil {
		return
	}
	for _, name := range o.names {
		oe := o.by[name]
		switch oe.kind {
		case KindCounter:
			r.Counter(name).Add(oe.c.Value())
		case KindGauge:
			g := r.Gauge(name)
			if oe.g.set {
				if !g.set || oe.g.min < g.min {
					g.min = oe.g.min
				}
				if !g.set || oe.g.max > g.max {
					g.max = oe.g.max
				}
				g.set = true
				g.sum += oe.g.sum
				g.n += oe.g.n
			}
		case KindHistogram:
			h := r.Histogram(name, oe.h.bounds)
			for i, c := range oe.h.counts {
				h.counts[i] += c
			}
			h.n += oe.h.n
			h.sum += oe.h.sum
		}
	}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.names)
}

// WriteTSV renders the registry as TSV, one metric per row, sorted by
// name so the bytes are independent of registration order:
//
//	counter:   name  counter  value
//	gauge:     name  gauge    min  mean  max  n
//	histogram: name  hist     n    mean  le<b1>:c1 ... le+inf:ck
//
// Floats use %.6g, matching the scenario tables, so the output is
// byte-comparable across runs and executors.
func (r *Registry) WriteTSV(w io.Writer) error {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	for _, name := range names {
		e := r.by[name]
		var err error
		switch e.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s\tcounter\t%d\n", name, e.c.Value())
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s\tgauge\t%.6g\t%.6g\t%.6g\t%d\n",
				name, e.g.Min(), e.g.Mean(), e.g.Max(), e.g.Count())
		case KindHistogram:
			mean := 0.0
			if e.h.n > 0 {
				mean = e.h.sum / float64(e.h.n)
			}
			if _, err = fmt.Fprintf(w, "%s\thist\t%d\t%.6g", name, e.h.n, mean); err != nil {
				break
			}
			for i, c := range e.h.counts {
				if i < len(e.h.bounds) {
					_, err = fmt.Fprintf(w, "\tle%.6g:%d", e.h.bounds[i], c)
				} else {
					_, err = fmt.Fprintf(w, "\tle+inf:%d", c)
				}
				if err != nil {
					break
				}
			}
			if err == nil {
				_, err = fmt.Fprintln(w)
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
