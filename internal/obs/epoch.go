package obs

import (
	"fmt"
	"io"
)

// Epoch is one fixed simulation-time window's aggregate: flow deltas
// over the window plus state sampled at its end. Epochs are collected
// by stepping the run to each boundary with the engine's ordinary
// RunUntil — sampling schedules no events and draws no randomness, so
// an epoch-logged run fires exactly the events an unlogged run fires,
// and every field below is executor-invariant under the determinism
// contract.
type Epoch struct {
	// Index is the epoch's ordinal within the measured window.
	Index int
	// Start and End bound the window in simulation seconds.
	Start, End float64
	// Fired counts DES events fired during the window.
	Fired uint64
	// Enqueued counts packets accepted into link queues.
	Enqueued int64
	// Forwarded counts packets delivered across links.
	Forwarded int64
	// Bytes counts payload bytes forwarded.
	Bytes int64
	// QueueDrops counts full-queue (and RED forced) drops.
	QueueDrops int64
	// EarlyDrops counts RED probabilistic drops.
	EarlyDrops int64
	// FaultDrops counts packets destroyed by link faults.
	FaultDrops int64
	// QueueLen is the total queued-packet occupancy at End.
	QueueLen int
	// Pending is the scheduler's live-timer population at End.
	Pending int
	// Outstanding is the freelist's in-flight packet population at End.
	Outstanding int64
}

// EpochLog accumulates a run's epochs in order.
type EpochLog struct {
	// Epochs are the collected windows, in time order.
	Epochs []Epoch
}

// Add appends one epoch.
func (l *EpochLog) Add(e Epoch) {
	if l == nil {
		return
	}
	l.Epochs = append(l.Epochs, e)
}

// Merge appends o's epochs (used when a plan folds sub-runs; epoch
// streams are kept per job, so this is rarely needed but keeps the
// container composable).
func (l *EpochLog) Merge(o *EpochLog) {
	if l == nil || o == nil {
		return
	}
	l.Epochs = append(l.Epochs, o.Epochs...)
}

// WriteTSV renders the log as TSV with a header row. Floats use %.6g,
// matching the scenario tables, so epoch output joins the byte-identity
// gate across executors.
func (l *EpochLog) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "epoch\tstart\tend\tfired\tenqueued\tforwarded\tbytes\tqueue_drops\tearly_drops\tfault_drops\tqueue_len\tpending\toutstanding"); err != nil {
		return err
	}
	for _, e := range l.Epochs {
		if _, err := fmt.Fprintf(w, "%d\t%.6g\t%.6g\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			e.Index, e.Start, e.End, e.Fired, e.Enqueued, e.Forwarded, e.Bytes,
			e.QueueDrops, e.EarlyDrops, e.FaultDrops, e.QueueLen, e.Pending, e.Outstanding); err != nil {
			return err
		}
	}
	return nil
}
