package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/formula"
)

func TestClaim4RatioTCPSetting(t *testing.T) {
	// β = 1/2 gives exactly 16/9 ≈ 1.7778 (the paper's headline value).
	got := Claim4Ratio(DefaultAIMD())
	if math.Abs(got-16.0/9) > 1e-12 {
		t.Fatalf("ratio = %v, want 16/9", got)
	}
}

func TestClaim4RatioFromRates(t *testing.T) {
	// The ratio must equal the quotient of the two displayed loss-event
	// rates for any (α, β, c).
	a := AIMDParams{Alpha: 0.7, Beta: 0.3}
	c := 123.0
	want := AIMDLossEventRate(a, c) / EBRCLossEventRate(a, c)
	if got := Claim4Ratio(a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
}

func TestAIMDLossEventRateScaling(t *testing.T) {
	a := DefaultAIMD()
	// p' scales as 1/c².
	r1 := AIMDLossEventRate(a, 10)
	r2 := AIMDLossEventRate(a, 20)
	if math.Abs(r1/r2-4) > 1e-12 {
		t.Fatalf("capacity scaling = %v, want 4", r1/r2)
	}
	// β = 1/2, α = 1, c = 10: p' = 2/((3/4)·100) = 1/37.5.
	if math.Abs(r1-2.0/75) > 1e-12 {
		t.Fatalf("p' = %v, want %v", r1, 2.0/75)
	}
}

func TestEBRCFixedPointConsistency(t *testing.T) {
	// The EBRC loss-event rate is the fixed point f(p) = c.
	a := DefaultAIMD()
	c := 50.0
	p := EBRCLossEventRate(a, c)
	if got := a.LossThroughput(p); math.Abs(got-c)/c > 1e-12 {
		t.Fatalf("f(p) = %v, want capacity %v", got, c)
	}
}

func TestFluidSharedShowsDeviation(t *testing.T) {
	// Claim 4's verification: when one AIMD and one EBRC share a link,
	// AIMD sees a larger loss-event rate, with a ratio above 1 but less
	// pronounced than the isolated-source 16/9.
	res := SimulateFluidShared(DefaultAIMD(), 200, 8, 40000, 1)
	if res.LossEvents < 100 {
		t.Fatalf("too few loss events: %d", res.LossEvents)
	}
	if res.Ratio <= 1.05 {
		t.Fatalf("loss-rate ratio = %v, want clearly above 1", res.Ratio)
	}
	if res.Ratio >= 16.0/9*1.3 {
		t.Fatalf("loss-rate ratio = %v, want less pronounced than ~16/9", res.Ratio)
	}
	// Both sources get meaningful throughput.
	if res.AIMDRate <= 0 || res.EBRCRate <= 0 {
		t.Fatalf("degenerate rates: %+v", res)
	}
	if res.AIMDRate+res.EBRCRate > 200 {
		t.Fatalf("combined rate exceeds capacity: %+v", res)
	}
}

func TestFluidSharedEBRCSmootherRate(t *testing.T) {
	// The EBRC source's loss-event rate should be below the AIMD one —
	// the mechanism behind TFRC's non-TCP-friendliness at small N.
	res := SimulateFluidShared(DefaultAIMD(), 100, 8, 30000, 2)
	if res.EBRCLossRate >= res.AIMDLossRate {
		t.Fatalf("EBRC loss rate %v should be below AIMD %v",
			res.EBRCLossRate, res.AIMDLossRate)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultAIMD().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []AIMDParams{
		{Alpha: 0, Beta: 0.5},
		{Alpha: 1, Beta: 0},
		{Alpha: 1, Beta: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad)
		}
	}
}

func TestCongestionModelPoisson(t *testing.T) {
	m := TwoStateCongestion(0.001, 0.1, 0.25)
	// Poisson sees the plain time average.
	want := 0.75*0.001 + 0.25*0.1
	if got := m.PoissonSeenRate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p'' = %v, want %v", got, want)
	}
}

func TestClaim3Ordering(t *testing.T) {
	m := TwoStateCongestion(0.001, 0.08, 0.3)
	f := formula.NewPFTKStandard(formula.ParamsForRTT(0.05))
	tcp, ebrc, poisson := m.Claim3Ordering(f, []int{2, 4, 8, 16})
	if !(tcp < poisson) {
		t.Fatalf("p'(%v) should be < p''(%v)", tcp, poisson)
	}
	prev := tcp
	for i, p := range ebrc {
		if p < tcp-1e-12 || p > poisson+1e-12 {
			t.Fatalf("EBRC L-index %d: p=%v outside [%v, %v]", i, p, tcp, poisson)
		}
		// Larger L (less responsive) sees a larger loss-event rate —
		// the monotonicity visible in Figure 7.
		if p < prev-1e-12 {
			t.Fatalf("p not increasing in L: %v after %v", p, prev)
		}
		prev = p
	}
}

func TestResponsiveLimits(t *testing.T) {
	m := TwoStateCongestion(0.002, 0.05, 0.4)
	f := formula.NewSQRT(formula.ParamsForRTT(0.1))
	// Responsiveness 0 reduces to Poisson.
	if got, want := m.ResponsiveSeenRate(f, 0), m.PoissonSeenRate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("responsiveness 0: %v, want %v", got, want)
	}
	// Responsiveness 1 weights good states more: below Poisson.
	if got := m.ResponsiveSeenRate(f, 1); got >= m.PoissonSeenRate() {
		t.Fatalf("fully responsive %v not below Poisson %v", got, m.PoissonSeenRate())
	}
}

func TestSeenLossEventRateDegenerate(t *testing.T) {
	// One state: every source sees the same rate.
	m := NewCongestionModel([]float64{1}, []float64{0.05})
	if got := m.SeenLossEventRate([]float64{3.7}); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("single-state rate = %v", got)
	}
}

func TestEBRCResponsivenessMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, L := range []int{1, 2, 4, 8, 16, 32} {
		r := EBRCResponsiveness(L)
		if r <= 0 || r > 1 || r >= prev && L > 1 {
			t.Fatalf("responsiveness(L=%d) = %v not decreasing", L, r)
		}
		prev = r
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { AIMDLossEventRate(DefaultAIMD(), 0) },
		func() { EBRCLossEventRate(DefaultAIMD(), -1) },
		func() { DefaultAIMD().LossThroughput(0) },
		func() { SimulateFluidShared(AIMDParams{Alpha: 1, Beta: 2}, 10, 8, 1000, 1) },
		func() { SimulateFluidShared(DefaultAIMD(), 10, 0, 1000, 1) },
		func() { SimulateFluidShared(DefaultAIMD(), 10, 8, 5, 1) },
		func() { NewCongestionModel([]float64{0.5}, []float64{0.1, 0.2}) },
		func() { NewCongestionModel([]float64{0.5, 0.4}, []float64{0.1, 0.2}) },
		func() { NewCongestionModel([]float64{0.5, 0.5}, []float64{0, 0.2}) },
		func() { TwoStateCongestion(0.01, 0.1, 0.5).SeenLossEventRate([]float64{1}) },
		func() { TwoStateCongestion(0.01, 0.1, 0.5).SeenLossEventRate([]float64{0, 0}) },
		func() {
			TwoStateCongestion(0.01, 0.1, 0.5).ResponsiveSeenRate(formula.NewSQRT(formula.DefaultParams()), 2)
		},
		func() { EBRCResponsiveness(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: for any two-state model and responsiveness levels r1 <= r2,
// the more responsive source sees a loss-event rate that is not larger
// (the mechanism of Claim 3).
func TestQuickResponsivenessMonotone(t *testing.T) {
	f := formula.NewPFTKStandard(formula.ParamsForRTT(0.05))
	check := func(a, b, c, d, e uint8) bool {
		pGood := 0.0005 + float64(a)/255*0.01
		pBad := pGood*2 + float64(b)/255*0.2
		if pBad > 1 {
			pBad = 1
		}
		piBad := 0.05 + float64(c)/255*0.9
		m := TwoStateCongestion(pGood, pBad, piBad)
		r1 := float64(d) / 255
		r2 := float64(e) / 255
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return m.ResponsiveSeenRate(f, r2) <= m.ResponsiveSeenRate(f, r1)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Claim 4's ratio is always > 1 (AIMD always sees more loss
// events in this model) and decreases with β.
func TestQuickClaim4RatioAboveOne(t *testing.T) {
	check := func(a uint8) bool {
		beta := 0.05 + float64(a)/255*0.9
		r := Claim4Ratio(AIMDParams{Alpha: 1, Beta: beta})
		return r > 1 && r <= 4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
