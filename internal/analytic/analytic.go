// Package analytic implements the paper's closed-form models for the
// comparison of loss-event rates (Section IV-A):
//
//   - the many-sources limit (Claim 3): a Markov congestion process with
//     per-state loss-event rates is sampled by sources of different
//     responsiveness; eq. (13) gives the loss-event rate each source
//     experiences, and the ordering p'(TCP) <= p(EBRC) <= p”(Poisson)
//     follows;
//
//   - the few-competing-senders model (Claim 4): one AIMD source and one
//     equation-based source each alone on a fixed-capacity link, whose
//     loss-event rates differ by the factor 4/(1+β)² (= 16/9 for
//     β = 1/2), plus a deterministic fluid simulation of the same system
//     that shows the deviation is real but less pronounced when the two
//     actually share the link.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/formula"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------
// Claim 4: few competing senders on a fixed-capacity link.
// ---------------------------------------------------------------------

// AIMDParams describes an additive-increase/multiplicative-decrease
// source: rate += Alpha per round-trip time, rate *= Beta on loss.
type AIMDParams struct {
	Alpha float64 // additive increase per RTT (rate units)
	Beta  float64 // multiplicative decrease factor in (0,1)
}

// DefaultAIMD returns the TCP-like setting α = 1, β = 1/2.
func DefaultAIMD() AIMDParams { return AIMDParams{Alpha: 1, Beta: 0.5} }

// Validate reports an error for parameters outside the model's domain.
func (a AIMDParams) Validate() error {
	if a.Alpha <= 0 || a.Beta <= 0 || a.Beta >= 1 {
		return fmt.Errorf("analytic: invalid AIMD params %+v", a)
	}
	return nil
}

// LossThroughput returns the AIMD loss-throughput function
// f(p) = sqrt(α(1+β)/(2(1-β))) / sqrt(p) (RTT fixed to 1), as used in
// the paper's Claim 4 derivation.
func (a AIMDParams) LossThroughput(p float64) float64 {
	if p <= 0 {
		panic("analytic: non-positive loss-event rate")
	}
	return math.Sqrt(a.Alpha*(1+a.Beta)/(2*(1-a.Beta))) / math.Sqrt(p)
}

// AIMDLossEventRate returns p' = 2α/((1-β²)c²): the loss-event rate of
// an AIMD source alone on a link of capacity c with RTT 1. Derivation:
// the rate saw-tooths between βc and c, each cycle lasting
// (1-β)c/α RTTs and carrying (1+β)c²(1-β)/(2α) packets; one loss event
// per cycle gives p' = 2α/((1-β²)c²).
func AIMDLossEventRate(a AIMDParams, capacity float64) float64 {
	mustPositive(capacity)
	return 2 * a.Alpha / ((1 - a.Beta*a.Beta) * capacity * capacity)
}

// EBRCLossEventRate returns p = α(1+β)/(2(1-β)c²): the loss-event rate
// at which the equation-based source using the AIMD loss-throughput
// function converges to the link capacity (fixed point f(p) = c).
func EBRCLossEventRate(a AIMDParams, capacity float64) float64 {
	mustPositive(capacity)
	return a.Alpha * (1 + a.Beta) / (2 * (1 - a.Beta) * capacity * capacity)
}

// Claim4Ratio returns p'/p = 4/(1+β)². The paper's tech-report displays
// this as 4/(1-β)², which contradicts its own numerical value 16/9 at
// β = 1/2; dividing the two displayed loss-event rates gives 4/(1+β)²,
// which equals 16/9 at β = 1/2 (see DESIGN.md errata).
func Claim4Ratio(a AIMDParams) float64 {
	return 4 / ((1 + a.Beta) * (1 + a.Beta))
}

// FluidResult reports the outcome of the deterministic fluid simulation
// of one AIMD and one EBRC source sharing a fixed-capacity link.
type FluidResult struct {
	// AIMDRate and EBRCRate are the long-run average rates.
	AIMDRate, EBRCRate float64
	// AIMDLossRate and EBRCLossRate are loss events per packet sent.
	AIMDLossRate, EBRCLossRate float64
	// Ratio is AIMDLossRate/EBRCLossRate — Claim 4 predicts this above
	// 1 and around (though below) the isolated-source value 4/(1+β)².
	Ratio float64
	// LossEvents counts congestion episodes in the run.
	LossEvents int
}

// SimulateFluidShared runs a round-by-round fluid model of one AIMD
// source and one equation-based source sharing a link of the given
// capacity (RTT = 1, one update per round):
//
//   - the AIMD source adds α per successful round and multiplies by β
//     when it experiences a loss event;
//   - the EBRC source measures its own loss-event intervals in packets,
//     estimates 1/p with a moving average of window L, and sets its rate
//     to the AIMD loss-throughput formula at that estimate;
//   - when the combined rate reaches the capacity, the marginal dropped
//     packet belongs to a flow with probability proportional to its
//     arrival-rate share (the DropTail tail-drop lottery), and only
//     that flow registers a loss event and reacts.
//
// The mechanism behind Claim 4 appears naturally: at overflow instants
// the AIMD source sits at the top of its sawtooth, so its rate share —
// and hence its chance of absorbing the loss event — exceeds its
// time-average share. The resulting loss-event-rate ratio is above 1
// (about peak/mean = 2/(1+β), i.e. 4/3 at β = ½), which is "less
// pronounced" than the isolated-source ratio 4/(1+β)² = 16/9, exactly
// as the paper reports for its own (undisplayed) numerical simulations.
//
// The run lasts the given number of rounds after an equal warmup and is
// driven by the deterministic seed.
func SimulateFluidShared(a AIMDParams, capacity float64, window, rounds int, seed uint64) FluidResult {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	mustPositive(capacity)
	if window < 1 || rounds < 10 {
		panic("analytic: bad fluid simulation sizing")
	}
	random := rng.New(seed)
	// State.
	aimdRate := capacity / 4
	hist := make([]float64, 0, window) // EBRC loss-interval history
	ebrcInterval := 0.0                // packets since EBRC's last loss event
	// Seed the history at the isolated fixed point so the estimator is
	// meaningful from the start.
	pSeed := EBRCLossEventRate(a, capacity/2)
	for i := 0; i < window; i++ {
		hist = append(hist, 1/pSeed)
	}
	estimate := func() float64 {
		s := 0.0
		for _, v := range hist {
			s += v
		}
		return s / float64(len(hist))
	}
	ebrcRate := a.LossThroughput(1 / estimate())

	var (
		sumA, sumE     float64
		pktA, pktE     float64
		lossA, lossE   float64
		events         int
		measuredRounds int
		warmup         = rounds / 2
	)
	for round := 0; round < rounds+warmup; round++ {
		measuring := round >= warmup
		if measuring {
			sumA += aimdRate
			sumE += ebrcRate
			pktA += aimdRate
			pktE += ebrcRate
			measuredRounds++
		}
		ebrcInterval += ebrcRate
		if aimdRate+ebrcRate >= capacity {
			// Tail-drop lottery by arrival-rate share.
			hitAIMD := random.Float64() < aimdRate/(aimdRate+ebrcRate)
			if measuring {
				events++
			}
			if hitAIMD {
				if measuring {
					lossA++
				}
				aimdRate = math.Max(aimdRate*a.Beta, a.Alpha)
			} else {
				if measuring {
					lossE++
				}
				copy(hist[1:], hist[:len(hist)-1])
				hist[0] = math.Max(ebrcInterval, 1)
				ebrcInterval = 0
				ebrcRate = a.LossThroughput(1 / estimate())
			}
		} else {
			aimdRate += a.Alpha
		}
	}
	res := FluidResult{
		AIMDRate:   sumA / float64(measuredRounds),
		EBRCRate:   sumE / float64(measuredRounds),
		LossEvents: events,
	}
	if pktA > 0 {
		res.AIMDLossRate = lossA / pktA
	}
	if pktE > 0 {
		res.EBRCLossRate = lossE / pktE
	}
	if res.EBRCLossRate > 0 {
		res.Ratio = res.AIMDLossRate / res.EBRCLossRate
	}
	return res
}

func mustPositive(c float64) {
	if c <= 0 {
		panic("analytic: non-positive capacity")
	}
}

// ---------------------------------------------------------------------
// Claim 3: many-sources limit with a Markov congestion process.
// ---------------------------------------------------------------------

// CongestionModel is a k-state congestion process: state i occurs with
// stationary probability Pi[i] and imposes the per-state loss-event rate
// P[i] on every source while it lasts. The separation-of-timescales
// limit of Section IV-A.1 makes the loss-event rate experienced by a
// source the send-rate-weighted average of eq. (13):
//
//	p_seen = Σ_i P[i]·x̄_i·Pi[i] / Σ_i x̄_i·Pi[i]
//
// where x̄_i is the source's average send rate while the congestion
// process is in state i.
type CongestionModel struct {
	Pi []float64 // stationary state probabilities, summing to 1
	P  []float64 // per-state loss-event rates in (0, 1]
}

// NewCongestionModel validates and returns a model.
func NewCongestionModel(pi, p []float64) CongestionModel {
	if len(pi) == 0 || len(pi) != len(p) {
		panic("analytic: congestion model dimension mismatch")
	}
	sum := 0.0
	for i := range pi {
		if pi[i] < 0 || p[i] <= 0 || p[i] > 1 {
			panic("analytic: invalid congestion model entries")
		}
		sum += pi[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("analytic: stationary probabilities sum to %v", sum))
	}
	return CongestionModel{Pi: pi, P: p}
}

// TwoStateCongestion returns a good/bad two-state model: loss rates
// pGood < pBad, with the bad (congested) state holding stationary
// probability piBad.
func TwoStateCongestion(pGood, pBad, piBad float64) CongestionModel {
	return NewCongestionModel([]float64{1 - piBad, piBad}, []float64{pGood, pBad})
}

// SeenLossEventRate evaluates eq. (13) for a source whose conditional
// average send rate in state i is rates[i].
func (m CongestionModel) SeenLossEventRate(rates []float64) float64 {
	if len(rates) != len(m.Pi) {
		panic("analytic: rate profile dimension mismatch")
	}
	num, den := 0.0, 0.0
	for i := range rates {
		if rates[i] < 0 {
			panic("analytic: negative rate")
		}
		num += m.P[i] * rates[i] * m.Pi[i]
		den += rates[i] * m.Pi[i]
	}
	if den == 0 {
		panic("analytic: all-zero rate profile")
	}
	return num / den
}

// PoissonSeenRate returns p” — the loss-event rate seen by a
// non-adaptive (Poisson or CBR) source, whose rate is state-independent:
// the plain time average Σ π_i p_i.
func (m CongestionModel) PoissonSeenRate() float64 {
	rates := make([]float64, len(m.Pi))
	for i := range rates {
		rates[i] = 1
	}
	return m.SeenLossEventRate(rates)
}

// ResponsiveSeenRate returns the loss-event rate seen by a source that
// tracks the congestion process through the throughput function f with
// responsiveness in [0, 1]: its state-i rate is the weighted geometric
// interpolation between the fully adapted rate f(p_i) (responsiveness 1,
// an idealized TCP) and the overall average rate (responsiveness 0, a
// non-adaptive source). EBRC with averaging window L has an intermediate
// responsiveness that decreases with L (the estimator smooths over
// ~L loss events, so it straddles phase changes).
func (m CongestionModel) ResponsiveSeenRate(f formula.Formula, responsiveness float64) float64 {
	if responsiveness < 0 || responsiveness > 1 {
		panic("analytic: responsiveness outside [0,1]")
	}
	full := make([]float64, len(m.Pi))
	avg := 0.0
	for i := range full {
		full[i] = f.Rate(m.P[i])
		avg += m.Pi[i] * full[i]
	}
	rates := make([]float64, len(m.Pi))
	for i := range rates {
		// Geometric interpolation keeps rates positive and reproduces
		// the limits exactly at 0 and 1.
		rates[i] = math.Pow(full[i], responsiveness) * math.Pow(avg, 1-responsiveness)
	}
	return m.SeenLossEventRate(rates)
}

// EBRCResponsiveness maps the estimator window L to a responsiveness in
// (0, 1]: the estimator averages the last L loss intervals, so only a
// fraction ~1/L of its mass reacts to the newest state. TCP reacts
// within one loss event (responsiveness 1).
func EBRCResponsiveness(L int) float64 {
	if L < 1 {
		panic("analytic: window must be >= 1")
	}
	return 1 / float64(L)
}

// Claim3Ordering evaluates Claim 3 for the model: it returns
// p' (TCP, fully responsive), p(L) for each requested EBRC window, and
// p” (Poisson), which should satisfy p' <= p(L) <= p” with p(L)
// increasing in L.
func (m CongestionModel) Claim3Ordering(f formula.Formula, windows []int) (tcp float64, ebrc []float64, poisson float64) {
	tcp = m.ResponsiveSeenRate(f, 1)
	poisson = m.PoissonSeenRate()
	ebrc = make([]float64, len(windows))
	for i, L := range windows {
		ebrc[i] = m.ResponsiveSeenRate(f, EBRCResponsiveness(L))
	}
	return tcp, ebrc, poisson
}
