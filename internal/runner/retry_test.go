package runner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRetryDelaySchedule(t *testing.T) {
	t.Parallel()
	cases := []struct {
		base, max time.Duration
		attempt   int
		want      time.Duration
	}{
		{0, 0, 1, 100 * time.Millisecond},
		{0, 0, 2, 200 * time.Millisecond},
		{0, 0, 3, 400 * time.Millisecond},
		{0, 0, 7, 5 * time.Second},
		{0, 0, 60, 5 * time.Second},
		{10 * time.Millisecond, 80 * time.Millisecond, 1, 10 * time.Millisecond},
		{10 * time.Millisecond, 80 * time.Millisecond, 3, 40 * time.Millisecond},
		{10 * time.Millisecond, 80 * time.Millisecond, 4, 80 * time.Millisecond},
		{10 * time.Millisecond, 80 * time.Millisecond, 9, 80 * time.Millisecond},
		{200 * time.Millisecond, 50 * time.Millisecond, 1, 50 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := retryDelay(tc.base, tc.max, tc.attempt); got != tc.want {
			t.Errorf("retryDelay(%v, %v, %d) = %v, want %v",
				tc.base, tc.max, tc.attempt, got, tc.want)
		}
	}
}

func TestAttemptDefaultsToOne(t *testing.T) {
	t.Parallel()
	if got := Attempt(context.Background()); got != 1 {
		t.Fatalf("Attempt on bare context = %d, want 1", got)
	}
	if got := Attempt(WithAttempt(context.Background(), 3)); got != 3 {
		t.Fatalf("Attempt = %d, want 3", got)
	}
}

// A job that fails its first attempts and then succeeds delivers its
// result with no error; the pool snapshot counts the dispatched
// retries.
func TestRetryThenSucceed(t *testing.T) {
	t.Parallel()
	jobs := []Job{{Name: "flaky", Seed: 9, Run: func(ctx context.Context) any {
		if Attempt(ctx) < 3 {
			panic("transient")
		}
		return "recovered"
	}}}
	p := &Pool{Workers: 1, Retries: 2, RetryBase: time.Millisecond}
	results, err := p.Execute(context.Background(), jobs)
	if err != nil {
		t.Fatalf("err = %v, want success after retries", err)
	}
	if results[0] != "recovered" {
		t.Fatalf("result = %v", results[0])
	}
	if snap := p.Snapshot(); snap.Retries != 2 || snap.Done != 1 || snap.Failed != 0 {
		t.Fatalf("snapshot = %+v, want 2 retries, 1 done, 0 failed", snap)
	}
}

// When the retry budget runs out the job lands in the manifest with its
// attempt count and the full error chain, and the healthy jobs still
// deliver.
func TestRetriesExhausted(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "fine", Seed: 1, Run: func(context.Context) any { return "ok" }},
		{Name: "doomed", Seed: 2, Run: func(context.Context) any { panic("kaput") }},
	}
	p := &Pool{Workers: 2, Retries: 2, RetryBase: time.Millisecond}
	results, err := p.Execute(context.Background(), jobs)
	var m *Manifest
	if !errors.As(err, &m) {
		t.Fatalf("err = %v, want a *Manifest", err)
	}
	if len(m.Failed) != 1 {
		t.Fatalf("manifest = %+v, want exactly the doomed job", m)
	}
	f := m.Failed[0]
	if f.Index != 1 || f.Attempts != 3 || len(f.Chain) != 3 {
		t.Fatalf("failure = index %d, attempts %d, chain %d, want 1/3/3",
			f.Index, f.Attempts, len(f.Chain))
	}
	if !errors.Is(f.Chain[len(f.Chain)-1], f.Err) && f.Chain[len(f.Chain)-1] != f.Err {
		t.Fatalf("chain tail %v is not the final error %v", f.Chain[2], f.Err)
	}
	if !strings.Contains(f.Error(), "failed 3 attempts") {
		t.Fatalf("error %q does not report the attempt count", f.Error())
	}
	if results[0] != "ok" {
		t.Fatalf("healthy result = %v", results[0])
	}
	if snap := p.Snapshot(); snap.Retries != 2 || snap.Failed != 1 {
		t.Fatalf("snapshot = %+v, want 2 retries, 1 failure", snap)
	}
}

// The watchdog and the retry budget compose: a job that hangs past the
// deadline on its first attempt is abandoned and retried, and the
// retry (seeing its ordinal via Attempt) can succeed.
func TestDeadlineAbandonThenRetrySucceeds(t *testing.T) {
	t.Parallel()
	jobs := []Job{{Name: "hang-once", Seed: 4, Run: func(ctx context.Context) any {
		if Attempt(ctx) == 1 {
			<-ctx.Done()
			return nil
		}
		return 42
	}}}
	p := &Pool{Workers: 1, JobDeadline: 30 * time.Millisecond,
		Retries: 1, RetryBase: time.Millisecond}
	results, err := p.Execute(context.Background(), jobs)
	if err != nil {
		t.Fatalf("err = %v, want recovery on the retry", err)
	}
	if results[0] != 42 {
		t.Fatalf("result = %v", results[0])
	}
	if snap := p.Snapshot(); snap.Retries != 1 {
		t.Fatalf("snapshot retries = %d, want 1", snap.Retries)
	}
}

// Caller cancellation must cut the backoff wait short instead of
// sleeping through it.
func TestCancellationCutsBackoffShort(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job{{Name: "doomed", Run: func(context.Context) any {
		cancel()
		panic("kaput")
	}}}
	p := &Pool{Workers: 1, Retries: 3, RetryBase: time.Hour, RetryMax: time.Hour}
	start := time.Now()
	_, err := p.Execute(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, backoff was not cut short", elapsed)
	}
}
