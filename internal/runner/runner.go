// Package runner is the scenario execution engine: it runs batches of
// independent jobs either serially or on a fixed worker pool, returning
// the results in job order regardless of the execution schedule. Each
// job carries its own deterministic seed, so a batch produces identical
// results under any worker count — the property the experiment layer
// relies on for byte-identical tables in serial and parallel mode.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job is one independent unit of work.
type Job struct {
	// Name labels the job in progress reports (e.g. "fig5 L=8 pairs=16").
	Name string
	// Seed records the deterministic seed driving the job. It is
	// informational — Run must capture the seed itself — but keeping it
	// here makes batches auditable.
	Seed uint64
	// Run computes the job's result. It must be safe to call from any
	// goroutine and must derive all randomness from the captured seed.
	Run func(ctx context.Context) any
}

// Progress reports the completion of one job.
type Progress struct {
	// Done and Total count finished jobs and the batch size.
	Done, Total int
	// Index is the finished job's position in the batch.
	Index int
	// Name is the finished job's label.
	Name string
}

// Executor runs a batch of jobs and returns their results in job order.
// An Executor must be deterministic given deterministic jobs: the
// returned slice depends only on the jobs, never on scheduling.
type Executor interface {
	Execute(ctx context.Context, jobs []Job) ([]any, error)
}

// Serial runs jobs one at a time, in order, on the calling goroutine.
type Serial struct {
	// OnProgress, when non-nil, is called after each job completes.
	OnProgress func(Progress)
}

// Execute implements Executor.
func (s Serial) Execute(ctx context.Context, jobs []Job) ([]any, error) {
	results := make([]any, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := runOne(ctx, i, j)
		if err != nil {
			return nil, err
		}
		results[i] = v
		if s.OnProgress != nil {
			s.OnProgress(Progress{Done: i + 1, Total: len(jobs), Index: i, Name: j.Name})
		}
	}
	return results, nil
}

// Pool runs jobs concurrently on a fixed set of workers. Results are
// collected by job index, so the output order matches the input order.
type Pool struct {
	// Workers is the worker count; <= 0 means runtime.NumCPU().
	Workers int
	// OnProgress, when non-nil, is called after each job completes. The
	// pool serializes the calls, but they may come from any worker and
	// in any completion order.
	OnProgress func(Progress)
}

// NewPool returns a pool with the given worker count (<= 0 = NumCPU).
func NewPool(workers int) *Pool { return &Pool{Workers: workers} }

// Execute implements Executor. The first job error (or context
// cancellation) stops the dispatch of further jobs; in-flight jobs run
// to completion before Execute returns.
func (p *Pool) Execute(ctx context.Context, jobs []Job) ([]any, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]any, len(jobs))
	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				v, err := runOne(ctx, i, jobs[i])
				if err != nil {
					fail(err)
					return
				}
				results[i] = v
				mu.Lock()
				done++
				prog := Progress{Done: done, Total: len(jobs), Index: i, Name: jobs[i].Name}
				if p.OnProgress != nil {
					p.OnProgress(prog)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes one job, converting a panic into an error so a bad
// job cannot kill a worker goroutine (and with it the process) without
// a diagnosable cause.
func runOne(ctx context.Context, index int, j Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d (%s) panicked: %v", index, j.Name, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return j.Run(ctx), nil
}
