// Package runner is the scenario execution engine: it runs batches of
// independent jobs either serially or on a fixed worker pool, returning
// the results in job order regardless of the execution schedule. Each
// job carries its own deterministic seed, so a batch produces identical
// results under any worker count — the property the experiment layer
// relies on for byte-identical tables in serial and parallel mode.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one independent unit of work.
type Job struct {
	// Name labels the job in progress reports (e.g. "fig5 L=8 pairs=16").
	Name string
	// Seed records the deterministic seed driving the job. It is
	// informational — Run must capture the seed itself — but keeping it
	// here makes batches auditable.
	Seed uint64
	// Run computes the job's result. It must be safe to call from any
	// goroutine and must derive all randomness from the captured seed.
	Run func(ctx context.Context) any
}

// Progress reports the completion of one job.
type Progress struct {
	// Done and Total count finished jobs and the batch size.
	Done, Total int
	// Index is the finished job's position in the batch.
	Index int
	// Name is the finished job's label.
	Name string
}

// Executor runs a batch of jobs and returns their results in job order.
// An Executor must be deterministic given deterministic jobs: the
// returned slice depends only on the jobs, never on scheduling.
type Executor interface {
	Execute(ctx context.Context, jobs []Job) ([]any, error)
}

// Serial runs jobs one at a time, in order, on the calling goroutine.
type Serial struct {
	// OnProgress, when non-nil, is called after each job completes.
	OnProgress func(Progress)
}

// Execute implements Executor.
func (s Serial) Execute(ctx context.Context, jobs []Job) ([]any, error) {
	results := make([]any, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := runOne(ctx, i, j)
		if err != nil {
			return nil, err
		}
		results[i] = v
		if s.OnProgress != nil {
			s.OnProgress(Progress{Done: i + 1, Total: len(jobs), Index: i, Name: j.Name})
		}
	}
	return results, nil
}

// JobError identifies one failed job of a batch: enough to rerun it in
// isolation (the index and the deterministic seed) plus the cause.
type JobError struct {
	// Index is the job's position in the batch.
	Index int
	// Name is the job's label.
	Name string
	// Seed is the job's deterministic seed.
	Seed uint64
	// Err is what finally failed: a watchdog deadline or a recovered
	// panic, from the last attempt.
	Err error
	// Attempts counts how many times the job ran (1 when the pool had no
	// retry budget).
	Attempts int
	// Chain holds every attempt's error in attempt order; its last entry
	// is Err. Nil when the job ran once.
	Chain []error
}

func (e JobError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("job %d (%s, seed %d) failed %d attempts: %v", e.Index, e.Name, e.Seed, e.Attempts, e.Err)
	}
	return fmt.Sprintf("job %d (%s, seed %d): %v", e.Index, e.Name, e.Seed, e.Err)
}

// Manifest is the error a hardened Pool returns when some jobs of a
// batch failed: the survivors' results are still delivered, the
// failures are listed here in index order. Callers that can fold
// partial results check for it with errors.As.
type Manifest struct {
	// Total is the batch size.
	Total int
	// Failed lists the failed jobs in index order.
	Failed []JobError
}

func (m *Manifest) Error() string {
	return fmt.Sprintf("runner: %d of %d jobs failed; first: %v", len(m.Failed), m.Total, m.Failed[0])
}

// Pool runs jobs concurrently on a fixed set of workers. Results are
// collected by job index, so the output order matches the input order.
type Pool struct {
	// Workers is the worker count; <= 0 means runtime.NumCPU().
	Workers int
	// OnProgress, when non-nil, is called after each job completes. The
	// pool serializes the calls, but they may come from any worker and
	// in any completion order.
	OnProgress func(Progress)
	// JobDeadline, when positive, hardens the pool with a per-job
	// watchdog: a job exceeding the deadline has its context cancelled
	// and is abandoned, recorded with its index and seed so the run is
	// reproducible in isolation, and the remaining jobs keep running. In
	// this mode a failing job (deadline or panic) no longer nukes the
	// sweep — Execute returns the surviving results (failed slots nil)
	// together with a *Manifest error. Zero keeps the legacy fail-fast
	// behavior. A job that ignores its cancelled context leaks its
	// goroutine until it returns; that is the price of guaranteed
	// progress past a hung job.
	JobDeadline time.Duration
	// Retries, when positive, gives every failing job that many extra
	// attempts (deadline-abandoned and panicked jobs alike) with
	// exponential backoff between attempts, and — like JobDeadline —
	// hardens the pool: failures are collected into a *Manifest instead
	// of nuking the batch. Each attempt sees its ordinal through
	// Attempt(ctx), so checkpoint-aware jobs can resume from their last
	// snapshot instead of recomputing from scratch.
	Retries int
	// RetryBase and RetryMax bound the backoff schedule: the wait before
	// attempt n+1 is RetryBase·2^(n-1), capped at RetryMax. Zero values
	// default to 100ms and 5s.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Batch-progress atomics behind Snapshot: stored by Execute and its
	// workers, read from any goroutine by the live-introspection
	// endpoint. They describe the current (or latest) batch only.
	snapTotal   atomic.Int64
	snapDone    atomic.Int64
	snapFailed  atomic.Int64
	snapRunning atomic.Int64
	snapRetries atomic.Int64
	snapStartNs atomic.Int64 // wall-clock batch start, UnixNano
}

// PoolSnapshot is the pool's live batch progress: jobs dispatched,
// finished, failed/abandoned, and the batch's wall-clock age. It is
// wall-clock flavored by nature and feeds the live-introspection
// endpoint only — never deterministic output.
type PoolSnapshot struct {
	// Total is the size of the current (or latest) batch.
	Total int
	// Done counts jobs that finished successfully.
	Done int
	// Failed counts jobs that failed or were abandoned by the watchdog.
	Failed int
	// Running counts jobs currently executing on workers.
	Running int
	// Retries counts retry attempts dispatched so far (a job that fails
	// twice and then succeeds contributes two).
	Retries int
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
}

// Snapshot returns the pool's live batch progress. Safe to call from
// any goroutine, including while Execute is running.
func (p *Pool) Snapshot() PoolSnapshot {
	s := PoolSnapshot{
		Total:   int(p.snapTotal.Load()),
		Done:    int(p.snapDone.Load()),
		Failed:  int(p.snapFailed.Load()),
		Running: int(p.snapRunning.Load()),
		Retries: int(p.snapRetries.Load()),
	}
	if start := p.snapStartNs.Load(); start > 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	return s
}

// NewPool returns a pool with the given worker count (<= 0 = NumCPU).
func NewPool(workers int) *Pool { return &Pool{Workers: workers} }

// Execute implements Executor. Without a JobDeadline, the first job
// error (or context cancellation) stops the dispatch of further jobs;
// in-flight jobs run to completion before Execute returns. With a
// JobDeadline the pool is hardened: job failures are collected into a
// *Manifest, dispatch continues, and the partial results come back with
// the manifest as the error. Context cancellation aborts either mode.
func (p *Pool) Execute(ctx context.Context, jobs []Job) ([]any, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	p.snapTotal.Store(int64(len(jobs)))
	p.snapDone.Store(0)
	p.snapFailed.Store(0)
	p.snapRunning.Store(0)
	p.snapRetries.Store(0)
	p.snapStartNs.Store(time.Now().UnixNano())

	outer := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]any, len(jobs))
	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
		failed   []JobError
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				p.snapRunning.Add(1)
				v, attempts, chain, err := p.runAttempts(ctx, i, jobs[i])
				p.snapRunning.Add(-1)
				if err != nil {
					p.snapFailed.Add(1)
					// Cancellation (the caller's or a fail-fast peer's)
					// always aborts; in hardened mode every other
					// failure is recorded and the worker moves on.
					if !p.hardened() || ctx.Err() != nil {
						fail(err)
						return
					}
					je := JobError{Index: i, Name: jobs[i].Name, Seed: jobs[i].Seed,
						Err: err, Attempts: attempts}
					if attempts > 1 {
						je.Chain = chain
					}
					mu.Lock()
					failed = append(failed, je)
					mu.Unlock()
					continue
				}
				results[i] = v
				p.snapDone.Add(1)
				mu.Lock()
				done++
				prog := Progress{Done: done, Total: len(jobs), Index: i, Name: jobs[i].Name}
				if p.OnProgress != nil {
					p.OnProgress(prog)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		// Prefer the caller's own cancellation cause when there is one.
		if err := outer.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
		return results, &Manifest{Total: len(jobs), Failed: failed}
	}
	return results, nil
}

// hardened reports whether the pool collects failures into a Manifest
// instead of failing fast: either robustness feature (the per-job
// watchdog or the retry budget) switches the mode on.
func (p *Pool) hardened() bool { return p.JobDeadline > 0 || p.Retries > 0 }

// runAttempts executes one job up to 1+Retries times, backing off
// exponentially between attempts. It returns the first successful
// result with the attempt ordinal that produced it and the errors of
// the attempts before it; or, when every attempt failed, a nil value,
// the full error chain, and the last error. Each attempt's context
// carries its ordinal (see Attempt), so a checkpoint-aware job can
// resume from its last snapshot instead of recomputing from scratch.
func (p *Pool) runAttempts(ctx context.Context, i int, j Job) (any, int, []error, error) {
	attempts := 1 + p.Retries
	if attempts < 1 {
		attempts = 1
	}
	var chain []error
	for a := 1; a <= attempts; a++ {
		actx := WithAttempt(ctx, a)
		var v any
		var err error
		if p.JobDeadline > 0 {
			v, err = p.runDeadlined(actx, i, j)
		} else {
			v, err = runOne(actx, i, j)
		}
		if err == nil {
			return v, a, chain, nil
		}
		chain = append(chain, err)
		if ctx.Err() != nil || a == attempts {
			break
		}
		p.snapRetries.Add(1)
		select {
		case <-time.After(retryDelay(p.RetryBase, p.RetryMax, a)):
		case <-ctx.Done():
			return nil, a, chain, chain[len(chain)-1]
		}
	}
	return nil, len(chain), chain, chain[len(chain)-1]
}

// retryDelay is the backoff before the attempt following failed attempt
// n (1-based): base·2^(n-1), capped at max. Zero base and max default
// to 100ms and 5s.
func retryDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for k := 1; k < attempt; k++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// attemptKey carries the attempt ordinal in a job's context.
type attemptKey struct{}

// WithAttempt returns a context carrying the attempt ordinal (1-based).
func WithAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// Attempt returns the attempt ordinal carried by the context, 1 when
// none is (every non-retrying execution path).
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok && n > 0 {
		return n
	}
	return 1
}

// runDeadlined is runOne behind a watchdog: the job runs on its own
// goroutine with a deadline-bearing context, and a job that overstays
// is abandoned (reported with index and seed; its goroutine exits
// whenever the job honors the cancelled context or returns).
func (p *Pool) runDeadlined(ctx context.Context, i int, j Job) (any, error) {
	jctx, cancel := context.WithTimeout(ctx, p.JobDeadline)
	defer cancel()
	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := runOne(jctx, i, j)
		done <- outcome{v, err}
	}()
	select {
	case o := <-done:
		return o.v, o.err
	case <-jctx.Done():
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("runner: job %d (%s, seed %d) exceeded the %v watchdog deadline and was abandoned; rerun that seed in isolation to reproduce", i, j.Name, j.Seed, p.JobDeadline)
	}
}

// maxPanicStack bounds the stack excerpt embedded in a panic error:
// enough frames to locate the fault, not enough to drown the report.
const maxPanicStack = 4096

// runOne executes one job, converting a panic into an error so a bad
// job cannot kill a worker goroutine (and with it the process) without
// a diagnosable cause. The error carries the job index, its
// deterministic seed and a truncated stack, so the exact run is
// reproducible in isolation (rerun the scenario filtered to that seed).
func runOne(ctx context.Context, index int, j Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > maxPanicStack {
				stack = append(stack[:maxPanicStack], []byte("\n... (stack truncated)")...)
			}
			err = fmt.Errorf("runner: job %d (%s, seed %d) panicked: %v\n%s", index, j.Name, j.Seed, r, stack)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return j.Run(ctx), nil
}
