package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: "job", Seed: uint64(i), Run: func(context.Context) any { return i * i }}
	}
	return jobs
}

func TestSerialOrderAndProgress(t *testing.T) {
	t.Parallel()
	var seen []int
	s := Serial{OnProgress: func(p Progress) { seen = append(seen, p.Done) }}
	results, err := s.Execute(context.Background(), intJobs(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v.(int) != i*i {
			t.Fatalf("results[%d] = %v", i, v)
		}
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v", seen)
		}
	}
}

func TestPoolMatchesSerial(t *testing.T) {
	t.Parallel()
	jobs := intJobs(64)
	serial, err := Serial{}.Execute(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		pool := NewPool(workers)
		par, err := pool.Execute(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results", workers, len(par))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: results[%d] = %v, want %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestPoolProgressCounts(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	var maxDone atomic.Int64
	p := &Pool{Workers: 4, OnProgress: func(pr Progress) {
		calls.Add(1)
		if int64(pr.Done) > maxDone.Load() {
			maxDone.Store(int64(pr.Done))
		}
		if pr.Total != 20 {
			t.Errorf("total = %d", pr.Total)
		}
	}}
	if _, err := p.Execute(context.Background(), intJobs(20)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 || maxDone.Load() != 20 {
		t.Fatalf("calls = %d, max done = %d", calls.Load(), maxDone.Load())
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	t.Parallel()
	results, err := NewPool(4).Execute(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("results = %v, err = %v", results, err)
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = Job{Name: "slow", Run: func(context.Context) any {
			if started.Add(1) == 1 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		}}
	}
	_, err := (&Pool{Workers: 2}).Execute(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}

	if _, err := (Serial{}).Execute(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "fine", Run: func(context.Context) any { return 1 }},
		{Name: "boom", Run: func(context.Context) any { panic("kaput") }},
	}
	for _, ex := range []Executor{Serial{}, NewPool(2)} {
		_, err := ex.Execute(context.Background(), jobs)
		if err == nil || !strings.Contains(err.Error(), "kaput") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("%T err = %v, want panic error naming the job", ex, err)
		}
	}
}
