package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: "job", Seed: uint64(i), Run: func(context.Context) any { return i * i }}
	}
	return jobs
}

func TestSerialOrderAndProgress(t *testing.T) {
	t.Parallel()
	var seen []int
	s := Serial{OnProgress: func(p Progress) { seen = append(seen, p.Done) }}
	results, err := s.Execute(context.Background(), intJobs(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v.(int) != i*i {
			t.Fatalf("results[%d] = %v", i, v)
		}
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v", seen)
		}
	}
}

func TestPoolMatchesSerial(t *testing.T) {
	t.Parallel()
	jobs := intJobs(64)
	serial, err := Serial{}.Execute(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		pool := NewPool(workers)
		par, err := pool.Execute(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results", workers, len(par))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: results[%d] = %v, want %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestPoolProgressCounts(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	var maxDone atomic.Int64
	p := &Pool{Workers: 4, OnProgress: func(pr Progress) {
		calls.Add(1)
		if int64(pr.Done) > maxDone.Load() {
			maxDone.Store(int64(pr.Done))
		}
		if pr.Total != 20 {
			t.Errorf("total = %d", pr.Total)
		}
	}}
	if _, err := p.Execute(context.Background(), intJobs(20)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 || maxDone.Load() != 20 {
		t.Fatalf("calls = %d, max done = %d", calls.Load(), maxDone.Load())
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	t.Parallel()
	results, err := NewPool(4).Execute(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("results = %v, err = %v", results, err)
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = Job{Name: "slow", Run: func(context.Context) any {
			if started.Add(1) == 1 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		}}
	}
	_, err := (&Pool{Workers: 2}).Execute(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}

	if _, err := (Serial{}).Execute(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "fine", Run: func(context.Context) any { return 1 }},
		{Name: "boom", Run: func(context.Context) any { panic("kaput") }},
	}
	for _, ex := range []Executor{Serial{}, NewPool(2)} {
		_, err := ex.Execute(context.Background(), jobs)
		if err == nil || !strings.Contains(err.Error(), "kaput") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("%T err = %v, want panic error naming the job", ex, err)
		}
	}
}

// A panic error must identify the job by index and seed and carry a
// stack excerpt pointing at the faulting frame.
func TestPanicErrorCarriesSeedAndStack(t *testing.T) {
	t.Parallel()
	jobs := []Job{{Name: "boom", Seed: 7777, Run: func(context.Context) any {
		panicDeliberately()
		return nil
	}}}
	_, err := Serial{}.Execute(context.Background(), jobs)
	if err == nil {
		t.Fatal("panicking job returned no error")
	}
	msg := err.Error()
	for _, want := range []string{"job 0", "seed 7777", "deliberate kaput", "panicDeliberately"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic error missing %q:\n%s", want, msg)
		}
	}
}

func panicDeliberately() { panic("deliberate kaput") }

// A job overstaying the watchdog deadline is reported with index and
// seed in a manifest; the other jobs still complete and deliver their
// results.
func TestWatchdogDeadlinePartialResults(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	defer close(release)
	jobs := make([]Job, 6)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: "fast", Seed: uint64(100 + i), Run: func(context.Context) any { return i }}
	}
	jobs[2] = Job{Name: "hung", Seed: 4242, Run: func(ctx context.Context) any {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}}
	p := &Pool{Workers: 2, JobDeadline: 50 * time.Millisecond}
	results, err := p.Execute(context.Background(), jobs)
	var m *Manifest
	if !errors.As(err, &m) {
		t.Fatalf("err = %v, want a *Manifest", err)
	}
	if len(m.Failed) != 1 || m.Total != 6 {
		t.Fatalf("manifest = %+v, want 1 failure of 6", m)
	}
	f := m.Failed[0]
	if f.Index != 2 || f.Seed != 4242 || !strings.Contains(f.Err.Error(), "watchdog deadline") {
		t.Fatalf("failure = %+v, want index 2, seed 4242, a deadline error", f)
	}
	if !strings.Contains(err.Error(), "seed 4242") {
		t.Fatalf("manifest error %q does not name the seed", err)
	}
	for i, v := range results {
		if i == 2 {
			if v != nil {
				t.Fatalf("hung job result = %v, want nil", v)
			}
			continue
		}
		if v != i {
			t.Fatalf("results[%d] = %v, want %d", i, v, i)
		}
	}
}

// In hardened mode a panicking job lands in the manifest too, instead
// of killing the sweep.
func TestWatchdogPanicLandsInManifest(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "fine", Seed: 1, Run: func(context.Context) any { return "ok" }},
		{Name: "boom", Seed: 2, Run: func(context.Context) any { panic("kaput") }},
		{Name: "fine2", Seed: 3, Run: func(context.Context) any { return "ok2" }},
	}
	p := &Pool{Workers: 2, JobDeadline: 10 * time.Second}
	results, err := p.Execute(context.Background(), jobs)
	var m *Manifest
	if !errors.As(err, &m) {
		t.Fatalf("err = %v, want a *Manifest", err)
	}
	if len(m.Failed) != 1 || m.Failed[0].Index != 1 || !strings.Contains(m.Failed[0].Err.Error(), "kaput") {
		t.Fatalf("manifest = %+v", m)
	}
	if results[0] != "ok" || results[2] != "ok2" {
		t.Fatalf("surviving results = %v", results)
	}
}

// A generous deadline over fast jobs must not fire: no manifest, full
// results.
func TestWatchdogQuietOnFastJobs(t *testing.T) {
	t.Parallel()
	p := &Pool{Workers: 4, JobDeadline: 10 * time.Second}
	results, err := p.Execute(context.Background(), intJobs(16))
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range results {
		if v.(int) != i*i {
			t.Fatalf("results[%d] = %v", i, v)
		}
	}
}

// Caller cancellation aborts a hardened pool just like a fail-fast one:
// no manifest, the context error.
func TestWatchdogCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = Job{Name: "slow", Run: func(ctx context.Context) any {
			if started.Add(1) == 1 {
				cancel()
			}
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
			}
			return nil
		}}
	}
	p := &Pool{Workers: 2, JobDeadline: 10 * time.Second}
	_, err := p.Execute(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
