package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	b := a.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	r := New(5)
	const n = 200000
	rate := 2.5
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean = %v, want %v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.01 {
		t.Fatalf("exp variance = %v, want %v", variance, 1/(rate*rate))
	}
}

func TestShiftedExpMean(t *testing.T) {
	r := New(9)
	const n = 100000
	x0, rate := 3.0, 0.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ShiftedExp(x0, rate)
		if v < x0 {
			t.Fatalf("shifted exp below shift: %v < %v", v, x0)
		}
		sum += v
	}
	want := x0 + 1/rate
	if got := sum / n; math.Abs(got-want) > 0.05 {
		t.Fatalf("shifted exp mean = %v, want %v", got, want)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0.01, 0.1, 0.5, 1} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			k := r.Geometric(p)
			if k < 1 {
				t.Fatalf("geometric sample %d < 1", k)
			}
			sum += float64(k)
		}
		mean := sum / n
		want := 1 / p
		if math.Abs(mean-want)/want > 0.03 {
			t.Fatalf("geometric(p=%v) mean = %v, want %v", p, mean, want)
		}
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.5, 2.0)
		if v < 2.0 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	r := New(19)
	shape, scale := 3.0, 1.0
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Pareto(shape, scale)
	}
	want := shape * scale / (shape - 1)
	if got := sum / n; math.Abs(got-want)/want > 0.03 {
		t.Fatalf("Pareto mean = %v, want %v", got, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestPanics(t *testing.T) {
	r := New(1)
	cases := []func(){
		func() { r.Intn(0) },
		func() { r.Exp(0) },
		func() { r.Exp(-1) },
		func() { r.Geometric(0) },
		func() { r.Geometric(1.5) },
		func() { r.Pareto(0, 1) },
		func() { r.Pareto(1, 0) },
		func() { r.ShiftedExp(-1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: Geometric samples are always >= 1 and ShiftedExp >= shift.
func TestQuickSampleSupport(t *testing.T) {
	r := New(101)
	f := func(seed uint16) bool {
		p := 0.001 + float64(seed%999)/1000.0 // in (0,1)
		if r.Geometric(p) < 1 {
			return false
		}
		x0 := float64(seed % 50)
		return r.ShiftedExp(x0, 1.0) >= x0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same first value, for arbitrary seeds.
func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(12345)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	saved := r.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = r.Uint64()
	}
	// Restore into a generator with a completely different history.
	other := New(999)
	other.Float64()
	other.SetState(saved)
	for i, w := range want {
		if got := other.Uint64(); got != w {
			t.Fatalf("draw %d after SetState = %#x, want %#x", i, got, w)
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetState accepted the all-zero state")
		}
	}()
	New(1).SetState([4]uint64{})
}
