// Package rng provides a deterministic, seedable random number generator
// and the sampling distributions used throughout the reproduction.
//
// Every experiment in this repository is driven by an explicit seed so
// that results are reproducible bit-for-bit. The generator is
// xoshiro256** seeded through splitmix64, which gives high-quality
// streams from arbitrary 64-bit seeds and allows cheap independent
// sub-streams (see New and Split).
package rng

import "math"

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a splitmix64 state and returns the next value.
// It is used only for seeding so that closely related seeds still
// produce unrelated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; splitmix64
	// cannot produce four consecutive zeros, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Reseed reinitializes the generator in place, exactly as New(seed)
// would, without allocating. Pooled model components (the churn engine's
// recycled endpoints, per-flow jitter streams) reseed their embedded
// generators through this instead of constructing fresh ones.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// State returns the generator's four state words, for checkpointing.
// Restoring them with SetState reproduces the stream exactly.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator state with words previously
// captured by State. It panics on the all-zero state, which xoshiro
// cannot occupy and which State can therefore never return.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s = s
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, which makes it convenient to hand
// sub-streams to concurrently constructed model components.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// Use 1-U so the argument of Log is in (0,1]; Float64 may return 0.
	return -math.Log(1-r.Float64()) / rate
}

// ShiftedExp returns x0 + Exp(rate): a shifted exponential sample with
// mean x0 + 1/rate and standard deviation 1/rate. The paper's numerical
// experiments (Figs 3-4) use this family because it lets the mean and the
// coefficient of variation be fixed independently.
func (r *RNG) ShiftedExp(x0, rate float64) float64 {
	if x0 < 0 {
		panic("rng: ShiftedExp with negative shift")
	}
	return x0 + r.Exp(rate)
}

// Geometric returns a geometrically distributed sample on {1, 2, ...}
// with success probability p: the number of Bernoulli(p) trials up to and
// including the first success. Its mean is 1/p, matching the loss-event
// interval of a Bernoulli packet dropper. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 1
	}
	u := 1 - r.Float64() // in (0,1]
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
}

// Pareto returns a Pareto(shape, scale) sample with support [scale, inf).
// Used for heavy-tailed background-traffic burst sizes in WAN profiles.
func (r *RNG) Pareto(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := 1 - r.Float64()
	return scale / math.Pow(u, 1/shape)
}

// Weibull returns a Weibull(shape, scale) sample by inversion:
// scale * (-ln(1-U))^(1/shape). Shape 1 recovers the exponential with
// mean equal to scale; shape < 1 gives the heavy-tailed, bursty
// interarrival processes of measured web sessions (flash crowds).
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	u := 1 - r.Float64()
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Norm returns a standard normal sample (Box-Muller, polar form avoided
// for simplicity; two uniforms per call).
func (r *RNG) Norm() float64 {
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
