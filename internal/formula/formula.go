// Package formula implements the TCP loss-throughput formulae studied in
// the paper: SQRT (Mathis et al.), PFTK-standard (Padhye et al., eq. 30)
// and PFTK-simplified (the RFC 3448 / TFRC recommendation), together with
// the derived functionals that drive the conservativeness analysis:
//
//	F1x(x) = f(1/x)      (rate as a function of the mean loss interval)
//	G(x)   = 1/f(1/x)    (whose convexity is condition (F1) of Theorem 1)
//
// Constants follow the paper: c1 = sqrt(2b/3), c2 = (3/2)*sqrt(3b/2),
// with b the number of packets acknowledged per ACK (typically 2), r the
// mean round-trip time in seconds and q the retransmission timeout value
// (recommended q = 4r). Rates are in packets per second.
package formula

import (
	"fmt"
	"math"

	"repro/internal/numerics"
)

// Params bundles the path parameters every formula depends on.
type Params struct {
	// R is the mean round-trip time in seconds.
	R float64
	// Q is the TCP retransmit timeout value in seconds. The TFRC
	// proposed standard recommends Q = 4R.
	Q float64
	// B is the number of packets acknowledged by a single ACK
	// (delayed ACKs give B = 2, the practical default).
	B float64
}

// DefaultParams returns the paper's reference setting: r = 1 s, q = 4r,
// b = 2 (used in Figures 1 and 2).
func DefaultParams() Params { return Params{R: 1, Q: 4, B: 2} }

// ParamsForRTT returns parameters with the given RTT, q = 4·rtt and b = 2.
func ParamsForRTT(rtt float64) Params { return Params{R: rtt, Q: 4 * rtt, B: 2} }

// C1 returns c1 = sqrt(2b/3).
func (p Params) C1() float64 { return math.Sqrt(2 * p.B / 3) }

// C2 returns c2 = (3/2)·sqrt(3b/2).
func (p Params) C2() float64 { return 1.5 * math.Sqrt(3*p.B/2) }

// Validate reports an error for non-positive parameters.
func (p Params) Validate() error {
	if p.R <= 0 || p.Q < 0 || p.B <= 0 {
		return fmt.Errorf("formula: invalid params %+v", p)
	}
	return nil
}

// Formula is a positive, non-increasing loss-throughput function
// f: loss-event rate p in (0, 1] -> send rate in packets/second.
type Formula interface {
	// Rate returns f(p). Implementations must be positive and
	// non-increasing on (0, 1].
	Rate(p float64) float64
	// Name identifies the formula in experiment output.
	Name() string
	// Params returns the path parameters the formula was built with.
	Params() Params
}

// SQRT is the square-root formula f(p) = 1/(c1·r·sqrt(p)).
type SQRT struct{ P Params }

// NewSQRT returns the SQRT formula for the given parameters.
func NewSQRT(p Params) SQRT { return SQRT{P: p} }

// Rate implements Formula.
func (f SQRT) Rate(p float64) float64 {
	checkP(p)
	return 1 / (f.P.C1() * f.P.R * math.Sqrt(p))
}

// Name implements Formula.
func (SQRT) Name() string { return "SQRT" }

// Params implements Formula.
func (f SQRT) Params() Params { return f.P }

// PFTKStandard is the Padhye et al. throughput formula (eq. 30 of the
// PFTK paper, eq. 6 of this paper):
//
//	f(p) = 1 / (c1·r·sqrt(p) + q·min(1, c2·sqrt(p))·p·(1+32p²))
type PFTKStandard struct{ P Params }

// NewPFTKStandard returns the PFTK-standard formula.
func NewPFTKStandard(p Params) PFTKStandard { return PFTKStandard{P: p} }

// Rate implements Formula.
func (f PFTKStandard) Rate(p float64) float64 {
	checkP(p)
	sq := math.Sqrt(p)
	den := f.P.C1()*f.P.R*sq + f.P.Q*math.Min(1, f.P.C2()*sq)*p*(1+32*p*p)
	return 1 / den
}

// Name implements Formula.
func (PFTKStandard) Name() string { return "PFTK-standard" }

// Params implements Formula.
func (f PFTKStandard) Params() Params { return f.P }

// PFTKSimplified is the simplification recommended by the TFRC proposed
// standard (eq. 7 of the paper):
//
//	f(p) = 1 / (c1·r·sqrt(p) + q·c2·(p^{3/2} + 32·p^{7/2}))
//
// For p <= 1/c2² it coincides with PFTK-standard; above, it is smaller.
type PFTKSimplified struct{ P Params }

// NewPFTKSimplified returns the PFTK-simplified formula.
func NewPFTKSimplified(p Params) PFTKSimplified { return PFTKSimplified{P: p} }

// Rate implements Formula.
func (f PFTKSimplified) Rate(p float64) float64 {
	checkP(p)
	den := f.P.C1()*f.P.R*math.Sqrt(p) + f.P.Q*f.P.C2()*(math.Pow(p, 1.5)+32*math.Pow(p, 3.5))
	return 1 / den
}

// Name implements Formula.
func (PFTKSimplified) Name() string { return "PFTK-simplified" }

// Params implements Formula.
func (f PFTKSimplified) Params() Params { return f.P }

// checkP guards the formula domain. The loss-event rate is nominally in
// (0, 1], but the formulae are well-defined positive decreasing functions
// on all of (0, ∞), and the paper's designed loss processes (continuous
// interval distributions) occasionally produce estimates 1/θ̂ slightly
// above 1; we therefore accept any positive finite argument.
func checkP(p float64) {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		panic(fmt.Sprintf("formula: loss-event rate %v outside (0, inf)", p))
	}
}

// F1x returns the function x -> f(1/x): the send rate as a function of
// the (estimated) mean loss-event interval in packets, defined for x >= 1.
// This is the left panel of the paper's Figure 1; its concavity/convexity
// is conditions (F2)/(F2c) of Theorem 2.
func F1x(f Formula) numerics.Func {
	return func(x float64) float64 { return f.Rate(1 / x) }
}

// G returns the function g(x) = 1/f(1/x), defined for x >= 1. Its
// convexity is condition (F1) of Theorem 1 and the right panel of
// Figure 1.
func G(f Formula) numerics.Func {
	return func(x float64) float64 { return 1 / f.Rate(1/x) }
}

// Invert returns the loss-event rate p in [lo, hi] at which f attains the
// given rate, found by bisection/Brent on the monotone Rate function.
// It returns an error if rate is outside [f(hi), f(lo)].
func Invert(f Formula, rate, lo, hi float64) (float64, error) {
	if lo <= 0 || hi > 1 || lo >= hi {
		return 0, fmt.Errorf("formula: invalid inversion bracket [%v, %v]", lo, hi)
	}
	return numerics.Brent(func(p float64) float64 { return f.Rate(p) - rate }, lo, hi, 1e-14)
}

// DeviationFromConvexity computes Proposition 4's ratio
// r = sup_x g(x)/g**(x) for g = 1/f(1/x) over the loss-interval range
// [xlo, xhi] sampled at n points, returning the ratio and the x attaining
// it. For PFTK-standard with default parameters the paper reports
// r = 1.0026 attained near x = 3.375.
func DeviationFromConvexity(f Formula, xlo, xhi float64, n int) (ratio, argmax float64) {
	return numerics.DeviationFromConvexity(G(f), numerics.Grid(xlo, xhi, n))
}

// All returns the three formulae of the paper for the given parameters,
// in the order SQRT, PFTK-standard, PFTK-simplified.
func All(p Params) []Formula {
	return []Formula{NewSQRT(p), NewPFTKStandard(p), NewPFTKSimplified(p)}
}
