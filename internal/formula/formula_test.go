package formula

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numerics"
)

func TestConstants(t *testing.T) {
	p := DefaultParams()
	if got, want := p.C1(), math.Sqrt(4.0/3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("c1 = %v, want %v", got, want)
	}
	if got, want := p.C2(), 1.5*math.Sqrt(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("c2 = %v, want %v", got, want)
	}
	if p.Q != 4*p.R {
		t.Fatalf("default q = %v, want 4r", p.Q)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{R: 0, Q: 1, B: 2}).Validate(); err == nil {
		t.Fatal("expected error for zero RTT")
	}
	if err := (Params{R: 1, Q: -1, B: 2}).Validate(); err == nil {
		t.Fatal("expected error for negative q")
	}
}

func TestSQRTClosedForm(t *testing.T) {
	f := NewSQRT(DefaultParams())
	// f(p) = 1/(c1*sqrt(p)) with r=1; at p=0.01, 1/(1.1547*0.1) ≈ 8.66.
	got := f.Rate(0.01)
	want := 1 / (math.Sqrt(4.0/3) * 0.1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SQRT(0.01) = %v, want %v", got, want)
	}
}

func TestFormulaeAgreeForSmallP(t *testing.T) {
	// PFTK-standard == PFTK-simplified for p <= 1/c2^2, and both
	// approach SQRT as p -> 0.
	p := DefaultParams()
	std, simp := NewPFTKStandard(p), NewPFTKSimplified(p)
	threshold := 1 / (p.C2() * p.C2())
	for _, pv := range []float64{1e-6, 1e-4, 1e-3, threshold * 0.99} {
		a, b := std.Rate(pv), simp.Rate(pv)
		if math.Abs(a-b)/a > 1e-12 {
			t.Fatalf("PFTK variants differ at p=%v: %v vs %v", pv, a, b)
		}
	}
	// Above the threshold, simplified is smaller (larger denominator).
	if simp.Rate(0.5) >= std.Rate(0.5) {
		t.Fatalf("simplified %v should be < standard %v at p=0.5",
			simp.Rate(0.5), std.Rate(0.5))
	}
	// SQRT limit for rare losses.
	sq := NewSQRT(p)
	ratio := std.Rate(1e-8) / sq.Rate(1e-8)
	if math.Abs(ratio-1) > 1e-3 {
		t.Fatalf("PFTK/SQRT at tiny p = %v, want ~1", ratio)
	}
}

func TestRateNonIncreasing(t *testing.T) {
	for _, f := range All(DefaultParams()) {
		prev := math.Inf(1)
		for _, p := range numerics.LogGrid(1e-6, 1, 200) {
			r := f.Rate(p)
			if r <= 0 {
				t.Fatalf("%s: non-positive rate at p=%v", f.Name(), p)
			}
			if r > prev+1e-12 {
				t.Fatalf("%s: rate increased at p=%v", f.Name(), p)
			}
			prev = r
		}
	}
}

func TestRatePanicsOutsideDomain(t *testing.T) {
	f := NewSQRT(DefaultParams())
	for _, p := range []float64{0, -0.1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic at p=%v", p)
				}
			}()
			f.Rate(p)
		}()
	}
}

// Figure 1 (right): convexity of g(x) = 1/f(1/x).
func TestGConvexity(t *testing.T) {
	params := DefaultParams()
	grid := numerics.Grid(1.01, 50, 500)
	// (F1) holds strictly for SQRT and PFTK-simplified.
	if !numerics.IsConvexOnGrid(G(NewSQRT(params)), grid, 1e-9) {
		t.Fatal("g for SQRT should be convex")
	}
	if !numerics.IsConvexOnGrid(G(NewPFTKSimplified(params)), grid, 1e-9) {
		t.Fatal("g for PFTK-simplified should be convex")
	}
	// PFTK-standard is NOT strictly convex (the min term introduces a
	// concave kink at x = c2² = 27b/8 = 6.75 for b = 2), but almost.
	kink := params.C2() * params.C2()
	if numerics.IsConvexOnGrid(G(NewPFTKStandard(params)), numerics.Grid(kink-0.5, kink+0.5, 400), 1e-12) {
		t.Fatal("g for PFTK-standard should fail a strict convexity check at the kink")
	}
}

// Figure 1 (left): concavity/convexity of f(1/x).
func TestF1xShape(t *testing.T) {
	params := DefaultParams()
	// SQRT: f(1/x) = sqrt(x)/(c1 r) is concave everywhere.
	if !numerics.IsConcaveOnGrid(F1x(NewSQRT(params)), numerics.Grid(1.01, 50, 300), 1e-9) {
		t.Fatal("f(1/x) for SQRT should be concave")
	}
	// PFTK: concave for rare losses (large x)...
	if !numerics.IsConcaveOnGrid(F1x(NewPFTKSimplified(params)), numerics.Grid(25, 50, 200), 1e-9) {
		t.Fatal("f(1/x) for PFTK-simplified should be concave for rare losses")
	}
	// ...but convex for heavy losses (small x). This drives Claim 2.
	if !numerics.IsConvexOnGrid(F1x(NewPFTKSimplified(params)), numerics.Grid(1.01, 3, 200), 1e-9) {
		t.Fatal("f(1/x) for PFTK-simplified should be convex for heavy losses")
	}
	if !numerics.IsConvexOnGrid(F1x(NewPFTKStandard(params)), numerics.Grid(1.01, 3, 200), 1e-9) {
		t.Fatal("f(1/x) for PFTK-standard should be convex for heavy losses")
	}
}

// Figure 2: the deviation-from-convexity ratio of PFTK-standard is about
// 1.0026, attained near x = 3.375. The kink of PFTK-standard sits at
// x = c2² = 27b/8, which equals 3.375 exactly for b = 1 — so the paper's
// Figure 2 was computed with b = 1 (see DESIGN.md errata). We reproduce
// the paper's numbers at b = 1 and record the b = 2 equivalent.
func TestFigure2DeviationRatio(t *testing.T) {
	f := NewPFTKStandard(Params{R: 1, Q: 4, B: 1})
	ratio, argmax := DeviationFromConvexity(f, 1.01, 50, 40000)
	if ratio < 1.0020 || ratio > 1.0030 {
		t.Fatalf("deviation ratio = %v, want ~1.0026", ratio)
	}
	if argmax < 3.2 || argmax > 3.5 {
		t.Fatalf("argmax = %v, want ~3.375", argmax)
	}
	// b = 2 moves the kink to x = 6.75 with a similar tiny deviation.
	f2 := NewPFTKStandard(DefaultParams())
	ratio2, argmax2 := DeviationFromConvexity(f2, 1.01, 50, 40000)
	if ratio2 < 1.001 || ratio2 > 1.006 {
		t.Fatalf("b=2 deviation ratio = %v, want ~1.0028", ratio2)
	}
	if argmax2 < 6.5 || argmax2 > 7.0 {
		t.Fatalf("b=2 argmax = %v, want ~6.75", argmax2)
	}
	// SQRT and PFTK-simplified are convex: ratio exactly 1.
	for _, g := range []Formula{NewSQRT(DefaultParams()), NewPFTKSimplified(DefaultParams())} {
		r, _ := DeviationFromConvexity(g, 1.01, 50, 5000)
		if r > 1+1e-9 {
			t.Fatalf("%s deviation = %v, want 1", g.Name(), r)
		}
	}
}

func TestInvert(t *testing.T) {
	for _, f := range All(DefaultParams()) {
		want := 0.0371
		rate := f.Rate(want)
		got, err := Invert(f, rate, 1e-8, 0.999)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("%s: inverted p = %v, want %v", f.Name(), got, want)
		}
	}
}

func TestInvertBadBracket(t *testing.T) {
	f := NewSQRT(DefaultParams())
	if _, err := Invert(f, 1, 0.5, 0.1); err == nil {
		t.Fatal("expected error for inverted bracket")
	}
	if _, err := Invert(f, 1e12, 1e-8, 0.999); err == nil {
		t.Fatal("expected error for unattainable rate")
	}
}

func TestRTTScaling(t *testing.T) {
	// SQRT rate scales as 1/r.
	f1 := NewSQRT(ParamsForRTT(0.05))
	f2 := NewSQRT(ParamsForRTT(0.1))
	if got := f1.Rate(0.01) / f2.Rate(0.01); math.Abs(got-2) > 1e-9 {
		t.Fatalf("RTT scaling ratio = %v, want 2", got)
	}
}

func TestAllOrderAndNames(t *testing.T) {
	fs := All(DefaultParams())
	wantNames := []string{"SQRT", "PFTK-standard", "PFTK-simplified"}
	if len(fs) != 3 {
		t.Fatalf("All returned %d formulae", len(fs))
	}
	for i, f := range fs {
		if f.Name() != wantNames[i] {
			t.Fatalf("name[%d] = %s, want %s", i, f.Name(), wantNames[i])
		}
		if f.Params() != DefaultParams() {
			t.Fatalf("%s params not preserved", f.Name())
		}
	}
}

// Property: for every formula and admissible p, f is positive and
// monotone: f(p1) >= f(p2) whenever p1 <= p2.
func TestQuickMonotonicity(t *testing.T) {
	fs := All(DefaultParams())
	check := func(a, b uint16) bool {
		p1 := 1e-6 + float64(a)/65536*0.999
		p2 := 1e-6 + float64(b)/65536*0.999
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		for _, f := range fs {
			r1, r2 := f.Rate(p1), f.Rate(p2)
			if r1 <= 0 || r2 <= 0 || r1 < r2-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: g(x)·f(1/x) == 1 by construction.
func TestQuickGIsReciprocal(t *testing.T) {
	f := NewPFTKStandard(DefaultParams())
	g, fx := G(f), F1x(f)
	check := func(a uint16) bool {
		x := 1.001 + float64(a)/65536*99
		return math.Abs(g(x)*fx(x)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
