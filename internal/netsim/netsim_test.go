package netsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(3)
	for i := 0; i < 3; i++ {
		if !q.Enqueue(&Packet{Seq: int64(i)}, 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Enqueue(&Packet{Seq: 99}, 0) {
		t.Fatal("overfull enqueue accepted")
	}
	if q.Drops != 1 {
		t.Fatalf("drops = %d", q.Drops)
	}
	for i := 0; i < 3; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d = %+v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty dequeue should be nil")
	}
}

// An Unbounded queue must accept every packet, growing past its initial
// ring while preserving FIFO order — including across a wrapped head.
func TestUnboundedGrowsFIFO(t *testing.T) {
	q := NewUnbounded()
	// Wrap the ring head before forcing growth.
	for i := 0; i < 10; i++ {
		q.Enqueue(&Packet{Seq: -1}, 0)
	}
	for i := 0; i < 10; i++ {
		q.Dequeue(0)
	}
	const n = 500 // well past the initial capacity
	for i := 0; i < n; i++ {
		if !q.Enqueue(&Packet{Seq: int64(i)}, 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != n {
		t.Fatalf("len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d = %+v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty dequeue should be nil")
	}
}

func TestREDAcceptsBelowMinTh(t *testing.T) {
	cfg := REDConfig{Capacity: 100, MinTh: 10, MaxTh: 50, MaxP: 0.1, Wq: 0.2}
	q := NewRED(cfg, 1e6, rng.New(1))
	// With an empty queue the average stays near zero: all accepted.
	for i := 0; i < 5; i++ {
		if !q.Enqueue(&Packet{Size: 1000}, float64(i)*0.001) {
			t.Fatal("packet dropped below min threshold")
		}
		q.Dequeue(float64(i)*0.001 + 0.0005)
	}
	if q.Drops != 0 {
		t.Fatalf("drops = %d", q.Drops)
	}
}

func TestREDDropsProbabilisticallyBetweenThresholds(t *testing.T) {
	cfg := REDConfig{Capacity: 1000, MinTh: 5, MaxTh: 15, MaxP: 0.1, Wq: 0.1}
	q := NewRED(cfg, 1e6, rng.New(2))
	// Hold the queue at ~10 packets (inside [minth, maxth)) by pairing
	// each enqueue with a dequeue: early drops must appear while forced
	// drops stay absent.
	for i := 0; i < 10; i++ {
		q.Enqueue(&Packet{Size: 1000}, 0)
	}
	for i := 0; i < 2000; i++ {
		now := float64(i) * 1e-4
		if q.Enqueue(&Packet{Size: 1000}, now) {
			q.Dequeue(now)
		}
	}
	if q.EarlyDrops == 0 {
		t.Fatal("no early drops in the RED band")
	}
	if q.Drops != q.EarlyDrops {
		t.Fatalf("forced drops appeared: total %d vs early %d", q.Drops, q.EarlyDrops)
	}
}

func TestREDForcesDropsAboveMaxTh(t *testing.T) {
	cfg := REDConfig{Capacity: 1000, MinTh: 2, MaxTh: 6, MaxP: 0.1, Wq: 1.0}
	q := NewRED(cfg, 1e6, rng.New(3))
	dropped := 0
	for i := 0; i < 50; i++ {
		if !q.Enqueue(&Packet{Size: 1000}, float64(i)*1e-4) {
			dropped++
		}
	}
	// With wq=1 the average tracks the instantaneous queue: once above
	// maxth=6, every arrival is dropped (non-gentle).
	if q.Len() > 8 {
		t.Fatalf("queue length %d should stay near maxth", q.Len())
	}
	if dropped < 30 {
		t.Fatalf("dropped = %d, want most arrivals", dropped)
	}
}

func TestREDForcedAtCapacity(t *testing.T) {
	cfg := REDConfig{Capacity: 5, MinTh: 100, MaxTh: 200, MaxP: 0.1, Wq: 0.001}
	q := NewRED(cfg, 1e6, rng.New(4))
	accepted := 0
	for i := 0; i < 10; i++ {
		if q.Enqueue(&Packet{Size: 1000}, 0) {
			accepted++
		}
	}
	if accepted != 5 {
		t.Fatalf("accepted = %d, want capacity 5", accepted)
	}
}

func TestREDIdleDecay(t *testing.T) {
	cfg := REDConfig{Capacity: 100, MinTh: 5, MaxTh: 50, MaxP: 0.1, Wq: 0.1}
	q := NewRED(cfg, 1e6, rng.New(5))
	for i := 0; i < 30; i++ {
		q.Enqueue(&Packet{Size: 1000}, 0.001*float64(i))
	}
	highAvg := q.Avg()
	for q.Len() > 0 {
		q.Dequeue(0.05)
	}
	// Long idle: the average must decay substantially.
	q.Enqueue(&Packet{Size: 1000}, 10)
	if q.Avg() > highAvg/2 {
		t.Fatalf("average %v did not decay from %v after idle", q.Avg(), highAvg)
	}
}

func TestPaperRED(t *testing.T) {
	cfg := PaperRED(100)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 250 || cfg.MinTh != 25 || cfg.MaxTh != 125 {
		t.Fatalf("paper RED = %+v", cfg)
	}
	// Tiny bdp is clamped to stay valid.
	if err := PaperRED(1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkLatencyAndRate(t *testing.T) {
	var s des.Scheduler
	link := NewLink(&s, 1000, 0.1, NewDropTail(10)) // 1000 B/s, 100 ms
	var arrivals []float64
	link.Deliver = func(p *Packet) { arrivals = append(arrivals, s.Now()) }
	// Two 500-byte packets sent back to back at t=0: transmission takes
	// 0.5 s each, so deliveries at 0.6 and 1.1.
	link.Send(&Packet{Size: 500})
	link.Send(&Packet{Size: 500})
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs(arrivals[0]-0.6) > 1e-9 || math.Abs(arrivals[1]-1.1) > 1e-9 {
		t.Fatalf("arrival times = %v, want [0.6, 1.1]", arrivals)
	}
	if link.Forwarded != 2 || link.BytesForwarded != 1000 {
		t.Fatalf("counters = %d pkts %d bytes", link.Forwarded, link.BytesForwarded)
	}
}

func TestLinkThroughputCap(t *testing.T) {
	var s des.Scheduler
	link := NewLink(&s, 10000, 0.01, NewDropTail(5))
	delivered := 0
	link.Deliver = func(p *Packet) { delivered++ }
	// Offer 100 packets instantly into a queue of 5: only ~6 (1 in
	// service + 5 queued) can survive.
	for i := 0; i < 100; i++ {
		link.Send(&Packet{Size: 1000, Seq: int64(i)})
	}
	s.Run()
	if delivered > 7 {
		t.Fatalf("delivered = %d, want <= 7", delivered)
	}
	q := link.Queue().(*DropTail)
	if q.Drops != int64(100-delivered) {
		t.Fatalf("drops = %d, delivered = %d", q.Drops, delivered)
	}
}

func TestLossEventCounterGroupsWithinRTT(t *testing.T) {
	c := NewLossEventCounter(func() float64 { return 0.1 })
	if !c.OnLoss(1.0, 100) {
		t.Fatal("first loss should open an event")
	}
	// Within one RTT: same event.
	if c.OnLoss(1.05, 110) {
		t.Fatal("loss within RTT should not open a new event")
	}
	// Past one RTT: new event, interval recorded from first-seq to
	// first-seq.
	if !c.OnLoss(1.2, 150) {
		t.Fatal("loss after RTT should open a new event")
	}
	if c.Events != 2 {
		t.Fatalf("events = %d", c.Events)
	}
	if len(c.Intervals) != 1 || c.Intervals[0] != 50 {
		t.Fatalf("intervals = %v", c.Intervals)
	}
	if c.OpenInterval(170) != 20 {
		t.Fatalf("open interval = %v", c.OpenInterval(170))
	}
	if c.OpenInterval(100) != 0 {
		t.Fatal("open interval before last event seq should be 0")
	}
}

func TestPanics(t *testing.T) {
	var s des.Scheduler
	cases := []func(){
		func() { NewDropTail(0) },
		func() { NewRED(REDConfig{}, 1e6, rng.New(1)) },
		func() { NewRED(PaperRED(50), 0, rng.New(1)) },
		func() { NewRED(PaperRED(50), 1e6, nil) },
		func() { NewLink(nil, 1, 0, NewDropTail(1)) },
		func() { NewLink(&s, 0, 0, NewDropTail(1)) },
		func() { NewLink(&s, 1, -1, NewDropTail(1)) },
		func() { NewLink(&s, 1, 0, nil) },
		func() { NewLossEventCounter(nil) },
		func() {
			l := NewLink(&s, 1, 0, NewDropTail(1))
			l.Send(&Packet{Size: 1}) // no Deliver sink
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: a link never reorders packets (FIFO), for any packet sizes.
func TestQuickLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 50 {
			sizes = sizes[:50]
		}
		var s des.Scheduler
		link := NewLink(&s, 1e5, 0.01, NewDropTail(len(sizes)+1))
		var got []int64
		link.Deliver = func(p *Packet) { got = append(got, p.Seq) }
		for i, sz := range sizes {
			link.Send(&Packet{Seq: int64(i), Size: int(sz%1400) + 40})
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return len(got) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DropTail never holds more than its capacity and never drops
// while below it.
func TestQuickDropTailInvariant(t *testing.T) {
	r := rng.New(7)
	f := func(capRaw, n uint8) bool {
		capacity := int(capRaw%16) + 1
		q := NewDropTail(capacity)
		for i := 0; i < int(n); i++ {
			if r.Bernoulli(0.6) {
				before := q.Len()
				ok := q.Enqueue(&Packet{}, 0)
				if ok != (before < capacity) {
					return false
				}
			} else {
				q.Dequeue(0)
			}
			if q.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinkForward(b *testing.B) {
	var s des.Scheduler
	link := NewLink(&s, 1e9, 0.001, NewDropTail(64))
	link.Deliver = func(p *Packet) {}
	pkt := &Packet{Size: 1000}
	for i := 0; i < b.N; i++ {
		link.Send(pkt)
		s.Run()
	}
}

func TestREDConfigValidate(t *testing.T) {
	base := REDConfig{Capacity: 100, MinTh: 10, MaxTh: 50, MaxP: 0.1, Wq: 0.002}
	cases := []struct {
		name string
		mut  func(*REDConfig)
		ok   bool
	}{
		{"valid baseline", func(*REDConfig) {}, true},
		{"zero capacity", func(c *REDConfig) { c.Capacity = 0 }, false},
		{"negative capacity", func(c *REDConfig) { c.Capacity = -5 }, false},
		{"capacity of one", func(c *REDConfig) { c.Capacity = 1 }, true},
		{"zero minth", func(c *REDConfig) { c.MinTh = 0 }, false},
		{"negative minth", func(c *REDConfig) { c.MinTh = -1 }, false},
		{"maxth equals minth", func(c *REDConfig) { c.MaxTh = c.MinTh }, false},
		{"maxth below minth", func(c *REDConfig) { c.MaxTh = c.MinTh - 1 }, false},
		{"maxth just above minth", func(c *REDConfig) { c.MaxTh = c.MinTh + 1e-9 }, true},
		{"zero maxp", func(c *REDConfig) { c.MaxP = 0 }, false},
		{"maxp of one", func(c *REDConfig) { c.MaxP = 1 }, true},
		{"maxp above one", func(c *REDConfig) { c.MaxP = 1.0001 }, false},
		{"zero wq", func(c *REDConfig) { c.Wq = 0 }, false},
		{"wq of one", func(c *REDConfig) { c.Wq = 1 }, true},
		{"wq above one", func(c *REDConfig) { c.Wq = 1.5 }, false},
		{"gentle flag irrelevant", func(c *REDConfig) { c.Gentle = true }, true},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: config %+v should be rejected", tc.name, cfg)
		}
	}
}

func TestLossEventCounterOpenInterval(t *testing.T) {
	cases := []struct {
		name   string
		losses []int64 // sequence numbers fed as losses, 1 s apart
		high   int64
		want   float64
	}{
		{"no events yet", nil, 100, 0},
		{"highest at event seq", []int64{50}, 50, 0},
		{"highest below event seq", []int64{50}, 10, 0},
		{"open interval counts from last event", []int64{50}, 73, 23},
		{"second event resets the origin", []int64{50, 80}, 95, 15},
		{"highest just past event", []int64{50, 80}, 81, 1},
	}
	for _, tc := range cases {
		c := NewLossEventCounter(func() float64 { return 0.1 })
		for i, seq := range tc.losses {
			c.OnLoss(float64(i+1), seq)
		}
		if got := c.OpenInterval(tc.high); got != tc.want {
			t.Errorf("%s: OpenInterval(%d) = %v, want %v", tc.name, tc.high, got, tc.want)
		}
	}
}

func TestREDGentleMode(t *testing.T) {
	cfg := REDConfig{Capacity: 1000, MinTh: 2, MaxTh: 6, MaxP: 0.1, Wq: 1.0, Gentle: true}
	q := NewRED(cfg, 1e6, rng.New(6))
	for i := 0; i < 200; i++ {
		q.Enqueue(&Packet{Size: 1000}, float64(i)*1e-4)
	}
	// Gentle mode ramps the drop probability between maxth and 2·maxth
	// instead of force-dropping everything at maxth: the queue grows
	// past maxth (some arrivals admitted above it) before drops pin it.
	if q.Len() <= int(cfg.MaxTh) {
		t.Fatalf("gentle RED queue stuck at %d, should pass maxth %v", q.Len(), cfg.MaxTh)
	}
	if q.Drops == 0 {
		t.Fatal("gentle RED dropped nothing above maxth")
	}
}

// A Fault hook must intercept packets before the queue: dropped packets
// go through Release, are counted in FaultDrops, and never consume
// queue space or transmission time.
func TestLinkFaultHookDropsBeforeQueue(t *testing.T) {
	var s des.Scheduler
	link := NewLink(&s, 1000, 0.1, NewDropTail(10))
	delivered, released := 0, 0
	link.Deliver = func(p *Packet) { delivered++ }
	link.Release = func(p *Packet) { released++ }
	down := false
	link.Fault = func(p *Packet) bool { return down }
	link.Send(&Packet{Size: 500})
	down = true
	link.Send(&Packet{Size: 500})
	link.Send(&Packet{Size: 500})
	down = false
	link.Send(&Packet{Size: 500})
	s.Run()
	if delivered != 2 || released != 2 || link.FaultDrops != 2 {
		t.Fatalf("delivered=%d released=%d faultDrops=%d, want 2/2/2",
			delivered, released, link.FaultDrops)
	}
	if link.InFlight() != 0 {
		t.Fatalf("in flight = %d after drain", link.InFlight())
	}
}

// FlushQueue must discard exactly the queued packets: the one being
// serialized and any propagating packets still arrive, and every
// flushed packet goes through Release so ledgers stay balanced.
func TestLinkFlushQueue(t *testing.T) {
	var s des.Scheduler
	link := NewLink(&s, 1000, 0.1, NewDropTail(10))
	delivered, released := 0, 0
	link.Deliver = func(p *Packet) { delivered++ }
	link.Release = func(p *Packet) { released++ }
	for i := 0; i < 5; i++ {
		link.Send(&Packet{Size: 500, Seq: int64(i)})
	}
	// One packet is serializing, four are queued.
	if n := link.FlushQueue(); n != 4 {
		t.Fatalf("flushed %d, want 4", n)
	}
	if link.FaultDrops != 4 || released != 4 {
		t.Fatalf("faultDrops=%d released=%d, want 4/4", link.FaultDrops, released)
	}
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want the in-service packet only", delivered)
	}
	if link.InFlight() != 0 {
		t.Fatalf("in flight = %d after drain", link.InFlight())
	}
}

// The unbounded queue tracks its high-water mark and converts runaway
// growth into a diagnosed panic at the hard cap.
func TestUnboundedHighWaterAndCap(t *testing.T) {
	q := NewUnbounded()
	q.Cap = 8
	for i := 0; i < 8; i++ {
		q.Enqueue(&Packet{}, 0)
	}
	if q.HighWater != 8 {
		t.Fatalf("high water = %d, want 8", q.HighWater)
	}
	q.Dequeue(0)
	q.Enqueue(&Packet{}, 0) // back at the cap, not over it
	if q.HighWater != 8 {
		t.Fatalf("high water = %d after re-fill, want 8", q.HighWater)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("enqueue past the cap did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "hard cap") {
			t.Fatalf("panic %q does not diagnose the cap", msg)
		}
	}()
	q.Enqueue(&Packet{}, 0)
}
