package netsim

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
)

// This file is the netsim half of the snapshot protocol: packets, queue
// disciplines, links (with their in-flight pipelines) and loss-event
// counters serialize their numeric state in a fixed field order. Restore
// always runs against a freshly rebuilt object — the declarative build
// path supplies configuration (capacities, rates, callbacks); restore
// overlays only what running the simulation mutated.

// SavePacket writes every field of a packet.
func SavePacket(w *checkpoint.Writer, p *Packet) {
	w.Int(p.Flow)
	w.I64(p.Seq)
	w.Int(p.Size)
	w.F64(p.SentAt)
	w.Int(int(p.Kind))
	w.I64(p.AckSeq)
	w.F64(p.Echo)
	w.F64(p.LossRate)
	w.F64(p.RecvRate)
	w.F64(p.RTTEst)
	w.I64(int64(p.Hop))
	w.Bool(p.Rev)
}

// RestorePacket reads a packet record written by SavePacket into p.
func RestorePacket(r *checkpoint.Reader, p *Packet) {
	p.Flow = r.Int()
	p.Seq = r.I64()
	p.Size = r.Int()
	p.SentAt = r.F64()
	p.Kind = PacketKind(r.Int())
	p.AckSeq = r.I64()
	p.Echo = r.F64()
	p.LossRate = r.F64()
	p.RecvRate = r.F64()
	p.RTTEst = r.F64()
	p.Hop = int32(r.I64())
	p.Rev = r.Bool()
}

// Queue discipline tags, written ahead of each queue's state so a
// restore against a differently configured rebuild fails loudly.
const (
	queueTagDropTail  = 1
	queueTagUnbounded = 2
	queueTagRED       = 3
)

// SaveQueue writes a queue's discipline tag, counters and contents.
func SaveQueue(w *checkpoint.Writer, q Queue) {
	switch t := q.(type) {
	case *DropTail:
		w.U8(queueTagDropTail)
		w.I64(t.Drops)
		saveRing(w, &t.ring)
	case *Unbounded:
		w.U8(queueTagUnbounded)
		w.Int(t.HighWater)
		saveRing(w, &t.ring)
	case *RED:
		w.U8(queueTagRED)
		w.F64(t.avg)
		w.Int(t.count)
		w.F64(t.idleAt)
		w.Bool(t.idle)
		w.F64(t.meanPkt)
		st := t.random.State()
		for _, word := range st {
			w.U64(word)
		}
		w.I64(t.Drops)
		w.I64(t.EarlyDrops)
		saveRing(w, &t.ring)
	default:
		panic("netsim: SaveQueue on an unknown queue discipline")
	}
}

// RestoreQueue overlays saved state onto a freshly rebuilt queue of the
// same discipline. Packets are drawn through get (the network freelist),
// so the caller's ledger overlay settles the issued/returned counts.
func RestoreQueue(r *checkpoint.Reader, q Queue, get func() *Packet) {
	tag := r.U8()
	if r.Err() != nil {
		return
	}
	switch t := q.(type) {
	case *DropTail:
		if tag != queueTagDropTail {
			r.Fail("queue discipline mismatch: saved tag %d, rebuilt DropTail", tag)
			return
		}
		t.Drops = r.I64()
		n := r.Count()
		if n > len(t.ring.buf) {
			r.Fail("DropTail holds %d packets, rebuilt capacity %d", n, len(t.ring.buf))
			return
		}
		restoreRingPackets(r, &t.ring, n, get)
	case *Unbounded:
		if tag != queueTagUnbounded {
			r.Fail("queue discipline mismatch: saved tag %d, rebuilt Unbounded", tag)
			return
		}
		hw := r.Int()
		n := r.Count()
		for t.ring.count+n > len(t.ring.buf) {
			t.ring.grow()
		}
		restoreRingPackets(r, &t.ring, n, get)
		t.HighWater = hw
	case *RED:
		if tag != queueTagRED {
			r.Fail("queue discipline mismatch: saved tag %d, rebuilt RED", tag)
			return
		}
		t.avg = r.F64()
		t.count = r.Int()
		t.idleAt = r.F64()
		t.idle = r.Bool()
		t.meanPkt = r.F64()
		var st [4]uint64
		for i := range st {
			st[i] = r.U64()
		}
		t.Drops = r.I64()
		t.EarlyDrops = r.I64()
		n := r.Count()
		if n > len(t.ring.buf) {
			r.Fail("RED holds %d packets, rebuilt capacity %d", n, len(t.ring.buf))
			return
		}
		restoreRingPackets(r, &t.ring, n, get)
		if r.Err() == nil {
			t.random.SetState(st)
		}
	default:
		r.Fail("RestoreQueue on an unknown queue discipline (saved tag %d)", tag)
	}
}

func saveRing(w *checkpoint.Writer, ring *pktRing) {
	w.Int(ring.count)
	for i := 0; i < ring.count; i++ {
		SavePacket(w, ring.buf[(ring.head+i)%len(ring.buf)])
	}
}

func restoreRingPackets(r *checkpoint.Reader, ring *pktRing, n int, get func() *Packet) {
	if ring.count != 0 {
		r.Fail("restoring into a non-empty queue (%d packets)", ring.count)
		return
	}
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		p := get()
		RestorePacket(r, p)
		ring.push(p)
	}
}

// Save writes the link's mutated state: effective rate (fault SetRate
// events change it), busy flag, forwarding counters, the queue, the
// packet being serialized and the propagation pipeline, each with its
// pending timer resolved through cap.
func (l *Link) Save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.F64(l.Rate)
	w.Bool(l.busy)
	w.I64(l.FaultDrops)
	w.I64(l.Forwarded)
	w.I64(l.BytesForwarded)
	SaveQueue(w, l.queue)
	w.Bool(l.txPkt != nil)
	if l.txPkt != nil {
		SavePacket(w, l.txPkt)
		w.Timer(cap.StateOf(l.txTm))
	}
	w.Int(l.propLen)
	for i := 0; i < l.propLen; i++ {
		e := l.prop[(l.propHead+i)%len(l.prop)]
		SavePacket(w, e.p)
		w.Timer(cap.StateOf(e.tm))
	}
}

// Restore overlays saved state onto a freshly rebuilt link and re-arms
// the serialization and delivery timers with their original identities.
func (l *Link) Restore(r *checkpoint.Reader, get func() *Packet) {
	l.Rate = r.F64()
	l.busy = r.Bool()
	l.FaultDrops = r.I64()
	l.Forwarded = r.I64()
	l.BytesForwarded = r.I64()
	RestoreQueue(r, l.queue, get)
	if r.Bool() {
		p := get()
		RestorePacket(r, p)
		st := r.Timer()
		if r.Err() != nil {
			return
		}
		if !st.OK {
			r.Fail("serializing packet saved without a live tx timer")
			return
		}
		l.txPkt = p
		l.txTm = l.sched.RestoreTimer(st, l.onTxDoneFn)
	}
	n := r.Count()
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		p := get()
		RestorePacket(r, p)
		st := r.Timer()
		if !st.OK {
			r.Fail("propagating packet saved without a live delivery timer")
			return
		}
		l.propPush(p, l.sched.RestoreTimer(st, l.deliverOldestFn))
	}
}

// Save writes the loss-event counter's grouping state and interval
// history.
func (c *LossEventCounter) Save(w *checkpoint.Writer) {
	w.Bool(c.eventOpen)
	w.F64(c.eventStart)
	w.I64(c.eventSeq)
	w.I64(c.lastEventSeq)
	w.I64(c.Events)
	w.Int(len(c.Intervals))
	for _, v := range c.Intervals {
		w.F64(v)
	}
}

// Restore overlays a counter saved by Save. The rtt source stays the
// rebuilt one.
func (c *LossEventCounter) Restore(r *checkpoint.Reader) {
	c.eventOpen = r.Bool()
	c.eventStart = r.F64()
	c.eventSeq = r.I64()
	c.lastEventSeq = r.I64()
	c.Events = r.I64()
	n := r.Count()
	c.Intervals = c.Intervals[:0]
	for i := 0; i < n; i++ {
		c.Intervals = append(c.Intervals, r.F64())
	}
}
