// Package netsim provides the packet-level primitives of the network
// simulator built on the discrete-event engine (package des): links with
// finite rate and propagation delay, DropTail and RED queues, endpoints,
// loss-event accounting and unresponsive cross-traffic sources. Package
// topology assembles these primitives into network graphs (the paper's
// dumbbell is the two-node special case).
//
// Conventions: sizes are in bytes, rates in bytes/second, times in
// seconds. Queues are FIFO, so a same-path packet stream is never
// reordered; protocols may treat sequence gaps as losses immediately.
//
// Packet memory is recycled: sources draw packets from the network's
// freelist (Network.GetPacket) and the simulator returns them after the
// destination endpoint's Receive returns, or at the drop point for
// packets rejected by a queue. Endpoints must therefore copy out any
// field they need and never retain a *Packet past Receive.
package netsim

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/rng"
)

// PacketKind distinguishes the payload types carried in the simulator.
type PacketKind int

// Packet kinds.
const (
	// Data is a forward-path payload packet.
	Data PacketKind = iota
	// Ack is a TCP cumulative acknowledgment.
	Ack
	// Feedback is a TFRC receiver report.
	Feedback
)

// Packet is the unit of transmission. Protocol-specific fields are
// folded in directly; unused fields are zero.
type Packet struct {
	// Flow identifies the flow the packet belongs to.
	Flow int
	// Seq is the packet sequence number (in packets, starting at 0).
	Seq int64
	// Size is the wire size in bytes.
	Size int
	// SentAt is the simulated time the packet left the sender.
	SentAt float64
	// Kind is the payload type.
	Kind PacketKind
	// AckSeq is the cumulative acknowledgment (next expected seq) for
	// Ack packets.
	AckSeq int64
	// Echo carries the timestamp being echoed back for RTT measurement.
	Echo float64
	// LossRate and RecvRate carry TFRC feedback (p estimate and
	// measured receive rate in bytes/second).
	LossRate, RecvRate float64
	// RTTEst carries the sender's current round-trip-time estimate on
	// data packets, so the TFRC receiver can group losses into events.
	RTTEst float64
	// Hop is the index of the route hop the packet is currently
	// traversing. It is routing state owned by the topology layer;
	// sources and endpoints never touch it.
	Hop int32
	// Rev marks a packet traversing its flow's routed reverse path
	// (feedback and acknowledgments crossing real queues). Like Hop it
	// is routing state owned by the topology layer; sources and
	// endpoints never touch it.
	Rev bool
}

// Network is the interface protocols (tfrc, tcp, cbr, cross traffic)
// program against: a packet pool, forward-path injection, a reverse
// path, and flow attachment. Package topology provides the
// implementations — the general network graph and the dumbbell as its
// two-node special case. The reverse path is a pure per-flow delay by
// default; a topology may route it through real links and queues
// (SetReverseRoute), in which case feedback and acknowledgments are
// queued, delayed, and dropped like any other traffic.
type Network interface {
	// GetPacket returns a zeroed packet from the freelist.
	GetPacket() *Packet
	// PutPacket returns a packet to the freelist. The network recycles
	// packets itself after delivery and on drops; only sources that
	// abandon a packet before sending need this.
	PutPacket(p *Packet)
	// SendForward injects a forward-path packet at the first hop of its
	// flow's route.
	SendForward(p *Packet)
	// SendReverse carries a packet from the receiver back to the
	// sender: over the flow's routed reverse path (hop by hop through
	// real queues, so the packet may be dropped) when one is declared,
	// otherwise over the uncongested pure-delay reverse path.
	SendReverse(p *Packet)
	// AttachFlow registers a flow's endpoints and path delays: fwdExtra
	// is the one-way delay from the last routed link's egress to the
	// receiver; revDelay is the full uncongested return delay.
	AttachFlow(flow int, sender, receiver Endpoint, fwdExtra, revDelay float64)
}

// Traced is the optional interface a Network implementation exposes
// when an event tracer is attached to its scheduling domain. Protocol
// endpoints query it once at construction and keep the (possibly nil)
// tracer; every obs.Tracer method is nil-safe, so the disabled case
// costs one predictable branch at each rare-event site and nothing on
// the per-packet path. On the sharded engine each endpoint resolves the
// tracer of the shard it is scheduled on, which keeps emission
// single-threaded without synchronization.
type Traced interface {
	// Tracer returns the domain's event tracer, or nil when tracing is
	// off.
	Tracer() *obs.Tracer
}

// TracerOf resolves the event tracer behind a Network, or nil when the
// network does not carry one.
func TracerOf(n Network) *obs.Tracer {
	if t, ok := n.(Traced); ok {
		return t.Tracer()
	}
	return nil
}

// Queue buffers packets in front of a link and decides drops.
type Queue interface {
	// Enqueue offers a packet; it returns false if the packet is
	// dropped.
	Enqueue(p *Packet, now float64) bool
	// Dequeue removes the head packet, or returns nil when empty.
	Dequeue(now float64) *Packet
	// Len returns the number of queued packets.
	Len() int
}

// QueueStats reports the drop counters and occupancy high-water mark a
// queue discipline maintains: full-queue (and RED forced) drops, RED
// probabilistic early drops, and the deepest occupancy seen (tracked
// only by Unbounded; -1 for disciplines that do not track it). It is
// the one type switch the observability layer needs to sample any
// discipline uniformly.
func QueueStats(q Queue) (drops, earlyDrops int64, highWater int) {
	switch t := q.(type) {
	case *DropTail:
		return t.Drops, 0, -1
	case *RED:
		return t.Drops, t.EarlyDrops, -1
	case *Unbounded:
		return 0, 0, t.HighWater
	default:
		return 0, 0, -1
	}
}

// pktRing is a fixed-capacity circular FIFO of packets — the buffer
// behind both queue disciplines, sized once at construction so the
// steady-state enqueue/dequeue path never allocates.
type pktRing struct {
	buf   []*Packet
	head  int
	count int
}

func newPktRing(capacity int) pktRing { return pktRing{buf: make([]*Packet, capacity)} }

func (r *pktRing) push(p *Packet) {
	r.buf[(r.head+r.count)%len(r.buf)] = p
	r.count++
}

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return p
}

// grow doubles the ring's capacity, preserving FIFO order.
func (r *pktRing) grow() {
	nb := make([]*Packet, 2*len(r.buf))
	for i := 0; i < r.count; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

// DropTail is a FIFO queue with a fixed capacity in packets.
type DropTail struct {
	ring pktRing
	// Drops counts packets rejected at enqueue.
	Drops int64
}

// NewDropTail returns a DropTail queue holding at most capacity packets.
func NewDropTail(capacity int) *DropTail {
	if capacity < 1 {
		panic("netsim: DropTail capacity must be >= 1")
	}
	return &DropTail{ring: newPktRing(capacity)}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet, _ float64) bool {
	if q.ring.count >= len(q.ring.buf) {
		q.Drops++
		return false
	}
	q.ring.push(p)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(_ float64) *Packet {
	if q.ring.count == 0 {
		return nil
	}
	return q.ring.pop()
}

// Len implements Queue.
func (q *DropTail) Len() int { return q.ring.count }

// DefaultUnboundedCap is the hard occupancy cap an Unbounded queue
// enforces when Cap is left zero. A queue this deep means the drain has
// been starved for far longer than any plausible simulation transient
// (an outage upstream, a renegotiated rate near zero), so growing
// further would only trade a diagnosable failure for a silent OOM.
const DefaultUnboundedCap = 1 << 20

// Unbounded is a FIFO queue that never drops: the ring grows on demand.
// It models an ideal infinite-buffer hop — a link that imposes
// serialization and propagation but no loss — such as the default queue
// of a mirrored reverse path. "Never drops" is bounded by Cap: a queue
// that deep is runaway growth, not buffering, and panics with a
// diagnosis instead of eating the heap.
type Unbounded struct {
	ring pktRing
	// HighWater is the maximum occupancy the queue has reached, in
	// packets. Fault runs surface it to show how far a starved hop
	// backed up.
	HighWater int
	// Cap bounds the occupancy; zero applies DefaultUnboundedCap.
	// Exceeding the cap panics (a diagnosed run error through the
	// runner's recover) rather than growing toward OOM.
	Cap int
}

// NewUnbounded returns an empty unbounded FIFO queue.
func NewUnbounded() *Unbounded { return &Unbounded{ring: newPktRing(64)} }

// Enqueue implements Queue; it never rejects a packet, but panics once
// the occupancy exceeds the hard cap.
func (q *Unbounded) Enqueue(p *Packet, _ float64) bool {
	limit := q.Cap
	if limit <= 0 {
		limit = DefaultUnboundedCap
	}
	if q.ring.count >= limit {
		panic(fmt.Sprintf("netsim: unbounded queue exceeded its hard cap (%d packets): the drain has been starved far beyond any transient (link outage or near-zero renegotiated rate upstream?)", limit))
	}
	if q.ring.count == len(q.ring.buf) {
		q.ring.grow()
	}
	q.ring.push(p)
	if q.ring.count > q.HighWater {
		q.HighWater = q.ring.count
	}
	return true
}

// Dequeue implements Queue.
func (q *Unbounded) Dequeue(_ float64) *Packet {
	if q.ring.count == 0 {
		return nil
	}
	return q.ring.pop()
}

// Len implements Queue.
func (q *Unbounded) Len() int { return q.ring.count }

// REDConfig holds the RED active-queue-management parameters, mirroring
// the knobs the paper sets in its ns-2 and lab experiments.
type REDConfig struct {
	// Capacity is the physical buffer length in packets.
	Capacity int
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop probability as the average reaches MaxTh
	// (the paper's lab runs use 1/10).
	MaxP float64
	// Wq is the EWMA constant of the average queue (paper: 0.002).
	Wq float64
	// Gentle, when false (as in the paper's lab runs), drops every
	// packet once the average exceeds MaxTh.
	Gentle bool
}

// Validate reports an error for out-of-range RED parameters.
func (c REDConfig) Validate() error {
	if c.Capacity < 1 || c.MinTh <= 0 || c.MaxTh <= c.MinTh ||
		c.MaxP <= 0 || c.MaxP > 1 || c.Wq <= 0 || c.Wq > 1 {
		return fmt.Errorf("netsim: invalid RED config %+v", c)
	}
	return nil
}

// PaperRED returns the RED configuration used in the paper's ns-2 runs,
// scaled from a bandwidth-delay product expressed in packets: buffer
// 5/2·bdp, min threshold 1/4·bdp, max threshold 5/4·bdp, wq 0.002,
// maxP 0.1, non-gentle.
func PaperRED(bdpPackets float64) REDConfig {
	if bdpPackets < 4 {
		bdpPackets = 4
	}
	return REDConfig{
		Capacity: int(2.5 * bdpPackets),
		MinTh:    0.25 * bdpPackets,
		MaxTh:    1.25 * bdpPackets,
		MaxP:     0.1,
		Wq:       0.002,
		Gentle:   false,
	}
}

// RED is the classic random-early-detection queue (non-gentle by
// default), with the standard EWMA average including the idle-time
// correction.
type RED struct {
	cfg      REDConfig
	ring     pktRing
	avg      float64
	count    int // packets since last drop while in [minth, maxth)
	idleAt   float64
	idle     bool
	meanPkt  float64 // running mean packet transmission estimate
	linkRate float64 // bytes/sec, for idle correction
	random   *rng.RNG
	// Drops counts packets rejected at enqueue (early + forced).
	Drops int64
	// EarlyDrops counts probabilistic (unforced) drops.
	EarlyDrops int64
}

// NewRED returns a RED queue. linkRate (bytes/second) calibrates the
// idle-time averaging correction; random drives the drop lottery.
func NewRED(cfg REDConfig, linkRate float64, random *rng.RNG) *RED {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if linkRate <= 0 {
		panic("netsim: non-positive link rate for RED")
	}
	if random == nil {
		panic("netsim: RED needs a random source")
	}
	return &RED{
		cfg: cfg, ring: newPktRing(cfg.Capacity),
		linkRate: linkRate, random: random, idle: true, meanPkt: 1000,
	}
}

// Avg returns the current average queue estimate in packets.
func (q *RED) Avg() float64 { return q.avg }

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet, now float64) bool {
	// Update the average. After an idle period the average decays as if
	// m small packets had been dequeued (RFC 2309-era RED).
	if q.idle {
		q.meanPkt = 0.9*q.meanPkt + 0.1*float64(p.Size)
		m := (now - q.idleAt) * q.linkRate / q.meanPkt
		if m > 0 {
			decay := 1.0
			for i := 0; i < int(m) && i < 1000; i++ {
				decay *= 1 - q.cfg.Wq
			}
			q.avg *= decay
		}
		q.idle = false
	}
	q.avg = (1-q.cfg.Wq)*q.avg + q.cfg.Wq*float64(q.ring.count)

	drop := false
	forced := false
	switch {
	case q.ring.count >= q.cfg.Capacity:
		drop, forced = true, true
	case q.avg < q.cfg.MinTh:
		// accept
	case q.avg >= q.cfg.MaxTh:
		if q.cfg.Gentle {
			// Linear ramp from MaxP to 1 between maxth and 2*maxth.
			pb := q.cfg.MaxP + (q.avg-q.cfg.MaxTh)/q.cfg.MaxTh*(1-q.cfg.MaxP)
			if pb >= 1 || q.random.Float64() < pb {
				drop = true
			}
		} else {
			drop, forced = true, true
		}
	default:
		pb := q.cfg.MaxP * (q.avg - q.cfg.MinTh) / (q.cfg.MaxTh - q.cfg.MinTh)
		// Uniformize inter-drop spacing with the count correction.
		denom := 1 - float64(q.count)*pb
		if denom <= 0 {
			drop = true
		} else if q.random.Float64() < pb/denom {
			drop = true
		}
	}
	if drop {
		q.Drops++
		if !forced {
			q.EarlyDrops++
		}
		q.count = 0
		return false
	}
	if q.avg >= q.cfg.MinTh {
		q.count++
	} else {
		q.count = 0
	}
	q.ring.push(p)
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue(now float64) *Packet {
	if q.ring.count == 0 {
		return nil
	}
	p := q.ring.pop()
	if q.ring.count == 0 {
		q.idle = true
		q.idleAt = now
	}
	return p
}

// Len implements Queue.
func (q *RED) Len() int { return q.ring.count }

// Link transmits packets from its queue at a fixed rate and delivers
// them after a propagation delay. Deliver must be set before any Send.
//
// The transmission and propagation pipeline is driven by two callbacks
// preallocated at construction; the packets in flight between
// transmission completion and delivery wait in a circular buffer, so the
// steady-state forwarding path performs no per-packet allocations.
type Link struct {
	sched *des.Scheduler
	// Rate is the transmission rate in bytes/second.
	Rate float64
	// Delay is the one-way propagation delay in seconds.
	Delay float64
	queue Queue
	busy  bool
	// Deliver receives each packet after transmission + propagation.
	Deliver func(*Packet)
	// Release, when set, receives packets rejected by the queue so
	// their memory can be recycled (the dumbbell points it at its
	// packet freelist). Unset, dropped packets are left to the GC.
	Release func(*Packet)
	// Fault, when set, inspects every packet offered to the link before
	// the queue sees it; returning true drops the packet (counted in
	// FaultDrops, recycled through Release). The fault-injection layer
	// (internal/fault) installs it to model link outages and bursty loss
	// processes; nil — the default — costs one branch per Send.
	Fault func(*Packet) bool
	// FaultDrops counts packets dropped by the Fault hook, including
	// queued packets discarded by FlushQueue.
	FaultDrops int64
	// Handoff, when set, replaces the propagation stage: at
	// serialization end the packet is handed off instead of entering the
	// propagation pipeline, and no delivery event is scheduled on this
	// link's scheduler. A space-parallel executor sets it on links whose
	// destination lives in another shard — the receiving shard schedules
	// the arrival (at handoff time + Delay) itself, so the propagation
	// delay becomes the conservative lookahead across the cut. Handed-off
	// packets count as Forwarded but never as InFlight.
	Handoff func(*Packet)
	// Forwarded counts packets fully transmitted.
	Forwarded int64
	// BytesForwarded counts bytes fully transmitted.
	BytesForwarded int64

	txPkt *Packet   // the packet currently being serialized
	txTm  des.Timer // its serialization-completion timer
	// prop pairs each propagating packet with its delivery timer, so a
	// checkpoint can translate the pipeline into (packet, timer) records.
	prop                        []propEntry
	propHead, propLen           int
	onTxDoneFn, deliverOldestFn des.Event
}

// propEntry is one packet in the propagation pipeline with the timer
// that will deliver it.
type propEntry struct {
	p  *Packet
	tm des.Timer
}

// NewLink builds a link with the given rate (bytes/second), propagation
// delay and queue.
func NewLink(sched *des.Scheduler, rate, delay float64, queue Queue) *Link {
	if sched == nil || queue == nil {
		panic("netsim: link needs a scheduler and a queue")
	}
	if rate <= 0 || delay < 0 {
		panic("netsim: invalid link rate/delay")
	}
	l := &Link{sched: sched, Rate: rate, Delay: delay, queue: queue}
	l.onTxDoneFn = l.onTxDone
	l.deliverOldestFn = l.deliverOldest
	return l
}

// Queue exposes the link's queue (for inspection in tests/experiments).
func (l *Link) Queue() Queue { return l.queue }

// InFlight returns the number of packets currently held by the link:
// queued, being serialized, or propagating. Together with pending
// deliveries this is the denominator of the freelist leak invariant.
func (l *Link) InFlight() int {
	n := l.queue.Len() + l.propLen
	if l.txPkt != nil {
		n++
	}
	return n
}

// Accepted returns the number of packets the link has taken in so far:
// forwarded plus currently queued or serializing. Unlike InFlight it
// excludes the propagation stage, whose accounting moves to the
// destination shard when the link is cut (Handoff) — so the value is
// identical on the serial and sharded engines at any barrier-aligned
// instant, which keeps offered-load ratios byte-stable across executor
// modes.
func (l *Link) Accepted() int64 {
	n := l.Forwarded + int64(l.queue.Len())
	if l.txPkt != nil {
		n++
	}
	return n
}

// Send offers a packet to the link. Dropped packets disappear silently
// (the queue records them; Release recycles them when set).
func (l *Link) Send(p *Packet) {
	if l.Deliver == nil {
		panic("netsim: link has no Deliver sink")
	}
	if l.Fault != nil && l.Fault(p) {
		l.FaultDrops++
		if l.Release != nil {
			l.Release(p)
		}
		return
	}
	if !l.queue.Enqueue(p, l.sched.Now()) {
		if l.Release != nil {
			l.Release(p)
		}
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// FlushQueue discards every queued packet through the Release sink and
// returns the count (also added to FaultDrops). The packet being
// serialized and those already propagating are untouched — their bits
// are on the wire and still arrive. The fault layer calls this when a
// link goes down under the Flush policy; the freelist ledger stays
// balanced because Release recycles each packet at the drop point,
// exactly like a queue rejection.
func (l *Link) FlushQueue() int {
	n := 0
	for {
		p := l.queue.Dequeue(l.sched.Now())
		if p == nil {
			break
		}
		if l.Release != nil {
			l.Release(p)
		}
		n++
	}
	l.FaultDrops += int64(n)
	return n
}

func (l *Link) transmitNext() {
	p := l.queue.Dequeue(l.sched.Now())
	if p == nil {
		l.busy = false
		l.txPkt = nil
		return
	}
	l.busy = true
	l.txPkt = p
	l.txTm = l.sched.After(float64(p.Size)/l.Rate, l.onTxDoneFn)
}

// onTxDone fires when the serialization of txPkt completes: the packet
// enters propagation (in parallel with the next transmission).
func (l *Link) onTxDone() {
	p := l.txPkt
	l.Forwarded++
	l.BytesForwarded += int64(p.Size)
	if l.Handoff != nil {
		l.Handoff(p)
	} else {
		l.propPush(p, l.sched.After(l.Delay, l.deliverOldestFn))
	}
	l.transmitNext()
}

// deliverOldest hands the head of the propagation pipeline to the sink.
// Transmission completions are strictly ordered in time and propagation
// delay is constant, so deliveries pop in FIFO order.
func (l *Link) deliverOldest() {
	l.Deliver(l.propPop())
}

func (l *Link) propPush(p *Packet, tm des.Timer) {
	if l.propLen == len(l.prop) {
		grown := make([]propEntry, max(8, 2*len(l.prop)))
		for i := 0; i < l.propLen; i++ {
			grown[i] = l.prop[(l.propHead+i)%len(l.prop)]
		}
		l.prop = grown
		l.propHead = 0
	}
	l.prop[(l.propHead+l.propLen)%len(l.prop)] = propEntry{p, tm}
	l.propLen++
}

func (l *Link) propPop() *Packet {
	p := l.prop[l.propHead].p
	l.prop[l.propHead] = propEntry{}
	l.propHead = (l.propHead + 1) % len(l.prop)
	l.propLen--
	return p
}

// Endpoint consumes delivered packets.
type Endpoint interface {
	// Receive handles one packet addressed to this endpoint. The packet
	// is recycled when Receive returns: copy fields out, never retain p.
	Receive(p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet)

// Receive implements Endpoint.
func (f EndpointFunc) Receive(p *Packet) { f(p) }

// LossEventCounter groups packet losses into loss events the TFRC way:
// losses within one RTT of the first loss of an event belong to that
// event. It also records the loss-event intervals in packets.
type LossEventCounter struct {
	rtt          func() float64
	eventOpen    bool
	eventStart   float64
	eventSeq     int64
	lastEventSeq int64
	// Events is the number of loss events registered.
	Events int64
	// Intervals are the closed loss-event intervals in packets.
	Intervals []float64
}

// NewLossEventCounter builds a counter; rtt supplies the current
// round-trip-time estimate used for grouping.
func NewLossEventCounter(rtt func() float64) *LossEventCounter {
	if rtt == nil {
		panic("netsim: loss event counter needs an rtt source")
	}
	return &LossEventCounter{rtt: rtt, lastEventSeq: -1}
}

// Reset returns the counter to its just-constructed state, keeping the
// rtt source and the Intervals buffer's capacity, so pooled receivers
// (the churn engine's recycled endpoints) renew without allocating.
func (c *LossEventCounter) Reset() {
	c.eventOpen = false
	c.eventStart = 0
	c.eventSeq = 0
	c.lastEventSeq = -1
	c.Events = 0
	c.Intervals = c.Intervals[:0]
}

// OnLoss reports a packet loss detected at the given time for the given
// sequence number. It returns true if the loss opened a new loss event.
func (c *LossEventCounter) OnLoss(now float64, seq int64) bool {
	if c.eventOpen && now < c.eventStart+c.rtt() {
		return false
	}
	c.eventOpen = true
	c.eventStart = now
	c.Events++
	if c.lastEventSeq >= 0 && seq > c.lastEventSeq {
		c.Intervals = append(c.Intervals, float64(seq-c.lastEventSeq))
	}
	c.lastEventSeq = seq
	c.eventSeq = seq
	return true
}

// OpenInterval returns the packets elapsed in the currently open
// interval given the highest sequence seen.
func (c *LossEventCounter) OpenInterval(highestSeq int64) float64 {
	if c.lastEventSeq < 0 || highestSeq <= c.lastEventSeq {
		return 0
	}
	return float64(highestSeq - c.lastEventSeq)
}
