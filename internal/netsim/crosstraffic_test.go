package netsim

import (
	"math"
	"testing"

	"repro/internal/des"
)

func TestCrossTrafficMeanRate(t *testing.T) {
	var s des.Scheduler
	link := NewLink(&s, 1e9, 0, NewDropTail(1<<20))
	net := NewDumbbell(&s, link)
	ct := NewCrossTraffic(&s, net, 99, 1.25e6, 20, 1.5, 0.05, 1000, 7)
	ct.Start()
	s.RunUntil(2000)
	offered := float64(ct.PacketsSent) * 1000 / 2000
	want := ct.MeanRate()
	// Pareto bursts converge slowly; accept 25%.
	if math.Abs(offered-want)/want > 0.25 {
		t.Fatalf("offered %v B/s, analytic mean %v", offered, want)
	}
	if ct.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestCrossTrafficUnattachedFlowHarmless(t *testing.T) {
	// Cross-traffic packets terminate at the bottleneck without a
	// receiver and must not panic or leak into other flows.
	var s des.Scheduler
	link := NewLink(&s, 1e6, 0.001, NewDropTail(50))
	net := NewDumbbell(&s, link)
	got := 0
	net.AttachFlow(1, EndpointFunc(func(*Packet) {}),
		EndpointFunc(func(p *Packet) {
			if p.Flow != 1 {
				t.Errorf("foreign packet leaked: flow %d", p.Flow)
			}
			got++
		}), 0, 0)
	ct := NewCrossTraffic(&s, net, 99, 5e5, 10, 1.5, 0.02, 1000, 8)
	ct.Start()
	net.SendForward(&Packet{Flow: 1, Size: 100})
	s.RunUntil(5)
	if got != 1 {
		t.Fatalf("flow 1 deliveries = %d, want 1", got)
	}
}

func TestCrossTrafficBursty(t *testing.T) {
	// The on/off structure must produce idle gaps much longer than the
	// in-burst gaps.
	var s des.Scheduler
	link := NewLink(&s, 1e9, 0, NewDropTail(1<<20))
	net := NewDumbbell(&s, link)
	ct := NewCrossTraffic(&s, net, 99, 1.25e6, 50, 1.5, 0.1, 1000, 9)
	var times []float64
	inner := link.Deliver
	link.Deliver = func(p *Packet) {
		times = append(times, s.Now())
		inner(p)
	}
	ct.Start()
	s.RunUntil(100)
	if len(times) < 100 {
		t.Fatalf("too few packets: %d", len(times))
	}
	inBurst := 1000.0 / 1.25e6
	long := 0
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] > 10*inBurst {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no off periods observed")
	}
	if long > len(times)/2 {
		t.Fatalf("no bursts: %d of %d gaps are long", long, len(times))
	}
}

func TestCrossTrafficPanics(t *testing.T) {
	var s des.Scheduler
	net := NewDumbbell(&s, NewLink(&s, 1e6, 0, NewDropTail(10)))
	cases := []func(){
		func() { NewCrossTraffic(nil, net, 1, 1e6, 10, 1.5, 0.1, 1000, 1) },
		func() { NewCrossTraffic(&s, net, 1, 0, 10, 1.5, 0.1, 1000, 1) },
		func() { NewCrossTraffic(&s, net, 1, 1e6, 0, 1.5, 0.1, 1000, 1) },
		func() { NewCrossTraffic(&s, net, 1, 1e6, 10, 1, 0.1, 1000, 1) },
		func() { NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0, 1000, 1) },
		func() { NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0.1, 0, 1) },
		func() {
			ct := NewCrossTraffic(&s, net, 1, 1e6, 10, 1.5, 0.1, 1000, 1)
			ct.Start()
			ct.Start()
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
