package netsim

import (
	"repro/internal/des"
	"repro/internal/rng"
)

// CrossTraffic injects unresponsive background load at the bottleneck:
// an on/off source whose on-period burst sizes are Pareto distributed
// (heavy-tailed, the standard model for web-like cross traffic) and
// whose off periods are exponential. During an on period it emits
// packets back to back at PeakRate. Packets carry a flow id that is not
// attached to any receiver, so they vanish at the end of their route
// (the bottleneck on a dumbbell, or wherever the topology sinks them) —
// exactly the role of cross traffic in the paper's wide-area paths.
type CrossTraffic struct {
	sched *des.Scheduler
	net   Network
	// Flow is the (unattached) flow id used for the packets.
	Flow int
	// PeakRate is the on-period send rate in bytes/second.
	PeakRate float64
	// MeanBurst is the mean on-period burst size in packets.
	MeanBurst float64
	// ParetoShape is the burst-size tail index (1 < shape <= 2 gives
	// the heavy tails observed for flow sizes; 1.5 is customary).
	ParetoShape float64
	// MeanOff is the mean off-period duration in seconds.
	MeanOff float64
	// PacketSize is the packet size in bytes.
	PacketSize int

	random  *rng.RNG
	started bool
	seq     int64
	// PacketsSent counts emitted packets.
	PacketsSent int64

	remaining int // packets left in the current burst
	// Bound callbacks, allocated once so the burst loop schedules
	// without capturing closures.
	startBurstFn des.Event
	burstStepFn  des.Event
}

// NewCrossTraffic builds a cross-traffic source on the network.
func NewCrossTraffic(sched *des.Scheduler, net Network, flow int, peakRate, meanBurst, paretoShape, meanOff float64, packetSize int, seed uint64) *CrossTraffic {
	if sched == nil || net == nil {
		panic("netsim: nil scheduler or network")
	}
	if peakRate <= 0 || meanBurst < 1 || paretoShape <= 1 || meanOff <= 0 || packetSize <= 0 {
		panic("netsim: invalid cross-traffic parameters")
	}
	c := &CrossTraffic{
		sched:       sched,
		net:         net,
		Flow:        flow,
		PeakRate:    peakRate,
		MeanBurst:   meanBurst,
		ParetoShape: paretoShape,
		MeanOff:     meanOff,
		PacketSize:  packetSize,
		random:      rng.New(seed),
	}
	c.startBurstFn = c.startBurst
	c.burstStepFn = c.burstStep
	return c
}

// Start begins the on/off cycle (with an initial off period).
func (c *CrossTraffic) Start() {
	if c.started {
		panic("netsim: cross traffic already started")
	}
	c.started = true
	c.scheduleOff()
}

// MeanRate returns the long-run average offered load in bytes/second:
// burst bytes over (burst time + mean off time).
func (c *CrossTraffic) MeanRate() float64 {
	burstBytes := c.MeanBurst * float64(c.PacketSize)
	burstTime := burstBytes / c.PeakRate
	return burstBytes / (burstTime + c.MeanOff)
}

func (c *CrossTraffic) scheduleOff() {
	off := c.random.Exp(1 / c.MeanOff)
	c.sched.After(off, c.startBurstFn)
}

func (c *CrossTraffic) startBurst() {
	// Pareto with the requested mean: scale = mean·(shape-1)/shape.
	scale := c.MeanBurst * (c.ParetoShape - 1) / c.ParetoShape
	n := int(c.random.Pareto(c.ParetoShape, scale) + 0.5)
	if n < 1 {
		n = 1
	}
	c.remaining = n
	c.burstStep()
}

func (c *CrossTraffic) burstStep() {
	if c.remaining <= 0 {
		c.scheduleOff()
		return
	}
	c.remaining--
	c.PacketsSent++
	p := c.net.GetPacket()
	p.Flow = c.Flow
	p.Seq = c.seq
	p.Size = c.PacketSize
	p.SentAt = c.sched.Now()
	p.Kind = Data
	c.net.SendForward(p)
	c.seq++
	gap := float64(c.PacketSize) / c.PeakRate
	c.sched.After(gap, c.burstStepFn)
}
