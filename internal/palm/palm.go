// Package palm implements the Palm-calculus machinery that the paper's
// proofs are built on (Section II and the appendix): expectations with
// respect to the Palm probability of a point process (averages taken at
// event instants) versus ordinary time averages, the Palm inversion
// ("cycle") formula, and the Feller/bus-stop inspection relations the
// paper invokes when interpreting Theorem 2.
//
// The representation is an event log: a sequence of cycles, each with a
// duration S_n > 0 and an arbitrary per-cycle mark. A piecewise-constant
// process X(t) = value_n on cycle n then has
//
//	time average  E[X]   = Σ value_n·S_n / Σ S_n
//	Palm average  E0[X]  = Σ value_n / N
//
// and the inversion formula E[X] = λ·E0[∫ X over a cycle] with
// λ = N/ΣS_n ties the two.
package palm

import "sort"

// Cycle is one inter-event interval: the duration until the next event
// and the value a piecewise-constant process holds over it.
type Cycle struct {
	// Duration is the cycle length S_n in seconds (> 0).
	Duration float64
	// Value is the process value X_n held over the cycle.
	Value float64
}

// Log is a sequence of cycles — the sample path of a stationary marked
// point process observed between consecutive events.
type Log struct {
	cycles []Cycle
	total  float64
}

// NewLog validates and wraps a cycle sequence.
func NewLog(cycles []Cycle) *Log {
	if len(cycles) == 0 {
		panic("palm: empty log")
	}
	total := 0.0
	for i, c := range cycles {
		if c.Duration <= 0 {
			panic("palm: non-positive cycle duration")
		}
		total += c.Duration
		_ = i
	}
	return &Log{cycles: append([]Cycle(nil), cycles...), total: total}
}

// N returns the number of cycles (events).
func (l *Log) N() int { return len(l.cycles) }

// TotalTime returns Σ S_n.
func (l *Log) TotalTime() float64 { return l.total }

// Intensity returns λ = N / TotalTime — the event rate per unit time.
func (l *Log) Intensity() float64 { return float64(len(l.cycles)) / l.total }

// PalmMean returns E0[X]: the per-event average of the cycle values —
// the expectation "as seen at an arbitrary loss event".
func (l *Log) PalmMean() float64 {
	s := 0.0
	for _, c := range l.cycles {
		s += c.Value
	}
	return s / float64(len(l.cycles))
}

// TimeMean returns E[X]: the time average of the piecewise-constant
// process — the expectation "as seen at an arbitrary point in time".
func (l *Log) TimeMean() float64 {
	s := 0.0
	for _, c := range l.cycles {
		s += c.Value * c.Duration
	}
	return s / l.total
}

// PalmMeanOf returns E0[f(S, X)] for an arbitrary per-cycle functional.
func (l *Log) PalmMeanOf(f func(Cycle) float64) float64 {
	s := 0.0
	for _, c := range l.cycles {
		s += f(c)
	}
	return s / float64(len(l.cycles))
}

// Inversion evaluates the Palm inversion formula
// E[X] = λ·E0[∫_0^{S} X(t) dt] = λ·E0[X·S] for piecewise-constant X,
// which must equal TimeMean exactly on any finite log — the identity
// behind Proposition 1 (eq. 14-15 of the paper).
func (l *Log) Inversion() float64 {
	return l.Intensity() * l.PalmMeanOf(func(c Cycle) float64 {
		return c.Value * c.Duration
	})
}

// InspectedCycleMean returns the mean cycle duration seen by a random
// observer in time — E[S_inspected] = E0[S²]/E0[S]. The Feller (bus
// stop) paradox: this is at least the Palm mean E0[S], with equality only
// for constant cycles. The paper uses exactly this viewpoint shift to
// explain why a time-random observer sees lower send rates when rate and
// cycle length are negatively correlated.
func (l *Log) InspectedCycleMean() float64 {
	s2 := l.PalmMeanOf(func(c Cycle) float64 { return c.Duration * c.Duration })
	s1 := l.PalmMeanOf(func(c Cycle) float64 { return c.Duration })
	return s2 / s1
}

// CovBias returns the difference TimeMean − PalmMean, which expands to
// cov0[X, S]/E0[S]: time averaging over-weights long cycles, so a
// negative covariance between the rate and the cycle duration drives
// the time average below the event average (first part of Theorem 2).
func (l *Log) CovBias() float64 { return l.TimeMean() - l.PalmMean() }

// SampleAt returns the cycle index covering time t in [0, TotalTime),
// for direct inspection experiments.
func (l *Log) SampleAt(t float64) int {
	if t < 0 || t >= l.total {
		panic("palm: sample time outside the log")
	}
	// Prefix sums, computed lazily each call: logs are small and this
	// keeps the type immutable.
	acc := 0.0
	prefix := make([]float64, len(l.cycles))
	for i, c := range l.cycles {
		acc += c.Duration
		prefix[i] = acc
	}
	// Cycle i covers [prefix[i-1], prefix[i]): find the first prefix
	// strictly above t.
	return sort.Search(len(prefix), func(i int) bool { return prefix[i] > t })
}
