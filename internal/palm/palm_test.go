package palm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
)

func TestBasicAverages(t *testing.T) {
	// Rate 10 for 1s, rate 0 for 9s.
	l := NewLog([]Cycle{{1, 10}, {9, 0}})
	if got := l.PalmMean(); got != 5 {
		t.Fatalf("palm mean = %v", got)
	}
	if got := l.TimeMean(); got != 1 {
		t.Fatalf("time mean = %v", got)
	}
	if got := l.Intensity(); got != 0.2 {
		t.Fatalf("intensity = %v", got)
	}
	if got := l.N(); got != 2 {
		t.Fatalf("n = %v", got)
	}
	if got := l.TotalTime(); got != 10 {
		t.Fatalf("total = %v", got)
	}
}

func TestInversionIdentity(t *testing.T) {
	r := rng.New(1)
	cycles := make([]Cycle, 5000)
	for i := range cycles {
		cycles[i] = Cycle{Duration: r.Exp(2) + 0.01, Value: r.Float64() * 100}
	}
	l := NewLog(cycles)
	if math.Abs(l.Inversion()-l.TimeMean()) > 1e-9 {
		t.Fatalf("inversion %v != time mean %v", l.Inversion(), l.TimeMean())
	}
}

func TestFellerParadox(t *testing.T) {
	r := rng.New(2)
	cycles := make([]Cycle, 20000)
	for i := range cycles {
		cycles[i] = Cycle{Duration: r.Exp(1) + 1e-6, Value: 1}
	}
	l := NewLog(cycles)
	palmS := l.PalmMeanOf(func(c Cycle) float64 { return c.Duration })
	inspected := l.InspectedCycleMean()
	// Exponential cycles: inspected mean is twice the Palm mean.
	if inspected < palmS*1.8 || inspected > palmS*2.2 {
		t.Fatalf("inspected %v vs palm %v, want ratio ~2", inspected, palmS)
	}
	// Constant cycles: equality.
	c := NewLog([]Cycle{{2, 1}, {2, 1}, {2, 1}})
	if math.Abs(c.InspectedCycleMean()-2) > 1e-12 {
		t.Fatalf("constant inspected mean = %v", c.InspectedCycleMean())
	}
}

// The basic control's conservativeness through the Palm lens: rate
// f(1/θ̂) held over S = θ/f(1/θ̂) gives TimeMean <= f(p) under
// Theorem 1's hypotheses, and CovBias < 0 (the rate is negatively
// correlated with the cycle length).
func TestTheorem2ViewpointOnBasicControl(t *testing.T) {
	f := formula.NewSQRT(formula.DefaultParams())
	est := estimator.NewLossIntervalEstimator(estimator.TFRCWeights(8))
	proc := lossmodel.DesignShiftedExp(0.1, 0.9, rng.New(3))
	for i := 0; i < 8; i++ {
		est.Observe(proc.Next())
	}
	cycles := make([]Cycle, 50000)
	for i := range cycles {
		rate := f.Rate(1 / est.Estimate())
		theta := proc.Next()
		cycles[i] = Cycle{Duration: theta / rate, Value: rate}
		est.Observe(theta)
	}
	l := NewLog(cycles)
	if l.TimeMean() > f.Rate(0.1) {
		t.Fatalf("time mean %v above f(p) %v", l.TimeMean(), f.Rate(0.1))
	}
	if l.CovBias() >= 0 {
		t.Fatalf("cov bias = %v, want negative (E[X] < E0[X])", l.CovBias())
	}
	// E0[X] <= f(p) as well (Jensen on the concave f(1/x) for SQRT).
	if l.PalmMean() > f.Rate(0.1)*1.01 {
		t.Fatalf("palm mean %v above f(p) %v", l.PalmMean(), f.Rate(0.1))
	}
}

func TestSampleAt(t *testing.T) {
	l := NewLog([]Cycle{{1, 10}, {2, 20}, {3, 30}})
	for _, tc := range []struct {
		t    float64
		want int
	}{{0, 0}, {0.99, 0}, {1.0, 1}, {2.5, 1}, {3.1, 2}, {5.9, 2}} {
		if got := l.SampleAt(tc.t); got != tc.want {
			t.Fatalf("SampleAt(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewLog(nil) },
		func() { NewLog([]Cycle{{0, 1}}) },
		func() { NewLog([]Cycle{{-1, 1}}) },
		func() { NewLog([]Cycle{{1, 1}}).SampleAt(-1) },
		func() { NewLog([]Cycle{{1, 1}}).SampleAt(1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the inversion formula is an exact identity on any finite log.
func TestQuickInversionIdentity(t *testing.T) {
	r := rng.New(11)
	f := func(n uint8) bool {
		k := int(n%50) + 1
		cycles := make([]Cycle, k)
		for i := range cycles {
			cycles[i] = Cycle{Duration: r.Float64()*10 + 0.001, Value: r.Float64()*200 - 100}
		}
		l := NewLog(cycles)
		return math.Abs(l.Inversion()-l.TimeMean()) < 1e-9*(1+math.Abs(l.TimeMean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the inspected cycle mean is never below the Palm mean
// (Feller paradox direction), and time sampling hits every cycle index
// in range.
func TestQuickFellerDirection(t *testing.T) {
	r := rng.New(12)
	f := func(n uint8) bool {
		k := int(n%30) + 2
		cycles := make([]Cycle, k)
		for i := range cycles {
			cycles[i] = Cycle{Duration: r.Float64()*5 + 0.01, Value: 1}
		}
		l := NewLog(cycles)
		palmS := l.PalmMeanOf(func(c Cycle) float64 { return c.Duration })
		if l.InspectedCycleMean() < palmS-1e-9 {
			return false
		}
		idx := l.SampleAt(r.Float64() * l.TotalTime() * 0.999)
		return idx >= 0 && idx < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
