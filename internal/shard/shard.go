// Package shard executes one topology-style simulation space-parallel:
// the node graph is partitioned into K domains, each domain owns a
// private des.Scheduler (timing wheel) and packet freelist, and the
// domains advance in lockstep through conservative lookahead windows.
//
// # Partitioning rule
//
// Every node belongs to exactly one shard; a link belongs to the shard
// of its source node. A link whose destination node lives in another
// shard is a cut link: its serialization still happens on the owning
// shard, but instead of entering the propagation pipeline the packet is
// handed off (netsim.Link.Handoff) into an outbound bundle stamped with
// its arrival time, handoff-now + propagation delay. Because forwarding
// always continues in the shard of the node where a packet physically
// is, every other Send in the system stays shard-local (see Cluster's
// arrive). The partitioner (Partition) never cuts a zero-delay channel:
// zero-delay links and zero-latency pure-delay reverse paths co-locate
// their endpoints.
//
// # Lookahead horizon
//
// The synchronization horizon Δ is the minimum latency over all
// cross-shard channels: the propagation delays of cut links, plus, for
// flows whose pure-delay reverse path crosses shards, the minimum
// jittered reverse delay revDelay·(1−jitter). A message emitted during
// the window [t, t+Δ) arrives no earlier than t+Δ, so each shard can
// execute a whole window without hearing from its peers — the classic
// barrier-at-horizon conservative scheme.
//
// # Deterministic merge order
//
// At each barrier every shard drains the bundles addressed to it in
// (src-shard, emission-seq) order and schedules each message at its
// exact arrival time, carrying the source clock at emission as the
// causal tie-break key (des.AtOrigin). Within a shard, simultaneous
// events fire in (origin, scheduling-seq) order, so an injected arrival
// that lands on the exact instant of a window-local event keeps the
// position its emission time would have earned it on a serial engine —
// such ties are systematic, not exotic, whenever link rates put
// serialization times on a common float lattice. Events are therefore
// totally ordered by (time, origin, src-shard, seq) — independent of
// wall-clock interleaving — and the run is bit-identical to the serial
// execution of the same graph, at any shard count, whether the shards
// run on one goroutine (GOMAXPROCS=1) or K.
package shard

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
)

// flowRec mirrors topology's per-flow routing entry, extended with the
// flow's endpoint shard placement.
type flowRec struct {
	route     []*netsim.Link
	revRoute  []*netsim.Link
	fwdExtra  float64
	revDelay  float64
	sender    netsim.Endpoint
	receiver  netsim.Endpoint
	delivered int64
	jitter    rng.RNG

	// senderShard is where the sender endpoint lives (the shard of the
	// forward route's first node); returnToSender targets it.
	// receiverShard is the shard of the forward route's last node, where
	// the receiver endpoint and any routed-reverse injection live.
	senderShard   int
	receiverShard int
}

// message is one cross-shard event in a bundle: the packet travels by
// value so the source shard can recycle its copy at emission. origin is
// the source shard's clock at emission; the destination schedules the
// arrival with it as the causal tie-break key (des.AtOrigin), so an
// injected event that shares its exact firing instant with local events
// fires in the position its emission time would have earned it on a
// serial engine.
type message struct {
	at     float64
	origin float64
	pkt    netsim.Packet
	kind   uint8
}

const (
	// kindArrive re-enters the forwarding path at the destination shard:
	// the packet just crossed a cut link and arrives at the link's
	// destination node.
	kindArrive uint8 = iota
	// kindToSender is the terminal pure-delay reverse delivery to a
	// sender living in another shard.
	kindToSender
)

// delivery is a pending intra-shard hand-off to an endpoint after a
// pure delay, recycled through the shard's pool (the run callback is
// allocated once per object, not per packet). tm, idx and toSender are
// checkpoint bookkeeping: the live-delivery registry lets a snapshot
// enumerate the pending hand-offs and resolve each one's endpoint from
// its flow on restore.
type delivery struct {
	s        *Shard
	to       netsim.Endpoint
	p        *netsim.Packet
	run      des.Event
	tm       des.Timer
	idx      int32
	toSender bool
}

func (dv *delivery) deliver() {
	to, p := dv.to, dv.p
	dv.to, dv.p = nil, nil
	s := dv.s
	last := len(s.liveDel) - 1
	moved := s.liveDel[last]
	s.liveDel[dv.idx] = moved
	moved.idx = dv.idx
	s.liveDel[last] = nil
	s.liveDel = s.liveDel[:last]
	s.dpool = append(s.dpool, dv)
	s.pendingDeliveries--
	to.Receive(p)
	s.PutPacket(p)
}

// injection is a pending cross-shard message arrival, recycled like
// delivery. It holds the destination-shard copy of the packet between
// the barrier that scheduled it and the event that consumes it. tm and
// idx are checkpoint bookkeeping, like delivery's.
type injection struct {
	s    *Shard
	p    *netsim.Packet
	kind uint8
	run  des.Event
	tm   des.Timer
	idx  int32
}

func (in *injection) fire() {
	s, p, kind := in.s, in.p, in.kind
	in.p = nil
	last := len(s.liveInj) - 1
	moved := s.liveInj[last]
	s.liveInj[in.idx] = moved
	moved.idx = in.idx
	s.liveInj[last] = nil
	s.liveInj = s.liveInj[:last]
	s.ipool = append(s.ipool, in)
	s.pendingInjections--
	if kind == kindArrive {
		s.c.arrive(s, p)
		return
	}
	fs := s.c.flowAt(int(p.Flow))
	fs.sender.Receive(p)
	s.PutPacket(p)
}

// Shard is one domain of the partition: a private scheduler, packet
// freelist and issue/return ledger. It implements netsim.Network, so
// protocol endpoints constructed against it (tfrc.NewFlowOn,
// tcp.NewFlowOn) draw packets from and send through their own shard.
type Shard struct {
	c     *Cluster
	id    int
	sched des.Scheduler

	// Trace, when set, is this shard's event tracer (netsim.Traced).
	// Each shard owns a private tracer so emission needs no
	// synchronization; nil keeps every hook a nil-sink. Cleared by
	// Cluster.Reset.
	Trace *obs.Tracer

	// handoffs counts cross-shard messages this shard has emitted.
	handoffs int64

	pool  []*netsim.Packet
	dpool []*delivery
	ipool []*injection

	// liveDel / liveInj index the pending deliveries and injections for
	// the checkpoint layer (unordered; removal swap-fills).
	liveDel []*delivery
	liveInj []*injection

	issued            int64
	returned          int64
	pendingDeliveries int
	pendingInjections int

	// out[parity][dst] is the bundle of messages emitted toward shard
	// dst during the current window. Two parities double-buffer the
	// bundles: while window w+1 runs (writing parity (w+1)%2), the
	// destinations drain parity w%2 — the barrier between windows
	// provides the happens-before edges in both directions.
	out [2][][]message

	// links owned by this shard (source node inside it), for InFlight
	// accounting.
	links []*netsim.Link

	// wbuf is the parity the shard is currently emitting into. It is
	// only touched by the goroutine driving this shard.
	wbuf int

	// Barrier-published progress for the stall detector: the driving
	// goroutine stores these just before each barrier arrival, and only
	// the detector reads them (from whatever goroutine dumps the
	// diagnostics). Plain per-field atomics — no consistent snapshot
	// needed, every field is individually a barrier-aligned value.
	progWindow  atomic.Int64  // windows completed (1-based; 0 = never arrived)
	progClock   atomic.Uint64 // math.Float64bits of the shard clock
	progPend    atomic.Int64  // pending events on the shard's scheduler
	progLedger  atomic.Int64  // freelist ledger: issued - returned
	progInject  atomic.Int64  // handoff ledger: undelivered cross-shard injections
	progFired   atomic.Uint64 // events fired on the shard's scheduler
	progCascade atomic.Uint64 // timing-wheel entry migrations performed
	progHandoff atomic.Int64  // cross-shard messages emitted
	// progWaitNs accumulates the wall-clock nanoseconds this shard's
	// driver spent waiting at window barriers (parallel driver only).
	// Together with the run's wall time it yields the barrier-wait
	// fraction — the load-imbalance signal of the partition.
	progWaitNs atomic.Int64
}

// Snapshot is one shard's barrier-published progress: every field is a
// barrier-aligned value stored by the shard's driving goroutine at its
// latest window arrival (or, for BarrierWait, accumulated across them),
// readable from any goroutine while the run is in flight. It is the
// public face of the stall detector's progress atomics and the
// per-shard surface of the live-introspection endpoint.
type Snapshot struct {
	// Shard is the domain's index.
	Shard int
	// Window counts completed windows (1-based; 0 = not yet arrived).
	Window int64
	// Clock is the shard's simulated clock at its latest arrival.
	Clock float64
	// Pending is the live-timer population at the latest arrival.
	Pending int64
	// Ledger is the freelist's issued-minus-returned at the arrival.
	Ledger int64
	// Injections is the count of scheduled-but-unfired cross-shard
	// arrivals at the latest arrival.
	Injections int64
	// Fired is the shard scheduler's cumulative event count.
	Fired uint64
	// Cascaded is the scheduler's cumulative timing-wheel entry
	// migrations; Cascaded/Fired is the amortized wheel-maintenance cost
	// per event, a per-shard utilization signal.
	Cascaded uint64
	// Handoffs is the cumulative count of cross-shard messages emitted.
	Handoffs int64
	// BarrierWait is the cumulative wall-clock time the shard's driver
	// has spent waiting at window barriers (parallel driver only).
	BarrierWait time.Duration
}

// Snapshot returns the shard's latest barrier-published progress.
func (s *Shard) Snapshot() Snapshot {
	return Snapshot{
		Shard:       s.id,
		Window:      s.progWindow.Load(),
		Clock:       math.Float64frombits(s.progClock.Load()),
		Pending:     s.progPend.Load(),
		Ledger:      s.progLedger.Load(),
		Injections:  s.progInject.Load(),
		Fired:       s.progFired.Load(),
		Cascaded:    s.progCascade.Load(),
		Handoffs:    s.progHandoff.Load(),
		BarrierWait: time.Duration(s.progWaitNs.Load()),
	}
}

// Tracer implements netsim.Traced: protocol endpoints constructed on
// this shard (tfrc.NewFlowOn, tcp.NewFlowOn) resolve their event
// tracer here, once, at construction.
func (s *Shard) Tracer() *obs.Tracer { return s.Trace }

// publishProgress records the shard's barrier-aligned state for the
// stall detector. Called by the driving goroutine only.
func (s *Shard) publishProgress(window int) {
	s.progWindow.Store(int64(window) + 1)
	s.progClock.Store(math.Float64bits(s.sched.Now()))
	s.progPend.Store(int64(s.sched.Pending()))
	s.progLedger.Store(s.Outstanding())
	s.progInject.Store(int64(s.pendingInjections))
	s.progFired.Store(s.sched.Fired())
	s.progCascade.Store(s.sched.Cascaded())
	s.progHandoff.Store(s.handoffs)
}

var _ netsim.Network = (*Shard)(nil)

// Sched exposes the shard's private scheduler (for endpoint timers and
// start events).
func (s *Shard) Sched() *des.Scheduler { return &s.sched }

// GetPacket implements netsim.Network against the shard's freelist.
func (s *Shard) GetPacket() *netsim.Packet {
	s.issued++
	if m := len(s.pool); m > 0 {
		p := s.pool[m-1]
		s.pool = s.pool[:m-1]
		*p = netsim.Packet{}
		return p
	}
	return &netsim.Packet{}
}

// PutPacket implements netsim.Network against the shard's freelist.
func (s *Shard) PutPacket(p *netsim.Packet) {
	if p == nil {
		return
	}
	s.returned++
	s.pool = append(s.pool, p)
}

// SendForward implements netsim.Network: the packet enters the first
// link of its flow's route, which the caller's shard owns (senders are
// placed on the shard of their route's first node).
func (s *Shard) SendForward(p *netsim.Packet) {
	fs := s.c.flowAt(int(p.Flow))
	if fs == nil {
		panic(fmt.Sprintf("shard: forward packet for unrouted flow %d (no default-link fallback under sharding)", p.Flow))
	}
	p.Hop = 0
	fs.route[0].Send(p)
}

// SendReverse implements netsim.Network: routed reverse paths start at
// the receiver's own shard (the reverse route's first link leaves the
// forward route's last node); pure-delay reverse paths hand off to the
// sender's shard when it differs.
func (s *Shard) SendReverse(p *netsim.Packet) {
	fs := s.c.flowAt(int(p.Flow))
	if fs == nil || fs.sender == nil {
		panic(fmt.Sprintf("shard: reverse packet for unknown flow %d", p.Flow))
	}
	if len(fs.revRoute) > 0 {
		p.Rev = true
		p.Hop = 0
		fs.revRoute[0].Send(p)
		return
	}
	s.c.returnToSender(s, fs, p)
}

// AttachFlow implements netsim.Network by delegating to the cluster:
// flow tables are cluster-wide, freelists per shard.
func (s *Shard) AttachFlow(flow int, sender, receiver netsim.Endpoint, fwdExtra, revDelay float64) {
	s.c.attach(flow, sender, receiver, fwdExtra, revDelay)
}

// Outstanding returns issued-minus-returned packets of this shard's
// freelist.
func (s *Shard) Outstanding() int64 { return s.issued - s.returned }

// InNetwork counts packets demonstrably inside this shard: queued,
// serializing or propagating on an owned link, waiting in a pending
// delivery, or held by a scheduled cross-shard injection.
func (s *Shard) InNetwork() int {
	total := s.pendingDeliveries + s.pendingInjections
	for _, l := range s.links {
		total += l.InFlight()
	}
	return total
}

// getDelivery mirrors topology's delivery pooling.
func (s *Shard) getDelivery(to netsim.Endpoint, p *netsim.Packet, toSender bool) *delivery {
	var dv *delivery
	if m := len(s.dpool); m > 0 {
		dv = s.dpool[m-1]
		s.dpool = s.dpool[:m-1]
	} else {
		dv = &delivery{s: s}
		dv.run = dv.deliver
	}
	dv.to = to
	dv.p = p
	dv.toSender = toSender
	dv.idx = int32(len(s.liveDel))
	s.liveDel = append(s.liveDel, dv)
	s.pendingDeliveries++
	return dv
}

// emit appends a message to the bundle toward dst and recycles the
// source-side packet: from here on the destination shard's copy is the
// packet.
func (s *Shard) emit(dst int, kind uint8, p *netsim.Packet, at float64) {
	box := &s.out[s.wbuf][dst]
	*box = append(*box, message{at: at, origin: s.sched.Now(), pkt: *p, kind: kind})
	s.handoffs++
	s.Trace.Emit(s.sched.Now(), obs.EvHandoff, int32(p.Flow), -1, float64(dst))
	s.PutPacket(p)
}

// inject schedules one drained message at its arrival time. The
// packet's destination-shard copy is issued here and accounted in
// pendingInjections until the arrival event fires.
func (s *Shard) inject(m *message) {
	var in *injection
	if n := len(s.ipool); n > 0 {
		in = s.ipool[n-1]
		s.ipool = s.ipool[:n-1]
	} else {
		in = &injection{s: s}
		in.run = in.fire
	}
	p := s.GetPacket()
	*p = m.pkt
	in.p = p
	in.kind = m.kind
	in.idx = int32(len(s.liveInj))
	s.liveInj = append(s.liveInj, in)
	s.pendingInjections++
	in.tm = s.sched.AtOrigin(m.at, m.origin, in.run)
}
