package shard

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/netsim"
)

// The cluster's snapshot surface mirrors topology.Network's: granular
// sections the restore orchestrator (internal/experiments) sequences
// explicitly. Snapshots are only taken between Run calls, when the
// cluster is barrier-aligned: every bundle is drained, so the only
// cross-shard state in flight is the scheduled-but-unfired injections,
// which each destination shard owns and saves like any other timer.
// capOf maps a scheduler to the capture of its timer population; every
// section resolves each timer against the capture of the shard that
// owns it.

// SaveLinks writes every link's state in link-id order, each against
// its owning shard's capture.
func (c *Cluster) SaveLinks(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	w.Int(len(c.links))
	for id, l := range c.links {
		l.Save(w, capOf(&c.shards[c.linkShard[id]].sched))
	}
}

// RestoreLinks overlays saved state onto the rebuilt links. Each link's
// packets are drawn from its owning shard's freelist.
func (c *Cluster) RestoreLinks(r *checkpoint.Reader) {
	if n := r.Count(); n != len(c.links) {
		r.Fail("snapshot has %d links, rebuilt cluster has %d", n, len(c.links))
		return
	}
	for id, l := range c.links {
		if r.Err() != nil {
			return
		}
		l.Restore(r, c.shards[c.linkShard[id]].GetPacket)
	}
}

// attached counts the non-nil entries of the flow table (flowCount only
// tracks build-time attaches; AttachLive does not touch it).
func (c *Cluster) attached() int {
	n := 0
	for _, fr := range c.flows {
		if fr != nil {
			n++
		}
	}
	return n
}

// SaveFlows writes the per-flow mutable overlay — delivery counter and,
// when reverse jitter is on, the flow's private jitter stream — for
// every attached flow in id order.
func (c *Cluster) SaveFlows(w *checkpoint.Writer) {
	w.Int(c.attached())
	for id, fr := range c.flows {
		if fr == nil {
			continue
		}
		w.Int(id)
		w.I64(fr.delivered)
		if c.reverseJitter > 0 {
			for _, word := range fr.jitter.State() {
				w.U64(word)
			}
		}
	}
}

// RestoreFlows overlays per-flow state saved by SaveFlows. Every saved
// flow must already be re-attached (static flows by the rebuild, churn
// flows by the arrivals restore) with the same id.
func (c *Cluster) RestoreFlows(r *checkpoint.Reader) {
	n := r.Count()
	if have := c.attached(); n != have {
		r.Fail("snapshot has %d attached flows, rebuilt cluster has %d", n, have)
		return
	}
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		id := r.Int()
		fr := c.flowAt(id)
		if fr == nil {
			r.Fail("saved flow %d is not attached in the rebuilt cluster", id)
			return
		}
		fr.delivered = r.I64()
		if c.reverseJitter > 0 {
			var st [4]uint64
			for j := range st {
				st[j] = r.U64()
			}
			if r.Err() == nil {
				fr.jitter.SetState(st)
			}
		}
	}
}

// SaveDeliveries writes every shard's pending pure-delay hand-offs in
// shard order.
func (c *Cluster) SaveDeliveries(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	for _, s := range c.shards {
		cap := capOf(&s.sched)
		w.Int(len(s.liveDel))
		for _, dv := range s.liveDel {
			w.Bool(dv.toSender)
			netsim.SavePacket(w, dv.p)
			w.Timer(cap.StateOf(dv.tm))
		}
	}
}

// RestoreDeliveries re-creates the pending hand-offs on each shard,
// resolving every endpoint from its re-attached flow.
func (c *Cluster) RestoreDeliveries(r *checkpoint.Reader) {
	for _, s := range c.shards {
		n := r.Count()
		for i := 0; i < n; i++ {
			if r.Err() != nil {
				return
			}
			toSender := r.Bool()
			p := s.GetPacket()
			netsim.RestorePacket(r, p)
			st := r.Timer()
			if !st.OK {
				r.Fail("shard %d: pending delivery saved without a live timer", s.id)
				return
			}
			fr := c.flowAt(int(p.Flow))
			if fr == nil {
				r.Fail("shard %d: pending delivery for unattached flow %d", s.id, p.Flow)
				return
			}
			to := fr.receiver
			if toSender {
				to = fr.sender
			}
			if to == nil {
				r.Fail("shard %d: pending delivery for flow %d targets a nil endpoint", s.id, p.Flow)
				return
			}
			dv := s.getDelivery(to, p, toSender)
			dv.tm = s.sched.RestoreTimer(st, dv.run)
		}
	}
}

// SaveInjections writes every shard's scheduled-but-unfired cross-shard
// arrivals in shard order: the destination-side packet copy, the
// message kind, and the injection timer (whose causal key is the source
// clock at emission).
func (c *Cluster) SaveInjections(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	for _, s := range c.shards {
		cap := capOf(&s.sched)
		w.Int(len(s.liveInj))
		for _, in := range s.liveInj {
			w.U8(in.kind)
			netsim.SavePacket(w, in.p)
			w.Timer(cap.StateOf(in.tm))
		}
	}
}

// RestoreInjections re-creates each shard's pending injections with
// their original timer identities, preserving the deterministic merge
// order of the interrupted run's last barrier.
func (c *Cluster) RestoreInjections(r *checkpoint.Reader) {
	for _, s := range c.shards {
		n := r.Count()
		for i := 0; i < n; i++ {
			if r.Err() != nil {
				return
			}
			kind := r.U8()
			if kind != kindArrive && kind != kindToSender {
				r.Fail("shard %d: unknown injection kind %d", s.id, kind)
				return
			}
			var in *injection
			if m := len(s.ipool); m > 0 {
				in = s.ipool[m-1]
				s.ipool = s.ipool[:m-1]
			} else {
				in = &injection{s: s}
				in.run = in.fire
			}
			p := s.GetPacket()
			netsim.RestorePacket(r, p)
			st := r.Timer()
			if !st.OK {
				r.Fail("shard %d: pending injection saved without a live timer", s.id)
				return
			}
			in.p = p
			in.kind = kind
			in.idx = int32(len(s.liveInj))
			s.liveInj = append(s.liveInj, in)
			s.pendingInjections++
			in.tm = s.sched.RestoreTimer(st, in.run)
		}
	}
}

// SaveLedger writes each shard's freelist issue/return counters and its
// handoff count in shard order.
func (c *Cluster) SaveLedger(w *checkpoint.Writer) {
	for _, s := range c.shards {
		w.I64(s.issued)
		w.I64(s.returned)
		w.I64(s.handoffs)
	}
}

// RestoreLedger overlays the counters saved by SaveLedger. It runs last
// in the restore sequence: every restore step before it drew its
// packets through the shards' GetPacket (inflating issued), and this
// overlay settles each ledger back to the snapshot's truth so
// CheckLeaks holds immediately.
func (c *Cluster) RestoreLedger(r *checkpoint.Reader) {
	for _, s := range c.shards {
		s.issued = r.I64()
		s.returned = r.I64()
		s.handoffs = r.I64()
	}
}
