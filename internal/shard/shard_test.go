package shard_test

import (
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/shard"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// builder is the build surface topology.Network and shard.Cluster
// share, so one scenario definition drives both engines.
type builder interface {
	AddNode(name string) topology.NodeID
	AddLink(from, to topology.NodeID, rate, delay float64, queue netsim.Queue) topology.LinkID
	SetDefaultRoute(hops ...topology.LinkID)
	SetReverseJitter(j float64, seed uint64)
	AttachSink(flow int, hops ...topology.LinkID)
	SetRoute(flow int, hops ...topology.LinkID)
}

// chainSpec is a 4-node, 3-hop chain with a tight middle queue (to
// force drops, including on cut links when partitioned), long TFRC and
// TCP flows end to end, a crossing TCP flow on the middle hop, and
// Pareto cross traffic over the last two hops.
const (
	chainRate  = 1.25e6 / 4
	chainDelay = 0.005
	chainDur   = 8.0
)

func buildChain(b builder) []topology.LinkID {
	n0 := b.AddNode("n0")
	n1 := b.AddNode("n1")
	n2 := b.AddNode("n2")
	n3 := b.AddNode("n3")
	l0 := b.AddLink(n0, n1, chainRate, chainDelay, netsim.NewDropTail(20))
	l1 := b.AddLink(n1, n2, chainRate, chainDelay, netsim.NewDropTail(8))
	l2 := b.AddLink(n2, n3, chainRate, chainDelay, netsim.NewDropTail(20))
	b.SetDefaultRoute(l0, l1, l2)
	b.SetReverseJitter(0.2, 99)
	b.SetRoute(40, l1) // crossing TCP over the middle hop only
	return []topology.LinkID{l0, l1, l2}
}

type flowStats struct {
	throughput float64
	lossRate   float64
	delivered  int64
}

type runResult struct {
	flows []flowStats
	fired uint64
}

// runSerial executes the chain on the serial engine.
func runSerial(t *testing.T) runResult {
	t.Helper()
	var sched des.Scheduler
	net := topology.New(&sched)
	hops := buildChain(net)
	var tf []*tfrc.Sender
	var tc []*tcp.Sender
	for f := 0; f < 2; f++ {
		cfg := tfrc.DefaultConfig()
		cfg.Seed = uint64(1000 + f)
		snd, _ := tfrc.NewFlow(&sched, net, 1+f, cfg, 0.005, 0.02)
		sched.At(0.05*float64(f), snd.Start)
		tf = append(tf, snd)
	}
	for f := 0; f < 2; f++ {
		snd, _ := tcp.NewFlow(&sched, net, 10+f, tcp.DefaultConfig(), 0.005, 0.02)
		sched.At(0.03*float64(f)+0.01, snd.Start)
		tc = append(tc, snd)
	}
	xsnd, _ := tcp.NewFlow(&sched, net, 40, tcp.DefaultConfig(), 0, 0.015)
	sched.At(0.02, xsnd.Start)
	net.AttachSink(50, hops[1], hops[2])
	ct := netsim.NewCrossTraffic(&sched, net, 50, chainRate/4, 10, 1.5, 0.05, 1000, 7)
	sched.At(0.1, ct.Start)
	sched.RunUntil(chainDur)
	res := runResult{fired: sched.Fired()}
	for i, snd := range tf {
		res.flows = append(res.flows, flowStats{
			throughput: snd.Stats().Throughput,
			lossRate:   snd.Stats().LossEventRate,
			delivered:  net.Delivered(1 + i),
		})
	}
	for i, snd := range tc {
		st := snd.Stats()
		res.flows = append(res.flows, flowStats{
			throughput: st.Throughput,
			lossRate:   st.LossEventRate,
			delivered:  net.Delivered(10 + i),
		})
	}
	if err := net.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	return res
}

// runSharded executes the identical chain on a cluster of k shards.
func runSharded(t *testing.T, k int, forceParallel bool) (runResult, *shard.Cluster) {
	t.Helper()
	c := shard.New()
	c.ForceParallel = forceParallel
	hops := buildChain(c)
	c.Partition(k)
	var tf []*tfrc.Sender
	var tc []*tcp.Sender
	for f := 0; f < 2; f++ {
		cfg := tfrc.DefaultConfig()
		cfg.Seed = uint64(1000 + f)
		ss, rs := c.FlowEnv(1 + f)
		snd, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1+f, cfg, 0.005, 0.02)
		ss.Sched().At(0.05*float64(f), snd.Start)
		tf = append(tf, snd)
	}
	for f := 0; f < 2; f++ {
		ss, rs := c.FlowEnv(10 + f)
		snd, _ := tcp.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 10+f, tcp.DefaultConfig(), 0.005, 0.02)
		ss.Sched().At(0.03*float64(f)+0.01, snd.Start)
		tc = append(tc, snd)
	}
	ss, rs := c.FlowEnv(40)
	xsnd, _ := tcp.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 40, tcp.DefaultConfig(), 0, 0.015)
	ss.Sched().At(0.02, xsnd.Start)
	c.AttachSink(50, hops[1], hops[2])
	sink := c.SinkEnv(hops[1], hops[2])
	ct := netsim.NewCrossTraffic(sink.Sched(), sink, 50, chainRate/4, 10, 1.5, 0.05, 1000, 7)
	sink.Sched().At(0.1, ct.Start)
	c.Run(chainDur)
	res := runResult{fired: c.Fired()}
	for i, snd := range tf {
		res.flows = append(res.flows, flowStats{
			throughput: snd.Stats().Throughput,
			lossRate:   snd.Stats().LossEventRate,
			delivered:  c.Delivered(1 + i),
		})
	}
	for i, snd := range tc {
		st := snd.Stats()
		res.flows = append(res.flows, flowStats{
			throughput: st.Throughput,
			lossRate:   st.LossEventRate,
			delivered:  c.Delivered(10 + i),
		})
	}
	return res, c
}

func requireEqual(t *testing.T, label string, serial, sharded runResult) {
	t.Helper()
	if serial.fired != sharded.fired {
		t.Errorf("%s: events fired: serial %d, sharded %d", label, serial.fired, sharded.fired)
	}
	for i := range serial.flows {
		a, b := serial.flows[i], sharded.flows[i]
		if a != b {
			t.Errorf("%s: flow %d diverged: serial %+v, sharded %+v", label, i, a, b)
		}
	}
}

// TestSerialEquivalence is the core determinism contract: the sharded
// execution reproduces the serial engine bit for bit — throughput,
// loss-event rates, per-flow deliveries and the total event count — at
// every shard count, with drops happening on the tight middle hop
// (which becomes a cut link at k >= 2).
func TestSerialEquivalence(t *testing.T) {
	serial := runSerial(t)
	for _, k := range []int{1, 2, 3, 4} {
		res, c := runSharded(t, k, false)
		requireEqual(t, "sequential", serial, res)
		if err := c.CheckLeaks(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		if k >= 2 && c.Shards() < 2 {
			t.Fatalf("k=%d produced %d shards; the chain must split", k, c.Shards())
		}
	}
}

// TestParallelDriverEquivalence pins the two drivers against each
// other: the goroutine-per-shard barrier driver (forced, so it runs
// under -race on any host) must reproduce the sequential window loop —
// and therefore the serial engine — exactly.
func TestParallelDriverEquivalence(t *testing.T) {
	serial := runSerial(t)
	for _, k := range []int{2, 4} {
		res, c := runSharded(t, k, true)
		requireEqual(t, "parallel", serial, res)
		if err := c.CheckLeaks(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// TestPerShardLeakLedgers asserts the freelist protocol per shard, not
// just globally: after a run with drops on a cut link, every shard's
// own Outstanding must equal its own InNetwork (a packet crossing a cut
// is returned to the source pool at handoff and re-issued from the
// destination pool at the barrier, so neither ledger double-counts).
func TestPerShardLeakLedgers(t *testing.T) {
	_, c := runSharded(t, 3, false)
	if c.Shards() < 2 {
		t.Fatal("chain did not split")
	}
	drops := int64(0)
	for i := 0; i < 3; i++ {
		drops += c.Link(topology.LinkID(i)).Queue().(*netsim.DropTail).Drops
	}
	if drops == 0 {
		t.Fatal("workload produced no drops; the leak assertion would be vacuous")
	}
	for i := 0; i < c.Shards(); i++ {
		s := c.Shard(i)
		if out, in := s.Outstanding(), int64(s.InNetwork()); out != in {
			t.Errorf("shard %d: Outstanding %d != InNetwork %d", i, out, in)
		}
	}
	if err := c.CheckLeaks(); err != nil {
		t.Error(err)
	}
}

// TestZeroDelayColocation pins the partitioning rule: endpoints of a
// zero-delay link provide no lookahead and must land in one shard.
func TestZeroDelayColocation(t *testing.T) {
	c := shard.New()
	n0 := c.AddNode("a")
	n1 := c.AddNode("b")
	n2 := c.AddNode("c")
	l0 := c.AddLink(n0, n1, 1e6, 0, netsim.NewDropTail(8)) // zero delay: must not cut
	l1 := c.AddLink(n1, n2, 1e6, 0.01, netsim.NewDropTail(8))
	c.SetDefaultRoute(l0, l1)
	c.Partition(3)
	if c.Shards() != 2 {
		t.Fatalf("shards = %d, want 2 (zero-delay endpoints co-located)", c.Shards())
	}
	ss, rs := c.FlowEnv(1)
	if ss == rs {
		t.Fatal("sender and receiver shards identical; positive-delay link should have been cut")
	}
}

// TestClusterReset checks the arena property: a cluster Reset and
// rebuilt in place reproduces a fresh cluster exactly.
func TestClusterReset(t *testing.T) {
	fresh, _ := runSharded(t, 2, false)

	c := shard.New()
	buildChain(c)
	c.Partition(4)
	ss, rs := c.FlowEnv(1)
	snd, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1, tfrc.DefaultConfig(), 0.005, 0.02)
	ss.Sched().At(0, snd.Start)
	c.Run(1.5)
	c.Reset()
	if c.Shards() != 0 {
		t.Fatal("Shards() nonzero after Reset")
	}

	// Rebuild the full chain workload in the recycled cluster by hand,
	// mirroring runSharded's k=2 build.
	hops := buildChain(c)
	c.Partition(2)
	var tf []*tfrc.Sender
	var tc []*tcp.Sender
	for f := 0; f < 2; f++ {
		cfg := tfrc.DefaultConfig()
		cfg.Seed = uint64(1000 + f)
		ss, rs := c.FlowEnv(1 + f)
		s2, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1+f, cfg, 0.005, 0.02)
		ss.Sched().At(0.05*float64(f), s2.Start)
		tf = append(tf, s2)
	}
	for f := 0; f < 2; f++ {
		ss, rs := c.FlowEnv(10 + f)
		s2, _ := tcp.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 10+f, tcp.DefaultConfig(), 0.005, 0.02)
		ss.Sched().At(0.03*float64(f)+0.01, s2.Start)
		tc = append(tc, s2)
	}
	ss, rs = c.FlowEnv(40)
	xsnd, _ := tcp.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 40, tcp.DefaultConfig(), 0, 0.015)
	ss.Sched().At(0.02, xsnd.Start)
	c.AttachSink(50, hops[1], hops[2])
	sink := c.SinkEnv(hops[1], hops[2])
	ct := netsim.NewCrossTraffic(sink.Sched(), sink, 50, chainRate/4, 10, 1.5, 0.05, 1000, 7)
	sink.Sched().At(0.1, ct.Start)
	c.Run(chainDur)
	reused := runResult{fired: c.Fired()}
	for i, s2 := range tf {
		reused.flows = append(reused.flows, flowStats{
			throughput: s2.Stats().Throughput,
			lossRate:   s2.Stats().LossEventRate,
			delivered:  c.Delivered(1 + i),
		})
	}
	for i, s2 := range tc {
		st := s2.Stats()
		reused.flows = append(reused.flows, flowStats{
			throughput: st.Throughput,
			lossRate:   st.LossEventRate,
			delivered:  c.Delivered(10 + i),
		})
	}
	requireEqual(t, "reused", fresh, reused)
	if err := c.CheckLeaks(); err != nil {
		t.Error(err)
	}
}

// TestPhaseBoundaries checks that multi-phase driving (warmup, reset,
// measure — the experiments pattern) stays serial-identical: the phase
// boundary is inclusive like des.RunUntil, and stats read between Run
// calls observe a barrier-aligned cluster.
func TestPhaseBoundaries(t *testing.T) {
	var sched des.Scheduler
	net := topology.New(&sched)
	buildChain(net)
	cfg := tfrc.DefaultConfig()
	cfg.Seed = 4242
	snd, _ := tfrc.NewFlow(&sched, net, 1, cfg, 0.005, 0.02)
	sched.At(0, snd.Start)
	sched.RunUntil(2)
	snd.ResetStats()
	sched.RunUntil(chainDur)
	want := snd.Stats().Throughput

	c := shard.New()
	buildChain(c)
	c.Partition(2)
	ss, rs := c.FlowEnv(1)
	snd2, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1, cfg, 0.005, 0.02)
	ss.Sched().At(0, snd2.Start)
	c.Run(2)
	if err := c.CheckLeaks(); err != nil {
		t.Fatalf("mid-phase: %v", err)
	}
	snd2.ResetStats()
	c.Run(chainDur)
	if got := snd2.Stats().Throughput; got != want {
		t.Fatalf("phase-split throughput: sharded %v, serial %v", got, want)
	}
}
