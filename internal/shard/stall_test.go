package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

// stallCluster builds a minimal two-shard cluster: two nodes, one cut
// link, Pareto cross traffic keeping the event stream alive. The hook
// and budget are installed before the run.
func stallCluster(budget time.Duration, hook func(shard, window int)) *Cluster {
	c := New()
	n0 := c.AddNode("n0")
	n1 := c.AddNode("n1")
	l := c.AddLink(n0, n1, 1.25e6, 0.005, netsim.NewDropTail(32))
	c.Partition(2)
	c.AttachSink(7, l)
	c.ForceParallel = true
	c.StallBudget = budget
	c.stallHook = hook
	sink := c.SinkEnv(l)
	ct := netsim.NewCrossTraffic(sink.Sched(), sink, 7, 2.5e5, 10, 1.5, 0.05, 1000, 11)
	sink.Sched().At(0, ct.Start)
	return c
}

// A shard that stops progressing must trip the watchdog: the run aborts
// with a panic carrying per-shard diagnostics instead of hanging, and
// the cluster is poisoned against reuse.
func TestStallDetectorFires(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock watchdog test")
	}
	c := stallCluster(50*time.Millisecond, func(shard, window int) {
		if shard == 1 && window == 3 {
			time.Sleep(600 * time.Millisecond)
		}
	})
	var report string
	func() {
		defer func() {
			if r := recover(); r != nil {
				report = fmt.Sprint(r)
			}
		}()
		c.Run(1.0)
	}()
	if report == "" {
		t.Fatal("stalled run returned instead of aborting")
	}
	for _, want := range []string{"barrier stall", "STALLED", "shard 0", "shard 1",
		"clock=", "pending-events=", "freelist-ledger=", "handoff-injections="} {
		if !strings.Contains(report, want) {
			t.Errorf("stall report missing %q:\n%s", want, report)
		}
	}
	if !c.Poisoned() {
		t.Error("cluster not poisoned after a tripped barrier")
	}
	// Give the abandoned driver time to wake and bail before the test
	// binary exits, so nothing fires into a torn-down world.
	time.Sleep(700 * time.Millisecond)
}

// A slow but progressing shard must NOT trip the watchdog: the budget
// bounds the wait at one barrier, not the whole run.
func TestStallDetectorQuietOnSlowProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock watchdog test")
	}
	c := stallCluster(250*time.Millisecond, func(shard, window int) {
		if shard == 1 {
			time.Sleep(10 * time.Millisecond) // ~40x the budget in total, spread over windows
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(0.5) // 100 windows at the 5 ms horizon
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("slow-but-progressing run did not finish")
	}
	if c.Poisoned() {
		t.Fatal("watchdog fired on a progressing run")
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// With detection disabled (negative budget) the legacy spin path is
// untouched; a normal run completes and stays clean.
func TestStallDetectorDisabled(t *testing.T) {
	c := stallCluster(-1, nil)
	c.Run(0.5)
	if c.Poisoned() {
		t.Fatal("poisoned without a watchdog")
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}
