package shard

import (
	"fmt"
	"math"

	"repro/internal/netsim"
)

// Partition splits the declared node graph into at most k shards and
// materializes every link on its owning shard's scheduler. Call it
// after AddNode/AddLink and the route/jitter declarations, before
// attaching flows.
//
// The partitioner works in two stages:
//
//  1. Co-location constraints. A zero-delay link provides no lookahead,
//     so its endpoints must share a shard: union-find merges them into
//     atoms. (Pure-delay reverse paths are constrained at seal time
//     instead — flows attach after the partition — by requiring a
//     positive minimum jittered reverse delay across any split.)
//
//  2. Contiguous greedy assignment. Atoms, ordered by their smallest
//     node id, are packed into at most k contiguous segments of roughly
//     equal weight, where a node weighs 1 plus its out-degree — a cheap
//     proxy for the event load its links generate. Contiguity matches
//     the chain/parking-lot graphs this repo sweeps (node ids follow
//     the path), keeps every cut a genuine chain cut, and — crucial for
//     the determinism contract — makes the partition a pure function of
//     the declared graph and k.
//
// The effective shard count (Shards) can come out lower than k when the
// graph has fewer atoms.
func (c *Cluster) Partition(k int) {
	if len(c.shards) > 0 {
		panic("shard: Partition called twice")
	}
	if k < 1 {
		k = 1
	}
	n := len(c.nodes)
	if n == 0 {
		panic("shard: Partition on an empty graph")
	}

	// Stage 1: union endpoints of zero-delay links.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, sp := range c.specs {
		if sp.delay <= 0 {
			a, b := find(int(sp.from)), find(int(sp.to))
			if a != b {
				if a > b {
					a, b = b, a
				}
				parent[b] = a // smaller id wins: atom order stays node order
			}
		}
	}

	// Atoms in order of their smallest node id, with weights.
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = 1
	}
	for _, sp := range c.specs {
		weight[sp.from]++
	}
	atomIndex := make(map[int]int)
	var atomNodes [][]int
	var atomWeight []float64
	var total float64
	for v := 0; v < n; v++ {
		root := find(v)
		ai, ok := atomIndex[root]
		if !ok {
			ai = len(atomNodes)
			atomIndex[root] = ai
			atomNodes = append(atomNodes, nil)
			atomWeight = append(atomWeight, 0)
		}
		atomNodes[ai] = append(atomNodes[ai], v)
		atomWeight[ai] += weight[v]
		total += weight[v]
	}
	if k > len(atomNodes) {
		k = len(atomNodes)
	}

	// Stage 2: pack atoms into <= k contiguous segments. A segment
	// closes once it reaches the ideal share, but never so greedily that
	// the remaining atoms could not fill the remaining segments.
	c.nodeShard = append(c.nodeShard[:0], make([]int, n)...)
	target := total / float64(k)
	seg, segWeight := 0, 0.0
	for ai := range atomNodes {
		remainingAtoms := len(atomNodes) - ai
		remainingSegs := k - seg
		if segWeight > 0 && (segWeight >= target || remainingAtoms == remainingSegs) && seg < k-1 {
			seg++
			segWeight = 0
		}
		for _, v := range atomNodes[ai] {
			c.nodeShard[v] = seg
		}
		segWeight += atomWeight[ai]
	}
	c.k = seg + 1

	// Materialize shards and links. Each link lives on the shard of its
	// source node; a link whose destination is elsewhere gets a Handoff
	// that bundles the packet toward the destination shard with arrival
	// time handoff-now + propagation delay.
	for i := 0; i < c.k; i++ {
		var s *Shard
		if i < cap(c.shards) {
			c.shards = c.shards[:i+1]
			if c.shards[i] == nil {
				c.shards[i] = &Shard{}
			}
			s = c.shards[i]
		} else {
			s = &Shard{}
			c.shards = append(c.shards, s)
		}
		s.c = c
		s.id = i
		for parity := range s.out {
			for len(s.out[parity]) < c.k {
				s.out[parity] = append(s.out[parity], nil)
			}
			s.out[parity] = s.out[parity][:c.k]
		}
	}
	c.linkShard = c.linkShard[:0]
	c.links = c.links[:0]
	for _, sp := range c.specs {
		owner := c.nodeShard[sp.from]
		c.linkShard = append(c.linkShard, owner)
		src := c.shards[owner]
		l := netsim.NewLink(&src.sched, sp.rate, sp.delay, sp.queue)
		l.Release = src.PutPacket
		if dst := c.nodeShard[sp.to]; dst != owner {
			delay := sp.delay
			dstID := dst
			l.Deliver = func(p *netsim.Packet) {
				panic("shard: Deliver on a cut link (Handoff owns the propagation stage)")
			}
			l.Handoff = func(p *netsim.Packet) {
				src.emit(dstID, kindArrive, p, src.sched.Now()+delay)
			}
		} else {
			l.Deliver = func(p *netsim.Packet) { c.arrive(src, p) }
		}
		src.links = append(src.links, l)
		c.links = append(c.links, l)
	}
}

// seal computes the synchronization horizon on the first Run, once the
// flow population is known: the minimum latency over every cross-shard
// channel — cut-link propagation delays and, for flows whose pure-delay
// reverse path crosses shards, the minimum jittered reverse delay.
func (c *Cluster) seal() {
	if c.sealed {
		return
	}
	c.mustPartitioned()
	c.sealed = true
	if c.k == 1 {
		c.horizon = 0
		return
	}
	h := math.Inf(1)
	for li := range c.specs {
		if c.nodeShard[c.specs[li].from] != c.nodeShard[c.specs[li].to] {
			h = math.Min(h, c.specs[li].delay)
		}
	}
	for _, fs := range c.flows {
		if fs == nil {
			continue
		}
		if len(fs.revRoute) == 0 && fs.sender != nil && fs.senderShard != fs.receiverShard {
			h = math.Min(h, fs.revDelay*(1-c.reverseJitter))
		}
	}
	for _, d := range c.declaredRev {
		h = math.Min(h, d*(1-c.reverseJitter))
	}
	if math.IsInf(h, 1) {
		// Shards never exchange messages: each runs independently to the
		// phase boundary. Model that as an unbounded window.
		c.horizon = math.Inf(1)
		return
	}
	if h <= 0 {
		panic(fmt.Sprintf("shard: zero lookahead across a shard cut (horizon %v); reduce the shard count or give cross-shard channels positive delay", h))
	}
	c.horizon = h
}
