package shard

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStallBudget is the wall-clock time a shard may spend waiting
// at a window barrier before the stall detector declares the run hung
// and aborts with per-shard diagnostics (Cluster.StallBudget overrides
// it; negative disables detection). One window of one shard is at most
// a few milliseconds of event work on any graph this repo runs, so half
// a minute of waiting means a peer is not coming back — a deadlocked or
// runaway shard — and hanging silently would bury the evidence.
const DefaultStallBudget = 30 * time.Second

// Run advances the whole cluster to the given simulated time, exactly
// like des.Scheduler.RunUntil on a serial engine: every event with
// timestamp <= until fires and all clocks finish at until. Between Run
// calls the cluster is barrier-aligned — stats may be read and reset,
// and CheckLeaks holds.
//
// The shards advance through lookahead windows of the horizon computed
// at the first Run (see seal). With one effective shard, or on a
// message-free partition, Run degenerates to plain RunUntil per shard.
// With several shards it uses the sequential window loop on a
// single-CPU host and a goroutine per shard behind a sense-reversing
// barrier otherwise; both drivers execute the same windows in the same
// per-shard order and drain bundles in the same (src-shard, seq) merge
// order, so the results are bit-identical.
func (c *Cluster) Run(until float64) {
	c.seal()
	if c.k == 1 {
		c.shards[0].sched.RunUntil(until)
		return
	}
	if math.IsInf(c.horizon, 1) {
		for _, s := range c.shards {
			s.sched.RunUntil(until)
		}
		return
	}
	if c.ForceParallel || runtime.GOMAXPROCS(0) > 1 {
		c.runParallel(until)
	} else {
		c.runSequential(until)
	}
}

// drain injects every bundle addressed to dst from the given parity, in
// (src-shard, emission-seq) order — the deterministic merge order.
// Injections acquire dst-local sequence numbers in drain order, so
// same-instant arrivals keep this order when they fire.
func (c *Cluster) drain(dst *Shard, parity int) {
	for src := 0; src < c.k; src++ {
		box := &c.shards[src].out[parity][dst.id]
		for i := range *box {
			dst.inject(&(*box)[i])
		}
		*box = (*box)[:0]
	}
}

// runSequential drives all shards from one goroutine: each window is
// executed shard by shard, then the bundles are exchanged. No
// synchronization, no data races — the driver of choice when the
// process has a single CPU anyway.
func (c *Cluster) runSequential(until float64) {
	b := c.shards[0].sched.Now()
	parity := 0
	window := 0
	for {
		next := b + c.horizon
		last := next >= until
		for _, s := range c.shards {
			s.wbuf = parity
			if last {
				s.sched.RunUntil(until)
			} else {
				s.sched.RunBefore(next)
			}
			// Published for the live-introspection snapshots only (no
			// stall detector here — one goroutine cannot wait on
			// itself); a handful of atomic stores per window.
			s.publishProgress(window)
		}
		for _, s := range c.shards {
			c.drain(s, parity)
		}
		if last {
			return
		}
		b = next
		parity ^= 1
		window++
	}
}

// barrier is a reusable sense-reversing spin barrier. Arrivals count
// down; the last arrival flips the generation, releasing the waiters.
// Waiters yield the processor while spinning so the barrier stays
// livelock-free even when goroutines outnumber CPUs.
//
// A waiter that spins past the stall budget trips the stalled flag;
// from then on every wait returns false immediately (the barrier is
// dead, the run is aborting) and the arrival accounting is abandoned —
// acceptable, since no further window may execute on a tripped barrier.
type barrier struct {
	n       int32
	waiting atomic.Int32
	gen     atomic.Uint32
	stalled atomic.Bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	b.waiting.Store(int32(n))
	return b
}

// wait blocks until all n parties arrive, yielding while it spins. With
// a positive budget it measures its own wall-clock wait and trips the
// stalled flag when the budget runs out. It returns false when the
// barrier is tripped — the caller must abandon the run, not drain.
func (b *barrier) wait(budget time.Duration) bool {
	if b.stalled.Load() {
		return false
	}
	gen := b.gen.Load()
	if b.waiting.Add(-1) == 0 {
		b.waiting.Store(b.n)
		b.gen.Add(1) // release: publishes every pre-barrier write
		return true
	}
	var deadline time.Time
	for i := 0; b.gen.Load() == gen; i++ {
		if b.stalled.Load() {
			return false
		}
		if budget > 0 && i&255 == 255 {
			// Check the wall clock every few hundred yields: cheap
			// enough to keep the fast path syscall-free, frequent
			// enough to catch a stall within microseconds of budget.
			now := time.Now()
			if deadline.IsZero() {
				deadline = now.Add(budget)
			} else if now.After(deadline) {
				b.stalled.Store(true)
				return false
			}
		}
		runtime.Gosched()
	}
	return true
}

// runParallel drives one goroutine per shard. All goroutines compute
// the identical window sequence (pure float arithmetic from the same
// inputs), so their barrier arrivals stay aligned. One barrier per
// window suffices: while window w+1 runs against parity (w+1)%2, each
// shard drains the parity-w%2 bundles addressed to it — the (src, dst)
// bundle slots are disjoint per drainer, and the next barrier closes
// the window before parity w%2 is written again.
//
// The barrier is watched: each shard publishes its barrier-aligned
// progress (window, clock, pending events, ledgers) before waiting, and
// a wait that exceeds the stall budget trips the barrier. Every
// reachable driver then abandons the run, the cluster is poisoned
// (never returned to an arena pool — a stuck driver may still hold it)
// and runParallel panics with per-shard diagnostics instead of hanging;
// the panic surfaces as a diagnosable job error through the runner's
// recover. The stuck driver itself stays wherever it is stuck — its
// goroutine is abandoned, the alternative being a silent deadlock.
func (c *Cluster) runParallel(until float64) {
	budget := c.StallBudget
	if budget == 0 {
		budget = DefaultStallBudget
	}
	var wg sync.WaitGroup
	bar := newBarrier(c.k)
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			b := s.sched.Now()
			parity := 0
			window := 0
			for {
				next := b + c.horizon
				last := next >= until
				s.wbuf = parity
				if hook := c.stallHook; hook != nil {
					hook(s.id, window)
				}
				if last {
					s.sched.RunUntil(until)
				} else {
					s.sched.RunBefore(next)
				}
				s.publishProgress(window)
				waitStart := time.Now()
				ok := bar.wait(budget)
				s.progWaitNs.Add(time.Since(waitStart).Nanoseconds())
				if !ok {
					return
				}
				c.drain(s, parity)
				if last {
					return
				}
				b = next
				parity ^= 1
				window++
			}
		}(s)
	}
	if budget <= 0 {
		wg.Wait()
		return
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			if bar.stalled.Load() {
				c.poisoned = true
				panic(c.stallReport(budget, until))
			}
			return
		case <-tick.C:
			if bar.stalled.Load() {
				c.poisoned = true
				panic(c.stallReport(budget, until))
			}
		}
	}
}

// stallReport renders the per-shard diagnostics of a tripped barrier
// from the barrier-published progress atomics: which shards arrived at
// which window, their clocks, pending event counts and ledgers — enough
// to see who stopped making progress and what it was holding.
func (c *Cluster) stallReport(budget time.Duration, until float64) string {
	var max int64
	for _, s := range c.shards {
		if w := s.progWindow.Load(); w > max {
			max = w
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "shard: barrier stall: a shard made no progress within %v (horizon %v, target t=%v); aborting with per-shard diagnostics:",
		budget, c.horizon, until)
	for _, s := range c.shards {
		w := s.progWindow.Load()
		state := "arrived"
		if w < max {
			state = "STALLED"
		}
		fmt.Fprintf(&sb, "\n  shard %d: window %d clock=%.6f pending-events=%d freelist-ledger=%d handoff-injections=%d (%s)",
			s.id, w, math.Float64frombits(s.progClock.Load()),
			s.progPend.Load(), s.progLedger.Load(), s.progInject.Load(), state)
	}
	return sb.String()
}
