package shard

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run advances the whole cluster to the given simulated time, exactly
// like des.Scheduler.RunUntil on a serial engine: every event with
// timestamp <= until fires and all clocks finish at until. Between Run
// calls the cluster is barrier-aligned — stats may be read and reset,
// and CheckLeaks holds.
//
// The shards advance through lookahead windows of the horizon computed
// at the first Run (see seal). With one effective shard, or on a
// message-free partition, Run degenerates to plain RunUntil per shard.
// With several shards it uses the sequential window loop on a
// single-CPU host and a goroutine per shard behind a sense-reversing
// barrier otherwise; both drivers execute the same windows in the same
// per-shard order and drain bundles in the same (src-shard, seq) merge
// order, so the results are bit-identical.
func (c *Cluster) Run(until float64) {
	c.seal()
	if c.k == 1 {
		c.shards[0].sched.RunUntil(until)
		return
	}
	if math.IsInf(c.horizon, 1) {
		for _, s := range c.shards {
			s.sched.RunUntil(until)
		}
		return
	}
	if c.ForceParallel || runtime.GOMAXPROCS(0) > 1 {
		c.runParallel(until)
	} else {
		c.runSequential(until)
	}
}

// drain injects every bundle addressed to dst from the given parity, in
// (src-shard, emission-seq) order — the deterministic merge order.
// Injections acquire dst-local sequence numbers in drain order, so
// same-instant arrivals keep this order when they fire.
func (c *Cluster) drain(dst *Shard, parity int) {
	for src := 0; src < c.k; src++ {
		box := &c.shards[src].out[parity][dst.id]
		for i := range *box {
			dst.inject(&(*box)[i])
		}
		*box = (*box)[:0]
	}
}

// runSequential drives all shards from one goroutine: each window is
// executed shard by shard, then the bundles are exchanged. No
// synchronization, no data races — the driver of choice when the
// process has a single CPU anyway.
func (c *Cluster) runSequential(until float64) {
	b := c.shards[0].sched.Now()
	parity := 0
	for {
		next := b + c.horizon
		last := next >= until
		for _, s := range c.shards {
			s.wbuf = parity
			if last {
				s.sched.RunUntil(until)
			} else {
				s.sched.RunBefore(next)
			}
		}
		for _, s := range c.shards {
			c.drain(s, parity)
		}
		if last {
			return
		}
		b = next
		parity ^= 1
	}
}

// barrier is a reusable sense-reversing spin barrier. Arrivals count
// down; the last arrival flips the generation, releasing the waiters.
// Waiters yield the processor while spinning so the barrier stays
// livelock-free even when goroutines outnumber CPUs.
type barrier struct {
	n       int32
	waiting atomic.Int32
	gen     atomic.Uint32
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	b.waiting.Store(int32(n))
	return b
}

func (b *barrier) wait() {
	gen := b.gen.Load()
	if b.waiting.Add(-1) == 0 {
		b.waiting.Store(b.n)
		b.gen.Add(1) // release: publishes every pre-barrier write
		return
	}
	for b.gen.Load() == gen {
		runtime.Gosched()
	}
}

// runParallel drives one goroutine per shard. All goroutines compute
// the identical window sequence (pure float arithmetic from the same
// inputs), so their barrier arrivals stay aligned. One barrier per
// window suffices: while window w+1 runs against parity (w+1)%2, each
// shard drains the parity-w%2 bundles addressed to it — the (src, dst)
// bundle slots are disjoint per drainer, and the next barrier closes
// the window before parity w%2 is written again.
func (c *Cluster) runParallel(until float64) {
	var wg sync.WaitGroup
	bar := newBarrier(c.k)
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			b := s.sched.Now()
			parity := 0
			for {
				next := b + c.horizon
				last := next >= until
				s.wbuf = parity
				if last {
					s.sched.RunUntil(until)
				} else {
					s.sched.RunBefore(next)
				}
				bar.wait()
				c.drain(s, parity)
				if last {
					return
				}
				b = next
				parity ^= 1
			}
		}(s)
	}
	wg.Wait()
}
