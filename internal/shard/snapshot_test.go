package shard_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/tfrc"
)

// TestSnapshotProgressMonotonic pins the progress-atomics contract
// behind Cluster.Snapshots(): a sampler goroutine polls the 4-shard
// chain while the goroutine-per-shard barrier driver runs it — the
// exact access pattern of the live expvar endpoint — and every
// cumulative field of a shard's snapshot (window, clock, fired events,
// handoffs, barrier wait) must only ever advance. The occupancy fields
// are not monotone but must stay non-negative, and the final snapshot
// must show every shard at the same completed window. (A shard may end
// with undelivered injections: progress publishes at the window
// barrier, before the next window's delivery phase.)
func TestSnapshotProgressMonotonic(t *testing.T) {
	c := shard.New()
	c.ForceParallel = true
	buildChain(c)
	c.Partition(4)
	if c.Shards() != 4 {
		t.Fatalf("chain split into %d shards, want 4", c.Shards())
	}
	for f := 0; f < 2; f++ {
		cfg := tfrc.DefaultConfig()
		cfg.Seed = uint64(1000 + f)
		ss, rs := c.FlowEnv(1 + f)
		snd, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1+f, cfg, 0.005, 0.02)
		ss.Sched().At(0.05*float64(f), snd.Start)
	}

	stop := make(chan struct{})
	violations := make(chan string, 16)
	report := func(msg string) {
		select {
		case violations <- msg:
		default:
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var samples int
	go func() {
		defer wg.Done()
		prev := c.Snapshots()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := c.Snapshots()
			for i := range cur {
				p, s := prev[i], cur[i]
				if s.Window < p.Window || s.Clock < p.Clock || s.Fired < p.Fired ||
					s.Cascaded < p.Cascaded || s.Handoffs < p.Handoffs ||
					s.BarrierWait < p.BarrierWait {
					report(fmt.Sprintf("shard %d went backwards: %+v -> %+v", i, p, s))
				}
				if s.Pending < 0 || s.Ledger < 0 || s.Injections < 0 {
					report(fmt.Sprintf("shard %d published negative occupancy: %+v", i, s))
				}
			}
			prev = cur
			samples++
			runtime.Gosched()
		}
	}()

	c.Run(chainDur)
	close(stop)
	wg.Wait()
	close(violations)
	for msg := range violations {
		t.Error(msg)
	}
	if samples == 0 {
		t.Log("sampler never ran concurrently; monotonicity checked on final state only")
	}

	final := c.Snapshots()
	for i, s := range final {
		if s.Shard != i {
			t.Errorf("snapshot %d labeled shard %d", i, s.Shard)
		}
		if s.Window == 0 {
			t.Errorf("shard %d never published a window", i)
		}
		if s.Window != final[0].Window {
			t.Errorf("shard %d ended at window %d, shard 0 at %d (barrier must align them)",
				i, s.Window, final[0].Window)
		}
		if s.Fired == 0 {
			t.Errorf("shard %d published zero fired events", i)
		}
		if s.Clock <= 0 || s.Clock > chainDur {
			t.Errorf("shard %d published clock %v outside (0, %v]", i, s.Clock, chainDur)
		}
	}
	if err := c.CheckLeaks(); err != nil {
		t.Error(err)
	}
}

// TestSnapshotSteppedRun asserts the barrier-aligned view between
// stepped Run calls: each step must advance every shard's clock and
// fire events without ever going backwards, and the published clock
// tracks the step horizon. (Window counts restart per Run call — they
// index windows within the current drive, not across drives.)
func TestSnapshotSteppedRun(t *testing.T) {
	c := shard.New()
	buildChain(c)
	c.Partition(4)
	for f := 0; f < 2; f++ {
		cfg := tfrc.DefaultConfig()
		cfg.Seed = uint64(2000 + f)
		ss, rs := c.FlowEnv(1 + f)
		snd, _ := tfrc.NewFlowOn(ss.Sched(), ss, rs.Sched(), rs, 1+f, cfg, 0.005, 0.02)
		ss.Sched().At(0, snd.Start)
	}
	prev := c.Snapshots()
	steps := 4
	for k := 1; k <= steps; k++ {
		horizon := chainDur * float64(k) / float64(steps)
		c.Run(horizon)
		cur := c.Snapshots()
		for i := range cur {
			p, s := prev[i], cur[i]
			if s.Window == 0 {
				t.Errorf("step %d shard %d: no window published", k, i)
			}
			if s.Clock <= p.Clock {
				t.Errorf("step %d shard %d: clock stuck at %v", k, i, s.Clock)
			}
			if s.Clock > horizon {
				t.Errorf("step %d shard %d: clock %v beyond horizon %v", k, i, s.Clock, horizon)
			}
			if s.Fired < p.Fired {
				t.Errorf("step %d shard %d: fired went backwards (%d -> %d)", k, i, p.Fired, s.Fired)
			}
		}
		prev = cur
	}
}
