package shard

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topology"
)

// linkSpec is a link declared before the partition exists. Links are
// materialized at Partition time, once each one's owning shard — and
// therefore its scheduler — is known.
type linkSpec struct {
	from, to    topology.NodeID
	rate, delay float64
	queue       netsim.Queue
}

// Cluster is a partitioned network graph: the same build surface as
// topology.Network (the subset the experiments use), executed across K
// shards. Declare the graph, call Partition, place endpoints with
// FlowEnv + tfrc/tcp NewFlowOn, then drive it with Run.
//
// The zero Cluster is not ready; use New (or Reset a used one).
type Cluster struct {
	nodes []string
	specs []linkSpec

	links    []*netsim.Link
	linkFrom []topology.NodeID
	linkTo   []topology.NodeID

	// flows is indexed by flow id (nil = unattached), mirroring
	// topology.Network's dense table. The slice layout is what makes
	// run-time attach (AttachLive) race-free under the parallel driver:
	// after ReserveFlows the slice header never changes, an arrival event
	// stores a pointer into its own flow's slot, and any other shard only
	// reads that slot after a window barrier has ordered the store before
	// the packet that needs it.
	flows []*flowRec
	// flowCount counts build-time attached flows (AttachLive does not
	// touch it — it would be a cross-shard race, and only the build-time
	// SetReverseJitter guard needs the count).
	flowCount int

	routes       map[int][]topology.LinkID
	defaultRoute []topology.LinkID

	revRoutes       map[int][]topology.LinkID
	defaultRevRoute []topology.LinkID

	reverseJitter float64
	jitterSeed    uint64

	nodeShard []int
	linkShard []int
	shards    []*Shard
	k         int

	horizon float64
	sealed  bool

	// declaredRev holds the pure-delay reverse latencies announced by
	// DeclareReverseChannel for flows that will attach at run time —
	// after seal has already computed the horizon from the build-time
	// flow population. seal folds them in exactly like attached flows'.
	declaredRev []float64

	// ForceParallel selects the goroutine-per-shard driver even on a
	// single-CPU host (where the sequential window loop is the default).
	// Both drivers produce bit-identical results; tests set this so the
	// barrier path runs under -race regardless of the host.
	ForceParallel bool

	// StallBudget bounds the wall-clock time any shard may spend waiting
	// at a window barrier under the parallel driver before the stall
	// detector aborts the run with per-shard diagnostics. Zero applies
	// DefaultStallBudget; negative disables detection. The sequential
	// window loop needs no watchdog — a single goroutine cannot wait on
	// itself.
	StallBudget time.Duration

	// stallHook, when set (tests only), runs at the top of every window
	// on the parallel driver, before the shard executes it. Injecting a
	// sleep here simulates a stalled or slow shard.
	stallHook func(shard, window int)

	// poisoned marks a cluster whose parallel run aborted on a tripped
	// barrier: an abandoned driver goroutine may still reference the
	// shards, so the cluster must never be reused (or pooled).
	poisoned bool

	frPool []*flowRec
}

// New returns an empty cluster.
func New() *Cluster {
	return &Cluster{
		routes: map[int][]topology.LinkID{},
	}
}

// Reset empties the graph, partition and flow tables while keeping the
// shards' schedulers, freelists and bundle buffers, so a pooled cluster
// rebuilds its next simulation in place (see the run arena in
// internal/experiments).
func (c *Cluster) Reset() {
	c.nodes = c.nodes[:0]
	c.specs = c.specs[:0]
	c.links = c.links[:0]
	c.linkFrom = c.linkFrom[:0]
	c.linkTo = c.linkTo[:0]
	for id, fr := range c.flows {
		if fr == nil {
			continue
		}
		fr.route = fr.route[:0]
		fr.revRoute = fr.revRoute[:0]
		fr.sender, fr.receiver = nil, nil
		fr.delivered = 0
		c.frPool = append(c.frPool, fr)
		c.flows[id] = nil
	}
	c.flows = c.flows[:0]
	c.flowCount = 0
	c.declaredRev = c.declaredRev[:0]
	for id := range c.routes {
		delete(c.routes, id)
	}
	for id := range c.revRoutes {
		delete(c.revRoutes, id)
	}
	c.defaultRoute = nil
	c.defaultRevRoute = nil
	c.reverseJitter = 0
	c.jitterSeed = 0
	c.nodeShard = c.nodeShard[:0]
	c.linkShard = c.linkShard[:0]
	c.k = 0
	c.horizon = 0
	c.sealed = false
	c.ForceParallel = false
	c.StallBudget = 0
	c.stallHook = nil
	if c.poisoned {
		panic("shard: Reset on a poisoned cluster (its barrier tripped; an abandoned driver may still hold it)")
	}
	for _, s := range c.shards {
		s.sched.Reset()
		s.issued, s.returned = 0, 0
		s.pendingDeliveries, s.pendingInjections = 0, 0
		for i := range s.liveDel {
			s.liveDel[i] = nil
		}
		s.liveDel = s.liveDel[:0]
		for i := range s.liveInj {
			s.liveInj[i] = nil
		}
		s.liveInj = s.liveInj[:0]
		s.links = s.links[:0]
		s.wbuf = 0
		s.Trace = nil
		s.handoffs = 0
		s.progWindow.Store(0)
		s.progClock.Store(0)
		s.progPend.Store(0)
		s.progLedger.Store(0)
		s.progInject.Store(0)
		s.progFired.Store(0)
		s.progCascade.Store(0)
		s.progHandoff.Store(0)
		s.progWaitNs.Store(0)
		for parity := range s.out {
			for d := range s.out[parity] {
				s.out[parity][d] = s.out[parity][d][:0]
			}
		}
	}
	c.shards = c.shards[:0]
}

// AddNode adds a named node and returns its id.
func (c *Cluster) AddNode(name string) topology.NodeID {
	c.nodes = append(c.nodes, name)
	return topology.NodeID(len(c.nodes) - 1)
}

// AddLink declares a directed link. Its netsim.Link is materialized at
// Partition time on the shard that owns the source node.
func (c *Cluster) AddLink(from, to topology.NodeID, rate, delay float64, queue netsim.Queue) topology.LinkID {
	if c.sealed || len(c.shards) > 0 {
		panic("shard: AddLink after Partition")
	}
	if int(from) >= len(c.nodes) || int(to) >= len(c.nodes) || from < 0 || to < 0 {
		panic("shard: link endpoint node out of range")
	}
	if queue == nil {
		panic("shard: nil queue")
	}
	if rate <= 0 || delay < 0 {
		panic("shard: invalid link rate/delay")
	}
	c.specs = append(c.specs, linkSpec{from: from, to: to, rate: rate, delay: delay, queue: queue})
	c.linkFrom = append(c.linkFrom, from)
	c.linkTo = append(c.linkTo, to)
	return topology.LinkID(len(c.specs) - 1)
}

// Link returns the materialized link behind an id (valid after
// Partition).
func (c *Cluster) Link(id topology.LinkID) *netsim.Link { return c.links[id] }

// Links returns the number of declared links.
func (c *Cluster) Links() int { return len(c.specs) }

// LinkSched returns the scheduler of the shard that owns the link — the
// shard of its source node, where every Send on the link executes.
// Fault plans (internal/fault) arm their timed events here, so a fault
// manipulates its link from the same scheduler that serializes the
// link's packets, on the serial and sharded engines alike. Valid after
// Partition.
func (c *Cluster) LinkSched(id topology.LinkID) *des.Scheduler {
	c.mustPartitioned()
	return &c.shards[c.linkShard[id]].sched
}

// checkRoute validates that hops form a contiguous directed path.
func (c *Cluster) checkRoute(hops []topology.LinkID) {
	if len(hops) == 0 {
		panic("shard: empty route")
	}
	for i, h := range hops {
		if int(h) >= len(c.specs) || h < 0 {
			panic(fmt.Sprintf("shard: route hop %d: unknown link %d", i, h))
		}
		if i > 0 && c.linkFrom[h] != c.linkTo[hops[i-1]] {
			panic(fmt.Sprintf("shard: route hop %d: link %d does not start where link %d ends",
				i, h, hops[i-1]))
		}
	}
}

// SetRoute declares the static source route for a flow id.
func (c *Cluster) SetRoute(flow int, hops ...topology.LinkID) {
	c.checkRoute(hops)
	c.routes[flow] = append([]topology.LinkID(nil), hops...)
}

// SetDefaultRoute declares the route used for flows with no per-flow
// SetRoute entry.
func (c *Cluster) SetDefaultRoute(hops ...topology.LinkID) {
	c.checkRoute(hops)
	c.defaultRoute = append([]topology.LinkID(nil), hops...)
}

// SetReverseRoute declares the routed reverse path for a flow id.
func (c *Cluster) SetReverseRoute(flow int, hops ...topology.LinkID) {
	c.checkRoute(hops)
	if c.revRoutes == nil {
		c.revRoutes = map[int][]topology.LinkID{}
	}
	c.revRoutes[flow] = append([]topology.LinkID(nil), hops...)
}

// SetDefaultReverseRoute declares the routed reverse path used for
// flows with no per-flow SetReverseRoute entry.
func (c *Cluster) SetDefaultReverseRoute(hops ...topology.LinkID) {
	c.checkRoute(hops)
	c.defaultRevRoute = append([]topology.LinkID(nil), hops...)
}

// checkReverse validates that a reverse route connects the forward
// route's end node back to its start node.
func (c *Cluster) checkReverse(fwd, rev []topology.LinkID) {
	c.checkRoute(rev)
	if c.linkFrom[rev[0]] != c.linkTo[fwd[len(fwd)-1]] {
		panic(fmt.Sprintf("shard: reverse route starts at node %d, want the forward route's last node %d",
			c.linkFrom[rev[0]], c.linkTo[fwd[len(fwd)-1]]))
	}
	if c.linkTo[rev[len(rev)-1]] != c.linkFrom[fwd[0]] {
		panic(fmt.Sprintf("shard: reverse route ends at node %d, want the forward route's first node %d",
			c.linkTo[rev[len(rev)-1]], c.linkFrom[fwd[0]]))
	}
}

// SetReverseJitter enables reverse-path delay jitter, fraction
// 0 <= j < 1. Flows attached afterwards draw from per-flow streams
// seeded by topology.FlowJitterSeed — identical to the serial engine's.
func (c *Cluster) SetReverseJitter(j float64, seed uint64) {
	if j < 0 || j >= 1 {
		panic("shard: reverse jitter outside [0,1)")
	}
	if c.flowCount > 0 {
		panic("shard: SetReverseJitter after flows attached")
	}
	c.reverseJitter = j
	c.jitterSeed = seed
}

// flowHops resolves a flow's forward route (per-flow or default).
func (c *Cluster) flowHops(flow int) []topology.LinkID {
	hops, ok := c.routes[flow]
	if !ok {
		hops = c.defaultRoute
	}
	if len(hops) == 0 {
		panic(fmt.Sprintf("shard: no route for flow %d (SetRoute or SetDefaultRoute first)", flow))
	}
	return hops
}

// FlowEnv returns the scheduler/network pairs for a flow's two
// endpoints: the sender lives on the shard of the route's first node,
// the receiver on the shard of its last. Valid after Partition; pass
// the pairs to tfrc.NewFlowOn / tcp.NewFlowOn.
func (c *Cluster) FlowEnv(flow int) (snd, rcv *Shard) {
	c.mustPartitioned()
	hops := c.flowHops(flow)
	snd = c.shards[c.nodeShard[c.linkFrom[hops[0]]]]
	rcv = c.shards[c.nodeShard[c.linkTo[hops[len(hops)-1]]]]
	return snd, rcv
}

// SinkEnv returns the shard a sink flow's source must run on: the shard
// owning the route's first node. Valid after Partition.
func (c *Cluster) SinkEnv(hops ...topology.LinkID) *Shard {
	c.mustPartitioned()
	c.checkRoute(hops)
	return c.shards[c.nodeShard[c.linkFrom[hops[0]]]]
}

func (c *Cluster) mustPartitioned() {
	if len(c.shards) == 0 {
		panic("shard: Partition first")
	}
}

// attach registers a flow's endpoints and delays, mirroring
// topology.Network.attach plus endpoint shard placement.
func (c *Cluster) attach(flow int, sender, receiver netsim.Endpoint, fwdExtra, revDelay float64) {
	c.mustPartitioned()
	if fwdExtra < 0 || revDelay < 0 {
		panic("shard: negative delay")
	}
	if flow < 0 {
		panic(fmt.Sprintf("shard: negative flow id %d", flow))
	}
	if c.flowAt(flow) != nil {
		panic(fmt.Sprintf("shard: duplicate flow id %d", flow))
	}
	hops := c.flowHops(flow)
	revHops, explicit := c.revRoutes[flow]
	if explicit && sender == nil {
		panic(fmt.Sprintf("shard: reverse route for sink flow %d (no sender to return packets to)", flow))
	}
	if !explicit && sender != nil {
		revHops = c.defaultRevRoute
	}
	if len(revHops) > 0 {
		c.checkReverse(hops, revHops)
	}
	fr := c.getFlowRec()
	for _, h := range hops {
		fr.route = append(fr.route, c.links[h])
	}
	for _, h := range revHops {
		fr.revRoute = append(fr.revRoute, c.links[h])
	}
	fr.fwdExtra = fwdExtra
	fr.revDelay = revDelay
	fr.sender = sender
	fr.receiver = receiver
	fr.senderShard = c.nodeShard[c.linkFrom[hops[0]]]
	fr.receiverShard = c.nodeShard[c.linkTo[hops[len(hops)-1]]]
	if c.reverseJitter > 0 {
		fr.jitter.Reseed(topology.FlowJitterSeed(c.jitterSeed, flow))
	}
	for len(c.flows) <= flow {
		c.flows = append(c.flows, nil)
	}
	c.flows[flow] = fr
	c.flowCount++
}

// flowAt returns the flow's record, nil when the id is out of range or
// unattached.
func (c *Cluster) flowAt(flow int) *flowRec {
	if flow >= 0 && flow < len(c.flows) {
		return c.flows[flow]
	}
	return nil
}

// ReserveFlows pre-sizes the flow table for ids [0, max). Mandatory
// before a run that attaches flows at simulation time (AttachLive): the
// slice header must never change while shard goroutines read it.
func (c *Cluster) ReserveFlows(max int) {
	if c.sealed {
		panic("shard: ReserveFlows after the first Run")
	}
	for len(c.flows) < max {
		c.flows = append(c.flows, nil)
	}
}

// AttachLive registers a flow during a run, from an arrival event
// executing on the shard that owns the route's first node. Unlike the
// build-time attach it takes pre-resolved forward/reverse hops (the
// route maps stay read-only while shards run), stores into a slot
// reserved by ReserveFlows (the slice header stays immutable), and
// builds a fresh record instead of popping the shared pool (two classes
// homed on different shards may attach concurrently). Other shards
// observe the new flow only through its packets, which cross shards no
// earlier than the next window barrier — the barrier's happens-before
// edge orders the store before every remote read.
func (c *Cluster) AttachLive(flow int, sender, receiver netsim.Endpoint, fwdHops, revHops []topology.LinkID, fwdExtra, revDelay float64) {
	if sender == nil || receiver == nil {
		panic("shard: nil endpoint")
	}
	if fwdExtra < 0 || revDelay < 0 {
		panic("shard: negative delay")
	}
	if flow < 0 || flow >= len(c.flows) {
		panic(fmt.Sprintf("shard: AttachLive flow %d outside the reserved table (ReserveFlows first)", flow))
	}
	if c.flows[flow] != nil {
		panic(fmt.Sprintf("shard: duplicate flow id %d", flow))
	}
	fr := &flowRec{
		route:    make([]*netsim.Link, 0, len(fwdHops)),
		revRoute: make([]*netsim.Link, 0, len(revHops)),
	}
	for _, h := range fwdHops {
		fr.route = append(fr.route, c.links[h])
	}
	for _, h := range revHops {
		fr.revRoute = append(fr.revRoute, c.links[h])
	}
	fr.fwdExtra = fwdExtra
	fr.revDelay = revDelay
	fr.sender = sender
	fr.receiver = receiver
	fr.senderShard = c.nodeShard[c.linkFrom[fwdHops[0]]]
	fr.receiverShard = c.nodeShard[c.linkTo[fwdHops[len(fwdHops)-1]]]
	if c.reverseJitter > 0 {
		fr.jitter.Reseed(topology.FlowJitterSeed(c.jitterSeed, flow))
	}
	c.flows[flow] = fr
}

// RouteEnv returns the shards owning a route's two ends — the sender
// lives with the first node, the receiver with the last — without
// declaring a flow, so the churn engine resolves each class's endpoint
// placement once, before any of the class's flows exist. Valid after
// Partition.
func (c *Cluster) RouteEnv(hops []topology.LinkID) (snd, rcv *Shard) {
	c.mustPartitioned()
	c.checkRoute(hops)
	snd = c.shards[c.nodeShard[c.linkFrom[hops[0]]]]
	rcv = c.shards[c.nodeShard[c.linkTo[hops[len(hops)-1]]]]
	return snd, rcv
}

// DeclareReverseChannel announces that run-time attached flows will
// open a pure-delay reverse channel of the given latency from the
// route's last node back to its first. seal computes the lookahead
// horizon from the flow population at the first Run — flows that attach
// later (internal/arrivals) must declare their reverse latency here
// beforehand, or the window size would ignore their cross-shard
// channel. A routed reverse path needs no declaration: its links are
// cut links with their own delays. No-op when the two ends share a
// shard. Call after Partition, before the first Run.
func (c *Cluster) DeclareReverseChannel(hops []topology.LinkID, revDelay float64) {
	c.mustPartitioned()
	if c.sealed {
		panic("shard: DeclareReverseChannel after the first Run")
	}
	c.checkRoute(hops)
	if c.nodeShard[c.linkFrom[hops[0]]] == c.nodeShard[c.linkTo[hops[len(hops)-1]]] {
		return
	}
	c.declaredRev = append(c.declaredRev, revDelay)
}

func (c *Cluster) getFlowRec() *flowRec {
	if m := len(c.frPool); m > 0 {
		fr := c.frPool[m-1]
		c.frPool = c.frPool[:m-1]
		return fr
	}
	return &flowRec{}
}

// AttachFlow registers a flow's endpoints (cluster-level convenience;
// normally endpoints attach through their sender shard's
// netsim.Network surface).
func (c *Cluster) AttachFlow(flow int, sender, receiver netsim.Endpoint, fwdExtra, revDelay float64) {
	if sender == nil || receiver == nil {
		panic("shard: nil endpoint")
	}
	c.attach(flow, sender, receiver, fwdExtra, revDelay)
}

// AttachSink registers a receiver-less flow over a route: its packets
// are recycled at route end by whichever shard owns it.
func (c *Cluster) AttachSink(flow int, hops ...topology.LinkID) {
	c.checkRoute(hops)
	c.routes[flow] = append([]topology.LinkID(nil), hops...)
	c.attach(flow, nil, nil, 0, 0)
}

// returnToSender schedules the packet's final hand-off to the flow's
// sender after the flow's remaining reverse delay — locally when the
// sender shares the shard, as a cross-shard message otherwise. s is the
// shard the call executes on (the receiver's for pure-delay paths, the
// reverse route's terminal shard — always the sender's — for routed
// ones).
func (c *Cluster) returnToSender(s *Shard, fs *flowRec, p *netsim.Packet) {
	delay := fs.revDelay
	if c.reverseJitter > 0 {
		delay *= 1 + c.reverseJitter*(2*fs.jitter.Float64()-1)
	}
	if fs.senderShard == s.id {
		dv := s.getDelivery(fs.sender, p, true)
		dv.tm = s.sched.After(delay, dv.run)
		return
	}
	s.emit(fs.senderShard, kindToSender, p, s.sched.Now()+delay)
}

// arriveReverse mirrors topology.Network.arriveReverse on shard s.
func (c *Cluster) arriveReverse(s *Shard, fs *flowRec, p *netsim.Packet) {
	if next := int(p.Hop) + 1; next < len(fs.revRoute) {
		p.Hop = int32(next)
		fs.revRoute[next].Send(p)
		return
	}
	c.returnToSender(s, fs, p)
}

// arrive mirrors topology.Network.arrive on shard s: it runs in the
// shard of the node the packet just reached, so the next hop's link —
// owned by that same node's shard — is always local.
func (c *Cluster) arrive(s *Shard, p *netsim.Packet) {
	fs := c.flowAt(int(p.Flow))
	if fs == nil {
		// Unattached flows are rejected at SendForward, so nothing can
		// arrive unrouted.
		panic(fmt.Sprintf("shard: arrival for unknown flow %d", p.Flow))
	}
	if p.Rev {
		c.arriveReverse(s, fs, p)
		return
	}
	if next := int(p.Hop) + 1; next < len(fs.route) {
		p.Hop = int32(next)
		fs.route[next].Send(p)
		return
	}
	fs.delivered++
	if fs.receiver == nil {
		s.PutPacket(p)
		return
	}
	if fs.fwdExtra == 0 {
		fs.receiver.Receive(p)
		s.PutPacket(p)
		return
	}
	dv := s.getDelivery(fs.receiver, p, false)
	dv.tm = s.sched.After(fs.fwdExtra, dv.run)
}

// BaseRTT returns the no-queueing round-trip time for the flow, as
// topology.Network.BaseRTT does.
func (c *Cluster) BaseRTT(flow int) float64 {
	fs := c.flowAt(flow)
	if fs == nil {
		return 0
	}
	rtt := fs.fwdExtra + fs.revDelay
	for _, l := range fs.route {
		rtt += l.Delay
	}
	for _, l := range fs.revRoute {
		rtt += l.Delay
	}
	return rtt
}

// Delivered returns the number of packets a flow's route carried to its
// end.
func (c *Cluster) Delivered(flow int) int64 {
	if fs := c.flowAt(flow); fs != nil {
		return fs.delivered
	}
	return 0
}

// Shards returns the effective shard count (after Partition; the
// partitioner may produce fewer domains than requested).
func (c *Cluster) Shards() int { return c.k }

// Horizon returns the synchronization horizon in seconds (0 before the
// first Run, or when the partition has a single shard).
func (c *Cluster) Horizon() float64 { return c.horizon }

// Fired returns the total events executed across all shards. On
// identical trajectories it equals the serial engine's count: every
// serial event maps to exactly one event on exactly one shard (a cut
// link's delivery event becomes the destination shard's injection
// event, one for one).
func (c *Cluster) Fired() uint64 {
	var total uint64
	for _, s := range c.shards {
		total += s.sched.Fired()
	}
	return total
}

// Outstanding sums the shards' freelist ledgers.
func (c *Cluster) Outstanding() int64 {
	var total int64
	for _, s := range c.shards {
		total += s.Outstanding()
	}
	return total
}

// InNetwork sums the shards' in-simulator packet counts.
func (c *Cluster) InNetwork() int {
	total := 0
	for _, s := range c.shards {
		total += s.InNetwork()
	}
	return total
}

// Shard returns shard i (for per-shard assertions in tests).
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Snapshots returns every shard's latest barrier-published progress in
// shard order. Safe to call from any goroutine while a run is in
// flight — the live-introspection endpoint polls it to show per-shard
// clocks, event throughput and barrier-wait fractions.
func (c *Cluster) Snapshots() []Snapshot {
	out := make([]Snapshot, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.Snapshot()
	}
	return out
}

// LinkTracer returns the event tracer of the shard owning the link (the
// shard of its source node, where every Send on the link executes), nil
// when tracing is off. It is the fault layer's seam (fault.TracedHost)
// for emitting link transitions into the right domain's stream. Valid
// after Partition.
func (c *Cluster) LinkTracer(id topology.LinkID) *obs.Tracer {
	c.mustPartitioned()
	return c.shards[c.linkShard[id]].Trace
}

// AttachTracers installs a bounded event tracer of the given capacity
// on every shard. Call it after Partition and before endpoints are
// constructed — tfrc/tcp senders resolve their domain's tracer once, at
// construction. Each shard's ring is only written from its own driver
// goroutine, so emission stays unsynchronized; the per-shard streams
// merge deterministically through obs.MergeEvents at collection time.
// cap <= 0 leaves every tracer nil (tracing off).
func (c *Cluster) AttachTracers(cap int) {
	c.mustPartitioned()
	for _, s := range c.shards {
		s.Trace = obs.NewTracer(cap, s.id)
	}
}

// Tracers returns the shards' tracers in shard order (nil entries when
// tracing is off).
func (c *Cluster) Tracers() []*obs.Tracer {
	out := make([]*obs.Tracer, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.Trace
	}
	return out
}

// Pending sums the shards' live scheduled-event populations. At a
// barrier-aligned instant it is executor-invariant: every serial event
// maps to exactly one event on exactly one shard (see Fired).
func (c *Cluster) Pending() int {
	total := 0
	for _, s := range c.shards {
		total += s.sched.Pending()
	}
	return total
}

// Poisoned reports whether a parallel run aborted on a tripped barrier.
// A poisoned cluster must be discarded: an abandoned driver goroutine
// may still be stuck inside one of its shards.
func (c *Cluster) Poisoned() bool { return c.poisoned }

// CheckLeaks verifies the cross-shard freelist protocol at a barrier-
// aligned instant (any time between Run calls): every bundle drained,
// and Outstanding == InNetwork both per shard and globally. The
// per-shard invariant holds because a handoff returns the packet to the
// source shard's pool at emission and the destination issues its own
// copy at the barrier, so a packet in flight across a cut is charged to
// exactly one ledger — the destination's, under pendingInjections.
func (c *Cluster) CheckLeaks() error {
	for _, s := range c.shards {
		for parity := range s.out {
			for dst := range s.out[parity] {
				if n := len(s.out[parity][dst]); n != 0 {
					return fmt.Errorf("shard %d: %d undrained messages toward shard %d", s.id, n, dst)
				}
			}
		}
		if out, in := s.Outstanding(), int64(s.InNetwork()); out != in {
			return fmt.Errorf("shard %d: packet leak: %d outstanding from the freelist but %d in the shard", s.id, out, in)
		}
	}
	if out, in := c.Outstanding(), int64(c.InNetwork()); out != in {
		return fmt.Errorf("shard: global packet leak: %d outstanding but %d in the network", out, in)
	}
	return nil
}
