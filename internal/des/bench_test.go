package des_test

import (
	"testing"

	"repro/internal/perfbench"
)

// The benchmark bodies live in internal/perfbench so that these
// wrappers and `ebrc -bench` (BENCH_<n>.json) measure identical
// workloads. This file is an external test package because perfbench
// imports des.

func BenchmarkSchedulerFire(b *testing.B)       { perfbench.SchedulerFire(b) }
func BenchmarkSchedulerTimerChurn(b *testing.B) { perfbench.SchedulerTimerChurn(b) }
func BenchmarkSchedulerDeepQueue(b *testing.B)  { perfbench.SchedulerDeepQueue(b) }

func BenchmarkSchedulerDeepQueue8K(b *testing.B) { perfbench.SchedulerDeepQueue8K(b) }
