package des

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	var s Scheduler
	fired := 0.0
	s.After(2, func() {
		fired = s.Now()
		s.After(3, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 5 {
		t.Fatalf("nested After fired at %v, want 5", fired)
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	ran := false
	tm := s.At(1, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer should be inactive")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel and zero-Timer cancel are no-ops.
	tm.Cancel()
	var zero Timer
	zero.Cancel()
	if zero.Active() {
		t.Fatal("zero timer active")
	}
}

func TestCancelDuringRun(t *testing.T) {
	var s Scheduler
	ran := false
	var tm Timer
	s.At(1, func() { tm.Cancel() })
	tm = s.At(2, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	// Self-sustaining chain: one event per second forever.
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	s.RunUntil(10.5)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != 10.5 {
		t.Fatalf("clock = %v, want 10.5", s.Now())
	}
	s.RunUntil(12)
	if count != 12 {
		t.Fatalf("ticks after resume = %d, want 12 (ticks at 11 and 12)", count)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	var s Scheduler
	ran := false
	s.At(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event exactly at deadline should fire")
	}
}

func TestPendingCountsLiveOnly(t *testing.T) {
	var s Scheduler
	t1 := s.At(1, func() {})
	s.At(2, func() {})
	t3 := s.At(3, func() {})
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
	t1.Cancel()
	t3.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("pending after two cancels = %d, want 1 (live only)", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending after run = %d", s.Pending())
	}
}

// storedEntries counts the entries physically buffered anywhere in the
// scheduler: the working set, every wheel bucket, and the overflow
// level.
func storedEntries(s *Scheduler) int {
	n := len(s.cur) - s.curIdx + len(s.overflow)
	for l := range s.levels {
		for j := range s.levels[l].bucket {
			n += len(s.levels[l].bucket[j])
		}
	}
	return n
}

func TestCompactionBoundsHeap(t *testing.T) {
	var s Scheduler
	// Cancel-heavy workload: schedule far-future timers and immediately
	// cancel them, as a retransmit timer re-armed per ACK does. Without
	// compaction the wheel would grow by one dead entry per iteration.
	for i := 0; i < 100000; i++ {
		tm := s.At(1e9+float64(i), func() {})
		tm.Cancel()
	}
	if got := storedEntries(&s); got > 200 {
		t.Fatalf("wheel holds %d entries after cancel storm, want compacted (<= 200)", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
	// Live events must survive compaction and fire in order.
	var got []float64
	for i := 10; i > 0; i-- {
		s.At(float64(i), func() { got = append(got, s.Now()) })
	}
	for i := 0; i < 100000; i++ {
		tm := s.At(1e9+float64(i), func() {})
		tm.Cancel()
	}
	s.RunUntil(20)
	if len(got) != 10 {
		t.Fatalf("fired %d live events, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after compaction: %v", got)
		}
	}
}

// TestTimerGenerationReuse checks that a stale handle to a recycled slot
// can neither cancel nor observe the slot's new occupant.
func TestTimerGenerationReuse(t *testing.T) {
	var s Scheduler
	old := s.At(1, func() {})
	old.Cancel() // slot returns to the freelist
	ran := false
	fresh := s.At(2, func() { ran = true }) // recycles the slot
	if old.slot != fresh.slot {
		t.Fatalf("freelist did not recycle the slot (%d vs %d)", old.slot, fresh.slot)
	}
	if old.Active() {
		t.Fatal("stale handle reports active")
	}
	old.Cancel() // must not touch the recycled slot
	if !fresh.Active() {
		t.Fatal("stale Cancel killed the new timer")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled-slot event did not run")
	}
	// After firing, both handles are dead and further cancels are no-ops.
	if fresh.Active() {
		t.Fatal("fired timer reports active")
	}
	fresh.Cancel()
}

// TestFIFOUnderFreelistReuse checks the same-instant FIFO tie-break when
// the events' slots come from the freelist in scrambled order.
func TestFIFOUnderFreelistReuse(t *testing.T) {
	var s Scheduler
	// Build a scrambled freelist: schedule a batch, cancel out of order.
	var tms []Timer
	for i := 0; i < 16; i++ {
		tms = append(tms, s.At(100, func() {}))
	}
	for _, i := range []int{7, 0, 15, 3, 12, 1, 9, 5, 14, 2, 11, 4, 13, 6, 10, 8} {
		tms[i].Cancel()
	}
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.RunUntil(60)
	if len(got) != 16 {
		t.Fatalf("fired %d events, want 16", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order under slot reuse: %v", got)
		}
	}
}

// refEvent mirrors one scheduled event in the naive reference model.
type refEvent struct {
	at   float64
	seq  uint64
	id   int
	dead bool
}

// TestQuickVsSortedSliceReference drives random schedule/cancel/
// reschedule/step traffic through the scheduler and a naive
// sorted-slice reference in lockstep, comparing the full firing order.
func TestQuickVsSortedSliceReference(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		var s Scheduler
		var ref []refEvent
		timers := map[int]Timer{}
		var gotIDs, wantIDs []int
		nextID := 0
		steps := int(r.Uint64()%200) + 10
		for op := 0; op < steps; op++ {
			switch {
			case r.Bernoulli(0.55): // schedule
				id := nextID
				nextID++
				at := s.Now() + r.Float64()*10
				timers[id] = s.At(at, func() { gotIDs = append(gotIDs, id) })
				ref = append(ref, refEvent{at: at, seq: uint64(op), id: id})
			case r.Bernoulli(0.5): // cancel a random live timer
				for id, tm := range timers {
					tm.Cancel()
					delete(timers, id)
					for i := range ref {
						if ref[i].id == id {
							ref[i].dead = true
						}
					}
					break
				}
			default: // step
				s.Step()
				stepRef(&ref, &wantIDs)
			}
		}
		for s.Step() {
			stepRef(&ref, &wantIDs)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("trial %d: firing order diverges at %d: got %v want %v", trial, i, gotIDs, wantIDs)
			}
		}
	}
}

// stepRef pops the earliest live event of the reference model.
func stepRef(ref *[]refEvent, fired *[]int) {
	events := *ref
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].seq < events[j].seq
	})
	for i, e := range events {
		if e.dead {
			continue
		}
		*fired = append(*fired, e.id)
		*ref = append(events[:i], events[i+1:]...)
		return
	}
	// Drop any fully dead prefix.
	*ref = events[:0]
}

func TestPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Step()
	cases := []func(){
		func() { s.At(1, func() {}) }, // past
		func() { s.After(-1, func() {}) },
		func() { s.At(10, nil) },
		func() { s.RunUntil(1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: events always fire in non-decreasing time order, regardless
// of insertion order.
func TestQuickTimeOrdered(t *testing.T) {
	r := rng.New(99)
	f := func(n uint8) bool {
		var s Scheduler
		var times []float64
		for i := 0; i < int(n%64)+2; i++ {
			at := r.Float64() * 100
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never goes backwards across Step calls.
func TestQuickClockMonotone(t *testing.T) {
	r := rng.New(100)
	f := func(n uint8) bool {
		var s Scheduler
		for i := 0; i < int(n%32)+2; i++ {
			s.At(r.Float64()*50, func() {
				// Schedule more work from inside events.
				if s.Pending() < 100 {
					s.After(r.Float64(), func() {})
				}
			})
		}
		prev := 0.0
		for s.Step() {
			if s.Now() < prev {
				return false
			}
			prev = s.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateZeroAlloc pins the tentpole property: a steady
// schedule/cancel/fire cycle with a preallocated callback performs no
// per-event allocations once the heap and freelist have warmed up.
func TestSteadyStateZeroAlloc(t *testing.T) {
	var s Scheduler
	fn := func() {}
	var tm Timer
	work := func() {
		tm.Cancel()
		tm = s.After(2, fn)
		s.After(1, fn)
		s.Step()
	}
	for i := 0; i < 1024; i++ { // warm up
		work()
	}
	if avg := testing.AllocsPerRun(1000, work); avg != 0 {
		t.Fatalf("steady-state allocs per event cycle = %v, want 0", avg)
	}
}

// refHeap is a naive binary heap ordered by (at, seq) — the reference
// priority queue the wheel must match event for event.
type refHeap struct {
	es []refEvent
}

func (h *refHeap) push(e refEvent) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !refBefore(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *refHeap) pop() refEvent {
	top := h.es[0]
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es = h.es[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && refBefore(h.es[c+1], h.es[c]) {
			c++
		}
		if !refBefore(h.es[c], h.es[i]) {
			break
		}
		h.es[i], h.es[c] = h.es[c], h.es[i]
		i = c
	}
	return top
}

func refBefore(a, b refEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// popLive pops the earliest live reference event, if any.
func (h *refHeap) popLive(dead map[int]bool) (refEvent, bool) {
	for len(h.es) > 0 {
		e := h.pop()
		if !dead[e.id] {
			return e, true
		}
	}
	return refEvent{}, false
}

// boundaryDelay draws delays biased toward the wheel's sore spots: the
// tick quantum, the exact spans of each cascade level, the far-future
// horizon, and zero (same-instant FIFO ties).
func boundaryDelay(r *rng.RNG) float64 {
	const tick = 1.0 / ticksPerSecond
	switch r.Uint64() % 8 {
	case 0: // inside the current tick
		return r.Float64() * tick / 2
	case 1: // exactly on a tick edge
		return float64(r.Uint64()%512) * tick
	case 2, 3: // straddling a cascade-level span: 256^L ticks ± 1 tick
		lvl := 1 + int(r.Uint64()%3)
		span := float64(uint64(1)<<(uint(lvl)*levelBits)) * tick
		return span + float64(int(r.Uint64()%3)-1)*tick
	case 4: // beyond the wheel horizon (overflow level)
		span := float64(uint64(1)<<(numLevels*levelBits)) * tick
		return span * (1 + r.Float64()*2)
	case 5: // same instant as a pending event (seq tie-break)
		return 0
	default:
		return r.Float64() * 3
	}
}

// TestWheelVsReferenceHeapChurn drives random schedule/cancel/
// reschedule/step churn — with delays concentrated on tick edges,
// cascade-level spans, the overflow horizon and same-timestamp ties —
// through the wheel and a reference binary heap in lockstep, comparing
// the full firing order.
func TestWheelVsReferenceHeapChurn(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 150; trial++ {
		var s Scheduler
		ref := &refHeap{}
		dead := map[int]bool{}
		timers := map[int]Timer{}
		var gotIDs, wantIDs []int
		nextID := 0
		schedule := func(delay float64) {
			id := nextID
			nextID++
			at := s.Now() + delay
			timers[id] = s.At(at, func() { gotIDs = append(gotIDs, id) })
			ref.push(refEvent{at: at, seq: uint64(id), id: id})
		}
		stepBoth := func() {
			fired := s.Step()
			e, ok := ref.popLive(dead)
			if fired != ok {
				t.Fatalf("trial %d: wheel fired=%v, reference fired=%v", trial, fired, ok)
			}
			if ok {
				wantIDs = append(wantIDs, e.id)
			}
		}
		ops := int(r.Uint64()%300) + 20
		for op := 0; op < ops; op++ {
			switch {
			case r.Bernoulli(0.45):
				schedule(boundaryDelay(r))
			case r.Bernoulli(0.3): // cancel or reschedule a live timer
				for id, tm := range timers {
					tm.Cancel()
					delete(timers, id)
					dead[id] = true
					if r.Bernoulli(0.5) {
						schedule(boundaryDelay(r))
					}
					break
				}
			default:
				stepBoth()
			}
		}
		for s.Pending() > 0 {
			stepBoth()
		}
		if _, ok := ref.popLive(dead); ok {
			t.Fatalf("trial %d: reference still has live events after wheel drained", trial)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("trial %d: firing order diverges at %d: got %v want %v",
					trial, i, gotIDs, wantIDs)
			}
		}
	}
}

// TestOverflowCascade pins the far-future path explicitly: events beyond
// the wheel horizon must fire, in order, interleaved correctly with
// near events scheduled later.
func TestOverflowCascade(t *testing.T) {
	var s Scheduler
	horizon := float64(uint64(1)<<(numLevels*levelBits)) / ticksPerSecond
	var got []float64
	rec := func() { got = append(got, s.Now()) }
	far1 := horizon * 1.5
	far2 := horizon * 3
	s.At(1, rec) // anchor the cursor so the far events overflow
	s.At(far2, rec)
	s.At(far1, rec)
	s.At(far1, rec) // same-instant tie in the overflow level
	if len(s.overflow) != 3 {
		t.Fatalf("overflow holds %d entries, want 3", len(s.overflow))
	}
	s.Run()
	want := []float64{1, far1, far1, far2}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire times = %v, want %v", got, want)
		}
	}
	if len(s.overflow) != 0 {
		t.Fatalf("overflow not drained: %d entries", len(s.overflow))
	}
}

// TestReset checks that a reused scheduler is indistinguishable from a
// fresh one: clock, counters and pending set cleared, stale handles
// inert, and a replayed workload firing identically.
func TestReset(t *testing.T) {
	replay := func(s *Scheduler) []int {
		var got []int
		for i := 0; i < 8; i++ {
			i := i
			s.At(float64(8-i), func() { got = append(got, i) })
		}
		tm := s.At(0.5, func() { got = append(got, 99) })
		tm.Cancel()
		s.RunUntil(10)
		return got
	}

	var reused Scheduler
	stale := reused.At(3, func() { panic("must not fire after reset") })
	reused.At(100, func() {})
	reused.RunUntil(1) // advance the clock and cursor mid-queue
	reused.Reset()
	if reused.Now() != 0 || reused.Fired() != 0 || reused.Pending() != 0 {
		t.Fatalf("after Reset: now=%v fired=%d pending=%d, want zeros",
			reused.Now(), reused.Fired(), reused.Pending())
	}
	if storedEntries(&reused) != 0 {
		t.Fatalf("after Reset: %d entries still buffered", storedEntries(&reused))
	}
	if stale.Active() {
		t.Fatal("stale handle active after Reset")
	}
	stale.Cancel() // must not disturb the reused scheduler

	var fresh Scheduler
	want := replay(&fresh)
	got := replay(&reused)
	if len(got) != len(want) {
		t.Fatalf("reused scheduler fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused scheduler order %v, fresh %v", got, want)
		}
	}
	if fresh.Fired() != reused.Fired() || fresh.Now() != reused.Now() {
		t.Fatalf("reused scheduler state (fired=%d now=%v) differs from fresh (fired=%d now=%v)",
			reused.Fired(), reused.Now(), fresh.Fired(), fresh.Now())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}

// TestResetOverflowEdge pins Reset against the far-future path: after
// scheduling events past the wheel horizon (populating the overflow
// level and high wheel levels) and part-way consuming the queue, Reset
// must leave no occupancy bit set, no buffered entry anywhere, and a
// freelist covering the whole slot table — cross-checked against a
// fresh scheduler replaying the same workload.
func TestResetOverflowEdge(t *testing.T) {
	horizon := float64(uint64(1)<<(numLevels*levelBits)) / ticksPerSecond
	var s Scheduler
	fn := func() {}
	s.At(1, fn) // anchor the cursor near zero so far events overflow
	for i := 0; i < 100; i++ {
		s.At(horizon*(1.5+float64(i)), fn) // overflow level
		s.At(horizon*0.9-float64(i), fn)   // top wheel level
		s.At(float64(i)+2, fn)             // low levels
	}
	if len(s.overflow) == 0 {
		t.Fatal("workload did not reach the overflow level")
	}
	s.RunUntil(50) // consume part of the queue, cursor mid-wheel

	s.Reset()
	if len(s.overflow) != 0 {
		t.Fatalf("overflow holds %d entries after Reset", len(s.overflow))
	}
	for l := range s.levels {
		lv := &s.levels[l]
		for w, word := range lv.bitmap {
			if word != 0 {
				t.Fatalf("level %d bitmap word %d = %#x after Reset", l, w, word)
			}
		}
		for j := range lv.bucket {
			if len(lv.bucket[j]) != 0 {
				t.Fatalf("level %d bucket %d holds %d entries after Reset", l, j, len(lv.bucket[j]))
			}
		}
	}
	if storedEntries(&s) != 0 {
		t.Fatalf("%d entries still buffered after Reset", storedEntries(&s))
	}
	if len(s.free) != len(s.slots) {
		t.Fatalf("freelist covers %d of %d slots after Reset", len(s.free), len(s.slots))
	}
	if s.live != 0 || s.dead != 0 || s.curTick != 0 {
		t.Fatalf("live=%d dead=%d curTick=%d after Reset, want zeros", s.live, s.dead, s.curTick)
	}

	// A replayed far-future workload must fire identically to a fresh
	// scheduler's.
	replay := func(s *Scheduler) []float64 {
		var got []float64
		rec := func() { got = append(got, s.Now()) }
		s.At(1, rec)
		s.At(horizon*2, rec)
		s.At(horizon*1.25, rec)
		s.At(3, rec)
		s.Run()
		return got
	}
	var fresh Scheduler
	want := replay(&fresh)
	got := replay(&s)
	if len(got) != len(want) {
		t.Fatalf("reused fired %d events, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused fire times %v, fresh %v", got, want)
		}
	}
}

// TestRunBefore pins the half-open window semantics: events strictly
// before the limit fire, an event exactly at the limit does not, and
// the clock lands exactly on the limit so a follow-up RunUntil of the
// same instant fires the boundary event — together they tile a phase
// into windows without double-firing or skipping.
func TestRunBefore(t *testing.T) {
	var s Scheduler
	var got []float64
	rec := func() { got = append(got, s.Now()) }
	s.At(1, rec)
	s.At(2, rec)
	s.At(3, rec)
	s.RunBefore(2)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunBefore(2) fired %v, want [1]", got)
	}
	if s.Now() != 2 {
		t.Fatalf("clock = %v after RunBefore(2), want 2", s.Now())
	}
	s.RunUntil(2)
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("RunUntil(2) after RunBefore(2) fired %v, want [1 2]", got)
	}
	// Scheduling exactly at the window edge from outside is legal: the
	// clock sits at the limit.
	s.At(2, rec)
	s.RunBefore(2.5)
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("edge event: fired %v, want [1 2 2]", got)
	}
	s.RunBefore(10)
	if len(got) != 4 || got[3] != 3 {
		t.Fatalf("final window fired %v, want [1 2 2 3]", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunBefore into the past did not panic")
			}
		}()
		s.RunBefore(5)
	}()
}

// TestAtOriginTieOrder pins the causal tie-break: events that share one
// firing instant fire in origin order regardless of scheduling order,
// with scheduling order (seq) deciding only among equal origins. This
// is what lets a cross-shard injection — scheduled at a window barrier,
// after every window-local event — reclaim the position its emission
// time would have earned it on a serial engine.
func TestAtOriginTieOrder(t *testing.T) {
	var s Scheduler
	var got []string
	rec := func(name string) Event { return func() { got = append(got, name) } }

	// Local events scheduled while the clock advances: their keys are
	// their scheduling instants 0.0 and 0.2.
	s.At(1.0, rec("local@0.0"))
	s.At(0.2, func() {
		s.At(1.0, rec("local@0.2"))
		// Injections arriving late (higher seq) but with origins that
		// interleave the local keys.
		s.AtOrigin(1.0, 0.1, rec("inject@0.1"))
		s.AtOrigin(1.0, 0.3, rec("inject@0.3"))
		// Equal origins fall back to scheduling order.
		s.AtOrigin(1.0, 0.1, rec("inject@0.1-second"))
	})
	s.RunUntil(2)

	want := []string{"local@0.0", "inject@0.1", "inject@0.1-second", "local@0.2", "inject@0.3"}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v", got, want)
		}
	}

	// origin may precede the clock (the emitter's clock lags the
	// injecting shard's), but never the firing time.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AtOrigin with origin > at did not panic")
			}
		}()
		s.AtOrigin(3.0, 3.5, rec("bad"))
	}()
}
