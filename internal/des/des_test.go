package des

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	var s Scheduler
	fired := 0.0
	s.After(2, func() {
		fired = s.Now()
		s.After(3, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 5 {
		t.Fatalf("nested After fired at %v, want 5", fired)
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	ran := false
	tm := s.At(1, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer should be inactive")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel and zero-Timer cancel are no-ops.
	tm.Cancel()
	var zero Timer
	zero.Cancel()
	if zero.Active() {
		t.Fatal("zero timer active")
	}
}

func TestCancelDuringRun(t *testing.T) {
	var s Scheduler
	ran := false
	var tm Timer
	s.At(1, func() { tm.Cancel() })
	tm = s.At(2, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	// Self-sustaining chain: one event per second forever.
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	s.RunUntil(10.5)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != 10.5 {
		t.Fatalf("clock = %v, want 10.5", s.Now())
	}
	s.RunUntil(12)
	if count != 12 {
		t.Fatalf("ticks after resume = %d, want 12 (ticks at 11 and 12)", count)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	var s Scheduler
	ran := false
	s.At(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event exactly at deadline should fire")
	}
}

func TestPendingCountsLiveOnly(t *testing.T) {
	var s Scheduler
	t1 := s.At(1, func() {})
	s.At(2, func() {})
	t3 := s.At(3, func() {})
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
	t1.Cancel()
	t3.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("pending after two cancels = %d, want 1 (live only)", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending after run = %d", s.Pending())
	}
}

func TestCompactionBoundsHeap(t *testing.T) {
	var s Scheduler
	// Cancel-heavy workload: schedule far-future timers and immediately
	// cancel them, as a retransmit timer re-armed per ACK does. Without
	// compaction the heap would grow by one dead entry per iteration.
	for i := 0; i < 100000; i++ {
		tm := s.At(1e9+float64(i), func() {})
		tm.Cancel()
	}
	if got := len(s.heap); got > 200 {
		t.Fatalf("heap holds %d entries after cancel storm, want compacted (<= 200)", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
	// Live events must survive compaction and fire in order.
	var got []float64
	for i := 10; i > 0; i-- {
		s.At(float64(i), func() { got = append(got, s.Now()) })
	}
	for i := 0; i < 100000; i++ {
		tm := s.At(1e9+float64(i), func() {})
		tm.Cancel()
	}
	s.RunUntil(20)
	if len(got) != 10 {
		t.Fatalf("fired %d live events, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after compaction: %v", got)
		}
	}
}

// TestTimerGenerationReuse checks that a stale handle to a recycled slot
// can neither cancel nor observe the slot's new occupant.
func TestTimerGenerationReuse(t *testing.T) {
	var s Scheduler
	old := s.At(1, func() {})
	old.Cancel() // slot returns to the freelist
	ran := false
	fresh := s.At(2, func() { ran = true }) // recycles the slot
	if old.slot != fresh.slot {
		t.Fatalf("freelist did not recycle the slot (%d vs %d)", old.slot, fresh.slot)
	}
	if old.Active() {
		t.Fatal("stale handle reports active")
	}
	old.Cancel() // must not touch the recycled slot
	if !fresh.Active() {
		t.Fatal("stale Cancel killed the new timer")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled-slot event did not run")
	}
	// After firing, both handles are dead and further cancels are no-ops.
	if fresh.Active() {
		t.Fatal("fired timer reports active")
	}
	fresh.Cancel()
}

// TestFIFOUnderFreelistReuse checks the same-instant FIFO tie-break when
// the events' slots come from the freelist in scrambled order.
func TestFIFOUnderFreelistReuse(t *testing.T) {
	var s Scheduler
	// Build a scrambled freelist: schedule a batch, cancel out of order.
	var tms []Timer
	for i := 0; i < 16; i++ {
		tms = append(tms, s.At(100, func() {}))
	}
	for _, i := range []int{7, 0, 15, 3, 12, 1, 9, 5, 14, 2, 11, 4, 13, 6, 10, 8} {
		tms[i].Cancel()
	}
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.RunUntil(60)
	if len(got) != 16 {
		t.Fatalf("fired %d events, want 16", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order under slot reuse: %v", got)
		}
	}
}

// refEvent mirrors one scheduled event in the naive reference model.
type refEvent struct {
	at   float64
	seq  uint64
	id   int
	dead bool
}

// TestQuickVsSortedSliceReference drives random schedule/cancel/
// reschedule/step traffic through the scheduler and a naive
// sorted-slice reference in lockstep, comparing the full firing order.
func TestQuickVsSortedSliceReference(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		var s Scheduler
		var ref []refEvent
		timers := map[int]Timer{}
		var gotIDs, wantIDs []int
		nextID := 0
		steps := int(r.Uint64()%200) + 10
		for op := 0; op < steps; op++ {
			switch {
			case r.Bernoulli(0.55): // schedule
				id := nextID
				nextID++
				at := s.Now() + r.Float64()*10
				timers[id] = s.At(at, func() { gotIDs = append(gotIDs, id) })
				ref = append(ref, refEvent{at: at, seq: uint64(op), id: id})
			case r.Bernoulli(0.5): // cancel a random live timer
				for id, tm := range timers {
					tm.Cancel()
					delete(timers, id)
					for i := range ref {
						if ref[i].id == id {
							ref[i].dead = true
						}
					}
					break
				}
			default: // step
				s.Step()
				stepRef(&ref, &wantIDs)
			}
		}
		for s.Step() {
			stepRef(&ref, &wantIDs)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("trial %d: firing order diverges at %d: got %v want %v", trial, i, gotIDs, wantIDs)
			}
		}
	}
}

// stepRef pops the earliest live event of the reference model.
func stepRef(ref *[]refEvent, fired *[]int) {
	events := *ref
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].seq < events[j].seq
	})
	for i, e := range events {
		if e.dead {
			continue
		}
		*fired = append(*fired, e.id)
		*ref = append(events[:i], events[i+1:]...)
		return
	}
	// Drop any fully dead prefix.
	*ref = events[:0]
}

func TestPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Step()
	cases := []func(){
		func() { s.At(1, func() {}) }, // past
		func() { s.After(-1, func() {}) },
		func() { s.At(10, nil) },
		func() { s.RunUntil(1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: events always fire in non-decreasing time order, regardless
// of insertion order.
func TestQuickTimeOrdered(t *testing.T) {
	r := rng.New(99)
	f := func(n uint8) bool {
		var s Scheduler
		var times []float64
		for i := 0; i < int(n%64)+2; i++ {
			at := r.Float64() * 100
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never goes backwards across Step calls.
func TestQuickClockMonotone(t *testing.T) {
	r := rng.New(100)
	f := func(n uint8) bool {
		var s Scheduler
		for i := 0; i < int(n%32)+2; i++ {
			s.At(r.Float64()*50, func() {
				// Schedule more work from inside events.
				if s.Pending() < 100 {
					s.After(r.Float64(), func() {})
				}
			})
		}
		prev := 0.0
		for s.Step() {
			if s.Now() < prev {
				return false
			}
			prev = s.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateZeroAlloc pins the tentpole property: a steady
// schedule/cancel/fire cycle with a preallocated callback performs no
// per-event allocations once the heap and freelist have warmed up.
func TestSteadyStateZeroAlloc(t *testing.T) {
	var s Scheduler
	fn := func() {}
	var tm Timer
	work := func() {
		tm.Cancel()
		tm = s.After(2, fn)
		s.After(1, fn)
		s.Step()
	}
	for i := 0; i < 1024; i++ { // warm up
		work()
	}
	if avg := testing.AllocsPerRun(1000, work); avg != 0 {
		t.Fatalf("steady-state allocs per event cycle = %v, want 0", avg)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}
