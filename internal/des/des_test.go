package des

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	var s Scheduler
	fired := 0.0
	s.After(2, func() {
		fired = s.Now()
		s.After(3, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 5 {
		t.Fatalf("nested After fired at %v, want 5", fired)
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	ran := false
	tm := s.At(1, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer should be inactive")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel and nil cancel are no-ops.
	tm.Cancel()
	var nilT *Timer
	nilT.Cancel()
	if nilT.Active() {
		t.Fatal("nil timer active")
	}
}

func TestCancelDuringRun(t *testing.T) {
	var s Scheduler
	ran := false
	var tm *Timer
	s.At(1, func() { tm.Cancel() })
	tm = s.At(2, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	// Self-sustaining chain: one event per second forever.
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	s.RunUntil(10.5)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != 10.5 {
		t.Fatalf("clock = %v, want 10.5", s.Now())
	}
	s.RunUntil(12)
	if count != 12 {
		t.Fatalf("ticks after resume = %d, want 12 (ticks at 11 and 12)", count)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	var s Scheduler
	ran := false
	s.At(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event exactly at deadline should fire")
	}
}

func TestPending(t *testing.T) {
	var s Scheduler
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending after run = %d", s.Pending())
	}
}

func TestPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Step()
	cases := []func(){
		func() { s.At(1, func() {}) }, // past
		func() { s.After(-1, func() {}) },
		func() { s.At(10, nil) },
		func() { s.RunUntil(1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: events always fire in non-decreasing time order, regardless
// of insertion order.
func TestQuickTimeOrdered(t *testing.T) {
	r := rng.New(99)
	f := func(n uint8) bool {
		var s Scheduler
		var times []float64
		for i := 0; i < int(n%64)+2; i++ {
			at := r.Float64() * 100
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never goes backwards across Step calls.
func TestQuickClockMonotone(t *testing.T) {
	r := rng.New(100)
	f := func(n uint8) bool {
		var s Scheduler
		for i := 0; i < int(n%32)+2; i++ {
			s.At(r.Float64()*50, func() {
				// Schedule more work from inside events.
				if s.Pending() < 100 {
					s.After(r.Float64(), func() {})
				}
			})
		}
		prev := 0.0
		for s.Step() {
			if s.Now() < prev {
				return false
			}
			prev = s.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Scheduler
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}
