package des

import (
	"math/bits"

	"repro/internal/checkpoint"
)

// Seq returns the next sequence number the scheduler would assign. It
// is saved alongside Now/Fired/Cascaded so a restored scheduler keeps
// numbering events exactly where the original left off.
func (s *Scheduler) Seq() uint64 { return s.seq }

// TimerCapture is a point-in-time index of every live pending event,
// built by one O(pending) scan at snapshot time. It exists so that
// components can translate their retained Timer handles into portable
// (at, key, seq) triples without the scheduler storing those fields in
// the slot table — the hot scheduling path stays untouched.
type TimerCapture struct {
	s  *Scheduler
	by map[uint64]checkpoint.TimerState // keyed by packed (gen, slot)
}

// CaptureTimers scans the working set, every wheel bucket and the
// overflow level and indexes all live entries. Dead (lazily cancelled)
// entries are skipped. The capture is transient: it is valid only until
// the scheduler next runs.
func (s *Scheduler) CaptureTimers() *TimerCapture {
	c := &TimerCapture{s: s, by: make(map[uint64]checkpoint.TimerState, s.live)}
	add := func(es []entry) {
		for _, e := range es {
			if s.slots[e.slot()].gen != e.gen() {
				continue
			}
			c.by[e.genslot] = checkpoint.TimerState{OK: true, At: e.at, Key: e.key, Seq: e.seq}
		}
	}
	add(s.cur[s.curIdx:])
	for l := range s.levels {
		lv := &s.levels[l]
		for w, word := range lv.bitmap {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				add(lv.bucket[w<<6+b])
			}
		}
	}
	add(s.overflow)
	return c
}

// StateOf resolves a Timer handle against the capture. A zero, fired,
// cancelled or foreign-scheduler timer resolves to the zero TimerState
// (OK false), which restores to the zero Timer.
func (c *TimerCapture) StateOf(t Timer) checkpoint.TimerState {
	if t.s != c.s {
		return checkpoint.TimerState{}
	}
	return c.by[packGenSlot(t.gen, t.slot)]
}

// Len returns the number of live timers captured.
func (c *TimerCapture) Len() int { return len(c.by) }

// RestoreClock overwrites the scheduler's clock state with values saved
// from a running scheduler: current time, next sequence number, and the
// fired/cascaded counters. The pending set must be empty (call Reset
// first); restored events are then re-armed with RestoreAt.
func (s *Scheduler) RestoreClock(now float64, seq, fired, cascaded uint64) {
	if s.live != 0 || s.dead != 0 {
		panic("des: RestoreClock on a scheduler with pending events")
	}
	if now < 0 {
		panic("des: RestoreClock with negative time")
	}
	s.now = now
	s.seq = seq
	s.fired = fired
	s.cascaded = cascaded
	s.cur = s.cur[:0]
	s.curIdx = 0
	s.curTick = tickOf(now)
}

// RestoreAt re-arms an event with an explicit saved identity: firing
// time, causal key and the sequence number it drew in the original run.
// Unlike At/AtOrigin it does not consume a fresh sequence number, so a
// restored pending set fires in exactly the original (at, key, seq)
// total order, and events scheduled after the restore point continue
// the original numbering. The saved seq must predate the restored
// scheduler's next seq.
func (s *Scheduler) RestoreAt(at, key float64, seq uint64, fn Event) Timer {
	if at < s.now {
		panic("des: restoring an event into the past")
	}
	if key > at {
		panic("des: restored origin after firing time")
	}
	if seq >= s.seq {
		panic("des: restored seq from the future")
	}
	if fn == nil {
		panic("des: nil event")
	}
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		id = int32(len(s.slots) - 1)
	}
	sl := &s.slots[id]
	sl.fn = fn
	s.live++
	s.insert(entry{at: at, key: key, seq: seq, genslot: packGenSlot(sl.gen, id)})
	return Timer{s: s, gen: sl.gen, slot: id}
}

// RestoreTimer re-arms a timer from a saved TimerState, returning the
// inert zero Timer when the state is not OK (the timer was dead at save
// time). It is the restore-side pairing of TimerCapture.StateOf.
func (s *Scheduler) RestoreTimer(st checkpoint.TimerState, fn Event) Timer {
	if !st.OK {
		return Timer{}
	}
	return s.RestoreAt(st.At, st.Key, st.Seq, fn)
}
