package des

import (
	"testing"

	"repro/internal/checkpoint"
)

// TestCaptureRestoreOrder schedules a mixed pending set (near, far,
// overflow-distance, same-instant ties, AtOrigin keys, cancellations),
// runs partway, snapshots, restores into a fresh scheduler, and checks
// the restored scheduler fires the identical suffix.
func TestCaptureRestoreOrder(t *testing.T) {
	type rec struct {
		id int
		at float64
	}
	build := func(s *Scheduler, log *[]rec) []Timer {
		var tms []Timer
		note := func(id int) Event {
			return func() { *log = append(*log, rec{id, s.Now()}) }
		}
		tms = append(tms, s.At(0.5, note(1)))
		tms = append(tms, s.At(1.0, note(2)))
		tms = append(tms, s.At(1.0, note(3)))          // same-instant FIFO tie
		tms = append(tms, s.AtOrigin(1.0, 0, note(4))) // earlier key: fires before 2,3
		tms = append(tms, s.At(2.5, note(5)))
		tms = append(tms, s.At(100000, note(6)))   // far: high wheel level
		tms = append(tms, s.At(80000.25, note(7))) // overflow distance at restore
		tms = append(tms, s.At(1.5, note(8)))
		return tms
	}

	// Reference: uninterrupted run.
	var refLog []rec
	ref := &Scheduler{}
	refTms := build(ref, &refLog)
	ref.RunUntil(0.75)
	refTms[7].Cancel() // cancel id 8 mid-run
	ref.Run()

	// Interrupted run: snapshot at 0.75, restore, finish.
	var log []rec
	s := &Scheduler{}
	tms := build(s, &log)
	s.RunUntil(0.75)
	tms[7].Cancel()

	cap := s.CaptureTimers()
	if cap.Len() != s.Pending() {
		t.Fatalf("capture holds %d timers, Pending = %d", cap.Len(), s.Pending())
	}
	now, seq, fired, cascaded := s.Now(), s.Seq(), s.Fired(), s.Cascaded()
	var sts []checkpoint.TimerState
	for _, tm := range tms {
		sts = append(sts, cap.StateOf(tm))
	}
	if sts[0].OK {
		t.Error("fired timer captured as live")
	}
	if sts[7].OK {
		t.Error("cancelled timer captured as live")
	}
	if !sts[3].OK || sts[3].Key != 0 {
		t.Errorf("AtOrigin key not preserved: %+v", sts[3])
	}

	var log2 []rec
	r := &Scheduler{}
	r.Reset()
	r.RestoreClock(now, seq, fired, cascaded)
	if r.Now() != now || r.Seq() != seq || r.Fired() != fired || r.Cascaded() != cascaded {
		t.Fatal("RestoreClock did not restore counters")
	}
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	live := 0
	for i, st := range sts {
		id := ids[i]
		tm := r.RestoreTimer(st, func() { log2 = append(log2, rec{id, r.Now()}) })
		if st.OK {
			live++
			if !tm.Active() {
				t.Errorf("restored timer %d not active", id)
			}
		} else if tm.Active() {
			t.Errorf("dead state %d restored to an active timer", id)
		}
	}
	if r.Pending() != live {
		t.Fatalf("Pending = %d after restore, want %d", r.Pending(), live)
	}
	r.Run()

	refSuffix := refLog[1:] // drop the pre-snapshot firing of id 1
	if len(log2) != len(refSuffix) {
		t.Fatalf("restored run fired %d events, reference suffix has %d", len(log2), len(refSuffix))
	}
	for i := range log2 {
		if log2[i] != refSuffix[i] {
			t.Errorf("firing %d: restored %+v, reference %+v", i, log2[i], refSuffix[i])
		}
	}
	// And new events scheduled post-restore continue the seq numbering:
	// scheduling order within an instant still breaks FIFO correctly.
	if r.Seq() != ref.Seq() {
		t.Errorf("post-run Seq: restored %d, reference %d", r.Seq(), ref.Seq())
	}
}

func TestRestoreAtValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := &Scheduler{}
	s.RestoreClock(10, 5, 4, 0)
	mustPanic("past at", func() { s.RestoreAt(9, 9, 1, func() {}) })
	mustPanic("key>at", func() { s.RestoreAt(11, 12, 1, func() {}) })
	mustPanic("future seq", func() { s.RestoreAt(11, 11, 5, func() {}) })
	mustPanic("nil fn", func() { s.RestoreAt(11, 11, 1, nil) })

	s2 := &Scheduler{}
	s2.At(1, func() {})
	mustPanic("pending events", func() { s2.RestoreClock(0, 0, 0, 0) })
}

func TestStateOfForeignTimer(t *testing.T) {
	a, b := &Scheduler{}, &Scheduler{}
	tm := b.At(1, func() {})
	cap := a.CaptureTimers()
	if st := cap.StateOf(tm); st.OK {
		t.Error("foreign timer resolved as live")
	}
	if st := cap.StateOf(Timer{}); st.OK {
		t.Error("zero timer resolved as live")
	}
}
