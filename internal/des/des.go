// Package des is a minimal discrete-event simulation engine: a scheduler
// with a 4-ary-heap event queue and a simulated clock in float64
// seconds. It is the substrate under the packet-level network simulator
// (package netsim) that stands in for ns-2 in this reproduction.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same instant fire in scheduling order (FIFO tie-break via a
// monotonically increasing sequence number).
//
// # Design: inlined 4-ary heap + slot freelist
//
// The event queue is a hand-rolled 4-ary heap of small value-type
// entries ({time, seq, slot, generation} — no pointers), ordered by
// (time, seq). Compared with container/heap over a slice of *item, this
// removes the interface boxing on every Push/Pop, the per-event item
// allocation, and all GC write barriers during sift operations, and the
// higher branching factor roughly halves the tree depth for the deep
// queues a loaded dumbbell sustains.
//
// Callbacks and liveness live in a separate slot table indexed by the
// entry's slot id and recycled through a freelist, so steady-state
// scheduling performs zero allocations. A Timer handle is a plain value
// {scheduler, slot, generation}; the slot's generation is bumped when
// the event fires or is cancelled, so a stale handle to a recycled slot
// can never cancel (or observe as active) the slot's new occupant.
// Cancellation is lazy — the heap entry stays behind and is discarded
// when it surfaces — but the scheduler compacts the heap whenever dead
// entries outnumber live ones, so cancellation-heavy workloads (TFRC
// no-feedback timers, TCP retransmit timers re-armed on every ACK) keep
// bounded memory.
package des

// Event is a callback scheduled to run at a simulated time.
type Event func()

// entry is one pending event in the heap: pointer-free so that sift
// operations move plain words and never trip GC write barriers.
type entry struct {
	at   float64
	seq  uint64
	gen  uint32
	slot int32
}

// slot carries the mutable part of a scheduled event. gen increments
// when the event fires or is cancelled, invalidating outstanding Timer
// handles and any heap entry still carrying the old generation.
type slot struct {
	fn  Event
	gen uint32
}

// Timer is a generation-checked handle to a scheduled event. It is a
// plain value: copying it is cheap and the zero Timer is inert (Active
// reports false, Cancel is a no-op).
type Timer struct {
	s    *Scheduler
	gen  uint32
	slot int32
}

// Cancel prevents the event from firing. Cancelling an already fired or
// already cancelled timer is a no-op, as is cancelling the zero Timer.
func (t Timer) Cancel() {
	if t.s == nil {
		return
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen {
		return // already fired, cancelled, or slot recycled
	}
	sl.gen++
	sl.fn = nil
	t.s.free = append(t.s.free, t.slot)
	t.s.dead++
	t.s.maybeCompact()
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.s != nil && t.s.slots[t.slot].gen == t.gen
}

// Scheduler owns the simulated clock and the pending event set.
// The zero value is ready to use at time 0.
type Scheduler struct {
	now   float64
	seq   uint64
	fired uint64
	heap  []entry
	slots []slot
	free  []int32 // recycled slot ids, LIFO
	dead  int     // cancelled entries still in the heap
}

// Now returns the current simulated time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of live (non-cancelled) events still
// queued.
func (s *Scheduler) Pending() int { return len(s.heap) - s.dead }

// At schedules fn at the absolute simulated time at, which must not be in
// the past, and returns a cancellable handle.
func (s *Scheduler) At(at float64, fn Event) Timer {
	if at < s.now {
		panic("des: scheduling into the past")
	}
	if fn == nil {
		panic("des: nil event")
	}
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		id = int32(len(s.slots) - 1)
	}
	sl := &s.slots[id]
	sl.fn = fn
	s.push(entry{at: at, seq: s.seq, gen: sl.gen, slot: id})
	s.seq++
	return Timer{s: s, gen: sl.gen, slot: id}
}

// After schedules fn after delay seconds (delay >= 0).
func (s *Scheduler) After(delay float64, fn Event) Timer {
	if delay < 0 {
		panic("des: negative delay")
	}
	return s.At(s.now+delay, fn)
}

// before reports whether entry a fires before entry b: earlier time, or
// FIFO by sequence number at the same instant.
func before(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e entry) {
	h := append(s.heap, e)
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !before(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	s.heap = h
}

// popTop removes the minimum entry (the caller has already read it).
func (s *Scheduler) popTop() {
	h := s.heap
	n := len(h) - 1
	e := h[n]
	s.heap = h[:n]
	if n == 0 {
		return
	}
	s.siftDown(0, e)
}

// siftDown places e at index i, pushing smaller children up.
func (s *Scheduler) siftDown(i int, e entry) {
	h := s.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[min]) {
				min = c
			}
		}
		if !before(h[min], e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}

// maybeCompact rebuilds the heap without dead entries once they
// outnumber the live ones, bounding memory under heavy cancellation.
func (s *Scheduler) maybeCompact() {
	if s.dead <= 64 || s.dead*2 <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, e := range s.heap {
		if s.slots[e.slot].gen == e.gen {
			live = append(live, e)
		}
	}
	s.heap = live
	s.dead = 0
	// Heapify: (at, seq) is a total order, so the pop sequence — and
	// with it the simulation — is unchanged by the rebuild.
	if n := len(live); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			s.siftDown(i, live[i])
		}
	}
}

// fire pops the (live) minimum entry and executes it.
func (s *Scheduler) fire(e entry) {
	sl := &s.slots[e.slot]
	fn := sl.fn
	sl.fn = nil
	sl.gen++
	s.free = append(s.free, e.slot)
	s.popTop()
	s.now = e.at
	s.fired++
	fn()
}

// Step executes the next pending event, advancing the clock. It returns
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.slots[e.slot].gen != e.gen {
			s.popTop() // lazily discard a cancelled entry
			s.dead--
			continue
		}
		s.fire(e)
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass the deadline or the
// queue drains; the clock finishes exactly at the deadline.
func (s *Scheduler) RunUntil(deadline float64) {
	if deadline < s.now {
		panic("des: deadline in the past")
	}
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.slots[e.slot].gen != e.gen {
			s.popTop()
			s.dead--
			continue
		}
		if e.at > deadline {
			break
		}
		s.fire(e)
	}
	s.now = deadline
}

// Run executes events until the queue drains. Use RunUntil for
// simulations with self-sustaining event chains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
