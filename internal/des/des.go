// Package des is a minimal discrete-event simulation engine: a scheduler
// with a binary-heap event queue and a simulated clock in float64
// seconds. It is the substrate under the packet-level network simulator
// (package netsim) that stands in for ns-2 in this reproduction.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same instant fire in scheduling order (FIFO tie-break via a
// monotonically increasing sequence number).
package des

import "container/heap"

// Event is a callback scheduled to run at a simulated time.
type Event func()

type item struct {
	at    float64
	seq   uint64
	fn    Event
	index int
	dead  bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already fired or
// already cancelled timer is a no-op. Cancel on a nil Timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.it != nil {
		t.it.dead = true
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.it != nil && !t.it.dead }

// Scheduler owns the simulated clock and the pending event set.
// The zero value is ready to use at time 0.
type Scheduler struct {
	now    float64
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current simulated time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including
// cancelled-but-not-yet-popped entries).
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn at the absolute simulated time at, which must not be in
// the past, and returns a cancellable handle.
func (s *Scheduler) At(at float64, fn Event) *Timer {
	if at < s.now {
		panic("des: scheduling into the past")
	}
	if fn == nil {
		panic("des: nil event")
	}
	it := &item{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, it)
	return &Timer{it: it}
}

// After schedules fn after delay seconds (delay >= 0).
func (s *Scheduler) After(delay float64, fn Event) *Timer {
	if delay < 0 {
		panic("des: negative delay")
	}
	return s.At(s.now+delay, fn)
}

// Step executes the next pending event, advancing the clock. It returns
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		it := heap.Pop(&s.events).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		it.dead = true
		s.fired++
		it.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass the deadline or the
// queue drains; the clock finishes exactly at the deadline.
func (s *Scheduler) RunUntil(deadline float64) {
	if deadline < s.now {
		panic("des: deadline in the past")
	}
	for len(s.events) > 0 {
		// Peek.
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	s.now = deadline
}

// Run executes events until the queue drains. Use RunUntil for
// simulations with self-sustaining event chains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
