// Package des is a minimal discrete-event simulation engine: a scheduler
// with a hierarchical-timing-wheel event queue and a simulated clock in
// float64 seconds. It is the substrate under the packet-level network
// simulator (package netsim) that stands in for ns-2 in this
// reproduction.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same instant fire in scheduling order (FIFO tie-break via a
// monotonically increasing sequence number). Sequence numbers are
// namespaced per Scheduler, so a space-parallel run that gives every
// shard its own Scheduler (see internal/shard) keeps a well-defined
// deterministic order within each shard, and cross-shard injections
// acquire local sequence numbers in the deterministic merge order their
// bundles are drained in.
//
// # Design: hierarchical timing wheel + slot freelist
//
// The event queue is a hierarchical timing wheel (a calendar-queue
// hybrid): time is discretized into 2^-16 s ticks and pending events
// live in multi-level wheels of pointer-free slot buckets — level 0
// spans one tick per bucket, and each higher level spans 256x the
// previous one, so four levels cover ~18 simulated hours. Events beyond
// the horizon wait in an overflow level that cascades back into the
// wheels on rollover. Insertion and deletion are O(1); firing pays a
// small amortized cascade cost as buckets migrate toward level 0 —
// unlike a binary or 4-ary heap, no operation degrades with the size of
// the pending set, which is what lets many-hop, many-flow simulations
// scale without the event queue becoming the bottleneck.
//
// Determinism is preserved exactly: a bucket is sorted by
// (time, origin, seq) when the cursor reaches it, and ticks partition
// the time axis monotonically, so the global firing order is identical
// to a total (time, origin, seq) priority queue — FIFO within identical
// timestamps included (an event's origin is its causal scheduling time;
// see AtOrigin). Per-level occupancy bitmaps let the cursor jump straight to
// the next non-empty bucket, so sparse queues do not pay for empty
// ticks.
//
// Callbacks and liveness live in a separate slot table indexed by the
// entry's slot id and recycled through a freelist, so steady-state
// scheduling performs zero allocations. A Timer handle is a plain value
// {scheduler, slot, generation}; the slot's generation is bumped when
// the event fires or is cancelled, so a stale handle to a recycled slot
// can never cancel (or observe as active) the slot's new occupant.
// Cancellation is lazy — the bucket entry stays behind and is discarded
// when it surfaces — but the scheduler compacts the buckets whenever
// dead entries outnumber live ones, so cancellation-heavy workloads
// (TFRC no-feedback timers, TCP retransmit timers re-armed on every
// ACK) keep bounded memory.
//
// Reset returns a scheduler to its zero state while keeping every
// bucket's and table's capacity, so a pooled scheduler can be reused
// across simulation runs without reallocating (see the run arena in
// internal/experiments).
package des

import (
	"math/bits"
	"slices"
)

// Event is a callback scheduled to run at a simulated time.
type Event func()

// entry is one pending event in the wheel: pointer-free so that bucket
// moves copy plain words and never trip GC write barriers.
//
// key is the causal scheduling time — the instant the event was brought
// into existence. At sets it to the scheduler's clock; AtOrigin lets a
// caller supply the true origin of an event created elsewhere (a
// cross-shard injection whose emission happened on another scheduler's
// clock). Ties at the same firing time break by (key, seq): for purely
// local scheduling key equals the clock at seq assignment, so the
// (at, key, seq) order coincides with the classic (at, seq) FIFO order.
type entry struct {
	at  float64
	key float64
	seq uint64
	// genslot packs the slot's generation (high 32 bits) and slot id
	// (low 32 bits) into one word, keeping the struct at four fields —
	// the compiler's SSA limit — so entries stay in registers on the
	// hot scheduling path instead of bouncing through memory.
	genslot uint64
}

func packGenSlot(gen uint32, slot int32) uint64 {
	return uint64(gen)<<32 | uint64(uint32(slot))
}

func (e entry) gen() uint32 { return uint32(e.genslot >> 32) }
func (e entry) slot() int32 { return int32(uint32(e.genslot)) }

// slot carries the mutable part of a scheduled event. gen increments
// when the event fires or is cancelled, invalidating outstanding Timer
// handles and any bucket entry still carrying the old generation.
type slot struct {
	fn  Event
	gen uint32
}

// Timer is a generation-checked handle to a scheduled event. It is a
// plain value: copying it is cheap and the zero Timer is inert (Active
// reports false, Cancel is a no-op).
type Timer struct {
	s    *Scheduler
	gen  uint32
	slot int32
}

// Cancel prevents the event from firing. Cancelling an already fired or
// already cancelled timer is a no-op, as is cancelling the zero Timer.
func (t Timer) Cancel() {
	if t.s == nil {
		return
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen {
		return // already fired, cancelled, or slot recycled
	}
	sl.gen++
	sl.fn = nil
	t.s.free = append(t.s.free, t.slot)
	t.s.live--
	t.s.dead++
	t.s.maybeCompact()
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.s != nil && t.s.slots[t.slot].gen == t.gen
}

// Wheel geometry. A tick is 2^-16 s (~15.3 µs); each level's bucket
// spans 256x the previous level's, so the four levels cover 2^32 ticks
// (~18 simulated hours) ahead of the cursor. Events beyond that wait in
// the overflow level.
const (
	tickBits   = 16 // ticks per second = 1 << tickBits
	levelBits  = 8  // buckets per level = 1 << levelBits
	numLevels  = 4
	levelSlots = 1 << levelBits
	levelMask  = levelSlots - 1
	levelWords = levelSlots / 64

	ticksPerSecond = 1 << tickBits
	// maxTick caps the tick of very distant events so the float-to-int
	// conversion below is always in range; order among capped events is
	// still exact because buckets sort by (at, key, seq).
	maxTick = uint64(1) << 62
)

// tickOf discretizes a timestamp. It is monotone: t1 <= t2 implies
// tickOf(t1) <= tickOf(t2), which is all correctness needs — events of
// one tick are ordered by (at, key, seq) when their bucket is reached.
func tickOf(t float64) uint64 {
	ticks := t * ticksPerSecond
	if ticks >= float64(maxTick) {
		return maxTick
	}
	return uint64(ticks)
}

// level is one wheel: a ring of buckets with an occupancy bitmap so the
// cursor can jump straight to the next non-empty bucket.
type level struct {
	bucket [levelSlots][]entry
	bitmap [levelWords]uint64
}

// next returns the first occupied bucket index >= from, if any.
func (l *level) next(from int) (int, bool) {
	if from >= levelSlots {
		return 0, false
	}
	w := from >> 6
	word := l.bitmap[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= levelWords {
			return 0, false
		}
		word = l.bitmap[w]
	}
}

// Scheduler owns the simulated clock and the pending event set.
// The zero value is ready to use at time 0.
type Scheduler struct {
	now      float64
	seq      uint64
	fired    uint64
	cascaded uint64

	// cur is the working set at the wheel cursor: entries with tick <=
	// curTick, sorted by (at, seq); cur[curIdx] is the next candidate.
	cur    []entry
	curIdx int
	// curTick is the wheel cursor. All bucketed entries have tick >
	// curTick; it trails no pending event and may run ahead of Now when
	// RunUntil stops between events.
	curTick  uint64
	levels   [numLevels]level
	overflow []entry // events beyond the wheel horizon

	slots []slot
	free  []int32 // recycled slot ids, LIFO
	live  int     // pending non-cancelled events
	dead  int     // cancelled entries still buffered
}

// Now returns the current simulated time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Cascaded returns the number of entry migrations the wheel has
// performed — entries re-inserted from a higher level toward level 0
// as the cursor advanced. The ratio cascaded/fired is the amortized
// wheel-maintenance cost per event; the shard snapshots publish it as
// a live utilization signal to watch for pathological wheel occupancy.
// (It is schedule-dependent — per-wheel occupancy differs between the
// serial engine and a partitioned run — so it stays out of the
// executor-invariant metrics registry.)
func (s *Scheduler) Cascaded() uint64 { return s.cascaded }

// Pending returns the number of live (non-cancelled) events still
// queued.
func (s *Scheduler) Pending() int { return s.live }

// Reset returns the scheduler to its zero state — clock at 0, no
// pending events, all Timer handles inert — while retaining the
// capacity of every bucket, the slot table and the freelist, so a
// pooled scheduler runs its next simulation without reallocating.
func (s *Scheduler) Reset() {
	s.now, s.seq, s.fired, s.cascaded = 0, 0, 0, 0
	s.cur = s.cur[:0]
	s.curIdx = 0
	s.curTick = 0
	s.overflow = s.overflow[:0]
	for l := range s.levels {
		lv := &s.levels[l]
		for w, word := range lv.bitmap {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				j := w<<6 + b
				lv.bucket[j] = lv.bucket[j][:0]
			}
			lv.bitmap[w] = 0
		}
	}
	s.live, s.dead = 0, 0
	s.free = s.free[:0]
	for i := range s.slots {
		s.slots[i].fn = nil
		s.slots[i].gen++ // invalidate handles from the previous run
		s.free = append(s.free, int32(i))
	}
}

// At schedules fn at the absolute simulated time at, which must not be in
// the past, and returns a cancellable handle.
func (s *Scheduler) At(at float64, fn Event) Timer {
	return s.schedule(at, s.now, fn)
}

// AtOrigin schedules fn at the absolute simulated time at with an
// explicit causal origin: the simulated instant the event came into
// existence, possibly on another scheduler's clock. Should several
// events land on the same firing time, they fire in origin order before
// falling back to scheduling order, so a cross-shard injection keeps
// the position its emission time would have earned it on a serial
// engine, even though it is scheduled late (at the window barrier,
// after every window-local event already drew its sequence number).
// origin must not exceed at; it may precede the local clock.
func (s *Scheduler) AtOrigin(at, origin float64, fn Event) Timer {
	if origin > at {
		panic("des: origin after firing time")
	}
	return s.schedule(at, origin, fn)
}

func (s *Scheduler) schedule(at, key float64, fn Event) Timer {
	if at < s.now {
		panic("des: scheduling into the past")
	}
	if fn == nil {
		panic("des: nil event")
	}
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		id = int32(len(s.slots) - 1)
	}
	sl := &s.slots[id]
	sl.fn = fn
	s.live++
	s.insert(entry{at: at, key: key, seq: s.seq, genslot: packGenSlot(sl.gen, id)})
	s.seq++
	return Timer{s: s, gen: sl.gen, slot: id}
}

// After schedules fn after delay seconds (delay >= 0).
func (s *Scheduler) After(delay float64, fn Event) Timer {
	if delay < 0 {
		panic("des: negative delay")
	}
	return s.At(s.now+delay, fn)
}

// before reports whether entry a fires before entry b: earlier firing
// time, then earlier causal origin, then FIFO by sequence number. For
// events scheduled with At the key is the clock at seq assignment, so
// key order and seq order agree and the net effect is the classic
// (at, seq) FIFO; the key only decides when AtOrigin is in play.
func before(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// cmpEntry is the slices.SortFunc order matching before.
func cmpEntry(a, b entry) int {
	switch {
	case before(a, b):
		return -1
	case before(b, a):
		return 1
	default:
		return 0
	}
}

// insert places an entry into the working set, a wheel bucket, or the
// overflow level, keyed by its tick relative to the cursor.
func (s *Scheduler) insert(e entry) {
	t := tickOf(e.at)
	if t <= s.curTick {
		// At or behind the cursor (the cursor may run ahead of Now):
		// merge into the sorted working set.
		s.curInsert(e)
		return
	}
	if s.live+s.dead == 1 && s.curIdx == len(s.cur) {
		// Only event in the queue: jump the cursor straight to it and
		// skip the wheels — the schedule-one/fire-one pattern pays no
		// cascade this way.
		s.curTick = t
		s.curInsert(e)
		return
	}
	diff := t ^ s.curTick
	lvl := (bits.Len64(diff) - 1) / levelBits
	if lvl >= numLevels {
		s.overflow = append(s.overflow, e)
		return
	}
	shift := uint(lvl) * levelBits
	j := int(t>>shift) & levelMask
	lv := &s.levels[lvl]
	lv.bucket[j] = append(lv.bucket[j], e)
	lv.bitmap[j>>6] |= 1 << (uint(j) & 63)
}

// curInsert merges an entry into the sorted working set.
func (s *Scheduler) curInsert(e entry) {
	if n := len(s.cur); s.curIdx == n {
		// Empty working set: the entry is the whole of it.
		s.cur = append(s.cur[:0], e)
		s.curIdx = 0
		return
	} else if !before(e, s.cur[n-1]) {
		// Sorts last (the common cascade order): plain append.
		s.cur = append(s.cur, e)
		return
	}
	if s.curIdx > 0 {
		// Drop the consumed prefix so the buffer stays bounded.
		n := copy(s.cur, s.cur[s.curIdx:])
		s.cur = s.cur[:n]
		s.curIdx = 0
	}
	lo, hi := 0, len(s.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if before(s.cur[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.cur = append(s.cur, entry{})
	copy(s.cur[lo+1:], s.cur[lo:])
	s.cur[lo] = e
}

// takeBucket detaches bucket j of level lvl, clearing its occupancy
// bit, and returns its entries. The backing array stays with the bucket
// for reuse.
func (s *Scheduler) takeBucket(lvl, j int) []entry {
	lv := &s.levels[lvl]
	b := lv.bucket[j]
	lv.bucket[j] = b[:0]
	lv.bitmap[j>>6] &^= 1 << (uint(j) & 63)
	return b
}

// refill advances the cursor to the next occupied tick and loads its
// events into the working set, cascading higher-level buckets toward
// level 0 on the way. It reports false when nothing is pending beyond
// the working set.
func (s *Scheduler) refill() bool {
	for {
		if s.curIdx < len(s.cur) {
			return true
		}
		s.cur = s.cur[:0]
		s.curIdx = 0
		found := false
		for lvl := 0; lvl < numLevels; lvl++ {
			shift := uint(lvl) * levelBits
			idx := int(s.curTick>>shift) & levelMask
			j, ok := s.levels[lvl].next(idx + 1)
			if !ok {
				continue
			}
			// Jump the cursor to the start of the found bucket's span.
			below := uint64(1)<<(shift+levelBits) - 1
			s.curTick = s.curTick&^below | uint64(j)<<shift
			b := s.takeBucket(lvl, j)
			if lvl == 0 {
				// A level-0 bucket holds exactly the events of tick
				// curTick: sort once and it becomes the working set.
				s.cur = append(s.cur, b...)
				if len(s.cur) > 1 {
					sortEntries(s.cur)
				}
			} else {
				// Cascade: re-keyed against the new cursor, each entry
				// lands at a lower level (or straight in the working
				// set when its tick is the cursor's).
				s.cascaded += uint64(len(b))
				for _, e := range b {
					s.insert(e)
				}
			}
			found = true
			break
		}
		if found {
			continue
		}
		if len(s.overflow) > 0 {
			s.rollover()
			continue
		}
		return false
	}
}

// rollover runs when the wheels drain while far-future events wait in
// the overflow level: the cursor jumps to the earliest overflow tick
// and every overflow event within the new horizon cascades into the
// wheels.
func (s *Scheduler) rollover() {
	minTick := maxTick + 1
	for i := range s.overflow {
		if t := tickOf(s.overflow[i].at); t < minTick {
			minTick = t
		}
	}
	s.curTick = minTick
	keep := s.overflow[:0]
	for _, e := range s.overflow {
		if tickOf(e.at)^s.curTick >= uint64(1)<<(numLevels*levelBits) {
			keep = append(keep, e)
			continue
		}
		s.insert(e)
	}
	s.overflow = keep
}

// sortEntries orders a bucket by (at, key, seq): insertion sort for the
// typical handful of events, pdqsort beyond that. Both are
// allocation-free.
func sortEntries(es []entry) {
	if len(es) <= 24 {
		for i := 1; i < len(es); i++ {
			e := es[i]
			j := i - 1
			for j >= 0 && before(e, es[j]) {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = e
		}
		return
	}
	slices.SortFunc(es, cmpEntry)
}

// nextLive positions cur[curIdx] on the next live event, discarding
// cancelled entries as they surface. It reports false when the queue
// has no live events.
func (s *Scheduler) nextLive() bool {
	for {
		for s.curIdx < len(s.cur) {
			e := s.cur[s.curIdx]
			if s.slots[e.slot()].gen == e.gen() {
				return true
			}
			s.curIdx++ // lazily discard a cancelled entry
			s.dead--
		}
		if !s.refill() {
			return false
		}
	}
}

// maybeCompact rebuilds the buckets without dead entries once they
// outnumber the live ones, bounding memory under heavy cancellation.
func (s *Scheduler) maybeCompact() {
	if s.dead <= 64 || s.dead <= s.live {
		return
	}
	liveOf := func(es []entry) []entry {
		w := 0
		for _, e := range es {
			if s.slots[e.slot()].gen == e.gen() {
				es[w] = e
				w++
			}
		}
		return es[:w]
	}
	// The working set keeps its sorted order (filtering preserves it);
	// the consumed prefix goes too.
	w := 0
	for r := s.curIdx; r < len(s.cur); r++ {
		e := s.cur[r]
		if s.slots[e.slot()].gen == e.gen() {
			s.cur[w] = e
			w++
		}
	}
	s.cur = s.cur[:w]
	s.curIdx = 0
	for l := range s.levels {
		lv := &s.levels[l]
		for wd, word := range lv.bitmap {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				j := wd<<6 + b
				lv.bucket[j] = liveOf(lv.bucket[j])
				if len(lv.bucket[j]) == 0 {
					lv.bitmap[wd] &^= 1 << uint(b)
				}
			}
		}
	}
	s.overflow = liveOf(s.overflow)
	s.dead = 0
}

// fire executes a live entry the cursor has already consumed.
func (s *Scheduler) fire(e entry) {
	sl := &s.slots[e.slot()]
	fn := sl.fn
	sl.fn = nil
	sl.gen++
	s.free = append(s.free, e.slot())
	s.live--
	s.now = e.at
	s.fired++
	fn()
}

// Step executes the next pending event, advancing the clock. It returns
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	if !s.nextLive() {
		return false
	}
	e := s.cur[s.curIdx]
	s.curIdx++
	s.fire(e)
	return true
}

// RunUntil executes events until the clock would pass the deadline or the
// queue drains; the clock finishes exactly at the deadline.
func (s *Scheduler) RunUntil(deadline float64) {
	if deadline < s.now {
		panic("des: deadline in the past")
	}
	for s.nextLive() {
		e := s.cur[s.curIdx]
		if e.at > deadline {
			break
		}
		s.curIdx++
		s.fire(e)
	}
	s.now = deadline
}

// RunBefore executes every event strictly earlier than limit and leaves
// the clock exactly at limit. It is the window primitive for bounded-
// horizon (conservative lookahead) execution: a shard advances through
// half-open windows [t, t+Δ) with RunBefore, exchanges cross-shard
// bundles at the barrier, and finishes a phase with RunUntil so the
// phase boundary itself (inclusive) matches the serial engine's.
func (s *Scheduler) RunBefore(limit float64) {
	if limit < s.now {
		panic("des: limit in the past")
	}
	for s.nextLive() {
		e := s.cur[s.curIdx]
		if e.at >= limit {
			break
		}
		s.curIdx++
		s.fire(e)
	}
	s.now = limit
}

// Run executes events until the queue drains. Use RunUntil for
// simulations with self-sustaining event chains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
