package stats

import "repro/internal/checkpoint"

// Save writes the accumulator's running state.
func (w *Welford) Save(cw *checkpoint.Writer) {
	cw.Int(w.n)
	cw.F64(w.mean)
	cw.F64(w.m2)
}

// Restore overlays state saved by Save.
func (w *Welford) Restore(r *checkpoint.Reader) {
	w.n = r.Int()
	w.mean = r.F64()
	w.m2 = r.F64()
}

// Save writes the accumulator's running state.
func (c *Cov) Save(cw *checkpoint.Writer) {
	cw.Int(c.n)
	cw.F64(c.mx)
	cw.F64(c.my)
	cw.F64(c.cxy)
}

// Restore overlays state saved by Save.
func (c *Cov) Restore(r *checkpoint.Reader) {
	c.n = r.Int()
	c.mx = r.F64()
	c.my = r.F64()
	c.cxy = r.F64()
}
