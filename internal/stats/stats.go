// Package stats implements the descriptive statistics used by the
// reproduction: moments, covariance and autocovariance of loss-event
// interval sequences, time-weighted averages for rate processes, running
// (Welford) accumulators, quantiles and histogram binning.
//
// The paper's analysis is phrased in terms of Palm expectations (averages
// over loss events) versus time averages; TimeWeightedMean and the event
// accumulators make that distinction explicit in code.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It panics on empty input;
// empty inputs indicate a programming error in an experiment driver.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n).
// Population rather than sample variance is used because the estimators
// in the paper are defined as plain moment ratios of long traces.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation StdDev/Mean of xs.
// It panics if the mean is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		panic("stats: CV of zero-mean data")
	}
	return StdDev(xs) / m
}

// Covariance returns the population covariance of the paired samples
// (xs[i], ys[i]). It panics if the lengths differ or the input is empty.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: covariance length mismatch")
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// or 0 if either series is constant.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Autocovariance returns the lag-k autocovariance of xs computed over the
// overlapping window, using the global mean (the standard biased
// estimator). It panics if k < 0 or k >= len(xs).
func Autocovariance(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		panic("stats: autocovariance lag out of range")
	}
	m := Mean(xs)
	s := 0.0
	for i := 0; i+k < len(xs); i++ {
		s += (xs[i] - m) * (xs[i+k] - m)
	}
	return s / float64(len(xs))
}

// TimeWeightedMean returns the time average of a piecewise-constant rate
// process: sum(values[i]*durations[i]) / sum(durations[i]). This is the
// throughput x-bar of the paper when values are send rates over inter
// loss-event intervals. It panics on length mismatch, empty input, or
// non-positive total duration.
func TimeWeightedMean(values, durations []float64) float64 {
	if len(values) != len(durations) {
		panic("stats: time-weighted mean length mismatch")
	}
	if len(values) == 0 {
		panic(ErrEmpty)
	}
	num, den := 0.0, 0.0
	for i := range values {
		if durations[i] < 0 {
			panic("stats: negative duration")
		}
		num += values[i] * durations[i]
		den += durations[i]
	}
	if den <= 0 {
		panic("stats: non-positive total duration")
	}
	return num / den
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the five-number summary plus moments of a sample,
// mirroring the box plots used in the paper's Figure 10.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Q1, Med, Q3 float64
	Max              float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Med:    Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// Welford is a running accumulator for count, mean and variance that is
// numerically stable for long traces. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the running coefficient of variation, or 0 for a zero mean.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Cov is a running accumulator for the covariance of paired observations.
// The zero value is ready to use.
type Cov struct {
	n      int
	mx, my float64
	cxy    float64
}

// Add incorporates one pair (x, y).
func (c *Cov) Add(x, y float64) {
	c.n++
	dx := x - c.mx
	c.mx += dx / float64(c.n)
	c.my += (y - c.my) / float64(c.n)
	c.cxy += dx * (y - c.my)
}

// N returns the number of pairs added.
func (c *Cov) N() int { return c.n }

// Covariance returns the running population covariance (0 when n < 2).
func (c *Cov) Covariance() float64 {
	if c.n < 2 {
		return 0
	}
	return c.cxy / float64(c.n)
}

// MeanX returns the running mean of the first coordinate.
func (c *Cov) MeanX() float64 { return c.mx }

// MeanY returns the running mean of the second coordinate.
func (c *Cov) MeanY() float64 { return c.my }

// LinReg returns the least-squares slope and intercept of y on x.
// A constant x yields slope 0 and intercept Mean(ys).
func LinReg(xs, ys []float64) (slope, intercept float64) {
	vx := Variance(xs)
	if vx == 0 {
		return 0, Mean(ys)
	}
	slope = Covariance(xs, ys) / vx
	intercept = Mean(ys) - slope*Mean(xs)
	return slope, intercept
}

// Bin partitions the paired samples (x, y) into nbins equal-width bins
// over the x range and returns, per non-empty bin, the bin center and the
// mean of y in that bin. The paper's lab experiments report averages over
// consecutive bins this way.
func Bin(xs, ys []float64, nbins int) (centers, means []float64) {
	if len(xs) != len(ys) {
		panic("stats: bin length mismatch")
	}
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if nbins <= 0 {
		panic("stats: non-positive bin count")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return []float64{lo}, []float64{Mean(ys)}
	}
	width := (hi - lo) / float64(nbins)
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for i, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	for b := 0; b < nbins; b++ {
		if counts[b] == 0 {
			continue
		}
		centers = append(centers, lo+(float64(b)+0.5)*width)
		means = append(means, sums[b]/float64(counts[b]))
	}
	return centers, means
}
