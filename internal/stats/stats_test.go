package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); v != 2 {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt2, 1e-12) {
		t.Fatalf("stddev = %v", s)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 2, 2}
	if cv := CV(xs); cv != 0 {
		t.Fatalf("cv of constant = %v", cv)
	}
}

func TestCovarianceSign(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Covariance(xs, ys); c <= 0 {
		t.Fatalf("positive association has cov %v", c)
	}
	zs := []float64{8, 6, 4, 2}
	if c := Covariance(xs, zs); c >= 0 {
		t.Fatalf("negative association has cov %v", c)
	}
}

func TestCorrelationBounds(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if c := Correlation(xs, ys); !almost(c, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("correlation with constant = %v", c)
	}
}

func TestAutocovarianceLagZeroIsVariance(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got, want := Autocovariance(xs, 0), Variance(xs); !almost(got, want, 1e-12) {
		t.Fatalf("autocov lag 0 = %v, want variance %v", got, want)
	}
}

func TestAutocovarianceIIDNearZero(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Exp(1)
	}
	ac := Autocovariance(xs, 1)
	if math.Abs(ac) > 0.02 {
		t.Fatalf("iid lag-1 autocov = %v, want ~0", ac)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	// Rate 10 for 1s and rate 0 for 9s: time average 1.
	got := TimeWeightedMean([]float64{10, 0}, []float64{1, 9})
	if !almost(got, 1, 1e-12) {
		t.Fatalf("time-weighted mean = %v", got)
	}
}

func TestTimeWeightedMeanFellerParadox(t *testing.T) {
	// Event average of X is (10+0)/2 = 5; the time average weights the
	// long low-rate interval more. This is the "bus stop" viewpoint
	// distinction the paper leans on.
	event := Mean([]float64{10, 0})
	timeAvg := TimeWeightedMean([]float64{10, 0}, []float64{1, 9})
	if timeAvg >= event {
		t.Fatalf("time average %v should be below event average %v", timeAvg, event)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Median(xs); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Interpolation between order statistics.
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Fatalf("interpolated median = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Med != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.Norm()*3 + 7
		w.Add(xs[i])
	}
	if !almost(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almost(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("welford var %v vs batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("welford N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CV() != 0 {
		t.Fatal("empty welford should be all-zero")
	}
}

func TestCovMatchesBatch(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	var c Cov
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = xs[i]*2 + r.Norm()*0.1
		c.Add(xs[i], ys[i])
	}
	if !almost(c.Covariance(), Covariance(xs, ys), 1e-9) {
		t.Fatalf("running cov %v vs batch %v", c.Covariance(), Covariance(xs, ys))
	}
	if !almost(c.MeanX(), Mean(xs), 1e-9) || !almost(c.MeanY(), Mean(ys), 1e-9) {
		t.Fatal("running means diverge from batch")
	}
}

func TestLinReg(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinReg(xs, ys)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Fatalf("linreg = %v, %v", slope, intercept)
	}
	slope, intercept = LinReg([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("constant-x linreg = %v, %v", slope, intercept)
	}
}

func TestBin(t *testing.T) {
	xs := []float64{0, 0.1, 0.9, 1.0}
	ys := []float64{1, 1, 3, 3}
	centers, means := Bin(xs, ys, 2)
	if len(centers) != 2 {
		t.Fatalf("bins = %v / %v", centers, means)
	}
	if means[0] != 1 || means[1] != 3 {
		t.Fatalf("bin means = %v", means)
	}
	// Degenerate x-range collapses to one bin.
	c, m := Bin([]float64{2, 2}, []float64{1, 3}, 4)
	if len(c) != 1 || m[0] != 2 {
		t.Fatalf("degenerate bin = %v %v", c, m)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { Mean(nil) },
		func() { Covariance([]float64{1}, []float64{1, 2}) },
		func() { Autocovariance([]float64{1, 2}, 5) },
		func() { Autocovariance([]float64{1, 2}, -1) },
		func() { TimeWeightedMean([]float64{1}, []float64{}) },
		func() { TimeWeightedMean([]float64{1}, []float64{-1}) },
		func() { Quantile([]float64{1}, 2) },
		func() { Bin([]float64{1}, []float64{1}, 0) },
		func() { CV([]float64{1, -1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: variance is never negative and the mean lies within [min, max].
func TestQuickMomentInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		if Variance(xs) < -1e-9 {
			return false
		}
		m := Mean(xs)
		return m >= Quantile(xs, 0)-1e-9 && m <= Quantile(xs, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz — |cov(x,y)| <= sd(x)*sd(y).
func TestQuickCauchySchwarz(t *testing.T) {
	r := rng.New(77)
	f := func(n uint8) bool {
		k := int(n%32) + 2
		xs := make([]float64, k)
		ys := make([]float64, k)
		for i := range xs {
			xs[i] = r.Norm()
			ys[i] = r.Norm()
		}
		return math.Abs(Covariance(xs, ys)) <= StdDev(xs)*StdDev(ys)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	r := rng.New(88)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = r.Float64()
	}
	f := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
