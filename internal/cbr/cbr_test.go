package cbr

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tcp"
	"repro/internal/topology"
)

func TestProbeCountsLossEvents(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1.25e6, 0.01, netsim.NewDropTail(50))
	net := topology.NewDumbbell(&s, link)
	// Saturating TCP flow creates periodic loss episodes; the probe
	// samples them.
	csnd, _ := tcp.NewFlow(&s, net, 1, tcp.DefaultConfig(), 0, 0.015)
	probe := NewProbe(&s, net, 2, 1000, 20, true, 0.05, 3, 0, 0.015)
	csnd.Start()
	probe.Start()
	s.RunUntil(30)
	probe.ResetStats()
	s.RunUntil(330)
	st := probe.Stats()
	if st.PacketsSent < 5000 {
		t.Fatalf("probe sent only %d packets", st.PacketsSent)
	}
	if st.LossEvents == 0 {
		t.Fatal("probe saw no loss events on a congested link")
	}
	if st.LossEventRate <= 0 || st.LossEventRate > 0.2 {
		t.Fatalf("probe loss-event rate = %v", st.LossEventRate)
	}
}

func TestProbeCBRSpacing(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e9, 0, netsim.NewDropTail(1000))
	net := topology.NewDumbbell(&s, link)
	var arrivals []float64
	net.AttachFlow(7, netsim.EndpointFunc(func(*netsim.Packet) {}),
		netsim.EndpointFunc(func(p *netsim.Packet) { arrivals = append(arrivals, s.Now()) }), 0, 0)
	p := &Probe{sched: &s, net: net, flow: 7, size: 100, rate: 10, random: rng.New(1), rttGuess: 0.1}
	p.events = netsim.NewLossEventCounter(func() float64 { return 0.1 })
	p.Start()
	s.RunUntil(1.05)
	// 10 packets/s CBR: arrivals 0.1 apart (after the first immediate one).
	if len(arrivals) < 10 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[5] - arrivals[4]
	if math.Abs(gap-0.1) > 1e-6 {
		t.Fatalf("CBR gap = %v, want 0.1", gap)
	}
}

func TestPoissonProbeExponentialGaps(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e9, 0, netsim.NewDropTail(100000))
	net := topology.NewDumbbell(&s, link)
	probe := NewProbe(&s, net, 7, 100, 50, true, 0.1, 5, 0, 0)
	var arrivals []float64
	inner := link.Deliver
	link.Deliver = func(p *netsim.Packet) {
		arrivals = append(arrivals, s.Now())
		inner(p)
	}
	probe.Start()
	s.RunUntil(200)
	if len(arrivals) < 5000 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Mean gap ~ 1/50 s; CV ~ 1 for exponential.
	gaps := make([]float64, len(arrivals)-1)
	sum := 0.0
	for i := 1; i < len(arrivals); i++ {
		gaps[i-1] = arrivals[i] - arrivals[i-1]
		sum += gaps[i-1]
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-0.02) > 0.002 {
		t.Fatalf("mean gap = %v, want 0.02", mean)
	}
	varsum := 0.0
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("gap cv = %v, want ~1 (exponential)", cv)
	}
}

// Figure 6 reproduced at the module level: the audio sender is
// conservative with SQRT and non-conservative with PFTK under heavy loss.
func TestAudioClaim2(t *testing.T) {
	params := formula.ParamsForRTT(0.2)
	heavy := 0.2
	sqrtRes := NewAudio(formula.NewSQRT(params), 4, 0.02, heavy, 11).Run(200000, 1000)
	if sqrtRes.Normalized > 1.005 {
		t.Fatalf("SQRT audio normalized = %v, want <= 1", sqrtRes.Normalized)
	}
	pftkRes := NewAudio(formula.NewPFTKSimplified(params), 4, 0.02, heavy, 12).Run(200000, 1000)
	if pftkRes.Normalized < 1.01 {
		t.Fatalf("PFTK audio normalized = %v, want > 1", pftkRes.Normalized)
	}
	// Light loss: both conservative.
	light := NewAudio(formula.NewPFTKSimplified(params), 4, 0.02, 0.005, 13).Run(100000, 1000)
	if light.Normalized > 1.01 {
		t.Fatalf("light-loss PFTK audio normalized = %v, want <= 1", light.Normalized)
	}
	// The measured loss-event rate tracks the drop probability
	// (geometric intervals, every loss its own event).
	if math.Abs(pftkRes.LossEventRate-heavy)/heavy > 0.05 {
		t.Fatalf("audio loss-event rate = %v, want ~%v", pftkRes.LossEventRate, heavy)
	}
	if pftkRes.CVEstimatorSq <= 0 {
		t.Fatal("estimator CV² should be positive")
	}
}

// Figure 6 bottom plots the squared CV of θ̂. For geometric intervals
// the exact value is cv²[θ̂] = (1-p)·Σw² (i.i.d. inputs through the
// normalized moving average): ~0.284·(1-p) for the L = 4 TFRC weights.
// Note this is mildly DECREASING in p; the paper's plot shows an
// increasing trend, which is a finite-sample artifact at small p (few
// loss events in a fixed-duration run) — see EXPERIMENTS.md.
func TestAudioCVMatchesTheory(t *testing.T) {
	params := formula.ParamsForRTT(0.2)
	sumW2 := 0.0
	for _, w := range []float64{1.0 / 3, 1.0 / 3, 2.0 / 9, 1.0 / 9} {
		sumW2 += w * w
	}
	for _, p := range []float64{0.05, 0.25} {
		got := NewAudio(formula.NewSQRT(params), 4, 0.02, p, 21).Run(300000, 1000).CVEstimatorSq
		want := (1 - p) * sumW2
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("p=%v: cv² = %v, want %v", p, got, want)
		}
	}
}

// Larger L smooths the estimator and weakens both effects (the paper's
// L = 8 remark for Figure 6).
func TestAudioLargerLWeakerEffect(t *testing.T) {
	params := formula.ParamsForRTT(0.2)
	over := func(L int) float64 {
		res := NewAudio(formula.NewPFTKSimplified(params), L, 0.02, 0.2, 31).Run(200000, 1000)
		return res.Normalized - 1
	}
	o4, o8 := over(4), over(8)
	if o4 <= 0 || o8 <= 0 {
		t.Fatalf("overshoot should be positive: L4=%v L8=%v", o4, o8)
	}
	if o8 >= o4 {
		t.Fatalf("L=8 overshoot %v should be below L=4 overshoot %v", o8, o4)
	}
}

func TestPanics(t *testing.T) {
	var s des.Scheduler
	link := netsim.NewLink(&s, 1e6, 0, netsim.NewDropTail(10))
	net := topology.NewDumbbell(&s, link)
	f := formula.NewSQRT(formula.DefaultParams())
	cases := []func(){
		func() { NewProbe(nil, net, 1, 100, 1, false, 0.1, 1, 0, 0) },
		func() { NewProbe(&s, net, 1, 0, 1, false, 0.1, 1, 0, 0) },
		func() { NewProbe(&s, net, 1, 100, 0, false, 0.1, 1, 0, 0) },
		func() { NewProbe(&s, net, 1, 100, 1, false, 0, 1, 0, 0) },
		func() {
			p := NewProbe(&s, net, 2, 100, 1, false, 0.1, 1, 0, 0)
			p.Start()
			p.Start()
		},
		func() { NewAudio(nil, 4, 0.02, 0.1, 1) },
		func() { NewAudio(f, 0, 0.02, 0.1, 1) },
		func() { NewAudio(f, 4, 0, 0.1, 1) },
		func() { NewAudio(f, 4, 0.02, 0, 1) },
		func() { NewAudio(f, 4, 0.02, 0.1, 1).Run(0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
