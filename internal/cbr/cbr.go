// Package cbr provides the non-adaptive probe senders of the paper's
// experiments: a constant-bit-rate source, a Poisson source (used as the
// p” reference in Claim 3 / Figure 7), and the audio-style sender of
// Claim 2 / Figure 6 that keeps a fixed packet rate but modulates packet
// length by the equation.
package cbr

import (
	"math"

	"repro/internal/des"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// Probe is a non-adaptive sender that records the loss events its own
// packet stream experiences (detected at the receiver by sequence gaps).
// It is the measurement instrument for the "non-adaptive source" rows of
// Figure 7.
type Probe struct {
	sched *des.Scheduler
	// rcvSched is the clock the receiver-side endpoint reads. It equals
	// sched unless the flow's endpoints are split across shard
	// schedulers (SetReceiverScheduler), where reading the sender's
	// clock from the receiver's goroutine would race — and would read a
	// mid-window instant instead of the delivery time.
	rcvSched *des.Scheduler
	net      netsim.Network
	flow     int
	size     int
	rate     float64 // packets per second
	poisson  bool
	random   *rng.RNG

	nextSeq    int64
	total      int64 // 0 = unbounded; else stop after this many packets
	started    bool
	done       bool
	sendTimer  des.Timer
	sendNextFn des.Event // bound once: the pacing loop re-arms per packet
	onDone     func()

	// Endpoints built once at construction and reused by Renew, so
	// recycling a probe re-attaches without allocating fresh closures.
	sendEP, recvEP netsim.Endpoint

	// receiver side
	expected int64
	events   *netsim.LossEventCounter
	rttGuess float64

	measStart  float64
	pktsSent   int64
	eventsBase int64
}

// ProbeStats summarizes a probe measurement window.
type ProbeStats struct {
	// Duration is the window length in seconds.
	Duration float64
	// PacketsSent counts packets sent in the window.
	PacketsSent int64
	// LossEvents counts loss events detected in the window.
	LossEvents int64
	// LossEventRate is LossEvents/PacketsSent.
	LossEventRate float64
}

// NewProbe attaches a probe flow to the network. rate is in packets per
// second; if poisson is true the inter-packet gaps are exponential
// (Poisson arrivals), otherwise constant (CBR). rttGuess sets the
// loss-event grouping window.
func NewProbe(sched *des.Scheduler, net netsim.Network, flow int, size int, rate float64, poisson bool, rttGuess float64, seed uint64, fwdExtra, revDelay float64) *Probe {
	p := NewProbeRaw(sched, net, flow, size, rate, poisson, rttGuess, seed)
	net.AttachFlow(flow, p.sendEP, p.recvEP, fwdExtra, revDelay)
	return p
}

// NewProbeRaw builds the probe without attaching the flow, for callers
// that attach with explicit hop slices through their executor (see
// Endpoints).
func NewProbeRaw(sched *des.Scheduler, net netsim.Network, flow int, size int, rate float64, poisson bool, rttGuess float64, seed uint64) *Probe {
	if sched == nil || net == nil {
		panic("cbr: nil scheduler or network")
	}
	if size <= 0 || rate <= 0 || rttGuess <= 0 {
		panic("cbr: invalid probe parameters")
	}
	p := &Probe{
		sched:    sched,
		rcvSched: sched,
		net:      net,
		flow:     flow,
		size:     size,
		rate:     rate,
		poisson:  poisson,
		random:   rng.New(seed),
		rttGuess: rttGuess,
	}
	p.events = netsim.NewLossEventCounter(func() float64 { return p.rttGuess })
	p.sendNextFn = p.sendNext
	p.sendEP = netsim.EndpointFunc(func(*netsim.Packet) {})
	p.recvEP = netsim.EndpointFunc(p.receive)
	return p
}

// Endpoints returns the probe's sender-side and receiver-side endpoint
// closures, for callers that attach the flow themselves.
func (p *Probe) Endpoints() (sender, receiver netsim.Endpoint) { return p.sendEP, p.recvEP }

// SetReceiverScheduler points the receiver side at the scheduler that
// fires its endpoint. Required when a probe's sender and receiver live
// on different shard schedulers; the default is the sender's scheduler.
func (p *Probe) SetReceiverScheduler(s *des.Scheduler) {
	if s == nil {
		panic("cbr: nil receiver scheduler")
	}
	p.rcvSched = s
}

// Flow returns the probe's current flow id.
func (p *Probe) Flow() int { return p.flow }

// SetTotalPackets bounds the transfer to n packets (0 = unbounded).
// Must be called before Start.
func (p *Probe) SetTotalPackets(n int64) {
	if p.started {
		panic("cbr: SetTotalPackets after Start")
	}
	if n < 0 {
		panic("cbr: negative packet total")
	}
	p.total = n
}

// OnDone registers a callback fired once, from inside the event that
// sends a finite probe's last packet. Set before Start.
func (p *Probe) OnDone(fn func()) { p.onDone = fn }

// Done reports whether a finite probe has sent its full volume.
func (p *Probe) Done() bool { return p.done }

// Quiesced reports whether the probe is done and holds no live pacing
// timer, i.e. it will never schedule another event.
func (p *Probe) Quiesced() bool { return p.done && !p.sendTimer.Active() }

// Start begins transmission.
func (p *Probe) Start() {
	if p.started {
		panic("cbr: probe already started")
	}
	p.started = true
	p.measStart = p.sched.Now()
	if p.sendNextFn == nil {
		p.sendNextFn = p.sendNext
	}
	p.sendNext()
}

// ResetStats restarts the measurement window.
func (p *Probe) ResetStats() {
	p.measStart = p.sched.Now()
	p.pktsSent = 0
	p.eventsBase = p.events.Events
}

// Stats returns the measurement-window summary.
func (p *Probe) Stats() ProbeStats {
	dur := p.sched.Now() - p.measStart
	st := ProbeStats{
		Duration:    dur,
		PacketsSent: p.pktsSent,
		LossEvents:  p.events.Events - p.eventsBase,
	}
	if p.pktsSent > 0 {
		st.LossEventRate = float64(st.LossEvents) / float64(p.pktsSent)
	}
	return st
}

func (p *Probe) sendNext() {
	p.pktsSent++
	pkt := p.net.GetPacket()
	pkt.Flow = p.flow
	pkt.Seq = p.nextSeq
	pkt.Size = p.size
	pkt.SentAt = p.sched.Now()
	pkt.Kind = netsim.Data
	p.net.SendForward(pkt)
	p.nextSeq++
	if p.total > 0 && p.nextSeq >= p.total {
		// sendTimer was the event that got us here, so nothing is live.
		p.done = true
		if p.onDone != nil {
			p.onDone()
		}
		return
	}
	gap := 1 / p.rate
	if p.poisson {
		gap = p.random.Exp(p.rate)
	}
	p.sendTimer = p.sched.After(gap, p.sendNextFn)
}

// Renew reinitializes the probe in place for a new flow, reusing the
// loss-counter buffers, RNG and endpoint closures so churn workloads
// recycle probes without allocating. The probe must be Quiesced. The
// flow is NOT re-attached — callers attach p.Endpoints() through their
// executor. The packet total resets to unbounded — call SetTotalPackets
// again for a finite transfer.
func (p *Probe) Renew(flow, size int, rate float64, poisson bool, rttGuess float64, seed uint64) {
	if size <= 0 || rate <= 0 || rttGuess <= 0 {
		panic("cbr: invalid probe parameters")
	}
	if p.started && !p.Quiesced() {
		panic("cbr: Renew on a non-quiescent probe")
	}
	p.flow = flow
	p.size = size
	p.rate = rate
	p.poisson = poisson
	p.rttGuess = rttGuess
	p.random.Reseed(seed)
	p.nextSeq = 0
	p.total = 0
	p.started = false
	p.done = false
	p.sendTimer = des.Timer{}
	// onDone is kept: it is bound once per probe (capturing the probe,
	// not the flow), so recycling does not rebuild the closure.
	p.expected = 0
	p.events.Reset()
	p.measStart = 0
	p.pktsSent = 0
	p.eventsBase = 0
}

func (p *Probe) receive(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	now := p.rcvSched.Now()
	if pkt.Seq > p.expected {
		for lost := p.expected; lost < pkt.Seq; lost++ {
			p.events.OnLoss(now, lost)
		}
	}
	if pkt.Seq >= p.expected {
		p.expected = pkt.Seq + 1
	}
}

// Audio is the Claim 2 / Figure 6 sender: it emits one packet every
// Spacing seconds (fixed packet rate) and adjusts the packet LENGTH to
// match the equation's byte rate, evaluated at the loss-event interval
// estimate its own stream experiences. The packets traverse a Bernoulli
// dropper, so the loss process is independent of packet length — the
// condition under which cov[X0, S0] = 0.
//
// Audio runs standalone on a lossy channel rather than over netsim links
// (the paper's Figure 6 uses a pure loss module); packet "delivery" is
// immediate and only the drop lottery matters.
type Audio struct {
	// Spacing is the fixed inter-packet time in seconds.
	Spacing float64
	// DropP is the Bernoulli per-packet drop probability.
	DropP float64
	// Formula maps the estimated loss-event rate to a byte rate.
	Formula formula.Formula
	// BytesPerPacketAtRate converts rate to packet length: the packet
	// length for rate X is X·Spacing bytes.

	est    *estimator.LossIntervalEstimator
	random *rng.RNG
}

// NewAudio builds the audio sender with estimator window L.
func NewAudio(f formula.Formula, L int, spacing, dropP float64, seed uint64) *Audio {
	if f == nil || L < 1 || spacing <= 0 || dropP <= 0 || dropP > 1 {
		panic("cbr: invalid audio parameters")
	}
	return &Audio{
		Spacing: spacing,
		DropP:   dropP,
		Formula: f,
		est:     estimator.NewLossIntervalEstimator(estimator.TFRCWeights(L)),
		random:  rng.New(seed),
	}
}

// AudioResult summarizes a Run.
type AudioResult struct {
	// Throughput is the time-average byte rate.
	Throughput float64
	// LossEventRate is the measured per-packet loss-event rate
	// (with a Bernoulli dropper every loss is its own event).
	LossEventRate float64
	// Normalized is Throughput / f(LossEventRate) — Figure 6 top.
	Normalized float64
	// CVEstimatorSq is the squared coefficient of variation of the
	// loss-interval estimate — Figure 6 bottom.
	CVEstimatorSq float64
	// Events counts the measured loss events.
	Events int
}

// Run simulates the audio sender for the given number of loss events
// (after priming the estimator with warmup events) and returns the
// long-run statistics. The formula's rate unit is interpreted as the
// modulated send rate; time advances Spacing per packet.
func (a *Audio) Run(events, warmup int) AudioResult {
	if events <= 0 || warmup < 0 {
		panic("cbr: invalid audio run sizing")
	}
	// Prime with a few observed intervals.
	for i := 0; i < a.est.Window(); i++ {
		a.est.Observe(float64(a.random.Geometric(a.DropP)))
	}
	var (
		sumXT, sumT float64
		sumHat      float64
		sumHatSq    float64
		thetaSum    float64
		n           int
	)
	total := warmup + events
	for i := 0; i < total; i++ {
		hat := a.est.Estimate()
		rate := a.Formula.Rate(math.Min(1, 1/hat))
		theta := float64(a.random.Geometric(a.DropP))
		dur := theta * a.Spacing
		if i >= warmup {
			sumXT += rate * dur
			sumT += dur
			sumHat += hat
			sumHatSq += hat * hat
			thetaSum += theta
			n++
		}
		a.est.Observe(theta)
	}
	meanHat := sumHat / float64(n)
	varHat := sumHatSq/float64(n) - meanHat*meanHat
	res := AudioResult{
		Throughput:    sumXT / sumT,
		LossEventRate: float64(n) / thetaSum,
		Events:        n,
	}
	res.Normalized = res.Throughput / a.Formula.Rate(res.LossEventRate)
	if meanHat > 0 && varHat > 0 {
		res.CVEstimatorSq = varHat / (meanHat * meanHat)
	}
	return res
}
