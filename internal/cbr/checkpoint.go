package cbr

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
)

// Save writes the probe's run-time state. Rate, size and grouping
// window are class configuration and come from the rebuild; the
// transfer volume is drawn per arrival, so it rides in the snapshot.
func (p *Probe) Save(w *checkpoint.Writer, cap *des.TimerCapture) {
	w.Int(p.flow)
	for _, word := range p.random.State() {
		w.U64(word)
	}
	w.I64(p.nextSeq)
	w.I64(p.total)
	w.Bool(p.started)
	w.Bool(p.done)
	w.Timer(cap.StateOf(p.sendTimer))
	w.I64(p.expected)
	p.events.Save(w)
	w.F64(p.measStart)
	w.I64(p.pktsSent)
	w.I64(p.eventsBase)
}

// Restore overlays state saved by Save onto a freshly built probe for
// the same flow and re-arms its pacing timer.
func (p *Probe) Restore(r *checkpoint.Reader) {
	if flow := r.Int(); flow != p.flow {
		r.Fail("cbr probe snapshot is for flow %d, rebuilt flow %d", flow, p.flow)
		return
	}
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	p.nextSeq = r.I64()
	p.total = r.I64()
	p.started = r.Bool()
	p.done = r.Bool()
	p.sendTimer = p.sched.RestoreTimer(r.Timer(), p.sendNextFn)
	p.expected = r.I64()
	p.events.Restore(r)
	p.measStart = r.F64()
	p.pktsSent = r.I64()
	p.eventsBase = r.I64()
	if r.Err() == nil {
		p.random.SetState(st)
	}
}
