// Package checkpoint provides the codec and container format for
// deterministic simulation snapshots: a sequential fixed-width binary
// writer/reader pair, a versioned and checksummed file envelope, and a
// config-digest helper.
//
// The package deliberately imports nothing but the standard library, so
// every simulation layer (des, netsim, topology, the protocol packages,
// shard, experiments) can depend on it without cycles. A snapshot is a
// flat byte stream: each component appends its numeric state in a fixed
// field order on save and consumes the same order on restore — no field
// names, no reflection, no pointers. Versioning is coarse by design:
// the envelope carries a codec version and the saver's config digest,
// and a reader that does not match both refuses the file instead of
// guessing.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// TimerState is the portable identity of one pending DES timer: its
// firing time, causal scheduling key and sequence number. OK reports
// whether the timer was live at capture; a dead timer round-trips as
// the zero TimerState. The des package produces these at save time and
// re-arms events from them at restore, so the restored wheel fires in
// exactly the original (at, key, seq) total order.
type TimerState struct {
	OK      bool
	At, Key float64
	Seq     uint64
}

// Writer appends fixed-width little-endian primitives to a buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 by its IEEE-754 bits, so every value — signed
// zeros and NaN payloads included — round-trips exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Timer writes a TimerState.
func (w *Writer) Timer(t TimerState) {
	w.Bool(t.OK)
	w.F64(t.At)
	w.F64(t.Key)
	w.U64(t.Seq)
}

// Reader consumes a payload written by Writer, in the same field order.
// Errors are sticky: the first short read poisons the reader, every
// later call returns zero values, and Err reports the failure — so
// restore code reads linearly and checks once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over the payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) err0(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("checkpoint: truncated payload: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return true
	}
	return false
}

// Err returns the sticky decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail poisons the reader with a restore-side validation error, so a
// structural mismatch surfaces exactly like a truncation.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err0(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err0(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err0(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := int(r.U32())
	if r.err != nil || r.err0(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Timer reads a TimerState.
func (r *Reader) Timer() TimerState {
	var t TimerState
	t.OK = r.Bool()
	t.At = r.F64()
	t.Key = r.F64()
	t.Seq = r.U64()
	return t
}

// Count reads a non-negative element count and validates it against a
// conservative bound (each element needs at least one byte of payload),
// so a corrupted length cannot drive a huge allocation.
func (r *Reader) Count() int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining() {
		r.Fail("implausible element count %d with %d bytes remaining", n, r.Remaining())
		return 0
	}
	return n
}
