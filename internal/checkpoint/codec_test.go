package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.F64(3.141592653589793)
	w.F64(math.Inf(-1))
	w.F64(math.Copysign(0, -1))
	w.Str("hello, checkpoint")
	w.Str("")
	w.Timer(TimerState{OK: true, At: 1.5, Key: 0.25, Seq: 99})
	w.Timer(TimerState{})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.F64(); got != 0 || !math.Signbit(got) {
		t.Errorf("F64 -0 = %v signbit=%v", got, math.Signbit(got))
	}
	if got := r.Str(); got != "hello, checkpoint" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if got := r.Timer(); got != (TimerState{OK: true, At: 1.5, Key: 0.25, Seq: 99}) {
		t.Errorf("Timer = %+v", got)
	}
	if got := r.Timer(); got != (TimerState{}) {
		t.Errorf("zero Timer = %+v", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d after full read", r.Remaining())
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	var w Writer
	w.U32(7)
	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every later read stays zero and does not clear the error.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("post-error Str = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("error was cleared")
	}
}

func TestReaderFail(t *testing.T) {
	r := NewReader(nil)
	r.Fail("bad %s", "thing")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "bad thing") {
		t.Fatalf("Err = %v", err)
	}
	r.Fail("second")
	if !strings.Contains(r.Err().Error(), "bad thing") {
		t.Fatal("Fail overwrote the first error")
	}
}

func TestCountGuardsImplausibleLengths(t *testing.T) {
	var w Writer
	w.Int(1 << 40) // claims a huge count with no payload behind it
	r := NewReader(w.Bytes())
	if got := r.Count(); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("expected implausible-count error")
	}

	var w2 Writer
	w2.Int(-1)
	r2 := NewReader(w2.Bytes())
	if got := r2.Count(); got != 0 || r2.Err() == nil {
		t.Fatalf("negative Count = %d err = %v", got, r2.Err())
	}

	var w3 Writer
	w3.Int(2)
	w3.U8(0)
	w3.U8(0)
	r3 := NewReader(w3.Bytes())
	if got := r3.Count(); got != 2 || r3.Err() != nil {
		t.Fatalf("valid Count = %d err = %v", got, r3.Err())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var w Writer
	w.F64(1.25)
	w.Str("payload")
	payload := w.Bytes()
	b := Encode(0xfeedface, payload)
	digest, got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if digest != 0xfeedface {
		t.Errorf("digest = %#x", digest)
	}
	if string(got) != string(payload) {
		t.Error("payload mismatch")
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	b := Encode(1, []byte("some payload bytes"))

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }, "too short"},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-9] }, "checksum"},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"flip-version", func(b []byte) []byte { b[9] ^= 1; return b }, "checksum"},
		{"flip-payload-bit", func(b []byte) []byte { b[headerLen+3] ^= 0x10; return b }, "checksum"},
		{"flip-checksum-bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum"},
		{"empty", func(b []byte) []byte { return nil }, "too short"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), b...))
			_, _, err := Decode(mut)
			if err == nil {
				t.Fatal("corrupt envelope decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := PathFor(dir, "surge/q=RED shards=2")
	if want := filepath.Join(dir, "surge_q_RED_shards_2.ckpt"); path != want {
		t.Errorf("PathFor = %q, want %q", path, want)
	}
	if err := WriteFile(path, 42, []byte("abc")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	digest, payload, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if digest != 42 || string(payload) != "abc" {
		t.Errorf("got digest=%d payload=%q", digest, payload)
	}
	// Overwrite is atomic: the second write replaces the first cleanly.
	if err := WriteFile(path, 43, []byte("def")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	digest, payload, err = ReadFile(path)
	if err != nil || digest != 43 || string(payload) != "def" {
		t.Errorf("after overwrite: digest=%d payload=%q err=%v", digest, payload, err)
	}
	// No stray tmp files left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("dir has %d entries, want 1", len(ents))
	}
}

func TestReadFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	b := Encode(7, []byte("payload"))
	b[headerLen] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v, want corrupt error naming %s", err, path)
	}
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"parkinglot h=2", "parkinglot_h_2"},
		{"a/b\\c:d", "a_b_c_d"},
		{"ok-name_1.2", "ok-name_1.2"},
		{"///", "job"},
		{"", "job"},
		{"  x  ", "x"},
	} {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := func() *Digest {
		var d Digest
		d.Str("surge")
		d.U64(2040)
		d.Int(4)
		d.F64(300)
		d.Bool(true)
		return &d
	}
	a := base().Sum()
	if b := base().Sum(); a != b {
		t.Fatal("identical field sequences digest differently")
	}
	var d Digest
	d.Str("surge")
	d.U64(2041) // one field off
	d.Int(4)
	d.F64(300)
	d.Bool(true)
	if d.Sum() == a {
		t.Fatal("digest insensitive to a field change")
	}
	var e Digest
	e.Str("surg")
	e.Str("e") // same bytes, different field boundaries
	e.U64(2040)
	e.Int(4)
	e.F64(300)
	e.Bool(true)
	if e.Sum() == a {
		t.Fatal("digest insensitive to field boundaries")
	}
}
