package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCodec drives the envelope decoder with arbitrary bytes and with
// mutations of valid encodings. Invariants: Decode never panics; a
// mutated valid encoding either fails or decodes to the original
// (digest, payload) — the checksum makes a silently wrong decode
// impossible; and re-encoding a successful decode reproduces the input.
func FuzzCodec(f *testing.F) {
	f.Add([]byte{}, uint64(0), byte(0), 0)
	f.Add([]byte("payload"), uint64(42), byte(0xff), 3)
	f.Add(bytes.Repeat([]byte{0xa5}, 64), uint64(1<<63), byte(1), 20)
	f.Fuzz(func(t *testing.T, payload []byte, digest uint64, flip byte, at int) {
		enc := Encode(digest, payload)

		// Exact encoding must round-trip.
		d, p, err := Decode(enc)
		if err != nil {
			t.Fatalf("valid encoding rejected: %v", err)
		}
		if d != digest || !bytes.Equal(p, payload) {
			t.Fatalf("round-trip mismatch: digest %x->%x", digest, d)
		}
		if !bytes.Equal(Encode(d, p), enc) {
			t.Fatal("re-encode differs from original")
		}

		pos := at % len(enc)
		if pos < 0 {
			pos += len(enc)
		}

		// Any truncation must be rejected.
		if _, _, err := Decode(enc[:pos]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", pos)
		}

		// A bit flip anywhere must be rejected (flip==0 flips nothing —
		// then the decode must still succeed with the original values).
		mut := append([]byte(nil), enc...)
		mut[pos] ^= flip
		d2, p2, err := Decode(mut)
		if flip == 0 {
			if err != nil {
				t.Fatalf("no-op mutation rejected: %v", err)
			}
		} else if err == nil {
			// FNV-1a is not cryptographic, but a single-byte flip can
			// never collide: the final mixed state differs.
			if d2 != digest || !bytes.Equal(p2, payload) {
				t.Fatalf("bit flip at %d decoded to different content", pos)
			}
		}

		// Raw-garbage decode (payload reinterpreted as a file) must not
		// panic; error or success are both fine.
		Decode(payload)

		// Reader over arbitrary bytes: drain with every primitive; must
		// not panic and must go sticky at the end.
		r := NewReader(payload)
		for r.Err() == nil && r.Remaining() > 0 {
			r.U8()
			r.U32()
			r.U64()
			r.F64()
			r.Str()
			r.Timer()
			r.Count()
		}
	})
}
