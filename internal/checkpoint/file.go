package checkpoint

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// CodecVersion is the container format version. Readers refuse files
// written under a different version rather than guessing at layouts.
const CodecVersion = 1

// magic identifies a checkpoint file. Eight bytes, fixed.
const magic = "EBRCCKP1"

// envelope layout:
//
//	[8]  magic
//	[4]  codec version (LE)
//	[8]  config digest (LE)
//	[8]  payload length (LE)
//	[n]  payload
//	[8]  FNV-1a 64 checksum of everything above (LE)
const headerLen = 8 + 4 + 8 + 8
const trailerLen = 8

// Encode wraps a payload in the versioned, checksummed envelope.
func Encode(digest uint64, payload []byte) []byte {
	var w Writer
	w.buf = make([]byte, 0, headerLen+len(payload)+trailerLen)
	w.buf = append(w.buf, magic...)
	w.U32(CodecVersion)
	w.U64(digest)
	w.U64(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	h := fnv.New64a()
	h.Write(w.buf)
	w.U64(h.Sum64())
	return w.buf
}

// Decode validates the envelope — magic, version, lengths, checksum —
// and returns the config digest and payload. Any corruption (a
// truncated file, a flipped bit anywhere) is an error, never a
// partially decoded snapshot.
func Decode(b []byte) (digest uint64, payload []byte, err error) {
	if len(b) < headerLen+trailerLen {
		return 0, nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(b))
	}
	if string(b[:8]) != magic {
		return 0, nil, fmt.Errorf("checkpoint: bad magic %q", b[:8])
	}
	body, trailer := b[:len(b)-trailerLen], b[len(b)-trailerLen:]
	h := fnv.New64a()
	h.Write(body)
	r := NewReader(trailer)
	if sum := r.U64(); sum != h.Sum64() {
		return 0, nil, fmt.Errorf("checkpoint: checksum mismatch (file %016x, computed %016x): file is corrupt", sum, h.Sum64())
	}
	r = NewReader(body[8:])
	if v := r.U32(); v != CodecVersion {
		return 0, nil, fmt.Errorf("checkpoint: codec version %d, this binary reads version %d", v, CodecVersion)
	}
	digest = r.U64()
	n := r.U64()
	if uint64(r.Remaining()) != n {
		return 0, nil, fmt.Errorf("checkpoint: payload length %d does not match header %d", r.Remaining(), n)
	}
	payload = body[headerLen:]
	return digest, payload, nil
}

// WriteFile atomically writes an encoded snapshot: the bytes land in a
// temporary file in the target directory first and are renamed over the
// destination, so a crash mid-write — or an abandoned goroutine still
// flushing after its job was retried — can never leave a half-written
// file where a resume would find it.
func WriteFile(path string, digest uint64, payload []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(Encode(digest, payload)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and validates a snapshot file.
func ReadFile(path string) (digest uint64, payload []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	digest, payload, err = Decode(b)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	return digest, payload, nil
}

// SanitizeName maps an arbitrary job label to a filesystem-safe file
// stem: runs of characters outside [A-Za-z0-9._-] collapse to one '_'.
func SanitizeName(label string) string {
	var sb strings.Builder
	pend := false
	for _, c := range label {
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if ok {
			if pend && sb.Len() > 0 {
				sb.WriteByte('_')
			}
			pend = false
			sb.WriteRune(c)
		} else {
			pend = true
		}
	}
	if sb.Len() == 0 {
		return "job"
	}
	return sb.String()
}

// PathFor returns the snapshot path of a labeled job inside dir.
func PathFor(dir, label string) string {
	return filepath.Join(dir, SanitizeName(label)+".ckpt")
}

// Digest is an incremental FNV-1a 64 hash over canonically encoded
// fields. Write config fields through the embedded Writer-like methods
// and call Sum; two configs digest equal iff every field matches.
type Digest struct {
	w Writer
}

// U64 folds a uint64 field into the digest.
func (d *Digest) U64(v uint64) { d.w.U64(v) }

// I64 folds an int64 field into the digest.
func (d *Digest) I64(v int64) { d.w.I64(v) }

// Int folds an int field into the digest.
func (d *Digest) Int(v int) { d.w.Int(v) }

// F64 folds a float64 field into the digest.
func (d *Digest) F64(v float64) { d.w.F64(v) }

// Bool folds a boolean field into the digest.
func (d *Digest) Bool(v bool) { d.w.Bool(v) }

// Str folds a string field into the digest.
func (d *Digest) Str(s string) { d.w.Str(s) }

// Sum returns the FNV-1a 64 hash of the folded fields.
func (d *Digest) Sum() uint64 {
	h := fnv.New64a()
	h.Write(d.w.Bytes())
	return h.Sum64()
}
