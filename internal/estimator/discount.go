package estimator

// History discounting (RFC 3448 §5.5): when the still-open loss interval
// grows beyond twice the average of the closed history, TFRC discounts
// the older closed intervals so the estimate responds faster to a
// long loss-free period. DiscountFactor is the RFC's 0.5 floor.
const (
	// DiscountThreshold is the multiple of the current average the open
	// interval must exceed before discounting engages.
	DiscountThreshold = 2.0
	// DiscountFloor is the minimum weight multiplier applied to closed
	// intervals (RFC 3448 uses 0.5).
	DiscountFloor = 0.5
)

// EstimateWithOpenDiscounted is EstimateWithOpen with RFC 3448 §5.5
// history discounting: once the open interval exceeds
// DiscountThreshold times the closed-history estimate, every closed
// interval's weight is multiplied by
//
//	DF = max(DiscountFloor, threshold·estimate/open)
//
// before renormalizing, which shifts mass onto the open interval and
// lets a long good period decay a stale high loss estimate faster.
// With open below the threshold it behaves exactly like
// EstimateWithOpen.
func (e *LossIntervalEstimator) EstimateWithOpenDiscounted(open float64) float64 {
	base := e.Estimate()
	if open <= 0 || len(e.history) == 0 {
		return base
	}
	df := 1.0
	if base > 0 && open > DiscountThreshold*base {
		df = DiscountThreshold * base / open
		if df < DiscountFloor {
			df = DiscountFloor
		}
	}
	// Candidate estimate with the open interval in slot 1 and the
	// closed history discounted.
	sum := e.weights[0] * open
	wsum := e.weights[0]
	for i := 0; i < len(e.history) && i+1 < len(e.weights); i++ {
		w := e.weights[i+1] * df
		sum += w * e.history[i]
		wsum += w
	}
	if cand := sum / wsum; cand > base {
		return cand
	}
	return base
}
