package estimator

import "repro/internal/checkpoint"

// Save writes the observed interval history. The weight vector is
// configuration and comes from the rebuild.
func (e *LossIntervalEstimator) Save(w *checkpoint.Writer) {
	w.Int(len(e.history))
	for _, v := range e.history {
		w.F64(v)
	}
}

// Restore overlays a history saved by Save onto a freshly built
// estimator with the same window.
func (e *LossIntervalEstimator) Restore(r *checkpoint.Reader) {
	n := r.Count()
	if n > len(e.weights) {
		r.Fail("loss-interval history of %d exceeds window %d", n, len(e.weights))
		return
	}
	e.history = e.history[:0]
	for i := 0; i < n; i++ {
		e.history = append(e.history, r.F64())
	}
}

// Save writes the smoothed value and readiness. The smoothing constant
// is configuration and comes from the rebuild.
func (rt *RTT) Save(w *checkpoint.Writer) {
	w.F64(rt.value)
	w.Bool(rt.ready)
}

// Restore overlays state saved by Save.
func (rt *RTT) Restore(r *checkpoint.Reader) {
	rt.value = r.F64()
	rt.ready = r.Bool()
}
