// Package estimator implements the loss-event interval estimator of the
// paper (eq. 2) — a moving average of the last L loss-event intervals
// with TFRC's flat-then-linearly-decaying weights, normalized to sum to
// one so that the estimate θ̂ is unbiased for the mean interval 1/p —
// plus the comprehensive-control in-interval update (eq. 4) and the
// standard EWMA round-trip-time estimator.
package estimator

import "fmt"

// TFRCWeights returns TFRC's weight vector of length L, normalized to sum
// to 1: w_l = 1 for l <= L/2, then decreasing linearly
// (w_l = 1 - (l - L/2)/(L/2 + 1) for l > L/2). For the default L = 8
// the unnormalized weights are 1,1,1,1,0.8,0.6,0.4,0.2, exactly as in
// RFC 3448. It panics if L < 1.
func TFRCWeights(L int) []float64 {
	if L < 1 {
		panic("estimator: window length must be >= 1")
	}
	w := make([]float64, L)
	half := L / 2
	sum := 0.0
	for l := 1; l <= L; l++ {
		v := 1.0
		if l > half {
			v = 1 - float64(l-half)/float64(half+1)
		}
		if v <= 0 {
			// Happens only for odd tiny L; keep a positive floor so all
			// L intervals contribute (weights must be positive, §II).
			v = 1 / float64(half+1) / 2
		}
		w[l-1] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// UniformWeights returns the flat weight vector of length L (each 1/L).
// Used as an ablation against the TFRC weights.
func UniformWeights(L int) []float64 {
	if L < 1 {
		panic("estimator: window length must be >= 1")
	}
	w := make([]float64, L)
	for i := range w {
		w[i] = 1 / float64(L)
	}
	return w
}

// ExponentialWeights returns geometrically decaying weights
// w_l ∝ decay^(l-1), normalized. Used as an ablation.
func ExponentialWeights(L int, decay float64) []float64 {
	if L < 1 {
		panic("estimator: window length must be >= 1")
	}
	if decay <= 0 || decay > 1 {
		panic("estimator: decay must be in (0,1]")
	}
	w := make([]float64, L)
	v, sum := 1.0, 0.0
	for i := range w {
		w[i] = v
		sum += v
		v *= decay
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// LossIntervalEstimator maintains the moving-average estimate
// θ̂_n = Σ_l w_l · θ_{n-l} over the most recent L closed loss-event
// intervals (most recent first). Until L intervals have been observed it
// averages over the available history with renormalized weights, which is
// how TFRC bootstraps.
type LossIntervalEstimator struct {
	weights []float64
	history []float64 // history[0] is the most recent closed interval
}

// NewLossIntervalEstimator builds an estimator with the given weights
// (most-recent-first). The weights must be positive; they are normalized
// to sum to 1 so the estimator satisfies the unbiasedness condition (E).
func NewLossIntervalEstimator(weights []float64) *LossIntervalEstimator {
	if len(weights) == 0 {
		panic("estimator: empty weight vector")
	}
	w := make([]float64, len(weights))
	sum := 0.0
	for i, v := range weights {
		if v <= 0 {
			panic(fmt.Sprintf("estimator: non-positive weight %v at %d", v, i))
		}
		w[i] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return &LossIntervalEstimator{weights: w}
}

// NewTFRC returns an estimator with TFRC weights of window L.
func NewTFRC(L int) *LossIntervalEstimator {
	return NewLossIntervalEstimator(TFRCWeights(L))
}

// Window returns the configured window length L.
func (e *LossIntervalEstimator) Window() int { return len(e.weights) }

// Weights returns a copy of the normalized weight vector.
func (e *LossIntervalEstimator) Weights() []float64 {
	return append([]float64(nil), e.weights...)
}

// Observe records a closed loss-event interval θ_n (in packets) and
// shifts the history. It panics on non-positive intervals.
func (e *LossIntervalEstimator) Observe(theta float64) {
	if theta <= 0 {
		panic("estimator: non-positive loss interval")
	}
	// Grow by one slot while the window fills, then shift in place: the
	// buffer reaches capacity L once and is reused forever after (Reset
	// keeps it), so pooled receivers observe without allocating.
	if len(e.history) < len(e.weights) {
		e.history = append(e.history, 0)
	}
	copy(e.history[1:], e.history[:len(e.history)-1])
	e.history[0] = theta
}

// Reset clears the observed history while keeping the weights and the
// history buffer's capacity, so a pooled receiver (the churn engine's
// recycled endpoints) renews its estimator without allocating.
func (e *LossIntervalEstimator) Reset() { e.history = e.history[:0] }

// Ready reports whether a full window of L intervals has been observed.
func (e *LossIntervalEstimator) Ready() bool { return len(e.history) >= len(e.weights) }

// Estimate returns θ̂_n. With fewer than L observed intervals, the
// weights over the available history are renormalized; with none, it
// returns 0 (callers must check Ready or seed via Prime).
func (e *LossIntervalEstimator) Estimate() float64 {
	if len(e.history) == 0 {
		return 0
	}
	sum, wsum := 0.0, 0.0
	for i, th := range e.history {
		sum += e.weights[i] * th
		wsum += e.weights[i]
	}
	return sum / wsum
}

// EstimateWithOpen returns the comprehensive-control estimate θ̂(t) of
// eq. (4): the estimate recomputed with the still-open interval θ(t)
// taking the most-recent slot, but only if that increases the estimate;
// otherwise the closed-interval estimate θ̂_n is kept. This is TFRC's
// "history includes the current interval if that raises the average".
func (e *LossIntervalEstimator) EstimateWithOpen(open float64) float64 {
	base := e.Estimate()
	if open <= 0 || len(e.history) == 0 {
		return base
	}
	sum := e.weights[0] * open
	wsum := e.weights[0]
	for i := 0; i < len(e.history) && i+1 < len(e.weights); i++ {
		sum += e.weights[i+1] * e.history[i]
		wsum += e.weights[i+1]
	}
	if cand := sum / wsum; cand > base {
		return cand
	}
	return base
}

// OpenThreshold returns the θ(t) value above which the open interval
// starts to lift the estimate — the boundary of the paper's condition
// A_t: θ(t) > (θ̂_n − Σ_{l≥2} w_l θ_{n-l+1}) / w_1. Below this value
// EstimateWithOpen returns Estimate.
func (e *LossIntervalEstimator) OpenThreshold() float64 {
	if len(e.history) == 0 {
		return 0
	}
	rest := 0.0
	for i := 0; i < len(e.history) && i+1 < len(e.weights); i++ {
		rest += e.weights[i+1] * e.history[i]
	}
	// With a full window, weights sum to 1 and the threshold solves
	// w1·x + rest = θ̂. With a partial window the same algebra applies
	// to the renormalized estimate; solve against the same wsum.
	wsum := e.weights[0]
	for i := 0; i < len(e.history) && i+1 < len(e.weights); i++ {
		wsum += e.weights[i+1]
	}
	return (e.Estimate()*wsum - rest) / e.weights[0]
}

// Prime fills the entire history with the given interval value, as TFRC
// does after its initial slow-start phase: the first loss interval is
// back-filled so the estimator starts at a meaningful rate.
func (e *LossIntervalEstimator) Prime(theta float64) {
	if theta <= 0 {
		panic("estimator: non-positive priming interval")
	}
	if cap(e.history) < len(e.weights) {
		e.history = make([]float64, len(e.weights))
	} else {
		e.history = e.history[:len(e.weights)]
	}
	for i := range e.history {
		e.history[i] = theta
	}
}

// History returns a copy of the closed-interval history, most recent
// first.
func (e *LossIntervalEstimator) History() []float64 {
	return append([]float64(nil), e.history...)
}

// RTT is the standard exponentially weighted moving-average round-trip
// time estimator used by TFRC: r ← q·r + (1−q)·sample with q = 0.9 by
// default. The zero value is not ready; use NewRTT.
type RTT struct {
	q     float64
	value float64
	ready bool
}

// NewRTT returns an RTT estimator with smoothing constant q in [0, 1).
// RFC 3448 uses q = 0.9.
func NewRTT(q float64) *RTT {
	if q < 0 || q >= 1 {
		panic("estimator: RTT smoothing constant outside [0,1)")
	}
	return &RTT{q: q}
}

// Sample incorporates a round-trip time measurement in seconds.
func (r *RTT) Sample(rtt float64) {
	if rtt <= 0 {
		panic("estimator: non-positive RTT sample")
	}
	if !r.ready {
		r.value = rtt
		r.ready = true
		return
	}
	r.value = r.q*r.value + (1-r.q)*rtt
}

// Reset forgets all samples, returning the estimator to its
// just-constructed state (the smoothing constant is kept).
func (r *RTT) Reset() { r.value, r.ready = 0, false }

// Value returns the current smoothed RTT (0 before any sample).
func (r *RTT) Value() float64 { return r.value }

// Ready reports whether at least one sample has been incorporated.
func (r *RTT) Ready() bool { return r.ready }
