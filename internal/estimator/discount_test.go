package estimator

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDiscountedMatchesPlainBelowThreshold(t *testing.T) {
	e := NewTFRC(8)
	r := rng.New(3)
	for i := 0; i < 30; i++ {
		e.Observe(5 + r.Float64()*10)
	}
	base := e.Estimate()
	for _, open := range []float64{0.1, base, DiscountThreshold * base * 0.99} {
		plain := e.EstimateWithOpen(open)
		disc := e.EstimateWithOpenDiscounted(open)
		if plain != disc {
			t.Fatalf("open=%v: discounted %v != plain %v below threshold", open, disc, plain)
		}
	}
}

func TestDiscountedExceedsPlainAboveThreshold(t *testing.T) {
	e := NewTFRC(8)
	for i := 0; i < 20; i++ {
		e.Observe(10)
	}
	open := 10 * DiscountThreshold * 3 // well past the threshold
	plain := e.EstimateWithOpen(open)
	disc := e.EstimateWithOpenDiscounted(open)
	if disc <= plain {
		t.Fatalf("discounted %v should exceed plain %v for a long open interval", disc, plain)
	}
}

func TestDiscountFloorBounds(t *testing.T) {
	// Even for an enormous open interval the discounted estimate stays
	// a convex-combination of history and open: never above open.
	e := NewTFRC(8)
	for i := 0; i < 20; i++ {
		e.Observe(2)
	}
	open := 1e6
	disc := e.EstimateWithOpenDiscounted(open)
	if disc > open {
		t.Fatalf("discounted estimate %v above open interval %v", disc, open)
	}
	if disc <= e.Estimate() {
		t.Fatalf("discounted estimate %v did not rise above closed %v", disc, e.Estimate())
	}
}

func TestDiscountedEmptyHistory(t *testing.T) {
	e := NewTFRC(4)
	if e.EstimateWithOpenDiscounted(10) != 0 {
		t.Fatal("empty estimator should return 0")
	}
}

// Property: discounted >= plain >= closed, and discounted is monotone
// non-decreasing in the open interval.
func TestQuickDiscountOrdering(t *testing.T) {
	r := rng.New(5)
	e := NewTFRC(8)
	for i := 0; i < 40; i++ {
		e.Observe(1 + r.Float64()*30)
	}
	f := func(a, b uint16) bool {
		x := 0.01 + float64(a)/8
		y := 0.01 + float64(b)/8
		if x > y {
			x, y = y, x
		}
		plainX := e.EstimateWithOpen(x)
		discX := e.EstimateWithOpenDiscounted(x)
		discY := e.EstimateWithOpenDiscounted(y)
		return discX >= plainX-1e-12 &&
			discX >= e.Estimate()-1e-12 &&
			discY >= discX-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
