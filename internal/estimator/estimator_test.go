package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestTFRCWeightsL8(t *testing.T) {
	w := TFRCWeights(8)
	// Unnormalized: 1,1,1,1,0.8,0.6,0.4,0.2 summing to 6.
	want := []float64{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}
	sum := 6.0
	for i := range w {
		if math.Abs(w[i]-want[i]/sum) > 1e-12 {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want[i]/sum)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	for _, L := range []int{1, 2, 3, 4, 5, 8, 16, 31} {
		for name, w := range map[string][]float64{
			"tfrc":    TFRCWeights(L),
			"uniform": UniformWeights(L),
			"exp":     ExponentialWeights(L, 0.7),
		} {
			sum := 0.0
			for _, v := range w {
				if v <= 0 {
					t.Fatalf("%s L=%d: non-positive weight", name, L)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("%s L=%d: weights sum to %v", name, L, sum)
			}
		}
	}
}

func TestTFRCWeightsNonIncreasing(t *testing.T) {
	for _, L := range []int{2, 4, 8, 16} {
		w := TFRCWeights(L)
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-12 {
				t.Fatalf("L=%d: weights increase at %d: %v", L, i, w)
			}
		}
	}
}

func TestEstimateConstantInput(t *testing.T) {
	e := NewTFRC(8)
	for i := 0; i < 20; i++ {
		e.Observe(5)
	}
	if got := e.Estimate(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("estimate of constant 5 = %v", got)
	}
}

func TestEstimateUnbiasedness(t *testing.T) {
	// Condition (E): E[θ̂] = E[θ] for IID input, because the weights sum
	// to one.
	r := rng.New(4)
	e := NewTFRC(8)
	var acc stats.Welford
	mean := 10.0
	for i := 0; i < 200000; i++ {
		e.Observe(r.ShiftedExp(2, 1/(mean-2)))
		if e.Ready() {
			acc.Add(e.Estimate())
		}
	}
	if math.Abs(acc.Mean()-mean)/mean > 0.01 {
		t.Fatalf("E[estimate] = %v, want %v", acc.Mean(), mean)
	}
}

func TestEstimatorVarianceShrinksWithL(t *testing.T) {
	// Claim 1's lever: larger L smooths the estimator.
	r := rng.New(5)
	variance := func(L int) float64 {
		e := NewTFRC(L)
		var acc stats.Welford
		rr := rng.New(9) // same stream per L
		_ = r
		for i := 0; i < 50000; i++ {
			e.Observe(rr.Exp(0.1))
			if e.Ready() {
				acc.Add(e.Estimate())
			}
		}
		return acc.Variance()
	}
	v2, v8, v16 := variance(2), variance(8), variance(16)
	if !(v16 < v8 && v8 < v2) {
		t.Fatalf("variance not decreasing in L: v2=%v v8=%v v16=%v", v2, v8, v16)
	}
}

func TestPartialWindowRenormalizes(t *testing.T) {
	e := NewTFRC(8)
	e.Observe(4)
	if got := e.Estimate(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("single-sample estimate = %v, want 4", got)
	}
	e.Observe(8)
	// Two samples: weights w1, w2 equal (both 1/6 before renorm), so the
	// estimate is the plain average 6.
	if got := e.Estimate(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("two-sample estimate = %v, want 6", got)
	}
}

func TestHistoryShift(t *testing.T) {
	e := NewTFRC(3)
	for _, v := range []float64{1, 2, 3, 4} {
		e.Observe(v)
	}
	h := e.History()
	if h[0] != 4 || h[1] != 3 || h[2] != 2 {
		t.Fatalf("history = %v", h)
	}
}

func TestEstimateWithOpenOnlyIncreases(t *testing.T) {
	e := NewTFRC(8)
	e.Prime(10)
	base := e.Estimate()
	// A small open interval must not lower the estimate.
	if got := e.EstimateWithOpen(1); got != base {
		t.Fatalf("small open interval changed estimate: %v vs %v", got, base)
	}
	// A huge open interval must raise it.
	if got := e.EstimateWithOpen(1000); got <= base {
		t.Fatalf("large open interval did not raise estimate: %v vs %v", got, base)
	}
}

func TestOpenThresholdBoundary(t *testing.T) {
	e := NewTFRC(8)
	r := rng.New(6)
	for i := 0; i < 20; i++ {
		e.Observe(r.Exp(0.1))
	}
	th := e.OpenThreshold()
	base := e.Estimate()
	// Just below: unchanged. Just above: strictly larger.
	if got := e.EstimateWithOpen(th * 0.999); got != base {
		t.Fatalf("below threshold changed estimate")
	}
	if got := e.EstimateWithOpen(th * 1.001); got <= base {
		t.Fatalf("above threshold did not raise estimate")
	}
}

func TestPrime(t *testing.T) {
	e := NewTFRC(4)
	e.Prime(7)
	if !e.Ready() {
		t.Fatal("primed estimator should be ready")
	}
	if got := e.Estimate(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("primed estimate = %v", got)
	}
}

func TestEmptyEstimator(t *testing.T) {
	e := NewTFRC(8)
	if e.Ready() {
		t.Fatal("fresh estimator should not be ready")
	}
	if e.Estimate() != 0 {
		t.Fatal("fresh estimate should be 0")
	}
	if e.EstimateWithOpen(5) != 0 {
		t.Fatal("fresh open estimate should be 0")
	}
	if e.OpenThreshold() != 0 {
		t.Fatal("fresh threshold should be 0")
	}
}

func TestCustomWeightsNormalized(t *testing.T) {
	e := NewLossIntervalEstimator([]float64{2, 2, 4}) // normalizes to .25 .25 .5
	w := e.Weights()
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[2]-0.5) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
	if e.Window() != 3 {
		t.Fatalf("window = %d", e.Window())
	}
}

func TestRTTEWMA(t *testing.T) {
	r := NewRTT(0.9)
	if r.Ready() {
		t.Fatal("fresh RTT should not be ready")
	}
	r.Sample(0.1)
	if !r.Ready() || r.Value() != 0.1 {
		t.Fatalf("first sample sets value: %v", r.Value())
	}
	r.Sample(0.2)
	want := 0.9*0.1 + 0.1*0.2
	if math.Abs(r.Value()-want) > 1e-12 {
		t.Fatalf("ewma = %v, want %v", r.Value(), want)
	}
}

func TestRTTConverges(t *testing.T) {
	r := NewRTT(0.9)
	for i := 0; i < 500; i++ {
		r.Sample(0.05)
	}
	if math.Abs(r.Value()-0.05) > 1e-9 {
		t.Fatalf("RTT did not converge: %v", r.Value())
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { TFRCWeights(0) },
		func() { UniformWeights(-1) },
		func() { ExponentialWeights(3, 0) },
		func() { ExponentialWeights(3, 1.5) },
		func() { NewLossIntervalEstimator(nil) },
		func() { NewLossIntervalEstimator([]float64{1, 0}) },
		func() { NewTFRC(8).Observe(0) },
		func() { NewTFRC(8).Prime(-1) },
		func() { NewRTT(1) },
		func() { NewRTT(-0.1) },
		func() { NewRTT(0.9).Sample(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the estimate always lies between the min and max of the
// history (it is a convex combination).
func TestQuickEstimateConvexCombination(t *testing.T) {
	r := rng.New(42)
	f := func(n uint8, L uint8) bool {
		e := NewTFRC(int(L%16) + 1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < int(n%32)+1; i++ {
			v := 0.5 + r.Float64()*100
			e.Observe(v)
		}
		for _, v := range e.History() {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		est := e.Estimate()
		return est >= lo-1e-9 && est <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EstimateWithOpen is monotone non-decreasing in the open
// interval and never below the closed estimate.
func TestQuickOpenMonotone(t *testing.T) {
	r := rng.New(43)
	e := NewTFRC(8)
	for i := 0; i < 30; i++ {
		e.Observe(1 + r.Float64()*20)
	}
	f := func(a, b uint16) bool {
		x, y := float64(a)/100+0.01, float64(b)/100+0.01
		if x > y {
			x, y = y, x
		}
		ex, ey := e.EstimateWithOpen(x), e.EstimateWithOpen(y)
		return ex <= ey+1e-12 && ex >= e.Estimate()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
