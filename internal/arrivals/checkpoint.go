package arrivals

import (
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/palm"
)

// Save writes the engine's run-time state in class declaration order:
// the class RNG and arrival cursor, the pending next-arrival timer, the
// population and Palm bookkeeping, and — inline — every live transfer's
// protocol state. capOf maps a scheduler to the capture of its timer
// population, so classes whose sender and receiver live on different
// shards save each endpoint against the right capture.
func (e *Engine) Save(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	w.Int(len(e.classes))
	for _, cs := range e.classes {
		cs.save(w, capOf)
	}
}

// Restore overlays state saved by Save onto a freshly armed engine built
// from the same class list. Live transfers are re-attached with freshly
// built endpoint pairs (the protocol Renew contract makes a fresh pair
// and a recycled one indistinguishable) and their protocol state is then
// overlaid; the recycling pools are refilled to their saved depths so
// the construction ledger stays on the uninterrupted run's trajectory.
// Run it after the schedulers have been reset and their clocks restored,
// and before the network's flow overlay, which validates the re-attached
// population.
func (e *Engine) Restore(r *checkpoint.Reader) {
	if !e.armed {
		r.Fail("arrivals engine restored before Arm")
		return
	}
	if n := r.Count(); n != len(e.classes) {
		r.Fail("arrivals snapshot has %d classes, rebuilt engine has %d", n, len(e.classes))
		return
	}
	for _, cs := range e.classes {
		if r.Err() != nil {
			return
		}
		cs.restore(r)
	}
}

func (cs *classState) save(w *checkpoint.Writer, capOf func(*des.Scheduler) *des.TimerCapture) {
	for _, word := range cs.random.State() {
		w.U64(word)
	}
	w.Int(cs.next)
	w.Timer(capOf(cs.sndSched).StateOf(cs.arriveTm))
	switch cs.Proto {
	case TFRC:
		w.Int(len(cs.tfrcPool))
	case TCP:
		w.Int(len(cs.tcpPool))
	case CBR:
		w.Int(len(cs.cbrPool))
	}
	w.I64(cs.constructions)
	w.I64(cs.reclaimed)
	w.I64(cs.completions)
	w.F64(cs.durSum)
	w.Int(cs.pop)
	w.Int(cs.peak)
	w.F64(cs.popIntegral)
	w.F64(cs.lastChange)
	w.Int(len(cs.cycles))
	for _, c := range cs.cycles {
		w.F64(c.Duration)
		w.F64(c.Value)
	}
	w.F64(cs.lastArrivalAt)
	w.F64(cs.lastPop)
	w.Bool(cs.openCycle)
	sndCap, rcvCap := capOf(cs.sndSched), capOf(cs.rcvSched)
	for i := 0; i < cs.next; i++ {
		sl := &cs.slots[i]
		w.F64(sl.startedAt)
		w.Bool(sl.done)
		w.Bool(sl.reclaimed)
		if sl.reclaimed {
			continue
		}
		switch cs.Proto {
		case TFRC:
			sl.tfrcSnd.Save(w, sndCap)
			sl.tfrcRcv.Save(w, rcvCap)
		case TCP:
			sl.tcpSnd.Save(w, sndCap)
			sl.tcpRcv.Save(w)
		case CBR:
			sl.probe.Save(w, sndCap)
		}
	}
}

func (cs *classState) restore(r *checkpoint.Reader) {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	next := r.Int()
	if next < 0 || next > cs.MaxArrivals {
		r.Fail("arrivals class %s snapshot has %d arrivals, cap is %d", cs.Name, next, cs.MaxArrivals)
		return
	}
	cs.next = next
	cs.arriveTm = cs.sndSched.RestoreTimer(r.Timer(), cs.arriveFn)
	pool := r.Int()
	if pool < 0 || pool > cs.MaxArrivals {
		r.Fail("arrivals class %s snapshot has implausible pool depth %d", cs.Name, pool)
		return
	}
	cs.constructions = r.I64()
	cs.reclaimed = r.I64()
	cs.completions = r.I64()
	cs.durSum = r.F64()
	cs.pop = r.Int()
	cs.peak = r.Int()
	cs.popIntegral = r.F64()
	cs.lastChange = r.F64()
	nc := r.Count()
	cs.cycles = cs.cycles[:0]
	for i := 0; i < nc; i++ {
		cs.cycles = append(cs.cycles, palm.Cycle{Duration: r.F64(), Value: r.F64()})
	}
	cs.lastArrivalAt = r.F64()
	cs.lastPop = r.F64()
	cs.openCycle = r.Bool()
	for i := 0; i < cs.next; i++ {
		if r.Err() != nil {
			return
		}
		sl := &cs.slots[i]
		sl.startedAt = r.F64()
		sl.done = r.Bool()
		sl.reclaimed = r.Bool()
		if sl.reclaimed {
			continue
		}
		flow := cs.firstFlow + i
		seed := FlowSeed(cs.Seed, i)
		switch cs.Proto {
		case TFRC:
			cfg := cs.TFRC
			cfg.Seed = seed
			sl.tfrcSnd, sl.tfrcRcv = cs.newTFRC(flow, cfg)
			cs.eng.host.AttachLive(flow, sl.tfrcSnd, sl.tfrcRcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
			sl.tfrcSnd.Restore(r)
			sl.tfrcRcv.Restore(r)
		case TCP:
			cfg := cs.TCP
			sl.tcpSnd, sl.tcpRcv = cs.newTCP(flow, cfg)
			cs.eng.host.AttachLive(flow, sl.tcpSnd, sl.tcpRcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
			sl.tcpSnd.Restore(r)
			sl.tcpRcv.Restore(r)
		case CBR:
			sl.probe = cs.probe(flow, seed)
			snd, rcv := sl.probe.Endpoints()
			cs.eng.host.AttachLive(flow, snd, rcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
			sl.probe.Restore(r)
		}
	}
	// Refill the recycling pool to its saved depth with fresh pairs: pool
	// entries carry no live state (Renew reseeds them on reuse), so depth
	// is the only thing that matters — it keeps the construction ledger on
	// the uninterrupted run's trajectory. The fresh senders are Retired
	// because Renew demands a quiescent (completed) pair — the only kind
	// the running engine ever pools.
	if r.Err() != nil {
		return
	}
	for j := 0; j < pool; j++ {
		switch cs.Proto {
		case TFRC:
			cfg := cs.TFRC
			cfg.Seed = FlowSeed(cs.Seed, 0)
			snd, rcv := cs.newTFRC(cs.firstFlow, cfg)
			snd.Retire()
			cs.tfrcPool = append(cs.tfrcPool, tfrcPair{snd, rcv})
		case TCP:
			snd, rcv := cs.newTCP(cs.firstFlow, cs.TCP)
			snd.Retire()
			cs.tcpPool = append(cs.tcpPool, tcpPair{snd, rcv})
		case CBR:
			cs.cbrPool = append(cs.cbrPool, cs.probe(cs.firstFlow, FlowSeed(cs.Seed, 0)))
		}
	}
	if r.Err() == nil {
		cs.random.SetState(st)
	}
}
