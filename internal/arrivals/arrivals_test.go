package arrivals

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// serialHost adapts a plain serial topology.Network to the Host seam,
// the way the experiments serial executor does.
type serialHost struct {
	sched *des.Scheduler
	net   *topology.Network
}

func (h *serialHost) RouteEnv([]topology.LinkID) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network) {
	return h.sched, h.net, h.sched, h.net
}

func (h *serialHost) AttachLive(flow int, snd, rcv netsim.Endpoint, fwd, rev []topology.LinkID, fwdExtra, revDelay float64) {
	h.net.AttachFlowOn(flow, snd, rcv, fwd, rev, fwdExtra, revDelay)
}

func (h *serialHost) Lifecycle() Lifecycle { return h.net }

// noReclaimHost is the same network without a lifecycle surface — the
// sharded executor's shape, where churn flows are never detached.
type noReclaimHost struct{ serialHost }

func (h *noReclaimHost) Lifecycle() Lifecycle { return nil }

// testNet builds a one-link serial network and returns its route.
func testNet(sched *des.Scheduler) (*topology.Network, []topology.LinkID) {
	net := topology.New(sched)
	a := net.AddNode("a")
	b := net.AddNode("b")
	link := net.AddLink(a, b, 1.25e6, 0.01, netsim.NewDropTail(64))
	return net, []topology.LinkID{link}
}

func tfrcSpec(seed uint64) Spec {
	return Spec{
		Name: "t", Proto: TFRC,
		Gap:  Gap{Kind: Poisson, Rate: 40},
		Size: Size{Kind: Fixed, Packets: 20},
		Stop: 30, MaxArrivals: 2000, Seed: seed,
	}
}

func baseTFRC() tfrc.Config {
	cfg := tfrc.DefaultConfig()
	cfg.IdleStop = 2
	return cfg
}

func runEngine(t *testing.T, host Host, net *topology.Network, route []topology.LinkID, specs []Spec, end float64) (*Engine, []ClassResult) {
	t.Helper()
	classes := make([]Class, len(specs))
	for i, sp := range specs {
		cl := Class{Spec: sp, FwdHops: route, FwdExtra: 0.005, RevDelay: 0.025}
		switch sp.Proto {
		case TFRC:
			cl.TFRC = baseTFRC()
		case TCP:
			cl.TCP = tcp.DefaultConfig()
		case CBR:
			cl.CBRSize = 1000
			cl.CBRRTT = 0.06
		}
		classes[i] = cl
	}
	eng := NewEngine(host, 0, classes)
	lo, count := eng.FlowRange()
	net.ReserveFlows(lo + count)
	eng.Arm()
	sched := classes[0].FwdHops[0] // silence unused warnings pattern not needed
	_ = sched
	hostSched := host.(interface {
		RouteEnv([]topology.LinkID) (*des.Scheduler, netsim.Network, *des.Scheduler, netsim.Network)
	})
	s, _, _, _ := hostSched.RouteEnv(route)
	s.RunUntil(end)
	return eng, eng.Results(end)
}

func TestFlowSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := FlowSeed(42, i)
		if s != FlowSeed(42, i) {
			t.Fatal("FlowSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("FlowSeed collision at i=%d", i)
		}
		seen[s] = true
	}
	if FlowSeed(1, 0) == FlowSeed(2, 0) {
		t.Fatal("FlowSeed ignores the class seed")
	}
}

func TestGapDraws(t *testing.T) {
	r := rng.New(7)
	n := 20000
	sum := 0.0
	g := Gap{Kind: Poisson, Rate: 50}
	for i := 0; i < n; i++ {
		d := g.draw(r)
		if d < 0 {
			t.Fatal("negative gap")
		}
		sum += d
	}
	if mean := sum / float64(n); math.Abs(mean-0.02) > 0.002 {
		t.Fatalf("Poisson mean gap = %v, want ~0.02", mean)
	}
	w := Gap{Kind: Weibull, Shape: 0.6, Scale: 0.02}
	for i := 0; i < 1000; i++ {
		if d := w.draw(r); d < 0 {
			t.Fatal("negative Weibull gap")
		}
	}
}

func TestSizeDraws(t *testing.T) {
	r := rng.New(7)
	f := Size{Kind: Fixed, Packets: 9}
	if f.draw(r) != 9 {
		t.Fatal("fixed size not fixed")
	}
	p := Size{Kind: Pareto, Shape: 1.2, MinPackets: 4, CapPackets: 50}
	for i := 0; i < 5000; i++ {
		n := p.draw(r)
		if n < 4 || n > 50 {
			t.Fatalf("Pareto draw %d outside [4, 50]", n)
		}
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"nil host", func() { NewEngine(nil, 0, []Class{{Spec: tfrcSpec(1)}}) }},
		{"negative first flow", func() {
			NewEngine(&serialHost{}, -1, []Class{{Spec: tfrcSpec(1)}})
		}},
		{"no classes", func() { NewEngine(&serialHost{}, 0, nil) }},
		{"no name", func() {
			sp := tfrcSpec(1)
			sp.Name = ""
			sp.validate()
		}},
		{"no arrivals", func() {
			sp := tfrcSpec(1)
			sp.MaxArrivals = 0
			sp.validate()
		}},
		{"bad window", func() {
			sp := tfrcSpec(1)
			sp.Stop = 0
			sp.validate()
		}},
		{"bad poisson", func() { Gap{Kind: Poisson}.validate() }},
		{"bad weibull", func() { Gap{Kind: Weibull, Shape: 1}.validate() }},
		{"bad gap kind", func() { Gap{Kind: GapKind(9), Rate: 1}.validate() }},
		{"bad fixed size", func() { Size{Kind: Fixed}.validate() }},
		{"bad pareto", func() { Size{Kind: Pareto, Shape: 1}.validate() }},
		{"cap below min", func() {
			Size{Kind: Pareto, Shape: 1, MinPackets: 8, CapPackets: 4}.validate()
		}},
		{"bad size kind", func() { Size{Kind: SizeKind(9), Packets: 1}.validate() }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestEngineClassValidation(t *testing.T) {
	var sched des.Scheduler
	net, route := testNet(&sched)
	host := &serialHost{sched: &sched, net: net}
	expectPanic := func(name string, cl Class) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		NewEngine(host, 0, []Class{cl})
	}
	expectPanic("no route", Class{Spec: tfrcSpec(1)})
	expectPanic("negative delay", Class{Spec: tfrcSpec(1), FwdHops: route, FwdExtra: -1})
	expectPanic("tfrc without idlestop", Class{Spec: tfrcSpec(1), FwdHops: route})
	cbr := tfrcSpec(1)
	cbr.Proto = CBR
	expectPanic("cbr without rate", Class{Spec: cbr, FwdHops: route})
	bad := tfrcSpec(1)
	bad.Proto = Proto(9)
	expectPanic("unknown proto", Class{Spec: bad, FwdHops: route})
}

func TestProtoString(t *testing.T) {
	if TFRC.String() != "tfrc" || TCP.String() != "tcp" || CBR.String() != "cbr" || Proto(9).String() != "?" {
		t.Fatal("Proto.String labels wrong")
	}
}

// The serial engine must complete transfers, detach quiet flows and
// recycle their endpoints: constructions bounded by the concurrency
// peak, far below the arrival count, with the freelist invariant intact
// and every recycled pair provably dead (no live timers).
func TestServeReclaimRecycle(t *testing.T) {
	protos := []struct {
		name string
		mut  func(*Spec)
	}{
		{"tfrc", func(sp *Spec) { sp.Proto = TFRC }},
		{"tcp", func(sp *Spec) { sp.Proto = TCP }},
		{"cbr", func(sp *Spec) {
			sp.Proto = CBR
			sp.CBRRate = 200
			sp.Size = Size{Kind: Fixed, Packets: 5}
		}},
	}
	for _, pc := range protos {
		t.Run(pc.name, func(t *testing.T) {
			var sched des.Scheduler
			net, route := testNet(&sched)
			host := &serialHost{sched: &sched, net: net}
			sp := tfrcSpec(11)
			pc.mut(&sp)
			eng, res := runEngine(t, host, net, route, []Spec{sp}, 40)
			r := res[0]
			if r.Arrivals < 100 {
				t.Fatalf("only %d arrivals", r.Arrivals)
			}
			if r.Completions == 0 {
				t.Fatal("no completions")
			}
			if r.Reclaimed == 0 {
				t.Fatal("no flows reclaimed on the serial engine")
			}
			if r.Constructions >= r.Arrivals/2 {
				t.Fatalf("pool not reused: %d constructions for %d arrivals",
					r.Constructions, r.Arrivals)
			}
			if r.Constructions < int64(r.Peak) {
				t.Fatalf("constructions %d below peak population %d",
					r.Constructions, r.Peak)
			}
			if err := net.CheckLeaks(); err != nil {
				t.Fatalf("freelist invariant broken after churn: %v", err)
			}
			cs := eng.classes[0]
			// Every reclaimed flow: detached (InFlight accounting zeroed)
			// and its pooled endpoints hold no live timers.
			for i := 0; i < cs.next; i++ {
				if cs.slots[i].reclaimed && net.InFlight(cs.firstFlow+i) != 0 {
					t.Fatalf("reclaimed flow %d still has packets in flight", cs.firstFlow+i)
				}
			}
			for _, p := range cs.tfrcPool {
				if !p.snd.Quiesced() || !p.rcv.Idle() {
					t.Fatal("pooled TFRC pair holds a live timer")
				}
			}
			for _, p := range cs.tcpPool {
				if !p.snd.Quiesced() {
					t.Fatal("pooled TCP sender holds a live timer")
				}
			}
			for _, p := range cs.cbrPool {
				if !p.Quiesced() {
					t.Fatal("pooled CBR probe holds a live timer")
				}
			}
		})
	}
}

// Recycling must be invisible: a host that never reclaims (the sharded
// executor's shape) must produce the identical arrival/completion
// trajectory and Palm statistics, with constructions == arrivals.
func TestReclaimInvisible(t *testing.T) {
	run := func(reclaim bool) []ClassResult {
		var sched des.Scheduler
		net, route := testNet(&sched)
		base := serialHost{sched: &sched, net: net}
		var host Host = &base
		if !reclaim {
			host = &noReclaimHost{base}
		}
		_, res := runEngine(t, host, net, route, []Spec{tfrcSpec(23)}, 40)
		return res
	}
	with := run(true)[0]
	without := run(false)[0]
	if without.Reclaimed != 0 || without.Constructions != without.Arrivals {
		t.Fatalf("no-lifecycle host reclaimed anyway: %+v", without)
	}
	if with.Reclaimed == 0 {
		t.Fatal("lifecycle host never reclaimed")
	}
	if with.Arrivals != without.Arrivals || with.Completions != without.Completions ||
		with.Peak != without.Peak || with.ActiveAtEnd != without.ActiveAtEnd ||
		with.MeanDuration != without.MeanDuration ||
		with.PalmPop != without.PalmPop || with.TimePop != without.TimePop {
		t.Fatalf("recycling changed the trajectory:\nwith    %+v\nwithout %+v", with, without)
	}
}

// Two identical runs must agree bit for bit, and the Palm log of a
// Poisson class must see PASTA: the population found by arrivals equals
// the time-average population, within Monte Carlo noise.
func TestDeterminismAndPASTA(t *testing.T) {
	run := func() ClassResult {
		var sched des.Scheduler
		net, route := testNet(&sched)
		host := &serialHost{sched: &sched, net: net}
		// Arrivals run to the very end: a drain tail after Stop would be
		// inside the time average but invisible to the Palm sampling, and
		// the comparison below needs matching windows.
		sp := tfrcSpec(31)
		sp.Stop = 40
		_, res := runEngine(t, host, net, route, []Spec{sp}, 40)
		return res[0]
	}
	a, b := run(), run()
	if a.Arrivals != b.Arrivals || a.PalmPop != b.PalmPop || a.TimePop != b.TimePop ||
		a.Completions != b.Completions || a.MeanDuration != b.MeanDuration {
		t.Fatalf("replay differs:\n%+v\n%+v", a, b)
	}
	if a.Log == nil {
		t.Fatal("no palm log")
	}
	if a.TimePop <= 0 {
		t.Fatal("no time-average population")
	}
	ratio := a.PalmPop / a.TimePop
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("PASTA violated for Poisson arrivals: palm/time = %v", ratio)
	}
	if got := a.Log.N(); got != int(a.Arrivals) {
		t.Fatalf("palm log has %d cycles for %d arrivals", got, a.Arrivals)
	}
}

// Start/Stop and MaxArrivals must bound the class, and multiple classes
// must get disjoint contiguous flow blocks.
func TestWindowsAndFlowBlocks(t *testing.T) {
	var sched des.Scheduler
	net, route := testNet(&sched)
	host := &serialHost{sched: &sched, net: net}
	early := tfrcSpec(41)
	early.Name = "early"
	early.Start = 0
	early.Stop = 5
	capped := tfrcSpec(42)
	capped.Name = "capped"
	capped.MaxArrivals = 7
	eng, res := runEngine(t, host, net, route, []Spec{early, capped}, 40)
	lo, count := eng.FlowRange()
	if lo != 0 || count != early.MaxArrivals+capped.MaxArrivals {
		t.Fatalf("flow range = (%d, %d)", lo, count)
	}
	if eng.classes[1].firstFlow != early.MaxArrivals {
		t.Fatalf("second class starts at %d", eng.classes[1].firstFlow)
	}
	// ~40 arrivals/s for 5 s, Monte Carlo slack.
	if res[0].Arrivals < 100 || res[0].Arrivals > 350 {
		t.Fatalf("windowed class made %d arrivals, want ~200", res[0].Arrivals)
	}
	if res[1].Arrivals != 7 {
		t.Fatalf("capped class made %d arrivals, want 7", res[1].Arrivals)
	}
	if got, _ := eng.classOf(early.MaxArrivals); got != eng.classes[1] {
		t.Fatal("classOf maps the block boundary to the wrong class")
	}
	if got, _ := eng.classOf(count); got != nil {
		t.Fatal("classOf resolves an id past the block")
	}
	if eng.maybeReclaim(count); false {
		t.Fatal("unreachable")
	}
}

func TestArmTwicePanics(t *testing.T) {
	var sched des.Scheduler
	net, route := testNet(&sched)
	host := &serialHost{sched: &sched, net: net}
	cl := Class{Spec: tfrcSpec(51), FwdHops: route, FwdExtra: 0.005, RevDelay: 0.025, TFRC: baseTFRC()}
	eng := NewEngine(host, 0, []Class{cl})
	lo, count := eng.FlowRange()
	net.ReserveFlows(lo + count)
	eng.Arm()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Arm")
		}
	}()
	eng.Arm()
}
