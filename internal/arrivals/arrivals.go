// Package arrivals is the run-time flow lifecycle engine: session
// arrival processes (Poisson or heavy-tailed Weibull interarrivals)
// that attach finite TFRC, TCP or CBR transfers to a running simulation
// and — on the serial executor — detach and recycle them once they go
// quiet, so steady-state churn is allocation-free.
//
// The engine is written against the Host seam so the same arrival
// classes run on the serial engine and the space-parallel sharded one.
// Determinism is preserved by construction:
//
//   - each class's arrivals are one ordinary DES event chain on the
//     scheduler of the class route's first node (the sender shard), so
//     the class RNG's draws (size, next gap) are strictly sequential and
//     executor-invariant;
//   - per-flow seeds derive from the class seed and the arrival index
//     (FlowSeed), never from a shared draw sequence;
//   - endpoint recycling resets a pair to exactly its freshly-built
//     state (protocol Renew contracts), so a pooled attach on the serial
//     engine and a fresh attach on the sharded one produce the same
//     trajectory;
//   - detaching happens only for provably quiet flows — sender done with
//     no live timers, receiver idle, zero packets of the flow inside the
//     network — and mutates no scheduler or ledger state, so reclamation
//     is invisible to the simulation.
//
// Beyond driving churn, each class records the Palm-calculus view of
// its own arrival process: the population found by each arrival (a Palm
// expectation — PASTA makes it match the time average for Poisson
// classes and not for bursty ones) next to the exact time-average
// population, as a palm.Log of inter-arrival cycles.
package arrivals

import (
	"fmt"

	"repro/internal/cbr"
	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/palm"
	"repro/internal/rng"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

// Proto selects the transport of an arrival class.
type Proto int

// Transports.
const (
	// TFRC transfers pace by the equation (internal/tfrc).
	TFRC Proto = iota
	// TCP transfers are NewReno bulk senders (internal/tcp).
	TCP
	// CBR transfers are fixed-rate probes (internal/cbr).
	CBR
)

// String names the transport for table labels.
func (p Proto) String() string {
	switch p {
	case TFRC:
		return "tfrc"
	case TCP:
		return "tcp"
	case CBR:
		return "cbr"
	}
	return "?"
}

// GapKind selects the interarrival distribution.
type GapKind int

// Interarrival processes.
const (
	// Poisson draws exponential gaps of the given rate — the PASTA
	// reference process.
	Poisson GapKind = iota
	// Weibull draws Weibull(shape, scale) gaps; shape < 1 gives the
	// bursty, heavy-tailed session processes of flash crowds.
	Weibull
)

// Gap is an interarrival distribution.
type Gap struct {
	Kind GapKind
	// Rate is the Poisson arrival rate in sessions/second.
	Rate float64
	// Shape and Scale parameterize the Weibull gaps (seconds).
	Shape, Scale float64
}

func (g Gap) validate() {
	switch g.Kind {
	case Poisson:
		if g.Rate <= 0 {
			panic("arrivals: Poisson gap needs a positive rate")
		}
	case Weibull:
		if g.Shape <= 0 || g.Scale <= 0 {
			panic("arrivals: Weibull gap needs positive shape and scale")
		}
	default:
		panic("arrivals: unknown gap kind")
	}
}

func (g Gap) draw(r *rng.RNG) float64 {
	if g.Kind == Poisson {
		return r.Exp(g.Rate)
	}
	return r.Weibull(g.Shape, g.Scale)
}

// SizeKind selects the transfer-size distribution.
type SizeKind int

// Transfer-size laws.
const (
	// Fixed transfers are exactly Packets long.
	Fixed SizeKind = iota
	// Pareto transfers draw a Pareto(Shape, MinPackets) packet count —
	// the web-mice heavy tail.
	Pareto
)

// Size is a transfer-size distribution in packets.
type Size struct {
	Kind SizeKind
	// Packets is the fixed transfer volume.
	Packets int64
	// Shape and MinPackets parameterize the Pareto sizes.
	Shape      float64
	MinPackets float64
	// CapPackets, when positive, truncates Pareto draws (a run-length
	// guard for heavy tails). Ignored for Fixed.
	CapPackets int64
}

func (s Size) validate() {
	switch s.Kind {
	case Fixed:
		if s.Packets < 1 {
			panic("arrivals: fixed size needs at least one packet")
		}
	case Pareto:
		if s.Shape <= 0 || s.MinPackets < 1 {
			panic("arrivals: Pareto size needs positive shape and MinPackets >= 1")
		}
		if s.CapPackets != 0 && float64(s.CapPackets) < s.MinPackets {
			panic("arrivals: Pareto size cap below MinPackets")
		}
	default:
		panic("arrivals: unknown size kind")
	}
}

func (s Size) draw(r *rng.RNG) int64 {
	if s.Kind == Fixed {
		return s.Packets
	}
	n := int64(r.Pareto(s.Shape, s.MinPackets))
	if n < 1 {
		n = 1
	}
	if s.CapPackets > 0 && n > s.CapPackets {
		n = s.CapPackets
	}
	return n
}

// Spec is the executor-independent description of one arrival class:
// what arrives, how often, how big, and when.
type Spec struct {
	// Name labels the class in results.
	Name string
	// Proto selects the transport.
	Proto Proto
	// Gap is the interarrival law.
	Gap Gap
	// Size is the transfer-size law in packets.
	Size Size
	// Start and Stop bound the arrival window in absolute simulation
	// time: the first arrival lands at Start plus one gap draw, and no
	// arrival lands at or after Stop.
	Start, Stop float64
	// MaxArrivals caps the class's arrivals and sizes its flow-id block.
	MaxArrivals int
	// Seed drives the class RNG (gaps and sizes) and, via FlowSeed,
	// every per-flow seed.
	Seed uint64
	// Reverse asks the embedding experiment to route the class over the
	// reverse-direction path (data flowing against the base flows). The
	// engine itself only carries the flag.
	Reverse bool
	// CBRRate is the send rate in packets/second for CBR classes
	// (ignored elsewhere).
	CBRRate float64
}

func (s Spec) validate() {
	if s.Name == "" {
		panic("arrivals: class needs a name")
	}
	if s.MaxArrivals < 1 {
		panic("arrivals: class needs MaxArrivals >= 1")
	}
	if s.Start < 0 || s.Stop <= s.Start {
		panic("arrivals: class needs 0 <= Start < Stop")
	}
	s.Gap.validate()
	s.Size.validate()
}

// Class is a Spec resolved against a concrete topology: the routes its
// transfers ride and the per-transport protocol configuration.
type Class struct {
	Spec
	// FwdHops is the forward route (non-empty). RevHops, when non-empty,
	// routes the feedback/ACK stream; empty means the pure-delay reverse
	// path of RevDelay seconds.
	FwdHops, RevHops []topology.LinkID
	// FwdExtra is the one-way delay past the last forward hop; RevDelay
	// the residual reverse delay (see topology.AttachFlow).
	FwdExtra, RevDelay float64
	// TFRC is the base config for TFRC classes. TotalPackets is set per
	// arrival from the size draw and Seed per flow from FlowSeed;
	// IdleStop must be positive so departed receivers stop their
	// feedback clock.
	TFRC tfrc.Config
	// TCP is the base config for TCP classes (TotalSegments set per
	// arrival).
	TCP tcp.Config
	// CBRSize is the CBR packet length in bytes; CBRRTT the loss-event
	// grouping window of CBR transfers (Spec.CBRRate sets their rate).
	CBRSize int
	CBRRTT  float64
}

// FlowSeed derives the per-flow protocol seed for the i-th arrival of a
// class: a splitmix64 finalize of the class seed and the arrival index,
// so any executor — and any replay — assigns the same seed to the same
// arrival without consuming class RNG draws.
func FlowSeed(classSeed uint64, i int) uint64 {
	x := classSeed + (uint64(i)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Host is the executor seam the engine runs against. The serial and
// sharded executors of the experiments package both satisfy it.
type Host interface {
	// RouteEnv resolves the scheduler/network pairs the two endpoints of
	// a flow over the route must be built on.
	RouteEnv(fwdHops []topology.LinkID) (sndSched *des.Scheduler, sndNet netsim.Network, rcvSched *des.Scheduler, rcvNet netsim.Network)
	// AttachLive registers a flow at simulation time with explicit
	// routes; the flow id must be inside the host's reserved flow table.
	AttachLive(flow int, sender, receiver netsim.Endpoint, fwdHops, revHops []topology.LinkID, fwdExtra, revDelay float64)
	// Lifecycle returns the reclamation surface, or nil when the
	// executor cannot detach flows mid-run (the sharded engine: a detach
	// would be a cross-shard write, so churn flows simply stay attached).
	Lifecycle() Lifecycle
}

// Lifecycle is the serial executor's detach surface: per-flow in-network
// accounting with a quiet callback, and the detach itself.
// topology.Network satisfies it.
type Lifecycle interface {
	// WatchFlows enables per-flow packet accounting for ids [lo, lo+count),
	// invoking onQuiet each time a watched flow's count returns to zero.
	WatchFlows(lo, count int, onQuiet func(flow int))
	// DetachFlow removes a quiet flow and recycles its routing record.
	DetachFlow(flow int)
	// InFlight returns the watched flow's current in-network packet count.
	InFlight(flow int) int
}

// ClassResult summarizes one class after a run.
type ClassResult struct {
	// Name echoes the class label; Proto its transport.
	Name  string
	Proto Proto
	// Arrivals counts sessions that arrived; Completions those whose
	// sender finished its volume before the run ended.
	Arrivals, Completions int64
	// Constructions counts endpoint pairs actually built — on the serial
	// executor the pool bounds this by the peak concurrent population,
	// on the sharded one it equals Arrivals (no reclamation).
	Constructions int64
	// Reclaimed counts flows detached and recycled mid-run (serial only).
	Reclaimed int64
	// Peak is the maximum concurrent population; ActiveAtEnd the
	// population when the run ended.
	Peak, ActiveAtEnd int
	// MeanDuration averages completed transfers' durations in seconds.
	MeanDuration float64
	// PalmPop is the mean population found by an arrival (the Palm
	// expectation E0[N]); TimePop the exact time-average population over
	// [Start, end]. PASTA makes the two agree for Poisson classes.
	PalmPop, TimePop float64
	// Log holds the inter-arrival cycles (duration = gap to the next
	// arrival, value = population found) for Palm-vs-time comparisons
	// via internal/palm; nil when the class saw fewer than one closed
	// cycle.
	Log *palm.Log
}

// flowSlot tracks one arrival's endpoints and lifecycle.
type flowSlot struct {
	tfrcSnd *tfrc.Sender
	tfrcRcv *tfrc.Receiver
	tcpSnd  *tcp.Sender
	tcpRcv  *tcp.Receiver
	probe   *cbr.Probe

	startedAt float64
	done      bool
	reclaimed bool
}

// tfrcPair / tcpPair are the serial executor's recycling pools' units.
type tfrcPair struct {
	snd *tfrc.Sender
	rcv *tfrc.Receiver
}
type tcpPair struct {
	snd *tcp.Sender
	rcv *tcp.Receiver
}

// classState is one armed class: resolved environment, RNG, pools and
// statistics. All of it is touched only from the class's sender-shard
// event chain (arrivals, completions), except the engine-level reclaim
// path which the serial executor runs on its single scheduler.
type classState struct {
	Class
	eng       *Engine
	firstFlow int

	sndSched *des.Scheduler
	sndNet   netsim.Network
	rcvSched *des.Scheduler
	rcvNet   netsim.Network

	random   *rng.RNG
	arriveFn des.Event
	arriveTm des.Timer // pending next-arrival event, if any
	next     int       // arrival index of the next arrival

	slots []flowSlot

	tfrcPool []tfrcPair
	tcpPool  []tcpPair
	cbrPool  []*cbr.Probe

	constructions int64
	reclaimed     int64
	completions   int64
	durSum        float64

	pop         int
	peak        int
	popIntegral float64
	lastChange  float64

	cycles        []palm.Cycle
	lastArrivalAt float64
	lastPop       float64
	openCycle     bool
}

// Engine drives a set of arrival classes against one executor.
type Engine struct {
	host    Host
	lc      Lifecycle
	classes []*classState
	lo      int // first churn flow id
	count   int // total reserved churn flow ids
	armed   bool
}

// NewEngine resolves the classes against the host, assigning each a
// contiguous flow-id block starting at firstFlow in class order. The
// caller must reserve the flow table — ids [0, FlowRange's lo+count) —
// on the executor before the first Run, and declare any cross-shard
// pure-delay reverse channels (shard.Cluster.DeclareReverseChannel).
func NewEngine(host Host, firstFlow int, classes []Class) *Engine {
	if host == nil {
		panic("arrivals: nil host")
	}
	if firstFlow < 0 {
		panic("arrivals: negative first flow id")
	}
	if len(classes) == 0 {
		panic("arrivals: no classes")
	}
	e := &Engine{host: host, lc: host.Lifecycle(), lo: firstFlow}
	next := firstFlow
	for i := range classes {
		c := classes[i]
		c.Spec.validate()
		if len(c.FwdHops) == 0 {
			panic(fmt.Sprintf("arrivals: class %s has no forward route", c.Name))
		}
		if c.FwdExtra < 0 || c.RevDelay < 0 {
			panic(fmt.Sprintf("arrivals: class %s has a negative delay", c.Name))
		}
		switch c.Proto {
		case TFRC:
			if c.TFRC.IdleStop < 1 {
				panic(fmt.Sprintf("arrivals: TFRC class %s needs IdleStop >= 1 (the feedback clock must be able to die)", c.Name))
			}
		case TCP:
			// base config validated by the protocol on first use
		case CBR:
			if c.CBRRate <= 0 || c.CBRSize <= 0 || c.CBRRTT <= 0 {
				panic(fmt.Sprintf("arrivals: CBR class %s needs positive rate, size and rtt", c.Name))
			}
		default:
			panic("arrivals: unknown protocol")
		}
		cs := &classState{Class: c, eng: e, firstFlow: next}
		cs.sndSched, cs.sndNet, cs.rcvSched, cs.rcvNet = host.RouteEnv(c.FwdHops)
		cs.random = rng.New(c.Seed)
		cs.arriveFn = cs.arrive
		next += c.MaxArrivals
		e.classes = append(e.classes, cs)
	}
	e.count = next - firstFlow
	return e
}

// FlowRange returns the engine's flow-id block: ids [lo, lo+count).
func (e *Engine) FlowRange() (lo, count int) { return e.lo, e.count }

// Arm allocates each class's slot and cycle buffers (one allocation
// each, sized by MaxArrivals — steady-state churn allocates nothing),
// installs the quiet watch on serial executors, and schedules every
// class's first arrival. Call once, before the first Run.
func (e *Engine) Arm() {
	if e.armed {
		panic("arrivals: engine armed twice")
	}
	e.armed = true
	if e.lc != nil {
		e.lc.WatchFlows(e.lo, e.count, e.onQuiet)
	}
	for _, cs := range e.classes {
		cs.slots = make([]flowSlot, cs.MaxArrivals)
		cs.cycles = make([]palm.Cycle, 0, cs.MaxArrivals)
		cs.lastChange = cs.Start
		if t := cs.Start + cs.Gap.draw(cs.random); t < cs.Stop {
			cs.arriveTm = cs.sndSched.At(t, cs.arriveFn)
		}
	}
}

// classOf maps a churn flow id to its class and slot index.
func (e *Engine) classOf(flow int) (*classState, int) {
	for _, cs := range e.classes {
		if i := flow - cs.firstFlow; i >= 0 && i < cs.MaxArrivals {
			return cs, i
		}
	}
	return nil, 0
}

// onQuiet is the serial executor's zero-crossing hook: a watched flow's
// last in-network packet just returned to the freelist.
func (e *Engine) onQuiet(flow int) { e.maybeReclaim(flow) }

// maybeReclaim detaches and recycles a churn flow iff it is provably
// quiet: its sender done with no live timers, its receiver holding no
// feedback timer, and no packets of the flow inside the network. Quiet
// is absorbing — a done sender never sends again and an idle receiver
// only re-arms on new data — so the check can run on every trigger
// (zero crossings, sender completion, receiver idle) without ordering
// sensitivity.
func (e *Engine) maybeReclaim(flow int) {
	if e.lc == nil {
		return
	}
	cs, i := e.classOf(flow)
	if cs == nil {
		return
	}
	sl := &cs.slots[i]
	if sl.reclaimed || !sl.done {
		return
	}
	switch cs.Proto {
	case TFRC:
		if !sl.tfrcSnd.Quiesced() || !sl.tfrcRcv.Idle() {
			return
		}
	case TCP:
		if !sl.tcpSnd.Quiesced() {
			return
		}
	case CBR:
		if !sl.probe.Quiesced() {
			return
		}
	}
	if e.lc.InFlight(flow) != 0 {
		return
	}
	e.lc.DetachFlow(flow)
	sl.reclaimed = true
	cs.reclaimed++
	switch cs.Proto {
	case TFRC:
		cs.tfrcPool = append(cs.tfrcPool, tfrcPair{sl.tfrcSnd, sl.tfrcRcv})
		sl.tfrcSnd, sl.tfrcRcv = nil, nil
	case TCP:
		cs.tcpPool = append(cs.tcpPool, tcpPair{sl.tcpSnd, sl.tcpRcv})
		sl.tcpSnd, sl.tcpRcv = nil, nil
	case CBR:
		cs.cbrPool = append(cs.cbrPool, sl.probe)
		sl.probe = nil
	}
}

// arrive is one class's arrival event: close the previous inter-arrival
// cycle, account the population this arrival finds, attach and start a
// transfer of a drawn size, and schedule the next arrival. The size and
// gap draws are strictly sequential on this one event chain, so the
// class RNG's stream is executor-invariant.
func (cs *classState) arrive() {
	now := cs.sndSched.Now()
	if cs.openCycle {
		if d := now - cs.lastArrivalAt; d > 0 {
			cs.cycles = append(cs.cycles, palm.Cycle{Duration: d, Value: cs.lastPop})
		}
	}
	found := cs.pop
	cs.lastPop = float64(found)
	cs.lastArrivalAt = now
	cs.openCycle = true

	cs.popIntegral += float64(cs.pop) * (now - cs.lastChange)
	cs.lastChange = now
	cs.pop++
	if cs.pop > cs.peak {
		cs.peak = cs.pop
	}

	i := cs.next
	cs.next++
	flow := cs.firstFlow + i
	size := cs.Size.draw(cs.random)
	cs.start(i, flow, size, now)

	if cs.next < cs.MaxArrivals {
		if t := now + cs.Gap.draw(cs.random); t < cs.Stop {
			cs.arriveTm = cs.sndSched.At(t, cs.arriveFn)
		}
	}
}

// start attaches and starts the i-th transfer: a pooled endpoint pair
// renewed in place when the serial executor has reclaimed one, a fresh
// pair otherwise. Renew resets a pair to exactly its freshly-built
// state, so both paths produce the same trajectory.
func (cs *classState) start(i, flow int, size int64, now float64) {
	sl := &cs.slots[i]
	sl.startedAt = now
	seed := FlowSeed(cs.Seed, i)
	switch cs.Proto {
	case TFRC:
		cfg := cs.TFRC
		cfg.Seed = seed
		cfg.TotalPackets = size
		if n := len(cs.tfrcPool); n > 0 {
			p := cs.tfrcPool[n-1]
			cs.tfrcPool = cs.tfrcPool[:n-1]
			sl.tfrcSnd, sl.tfrcRcv = p.snd, p.rcv
			tfrc.RenewRaw(p.snd, p.rcv, flow, cfg)
		} else {
			cs.constructions++
			sl.tfrcSnd, sl.tfrcRcv = cs.newTFRC(flow, cfg)
		}
		cs.eng.host.AttachLive(flow, sl.tfrcSnd, sl.tfrcRcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
		sl.tfrcSnd.Start()
	case TCP:
		cfg := cs.TCP
		cfg.TotalSegments = size
		if n := len(cs.tcpPool); n > 0 {
			p := cs.tcpPool[n-1]
			cs.tcpPool = cs.tcpPool[:n-1]
			sl.tcpSnd, sl.tcpRcv = p.snd, p.rcv
			tcp.RenewRaw(p.snd, p.rcv, flow, cfg)
		} else {
			cs.constructions++
			sl.tcpSnd, sl.tcpRcv = cs.newTCP(flow, cfg)
		}
		cs.eng.host.AttachLive(flow, sl.tcpSnd, sl.tcpRcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
		sl.tcpSnd.Start()
	case CBR:
		if n := len(cs.cbrPool); n > 0 {
			p := cs.cbrPool[n-1]
			cs.cbrPool = cs.cbrPool[:n-1]
			sl.probe = p
			p.Renew(flow, cs.CBRSize, cs.CBRRate, false, cs.CBRRTT, seed)
		} else {
			cs.constructions++
			p := cs.probe(flow, seed)
			sl.probe = p
		}
		sl.probe.SetTotalPackets(size)
		snd, rcv := sl.probe.Endpoints()
		cs.eng.host.AttachLive(flow, snd, rcv, cs.FwdHops, cs.RevHops, cs.FwdExtra, cs.RevDelay)
		sl.probe.Start()
	}
}

// newTFRC builds a fresh TFRC endpoint pair with its lifecycle hooks
// bound once: the closures capture the endpoints, which know their
// current flow, so recycling does not rebuild them.
func (cs *classState) newTFRC(flow int, cfg tfrc.Config) (*tfrc.Sender, *tfrc.Receiver) {
	snd, rcv := tfrc.NewFlowRaw(cs.sndSched, cs.sndNet, cs.rcvSched, cs.rcvNet, flow, cfg)
	snd.OnDone(func() { cs.flowDone(snd.Flow()) })
	rcv.OnIdle(func() { cs.eng.maybeReclaim(rcv.Flow()) })
	return snd, rcv
}

// newTCP builds a fresh TCP endpoint pair with its completion hook
// bound once.
func (cs *classState) newTCP(flow int, cfg tcp.Config) (*tcp.Sender, *tcp.Receiver) {
	snd := tcp.NewSender(cs.sndSched, cs.sndNet, flow, cfg)
	rcv := tcp.NewReceiver(cs.rcvSched, cs.rcvNet, flow, cfg)
	snd.OnDone(func() { cs.flowDone(snd.Flow()) })
	return snd, rcv
}

// probe builds a fresh CBR probe with its completion hook bound once.
// The receiver side is pointed at the receiver shard's scheduler: the
// loss-detecting endpoint fires there, and on the goroutine-per-shard
// driver it may not read the sender shard's clock.
func (cs *classState) probe(flow int, seed uint64) *cbr.Probe {
	p := cbr.NewProbeRaw(cs.sndSched, cs.sndNet, flow, cs.CBRSize, cs.CBRRate, false, cs.CBRRTT, seed)
	p.SetReceiverScheduler(cs.rcvSched)
	p.OnDone(func() { cs.flowDone(p.Flow()) })
	return p
}

// flowDone fires from inside the sender-shard event that completes a
// transfer (last packet sent for TFRC/CBR, full volume acknowledged for
// TCP) — so every executor accounts the completion at the same instant.
func (cs *classState) flowDone(flow int) {
	i := flow - cs.firstFlow
	sl := &cs.slots[i]
	if sl.done {
		return
	}
	sl.done = true
	now := cs.sndSched.Now()
	cs.completions++
	cs.durSum += now - sl.startedAt
	cs.popIntegral += float64(cs.pop) * (now - cs.lastChange)
	cs.lastChange = now
	cs.pop--
	// The departing packets may already be out of the network (TCP: the
	// completing ACK was the last), so try reclaiming right away; if
	// packets are still draining, the freelist zero-crossing retries.
	cs.eng.maybeReclaim(flow)
}

// Results finalizes the classes at absolute time end (the run's end)
// and returns one summary per class, in declaration order. The open
// population integral and the last open cycle are closed at end.
func (e *Engine) Results(end float64) []ClassResult {
	out := make([]ClassResult, 0, len(e.classes))
	for _, cs := range e.classes {
		r := ClassResult{
			Name:          cs.Name,
			Proto:         cs.Proto,
			Arrivals:      int64(cs.next),
			Completions:   cs.completions,
			Constructions: cs.constructions,
			Reclaimed:     cs.reclaimed,
			Peak:          cs.peak,
			ActiveAtEnd:   cs.pop,
		}
		if cs.completions > 0 {
			r.MeanDuration = cs.durSum / float64(cs.completions)
		}
		integral := cs.popIntegral
		span := end - cs.Start
		if end > cs.lastChange {
			integral += float64(cs.pop) * (end - cs.lastChange)
		}
		if span > 0 {
			r.TimePop = integral / span
		}
		cycles := cs.cycles
		if cs.openCycle {
			if d := end - cs.lastArrivalAt; d > 0 {
				cycles = append(cycles, palm.Cycle{Duration: d, Value: cs.lastPop})
			}
		}
		if len(cycles) > 0 {
			// Palm mean over arrivals: the population each arrival found.
			// The cycle values carry exactly that sequence (one cycle per
			// arrival, closed at the next arrival or at end).
			sum := 0.0
			for _, c := range cycles {
				sum += c.Value
			}
			r.PalmPop = sum / float64(len(cycles))
			r.Log = palm.NewLog(cycles)
		}
		out = append(out, r)
	}
	return out
}
