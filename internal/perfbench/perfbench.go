// Package perfbench defines the canonical DES/packet hot-path benchmark
// bodies. The `go test -bench` wrappers (internal/des and
// internal/experiments) and the `ebrc -bench` BENCH_<n>.json reporter
// all run these same functions, so every recorded number measures an
// identical workload and the perf trajectory stays comparable across
// PRs.
package perfbench

import (
	"testing"

	"repro/internal/arrivals"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/fault"
)

// SchedulerFire measures the schedule-one/fire-one cycle — the
// event-loop cost every simulated packet pays at least twice (enqueue at
// the sender, transmit completion at the link).
func SchedulerFire(b *testing.B) {
	var s des.Scheduler
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}

// SchedulerTimerChurn measures the cancel/re-arm pattern of the
// protocol timers (TFRC no-feedback, TCP retransmit): every ACK cancels
// a pending timer and schedules a fresh one.
func SchedulerTimerChurn(b *testing.B) {
	var s des.Scheduler
	fn := func() {}
	tm := s.After(1, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Cancel()
		tm = s.After(2, fn)
		s.After(1, fn)
		s.Step()
	}
}

// SchedulerDeepQueue measures push/pop with many pending events (a
// loaded dumbbell keeps hundreds of timers and in-flight packets
// queued), where heap depth dominates.
func SchedulerDeepQueue(b *testing.B) {
	var s des.Scheduler
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.After(float64(i)+0.5, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(0.25, fn)
		s.Step()
	}
}

// SchedulerDeepQueue8K is the scale-out successor of SchedulerDeepQueue:
// the same schedule-ahead/fire pattern against 8192 pending events — the
// pending-set size a 16-hop, 512-flow chain sustains. A comparison-tree
// queue slows by its depth between 1K and 8K pending; the timing wheel's
// per-event cost must stay flat.
func SchedulerDeepQueue8K(b *testing.B) {
	var s des.Scheduler
	fn := func() {}
	for i := 0; i < 8192; i++ {
		s.After(float64(i)/8+0.5, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(0.25, fn)
		s.Step()
	}
}

// DumbbellSteadyState measures whole-simulation throughput on a
// mid-size run of the lab testbed profile: 8 TFRC + 8 TCP flows through
// the 10 Mb/s DropTail-100 bottleneck for 30 simulated seconds — large
// enough that the steady-state event loop (packet transmissions,
// deliveries, acks, protocol timers) dominates setup cost. It reports
// events/sec (scheduler events per second of wall time, the end-to-end
// number the hot-path optimization targets) and events/run (divide
// allocs/op by it for allocations per simulated event).
func DumbbellSteadyState(b *testing.B) {
	cfg := experiments.LabDT100.Scale(0.1, 0).Config(8, 8, 17)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// ParkingLotSteadyState measures whole-simulation throughput on the
// multi-hop topology path: 4 long TFRC + 4 long TCP flows across a
// three-bottleneck parking-lot chain with 2 crossing TCP flows per hop,
// 30 simulated seconds. Against DumbbellSteadyState it isolates the
// cost of multi-hop forwarding (per-hop queueing, route lookups, three
// links' transmission pipelines) on the same zero-allocation
// primitives. Reports events/sec and events/run like the dumbbell
// benchmark.
func ParkingLotSteadyState(b *testing.B) {
	cfg := experiments.TopoSimConfig{
		Hops:          3,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         4,
		NTCP:          4,
		CrossPerHop:   2,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      25,
		Warmup:        5,
		Seed:          17,
		RevJitter:     0.2,
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// CheckpointedChainSteadyState runs the exact ParkingLotSteadyState
// workload with checkpointing live: a full deterministic snapshot of
// the simulation (timer wheel, RNG streams, queue contents, protocol
// state, freelist ledger) is captured and written to disk at the end of
// warmup and every 5 simulated seconds — five snapshots per run.
// Against ParkingLotSteadyState it bounds the overhead of the
// checkpoint subsystem when it is ON; the checkpoint-off cost is pinned
// at zero by ParkingLotSteadyState itself, whose path has no capture
// branches.
func CheckpointedChainSteadyState(b *testing.B) {
	cfg := experiments.TopoSimConfig{
		Hops:          3,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         4,
		NTCP:          4,
		CrossPerHop:   2,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      25,
		Warmup:        5,
		Seed:          17,
		RevJitter:     0.2,
		Label:         "bench checkpointed chain",
	}
	old := experiments.Checkpoint
	experiments.Checkpoint = experiments.CheckpointOptions{Every: 5, Dir: b.TempDir()}
	defer func() { experiments.Checkpoint = old }()
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// DeepChainSteadyState measures whole-simulation throughput in the
// scale-out regime the scalechain scenarios sweep: 64 TFRC + 64 TCP
// long flows across a 12-hop chain with 2 crossing TCP flows per hop
// (152 flows total), per-hop capacity scaled so each long flow keeps
// the standard share. The pending-event set here is an order of
// magnitude beyond DumbbellSteadyState's, so this benchmark is the
// end-to-end witness for the deep-queue scheduler path and the
// run-arena reuse together. Reports events/sec and events/run like the
// other whole-simulation benchmarks.
func DeepChainSteadyState(b *testing.B) {
	cfg := experiments.TopoSimConfig{
		Hops:          12,
		Capacity:      2.5e6,
		Buffer:        64,
		HopDelay:      0.005,
		AccessDelay:   0.005,
		RevDelay:      0.03,
		NTFRC:         64,
		NTCP:          64,
		CrossPerHop:   2,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      8,
		Warmup:        2,
		Seed:          17,
		RevJitter:     0.2,
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// shardedChainConfig is the workload ShardedChainBaseline and
// ShardedChainSteadyState share: the largest cell of the scalechain
// sweep family (16 hops, 256 TFRC + 256 TCP long flows, 2 crossing TCP
// flows per hop — 544 flows total), per-hop capacity scaled so each
// long flow keeps the standard share. Both benchmarks run the exact
// same simulation — the determinism contract makes their event counts
// identical — differing only in the shard count, so their events/sec
// ratio is the whole-simulation speedup of the space-parallel engine.
func shardedChainConfig(shards int) experiments.TopoSimConfig {
	return experiments.TopoSimConfig{
		Hops:          16,
		Capacity:      1e7,
		Buffer:        64,
		HopDelay:      0.005,
		AccessDelay:   0.005,
		RevDelay:      0.03,
		NTFRC:         256,
		NTCP:          256,
		CrossPerHop:   2,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      3,
		Warmup:        1,
		Seed:          17,
		RevJitter:     0.2,
		Shards:        shards,
	}
}

// runShardedChain is the shared benchmark body for the sharded-chain
// pair; it reports events/sec and events/run like the other
// whole-simulation benchmarks.
func runShardedChain(b *testing.B, shards int) {
	cfg := shardedChainConfig(shards)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// ShardedChainBaseline runs the sharded-chain workload on the serial
// engine (one scheduler, one event loop). It is the denominator of the
// sharded speedup: ShardedChainSteadyState's events/sec divided by this
// benchmark's is the end-to-end gain from splitting the same simulation
// across shards.
func ShardedChainBaseline(b *testing.B) {
	runShardedChain(b, 1)
}

// ShardedChainSteadyState runs the identical workload split across 4
// shards of the space-parallel engine — each shard owning a contiguous
// slice of the chain with its own timing-wheel scheduler, synchronized
// at the cross-shard lookahead horizon. On a multi-core host the shards
// advance concurrently and this benchmark measures the whole-simulation
// speedup; on a single-CPU host the sequential window driver runs and
// the ratio to ShardedChainBaseline is the engine's coordination
// overhead instead. The TSV output (and events/run) is byte-identical
// to the baseline's either way.
func ShardedChainSteadyState(b *testing.B) {
	runShardedChain(b, 4)
}

// FaultyChainSteadyState measures whole-simulation throughput with the
// full fault-injection machinery live: the 8-hop fault-family chain
// under a combined plan — a flush-policy outage of the mid-chain
// bottleneck, a Gilbert–Elliott bursty loss process on the first hop,
// and a mid-run capacity renegotiation further down — so the per-packet
// Fault hook, the GE lottery and the Down/Up/SetRate event path are all
// on the measured path. Against DeepChainSteadyState it bounds the
// overhead the fault subsystem adds to a faulted run; links without a
// plan entry keep a nil hook and pay nothing.
func FaultyChainSteadyState(b *testing.B) {
	cfg := experiments.TopoSimConfig{
		Hops:          8,
		Capacity:      2.5e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         8,
		NTCP:          8,
		CrossPerHop:   1,
		CrossRevDelay: 0.02,
		L:             8,
		Comprehensive: true,
		Duration:      8,
		Warmup:        2,
		Seed:          17,
		RevJitter:     0.2,
	}
	// Plans are pure data (Arm binds a fresh copy of the mutable state
	// each run), so one plan serves every iteration.
	cfg.Faults = (&fault.Plan{Seed: cfg.Seed}).
		Flap(4, cfg.Warmup+2, cfg.Warmup+3, fault.Flush).
		Burst(0, 400, 25, 0.6).
		Squeeze(6, cfg.Warmup+1, cfg.Warmup+4, 0.5*cfg.Capacity, cfg.Capacity)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// churnSteadyConfig is the ChurnSteadyState workload: the parking-lot
// dumbbell under persistent TFRC/TCP flows plus all three churn
// protocols — Poisson TFRC transfers, Weibull TCP mice, a reverse-path
// TCP class over the mirrored chain and a CBR session base. durScale
// stretches the measured window (and the arrival budget with it), so
// two runs at different scales hold peak population fixed while the
// arrival count doubles — the axis the alloc-flatness test compares.
func churnSteadyConfig(durScale float64) experiments.TopoSimConfig {
	cfg := experiments.TopoSimConfig{
		Hops:          3,
		Capacity:      1.25e6,
		Buffer:        64,
		HopDelay:      0.01,
		AccessDelay:   0.005,
		RevDelay:      0.025,
		NTFRC:         2,
		NTCP:          2,
		L:             8,
		Comprehensive: true,
		Duration:      15 * durScale,
		Warmup:        5,
		Seed:          17,
		RevJitter:     0.2,
		MirrorRev:     true,
	}
	end := cfg.Warmup + cfg.Duration
	maxA := int(1200 * durScale)
	cfg.Churn = []arrivals.Spec{
		{
			Name: "tfrc", Proto: arrivals.TFRC,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 8},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 30},
			Stop: end, MaxArrivals: maxA, Seed: 9901,
		},
		{
			Name: "mice", Proto: arrivals.TCP,
			Gap:  arrivals.Gap{Kind: arrivals.Weibull, Shape: 0.6, Scale: 0.04},
			Size: arrivals.Size{Kind: arrivals.Pareto, Shape: 1.3, MinPackets: 4, CapPackets: 80},
			Stop: end, MaxArrivals: 2 * maxA, Seed: 9902,
		},
		{
			Name: "rev", Proto: arrivals.TCP, Reverse: true,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 6},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 6},
			Stop: end, MaxArrivals: maxA, Seed: 9903,
		},
		{
			Name: "cbr", Proto: arrivals.CBR, CBRRate: 100,
			Gap:  arrivals.Gap{Kind: arrivals.Poisson, Rate: 4},
			Size: arrivals.Size{Kind: arrivals.Fixed, Packets: 4},
			Stop: end, MaxArrivals: maxA, Seed: 9904,
		},
	}
	return cfg
}

// runChurnSteadyState is the shared body behind ChurnSteadyState and
// the alloc-flatness test; it reports events/sec and events/run like
// the other whole-simulation benchmarks.
func runChurnSteadyState(b *testing.B, durScale float64) {
	cfg := churnSteadyConfig(durScale)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTopoSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}

// ChurnSteadyState measures whole-simulation throughput under run-time
// flow churn: several hundred finite TFRC/TCP/CBR transfers arrive,
// complete and are reclaimed while the persistent flows hold the
// bottleneck. Against ParkingLotSteadyState it bounds the cost of the
// arrival engine itself — the draw/attach/detach cycle plus the
// endpoint pools — and its allocs/op is the witness that steady-state
// churn recycles instead of allocating: allocations scale with the
// peak concurrent population, not with the number of arrivals served.
func ChurnSteadyState(b *testing.B) {
	runChurnSteadyState(b, 1)
}

// ReversePathSteadyState measures whole-simulation throughput with a
// routed congested reverse path: 2 TFRC + 2 TCP primary flows whose
// feedback and ACKs cross a real reverse queue shared with 2
// opposing-direction TCP flows and cross traffic, 25 simulated seconds.
// Against DumbbellSteadyState it isolates the cost of reverse-path
// routing (the Rev branch in the forwarding path, reverse queues, and
// the doubled per-packet link traversals of two-way traffic). Reports
// events/sec and events/run like the other whole-simulation benchmarks.
func ReversePathSteadyState(b *testing.B) {
	cfg := experiments.RevSimConfig{
		Capacity:      1.25e6,
		Buffer:        64,
		FwdDelay:      0.01,
		AccessDelay:   0.005,
		RevExtra:      0.02,
		RevCapacities: []float64{1.25e6},
		RevBuffer:     64,
		RevHopDelay:   0.005,
		NTFRC:         2,
		NTCP:          2,
		BackTCP:       2,
		RevCrossLoad:  0.3,
		L:             8,
		Comprehensive: true,
		Duration:      20,
		Warmup:        5,
		Seed:          17,
		RevJitter:     0.2,
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunRevSim(cfg)
		events = res.EventsFired
	}
	b.StopTimer()
	if events > 0 {
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(events)/secPerOp, "events/sec")
		b.ReportMetric(float64(events), "events/run")
	}
}
