package perfbench

import (
	"testing"

	"repro/internal/experiments"
)

// Steady-state churn must be allocation-flat in the arrival count:
// doubling the measured window doubles the transfers served but holds
// the peak concurrent population (and thus the endpoint pools) fixed,
// so allocs per run may not grow with it. A linear term here means the
// arrival engine is constructing per-arrival instead of recycling —
// exactly the regression the ChurnSteadyState gate exists to catch.
func TestChurnSteadyStateAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-simulation alloc comparison skipped in -short mode")
	}
	arrivalsOf := func(res experiments.TopoSimResult) int64 {
		var n int64
		for _, c := range res.Churn {
			n += c.Arrivals
		}
		return n
	}
	a1 := arrivalsOf(experiments.RunTopoSim(churnSteadyConfig(1)))
	a2 := arrivalsOf(experiments.RunTopoSim(churnSteadyConfig(2)))
	if a1 == 0 || float64(a2) < 1.7*float64(a1) {
		t.Fatalf("arrival counts did not scale with the window: %d vs %d", a1, a2)
	}

	r1 := testing.Benchmark(func(b *testing.B) { runChurnSteadyState(b, 1) })
	r2 := testing.Benchmark(func(b *testing.B) { runChurnSteadyState(b, 2) })
	if r1.AllocsPerOp() == 0 {
		t.Fatal("benchmark recorded zero allocs/run — harness broken")
	}
	// The band absorbs run-arena amortization wiggle (a GC can drain the
	// sync.Pool mid-run) and the slightly larger slot/flow tables of the
	// doubled arrival budget; per-arrival construction (~10 allocs each
	// across hundreds of extra transfers) blows far past it.
	limit := float64(r1.AllocsPerOp())*1.25 + 256
	if got := float64(r2.AllocsPerOp()); got > limit {
		t.Fatalf("allocs/run scaled with the arrival count: %d at 1x (%d arrivals) vs %d at 2x (%d arrivals)",
			r1.AllocsPerOp(), a1, r2.AllocsPerOp(), a2)
	}
}
