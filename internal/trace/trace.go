// Package trace records time series from simulation runs — send-rate
// trajectories, queue occupancy, loss-event marks — and renders them as
// TSV for plotting. It is the reproduction's equivalent of the rate
// traces protocol papers show alongside long-run averages: the long-run
// claims of the paper are about time averages, but inspecting the
// trajectory is how one debugs a control.
package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Window errors returned by TimeAverage and Recorder.WriteTSV. These
// used to panic, but callers now include the hardened -deadline path,
// where a panic poisons a whole job; a bad window is an input error,
// not a corrupted invariant.
var (
	// ErrEmptySeries reports an aggregate over a series with no samples.
	ErrEmptySeries = errors.New("trace: empty series")
	// ErrEmptyWindow reports a window with to <= from.
	ErrEmptyWindow = errors.New("trace: empty window")
	// ErrBadGrid reports a resampling grid with fewer than two points.
	ErrBadGrid = errors.New("trace: resampling grid needs at least two points")
)

// Series is a named, time-ordered sequence of samples.
type Series struct {
	// Name labels the series in output.
	Name string
	// Times and Values are the parallel sample arrays.
	Times, Values []float64
}

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(t, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic("trace: samples must arrive in time order")
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// At returns the last sampled value at or before time t (zero-order
// hold), or 0 before the first sample. With several samples at the same
// timestamp (an instantaneous multi-step update), the hold keeps the
// latest one — the state the system was left in at that instant.
func (s *Series) At(t float64) float64 {
	// Upper bound: first index with Times[i] > t. This steps past every
	// sample co-timestamped at t, unlike SearchFloat64s, which stops at
	// the first of them.
	i := sort.Search(len(s.Times), func(k int) bool { return s.Times[k] > t })
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// TimeAverage returns the zero-order-hold time average of the series
// over [from, to]. It returns ErrEmptySeries on a series with no
// samples and ErrEmptyWindow when to <= from.
func (s *Series) TimeAverage(from, to float64) (float64, error) {
	if s.Len() == 0 {
		return 0, ErrEmptySeries
	}
	if to <= from {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrEmptyWindow, from, to)
	}
	sum := 0.0
	t := from
	for i := 0; i < len(s.Times); i++ {
		if s.Times[i] <= from {
			continue
		}
		end := s.Times[i]
		if end > to {
			end = to
		}
		sum += s.At(t) * (end - t)
		t = end
		if t >= to {
			break
		}
	}
	if t < to {
		sum += s.At(t) * (to - t)
	}
	return sum / (to - from), nil
}

// Recorder collects several named series plus point events.
type Recorder struct {
	series map[string]*Series
	order  []string
	// Events are labeled time instants (loss events, state changes).
	Events []Event
}

// Event is a labeled instant.
type Event struct {
	Time  float64
	Label string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: map[string]*Series{}}
}

// Series returns (creating if needed) the named series.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Mark records a labeled event.
func (r *Recorder) Mark(t float64, label string) {
	r.Events = append(r.Events, Event{Time: t, Label: label})
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteTSV renders all series resampled on a common grid of n points
// spanning [from, to] (zero-order hold), one column per series. A grid
// with fewer than two points or a window with to <= from is an error.
func (r *Recorder) WriteTSV(w io.Writer, from, to float64, n int) error {
	if n < 2 {
		return fmt.Errorf("%w: n=%d", ErrBadGrid, n)
	}
	if to <= from {
		return fmt.Errorf("%w: [%g, %g]", ErrEmptyWindow, from, to)
	}
	if _, err := fmt.Fprint(w, "time"); err != nil {
		return err
	}
	for _, name := range r.order {
		if _, err := fmt.Fprintf(w, "\t%s", name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	step := (to - from) / float64(n-1)
	for i := 0; i < n; i++ {
		t := from + float64(i)*step
		if _, err := fmt.Fprintf(w, "%.6g", t); err != nil {
			return err
		}
		for _, name := range r.order {
			if _, err := fmt.Fprintf(w, "\t%.6g", r.series[name].At(t)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
