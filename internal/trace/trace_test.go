package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSeriesAtZeroOrderHold(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if v := s.At(0.5); v != 0 {
		t.Fatalf("before first sample = %v", v)
	}
	if v := s.At(1); v != 10 {
		t.Fatalf("at sample = %v", v)
	}
	if v := s.At(1.5); v != 10 {
		t.Fatalf("hold = %v", v)
	}
	if v := s.At(3); v != 20 {
		t.Fatalf("hold2 = %v", v)
	}
	if v := s.At(100); v != 40 {
		t.Fatalf("after last = %v", v)
	}
}

// Regression: with several samples at the same timestamp the hold must
// return the *latest* co-timestamped value, not the first one that
// sort.SearchFloat64s lands on. An instantaneous multi-step update
// (e.g. rate halved twice at one no-feedback expiry) leaves the system
// in the last state.
func TestSeriesAtDuplicateTimestamps(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(1, 10)
	s.Add(1, 20)
	s.Add(1, 30)
	s.Add(2, 40)
	if v := s.At(1); v != 30 {
		t.Fatalf("At(1) = %v, want the last co-timestamped value 30", v)
	}
	if v := s.At(1.5); v != 30 {
		t.Fatalf("At(1.5) = %v, want 30", v)
	}
	if v := s.At(0.5); v != 1 {
		t.Fatalf("At(0.5) = %v, want 1", v)
	}
	// Duplicates at the very first timestamp: before them still 0.
	var s2 Series
	s2.Add(1, 5)
	s2.Add(1, 6)
	if v := s2.At(0.9); v != 0 {
		t.Fatalf("before first sample = %v, want 0", v)
	}
	if v := s2.At(1); v != 6 {
		t.Fatalf("At(first dup) = %v, want 6", v)
	}
}

func TestSeriesOrderEnforced(t *testing.T) {
	var s Series
	s.Add(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order sample")
		}
	}()
	s.Add(1, 1)
}

func TestTimeAverage(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 0) // 10 for [0,1), 0 for [1,10)
	got, err := s.TimeAverage(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("time average = %v, want 1", got)
	}
	// Sub-window entirely in the first segment.
	if got, err := s.TimeAverage(0, 1); err != nil || math.Abs(got-10) > 1e-12 {
		t.Fatalf("sub-window average = %v (err %v), want 10", got, err)
	}
	// Window extending past the last sample holds the last value.
	s2 := Series{}
	s2.Add(0, 5)
	if got, err := s2.TimeAverage(0, 4); err != nil || math.Abs(got-5) > 1e-12 {
		t.Fatalf("constant average = %v (err %v)", got, err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	a := r.Series("rate")
	b := r.Series("queue")
	if r.Series("rate") != a {
		t.Fatal("series not memoized")
	}
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0.5, 7)
	r.Mark(0.7, "loss")
	if len(r.Events) != 1 || r.Events[0].Label != "loss" {
		t.Fatalf("events = %v", r.Events)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "rate" || names[1] != "queue" {
		t.Fatalf("names = %v", names)
	}
	var buf bytes.Buffer
	if err := r.WriteTSV(&buf, 0, 1, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time\trate\tqueue\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	// Last row: t=1 -> rate 2, queue 7.
	if lines[3] != "1\t2\t7" {
		t.Fatalf("last row = %q", lines[3])
	}
}

// Bad windows are input errors, not panics: a panic in a scenario job
// poisons the whole job under the hardened -deadline harness, while an
// error folds into the failure manifest.
func TestWindowErrors(t *testing.T) {
	single := &Series{}
	single.Add(0, 1)
	rec := NewRecorder()
	rec.Series("x").Add(0, 1)
	var buf bytes.Buffer

	cases := []struct {
		name    string
		run     func() error
		wantErr error
	}{
		{"time-average empty series", func() error {
			_, err := (&Series{}).TimeAverage(0, 1)
			return err
		}, ErrEmptySeries},
		{"time-average empty series and empty window", func() error {
			// The empty series is reported first: there is nothing to
			// average regardless of the window.
			_, err := (&Series{}).TimeAverage(2, 2)
			return err
		}, ErrEmptySeries},
		{"time-average single sample from==to", func() error {
			_, err := single.TimeAverage(2, 2)
			return err
		}, ErrEmptyWindow},
		{"time-average single sample inverted window", func() error {
			_, err := single.TimeAverage(3, 2)
			return err
		}, ErrEmptyWindow},
		{"write-tsv one-point grid", func() error {
			return rec.WriteTSV(&buf, 0, 1, 1)
		}, ErrBadGrid},
		{"write-tsv from==to", func() error {
			return rec.WriteTSV(&buf, 1, 1, 5)
		}, ErrEmptyWindow},
		{"write-tsv inverted window", func() error {
			return rec.WriteTSV(&buf, 1, 0, 5)
		}, ErrEmptyWindow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panicked: %v", p)
				}
			}()
			if err := tc.run(); !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}

	// Valid single-sample windows still work.
	if got, err := single.TimeAverage(0, 2); err != nil || got != 1 {
		t.Fatalf("single-sample average = %v (err %v), want 1", got, err)
	}
	buf.Reset()
	if err := rec.WriteTSV(&buf, 0, 1, 2); err != nil {
		t.Fatalf("valid write: %v", err)
	}
}

// Property: the time average always lies between the min and max of the
// held values over the window.
func TestQuickTimeAverageBounds(t *testing.T) {
	r := rng.New(9)
	f := func(n uint8) bool {
		var s Series
		tcur := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i <= int(n%20)+1; i++ {
			v := r.Float64() * 100
			s.Add(tcur, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			tcur += 0.1 + r.Float64()
		}
		avg, err := s.TimeAverage(0, tcur)
		return err == nil && avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: At is piecewise constant — it returns exactly one of the
// recorded values (or 0 before the first sample).
func TestQuickAtReturnsRecordedValue(t *testing.T) {
	r := rng.New(10)
	var s Series
	vals := map[float64]bool{0: true}
	tcur := 0.0
	for i := 0; i < 20; i++ {
		v := r.Float64()
		s.Add(tcur, v)
		vals[v] = true
		tcur += r.Float64() + 0.01
	}
	f := func(q uint16) bool {
		x := float64(q) / 65535 * (tcur + 1)
		return vals[s.At(x)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
