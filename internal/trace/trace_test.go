package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSeriesAtZeroOrderHold(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if v := s.At(0.5); v != 0 {
		t.Fatalf("before first sample = %v", v)
	}
	if v := s.At(1); v != 10 {
		t.Fatalf("at sample = %v", v)
	}
	if v := s.At(1.5); v != 10 {
		t.Fatalf("hold = %v", v)
	}
	if v := s.At(3); v != 20 {
		t.Fatalf("hold2 = %v", v)
	}
	if v := s.At(100); v != 40 {
		t.Fatalf("after last = %v", v)
	}
}

func TestSeriesOrderEnforced(t *testing.T) {
	var s Series
	s.Add(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order sample")
		}
	}()
	s.Add(1, 1)
}

func TestTimeAverage(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 0) // 10 for [0,1), 0 for [1,10)
	got := s.TimeAverage(0, 10)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("time average = %v, want 1", got)
	}
	// Sub-window entirely in the first segment.
	if got := s.TimeAverage(0, 1); math.Abs(got-10) > 1e-12 {
		t.Fatalf("sub-window average = %v, want 10", got)
	}
	// Window extending past the last sample holds the last value.
	s2 := Series{}
	s2.Add(0, 5)
	if got := s2.TimeAverage(0, 4); math.Abs(got-5) > 1e-12 {
		t.Fatalf("constant average = %v", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	a := r.Series("rate")
	b := r.Series("queue")
	if r.Series("rate") != a {
		t.Fatal("series not memoized")
	}
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0.5, 7)
	r.Mark(0.7, "loss")
	if len(r.Events) != 1 || r.Events[0].Label != "loss" {
		t.Fatalf("events = %v", r.Events)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "rate" || names[1] != "queue" {
		t.Fatalf("names = %v", names)
	}
	var buf bytes.Buffer
	if err := r.WriteTSV(&buf, 0, 1, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time\trate\tqueue\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	// Last row: t=1 -> rate 2, queue 7.
	if lines[3] != "1\t2\t7" {
		t.Fatalf("last row = %q", lines[3])
	}
}

func TestPanics(t *testing.T) {
	r := NewRecorder()
	r.Series("x").Add(0, 1)
	var buf bytes.Buffer
	cases := []func(){
		func() { (&Series{}).TimeAverage(0, 1) },
		func() {
			s := &Series{}
			s.Add(0, 1)
			s.TimeAverage(2, 2)
		},
		func() { _ = r.WriteTSV(&buf, 0, 1, 1) },
		func() { _ = r.WriteTSV(&buf, 1, 0, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the time average always lies between the min and max of the
// held values over the window.
func TestQuickTimeAverageBounds(t *testing.T) {
	r := rng.New(9)
	f := func(n uint8) bool {
		var s Series
		tcur := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i <= int(n%20)+1; i++ {
			v := r.Float64() * 100
			s.Add(tcur, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			tcur += 0.1 + r.Float64()
		}
		avg := s.TimeAverage(0, tcur)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: At is piecewise constant — it returns exactly one of the
// recorded values (or 0 before the first sample).
func TestQuickAtReturnsRecordedValue(t *testing.T) {
	r := rng.New(10)
	var s Series
	vals := map[float64]bool{0: true}
	tcur := 0.0
	for i := 0; i < 20; i++ {
		v := r.Float64()
		s.Add(tcur, v)
		vals[v] = true
		tcur += r.Float64() + 0.01
	}
	f := func(q uint16) bool {
		x := float64(q) / 65535 * (tcur + 1)
		return vals[s.At(x)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
