// Package repro's benchmark harness: one testing.B benchmark per figure
// of the paper's evaluation section, each running a scaled-down version
// of the experiment through the scenario registry and reporting the
// figure's headline metric via b.ReportMetric, plus ablation benches
// for the design choices called out in DESIGN.md §5 and serial-vs-pool
// benches for the runner engine itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cbr"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
	"repro/internal/runner"
)

// benchSizing is small enough to keep the full bench suite within a few
// minutes while preserving every figure's qualitative shape.
var benchSizing = experiments.Sizing{
	Events:    15000,
	SimFactor: 0.1,
	Pairs:     []int{1, 4},
	PairsCap:  2,
}

// benchScenario runs one registry scenario serially at bench sizing.
func benchScenario(b *testing.B, name string) []*experiments.Table {
	b.Helper()
	s, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("scenario %q not registered", name)
	}
	tables, err := s.Run(context.Background(), benchSizing, runner.Serial{})
	if err != nil {
		b.Fatal(err)
	}
	return tables
}

func BenchmarkFig01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig1")[0]
		if i == 0 {
			b.ReportMetric(float64(len(t.Rows)), "grid-points")
		}
	}
}

func BenchmarkFig02(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := formula.NewPFTKStandard(formula.Params{R: 1, Q: 4, B: 1})
		ratio, _ = formula.DeviationFromConvexity(f, 1.01, 50, 40000)
	}
	b.ReportMetric(ratio, "deviation-ratio")
}

func BenchmarkFig03(b *testing.B) {
	var lastDrop float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig3")[1] // PFTK-simplified panel
		l8 := t.Column("L8")
		lastDrop = l8[0] - l8[len(l8)-1]
	}
	b.ReportMetric(lastDrop, "normalized-drop")
}

func BenchmarkFig04(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig4")[1] // the p = 0.1 panel
		l8 := t.Column("L8")
		drop = l8[0] - l8[len(l8)-1]
	}
	b.ReportMetric(drop, "normalized-drop-over-cv")
}

func BenchmarkFig05(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig5")[0]
		if len(t.Rows) > 0 {
			norm = t.Rows[len(t.Rows)-1][3]
		}
	}
	b.ReportMetric(norm, "tfrc-normalized")
}

func BenchmarkFig06(b *testing.B) {
	var overshoot float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig6")[0]
		col := t.Column("pftksimp_norm")
		overshoot = col[len(col)-1]
	}
	b.ReportMetric(overshoot, "pftk-heavy-loss-normalized")
}

func BenchmarkFig07(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig7")[0]
		// Mean p_tfrc / p_tcp over rows with data (Claim 3: >= 1).
		var sumT, sumC float64
		for _, row := range t.Rows {
			sumT += row[2]
			sumC += row[3]
		}
		if sumC > 0 {
			ratio = sumT / sumC
		}
	}
	b.ReportMetric(ratio, "p-tfrc-over-p-tcp")
}

func BenchmarkFig08(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig8")[0]
		s := 0.0
		for _, row := range t.Rows {
			s += row[2]
		}
		if len(t.Rows) > 0 {
			mean = s / float64(len(t.Rows))
		}
	}
	b.ReportMetric(mean, "tfrc-over-tcp-throughput")
}

func BenchmarkFig09(b *testing.B) {
	var below float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig9")[0]
		n := 0
		for _, row := range t.Rows {
			if row[2] <= row[1] {
				n++
			}
		}
		if len(t.Rows) > 0 {
			below = float64(n) / float64(len(t.Rows))
		}
	}
	b.ReportMetric(below, "tcp-below-formula-fraction")
}

func BenchmarkFig10(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig10")[0]
		worst = 0
		for _, row := range t.Rows {
			if v := row[2]; v > worst || -v > worst {
				if v < 0 {
					v = -v
				}
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "max-abs-covnorm")
}

func BenchmarkFig11(b *testing.B) {
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig11")[0]
		maxRatio = 0
		for _, row := range t.Rows {
			if row[3] > maxRatio {
				maxRatio = row[3]
			}
		}
	}
	b.ReportMetric(maxRatio, "max-tfrc-over-tcp")
}

func BenchmarkFig12to15(b *testing.B) {
	var pRatio float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig12-15")[0]
		s, n := 0.0, 0
		for _, row := range t.Rows {
			s += row[4]
			n++
		}
		if n > 0 {
			pRatio = s / float64(n)
		}
	}
	b.ReportMetric(pRatio, "mean-pprime-over-p")
}

func BenchmarkFig16(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig16")[0]
		s := 0.0
		for _, row := range t.Rows {
			s += row[3]
		}
		if len(t.Rows) > 0 {
			mean = s / float64(len(t.Rows))
		}
	}
	b.ReportMetric(mean, "mean-tfrc-over-tcp")
}

func BenchmarkFig17(b *testing.B) {
	var comp float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig17")[0]
		s, n := 0.0, 0
		for _, row := range t.Rows {
			if row[2] > 0 {
				s += row[2]
				n++
			}
		}
		if n > 0 {
			comp = s / float64(n)
		}
	}
	b.ReportMetric(comp, "mean-competing-pprime-over-p")
}

func BenchmarkFig18to19(b *testing.B) {
	var normTCP float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "fig18-19")[0]
		s, n := 0.0, 0
		for _, row := range t.Rows {
			s += row[6]
			n++
		}
		if n > 0 {
			normTCP = s / float64(n)
		}
	}
	b.ReportMetric(normTCP, "mean-tcp-obedience")
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "tableI")[0]
		if len(t.Rows) != 4 {
			b.Fatal("tableI should list 4 WAN profiles")
		}
	}
}

func BenchmarkClaim3(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "claim3")[0]
		spread = t.Rows[len(t.Rows)-1][2] / t.Rows[0][2] // p''/p'
	}
	b.ReportMetric(spread, "poisson-over-tcp")
}

func BenchmarkClaim4(b *testing.B) {
	var fluid float64
	for i := 0; i < b.N; i++ {
		t := benchScenario(b, "claim4")[0]
		for _, row := range t.Rows {
			if row[0] == 0.5 {
				fluid = row[2]
			}
		}
	}
	b.ReportMetric(fluid, "fluid-ratio-beta-half")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationWeights compares the TFRC flat-then-linear weights
// against uniform and exponential weighting of the estimator at the same
// window, reporting the normalized throughput of each.
func BenchmarkAblationWeights(b *testing.B) {
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	run := func(w []float64, seed uint64) float64 {
		return core.RunBasic(core.Config{
			Formula: f,
			Weights: w,
			Process: lossmodel.DesignShiftedExp(0.2, 0.9, rng.New(seed)),
			Events:  benchSizing.Events,
		}).Normalized
	}
	var tfrcW, unifW, expW float64
	for i := 0; i < b.N; i++ {
		tfrcW = run(estimator.TFRCWeights(8), 1)
		unifW = run(estimator.UniformWeights(8), 2)
		expW = run(estimator.ExponentialWeights(8, 0.7), 3)
	}
	b.ReportMetric(tfrcW, "tfrc-weights")
	b.ReportMetric(unifW, "uniform-weights")
	b.ReportMetric(expW, "exp-weights")
}

// BenchmarkAblationComprehensive reports the throughput gap between the
// comprehensive and basic controls (Proposition 2's direction).
func BenchmarkAblationComprehensive(b *testing.B) {
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	var gap float64
	for i := 0; i < b.N; i++ {
		mk := func() core.Config {
			return core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(8),
				Process: lossmodel.DesignShiftedExp(0.25, 0.95, rng.New(11)),
				Events:  benchSizing.Events,
			}
		}
		basic := core.RunBasic(mk())
		comp := core.RunComprehensive(mk())
		gap = comp.Normalized - basic.Normalized
	}
	b.ReportMetric(gap, "comprehensive-minus-basic")
}

// BenchmarkAblationQueue compares loss-event statistics under RED and
// DropTail for the same flow mix: RED's early drops desynchronize loss
// events across flows.
func BenchmarkAblationQueue(b *testing.B) {
	var redP, dtP float64
	for i := 0; i < b.N; i++ {
		pr := experiments.NS2Profile().Scale(benchSizing.SimFactor, 0)
		red := experiments.RunSim(pr.Config(4, 8, 21))
		cfg := pr.Config(4, 8, 21)
		cfg.Queue = experiments.DropTail
		cfg.Buffer = 100
		dt := experiments.RunSim(cfg)
		redP, dtP = red.TFRC.LossEventRate, dt.TFRC.LossEventRate
	}
	b.ReportMetric(redP, "red-p")
	b.ReportMetric(dtP, "droptail-p")
}

// BenchmarkAblationLossGrouping compares TFRC-style within-one-RTT loss
// grouping against per-loss events, via the audio scenario where the
// grouping window is the only difference between geometric intervals
// and raw Bernoulli drops.
func BenchmarkAblationLossGrouping(b *testing.B) {
	params := formula.ParamsForRTT(0.2)
	var grouped float64
	for i := 0; i < b.N; i++ {
		res := cbr.NewAudio(formula.NewPFTKSimplified(params), 4, 0.02, 0.2, 31).
			Run(benchSizing.Events, benchSizing.Events/10)
		grouped = res.LossEventRate
	}
	b.ReportMetric(grouped, "per-loss-event-rate")
}

// BenchmarkAblationEstimatorWindow sweeps L and reports the heavy-loss
// conservativeness at each (the paper's central sensitivity).
func BenchmarkAblationEstimatorWindow(b *testing.B) {
	f := formula.NewPFTKSimplified(formula.DefaultParams())
	var l2, l16 float64
	for i := 0; i < b.N; i++ {
		run := func(L int, seed uint64) float64 {
			return core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(0.3, 0.95, rng.New(seed)),
				Events:  benchSizing.Events,
			}).Normalized
		}
		l2, l16 = run(2, 41), run(16, 42)
	}
	b.ReportMetric(l2, "L2-normalized")
	b.ReportMetric(l16, "L16-normalized")
}

// BenchmarkFluidClaim4 times the analytic fluid simulation itself.
func BenchmarkFluidClaim4(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = analytic.SimulateFluidShared(analytic.DefaultAIMD(), 200, 8, 20000, 7).Ratio
	}
	b.ReportMetric(ratio, "loss-rate-ratio")
}

// BenchmarkAblationDiscounting compares TFRC with and without RFC 3448
// history discounting on the same scenario.
func BenchmarkAblationDiscounting(b *testing.B) {
	var plain, disc float64
	for i := 0; i < b.N; i++ {
		pr := experiments.NS2Profile().Scale(benchSizing.SimFactor, 0)
		p := experiments.RunSim(pr.Config(1, 8, 63))
		cfg := pr.Config(1, 8, 63)
		cfg.HistoryDiscounting = true
		d := experiments.RunSim(cfg)
		plain, disc = p.TFRC.Throughput, d.TFRC.Throughput
	}
	b.ReportMetric(plain, "plain-throughput")
	b.ReportMetric(disc, "discounting-throughput")
}

// BenchmarkAblationCrossTraffic compares foreground loss-event rates
// with and without heavy-tailed background load.
func BenchmarkAblationCrossTraffic(b *testing.B) {
	var clean, loaded float64
	for i := 0; i < b.N; i++ {
		pr := experiments.INRIA.Scale(benchSizing.SimFactor, 0)
		cfg := pr.Config(2, 8, 31)
		cfg.CrossLoad = 0
		c := experiments.RunSim(cfg)
		cfg2 := pr.Config(2, 8, 31)
		cfg2.CrossLoad = 0.3
		l := experiments.RunSim(cfg2)
		clean, loaded = c.TFRC.LossEventRate, l.TFRC.LossEventRate
	}
	b.ReportMetric(clean, "clean-p")
	b.ReportMetric(loaded, "crossload-p")
}

// --- Runner engine benches ---

// suiteScenarios is the sim-heavy subset that dominates the full figure
// suite's wall time — the workload the -parallel CLI mode targets.
var suiteScenarios = []string{"fig5", "fig7", "fig8", "fig9", "fig17"}

func runSuite(b *testing.B, ex runner.Executor) {
	b.Helper()
	for _, name := range suiteScenarios {
		s, ok := experiments.Lookup(name)
		if !ok {
			b.Fatalf("scenario %q not registered", name)
		}
		if _, err := s.Run(context.Background(), benchSizing, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial is the baseline: the sim-heavy scenarios on one
// core, as the pre-runner code ran them.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, runner.Serial{})
	}
}

// BenchmarkSuiteParallel runs the same scenarios on a NumCPU worker
// pool; compare against BenchmarkSuiteSerial for the engine's speedup.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, runner.NewPool(0))
	}
}
