package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// runBenchCmp compares a new BENCH_*.json report against a baseline and
// returns 1 when a tracked benchmark regressed: events/sec fell by more
// than tol (fraction), or allocs/op increased at all. Benchmarks are
// matched by name; entries present in only one report are listed but
// never gate, so adding a benchmark does not break the comparison
// against older baselines. This is the gate the CI bench job runs —
// the perf trajectory is compared, not just recorded.
func runBenchCmp(oldPath, newPath string, tol float64, stdout, stderr io.Writer) int {
	if tol <= 0 || tol >= 1 {
		fmt.Fprintf(stderr, "ebrc: -benchtol must be in (0,1), got %v\n", tol)
		return 2
	}
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	oldBy := make(map[string]benchEntry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldBy[e.Name] = e
	}

	failures := 0
	compared := 0
	for _, n := range newRep.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-24s new benchmark, not gated (%.0f events/sec, %d allocs/op)\n",
				n.Name, n.EventsPerSec, n.AllocsPerOp)
			continue
		}
		delete(oldBy, n.Name)
		compared++
		var reasons []string
		if o.EventsPerSec > 0 && n.EventsPerSec < o.EventsPerSec*(1-tol) {
			reasons = append(reasons, fmt.Sprintf("events/sec fell >%d%%", int(tol*100)))
		}
		if n.AllocsPerOp > o.AllocsPerOp {
			reasons = append(reasons, fmt.Sprintf("allocs/op rose %d -> %d", o.AllocsPerOp, n.AllocsPerOp))
		}
		status := "ok"
		if len(reasons) > 0 {
			status = "FAIL: " + strings.Join(reasons, "; ")
			failures++
		}
		ratio := 0.0
		if o.EventsPerSec > 0 {
			ratio = n.EventsPerSec / o.EventsPerSec
		}
		fmt.Fprintf(stdout, "%-24s %12.0f -> %12.0f events/sec (%.2fx)  %6d -> %6d allocs/op  %s\n",
			n.Name, o.EventsPerSec, n.EventsPerSec, ratio, o.AllocsPerOp, n.AllocsPerOp, status)
	}
	missing := make([]string, 0, len(oldBy))
	for name := range oldBy {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(stdout, "%-24s missing from %s, not gated\n", name, newPath)
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "ebrc: no benchmarks in common between %s and %s\n", oldPath, newPath)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "ebrc: %d benchmark regression(s) vs %s\n", failures, oldPath)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions: %d benchmarks within %.0f%% of %s\n",
		compared, tol*100, oldPath)
	return 0
}

func loadBenchReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}
