package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// byteSlack is the absolute bytes/op growth the -benchcmp gate always
// tolerates on top of the relative band. Near-zero baselines (e.g. a
// warmed-up scheduler bench whose one-time bucket growth amortizes to a
// few bytes/op) scale inversely with the machine-dependent iteration
// count testing.Benchmark picks, so a purely relative band would flag
// noise; any real leak grows past this floor immediately.
const byteSlack = 512

// runBenchCmp compares a new BENCH_*.json report against a baseline and
// returns 1 when a tracked benchmark regressed: events/sec fell by more
// than tol (fraction), allocs/op grew by more than atol (fraction), or
// bytes/op grew beyond both btol (fraction) and the absolute byteSlack
// floor. The allocation gates are narrow bands rather than zero
// tolerance because the run-arena pooling makes a whole-simulation
// benchmark's allocs/op weakly machine-dependent: per-op cost is
// per-run residual plus amortized pool build-up divided by the
// iteration count testing.Benchmark picks, and a GC can drain the
// sync.Pool mid-run. A zero-allocs baseline stays zero-tolerance —
// `0*(1+atol)` is 0 — so the hot-path zero-allocation guarantee is
// still machine-independent and hard. Benchmarks are matched by name;
// entries present in only one report are listed but never gate, so
// adding a benchmark does not break the comparison against older
// baselines. This is the gate the CI bench job runs — the perf
// trajectory is compared, not just recorded.
func runBenchCmp(oldPath, newPath string, tol, atol, btol float64, stdout, stderr io.Writer) int {
	if tol <= 0 || tol >= 1 {
		fmt.Fprintf(stderr, "ebrc: -benchtol must be in (0,1), got %v\n", tol)
		return 2
	}
	if atol < 0 || atol >= 1 {
		fmt.Fprintf(stderr, "ebrc: -benchalloctol must be in [0,1), got %v\n", atol)
		return 2
	}
	if btol < 0 || btol >= 1 {
		fmt.Fprintf(stderr, "ebrc: -benchbytetol must be in [0,1), got %v\n", btol)
		return 2
	}
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	if os, ns := goSeries(oldRep.GoVersion), goSeries(newRep.GoVersion); os != ns {
		// A toolchain jump moves every number (runtime, GC, codegen), so
		// flag it — but only as a warning: the tolerance bands still
		// gate, and failing here would block every routine Go upgrade.
		fmt.Fprintf(stderr, "ebrc: warning: comparing across Go series (%s vs %s) — deltas include toolchain effects\n",
			oldRep.GoVersion, newRep.GoVersion)
	}
	oldBy := make(map[string]benchEntry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldBy[e.Name] = e
	}

	failures := 0
	compared := 0
	var newOnly []string
	for _, n := range newRep.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			newOnly = append(newOnly, n.Name)
			fmt.Fprintf(stdout, "%-24s new benchmark, not gated (%.0f events/sec, %d allocs/op)\n",
				n.Name, n.EventsPerSec, n.AllocsPerOp)
			continue
		}
		delete(oldBy, n.Name)
		compared++
		var reasons []string
		if o.EventsPerSec > 0 && n.EventsPerSec < o.EventsPerSec*(1-tol) {
			reasons = append(reasons, fmt.Sprintf("events/sec fell >%d%%", int(tol*100)))
		}
		if float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*(1+atol) {
			reasons = append(reasons, fmt.Sprintf("allocs/op rose %d -> %d", o.AllocsPerOp, n.AllocsPerOp))
		}
		if allowed := math.Max(float64(o.BytesPerOp)*(1+btol),
			float64(o.BytesPerOp+byteSlack)); float64(n.BytesPerOp) > allowed {
			reasons = append(reasons, fmt.Sprintf("bytes/op rose >%d%% (%d -> %d)",
				int(btol*100), o.BytesPerOp, n.BytesPerOp))
		}
		status := "ok"
		if len(reasons) > 0 {
			status = "FAIL: " + strings.Join(reasons, "; ")
			failures++
		}
		ratio := 0.0
		if o.EventsPerSec > 0 {
			ratio = n.EventsPerSec / o.EventsPerSec
		}
		fmt.Fprintf(stdout, "%-24s %12.0f -> %12.0f events/sec (%.2fx)  %6d -> %6d allocs/op  %s\n",
			n.Name, o.EventsPerSec, n.EventsPerSec, ratio, o.AllocsPerOp, n.AllocsPerOp, status)
	}
	missing := make([]string, 0, len(oldBy))
	for name := range oldBy {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(stdout, "%-24s missing from %s, not gated\n", name, newPath)
	}
	// Bodies present only in the new report never gate (an older baseline
	// cannot fail a freshly-added benchmark) but they must not vanish
	// into the per-line noise either: list them explicitly at the end, so
	// a reviewer sees exactly which measurements lack a baseline until
	// the next BENCH_<n>.json is recorded.
	if len(newOnly) > 0 {
		sort.Strings(newOnly)
		fmt.Fprintf(stdout, "%d new benchmark(s) without a baseline in %s (recorded, not gated): %s\n",
			len(newOnly), oldPath, strings.Join(newOnly, ", "))
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "ebrc: no benchmarks in common between %s and %s\n", oldPath, newPath)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "ebrc: %d benchmark regression(s) vs %s\n", failures, oldPath)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions: %d benchmarks within %.0f%% of %s\n",
		compared, tol*100, oldPath)
	return 0
}

// goSeries reduces a runtime.Version() string to its minor series
// ("go1.24.0" -> "go1.24") so patch releases compare silently while
// series jumps trigger the toolchain warning. Unparseable strings
// (devel builds) are returned whole and so always warn against a
// release series.
func goSeries(v string) string {
	first := strings.Index(v, ".")
	if first < 0 {
		return v
	}
	if second := strings.Index(v[first+1:], "."); second >= 0 {
		return v[:first+1+second]
	}
	return v
}

func loadBenchReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}
