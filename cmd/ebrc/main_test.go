package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: -list prints every registered scenario.
func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"fig1", "fig12-15", "claim4", "tableI"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
	// Each line carries the scenario's executor modes: the sharded
	// families advertise all three, the dumbbell figures two.
	for _, line := range strings.Split(out.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "scalechain"):
			if !strings.Contains(line, "serial,parallel,sharded") {
				t.Fatalf("scalechain should list sharded mode: %q", line)
			}
		case strings.HasPrefix(line, "fig1 "):
			if !strings.Contains(line, "serial,parallel") || strings.Contains(line, "sharded") {
				t.Fatalf("fig1 modes wrong: %q", line)
			}
		}
	}
	// The legacy positional spelling still works.
	var out2 bytes.Buffer
	if code := run([]string{"list"}, &out2, &errb); code != 0 || out2.String() != out.String() {
		t.Fatalf("positional list differs (exit %d)", code)
	}
}

// Smoke test: -run executes a small scenario end to end, serially and
// in parallel, with identical TSV.
func TestRunScenario(t *testing.T) {
	var serial, par, errb bytes.Buffer
	if code := run([]string{"-run", "fig1,tableI"}, &serial, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(serial.String(), "# fig1") || !strings.Contains(serial.String(), "# tableI") {
		t.Fatalf("missing table headers:\n%s", serial.String())
	}
	if code := run([]string{"-parallel", "-workers", "4", "-run", "fig1,tableI"}, &par, &errb); code != 0 {
		t.Fatalf("parallel exit %d, stderr: %s", code, errb.String())
	}
	if par.String() != serial.String() {
		t.Fatal("parallel output differs from serial")
	}
	// Positional arguments accept the same comma-separated spelling,
	// with whitespace tolerated.
	var pos bytes.Buffer
	if code := run([]string{"fig1, tableI"}, &pos, &errb); code != 0 {
		t.Fatalf("positional list exit %d, stderr: %s", code, errb.String())
	}
	if pos.String() != serial.String() {
		t.Fatal("positional comma list differs from -run")
	}
}

// Smoke test: -shards routes a sharded-capable scenario through the
// space-parallel engine with TSV byte-identical to the serial run.
func TestRunShardsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded smoke run skipped in -short mode")
	}
	args := []string{"-quick", "-events", "2000", "-simfactor", "0.04", "-run", "parkinglot"}
	var serial, sharded, errb bytes.Buffer
	if code := run(args, &serial, &errb); code != 0 {
		t.Fatalf("serial exit %d, stderr: %s", code, errb.String())
	}
	if code := run(append([]string{"-shards", "3"}, args...), &sharded, &errb); code != 0 {
		t.Fatalf("sharded exit %d, stderr: %s", code, errb.String())
	}
	if sharded.String() != serial.String() {
		t.Fatal("-shards 3 output differs from serial")
	}
}

// The -benchrun filter: unit coverage of the name resolution, plus an
// end-to-end smoke run of one cheap benchmark.
func TestSelectBenchmarks(t *testing.T) {
	all, err := selectBenchmarks("")
	if err != nil || len(all) != len(benchSuite) {
		t.Fatalf("empty filter: %v, %d of %d benchmarks", err, len(all), len(benchSuite))
	}
	sel, err := selectBenchmarks(" SchedulerDeepQueue8K , SchedulerFire ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || benchSuite[sel[0]].name != "SchedulerFire" ||
		benchSuite[sel[1]].name != "SchedulerDeepQueue8K" {
		t.Fatalf("filter selected wrong set: %v", sel)
	}
	if _, err := selectBenchmarks("NoSuchBench"); err == nil {
		t.Fatal("unknown benchmark name not rejected")
	}
	if _, err := selectBenchmarks(" , "); err == nil {
		t.Fatal("blank filter list not rejected")
	}
}

func TestBenchRunFilterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke run skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, errb bytes.Buffer
	if code := run([]string{"-bench", "-benchrun", "SchedulerFire", "-benchout", out}, &stdout, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "SchedulerFire" {
		t.Fatalf("filtered report holds %+v, want exactly SchedulerFire", rep.Benchmarks)
	}
	if code := run([]string{"-bench", "-benchrun", "NoSuchBench", "-benchout", out}, &stdout, &errb); code != 2 {
		t.Fatalf("unknown benchmark name: exit %d", code)
	}
	if !strings.Contains(errb.String(), "NoSuchBench") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

// -deadline on a healthy run: the watchdog stays quiet, the output is
// byte-identical to the plain serial run, exit 0.
func TestDeadlineQuietOnHealthyRun(t *testing.T) {
	var plain, hardened, errb bytes.Buffer
	if code := run([]string{"-run", "fig1,tableI"}, &plain, &errb); code != 0 {
		t.Fatalf("plain exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-deadline", "10m", "-run", "fig1,tableI"}, &hardened, &errb); code != 0 {
		t.Fatalf("hardened exit %d, stderr: %s", code, errb.String())
	}
	if hardened.String() != plain.String() {
		t.Fatal("-deadline output differs from plain run")
	}
}

// -deadline with an impossible budget: every job is abandoned, the
// failure manifest lands on stderr with the job seeds, the table
// headers still print (empty tables), and the exit code turns 1 —
// partial-results mode, not a crash.
func TestDeadlineAbandonsAndReports(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-events", "500", "-simfactor", "0.02", "-deadline", "1ns", "-run", "hetrtt"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"jobs failed", "seed", "watchdog"} {
		if !strings.Contains(errb.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, errb.String())
		}
	}
	if !strings.Contains(out.String(), "# hetrtt") {
		t.Fatalf("surviving (empty) table header not printed:\n%s", out.String())
	}
}

// -seed filters a batch to the jobs carrying that seed: claim4's jobs
// all carry seed 7, so -seed 7 reproduces the full table and a seed no
// job carries yields just the header.
func TestSeedFilter(t *testing.T) {
	var full, same, none, errb bytes.Buffer
	if code := run([]string{"-run", "claim4"}, &full, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-seed", "7", "-run", "claim4"}, &same, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if same.String() != full.String() {
		t.Fatalf("-seed 7 differs from the full run:\n%s\nvs\n%s", same.String(), full.String())
	}
	if code := run([]string{"-seed", "424242", "-run", "claim4"}, &none, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(none.String(), "# claim4") || strings.Count(none.String(), "\n") >= strings.Count(full.String(), "\n") {
		t.Fatalf("-seed with no matching jobs should print an empty table:\n%s", none.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "no-such-figure"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scenario: exit %d", code)
	}
	if !strings.Contains(errb.String(), "no-such-figure") {
		t.Fatalf("stderr: %s", errb.String())
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
}

// The observability flags: -metrics and -epochs append their blocks
// after the tables and the whole stream — tables plus capture — stays
// byte-identical between the serial engine and a sharded run; -trace
// writes a parseable Chrome trace_event JSON array. A plain run stays
// capture-free.
func TestObservabilityFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("observability smoke run skipped in -short mode")
	}
	traceOut := filepath.Join(t.TempDir(), "events.json")
	args := []string{"-quick", "-events", "2000", "-simfactor", "0.04",
		"-metrics", "-epochs", "3", "-trace", traceOut, "-run", "parkinglot"}
	var serial, sharded, errb bytes.Buffer
	if code := run(args, &serial, &errb); code != 0 {
		t.Fatalf("serial exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"# metrics parkinglot", "# epochs parkinglot",
		"des.events_fired", "net.forwarded", "tfrc.loss_events"} {
		if !strings.Contains(serial.String(), want) {
			t.Fatalf("capture block missing %q:\n%s", want, serial.String())
		}
	}
	if code := run(append([]string{"-shards", "3"}, args...), &sharded, &errb); code != 0 {
		t.Fatalf("sharded exit %d, stderr: %s", code, errb.String())
	}
	if sharded.String() != serial.String() {
		t.Fatal("-shards 3 observed output differs from serial")
	}

	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file holds no events")
	}
	if name, _ := events[0]["name"].(string); name != "process_name" {
		t.Fatalf("trace should open with process metadata, got %v", events[0])
	}

	// Without the flags the stream carries no capture blocks.
	var plain bytes.Buffer
	if code := run([]string{"-quick", "-events", "2000", "-simfactor", "0.04",
		"-run", "parkinglot"}, &plain, &errb); code != 0 {
		t.Fatalf("plain exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(plain.String(), "# metrics") || strings.Contains(plain.String(), "# epochs") {
		t.Fatalf("plain run leaked capture blocks:\n%s", plain.String())
	}
}
