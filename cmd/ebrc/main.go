// Command ebrc regenerates the data behind every figure of the paper's
// evaluation section as TSV on stdout, driven by the declarative
// scenario registry in internal/experiments and executed by the
// internal/runner engine — serially by default, or on a worker pool
// with -parallel (byte-identical output either way).
//
// Usage:
//
//	ebrc [-quick] [-parallel] [-shards K] [-events N] [-simfactor F] [-deadline D] [-retries N] [-seed N] <scenario> [...]
//	ebrc [-metrics] [-epochs N] [-trace FILE [-tracecap N]] [-expvar ADDR] <scenario> [...]
//	ebrc [-checkpoint-every T -checkpoint-dir D] [-resume D] <scenario> [...]
//	ebrc -list
//	ebrc -run fig5,fig7
//	ebrc all
//	ebrc -bench [-benchid N] [-benchout FILE] [-benchrun A,B,...]
//	ebrc -benchcmp [-benchtol F] [-benchalloctol F] [-benchbytetol F] OLD.json NEW.json
//
// Scenarios: fig1 fig2 fig3 fig3c fig4 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 fig12-15 fig16 fig17 fig18-19 tableI claim3 claim4, the
// multi-hop topology family parkinglot hetrtt multibneck, the
// routed-reverse-path family revcross ackshare asymrev, the scale-out
// family scalechain, and the fault-injection family linkflap burstloss
// capdrop.
//
// -parallel distributes a scenario's independent jobs across workers;
// -shards K instead splits each single simulation across K domains of
// the space-parallel sharded engine (scenarios that do not support it
// ignore the flag). The two compose, and every combination emits
// byte-identical TSV; -list shows each scenario's executor modes.
//
// -deadline D hardens the run with a per-job watchdog: a job exceeding
// D (a Go duration, e.g. 5m) is abandoned and reported with its batch
// index and seed, the remaining jobs keep running, and the surviving
// rows are still printed — the exit code turns 1 and the failure
// manifest goes to stderr. -seed N reruns only the jobs carrying that
// deterministic seed (the number a watchdog or panic report names), so
// a failure reproduces in isolation.
//
// -retries N gives every failing job up to N extra attempts with
// exponential backoff (also hardened mode); with checkpointing on, a
// retried job resumes from its own last snapshot instead of recomputing
// from scratch. -checkpoint-every T writes a deterministic, checksummed
// snapshot of each simulation into -checkpoint-dir every T simulated
// seconds (and at the end of warmup), atomically replacing the previous
// one. -resume D continues each simulation from its snapshot in D —
// byte-identical to the uninterrupted run; a missing snapshot degrades
// to a from-scratch run, and a snapshot whose config digest does not
// match fails loudly naming both digests. Checkpointing is incompatible
// with -trace (the bounded trace rings are not part of a snapshot).
//
// The observability flags ride on internal/obs and are zero-cost when
// absent. -metrics appends a "# metrics <scenario>" TSV block after
// each scenario's tables — engine, per-link and per-protocol-class
// aggregates that are executor-invariant, so the whole stdout stream
// stays byte-identical across serial, -parallel and -shards K. -epochs
// N steps each run's measured window through N boundaries and appends a
// "# epochs <scenario>" block of per-epoch deltas (same byte-identity
// contract; sampling schedules no events and draws no randomness).
// -trace FILE records rare sim events (loss events, no-feedback
// expiries, TCP timeouts, fault transitions, shard handoffs) in bounded
// per-domain rings (-tracecap each) and writes them as Chrome
// trace_event JSON, one viewer process per job, one thread per shard.
// -expvar ADDR serves live wall-clock introspection — worker-pool job
// progress plus per-shard clock/window/barrier-wait snapshots — on the
// standard /debug/vars endpoint; that surface is deliberately kept out
// of the deterministic output.
//
// -bench runs the DES/packet hot-path microbenchmarks and records
// ns/op, allocs/op and events/sec in BENCH_<n>.json, so the simulator's
// performance trajectory is tracked across PRs; -benchrun restricts it
// to a comma-separated subset of the suite (like -run for scenarios).
// -benchcmp compares two such reports and exits non-zero when a
// benchmark present in both regressed (events/sec down more than
// -benchtol, default 30%; allocs/op up more than -benchalloctol,
// default 5%, with zero-allocs baselines staying zero-tolerance; or
// bytes/op up more than -benchbytetol, default 10%, plus a small
// absolute slack) — the gate CI runs against the committed baseline.
// -cpuprofile and -memprofile write pprof profiles of whatever work
// the invocation did.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// seedFilterExec restricts a batch to the jobs carrying one seed: the
// other slots come back nil, which every scenario fold now skips — the
// output is exactly the filtered jobs' rows. This is the reproduction
// path for watchdog and panic reports, which name the failing seed.
type seedFilterExec struct {
	inner runner.Executor
	seed  uint64
}

func (f seedFilterExec) Execute(ctx context.Context, jobs []runner.Job) ([]any, error) {
	var sub []runner.Job
	var idx []int
	for i, j := range jobs {
		if j.Seed == f.seed {
			sub = append(sub, j)
			idx = append(idx, i)
		}
	}
	results := make([]any, len(jobs))
	if len(sub) == 0 {
		return results, nil
	}
	res, err := f.inner.Execute(ctx, sub)
	for k, i := range idx {
		if k < len(res) {
			results[i] = res[k]
		}
	}
	return results, err
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ebrc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "use the scaled-down Quick sizing")
	events := fs.Int("events", 0, "override the Monte Carlo event budget")
	simFactor := fs.Float64("simfactor", 0, "override the simulation duration factor (0..1]")
	parallel := fs.Bool("parallel", false, "run each scenario's jobs on a worker pool")
	workers := fs.Int("workers", 0, "worker count for -parallel (0 = NumCPU)")
	shards := fs.Int("shards", 0, "split each simulation across K shards (scenarios with sharded mode; 0/1 = serial engine)")
	list := fs.Bool("list", false, "list the registered scenarios and exit")
	runNames := fs.String("run", "", "comma-separated scenarios to run")
	progress := fs.Bool("progress", false, "report per-job progress on stderr")
	deadline := fs.Duration("deadline", 0, "per-job watchdog deadline (hardened mode: partial results + failure manifest; 0 = off)")
	retries := fs.Int("retries", 0, "extra attempts for failed jobs, with exponential backoff (hardened mode; resumes from checkpoints when -checkpoint-every is on)")
	ckptEvery := fs.Float64("checkpoint-every", 0, "write a deterministic snapshot of every simulation each N simulated seconds (needs -checkpoint-dir)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for -checkpoint-every snapshots (one file per job, atomically replaced)")
	resumeDir := fs.String("resume", "", "resume each simulation from its snapshot in this directory (missing snapshot = from-scratch run; config mismatch = hard error)")
	seedOnly := fs.Uint64("seed", 0, "run only the jobs with this deterministic seed (0 = all)")
	metrics := fs.Bool("metrics", false, "append each scenario's deterministic metrics table (byte-identical across executors)")
	epochs := fs.Int("epochs", 0, "split each run's measured window into N epochs and append per-epoch telemetry")
	traceFile := fs.String("trace", "", "record sim events and write them as Chrome trace_event JSON to this file")
	traceCap := fs.Int("tracecap", 4096, "per-domain event-ring capacity for -trace (older events overwritten beyond it)")
	expvarAddr := fs.String("expvar", "", "serve live run introspection (expvar /debug/vars) on this address, e.g. 127.0.0.1:8125")
	bench := fs.Bool("bench", false, "run the hot-path microbenchmarks and write BENCH_<n>.json")
	benchID := fs.Int("benchid", 0, "PR id for the -bench file name (0 = scratch BENCH_local.json)")
	benchOut := fs.String("benchout", "", "explicit output path for -bench (default BENCH_<benchid>.json)")
	benchRun := fs.String("benchrun", "", "comma-separated benchmark names for -bench (default: the whole suite)")
	benchCmp := fs.Bool("benchcmp", false, "compare two BENCH json reports (args: OLD NEW); exit 1 on regression")
	benchTol := fs.Float64("benchtol", 0.30, "events/sec regression fraction -benchcmp tolerates")
	benchAllocTol := fs.Float64("benchalloctol", 0.05, "allocs/op growth fraction -benchcmp tolerates (0 baselines stay strict)")
	benchByteTol := fs.Float64("benchbytetol", 0.10, "bytes/op growth fraction -benchcmp tolerates")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ebrc [flags] <scenario> [...]\n")
		fmt.Fprintf(stderr, "       ebrc -list | -run <scenario>[,...] | all | -bench | -benchcmp OLD NEW\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "ebrc: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "ebrc: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "ebrc: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "ebrc: %v\n", err)
			}
		}()
	}

	// Observability is configured before the bench dispatch on purpose:
	// `ebrc -bench -metrics` runs the same suite bodies with the capture
	// enabled, which is how CI bounds the enabled-mode overhead.
	experiments.Observe = experiments.ObserveOptions{
		Metrics: *metrics,
		Epochs:  *epochs,
		Live:    *expvarAddr != "",
	}
	if *traceFile != "" {
		experiments.Observe.TraceCap = *traceCap
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		fmt.Fprintf(stderr, "ebrc: -checkpoint-every needs -checkpoint-dir\n")
		return 2
	}
	if (*ckptEvery > 0 || *resumeDir != "") && *traceFile != "" {
		// The bounded trace rings are not part of a snapshot, so a resumed
		// run could not reproduce the uninterrupted trace stream.
		fmt.Fprintf(stderr, "ebrc: -checkpoint-every/-resume and -trace are incompatible\n")
		return 2
	}
	experiments.Checkpoint = experiments.CheckpointOptions{
		Every:  *ckptEvery,
		Dir:    *ckptDir,
		Resume: *resumeDir,
	}
	if *expvarAddr != "" {
		addr, err := obs.ServeLive(*expvarAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ebrc: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "ebrc: live introspection at http://%s/debug/vars\n", addr)
	}

	if *bench {
		return runBenchSuite(*benchID, *benchOut, *benchRun, stdout, stderr)
	}
	if *benchCmp {
		if fs.NArg() != 2 {
			fmt.Fprintf(stderr, "ebrc: -benchcmp needs exactly two report paths (OLD NEW)\n")
			return 2
		}
		return runBenchCmp(fs.Arg(0), fs.Arg(1), *benchTol, *benchAllocTol, *benchByteTol, stdout, stderr)
	}

	if *list || (fs.NArg() > 0 && fs.Arg(0) == "list") {
		for _, s := range experiments.Scenarios() {
			fmt.Fprintf(stdout, "%-10s %-24s %s\n", s.Name, s.Modes(), s.Note)
		}
		return 0
	}

	// Scenario names come from the positional arguments and the -run
	// flag alike; both accept comma-separated lists ("ebrc fig5,fig7").
	var names []string
	for _, arg := range append(fs.Args(), *runNames) {
		for _, n := range strings.Split(arg, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fs.Usage()
		return 2
	}
	if len(names) == 1 && names[0] == "all" {
		names = experiments.ScenarioNames()
	}

	sz := experiments.Full
	if *quick {
		sz = experiments.Quick
	}
	if *events > 0 {
		sz.Events = *events
	}
	if *simFactor > 0 {
		sz.SimFactor = *simFactor
	}
	if *shards > 0 {
		sz.Shards = *shards
	}

	onProgress := func(p runner.Progress) {
		fmt.Fprintf(stderr, "ebrc: [%d/%d] %s\n", p.Done, p.Total, p.Name)
	}
	var ex runner.Executor = runner.Serial{}
	switch {
	case *deadline > 0 || *retries > 0:
		// The watchdog and the retry budget both need the pool's per-job
		// machinery even for a "serial" run: one worker keeps serial
		// semantics, either flag turns on hardened mode (partial results
		// + failure manifest, retried jobs resuming from checkpoints).
		w := 1
		if *parallel {
			w = *workers
			if w <= 0 {
				w = runtime.NumCPU()
			}
		}
		pool := &runner.Pool{Workers: w, JobDeadline: *deadline, Retries: *retries}
		if *progress {
			pool.OnProgress = onProgress
		}
		ex = pool
	case *parallel:
		pool := runner.NewPool(*workers)
		if *progress {
			pool.OnProgress = onProgress
		}
		ex = pool
	case *progress:
		ex = runner.Serial{OnProgress: onProgress}
	}
	if *expvarAddr != "" {
		if p, ok := ex.(*runner.Pool); ok {
			obs.PublishLive("pool", func() any { return p.Snapshot() })
		}
	}
	if *seedOnly != 0 {
		ex = seedFilterExec{inner: ex, seed: *seedOnly}
	}

	ctx := context.Background()
	exit := 0
	var traces []obs.JobTrace
	var dropped int64
	for _, name := range names {
		s, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(stderr, "ebrc: unknown scenario %q (try: ebrc -list)\n", name)
			return 2
		}
		tables, so, err := s.RunObserved(ctx, sz, ex)
		if err != nil {
			// Hardened mode folds the survivors even when jobs failed:
			// print what completed, report the manifest, keep going so a
			// long multi-scenario sweep salvages everything it can.
			fmt.Fprintf(stderr, "ebrc: %v\n", err)
			if tables == nil {
				return 1
			}
			exit = 1
		}
		for _, t := range tables {
			if err := t.WriteTSV(stdout); err != nil {
				fmt.Fprintf(stderr, "ebrc: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
		if so == nil {
			continue
		}
		// The capture blocks join the tables on stdout — they hold only
		// executor-invariant quantities, so the whole stream stays
		// byte-identical across serial, -parallel and -shards K.
		if so.Metrics != nil && so.Metrics.Len() > 0 {
			fmt.Fprintf(stdout, "# metrics %s\n", name)
			if err := so.Metrics.WriteTSV(stdout); err != nil {
				fmt.Fprintf(stderr, "ebrc: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
		if so.Epochs != nil {
			fmt.Fprintf(stdout, "# epochs %s\n", name)
			if err := so.Epochs.WriteTSV(stdout); err != nil {
				fmt.Fprintf(stderr, "ebrc: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
		for _, jt := range so.Jobs {
			jt.Name = name + "/" + jt.Name
			jt.Pid = len(traces)
			traces = append(traces, jt)
		}
		dropped += so.Dropped
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "ebrc: %v\n", err)
			return 1
		}
		werr := obs.WriteChromeTrace(f, traces)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "ebrc: %v\n", werr)
			return 1
		}
		n := 0
		for _, jt := range traces {
			n += len(jt.Events)
		}
		fmt.Fprintf(stderr, "ebrc: wrote %d trace events to %s (%d overwritten by the ring bound)\n",
			n, *traceFile, dropped)
	}
	return exit
}
