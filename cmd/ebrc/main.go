// Command ebrc regenerates the data behind every figure of the paper's
// evaluation section as TSV on stdout.
//
// Usage:
//
//	ebrc [-quick] [-events N] [-simfactor F] <experiment> [...]
//	ebrc list
//	ebrc all
//
// Experiments: fig1 fig2 fig3 fig3c fig4 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 fig12-15 fig16 fig17 fig18-19 tableI claim3 claim4.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/tfrc"
)

func main() {
	quick := flag.Bool("quick", false, "use the scaled-down Quick sizing")
	events := flag.Int("events", 0, "override the Monte Carlo event budget")
	simFactor := flag.Float64("simfactor", 0, "override the simulation duration factor (0..1]")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ebrc [flags] <experiment> [...]\n")
		fmt.Fprintf(os.Stderr, "       ebrc list | all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	sz := experiments.Full
	if *quick {
		sz = experiments.Quick
	}
	if *events > 0 {
		sz.Events = *events
	}
	if *simFactor > 0 {
		sz.SimFactor = *simFactor
	}

	runners := registry(sz)
	args := flag.Args()
	if args[0] == "list" {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if args[0] == "all" {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		args = names
	}
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ebrc: unknown experiment %q (try: ebrc list)\n", name)
			os.Exit(2)
		}
		for _, t := range run() {
			if err := t.WriteTSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ebrc: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

func registry(sz experiments.Sizing) map[string]func() []*experiments.Table {
	one := func(t *experiments.Table) []*experiments.Table { return []*experiments.Table{t} }
	return map[string]func() []*experiments.Table{
		"fig1": func() []*experiments.Table { return one(experiments.Fig1()) },
		"fig2": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig2(), experiments.Fig2Summary()}
		},
		"fig3": func() []*experiments.Table {
			return []*experiments.Table{
				experiments.Fig3(tfrc.SQRT, sz),
				experiments.Fig3(tfrc.PFTKSimplified, sz),
			}
		},
		"fig3c": func() []*experiments.Table { return one(experiments.Fig3Comprehensive(sz)) },
		"fig4": func() []*experiments.Table {
			a := experiments.Fig4(0.01, sz)
			a.Name = "fig4-p001"
			b := experiments.Fig4(0.1, sz)
			b.Name = "fig4-p01"
			return []*experiments.Table{a, b}
		},
		"fig5":     func() []*experiments.Table { return one(experiments.Fig5(sz)) },
		"fig6":     func() []*experiments.Table { return one(experiments.Fig6(sz)) },
		"fig7":     func() []*experiments.Table { return one(experiments.Fig7(sz)) },
		"fig8":     func() []*experiments.Table { return one(experiments.Fig8(sz)) },
		"fig9":     func() []*experiments.Table { return one(experiments.Fig9(sz)) },
		"fig10":    func() []*experiments.Table { return one(experiments.Fig10(sz)) },
		"fig11":    func() []*experiments.Table { return one(experiments.Fig11(sz)) },
		"fig12-15": func() []*experiments.Table { return one(experiments.Fig12to15(sz)) },
		"fig16":    func() []*experiments.Table { return one(experiments.Fig16(sz)) },
		"fig17":    func() []*experiments.Table { return one(experiments.Fig17(sz)) },
		"fig18-19": func() []*experiments.Table { return one(experiments.Fig18to19(sz)) },
		"tableI":   func() []*experiments.Table { return one(experiments.TableI()) },
		"claim3":   func() []*experiments.Table { return one(experiments.Claim3()) },
		"claim4":   func() []*experiments.Table { return one(experiments.Claim4()) },
	}
}
