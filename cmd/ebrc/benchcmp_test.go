package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchFile(t *testing.T, dir, name string, entries []benchEntry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(benchReport{GoVersion: "test", Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The benchcmp gate: pass within tolerance, fail on a >tol events/sec
// drop or any allocs/op increase, and ignore benchmarks present in only
// one report.
func TestBenchCmp(t *testing.T) {
	dir := t.TempDir()
	base := []benchEntry{
		{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800, BytesPerOp: 150000},
		{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		{Name: "RetiredBench", EventsPerSec: 1e6, AllocsPerOp: 0},
	}
	old := writeBenchFile(t, dir, "old.json", base)

	cases := []struct {
		name    string
		entries []benchEntry
		want    int
		output  string
	}{
		{"within tolerance", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 4.5e6, AllocsPerOp: 2800, BytesPerOp: 155000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 0, "no regressions"},
		{"events per sec regression", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 3e6, AllocsPerOp: 2800, BytesPerOp: 150000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 1, "events/sec fell"},
		{"allocs increase", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 3000, BytesPerOp: 150000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 1, "allocs/op rose"},
		{"allocs within tolerance band", []benchEntry{
			// Arena amortization wiggle: +1% stays inside the 5% band.
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2828, BytesPerOp: 150000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 0, "no regressions"},
		{"allocs from zero baseline stay strict", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800, BytesPerOp: 150000},
			// A zero-allocs hot path gaining a single alloc/op must fail
			// regardless of the relative band.
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 1},
		}, 1, "allocs/op rose"},
		{"bytes per op regression", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800, BytesPerOp: 170000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 1, "bytes/op rose"},
		{"bytes from zero baseline", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800, BytesPerOp: 150000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0, BytesPerOp: 600},
		}, 1, "bytes/op rose"},
		{"bytes within absolute slack", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800, BytesPerOp: 150000},
			// Amortized one-time growth on a tiny baseline: inside the
			// byteSlack floor even though far beyond the relative band.
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0, BytesPerOp: 64},
		}, 0, "no regressions"},
		{"new benchmark not gated", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800},
			{Name: "BrandNewBench", EventsPerSec: 1, AllocsPerOp: 999999},
		}, 0, "new benchmark"},
		{"both gates on one benchmark", []benchEntry{
			{Name: "DumbbellSteadyState", EventsPerSec: 3e6, AllocsPerOp: 3000},
			{Name: "SchedulerFire", EventsPerSec: 7e7, AllocsPerOp: 0},
		}, 1, "events/sec fell >30%; allocs/op rose 2800 -> 3000"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nu := writeBenchFile(t, dir, strings.ReplaceAll(tc.name, " ", "_")+".json", tc.entries)
			var out, errb bytes.Buffer
			code := run([]string{"-benchcmp", old, nu}, &out, &errb)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.want, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), tc.output) {
				t.Fatalf("output missing %q:\n%s", tc.output, out.String())
			}
		})
	}
}

// Benchmarks present only in the NEW report must be called out in an
// explicit end-of-report summary naming each body — not just one line
// lost in the per-benchmark noise — while still never gating.
func TestBenchCmpNewOnlySummary(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", []benchEntry{
		{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800},
	})
	nu := writeBenchFile(t, dir, "new.json", []benchEntry{
		{Name: "DumbbellSteadyState", EventsPerSec: 6e6, AllocsPerOp: 2800},
		{Name: "ChurnSteadyState", EventsPerSec: 2e6, AllocsPerOp: 50},
		{Name: "AnotherNewBody", EventsPerSec: 1e6, AllocsPerOp: 0},
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-benchcmp", old, nu}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, errb.String())
	}
	got := out.String()
	want := "2 new benchmark(s) without a baseline in " + old +
		" (recorded, not gated): AnotherNewBody, ChurnSteadyState"
	if !strings.Contains(got, want) {
		t.Fatalf("output missing new-only summary %q:\n%s", want, got)
	}
	if !strings.Contains(got, "no regressions") {
		t.Fatalf("new-only bodies must not gate:\n%s", got)
	}
}

func TestBenchCmpErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeBenchFile(t, dir, "good.json", []benchEntry{{Name: "A", EventsPerSec: 1}})
	var out, errb bytes.Buffer
	if code := run([]string{"-benchcmp", good}, &out, &errb); code != 2 {
		t.Fatalf("one arg: exit %d", code)
	}
	if code := run([]string{"-benchcmp", filepath.Join(dir, "missing.json"), good}, &out, &errb); code != 1 {
		t.Fatalf("missing baseline: exit %d", code)
	}
	disjoint := writeBenchFile(t, dir, "disjoint.json", []benchEntry{{Name: "B", EventsPerSec: 1}})
	if code := run([]string{"-benchcmp", disjoint, good}, &out, &errb); code != 1 {
		t.Fatalf("no common benchmarks: exit %d", code)
	}
	if code := run([]string{"-benchcmp", "-benchtol", "2", good, good}, &out, &errb); code != 2 {
		t.Fatalf("bad tolerance: exit %d", code)
	}
	if code := run([]string{"-benchcmp", "-benchbytetol", "-0.1", good, good}, &out, &errb); code != 2 {
		t.Fatalf("bad byte tolerance: exit %d", code)
	}
	if code := run([]string{"-benchcmp", "-benchalloctol", "1.5", good, good}, &out, &errb); code != 2 {
		t.Fatalf("bad alloc tolerance: exit %d", code)
	}
}
