package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/perfbench"
)

// benchEntry is one benchmark's record in the BENCH_<n>.json report.
type benchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerRun uint64  `json:"events_per_run,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// benchReport is the schema of BENCH_<n>.json: one file per PR so the
// perf trajectory of the simulator is recorded alongside the code.
type benchReport struct {
	ID          int    `json:"id,omitempty"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// GoMaxProcs and NumCPU record the host parallelism the numbers
	// were taken under — without them a sharded-engine speedup (or its
	// absence on a single-CPU recorder) cannot be interpreted later.
	GoMaxProcs int          `json:"gomaxprocs,omitempty"`
	NumCPU     int          `json:"num_cpu,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// benchSuite lists the canonical benchmarks in recording order.
var benchSuite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"SchedulerFire", perfbench.SchedulerFire},
	{"SchedulerTimerChurn", perfbench.SchedulerTimerChurn},
	{"SchedulerDeepQueue", perfbench.SchedulerDeepQueue},
	{"SchedulerDeepQueue8K", perfbench.SchedulerDeepQueue8K},
	{"DumbbellSteadyState", perfbench.DumbbellSteadyState},
	{"ParkingLotSteadyState", perfbench.ParkingLotSteadyState},
	{"ReversePathSteadyState", perfbench.ReversePathSteadyState},
	{"DeepChainSteadyState", perfbench.DeepChainSteadyState},
	{"ShardedChainBaseline", perfbench.ShardedChainBaseline},
	{"ShardedChainSteadyState", perfbench.ShardedChainSteadyState},
	{"FaultyChainSteadyState", perfbench.FaultyChainSteadyState},
	{"ChurnSteadyState", perfbench.ChurnSteadyState},
	{"CheckpointedChainSteadyState", perfbench.CheckpointedChainSteadyState},
}

// selectBenchmarks resolves the -benchrun filter: an empty filter keeps
// the whole suite, otherwise the comma-separated names (whitespace
// tolerated, like -run) select a subset in suite order. Unknown names
// are an error so a typo cannot silently record an empty report.
func selectBenchmarks(filter string) ([]int, error) {
	if strings.TrimSpace(filter) == "" {
		sel := make([]int, len(benchSuite))
		for i := range sel {
			sel[i] = i
		}
		return sel, nil
	}
	index := make(map[string]int, len(benchSuite))
	for i, b := range benchSuite {
		index[b.name] = i
	}
	picked := make(map[int]bool)
	for _, raw := range strings.Split(filter, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		i, ok := index[name]
		if !ok {
			known := make([]string, len(benchSuite))
			for j, b := range benchSuite {
				known[j] = b.name
			}
			return nil, fmt.Errorf("unknown benchmark %q (have: %s)",
				name, strings.Join(known, ", "))
		}
		picked[i] = true
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("empty -benchrun filter")
	}
	sel := make([]int, 0, len(picked))
	for i := range benchSuite {
		if picked[i] {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// runBenchSuite executes the canonical hot-path benchmark bodies from
// internal/perfbench via testing.Benchmark — the same bodies `go test
// -bench` runs — and writes the report to outPath. id == 0 (the
// default) writes the scratch file BENCH_local.json so a bare `ebrc
// -bench` never overwrites a committed BENCH_<n>.json baseline; pass
// -benchid explicitly when recording a PR's numbers. filter, when
// non-empty, is a comma-separated benchmark-name list (like -run) that
// restricts the suite — handy for CI shards and local iteration on one
// hot path.
func runBenchSuite(id int, outPath, filter string, stdout, stderr io.Writer) int {
	selected, err := selectBenchmarks(filter)
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 2
	}
	if outPath == "" {
		if id > 0 {
			outPath = fmt.Sprintf("BENCH_%d.json", id)
		} else {
			outPath = "BENCH_local.json"
		}
	}
	report := benchReport{
		ID:          id,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	record := func(name string, bench func(*testing.B)) {
		r := testing.Benchmark(bench)
		e := benchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v, ok := r.Extra["events/run"]; ok {
			e.EventsPerRun = uint64(v)
		}
		if v, ok := r.Extra["events/sec"]; ok {
			e.EventsPerSec = v
		} else if r.T > 0 {
			// The scheduler benches fire one event per op.
			e.EventsPerSec = float64(r.N) / r.T.Seconds()
		}
		report.Benchmarks = append(report.Benchmarks, e)
		fmt.Fprintf(stdout, "%-28s %12.1f ns/op %8d allocs/op %14.0f events/sec\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.EventsPerSec)
	}

	for _, i := range selected {
		record(benchSuite[i].name, benchSuite[i].fn)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "ebrc: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)
	return 0
}
