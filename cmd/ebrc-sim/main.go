// Command ebrc-sim runs a single custom dumbbell scenario and prints
// the per-class results plus the TCP-friendliness breakdown — a
// flag-driven companion to cmd/ebrc's fixed figure sweeps.
//
// Example:
//
//	ebrc-sim -capacity 15e6 -queue red -tfrc 2 -tcp 2 -L 8 -seconds 300
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/experiments"
	"repro/internal/formula"
	"repro/internal/runner"
	"repro/internal/tfrc"
)

func main() {
	capacityBits := flag.Float64("capacity", 15e6, "bottleneck rate in bits/second")
	queue := flag.String("queue", "red", "bottleneck queue: droptail or red")
	buffer := flag.Int("buffer", 100, "DropTail buffer in packets")
	delay := flag.Float64("delay", 0.01, "bottleneck one-way propagation delay, seconds")
	revDelay := flag.Float64("revdelay", 0.03, "reverse-path delay, seconds")
	nTFRC := flag.Int("tfrc", 1, "number of TFRC flows")
	nTCP := flag.Int("tcp", 1, "number of TCP flows")
	window := flag.Int("L", 8, "TFRC loss-interval window")
	seconds := flag.Float64("seconds", 300, "measured simulation seconds")
	warmup := flag.Float64("warmup", 50, "warmup seconds (discarded)")
	seed := flag.Uint64("seed", 1, "random seed")
	comprehensive := flag.Bool("comprehensive", true, "enable TFRC comprehensive control")
	discounting := flag.Bool("discounting", false, "enable RFC 3448 history discounting")
	crossLoad := flag.Float64("cross", 0, "background cross-traffic load fraction")
	probeRate := flag.Float64("probe", 0, "Poisson probe rate in packets/second (0 = off)")
	formulaName := flag.String("formula", "pftk-standard",
		"TFRC formula: sqrt, pftk-standard or pftk-simplified")
	flag.Parse()

	var kind tfrc.FormulaKind
	switch *formulaName {
	case "sqrt":
		kind = tfrc.SQRT
	case "pftk-standard":
		kind = tfrc.PFTKStandard
	case "pftk-simplified":
		kind = tfrc.PFTKSimplified
	default:
		fmt.Fprintf(os.Stderr, "ebrc-sim: unknown formula %q\n", *formulaName)
		os.Exit(2)
	}

	cfg := experiments.SimConfig{
		Capacity:           *capacityBits / 8,
		BaseDelay:          *delay,
		RevDelay:           *revDelay,
		NTFRC:              *nTFRC,
		NTCP:               *nTCP,
		L:                  *window,
		Comprehensive:      *comprehensive,
		HistoryDiscounting: *discounting,
		TFRCFormula:        kind,
		Duration:           *seconds,
		Warmup:             *warmup,
		Seed:               *seed,
		RevJitter:          0.2,
		CrossLoad:          *crossLoad,
		ProbeRate:          *probeRate,
	}
	switch *queue {
	case "droptail":
		cfg.Queue = experiments.DropTail
		cfg.Buffer = *buffer
	case "red":
		cfg.Queue = experiments.RED
		cfg.BDPPackets = cfg.Capacity / 1000 * (2**delay + *revDelay)
	default:
		fmt.Fprintf(os.Stderr, "ebrc-sim: unknown queue %q\n", *queue)
		os.Exit(2)
	}

	// Submit the run through the scenario engine so invalid configs
	// surface as errors instead of raw panics.
	results, err := runner.Serial{}.Execute(context.Background(), []runner.Job{{
		Name: "ebrc-sim",
		Seed: cfg.Seed,
		Run:  func(context.Context) any { return experiments.RunSim(cfg) },
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ebrc-sim: %v\n", err)
		os.Exit(1)
	}
	res := results[0].(experiments.SimResult)
	printClass := func(name string, cs experiments.ClassStats) {
		if cs.Flows == 0 {
			return
		}
		fmt.Printf("%-8s flows=%d  x̄=%8.1f pkt/s  p=%.6f  rtt=%6.1f ms  events=%d\n",
			name, cs.Flows, cs.Throughput, cs.LossEventRate, cs.MeanRTT*1000, cs.Events)
	}
	printClass("TFRC", res.TFRC)
	printClass("TCP", res.TCP)
	printClass("Poisson", res.Poisson)

	if res.TFRC.Flows > 0 && res.TCP.Flows > 0 &&
		res.TFRC.Events > 0 && res.TCP.Events > 0 {
		tf, tc := res.TFRC, res.TCP
		ftf := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
		ftc := formula.NewPFTKStandard(formula.ParamsForRTT(tc.MeanRTT))
		fmt.Println("\nTCP-friendliness breakdown:")
		fmt.Printf("  x̄/x̄'        = %.3f\n", tf.Throughput/tc.Throughput)
		fmt.Printf("  x̄/f(p,r)    = %.3f\n", tf.Throughput/ftf.Rate(math.Max(tf.LossEventRate, 1e-9)))
		fmt.Printf("  p'/p         = %.3f\n", tc.LossEventRate/tf.LossEventRate)
		fmt.Printf("  r'/r         = %.3f\n", tc.MeanRTT/tf.MeanRTT)
		fmt.Printf("  x̄'/f(p',r') = %.3f\n", tc.Throughput/ftc.Rate(math.Max(tc.LossEventRate, 1e-9)))
		fmt.Printf("  cov[θ,θ̂]p²  = %+.4f\n", tf.CovNorm)
	}
}
