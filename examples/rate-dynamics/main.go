// rate-dynamics: trace the send-rate trajectories of one TFRC and one
// TCP flow sharing a DropTail bottleneck, sampled every 100 ms, printed
// as TSV (plot with any tool). TFRC's trace is visibly smoother — the
// property the paper ties to its loss-event sampling behavior (Claim 3:
// smoother senders sample the congestion process less favorably).
//
// Run: go run ./examples/rate-dynamics > trace.tsv
package main

import (
	"fmt"
	"os"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var sched des.Scheduler
	link := netsim.NewLink(&sched, 1.25e6, 0.01, netsim.NewDropTail(80))
	net := topology.NewDumbbell(&sched, link)
	net.SetReverseJitter(0.2, 7)

	tsnd, _ := tfrc.NewFlow(&sched, net, 1, tfrc.DefaultConfig(), 0, 0.03)
	csnd, _ := tcp.NewFlow(&sched, net, 2, tcp.DefaultConfig(), 0, 0.03)
	tsnd.Start()
	sched.At(0.5, csnd.Start)

	rec := trace.NewRecorder()
	tfrcRate := rec.Series("tfrc_pkts_per_s")
	tcpWnd := rec.Series("tcp_cwnd_pkts")
	queueLen := rec.Series("queue_pkts")

	const horizon = 120.0
	var sample func()
	sample = func() {
		now := sched.Now()
		tfrcRate.Add(now, tsnd.Rate()/1000) // 1000-byte packets
		tcpWnd.Add(now, csnd.Cwnd())
		queueLen.Add(now, float64(link.Queue().Len()))
		if now < horizon {
			sched.After(0.1, sample)
		}
	}
	sched.After(0.1, sample)
	sched.RunUntil(horizon)

	if err := rec.WriteTSV(os.Stdout, 0, horizon, 1200); err != nil {
		fmt.Fprintf(os.Stderr, "rate-dynamics: %v\n", err)
		os.Exit(1)
	}
	mean, err := tfrcRate.TimeAverage(20, horizon)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rate-dynamics: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "TFRC mean rate %.1f pkt/s; trace written to stdout\n", mean)
}
